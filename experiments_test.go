package satwatch

// The experiment suite: one test per paper table/figure asserting the
// qualitative result the paper reports — who wins, by roughly what factor,
// where the crossovers are. Absolute values are synthetic-substrate
// artifacts and are only band-checked. EXPERIMENTS.md records the
// paper-vs-measured comparison in detail.

import (
	"sync"
	"testing"

	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/services"
	"satwatch/internal/tstat"
)

var (
	expOnce sync.Once
	expRes  *Results
	expErr  error
)

// experimentResults runs the shared reference pipeline once.
func experimentResults(t *testing.T) *Results {
	t.Helper()
	expOnce.Do(func() {
		p := New(WithCustomers(300), WithDays(2), WithSeed(2022))
		expRes, expErr = p.Run()
	})
	if expErr != nil {
		t.Fatal(expErr)
	}
	return expRes
}

func TestTable1ProtocolShares(t *testing.T) {
	r := experimentResults(t)
	s := r.Table1.SharePct
	band := func(p tstat.Protocol, lo, hi float64) {
		if v := s[p]; v < lo || v > hi {
			t.Errorf("%s share %.1f%% outside [%v,%v] (paper Table 1 shape)", p, v, lo, hi)
		}
	}
	band(tstat.ProtoHTTPS, 38, 70)   // paper: 56.0
	band(tstat.ProtoHTTP, 4, 22)     // paper: 12.1
	band(tstat.ProtoTCPOther, 3, 16) // paper: 7.0
	band(tstat.ProtoQUIC, 10, 32)    // paper: 19.6
	band(tstat.ProtoRTP, 0.2, 4)     // paper: 1.1
	band(tstat.ProtoUDPOther, 1, 10) // paper: 4.2
	if s[tstat.ProtoDNS] > 0.2 {
		t.Errorf("DNS share %.2f%%, paper says <0.1%%", s[tstat.ProtoDNS])
	}
	// Encrypted web (HTTPS+QUIC) dominates.
	if s[tstat.ProtoHTTPS]+s[tstat.ProtoQUIC] < 55 {
		t.Error("encrypted web protocols do not dominate the mix")
	}
}

func TestFig2CountryImbalance(t *testing.T) {
	r := experimentResults(t)
	cd, ok := r.Fig2.Row("CD")
	if !ok {
		t.Fatal("no Congo row")
	}
	es, ok := r.Fig2.Row("ES")
	if !ok {
		t.Fatal("no Spain row")
	}
	// Congo: ~20% of customers but MORE volume share than customer share.
	if cd.VolumeSharePct <= cd.CustomerSharePct {
		t.Errorf("Congo volume share %.1f not above customer share %.1f", cd.VolumeSharePct, cd.CustomerSharePct)
	}
	// Spain: ~16% of customers but LESS volume share.
	if es.VolumeSharePct >= es.CustomerSharePct {
		t.Errorf("Spain volume share %.1f not below customer share %.1f", es.VolumeSharePct, es.CustomerSharePct)
	}
	// Congolese customers move several times more per day than Spaniards
	// (paper: 600 MB vs 170 MB).
	if cd.VolumePerCustomerDay < 2*es.VolumePerCustomerDay {
		t.Errorf("Congo per-customer volume %.0f not ≫ Spain's %.0f", cd.VolumePerCustomerDay, es.VolumePerCustomerDay)
	}
	// Congo tops the volume ranking.
	if r.Fig2.Rows[0].Country != "CD" {
		t.Errorf("top-volume country is %s, want Congo", r.Fig2.Rows[0].Country)
	}
}

func TestFig3ProtocolPerCountry(t *testing.T) {
	r := experimentResults(t)
	s := r.Fig3.SharePct
	// Germany's other-TCP (VPN) share dominates the other top-6 countries'
	// (paper: 35%).
	de := s["DE"][tstat.ProtoTCPOther]
	if de < 15 {
		t.Errorf("Germany other-TCP share %.1f%%, paper ≈35%%", de)
	}
	for _, code := range []geo.CountryCode{"ES", "IE", "CD", "NG"} {
		if v := s[code][tstat.ProtoTCPOther]; v >= de {
			t.Errorf("%s other-TCP %.1f%% ≥ Germany's %.1f%%", code, v, de)
		}
	}
	// Ireland and the U.K. carry more plain HTTP than Spain (Sky + updates).
	esHTTP := s["ES"][tstat.ProtoHTTP]
	if s["IE"][tstat.ProtoHTTP] <= esHTTP || s["GB"][tstat.ProtoHTTP] <= esHTTP {
		t.Errorf("IE (%.1f) / GB (%.1f) HTTP shares not above Spain's (%.1f)",
			s["IE"][tstat.ProtoHTTP], s["GB"][tstat.ProtoHTTP], esHTTP)
	}
}

func TestFig4DiurnalPatterns(t *testing.T) {
	r := experimentResults(t)
	// Congo peaks in the morning (paper: 09:00 UTC); Spain in the
	// European evening (18:00-21:00 UTC).
	cdPeak := r.Fig4.PeakHourUTC("CD")
	if cdPeak < 7 || cdPeak > 13 {
		t.Errorf("Congo peak at %02d:00 UTC, paper has 09:00", cdPeak)
	}
	esPeak := r.Fig4.PeakHourUTC("ES")
	if esPeak < 16 || esPeak > 22 {
		t.Errorf("Spain peak at %02d:00 UTC, paper has evening prime time", esPeak)
	}
	// African night floor stays high (paper: ≈40% of peak) and above
	// Europe's (paper: down to 20%).
	cdFloor := r.Fig4.NightFloor("CD")
	esFloor := r.Fig4.NightFloor("ES")
	if cdFloor < 0.2 {
		t.Errorf("Congo night floor %.2f, paper ≈0.4", cdFloor)
	}
	if cdFloor <= esFloor {
		t.Errorf("Congo night floor %.2f not above Spain's %.2f", cdFloor, esFloor)
	}
}

func TestFig5FlowsPerCustomer(t *testing.T) {
	r := experimentResults(t)
	// The European knee: a large share of customer-days under 250 flows.
	for _, code := range []geo.CountryCode{"ES", "GB"} {
		s := r.Fig5.Flows[code]
		if s == nil || s.Len() == 0 {
			t.Fatalf("no flow samples for %s", code)
		}
		if frac := s.CDF(250); frac < 0.35 {
			t.Errorf("%s: only %.2f of customer-days below the 250-flow knee", code, frac)
		}
	}
	// African customers generate far more flows (community APs).
	cd := r.Fig5.Flows["CD"]
	es := r.Fig5.Flows["ES"]
	if cd.Median() < 2*es.Median() {
		t.Errorf("Congo median flows/day %.0f not ≫ Spain's %.0f", cd.Median(), es.Median())
	}
	if cd.Quantile(0.95) < 5*es.Quantile(0.95) {
		t.Errorf("Congo flow tail %.0f not an order above Spain's %.0f", cd.Quantile(0.95), es.Quantile(0.95))
	}
}

func TestFig5VolumeHeavyHitters(t *testing.T) {
	r := experimentResults(t)
	cdDown := r.Fig5.Down["CD"]
	esDown := r.Fig5.Down["ES"]
	if cdDown == nil || esDown == nil || cdDown.Len() == 0 || esDown.Len() == 0 {
		t.Fatal("missing active-customer volume samples")
	}
	// Congo's download distribution dominates Spain's (paper: 8% vs 4%
	// above 10 GB/day). Compare means: the ≥250-flow conditioning keeps
	// only the heaviest European days, biasing their median upward.
	if cdDown.Mean() <= esDown.Mean() {
		t.Errorf("Congo download mean %.0f not above Spain's %.0f", cdDown.Mean(), esDown.Mean())
	}
	if cdDown.CCDF(10e9) < esDown.CCDF(10e9) {
		t.Errorf("Congo 10GB heavy-hitter share %.3f below Spain's %.3f", cdDown.CCDF(10e9), esDown.CCDF(10e9))
	}
	// Upload: African heavy hitters clearly above Europe's (paper: 10%/7%/5%
	// above 1 GB vs 3-4%).
	cdUp := r.Fig5.Up["CD"]
	esUp := r.Fig5.Up["ES"]
	if cdUp.CCDF(1e9) <= esUp.CCDF(1e9) {
		t.Errorf("Congo upload >1GB share %.3f not above Spain's %.3f", cdUp.CCDF(1e9), esUp.CCDF(1e9))
	}
}

func TestFig6ServicePopularity(t *testing.T) {
	r := experimentResults(t)
	pct := r.Fig6.Pct
	// WhatsApp is near-universal and comparable to Google everywhere.
	for _, code := range Top6() {
		if pct["Whatsapp"][code] < 15 {
			t.Errorf("WhatsApp penetration in %s only %.1f%%", code, pct["Whatsapp"][code])
		}
	}
	// WeChat concentrates in Congo (paper: 6.4% vs ≈0 in Europe).
	if pct["Wechat"]["CD"] <= pct["Wechat"]["ES"] {
		t.Errorf("WeChat: Congo %.1f%% not above Spain %.1f%%", pct["Wechat"]["CD"], pct["Wechat"]["ES"])
	}
	// Paid video is a European affair (paper: Netflix 50.9% IE vs 17.3% CD;
	// Prime 21-28% EU vs ≈4% CD/NG).
	if pct["Netflix"]["IE"] <= pct["Netflix"]["CD"] {
		t.Errorf("Netflix: Ireland %.1f%% not above Congo %.1f%%", pct["Netflix"]["IE"], pct["Netflix"]["CD"])
	}
	if pct["Primevideo"]["GB"] <= pct["Primevideo"]["CD"] {
		t.Errorf("Prime Video: U.K. %.1f%% not above Congo %.1f%%", pct["Primevideo"]["GB"], pct["Primevideo"]["CD"])
	}
}

func TestFig7CategoryVolumes(t *testing.T) {
	r := experimentResults(t)
	// Chat: African medians orders of magnitude above European ones
	// (paper: 250 MB Congo vs <10 MB Europe).
	cdChat := r.Fig7.Median(services.CategoryChat, "CD")
	esChat := r.Fig7.Median(services.CategoryChat, "ES")
	if esChat <= 0 || cdChat < 5*esChat {
		t.Errorf("chat medians: Congo %.0f vs Spain %.0f — want ≥5x gap", cdChat, esChat)
	}
	// Social media shows the same African skew (paper: 300 vs 30 MB).
	cdSoc := r.Fig7.Median(services.CategorySocial, "CD")
	esSoc := r.Fig7.Median(services.CategorySocial, "ES")
	if esSoc <= 0 || cdSoc < 2*esSoc {
		t.Errorf("social medians: Congo %.0f vs Spain %.0f", cdSoc, esSoc)
	}
	// Video differences are smaller: within a factor ~4 either way.
	cdVid := r.Fig7.Median(services.CategoryVideo, "CD")
	esVid := r.Fig7.Median(services.CategoryVideo, "ES")
	if cdVid > 4*esVid || esVid > 6*cdVid {
		t.Errorf("video medians diverge too much: Congo %.0f vs Spain %.0f", cdVid, esVid)
	}
	// Audio is the lightest category everywhere (paper Figure 7).
	for _, code := range []geo.CountryCode{"CD", "ES"} {
		if a := r.Fig7.Median(services.CategoryAudio, code); a >= r.Fig7.Median(services.CategoryVideo, code) {
			t.Errorf("%s: audio median not below video median", code)
		}
	}
}

func TestFig8aSatelliteRTT(t *testing.T) {
	r := experimentResults(t)
	// Minimum above ~550 ms everywhere (propagation floor).
	for _, code := range Top6() {
		for _, s := range []interface {
			Min() float64
			Len() int
		}{r.Fig8a.Night[code], r.Fig8a.Peak[code]} {
			if s == nil || s.Len() == 0 {
				t.Fatalf("no satellite RTT samples for %s", code)
			}
			if s.Min() < 0.47 {
				t.Errorf("%s satellite RTT minimum %.3fs below the GEO floor", code, s.Min())
			}
		}
	}
	// Spain at night: most samples under 1s (paper: 82%).
	if frac := r.Fig8a.Night["ES"].CDF(1.0); frac < 0.7 {
		t.Errorf("Spain night P(<1s)=%.2f, paper ≈0.82", frac)
	}
	// Congo's congestion: peak median ≫ night median, with a ≥2s tail
	// (paper: ~20% above 2s).
	cdNight := r.Fig8a.Night["CD"].Median()
	cdPeak := r.Fig8a.Peak["CD"].Median()
	if cdPeak < cdNight*1.3 {
		t.Errorf("Congo peak median %.2fs not well above night %.2fs", cdPeak, cdNight)
	}
	if tail := r.Fig8a.Peak["CD"].CCDF(2.0); tail < 0.05 {
		t.Errorf("Congo peak P(>2s)=%.2f, paper ≈0.2", tail)
	}
	// Spain/U.K. peak distributions stay clean.
	for _, code := range []geo.CountryCode{"ES", "GB"} {
		if tail := r.Fig8a.Peak[code].CCDF(2.0); tail > 0.05 {
			t.Errorf("%s peak P(>2s)=%.2f — should be practically uncongested", code, tail)
		}
	}
	// Ireland: channel-driven variability, nearly identical night vs peak
	// (paper: rules congestion out), and a fatter P75 than Spain's.
	ieN, ieP := r.Fig8a.Night["IE"], r.Fig8a.Peak["IE"]
	rel := ieP.Quantile(0.75) / ieN.Quantile(0.75)
	if rel < 0.7 || rel > 1.4 {
		t.Errorf("Ireland peak/night P75 ratio %.2f — should be time-invariant", rel)
	}
	if ieN.Quantile(0.75) <= r.Fig8a.Night["ES"].Quantile(0.75) {
		t.Errorf("Ireland night P75 %.2fs not above Spain's %.2fs (edge-of-coverage impairments)",
			ieN.Quantile(0.75), r.Fig8a.Night["ES"].Quantile(0.75))
	}
}

func TestFig8bBeamRTT(t *testing.T) {
	r := experimentResults(t)
	if len(r.Fig8b.Rows) < 10 {
		t.Fatalf("only %d beams with samples", len(r.Fig8b.Rows))
	}
	byCountry := map[geo.CountryCode]float64{}
	for _, row := range r.Fig8b.Rows {
		if row.MedianRTTs > byCountry[row.Country] {
			byCountry[row.Country] = row.MedianRTTs
		}
		if row.UtilNorm < 0 || row.UtilNorm > 1 {
			t.Errorf("beam %d normalized util %.2f", row.Beam, row.UtilNorm)
		}
	}
	// Congo's worst beam dominates Spain's and the U.K.'s (PEP saturation).
	if byCountry["CD"] <= byCountry["ES"] || byCountry["CD"] <= byCountry["GB"] {
		t.Errorf("Congo worst-beam median %.2fs not above ES %.2fs / GB %.2fs",
			byCountry["CD"], byCountry["ES"], byCountry["GB"])
	}
}

func TestFig9GroundRTT(t *testing.T) {
	r := experimentResults(t)
	// European traffic: large share below 50 ms (peered + EU clusters
	// serve >80% per the paper).
	for _, code := range []geo.CountryCode{"ES", "GB", "IE"} {
		if frac := r.Fig9.ShareBelow(code, 0.050); frac < 0.6 {
			t.Errorf("%s: only %.2f of traffic below 50ms ground RTT", code, frac)
		}
	}
	// African countries: higher medians plus a 250ms+ hairpin bump.
	for _, code := range []geo.CountryCode{"CD", "NG"} {
		af := r.Fig9.Samples[code]
		es := r.Fig9.Samples["ES"]
		if af.Median() <= es.Median() {
			t.Errorf("%s ground-RTT median %.1fms not above Spain's %.1fms",
				code, af.Median()*1e3, es.Median()*1e3)
		}
		if tail := af.CCDF(0.250); tail < 0.02 {
			t.Errorf("%s: hairpin bump missing (P(>250ms)=%.3f)", code, tail)
		}
	}
	// Europe has essentially no 250ms+ bump.
	if tail := r.Fig9.Samples["ES"].CCDF(0.250); tail > 0.03 {
		t.Errorf("Spain shows a %.3f share above 250ms", tail)
	}
}

func TestFig10DNSResolvers(t *testing.T) {
	r := experimentResults(t)
	share := r.Fig10.SharePct
	// Google DNS dominates in Africa (paper: 86% Congo).
	if share["CD"][dnssim.ResolverGoogle] < 50 {
		t.Errorf("Congo Google DNS share %.1f%%, paper ≈86%%", share["CD"][dnssim.ResolverGoogle])
	}
	// The operator resolver is only significant in Europe (paper: 44/29/38
	// vs ≈1-9% in Africa).
	for _, code := range []geo.CountryCode{"IE", "ES", "GB"} {
		if share[code][dnssim.ResolverOperator] < 12 {
			t.Errorf("%s operator DNS share %.1f%% too low", code, share[code][dnssim.ResolverOperator])
		}
	}
	if share["CD"][dnssim.ResolverOperator] > 15 {
		t.Errorf("Congo operator DNS share %.1f%% too high", share["CD"][dnssim.ResolverOperator])
	}
	// Response times: operator fastest; Chinese resolvers add hundreds of ms.
	med := r.Fig10.MedianResponse
	if med[dnssim.ResolverOperator] >= med[dnssim.ResolverGoogle] {
		t.Error("operator resolver not the fastest")
	}
	// Chinese/Nigerian resolvers are rare enough that a scaled run may
	// sample none; assert only when present.
	if m := med[dnssim.ResolverBaidu]; m > 0 && m < 0.2 {
		t.Errorf("Baidu median %.3fs, paper ≈0.356s", m)
	}
	if m := med[dnssim.Resolver114DNS]; m > 0 && (m < 0.05 || m > 0.3) {
		t.Errorf("114DNS median %.3fs, paper ≈0.11s", m)
	}
	if m := med[dnssim.ResolverNigerian]; m > 0 && m < 0.06 {
		t.Errorf("Nigerian resolver median %.3fs, paper ≈0.12s", m)
	}
}

func TestTable2ResolverImpactOnServerSelection(t *testing.T) {
	r := experimentResults(t)
	// U.K.: the resolver hardly matters (everything lands in Europe).
	if v, ok := r.Table2.Cell("GB", dnssim.ResolverOperator, "apple.com"); ok {
		if v > 0.08 {
			t.Errorf("U.K. apple.com via operator at %.1fms — should be a European node", v*1e3)
		}
	}
	// Nigeria via homeland/local resolvers: inflated ground RTT for GeoDNS
	// services vs the operator path (paper Table 2: 110.4ms vs 23.1ms).
	opCell, opOK := r.Table2.Cell("NG", dnssim.ResolverOperator, "apple.com")
	worst := 0.0
	for _, id := range []dnssim.ResolverID{dnssim.Resolver114DNS, dnssim.ResolverNigerian, dnssim.ResolverBaidu} {
		if v, ok := r.Table2.Cell("NG", id, "apple.com"); ok && v > worst {
			worst = v
		}
	}
	if opOK && worst > 0 && worst < 1.5*opCell {
		t.Errorf("Nigeria apple.com: homeland resolver %.1fms not ≫ operator %.1fms", worst*1e3, opCell*1e3)
	}
	// nflxvideo.net is anycast: resolver-independent (paper: "less
	// affected by these phenomena").
	var nflx []float64
	for _, id := range []dnssim.ResolverID{dnssim.ResolverOperator, dnssim.ResolverGoogle, dnssim.Resolver114DNS, dnssim.ResolverNigerian} {
		if v, ok := r.Table2.Cell("NG", id, "nflxvideo.net"); ok {
			nflx = append(nflx, v)
		}
	}
	for _, v := range nflx {
		if v > 0.030 {
			t.Errorf("anycast nflxvideo.net at %.1fms via some resolver", v*1e3)
		}
	}
}

func TestTables45AppendixCoverage(t *testing.T) {
	r := experimentResults(t)
	// The appendix tables cover four countries and many domains.
	if len(r.Tables45.Countries) != 4 {
		t.Fatalf("%d countries", len(r.Tables45.Countries))
	}
	if len(r.Tables45.Domains()) < 10 {
		t.Errorf("only %d second-level domains in the appendix tables", len(r.Tables45.Domains()))
	}
	// Chinese platforms show their ~250ms+ ground RTT from any resolver
	// (paper Tables 4-5: qq.com ≈240-270ms).
	found := false
	for key, v := range r.Tables45.AvgRTT {
		if key.Domain == "qq.com" && key.Country == "CD" {
			found = true
			if v < 0.15 {
				t.Errorf("qq.com from Congo at %.1fms — should hairpin to China", v*1e3)
			}
		}
	}
	if !found {
		t.Error("no qq.com rows for Congo")
	}
}

func TestFig11Throughput(t *testing.T) {
	r := experimentResults(t)
	// European bulk flows reach higher rates than African ones (plans +
	// congestion + AP contention + terminals).
	esMed := r.Fig11.All["ES"].Median()
	cdMed := r.Fig11.All["CD"].Median()
	if esMed <= cdMed {
		t.Errorf("Spain bulk throughput median %.1f Mb/s not above Congo's %.1f Mb/s", esMed/1e6, cdMed/1e6)
	}
	// Some European flows exceed the African plan ceiling (30 Mb/s).
	over := 0.0
	for _, code := range []geo.CountryCode{"ES", "GB", "IE"} {
		if s := r.Fig11.All[code]; s != nil {
			over += s.CCDF(30e6)
		}
	}
	if over == 0 {
		t.Error("no European flows above 30 Mb/s — plan tiers not visible")
	}
	// African flows stay within their plan ceilings (10/30 Mb/s).
	for _, code := range []geo.CountryCode{"CD", "NG", "ZA"} {
		if s := r.Fig11.All[code]; s != nil && s.Quantile(0.99) > 35e6 {
			t.Errorf("%s P99 throughput %.1f Mb/s exceeds the African plan lineup", code, s.Quantile(0.99)/1e6)
		}
	}
	// Peak is slower than night (paper Figure 11b), checked on Congo
	// where the effect is strongest.
	cdN, cdP := r.Fig11.Night["CD"], r.Fig11.Peak["CD"]
	if cdN != nil && cdP != nil && cdN.Len() > 10 && cdP.Len() > 10 {
		if cdP.Median() >= cdN.Median() {
			t.Errorf("Congo peak median %.1f Mb/s not below night %.1f Mb/s", cdP.Median()/1e6, cdN.Median()/1e6)
		}
	}
}

func TestFig5MedianFlowsOrdering(t *testing.T) {
	r := experimentResults(t)
	// All three African countries generate more flows per customer-day
	// than all three European countries at the median.
	minAF, maxEU := 1e18, 0.0
	for _, code := range []geo.CountryCode{"CD", "NG", "ZA"} {
		if m := r.Fig5.Flows[code].Median(); m < minAF {
			minAF = m
		}
	}
	for _, code := range []geo.CountryCode{"IE", "ES", "GB"} {
		if m := r.Fig5.Flows[code].Median(); m > maxEU {
			maxEU = m
		}
	}
	if minAF <= maxEU {
		t.Errorf("African median flows (min %.0f) not above European (max %.0f)", minAF, maxEU)
	}
}
