// Command satprobe replays a pcap capture through the Tstat-style probe:
// every packet is decoded, flows are tracked, DPI names the servers, RTT
// estimators run, and the resulting flow/DNS logs are written as TSV.
//
// Undecodable packets are skipped and counted, not fatal — a damaged
// capture still yields the flows it can. Exit codes: 0 on success, 1 on
// error, 2 when packets had to be skipped (logs were salvaged from a
// partially decodable capture).
//
// Usage:
//
//	satprobe -in capture.pcap [-flows flows.tsv] [-dns dns.tsv] [-metrics FILE]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"satwatch/internal/obs"
	"satwatch/internal/pcapio"
	"satwatch/internal/tstat"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satprobe:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	in := flag.String("in", "", "pcap capture to replay (required)")
	flowsOut := flag.String("flows", "", "write flow log TSV here (default: stdout summary only)")
	dnsOut := flag.String("dns", "", "write DNS log TSV here")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump here after the replay")
	flag.Parse()

	// Metrics are cleared at run start so every dump reflects this run
	// only, not process-lifetime totals.
	obs.Default.Reset()
	if *in == "" {
		flag.Usage()
		return 0, fmt.Errorf("-in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rd, err := pcapio.NewReader(f)
	if err != nil {
		return 0, err
	}
	if rd.LinkType() != pcapio.LinkTypeRaw {
		return 0, fmt.Errorf("capture link type %d, need LINKTYPE_RAW (%d)", rd.LinkType(), pcapio.LinkTypeRaw)
	}

	tr := tstat.NewTracker(tstat.Config{})
	var epoch time.Time
	packets, badPackets := 0, 0
	for {
		ts, data, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("reading capture: %w", err)
		}
		if epoch.IsZero() {
			epoch = ts
		}
		if err := tr.FeedPacket(ts.Sub(epoch), data); err != nil {
			badPackets++
			continue
		}
		packets++
	}
	flows, dns := tr.Flush()

	fmt.Printf("replayed %d packets (%d undecodable): %d flows, %d DNS transactions\n",
		packets, badPackets, len(flows), len(dns))
	byProto := map[tstat.Protocol]int{}
	withDomain := 0
	for i := range flows {
		byProto[flows[i].Proto]++
		if flows[i].Domain != "" {
			withDomain++
		}
	}
	for p, n := range byProto {
		fmt.Printf("  %-10s %d flows\n", p, n)
	}
	fmt.Printf("  DPI named %d/%d flows\n", withDomain, len(flows))

	if *flowsOut != "" {
		if err := obs.WriteFileAtomic(*flowsOut, func(w io.Writer) error {
			return tstat.WriteFlows(w, flows)
		}); err != nil {
			return 0, err
		}
		fmt.Printf("flow log written to %s\n", *flowsOut)
	}
	if *dnsOut != "" {
		if err := obs.WriteFileAtomic(*dnsOut, func(w io.Writer) error {
			return tstat.WriteDNS(w, dns)
		}); err != nil {
			return 0, err
		}
		fmt.Printf("DNS log written to %s\n", *dnsOut)
	}
	if *metricsOut != "" {
		if err := obs.WriteFileAtomic(*metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if badPackets > 0 {
		fmt.Fprintf(os.Stderr, "satprobe: skipped %d undecodable packets\n", badPackets)
		return 2, nil
	}
	return 0, nil
}
