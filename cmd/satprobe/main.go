// Command satprobe replays a pcap capture through the Tstat-style probe:
// every packet is decoded, flows are tracked, DPI names the servers, RTT
// estimators run, and the resulting flow/DNS logs are written as TSV.
//
// Usage:
//
//	satprobe -in capture.pcap [-flows flows.tsv] [-dns dns.tsv] [-metrics FILE]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"satwatch/internal/obs"
	"satwatch/internal/pcapio"
	"satwatch/internal/tstat"
)

func main() {
	in := flag.String("in", "", "pcap capture to replay (required)")
	flowsOut := flag.String("flows", "", "write flow log TSV here (default: stdout summary only)")
	dnsOut := flag.String("dns", "", "write DNS log TSV here")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump here after the replay")
	flag.Parse()

	// Metrics are cleared at run start so every dump reflects this run
	// only, not process-lifetime totals.
	obs.Default.Reset()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("satprobe: %v", err)
	}
	defer f.Close()
	rd, err := pcapio.NewReader(f)
	if err != nil {
		log.Fatalf("satprobe: %v", err)
	}
	if rd.LinkType() != pcapio.LinkTypeRaw {
		log.Fatalf("satprobe: capture link type %d, need LINKTYPE_RAW (%d)", rd.LinkType(), pcapio.LinkTypeRaw)
	}

	tr := tstat.NewTracker(tstat.Config{})
	var epoch time.Time
	packets, badPackets := 0, 0
	for {
		ts, data, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatalf("satprobe: reading capture: %v", err)
		}
		if epoch.IsZero() {
			epoch = ts
		}
		if err := tr.FeedPacket(ts.Sub(epoch), data); err != nil {
			badPackets++
			continue
		}
		packets++
	}
	flows, dns := tr.Flush()

	fmt.Printf("replayed %d packets (%d undecodable): %d flows, %d DNS transactions\n",
		packets, badPackets, len(flows), len(dns))
	byProto := map[tstat.Protocol]int{}
	withDomain := 0
	for i := range flows {
		byProto[flows[i].Proto]++
		if flows[i].Domain != "" {
			withDomain++
		}
	}
	for p, n := range byProto {
		fmt.Printf("  %-10s %d flows\n", p, n)
	}
	fmt.Printf("  DPI named %d/%d flows\n", withDomain, len(flows))

	if *flowsOut != "" {
		out, err := os.Create(*flowsOut)
		if err != nil {
			log.Fatalf("satprobe: %v", err)
		}
		defer out.Close()
		if err := tstat.WriteFlows(out, flows); err != nil {
			log.Fatalf("satprobe: %v", err)
		}
		fmt.Printf("flow log written to %s\n", *flowsOut)
	}
	if *dnsOut != "" {
		out, err := os.Create(*dnsOut)
		if err != nil {
			log.Fatalf("satprobe: %v", err)
		}
		defer out.Close()
		if err := tstat.WriteDNS(out, dns); err != nil {
			log.Fatalf("satprobe: %v", err)
		}
		fmt.Printf("DNS log written to %s\n", *dnsOut)
	}
	if *metricsOut != "" {
		out, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("satprobe: %v", err)
		}
		defer out.Close()
		if err := obs.Default.WriteJSON(out); err != nil {
			log.Fatalf("satprobe: metrics dump: %v", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
}
