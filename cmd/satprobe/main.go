// Command satprobe replays a pcap capture through the Tstat-style probe:
// every packet is decoded, flows are tracked, DPI names the servers, RTT
// estimators run, and the resulting flow/DNS logs are written as TSV.
//
// Undecodable packets are skipped and counted, not fatal — a damaged
// capture still yields the flows it can. -debug-addr serves /metrics,
// /progress and /debug/pprof live during the replay (see
// OBSERVABILITY.md). Exit codes: 0 on success, 1 on error, 2 when
// packets had to be skipped (logs were salvaged from a partially
// decodable capture) or the replay was interrupted by SIGINT/SIGTERM
// (logs salvaged up to the stop point).
//
// Usage:
//
//	satprobe -in capture.pcap [-flows flows.tsv] [-dns dns.tsv]
//	         [-metrics FILE] [-debug-addr :6060] [-debug-linger 0s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"satwatch/internal/obs"
	"satwatch/internal/pcapio"
	"satwatch/internal/tstat"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satprobe:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	in := flag.String("in", "", "pcap capture to replay (required)")
	flowsOut := flag.String("flows", "", "write flow log TSV here (default: stdout summary only)")
	dnsOut := flag.String("dns", "", "write DNS log TSV here")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump here after the replay")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /progress and /debug/pprof on this address")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the replay completes")
	flag.Parse()

	// Metrics are cleared at run start so every dump and debug endpoint
	// reflects this run only, not process-lifetime totals.
	obs.Default.Reset()
	start := time.Now()
	if *in == "" {
		flag.Usage()
		return 0, fmt.Errorf("-in is required")
	}

	// Replay progress for the /progress endpoint; the counters are
	// atomics because the debug server reads them mid-loop.
	var packets, badPackets atomic.Int64
	if *debugAddr != "" {
		bound, stopDebug, err := obs.StartDebugServer(*debugAddr, obs.Default, func() any {
			return struct {
				Packets        int64   `json:"packets"`
				BadPackets     int64   `json:"bad_packets"`
				ElapsedSeconds float64 `json:"elapsed_seconds"`
			}{packets.Load(), badPackets.Load(), time.Since(start).Seconds()}
		})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", bound)
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(os.Stderr, "debug server lingering %s\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
			stopDebug()
		}()
	}

	f, err := os.Open(*in)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rd, err := pcapio.NewReader(f)
	if err != nil {
		return 0, err
	}
	if rd.LinkType() != pcapio.LinkTypeRaw {
		return 0, fmt.Errorf("capture link type %d, need LINKTYPE_RAW (%d)", rd.LinkType(), pcapio.LinkTypeRaw)
	}

	// First SIGINT/SIGTERM stops the replay at a packet boundary and
	// salvages the logs tracked so far; a second one kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tr := tstat.NewTracker(tstat.Config{})
	var epoch time.Time
	interrupted := false
	for !interrupted {
		select {
		case <-ctx.Done():
			stop()
			interrupted = true
			continue
		default:
		}
		ts, data, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("reading capture: %w", err)
		}
		if epoch.IsZero() {
			epoch = ts
		}
		if err := tr.FeedPacket(ts.Sub(epoch), data); err != nil {
			badPackets.Add(1)
			continue
		}
		packets.Add(1)
	}
	flows, dns := tr.Flush()
	if interrupted {
		fmt.Fprintln(os.Stderr, "satprobe: interrupted, salvaging logs tracked so far")
	}

	fmt.Printf("replayed %d packets (%d undecodable): %d flows, %d DNS transactions\n",
		packets.Load(), badPackets.Load(), len(flows), len(dns))
	byProto := map[tstat.Protocol]int{}
	withDomain := 0
	for i := range flows {
		byProto[flows[i].Proto]++
		if flows[i].Domain != "" {
			withDomain++
		}
	}
	for p, n := range byProto {
		fmt.Printf("  %-10s %d flows\n", p, n)
	}
	fmt.Printf("  DPI named %d/%d flows\n", withDomain, len(flows))

	if *flowsOut != "" {
		if err := obs.WriteFileAtomic(*flowsOut, func(w io.Writer) error {
			return tstat.WriteFlows(w, flows)
		}); err != nil {
			return 0, err
		}
		fmt.Printf("flow log written to %s\n", *flowsOut)
	}
	if *dnsOut != "" {
		if err := obs.WriteFileAtomic(*dnsOut, func(w io.Writer) error {
			return tstat.WriteDNS(w, dns)
		}); err != nil {
			return 0, err
		}
		fmt.Printf("DNS log written to %s\n", *dnsOut)
	}
	if *metricsOut != "" {
		if err := obs.WriteFileAtomic(*metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}

	if interrupted || badPackets.Load() > 0 {
		if badPackets.Load() > 0 {
			fmt.Fprintf(os.Stderr, "satprobe: skipped %d undecodable packets\n", badPackets.Load())
		}
		return 2, nil
	}
	return 0, nil
}
