// Command sattrace renders flow traces recorded by satgen/satreport
// -trace: per-flow latency waterfalls ("explain this flow's 550 ms") and
// top-K rankings of the slowest flows, overall or by component.
//
// Corrupt JSONL lines — the tail of a trace cut short by a kill — are
// skipped and counted by default; -strict fails on the first one
// instead. -metrics dumps the metrics registry (including the
// skipped-line counter) after rendering. Exit codes: 0 on success, 1 on
// error, 2 when lines were skipped (the rendering ran on salvaged,
// incomplete data).
//
// Multiple inputs — positional paths after the flags, or -glob — are
// merged by flow start time, so a satlive -trace directory's rotated
// logs read as one stream.
//
// Usage:
//
//	sattrace -in trace.jsonl                    # top 10 slowest, with waterfalls
//	sattrace -in trace.jsonl -top 25 -summary   # ranking table only
//	sattrace -in trace.jsonl -by pep.setup      # slowest by PEP setup sojourn
//	sattrace -in trace.jsonl -flow c12-d0-f3    # one flow's waterfall
//	sattrace -in trace.jsonl -spans             # list recordable span names
//	sattrace -in trace.jsonl -metrics FILE      # also dump the metrics registry
//	sattrace a.jsonl b.jsonl                    # merge several trace files
//	sattrace -glob 'tracedir/trace*.jsonl'      # merge a rotated live log set
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/trace"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sattrace:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	in := flag.String("in", "", "trace JSONL file written by satgen/satreport -trace")
	glob := flag.String("glob", "", "glob of trace JSONL files to merge (rotated satlive -trace logs)")
	top := flag.Int("top", 10, "show the K slowest flows")
	by := flag.String("by", "", "rank by this component's span time (e.g. pep.setup) instead of total RTT")
	flowID := flag.String("flow", "", "render a single flow's waterfall by id (c<customer>-d<day>-f<index>)")
	summary := flag.Bool("summary", false, "print only the ranking table, no waterfalls")
	spans := flag.Bool("spans", false, "list every span name the pipeline records and exit")
	strict := flag.Bool("strict", false, "fail on the first corrupt trace line instead of skipping it")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump here after rendering")
	flag.Parse()

	// Metrics are cleared at run start so every dump reflects this run
	// only, not process-lifetime totals.
	obs.Default.Reset()

	// First SIGINT/SIGTERM is absorbed so the metrics dump and any
	// in-flight atomic write complete (rendering is skipped); a second
	// one restores the default handler and kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *spans {
		fmt.Println(strings.Join(trace.SpanNames(), "\n"))
		return finish(0, *metricsOut)
	}
	// Inputs: -in, positional paths, and -glob expansions, merged.
	paths := flag.Args()
	if *in != "" {
		paths = append([]string{*in}, paths...)
	}
	if *glob != "" {
		matches, err := filepath.Glob(*glob)
		if err != nil {
			return 0, fmt.Errorf("bad -glob %q: %w", *glob, err)
		}
		if len(matches) == 0 {
			return 0, fmt.Errorf("-glob %q matched no files", *glob)
		}
		sort.Strings(matches)
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		flag.Usage()
		return 0, fmt.Errorf("no inputs: pass -in, positional trace files, or -glob")
	}
	if *by != "" {
		known := false
		for _, n := range trace.SpanNames() {
			if n == *by {
				known = true
				break
			}
		}
		if !known {
			return 0, fmt.Errorf("unknown component %q (see -spans)", *by)
		}
	}

	var flows []*trace.Flow
	var st trace.ReadStats
	var err error
	if *strict {
		flows, err = trace.ReadFiles(paths)
	} else {
		flows, st, err = trace.ReadFilesTolerant(paths)
	}
	if err != nil {
		return 0, err
	}
	if len(paths) > 1 {
		// Rotated logs arrive newest-first; present one chronological
		// stream regardless of file order.
		trace.SortByStart(flows)
	}
	// The same salvage counter the replay path uses, so the -metrics dump
	// records how much of the trace was unreadable.
	netsim.CountSkippedRows(st.Skipped)
	if len(flows) == 0 {
		fmt.Println("no traced flows (sampling selected none — lower -trace-sample)")
		return finish(exitSkipped(st.Skipped), *metricsOut)
	}

	if *flowID != "" {
		f, ok := trace.ByID(flows, *flowID)
		if !ok {
			return 0, fmt.Errorf("flow %s not in %s (%d flows)", *flowID, strings.Join(paths, ","), len(flows))
		}
		fmt.Print(trace.Waterfall(f))
		return finish(exitSkipped(st.Skipped), *metricsOut)
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "sattrace: interrupted, skipping rendering")
		return finish(2, *metricsOut)
	}

	ranked := trace.TopK(flows, *by, *top)
	what := "total satellite RTT"
	if *by != "" {
		what = *by
	}
	src := paths[0]
	if len(paths) > 1 {
		src = fmt.Sprintf("%d files", len(paths))
	}
	fmt.Printf("%d traced flows in %s · top %d by %s\n\n", len(flows), src, len(ranked), what)
	fmt.Print(trace.Summary(ranked, *by))
	if !*summary {
		for _, f := range ranked {
			fmt.Println()
			fmt.Print(trace.Waterfall(f))
		}
	}
	return finish(exitSkipped(st.Skipped), *metricsOut)
}

// exitSkipped maps a skipped-line count to the process exit code: 2
// flags output rendered from salvaged, incomplete data.
func exitSkipped(skipped int) int {
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "sattrace: skipped %d corrupt trace lines (use -strict to fail instead)\n", skipped)
		return 2
	}
	return 0
}

// finish dumps the metrics registry when requested, then passes the exit
// code through. Every successful return path funnels here so the dump
// happens regardless of rendering mode.
func finish(code int, metricsPath string) (int, error) {
	if metricsPath == "" {
		return code, nil
	}
	if err := obs.WriteFileAtomic(metricsPath, func(w io.Writer) error {
		return obs.Default.WriteJSON(w)
	}); err != nil {
		return 0, fmt.Errorf("metrics dump: %w", err)
	}
	fmt.Printf("metrics written to %s\n", metricsPath)
	return code, nil
}
