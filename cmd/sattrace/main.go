// Command sattrace renders flow traces recorded by satgen/satreport
// -trace: per-flow latency waterfalls ("explain this flow's 550 ms") and
// top-K rankings of the slowest flows, overall or by component.
//
// Usage:
//
//	sattrace -in trace.jsonl                    # top 10 slowest, with waterfalls
//	sattrace -in trace.jsonl -top 25 -summary   # ranking table only
//	sattrace -in trace.jsonl -by pep.setup      # slowest by PEP setup sojourn
//	sattrace -in trace.jsonl -flow c12-d0-f3    # one flow's waterfall
//	sattrace -in trace.jsonl -spans             # list recordable span names
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"satwatch/internal/trace"
)

func main() {
	in := flag.String("in", "", "trace JSONL file written by satgen/satreport -trace (required)")
	top := flag.Int("top", 10, "show the K slowest flows")
	by := flag.String("by", "", "rank by this component's span time (e.g. pep.setup) instead of total RTT")
	flowID := flag.String("flow", "", "render a single flow's waterfall by id (c<customer>-d<day>-f<index>)")
	summary := flag.Bool("summary", false, "print only the ranking table, no waterfalls")
	spans := flag.Bool("spans", false, "list every span name the pipeline records and exit")
	flag.Parse()

	if *spans {
		fmt.Println(strings.Join(trace.SpanNames(), "\n"))
		return
	}
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *by != "" {
		known := false
		for _, n := range trace.SpanNames() {
			if n == *by {
				known = true
				break
			}
		}
		if !known {
			log.Fatalf("sattrace: unknown component %q (see -spans)", *by)
		}
	}

	flows, err := trace.ReadFile(*in)
	if err != nil {
		log.Fatalf("sattrace: %v", err)
	}
	if len(flows) == 0 {
		fmt.Println("no traced flows (sampling selected none — lower -trace-sample)")
		return
	}

	if *flowID != "" {
		f, ok := trace.ByID(flows, *flowID)
		if !ok {
			log.Fatalf("sattrace: flow %s not in %s (%d flows)", *flowID, *in, len(flows))
		}
		fmt.Print(trace.Waterfall(f))
		return
	}

	ranked := trace.TopK(flows, *by, *top)
	what := "total satellite RTT"
	if *by != "" {
		what = *by
	}
	fmt.Printf("%d traced flows in %s · top %d by %s\n\n", len(flows), *in, len(ranked), what)
	fmt.Print(trace.Summary(ranked, *by))
	if *summary {
		return
	}
	for _, f := range ranked {
		fmt.Println()
		fmt.Print(trace.Waterfall(f))
	}
}
