// Command satpep demonstrates the RFC 3135 split-TCP PEP live, over an
// in-process emulated GEO satellite link (~550 ms RTT): it starts an origin
// server, the ground-station gateway, and the CPE-side proxy, then fetches
// a payload twice — once through the PEP and once directly across the
// emulated satellite — and prints the handshake and transfer timings the
// paper's §2.1 architecture is designed to improve.
//
// -load switches to the scale harness: N concurrent split-TCP flows with
// a configurable size/arrival mix through the emulated link, optional
// fault-schedule playback (-faults), and a flows/s + p50/p99 summary.
// The run fails (exit 1) if any flow errors or any tunnel stream is
// still in a stream table after the post-run drain.
//
// Exit codes: 0 on success, 1 on error. -debug-addr serves /metrics,
// /progress and /debug/pprof live during the demo (see
// OBSERVABILITY.md).
//
// Usage:
//
//	satpep [-size 2097152] [-listen 127.0.0.1:0] [-metrics FILE]
//	       [-debug-addr :6060] [-debug-linger 0s]
//	satpep -load [-flows 1000] [-concurrency 0] [-mix 8k:0.6,64k:0.3,256k:0.1]
//	       [-arrival 0] [-delay 270ms] [-jitter 30ms] [-loss 0.005] [-rate 0]
//	       [-faults PRESET|FILE] [-fault-speedup 1000] [-seed 1]
//	       [-rto 1500ms] [-window 64] [-drain-timeout 30s] [-metrics FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/linkemu"
	"satwatch/internal/obs"
	"satwatch/internal/pep"
	"satwatch/internal/tunnel"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mHandshake = obs.NewGauge("satpep_handshake_seconds",
		"TCP handshake time of the PEP-proxied fetch.", "seconds")
	mDownload = obs.NewGauge("satpep_download_seconds",
		"Full download time of the PEP-proxied fetch.", "seconds")
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satpep:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	size := flag.Int("size", 2<<20, "payload bytes to download")
	listen := flag.String("listen", "127.0.0.1:0", "CPE proxy listen address")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump here on exit")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /progress and /debug/pprof on this address")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the demo completes")
	// Load-harness mode.
	load := flag.Bool("load", false, "run the concurrent-flow load harness instead of the demo")
	flows := flag.Int("flows", 1000, "load: total flows to run")
	concurrency := flag.Int("concurrency", 0, "load: max flows in flight (0 = no cap)")
	mixArg := flag.String("mix", "8k:0.6,64k:0.3,256k:0.1", "load: flow-size mix as size:weight pairs")
	arrival := flag.Float64("arrival", 0, "load: Poisson flow arrival rate in flows/s (0 = as fast as admitted)")
	delay := flag.Duration("delay", 270*time.Millisecond, "load: one-way link delay")
	jitter := flag.Duration("jitter", 30*time.Millisecond, "load: link jitter")
	loss := flag.Float64("loss", 0.005, "load: link loss probability")
	rate := flag.Float64("rate", 0, "load: link serialization rate in bytes/s (0 = unlimited)")
	faultsArg := flag.String("faults", "", "load: fault schedule (preset name or JSON file) played into the live link")
	faultSpeedup := flag.Float64("fault-speedup", 1000, "load: schedule seconds per wall second")
	seed := flag.Uint64("seed", 1, "load: seed for link, mix and arrivals")
	rto := flag.Duration("rto", 1500*time.Millisecond, "load: initial tunnel RTO")
	window := flag.Int("window", 64, "load: per-stream send window in frames")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "load: post-run wait for empty stream tables")
	flag.Parse()

	// Metrics are cleared at run start so every dump and debug endpoint
	// reflects this run only, not process-lifetime totals.
	obs.Default.Reset()
	start := time.Now()

	// First SIGINT/SIGTERM stops launching flows and drains gracefully
	// (the load report and metrics dump still get written); a second one
	// kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *load {
		return runLoad(ctx, loadOptions{
			flows: *flows, concurrency: *concurrency, mix: *mixArg, arrival: *arrival,
			delay: *delay, jitter: *jitter, loss: *loss, rate: *rate,
			faults: *faultsArg, faultSpeedup: *faultSpeedup, seed: *seed,
			rto: *rto, window: *window, drainTimeout: *drainTimeout,
			metricsOut: *metricsOut,
		})
	}

	payload := make([]byte, *size)
	for i := range payload {
		payload[i] = byte(i)
	}

	// Origin server on the "internet" side of the gateway.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go func() {
		for {
			c, err := origin.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(c)
		}
	}()

	// The satellite segment: a GEO link pair.
	cpeSide, gwSide := linkemu.NewPair(linkemu.GEO(), linkemu.GEO(), 1)
	cfg := tunnel.Config{RTO: 1500 * time.Millisecond, Window: 256, MaxPayload: 1200}
	cpe := pep.NewCPE(cpeSide, cfg, nil)
	gw := pep.NewGateway(gwSide, cfg, nil, nil)
	go gw.Serve()

	if *debugAddr != "" {
		// Progress for the /progress endpoint is the gateway's live relay
		// counters; they are atomics, safe to read mid-transfer.
		bound, stopDebug, err := obs.StartDebugServer(*debugAddr, obs.Default, func() any {
			return struct {
				Connections    int64   `json:"connections"`
				BytesDown      int64   `json:"bytes_down"`
				ElapsedSeconds float64 `json:"elapsed_seconds"`
			}{gw.Stats.Connections.Load(), gw.Stats.BytesDown.Load(), time.Since(start).Seconds()}
		})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", bound)
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(os.Stderr, "debug server lingering %s\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
			stopDebug()
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return 0, err
	}
	go cpe.ServeListener(ln, origin.Addr().String())

	fmt.Printf("origin at %s, CPE proxy at %s, satellite RTT ≈ %v\n\n",
		origin.Addr(), ln.Addr(), 2*linkemu.GEO().Delay)

	hs, total, err := fetch(ln.Addr().String(), *size)
	if err != nil {
		return 0, err
	}
	mHandshake.SetDuration(hs)
	mDownload.SetDuration(total)
	fmt.Println("through the PEP (RFC 3135 split TCP):")
	fmt.Printf("  TCP handshake: %v   (terminated locally at the CPE)\n", hs.Round(time.Millisecond))
	fmt.Printf("  full download: %v\n\n", total.Round(time.Millisecond))

	// Baseline: a direct TCP-over-satellite path, emulated by tunneling a
	// fresh connection's handshake timing across the link: we approximate
	// it by measuring one satellite round trip per handshake leg.
	satRTT := 2 * linkemu.GEO().Delay
	fmt.Println("without PEP (end-to-end TCP across the satellite):")
	fmt.Printf("  TCP handshake: ≥ %v  (one satellite round trip)\n", satRTT)
	fmt.Printf("  slow start:    each window doubling costs %v\n", satRTT)

	// Relay byte counters land once both directions of the proxied
	// connection wind down; give the teardown a moment.
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("\nPEP stats: %d connections, %d bytes down\n",
		gw.Stats.Connections.Load(), gw.Stats.BytesDown.Load())
	cpe.Close()
	gw.Close()

	if *metricsOut != "" {
		if err := obs.WriteFileAtomic(*metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	return 0, nil
}

type loadOptions struct {
	flows, concurrency  int
	mix                 string
	arrival, loss, rate float64
	delay, jitter       time.Duration
	faults              string
	faultSpeedup        float64
	seed                uint64
	rto                 time.Duration
	window              int
	drainTimeout        time.Duration
	metricsOut          string
}

// runLoad executes the load harness and enforces its acceptance gates:
// zero flow errors and zero leaked streams after the drain.
func runLoad(ctx context.Context, o loadOptions) (int, error) {
	mix, err := pep.ParseMix(o.mix)
	if err != nil {
		return 0, err
	}
	var sched *faults.Schedule
	if o.faults != "" {
		sched, err = faults.Load(o.faults, 1, o.seed)
		if err != nil {
			return 0, err
		}
		faults.RecordActive(sched)
	}
	link := linkemu.Link{Delay: o.delay, Jitter: o.jitter, Loss: o.loss, RateBps: o.rate}
	fmt.Printf("load: %d flows (mix %s) over %v/%v/%.3f link, faults=%q\n",
		o.flows, o.mix, o.delay, o.jitter, o.loss, o.faults)

	rep, err := pep.RunLoad(pep.LoadConfig{
		Flows:        o.flows,
		Concurrency:  o.concurrency,
		Mix:          mix,
		ArrivalRate:  o.arrival,
		Link:         link,
		Tunnel:       tunnel.Config{RTO: o.rto, Window: o.window, MaxPayload: 1200},
		Seed:         o.seed,
		Faults:       sched,
		FaultSpeedup: o.faultSpeedup,
		DrainTimeout: o.drainTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Ctx: ctx,
	})
	if err != nil {
		return 0, err
	}
	fmt.Println(rep)

	if o.metricsOut != "" {
		if err := obs.WriteFileAtomic(o.metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
		fmt.Printf("metrics written to %s\n", o.metricsOut)
	}
	if rep.Leaked() > 0 {
		return 1, fmt.Errorf("%d tunnel streams leaked after drain (cpe=%d gw=%d)",
			rep.Leaked(), rep.LeakedCPE, rep.LeakedGW)
	}
	if rep.Errors > 0 {
		return 1, fmt.Errorf("%d of %d flows failed", rep.Errors, rep.Flows)
	}
	return 0, nil
}

func fetch(addr string, want int) (handshake, total time.Duration, err error) {
	start := time.Now()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, err
	}
	handshake = time.Since(start)
	defer conn.Close()
	n, err := io.Copy(io.Discard, conn)
	if err != nil {
		return 0, 0, err
	}
	if int(n) != want {
		return 0, 0, fmt.Errorf("downloaded %d bytes, want %d", n, want)
	}
	total = time.Since(start)
	return handshake, total, nil
}
