// Command satgen generates synthetic SatCom deployment traces: anonymized
// Tstat-style flow/DNS logs from the full simulator, and optionally a
// small packet-level pcap capture whose every byte is decodable (for
// satprobe demos and interoperability tests with standard tooling).
//
// Every run writes a manifest.json next to its outputs (config, seed,
// version, per-stage timings, output digests) so runs are comparable and
// reproducible; -metrics dumps the full metrics registry and -progress
// streams a live status line to stderr (see OBSERVABILITY.md).
//
// Usage:
//
//	satgen -out DIR [-customers 200] [-days 1] [-seed 1] [-parallelism 0]
//	       [-pcap-flows 50] [-metrics FILE] [-progress]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/pcapgen"
	"satwatch/internal/tstat"
)

func main() {
	out := flag.String("out", "trace", "output directory")
	customers := flag.Int("customers", 200, "population size")
	days := flag.Int("days", 1, "observation window in days")
	seed := flag.Uint64("seed", 1, "deterministic run seed")
	parallelism := flag.Int("parallelism", 0, "pass-B synthesis workers (0 = GOMAXPROCS)")
	pcapFlows := flag.Int("pcap-flows", 50, "flows in the demo pcap (0 disables)")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump to this file after the run")
	progress := flag.Bool("progress", false, "print a live progress line to stderr every 2s")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("satgen: %v", err)
	}

	if *progress {
		stop := obs.StartProgress(os.Stderr, 2*time.Second, netsim.ProgressLine)
		defer stop()
	}

	cfg := netsim.Config{Customers: *customers, Days: *days, Seed: *seed, Parallelism: *parallelism}
	sim, err := netsim.Run(cfg)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	manifest := netsim.ManifestFor("satgen", cfg, sim)

	writeStart := time.Now()
	flowsPath := filepath.Join(*out, "flows.tsv")
	ff, err := os.Create(flowsPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := tstat.WriteFlows(ff, sim.Flows); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	ff.Close()

	dnsPath := filepath.Join(*out, "dns.tsv")
	df, err := os.Create(dnsPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := tstat.WriteDNS(df, sim.DNS); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	df.Close()

	metaPath := filepath.Join(*out, "meta.tsv")
	mf, err := os.Create(metaPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := netsim.WriteMeta(mf, sim.Meta); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	mf.Close()

	prefixPath := filepath.Join(*out, "prefixes.tsv")
	pxf, err := os.Create(prefixPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := netsim.WritePrefixes(pxf, sim.CountryPrefixes); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	pxf.Close()

	fmt.Printf("wrote %s (%d flows), %s (%d DNS transactions), %s, %s\n",
		flowsPath, len(sim.Flows), dnsPath, len(sim.DNS), metaPath, prefixPath)
	outputs := []string{flowsPath, dnsPath, metaPath, prefixPath}

	if *pcapFlows > 0 {
		pcapPath := filepath.Join(*out, "sample.pcap")
		pf, err := os.Create(pcapPath)
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		st, err := pcapgen.Write(pf, pcapgen.Options{Flows: *pcapFlows, Seed: *seed, Epoch: sim.Epoch})
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		pf.Close()
		fmt.Printf("wrote %s (%s)\n", pcapPath, st.Describe())
		outputs = append(outputs, pcapPath)
	}
	manifest.AddTiming("write", time.Since(writeStart))

	if *metricsOut != "" {
		mff, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		if err := obs.Default.WriteJSON(mff); err != nil {
			log.Fatalf("satgen: metrics dump: %v", err)
		}
		mff.Close()
		outputs = append(outputs, *metricsOut)
	}

	for _, p := range outputs {
		if err := manifest.AddOutput(p); err != nil {
			log.Fatalf("satgen: %v", err)
		}
	}
	if err := manifest.Write(*out); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(*out, obs.ManifestName))
}
