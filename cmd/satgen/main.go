// Command satgen generates synthetic SatCom deployment traces: anonymized
// Tstat-style flow/DNS logs from the full simulator, and optionally a
// small packet-level pcap capture whose every byte is decodable (for
// satprobe demos and interoperability tests with standard tooling).
//
// Every run writes a manifest.json next to its outputs (config, seed,
// version, per-stage timings, output digests, run status) so runs are
// comparable and reproducible; -metrics dumps the full metrics registry,
// -progress streams a live status line to stderr, -trace records
// per-flow latency span trees for sampled flows, -faults plays back a
// deterministic fault schedule, and -debug-addr serves /metrics,
// /progress and /debug/pprof live (see OBSERVABILITY.md).
//
// Outputs are written atomically (temp file + rename) and a manifest with
// status "partial" is put down before the simulation starts, so a killed
// run leaves either complete files or none, under a manifest that says
// so. SIGINT stops the run at the next customer boundary and flushes
// whatever completed; a second SIGINT kills immediately.
//
// Exit codes: 0 on success, 1 on error, 2 when the run completed
// degraded or partial (outputs exist but are incomplete).
//
// Usage:
//
//	satgen -out DIR [-customers 200] [-days 1] [-seed 1] [-parallelism 0]
//	       [-constellation geo|leo]
//	       [-faults FILE|PRESET] [-pcap-flows 50] [-metrics FILE]
//	       [-progress] [-trace FILE] [-trace-sample 100]
//	       [-debug-addr :6060] [-debug-linger 0s] [-profile DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/pcapgen"
	"satwatch/internal/prof"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satgen:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	out := flag.String("out", "trace", "output directory")
	customers := flag.Int("customers", 200, "population size")
	days := flag.Int("days", 1, "observation window in days")
	seed := flag.Uint64("seed", 1, "deterministic run seed")
	constellation := flag.String("constellation", "geo", "constellation backend ("+strings.Join(geo.ConstellationNames(), ", ")+")")
	parallelism := flag.Int("parallelism", 0, "simulation workers, both passes (0 = GOMAXPROCS); output is identical at any value")
	intentCacheMB := flag.Int("intent-cache-mb", 0, "pass-A intent cache budget in MiB (0 = 512, negative disables)")
	faultsArg := flag.String("faults", "", "fault schedule: a JSON file or a preset ("+strings.Join(faults.PresetNames(), ", ")+")")
	pcapFlows := flag.Int("pcap-flows", 50, "flows in the demo pcap (0 disables)")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump to this file after the run")
	progress := flag.Bool("progress", false, "print a live progress line to stderr every 2s")
	traceOut := flag.String("trace", "", "write per-flow latency span trees (JSONL) to this file")
	traceSample := flag.Int("trace-sample", 100, "trace 1 in N flows (1 = every flow)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /progress and /debug/pprof on this address")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the run completes")
	profileDir := flag.String("profile", "", "capture cpu/heap/goroutine/block profiles into this directory")
	flag.Parse()

	// Metrics are cleared at run start so every dump and debug endpoint
	// reflects this run only, not process-lifetime totals.
	obs.Default.Reset()
	memSampler := obs.StartMemSampler(0)
	start := time.Now()

	var capture *prof.Capture
	if *profileDir != "" {
		c, err := prof.StartCapture(*profileDir)
		if err != nil {
			return 0, err
		}
		capture = c
		defer capture.Stop()
	}

	sched, err := faults.Load(*faultsArg, *days, *seed)
	if err != nil {
		return 0, err
	}

	// First SIGINT/SIGTERM cancels the run gracefully (workers stop at the
	// next customer boundary, logs and manifest are flushed); a second one
	// restores the default handler, so it kills the process. SIGTERM is
	// what container runtimes send on stop, so containerized runs drain
	// instead of dying with lost output.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return 0, err
	}

	// Put down a status-partial manifest before simulating: if the
	// process dies at any point, the directory says the run is
	// incomplete. The real manifest atomically replaces it at the end.
	early := obs.NewManifest("satgen", *seed)
	early.Status = netsim.StatusPartial
	if sched != nil {
		early.Faults = sched
	}
	if err := early.Write(*out); err != nil {
		return 0, err
	}

	if *debugAddr != "" {
		bound, stopDebug, err := obs.StartDebugServer(*debugAddr, obs.Default, func() any {
			p := netsim.CurrentProgress()
			p.ElapsedSeconds = time.Since(start).Seconds()
			return p
		})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", bound)
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(os.Stderr, "debug server lingering %s\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
			stopDebug()
		}()
	}

	if *progress {
		stopProgress := obs.StartProgress(os.Stderr, 2*time.Second, netsim.ProgressLine)
		defer stopProgress()
	}

	var tracer *trace.Tracer
	var traceTmp *os.File
	if *traceOut != "" {
		// The tracer streams as it goes, so it writes to a temp file that
		// is renamed into place only once Close has flushed it.
		dir, base := filepath.Split(*traceOut)
		if dir == "" {
			dir = "."
		}
		traceTmp, err = os.CreateTemp(dir, "."+base+".tmp*")
		if err != nil {
			return 0, err
		}
		defer os.Remove(traceTmp.Name())
		tracer = trace.New(traceTmp, *traceSample)
	}

	cfg := netsim.Config{Customers: *customers, Days: *days, Seed: *seed,
		Constellation: *constellation,
		Parallelism:   *parallelism, IntentCacheBytes: int64(*intentCacheMB) << 20,
		Trace: tracer, Faults: sched}
	sim, err := netsim.RunContext(ctx, cfg)
	if err != nil {
		return 0, err
	}
	manifest := netsim.ManifestFor("satgen", cfg, sim)

	writeStart := time.Now()
	flowsPath := filepath.Join(*out, "flows.tsv")
	if err := obs.WriteFileAtomic(flowsPath, func(w io.Writer) error {
		return tstat.WriteFlows(w, sim.Flows)
	}); err != nil {
		return 0, err
	}
	dnsPath := filepath.Join(*out, "dns.tsv")
	if err := obs.WriteFileAtomic(dnsPath, func(w io.Writer) error {
		return tstat.WriteDNS(w, sim.DNS)
	}); err != nil {
		return 0, err
	}
	metaPath := filepath.Join(*out, "meta.tsv")
	if err := obs.WriteFileAtomic(metaPath, func(w io.Writer) error {
		return netsim.WriteMeta(w, sim.Meta)
	}); err != nil {
		return 0, err
	}
	prefixPath := filepath.Join(*out, "prefixes.tsv")
	if err := obs.WriteFileAtomic(prefixPath, func(w io.Writer) error {
		return netsim.WritePrefixes(w, sim.CountryPrefixes)
	}); err != nil {
		return 0, err
	}

	fmt.Printf("wrote %s (%d flows), %s (%d DNS transactions), %s, %s\n",
		flowsPath, len(sim.Flows), dnsPath, len(sim.DNS), metaPath, prefixPath)
	outputs := []string{flowsPath, dnsPath, metaPath, prefixPath}

	if *pcapFlows > 0 {
		pcapPath := filepath.Join(*out, "sample.pcap")
		var st pcapgen.Stats
		if err := obs.WriteFileAtomic(pcapPath, func(w io.Writer) error {
			var werr error
			st, werr = pcapgen.Write(w, pcapgen.Options{Flows: *pcapFlows, Seed: *seed, Epoch: sim.Epoch})
			return werr
		}); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %s (%s)\n", pcapPath, st.Describe())
		outputs = append(outputs, pcapPath)
	}
	manifest.AddTiming("write", time.Since(writeStart))

	if tracer != nil {
		traced := tracer.Len()
		if err := tracer.Close(); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := traceTmp.Sync(); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := traceTmp.Close(); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := os.Chmod(traceTmp.Name(), 0o644); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := os.Rename(traceTmp.Name(), *traceOut); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("wrote %s (%d traced flows, 1 in %d)\n", *traceOut, traced, tracer.SampleN())
		manifest.AddTrace(*traceOut, tracer.SampleN())
	}

	if *metricsOut != "" {
		if err := obs.WriteFileAtomic(*metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
		outputs = append(outputs, *metricsOut)
	}

	for _, p := range outputs {
		if err := manifest.AddOutput(p); err != nil {
			return 0, err
		}
	}
	mem := memSampler.Stop()
	manifest.Mem = &mem
	if capture != nil {
		info, err := capture.Stop()
		if err != nil {
			return 0, err
		}
		manifest.Profiles = &info
		fmt.Printf("wrote profiles to %s (%s)\n", info.Dir, strings.Join(prof.ArtifactNames(), ", "))
	}
	if err := manifest.Write(*out); err != nil {
		return 0, err
	}
	fmt.Printf("wrote %s\n", filepath.Join(*out, obs.ManifestName))

	if st := sim.Stats.Status(); st != netsim.StatusOK {
		fmt.Fprintf(os.Stderr, "satgen: run %s: %d/%d customers salvaged, %d errors\n",
			st, sim.Stats.CustomersDone, *customers, len(sim.Stats.Errors))
		return 2, nil
	}
	return 0, nil
}
