// Command satgen generates synthetic SatCom deployment traces: anonymized
// Tstat-style flow/DNS logs from the full simulator, and optionally a
// small packet-level pcap capture whose every byte is decodable (for
// satprobe demos and interoperability tests with standard tooling).
//
// Every run writes a manifest.json next to its outputs (config, seed,
// version, per-stage timings, output digests) so runs are comparable and
// reproducible; -metrics dumps the full metrics registry, -progress
// streams a live status line to stderr, -trace records per-flow latency
// span trees for sampled flows, and -debug-addr serves /metrics,
// /progress and /debug/pprof live (see OBSERVABILITY.md).
//
// Usage:
//
//	satgen -out DIR [-customers 200] [-days 1] [-seed 1] [-parallelism 0]
//	       [-pcap-flows 50] [-metrics FILE] [-progress]
//	       [-trace FILE] [-trace-sample 100]
//	       [-debug-addr :6060] [-debug-linger 0s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/pcapgen"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

func main() {
	out := flag.String("out", "trace", "output directory")
	customers := flag.Int("customers", 200, "population size")
	days := flag.Int("days", 1, "observation window in days")
	seed := flag.Uint64("seed", 1, "deterministic run seed")
	parallelism := flag.Int("parallelism", 0, "simulation workers, both passes (0 = GOMAXPROCS); output is identical at any value")
	intentCacheMB := flag.Int("intent-cache-mb", 0, "pass-A intent cache budget in MiB (0 = 512, negative disables)")
	pcapFlows := flag.Int("pcap-flows", 50, "flows in the demo pcap (0 disables)")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump to this file after the run")
	progress := flag.Bool("progress", false, "print a live progress line to stderr every 2s")
	traceOut := flag.String("trace", "", "write per-flow latency span trees (JSONL) to this file")
	traceSample := flag.Int("trace-sample", 100, "trace 1 in N flows (1 = every flow)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /progress and /debug/pprof on this address")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the run completes")
	flag.Parse()

	// Metrics are cleared at run start so every dump and debug endpoint
	// reflects this run only, not process-lifetime totals.
	obs.Default.Reset()
	start := time.Now()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("satgen: %v", err)
	}

	if *debugAddr != "" {
		bound, stopDebug, err := obs.StartDebugServer(*debugAddr, obs.Default, func() any {
			p := netsim.CurrentProgress()
			p.ElapsedSeconds = time.Since(start).Seconds()
			return p
		})
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", bound)
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(os.Stderr, "debug server lingering %s\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
			stopDebug()
		}()
	}

	if *progress {
		stop := obs.StartProgress(os.Stderr, 2*time.Second, netsim.ProgressLine)
		defer stop()
	}

	var tracer *trace.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		tracer = trace.New(traceFile, *traceSample)
	}

	cfg := netsim.Config{Customers: *customers, Days: *days, Seed: *seed,
		Parallelism: *parallelism, IntentCacheBytes: int64(*intentCacheMB) << 20, Trace: tracer}
	sim, err := netsim.Run(cfg)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	manifest := netsim.ManifestFor("satgen", cfg, sim)

	writeStart := time.Now()
	flowsPath := filepath.Join(*out, "flows.tsv")
	ff, err := os.Create(flowsPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := tstat.WriteFlows(ff, sim.Flows); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	ff.Close()

	dnsPath := filepath.Join(*out, "dns.tsv")
	df, err := os.Create(dnsPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := tstat.WriteDNS(df, sim.DNS); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	df.Close()

	metaPath := filepath.Join(*out, "meta.tsv")
	mf, err := os.Create(metaPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := netsim.WriteMeta(mf, sim.Meta); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	mf.Close()

	prefixPath := filepath.Join(*out, "prefixes.tsv")
	pxf, err := os.Create(prefixPath)
	if err != nil {
		log.Fatalf("satgen: %v", err)
	}
	if err := netsim.WritePrefixes(pxf, sim.CountryPrefixes); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	pxf.Close()

	fmt.Printf("wrote %s (%d flows), %s (%d DNS transactions), %s, %s\n",
		flowsPath, len(sim.Flows), dnsPath, len(sim.DNS), metaPath, prefixPath)
	outputs := []string{flowsPath, dnsPath, metaPath, prefixPath}

	if *pcapFlows > 0 {
		pcapPath := filepath.Join(*out, "sample.pcap")
		pf, err := os.Create(pcapPath)
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		st, err := pcapgen.Write(pf, pcapgen.Options{Flows: *pcapFlows, Seed: *seed, Epoch: sim.Epoch})
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		pf.Close()
		fmt.Printf("wrote %s (%s)\n", pcapPath, st.Describe())
		outputs = append(outputs, pcapPath)
	}
	manifest.AddTiming("write", time.Since(writeStart))

	if tracer != nil {
		traced := tracer.Len()
		if err := tracer.Close(); err != nil {
			log.Fatalf("satgen: trace: %v", err)
		}
		traceFile.Close()
		fmt.Printf("wrote %s (%d traced flows, 1 in %d)\n", *traceOut, traced, tracer.SampleN())
		manifest.AddTrace(*traceOut, tracer.SampleN())
	}

	if *metricsOut != "" {
		mff, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("satgen: %v", err)
		}
		if err := obs.Default.WriteJSON(mff); err != nil {
			log.Fatalf("satgen: metrics dump: %v", err)
		}
		mff.Close()
		outputs = append(outputs, *metricsOut)
	}

	for _, p := range outputs {
		if err := manifest.AddOutput(p); err != nil {
			log.Fatalf("satgen: %v", err)
		}
	}
	if err := manifest.Write(*out); err != nil {
		log.Fatalf("satgen: %v", err)
	}
	fmt.Printf("wrote %s\n", filepath.Join(*out, obs.ManifestName))
}
