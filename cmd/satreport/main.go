// Command satreport runs the full reproduction pipeline and prints every
// table and figure of the paper's evaluation, optionally exporting the
// anonymized flow/DNS logs and the ERRANT emulation profiles.
//
// Simulated runs write a manifest.json next to their outputs (config,
// seed, version, per-stage timings, output digests); -metrics dumps the
// full metrics registry, -progress streams a live status line to stderr,
// -trace records per-flow latency span trees for sampled flows, and
// -debug-addr serves /metrics, /progress and /debug/pprof live (see
// OBSERVABILITY.md).
//
// Usage:
//
//	satreport [-customers 400] [-days 2] [-seed 1] [-parallelism 0]
//	          [-logs DIR] [-errant] [-metrics FILE] [-progress]
//	          [-trace FILE] [-trace-sample 100]
//	          [-debug-addr :6060] [-debug-linger 0s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"satwatch"
	"satwatch/internal/analytics"
	"satwatch/internal/errant"
	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

func main() {
	customers := flag.Int("customers", 400, "population size")
	days := flag.Int("days", 2, "observation window in days")
	seed := flag.Uint64("seed", 1, "deterministic run seed")
	parallelism := flag.Int("parallelism", 0, "simulation workers, both passes (0 = GOMAXPROCS); output is identical at any value")
	intentCacheMB := flag.Int("intent-cache-mb", 0, "pass-A intent cache budget in MiB (0 = 512, negative disables)")
	logsDir := flag.String("logs", "", "directory to write flows.tsv and dns.tsv into")
	fromDir := flag.String("from", "", "re-analyze saved logs (flows.tsv/dns.tsv/meta.tsv/prefixes.tsv) instead of simulating")
	errantOut := flag.Bool("errant", false, "also print ERRANT-style emulation profiles")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump to this file after the run")
	progress := flag.Bool("progress", false, "print a live progress line to stderr every 2s")
	traceOut := flag.String("trace", "", "write per-flow latency span trees (JSONL) to this file")
	traceSample := flag.Int("trace-sample", 100, "trace 1 in N flows (1 = every flow)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /progress and /debug/pprof on this address")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the run completes")
	flag.Parse()

	// Metrics are cleared at run start so every dump and debug endpoint
	// reflects this run only, not process-lifetime totals.
	obs.Default.Reset()
	start := time.Now()

	if *debugAddr != "" {
		bound, stopDebug, err := obs.StartDebugServer(*debugAddr, obs.Default, func() any {
			p := netsim.CurrentProgress()
			p.ElapsedSeconds = time.Since(start).Seconds()
			return p
		})
		if err != nil {
			log.Fatalf("satreport: %v", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", bound)
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(os.Stderr, "debug server lingering %s\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
			stopDebug()
		}()
	}

	if *progress {
		stop := obs.StartProgress(os.Stderr, 2*time.Second, netsim.ProgressLine)
		defer stop()
	}

	var tracer *trace.Tracer
	var traceFile *os.File
	if *traceOut != "" {
		if *fromDir != "" {
			log.Fatalf("satreport: -trace requires a simulated run, not -from")
		}
		var err error
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatalf("satreport: %v", err)
		}
		tracer = trace.New(traceFile, *traceSample)
	}

	p := satwatch.New(
		satwatch.WithCustomers(*customers),
		satwatch.WithDays(*days),
		satwatch.WithSeed(*seed),
		satwatch.WithParallelism(*parallelism),
		satwatch.WithIntentCacheBytes(int64(*intentCacheMB)<<20),
		satwatch.WithTracer(tracer),
	)
	var res *satwatch.Results
	var err error
	if *fromDir != "" {
		res, err = replay(p, *fromDir, *days)
	} else {
		res, err = p.Run()
	}
	if err != nil {
		log.Fatalf("satreport: %v", err)
	}
	fmt.Print(res.RenderAll())
	fmt.Printf("— %d flows, %d DNS transactions, %d customers, %v —\n",
		len(res.Dataset.Flows), len(res.Dataset.DNS), len(res.Output.Meta), time.Since(start).Round(time.Millisecond))

	if *errantOut {
		fmt.Println()
		fmt.Print(errant.Render(errant.BuildProfiles(res.Dataset), "eth0"))
	}

	var outputs []string
	if *logsDir != "" {
		if err := os.MkdirAll(*logsDir, 0o755); err != nil {
			log.Fatalf("satreport: %v", err)
		}
		if err := writeLogs(*logsDir, res); err != nil {
			log.Fatalf("satreport: %v", err)
		}
		fmt.Printf("logs written to %s\n", *logsDir)
		for _, name := range []string{"flows.tsv", "dns.tsv", "meta.tsv", "prefixes.tsv"} {
			outputs = append(outputs, filepath.Join(*logsDir, name))
		}
	}

	if *metricsOut != "" {
		mf, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatalf("satreport: %v", err)
		}
		if err := obs.Default.WriteJSON(mf); err != nil {
			log.Fatalf("satreport: metrics dump: %v", err)
		}
		mf.Close()
		outputs = append(outputs, *metricsOut)
	}

	if tracer != nil {
		traced := tracer.Len()
		if err := tracer.Close(); err != nil {
			log.Fatalf("satreport: trace: %v", err)
		}
		traceFile.Close()
		fmt.Printf("wrote %s (%d traced flows, 1 in %d)\n", *traceOut, traced, tracer.SampleN())
	}

	// Replayed logs carry their producer's manifest; only simulated runs
	// write a fresh one, next to the logs when exported, else in the
	// working directory.
	if *fromDir == "" {
		manifest := netsim.ManifestFor("satreport", p.Config(), res.Output)
		manifest.AddTiming("total", time.Since(start))
		if tracer != nil {
			manifest.AddTrace(*traceOut, tracer.SampleN())
		}
		for _, path := range outputs {
			if err := manifest.AddOutput(path); err != nil {
				log.Fatalf("satreport: %v", err)
			}
		}
		dir := *logsDir
		if dir == "" {
			dir = "."
		}
		if err := manifest.Write(dir); err != nil {
			log.Fatalf("satreport: %v", err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, obs.ManifestName))
	}
}

// replay rebuilds the analysis from logs previously written by satgen or
// satreport -logs: the paper's offline pipeline (probe writes at the
// ground station, the cluster analyzes later). Figure 8b needs the
// simulator's live beam-load statistics and is empty in replay mode.
func replay(p *satwatch.Pipeline, dir string, days int) (*satwatch.Results, error) {
	out := &netsim.Output{}
	ff, err := os.Open(filepath.Join(dir, "flows.tsv"))
	if err != nil {
		return nil, err
	}
	defer ff.Close()
	if out.Flows, err = tstat.ReadFlows(ff); err != nil {
		return nil, err
	}
	df, err := os.Open(filepath.Join(dir, "dns.tsv"))
	if err != nil {
		return nil, err
	}
	defer df.Close()
	if out.DNS, err = tstat.ReadDNS(df); err != nil {
		return nil, err
	}
	mf, err := os.Open(filepath.Join(dir, "meta.tsv"))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	if out.Meta, err = netsim.ReadMeta(mf); err != nil {
		return nil, err
	}
	pf, err := os.Open(filepath.Join(dir, "prefixes.tsv"))
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	if out.CountryPrefixes, err = netsim.ReadPrefixes(pf); err != nil {
		return nil, err
	}
	ds := analytics.NewDataset(out, days)
	return p.Analyze(out, ds), nil
}

func writeLogs(dir string, res *satwatch.Results) error {
	ff, err := os.Create(filepath.Join(dir, "flows.tsv"))
	if err != nil {
		return err
	}
	defer ff.Close()
	if err := tstat.WriteFlows(ff, res.Output.Flows); err != nil {
		return err
	}
	df, err := os.Create(filepath.Join(dir, "dns.tsv"))
	if err != nil {
		return err
	}
	defer df.Close()
	if err := tstat.WriteDNS(df, res.Output.DNS); err != nil {
		return err
	}
	mf, err := os.Create(filepath.Join(dir, "meta.tsv"))
	if err != nil {
		return err
	}
	defer mf.Close()
	if err := netsim.WriteMeta(mf, res.Output.Meta); err != nil {
		return err
	}
	pf, err := os.Create(filepath.Join(dir, "prefixes.tsv"))
	if err != nil {
		return err
	}
	defer pf.Close()
	return netsim.WritePrefixes(pf, res.Output.CountryPrefixes)
}
