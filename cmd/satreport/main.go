// Command satreport runs the full reproduction pipeline and prints every
// table and figure of the paper's evaluation, optionally exporting the
// anonymized flow/DNS logs and the ERRANT emulation profiles.
//
// Simulated runs write a manifest.json next to their outputs (config,
// seed, version, per-stage timings, output digests, run status);
// -metrics dumps the full metrics registry, -progress streams a live
// status line to stderr, -trace records per-flow latency span trees for
// sampled flows, -faults plays back a deterministic fault schedule, and
// -debug-addr serves /metrics, /progress and /debug/pprof live (see
// OBSERVABILITY.md).
//
// Replay (-from) tolerates corrupt log lines by default — they are
// skipped, counted (netsim_rows_skipped_total) and reported, the salvage
// path for logs out of an interrupted run. -strict restores
// fail-on-first-error.
//
// Exit codes: 0 on success, 1 on error, 2 when the analysis ran on
// incomplete data (degraded/interrupted simulation, or skipped rows in
// replay).
//
// Usage:
//
//	satreport [-customers 400] [-days 2] [-seed 1] [-parallelism 0]
//	          [-constellation geo|leo]
//	          [-faults FILE|PRESET] [-logs DIR] [-from DIR] [-strict]
//	          [-errant] [-metrics FILE] [-progress]
//	          [-trace FILE] [-trace-sample 100]
//	          [-debug-addr :6060] [-debug-linger 0s] [-profile DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"satwatch"
	"satwatch/internal/analytics"
	"satwatch/internal/errant"
	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/live"
	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/prof"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satreport:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	customers := flag.Int("customers", 400, "population size")
	days := flag.Int("days", 2, "observation window in days")
	seed := flag.Uint64("seed", 1, "deterministic run seed")
	constellation := flag.String("constellation", "geo", "constellation backend ("+strings.Join(geo.ConstellationNames(), ", ")+")")
	parallelism := flag.Int("parallelism", 0, "simulation workers, both passes (0 = GOMAXPROCS); output is identical at any value")
	intentCacheMB := flag.Int("intent-cache-mb", 0, "pass-A intent cache budget in MiB (0 = 512, negative disables)")
	faultsArg := flag.String("faults", "", "fault schedule: a JSON file or a preset ("+strings.Join(faults.PresetNames(), ", ")+")")
	logsDir := flag.String("logs", "", "directory to write flows.tsv and dns.tsv into")
	fromDir := flag.String("from", "", "re-analyze saved logs (flows.tsv/dns.tsv/meta.tsv/prefixes.tsv) instead of simulating")
	liveHistory := flag.String("live-history", "", "replay a satlive -history window log (file or directory) into report tables instead of simulating")
	strict := flag.Bool("strict", false, "fail on the first corrupt log line in -from replay instead of skipping it")
	errantOut := flag.Bool("errant", false, "also print ERRANT-style emulation profiles")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump to this file after the run")
	progress := flag.Bool("progress", false, "print a live progress line to stderr every 2s")
	traceOut := flag.String("trace", "", "write per-flow latency span trees (JSONL) to this file")
	traceSample := flag.Int("trace-sample", 100, "trace 1 in N flows (1 = every flow)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /progress and /debug/pprof on this address")
	debugLinger := flag.Duration("debug-linger", 0, "keep the debug server up this long after the run completes")
	profileDir := flag.String("profile", "", "capture cpu/heap/goroutine/block profiles into this directory")
	flag.Parse()

	// Metrics are cleared at run start so every dump and debug endpoint
	// reflects this run only, not process-lifetime totals.
	obs.Default.Reset()

	if *liveHistory != "" {
		return runLiveHistory(*liveHistory, *strict, *metricsOut)
	}

	memSampler := obs.StartMemSampler(0)
	start := time.Now()

	var capture *prof.Capture
	if *profileDir != "" {
		c, err := prof.StartCapture(*profileDir)
		if err != nil {
			return 0, err
		}
		capture = c
		defer capture.Stop()
	}

	sched, err := faults.Load(*faultsArg, *days, *seed)
	if err != nil {
		return 0, err
	}

	// First SIGINT/SIGTERM cancels the run gracefully; the second kills.
	// SIGTERM is included so containerized runs drain instead of dying.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if *debugAddr != "" {
		bound, stopDebug, err := obs.StartDebugServer(*debugAddr, obs.Default, func() any {
			p := netsim.CurrentProgress()
			p.ElapsedSeconds = time.Since(start).Seconds()
			return p
		})
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s\n", bound)
		defer func() {
			if *debugLinger > 0 {
				fmt.Fprintf(os.Stderr, "debug server lingering %s\n", *debugLinger)
				time.Sleep(*debugLinger)
			}
			stopDebug()
		}()
	}

	if *progress {
		stopProgress := obs.StartProgress(os.Stderr, 2*time.Second, netsim.ProgressLine)
		defer stopProgress()
	}

	var tracer *trace.Tracer
	var traceTmp *os.File
	if *traceOut != "" {
		if *fromDir != "" {
			return 0, fmt.Errorf("-trace requires a simulated run, not -from")
		}
		dir, base := filepath.Split(*traceOut)
		if dir == "" {
			dir = "."
		}
		traceTmp, err = os.CreateTemp(dir, "."+base+".tmp*")
		if err != nil {
			return 0, err
		}
		defer os.Remove(traceTmp.Name())
		tracer = trace.New(traceTmp, *traceSample)
	}

	p := satwatch.New(
		satwatch.WithCustomers(*customers),
		satwatch.WithDays(*days),
		satwatch.WithSeed(*seed),
		satwatch.WithConstellation(*constellation),
		satwatch.WithParallelism(*parallelism),
		satwatch.WithIntentCacheBytes(int64(*intentCacheMB)<<20),
		satwatch.WithTracer(tracer),
		satwatch.WithFaults(sched),
	)
	var res *satwatch.Results
	skipped := 0
	if *fromDir != "" {
		res, skipped, err = replay(p, *fromDir, *days, *strict)
	} else {
		res, err = p.RunContext(ctx)
	}
	if err != nil {
		return 0, err
	}
	fmt.Print(res.RenderAll())
	fmt.Println(res.Signatures.Render())
	fmt.Printf("— %d flows, %d DNS transactions, %d customers, %v —\n",
		len(res.Dataset.Flows), len(res.Dataset.DNS), len(res.Output.Meta), time.Since(start).Round(time.Millisecond))

	if *errantOut {
		fmt.Println()
		fmt.Print(errant.Render(errant.BuildProfiles(res.Dataset), "eth0"))
	}

	var outputs []string
	if *logsDir != "" {
		if err := os.MkdirAll(*logsDir, 0o755); err != nil {
			return 0, err
		}
		if err := writeLogs(*logsDir, res); err != nil {
			return 0, err
		}
		fmt.Printf("logs written to %s\n", *logsDir)
		for _, name := range []string{"flows.tsv", "dns.tsv", "meta.tsv", "prefixes.tsv"} {
			outputs = append(outputs, filepath.Join(*logsDir, name))
		}
	}

	if *metricsOut != "" {
		if err := obs.WriteFileAtomic(*metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
		outputs = append(outputs, *metricsOut)
	}

	if tracer != nil {
		traced := tracer.Len()
		if err := tracer.Close(); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := traceTmp.Sync(); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := traceTmp.Close(); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := os.Chmod(traceTmp.Name(), 0o644); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		if err := os.Rename(traceTmp.Name(), *traceOut); err != nil {
			return 0, fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("wrote %s (%d traced flows, 1 in %d)\n", *traceOut, traced, tracer.SampleN())
	}

	// Replayed logs carry their producer's manifest; only simulated runs
	// write a fresh one, next to the logs when exported, else in the
	// working directory.
	if *fromDir == "" {
		manifest := netsim.ManifestFor("satreport", p.Config(), res.Output)
		manifest.AddTiming("total", time.Since(start))
		if tracer != nil {
			manifest.AddTrace(*traceOut, tracer.SampleN())
		}
		for _, path := range outputs {
			if err := manifest.AddOutput(path); err != nil {
				return 0, err
			}
		}
		mem := memSampler.Stop()
		manifest.Mem = &mem
		if capture != nil {
			info, err := capture.Stop()
			if err != nil {
				return 0, err
			}
			manifest.Profiles = &info
			fmt.Printf("wrote profiles to %s (%s)\n", info.Dir, strings.Join(prof.ArtifactNames(), ", "))
		}
		dir := *logsDir
		if dir == "" {
			dir = "."
		}
		if err := manifest.Write(dir); err != nil {
			return 0, err
		}
		fmt.Printf("wrote %s\n", filepath.Join(dir, obs.ManifestName))
	}

	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "satreport: skipped %d corrupt log lines (use -strict to fail instead)\n", skipped)
		return 2, nil
	}
	if *fromDir == "" {
		if st := res.Output.Stats.Status(); st != netsim.StatusOK {
			fmt.Fprintf(os.Stderr, "satreport: run %s: %d/%d customers salvaged, %d errors\n",
				st, res.Output.Stats.CustomersDone, *customers, len(res.Output.Stats.Errors))
			return 2, nil
		}
	}
	return 0, nil
}

// runLiveHistory replays a satlive window-history log into the standard
// report tables: the offline view of what the daemon's /analytics
// served. path may be the log file itself or a -history directory.
// Unless strict, corrupt lines (a crash-truncated tail) are skipped and
// counted, exiting 2 like every other salvage path.
func runLiveHistory(path string, strict bool, metricsOut string) (int, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, live.HistoryFileName)
	}
	ws, st, err := live.ReadHistoryFile(path)
	if err != nil {
		return 0, err
	}
	if strict && st.Skipped > 0 {
		return 0, fmt.Errorf("%s: %d corrupt history lines", path, st.Skipped)
	}
	netsim.CountSkippedRows(st.Skipped)
	fmt.Print(live.RenderHistory(ws))
	if metricsOut != "" {
		if err := obs.WriteFileAtomic(metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, fmt.Errorf("metrics dump: %w", err)
		}
	}
	if st.Skipped > 0 {
		fmt.Fprintf(os.Stderr, "satreport: skipped %d corrupt history lines (use -strict to fail instead)\n", st.Skipped)
		return 2, nil
	}
	return 0, nil
}

// replay rebuilds the analysis from logs previously written by satgen or
// satreport -logs: the paper's offline pipeline (probe writes at the
// ground station, the cluster analyzes later). Figure 8b needs the
// simulator's live beam-load statistics and is empty in replay mode.
// Unless strict, corrupt lines are skipped and counted — the salvage
// path for logs out of an interrupted run.
func replay(p *satwatch.Pipeline, dir string, days int, strict bool) (*satwatch.Results, int, error) {
	out := &netsim.Output{}
	skipped := 0
	ff, err := os.Open(filepath.Join(dir, "flows.tsv"))
	if err != nil {
		return nil, 0, err
	}
	defer ff.Close()
	if strict {
		out.Flows, err = tstat.ReadFlows(ff)
	} else {
		var st tstat.ReadStats
		out.Flows, st, err = tstat.ReadFlowsTolerant(ff)
		skipped += st.Skipped
	}
	if err != nil {
		return nil, 0, err
	}
	df, err := os.Open(filepath.Join(dir, "dns.tsv"))
	if err != nil {
		return nil, 0, err
	}
	defer df.Close()
	if strict {
		out.DNS, err = tstat.ReadDNS(df)
	} else {
		var st tstat.ReadStats
		out.DNS, st, err = tstat.ReadDNSTolerant(df)
		skipped += st.Skipped
	}
	if err != nil {
		return nil, 0, err
	}
	mf, err := os.Open(filepath.Join(dir, "meta.tsv"))
	if err != nil {
		return nil, 0, err
	}
	defer mf.Close()
	if strict {
		out.Meta, err = netsim.ReadMeta(mf)
	} else {
		var st tstat.ReadStats
		out.Meta, st, err = netsim.ReadMetaTolerant(mf)
		skipped += st.Skipped
	}
	if err != nil {
		return nil, 0, err
	}
	pf, err := os.Open(filepath.Join(dir, "prefixes.tsv"))
	if err != nil {
		return nil, 0, err
	}
	defer pf.Close()
	if out.CountryPrefixes, err = netsim.ReadPrefixes(pf); err != nil {
		return nil, 0, err
	}
	netsim.CountSkippedRows(skipped)
	ds := analytics.NewDataset(out, days)
	return p.Analyze(out, ds), skipped, nil
}

func writeLogs(dir string, res *satwatch.Results) error {
	if err := obs.WriteFileAtomic(filepath.Join(dir, "flows.tsv"), func(w io.Writer) error {
		return tstat.WriteFlows(w, res.Output.Flows)
	}); err != nil {
		return err
	}
	if err := obs.WriteFileAtomic(filepath.Join(dir, "dns.tsv"), func(w io.Writer) error {
		return tstat.WriteDNS(w, res.Output.DNS)
	}); err != nil {
		return err
	}
	if err := obs.WriteFileAtomic(filepath.Join(dir, "meta.tsv"), func(w io.Writer) error {
		return netsim.WriteMeta(w, res.Output.Meta)
	}); err != nil {
		return err
	}
	return obs.WriteFileAtomic(filepath.Join(dir, "prefixes.tsv"), func(w io.Writer) error {
		return netsim.WritePrefixes(w, res.Output.CountryPrefixes)
	})
}
