// Command satdiff compares two performance artifacts and flags
// regressions, so CI (and humans) can tell whether a change made the
// pipeline slower, hungrier, or differently-behaved. It understands three
// schemas, auto-detected from the file contents — both files must carry
// the same one:
//
//   - BENCH_*.json snapshots written by cmd/satbench
//   - manifest.json files written next to run outputs
//   - -metrics registry dumps from any of the CLIs
//
// Every numeric metric is compared against a relative tolerance
// (-tolerance, default ±10%), overridable per metric or glob pattern via
// a JSON tolerances file (-tolerances; a negative tolerance excludes a
// metric). Content digests must match exactly unless -ignore-digests;
// metrics present in only one artifact are failures unless
// -allow-missing.
//
// Exit codes: 0 when everything is within tolerance, 1 on regression
// (out-of-tolerance metric, digest mismatch, or metric-set drift), 2 on
// error (unreadable file, schema mismatch, bad flags).
//
// Usage:
//
//	satdiff [-tolerance 0.1] [-tolerances FILE] [-allow-missing]
//	        [-ignore-digests] [-v] OLD NEW
package main

import (
	"flag"
	"fmt"
	"os"

	"satwatch/internal/bench"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run() (int, error) {
	tolerance := flag.Float64("tolerance", 0.10, "default relative tolerance as a fraction (0.1 = ±10%; 0 = exact)")
	tolFile := flag.String("tolerances", "", "JSON file with per-metric tolerance overrides ({\"default\": f, \"metrics\": {\"name-or-glob\": f}})")
	allowMissing := flag.Bool("allow-missing", false, "report metrics present in only one artifact instead of failing on them")
	ignoreDigests := flag.Bool("ignore-digests", false, "report output-digest mismatches instead of failing on them")
	verbose := flag.Bool("v", false, "print every compared metric, not only violations")
	flag.Parse()

	if flag.NArg() != 2 {
		flag.Usage()
		return 0, fmt.Errorf("need exactly two artifacts to compare, got %d", flag.NArg())
	}
	tol, err := bench.LoadTolerances(*tolFile, *tolerance)
	if err != nil {
		return 0, err
	}
	base, err := bench.ReadArtifact(flag.Arg(0))
	if err != nil {
		return 0, err
	}
	cur, err := bench.ReadArtifact(flag.Arg(1))
	if err != nil {
		return 0, err
	}
	fmt.Printf("comparing %s artifacts: %s → %s\n", base.Kind, flag.Arg(0), flag.Arg(1))

	d, err := bench.Diff(base, cur, tol, *allowMissing, *ignoreDigests)
	if err != nil {
		return 0, err
	}
	d.Render(os.Stdout, *verbose)
	if len(d.Regressions) > 0 {
		return 1, nil
	}
	return 0, nil
}
