// Command satlive is the always-on streaming daemon: it feeds a
// continuous synthetic flow stream through the full model stack in
// simulated real time (default 60 sim-seconds per wall second) and folds
// the resulting records into rolling analytics windows. The stages are
// connected by bounded queues — the generator edge blocks (backpressure),
// the worker and analytics edges shed and count — and a per-stage
// watchdog restarts wedged stages into degraded mode, so the daemon
// survives overload instead of falling over.
//
// -control-addr serves the control plane: the familiar /metrics,
// /progress and /debug/pprof plus /healthz, /readyz, /analytics,
// /trace/recent, /metrics/history, the embedded /dashboard observatory
// and the mutating /control/{rate,faults,scenario} endpoints (see
// OBSERVABILITY.md).
//
// -trace-sample N samples 1 in N flows into the live flight recorder
// (ring + optional -trace DIR rotating JSONL, readable with sattrace).
// -history DIR persists finalized analytics windows to a crash-tolerant
// JSONL log replayed at startup, so a restarted daemon serves the same
// /analytics history and resumes the sim clock past it.
//
// SIGINT/SIGTERM (or -duration elapsing) triggers a graceful drain:
// generation stops, queues empty, trackers flush, analytics windows
// finalize, and the manifest lands with status "partial" (signal) or
// "ok" (duration reached). -soak runs the self-checking soak mode: a
// fixed-length run with an overload phase that exits nonzero on leaked
// goroutines, undrained queues, or unbounded heap growth.
//
// Exit codes: 0 ok, 1 error or failed soak, 2 interrupted (partial).
//
// Usage:
//
//	satlive [-customers 400] [-seed 1] [-constellation geo|leo]
//	        [-faults PRESET|FILE] [-speedup 60] [-workers 4] [-rate 1]
//	        [-window 10m] [-duration 0] [-control-addr 127.0.0.1:0]
//	        [-out DIR] [-metrics FILE] [-trace DIR] [-trace-sample N]
//	        [-history DIR] [-metrics-every 30s]
//	satlive -soak 30s [-faults stress] [...]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/live"
	"satwatch/internal/obs"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satlive:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	customers := flag.Int("customers", 400, "population size")
	seed := flag.Uint64("seed", 1, "deterministic run seed")
	constellation := flag.String("constellation", "geo", "orbit backend: geo or leo")
	faultsArg := flag.String("faults", "", "initial fault schedule (preset name or JSON file)")
	speedup := flag.Float64("speedup", 60, "simulated seconds per wall second")
	workers := flag.Int("workers", 4, "synthesis worker shards")
	rate := flag.Float64("rate", 1, "initial workload rate multiplier")
	window := flag.Duration("window", 10*time.Minute, "analytics window length (simulated)")
	grace := flag.Duration("grace", 10*time.Minute, "late-record grace before a window finalizes (simulated)")
	duration := flag.Duration("duration", 0, "stop after this wall duration (0 = run until signalled)")
	stallTimeout := flag.Duration("stall-timeout", 5*time.Second, "watchdog heartbeat deadline per stage")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "graceful-drain budget before hard abort")
	controlAddr := flag.String("control-addr", "127.0.0.1:0", "control-plane listen address (\"\" disables)")
	outDir := flag.String("out", "", "write manifest.json and windows.json here on exit")
	metricsOut := flag.String("metrics", "", "write a JSON metrics dump here on exit")
	soak := flag.Duration("soak", 0, "run the self-checking soak mode for this wall duration")
	traceDir := flag.String("trace", "", "write sampled flow span trees as rotating JSONL here")
	traceSample := flag.Int("trace-sample", 0, "trace 1 in N flows on the streaming path (0 disables, 1 = all)")
	traceRing := flag.Int("trace-ring", live.DefaultTraceRing, "recent traced flows retained for /trace/recent")
	traceFileMB := flag.Int("trace-file-mb", 8, "trace log size cap per file before rotation (MiB)")
	traceKeep := flag.Int("trace-keep", 4, "rotated trace files kept")
	historyDir := flag.String("history", "", "persist finalized windows to a JSONL log here and replay it at startup")
	metricsEvery := flag.Duration("metrics-every", 30*time.Second, "/metrics/history sampling cadence (simulated)")
	metricsKeep := flag.Int("metrics-keep", obs.DefaultHistoryKeep, "registry time-series points retained")
	flag.Parse()

	if *traceDir != "" && *traceSample <= 0 {
		*traceSample = 100 // -trace alone means "trace, at the default rate"
	}

	// Metrics reflect this run only.
	obs.Default.Reset()
	start := time.Now()

	var sched *faults.Schedule
	if *faultsArg != "" {
		var err error
		sched, err = faults.Load(*faultsArg, 1, *seed)
		if err != nil {
			return 0, err
		}
	}
	cfg := live.Config{
		Customers: *customers, Seed: *seed,
		Constellation: *constellation, Faults: sched,
		Speedup: *speedup, Workers: *workers, Rate: *rate,
		Window: *window, Grace: *grace,
		StallTimeout: *stallTimeout, DrainTimeout: *drainTimeout,
		TraceSample: *traceSample, TraceDir: *traceDir, TraceRing: *traceRing,
		TraceFileMaxBytes: int64(*traceFileMB) << 20, TraceKeepFiles: *traceKeep,
		HistoryDir:   *historyDir,
		MetricsEvery: *metricsEvery, MetricsKeep: *metricsKeep,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	if *soak > 0 {
		return runSoak(cfg, *soak, *outDir, *metricsOut)
	}

	// First SIGINT/SIGTERM drains gracefully; a second one kills the
	// process (NotifyContext restores default handling after stop).
	// Installed before the (slow) pipeline build so a signal during
	// startup still exits through the drain path instead of the default
	// handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p, err := live.New(cfg)
	if err != nil {
		return 0, err
	}

	if *controlAddr != "" {
		bound, stopSrv, err := obs.StartServer(*controlAddr, live.ControlHandler(p, obs.Default))
		if err != nil {
			return 0, err
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "satlive: control plane on http://%s\n", bound)
	}

	interrupted := false
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	runErr := p.Run(ctx)
	// NotifyContext cancels with Canceled on a signal; the -duration
	// timeout surfaces as DeadlineExceeded — only the former is "partial".
	interrupted = ctx.Err() == context.Canceled
	stop()

	status := "ok"
	code := 0
	switch {
	case interrupted:
		status = "partial"
		code = 2
	case runErr != nil:
		status = "degraded"
	}
	if d, _ := p.Degraded(); d && status == "ok" {
		status = "degraded"
	}
	if err := writeOutputs(p, cfg, *outDir, *metricsOut, status, time.Since(start)); err != nil {
		return 0, err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "satlive:", runErr)
	}
	pr := p.Progress()
	fmt.Fprintf(os.Stderr, "satlive: %s after %s wall (%.0f sim-seconds): %d intents, %d flow records, %d dns records, %d windows\n",
		status, time.Since(start).Round(time.Millisecond), pr.SimSeconds,
		pr.Intents, pr.FlowRecords, pr.DNSRecords, pr.Windows)
	return code, nil
}

// writeOutputs lands the manifest, the finalized analytics windows, and
// the metrics dump. Everything is written atomically so a kill mid-write
// never leaves a truncated file at its final name.
func writeOutputs(p *live.Pipeline, cfg live.Config, outDir, metricsOut, status string, wall time.Duration) error {
	var outputs []string
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		windows := filepath.Join(outDir, "windows.json")
		if err := obs.WriteFileAtomic(windows, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(p.Analytics().Recent())
		}); err != nil {
			return err
		}
		outputs = append(outputs, windows)
	}
	if metricsOut != "" {
		if err := obs.WriteFileAtomic(metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return err
		}
		outputs = append(outputs, metricsOut)
	}
	if outDir == "" {
		return nil
	}
	m := obs.NewManifest("satlive", cfg.Seed)
	m.Parallelism = cfg.Workers
	m.Config = cfg
	m.Status = status
	if sched := p.Sim().Faults(); sched != nil {
		m.Faults = sched
	}
	if _, reason := p.Degraded(); reason != "" {
		m.Errors = append(m.Errors, reason)
	}
	m.AddTiming("run", wall)
	for _, path := range outputs {
		if err := m.AddOutput(path); err != nil {
			return err
		}
	}
	return m.Write(outDir)
}

// runSoak drives the self-checking soak mode and reports the verdict.
func runSoak(cfg live.Config, dur time.Duration, outDir, metricsOut string) (int, error) {
	rep, err := live.Soak(cfg, dur)
	if err != nil {
		return 0, err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return 0, err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return 0, err
		}
	}
	if metricsOut != "" {
		if err := obs.WriteFileAtomic(metricsOut, func(w io.Writer) error {
			return obs.Default.WriteJSON(w)
		}); err != nil {
			return 0, err
		}
	}
	if outDir != "" {
		if err := obs.WriteFileAtomic(filepath.Join(outDir, "soak.json"), func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}); err != nil {
			return 0, err
		}
	}
	if !rep.OK() {
		return 0, fmt.Errorf("soak failed: %v %s", rep.Failures, rep.DrainErr)
	}
	fmt.Fprintf(os.Stderr, "satlive: soak ok: %d intents, %d flow records, %d windows, goroutines %d→%d\n",
		rep.Progress.Intents, rep.Progress.FlowRecords, rep.Progress.Windows,
		rep.GoroutinesBefore, rep.GoroutinesAfter)
	return 0, nil
}
