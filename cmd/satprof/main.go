// Command satprof renders the profile artifacts a -profile run captures,
// without needing the pprof toolchain: the top-K allocation sites of the
// heap profile (sampled values unscaled to estimates), the per-stage
// allocation breakdown recorded in the run manifest, and the goroutine
// inventory. With two arguments it diffs two heap profiles A→B, ranking
// allocation sites by absolute change — the "which function started
// allocating" answer for a bench regression.
//
// Each argument is a run directory (satprof follows manifest.json to the
// capture directory), a capture directory (containing heap.pprof), or a
// heap profile file itself.
//
// Exit codes: 0 on success, 1 on error.
//
// Usage:
//
//	satprof [-top 10] [-sort alloc|inuse] [-goroutines] RUN
//	satprof [-top 10] [-sort alloc|inuse] OLD NEW
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"satwatch/internal/obs"
	"satwatch/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "satprof:", err)
		os.Exit(1)
	}
}

func run() error {
	topK := flag.Int("top", 10, "allocation sites to show")
	sortBy := flag.String("sort", "alloc", "rank sites by \"alloc\" (cumulative allocated) or \"inuse\" (live at capture)")
	goroutines := flag.Bool("goroutines", false, "also print the goroutine inventory")
	flag.Parse()
	if *sortBy != "alloc" && *sortBy != "inuse" {
		return fmt.Errorf("-sort %q: want alloc or inuse", *sortBy)
	}
	switch flag.NArg() {
	case 1:
		return report(flag.Arg(0), *topK, *sortBy, *goroutines)
	case 2:
		return diff(flag.Arg(0), flag.Arg(1), *topK, *sortBy)
	default:
		return fmt.Errorf("want one run (report) or two (diff), got %d arguments", flag.NArg())
	}
}

// resolve maps an argument to its heap profile path and, when the
// argument led through a run directory, the run's manifest.
func resolve(arg string) (heapPath string, manifest *obs.Manifest, err error) {
	st, err := os.Stat(arg)
	if err != nil {
		return "", nil, err
	}
	if !st.IsDir() {
		return arg, nil, nil
	}
	// A run directory carries a manifest pointing at the capture
	// directory; a capture directory holds heap.pprof directly.
	if m, merr := obs.ReadManifest(arg); merr == nil {
		if m.Profiles == nil {
			return "", nil, fmt.Errorf("%s: manifest has no profiles block (run with -profile DIR)", arg)
		}
		dir := m.Profiles.Dir
		if !filepath.IsAbs(dir) {
			// The dir was recorded as given on the command line; try it
			// as-is first, then relative to the run directory.
			if _, serr := os.Stat(dir); serr != nil {
				if alt := filepath.Join(arg, dir); fileExists(filepath.Join(alt, prof.HeapProfileName)) {
					dir = alt
				}
			}
		}
		return filepath.Join(dir, prof.HeapProfileName), m, nil
	}
	if p := filepath.Join(arg, prof.HeapProfileName); fileExists(p) {
		return p, nil, nil
	}
	return "", nil, fmt.Errorf("%s: neither a run manifest nor a capture directory", arg)
}

func fileExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && !st.IsDir()
}

func parseHeap(path string) (*prof.HeapProfile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	hp, err := prof.ParseHeap(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return hp, nil
}

func report(arg string, topK int, sortBy string, goroutines bool) error {
	heapPath, m, err := resolve(arg)
	if err != nil {
		return err
	}
	if m != nil {
		printStages(m)
	}
	hp, err := parseHeap(heapPath)
	if err != nil {
		return err
	}
	sites := prof.Sites(hp)
	rankSites(sites, sortBy)
	fmt.Printf("top %d allocation sites by %s (%s, sample rate %s):\n",
		min(topK, len(sites)), sortBy, heapPath, formatBytes(uint64(hp.Rate)))
	fmt.Printf("%14s %12s %14s %12s  %s\n", "alloc_bytes", "alloc_objs", "inuse_bytes", "inuse_objs", "function")
	for i, s := range sites {
		if i >= topK {
			break
		}
		fmt.Printf("%14s %12d %14s %12d  %s\n",
			formatBytes(uint64(s.AllocBytes)), s.AllocObjects,
			formatBytes(uint64(s.InuseBytes)), s.InuseObjects, siteName(s.Func, s.File))
	}
	if goroutines {
		gp, err := parseGoroutines(heapPath)
		if err != nil {
			return err
		}
		fmt.Printf("\ngoroutines: %d total\n", gp.Total)
		for _, g := range gp.Groups {
			fmt.Printf("%6d  %s\n", g.Count, g.Site().Func)
		}
	}
	return nil
}

func parseGoroutines(heapPath string) (*prof.GoroutineProfile, error) {
	p := filepath.Join(filepath.Dir(heapPath), prof.GoroutineProfileName)
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gp, err := prof.ParseGoroutine(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	return gp, nil
}

// printStages renders the manifest's per-stage allocation accounting, in
// a stable pipeline order with unknown stages appended alphabetically.
func printStages(m *obs.Manifest) {
	if len(m.Allocs) == 0 {
		return
	}
	known := []string{"pass_a", "mac_prebuild", "pass_b", "merge", "report"}
	seen := map[string]bool{}
	var order []string
	for _, s := range known {
		if _, ok := m.Allocs[s]; ok {
			order = append(order, s)
			seen[s] = true
		}
	}
	var rest []string
	for s := range m.Allocs {
		if !seen[s] {
			rest = append(rest, s)
		}
	}
	sort.Strings(rest)
	order = append(order, rest...)

	var totalBytes, totalObjs uint64
	for _, a := range m.Allocs {
		totalBytes += a.Bytes
		totalObjs += a.Objects
	}
	fmt.Printf("per-stage allocations (%s run, seed %d):\n", m.Tool, m.Seed)
	fmt.Printf("%-14s %12s %14s %8s %9s\n", "stage", "bytes", "objects", "bytes%", "wall_s")
	for _, s := range order {
		a := m.Allocs[s]
		pct := 0.0
		if totalBytes > 0 {
			pct = 100 * float64(a.Bytes) / float64(totalBytes)
		}
		fmt.Printf("%-14s %12s %14d %7.1f%% %9.3f\n",
			s, formatBytes(a.Bytes), a.Objects, pct, m.TimingsSeconds[s])
	}
	fmt.Printf("%-14s %12s %14d\n", "total", formatBytes(totalBytes), totalObjs)
	if m.AllocBytesPerFlow > 0 {
		fmt.Printf("alloc bytes per flow: %.0f\n", m.AllocBytesPerFlow)
	}
	fmt.Println()
}

func diff(oldArg, newArg string, topK int, sortBy string) error {
	oldPath, _, err := resolve(oldArg)
	if err != nil {
		return err
	}
	newPath, _, err := resolve(newArg)
	if err != nil {
		return err
	}
	oldHP, err := parseHeap(oldPath)
	if err != nil {
		return err
	}
	newHP, err := parseHeap(newPath)
	if err != nil {
		return err
	}
	deltas := prof.DiffSites(prof.Sites(oldHP), prof.Sites(newHP))
	var oldTotal, newTotal int64
	for _, d := range deltas {
		oldTotal += d.Old.AllocBytes
		newTotal += d.New.AllocBytes
	}
	fmt.Printf("heap diff %s -> %s\n", oldPath, newPath)
	fmt.Printf("total allocated: %s -> %s (%s)\n",
		formatBytes(uint64(oldTotal)), formatBytes(uint64(newTotal)), formatDelta(newTotal-oldTotal))
	fmt.Printf("top %d allocation sites by |delta alloc_bytes|:\n", min(topK, len(deltas)))
	fmt.Printf("%14s %14s %14s  %s\n", "old", "new", "delta", "function")
	shown := 0
	for _, d := range deltas {
		if shown >= topK {
			break
		}
		if d.DeltaAllocBytes() == 0 && sortBy == "alloc" {
			continue
		}
		fmt.Printf("%14s %14s %14s  %s\n",
			formatBytes(uint64(d.Old.AllocBytes)), formatBytes(uint64(d.New.AllocBytes)),
			formatDelta(d.DeltaAllocBytes()), siteName(d.Func, d.File))
		shown++
	}
	if shown == 0 {
		fmt.Println("(no allocation sites changed)")
	}
	return nil
}

func rankSites(sites []prof.Site, by string) {
	if by != "inuse" {
		return // Sites already sorts by alloc bytes
	}
	sort.SliceStable(sites, func(i, j int) bool {
		return sites[i].InuseBytes > sites[j].InuseBytes
	})
}

func siteName(fn, file string) string {
	if file == "" {
		return fn
	}
	// Trim the path down to the last two elements: enough to recognize
	// internal/netsim/netsim.go:610 without the checkout prefix.
	parts := strings.Split(filepath.ToSlash(file), "/")
	if len(parts) > 3 {
		parts = parts[len(parts)-3:]
	}
	return fn + " (" + strings.Join(parts, "/") + ")"
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func formatDelta(d int64) string {
	if d < 0 {
		return "-" + formatBytes(uint64(-d))
	}
	return "+" + formatBytes(uint64(d))
}
