// Command satbench runs the performance-observatory scenario matrix
// (population size × fault schedule × parallelism) through the in-process
// pipeline and writes a schema-versioned BENCH_<UTC-stamp>.json snapshot:
// per-stage wall times from the manifest plumbing, flows/s, memory deltas
// and sampled peak heap, an environment fingerprint, output digests and a
// full metrics-registry snapshot per scenario. A human-readable table
// goes to stdout. Compare two snapshots with cmd/satdiff.
//
// satbench also enforces the determinism contract inside the snapshot:
// scenarios that differ only in parallelism must digest identically, and
// the run fails if they do not.
//
// Exit codes: 0 on success, 1 on error (including a determinism
// violation).
//
// Usage:
//
//	satbench [-matrix full|reduced] [-scenarios GLOB] [-seed 42]
//	         [-out FILE] [-list] [-profile DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"satwatch/internal/bench"
	"satwatch/internal/prof"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "satbench:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run() (int, error) {
	matrixName := flag.String("matrix", "full", "scenario matrix: full (24 scenarios) or reduced (the 16-scenario CI set)")
	filter := flag.String("scenarios", "", "run only scenarios whose name matches this glob (e.g. 'small-*')")
	seed := flag.Uint64("seed", 42, "deterministic seed shared by every scenario")
	out := flag.String("out", "", "output file (default BENCH_<UTC-stamp>.json in the working directory)")
	list := flag.Bool("list", false, "print the selected scenarios and exit")
	profileDir := flag.String("profile", "", "capture cpu/heap/goroutine/block profiles (spanning every scenario) into this directory")
	flag.Parse()

	var scenarios []bench.Scenario
	switch *matrixName {
	case "full":
		scenarios = bench.Matrix(*seed)
	case "reduced":
		scenarios = bench.ReducedMatrix(*seed)
	default:
		return 0, fmt.Errorf("unknown matrix %q (want full or reduced)", *matrixName)
	}
	scenarios, err := bench.Filter(scenarios, *filter)
	if err != nil {
		return 0, err
	}
	if len(scenarios) == 0 {
		return 0, fmt.Errorf("no scenarios match -scenarios %q in the %s matrix", *filter, *matrixName)
	}

	if *list {
		for _, sc := range scenarios {
			faults := sc.Faults
			if faults == "" {
				faults = "clear"
			}
			fmt.Printf("%-20s customers=%d days=%d seed=%d parallelism=%d faults=%s\n",
				sc.Name, sc.Customers, sc.Days, sc.Seed, sc.Parallelism, faults)
		}
		return 0, nil
	}

	var capture *prof.Capture
	if *profileDir != "" {
		capture, err = prof.StartCapture(*profileDir)
		if err != nil {
			return 0, err
		}
		defer capture.Stop()
	}

	fmt.Fprintf(os.Stderr, "running %d scenarios (%s matrix, seed %d)\n", len(scenarios), *matrixName, *seed)
	report, err := bench.RunMatrix(scenarios, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		return 0, err
	}
	if capture != nil {
		info, err := capture.Stop()
		if err != nil {
			return 0, err
		}
		report.Profiles = &info
		fmt.Fprintf(os.Stderr, "wrote profiles to %s\n", info.Dir)
	}

	groups, err := report.VerifyDigests()
	if err != nil {
		return 0, err
	}

	path := *out
	if path == "" {
		path = bench.DefaultFileName(time.Now())
	}
	if err := report.WriteFile(path); err != nil {
		return 0, err
	}

	fmt.Print(report.Table())
	fmt.Printf("determinism: %d equal-seed scenario groups byte-identical across parallelism\n", groups)
	fmt.Printf("wrote %s (%d scenarios, schema %d)\n", path, len(report.Scenarios), report.Schema)
	return 0, nil
}
