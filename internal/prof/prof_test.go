package prof

import (
	"context"
	"runtime/pprof"
	"sync"
	"testing"
)

func labelOf(ctx context.Context, key string) string {
	v, _ := pprof.Label(ctx, key)
	return v
}

func TestStageLabelsContext(t *testing.T) {
	var got string
	Stage(context.Background(), StagePassA, func(ctx context.Context) {
		got = labelOf(ctx, "stage")
	})
	if got != StagePassA {
		t.Fatalf("stage label = %q, want %q", got, StagePassA)
	}
}

func TestWorkerStacksOnStage(t *testing.T) {
	var stage, worker string
	Stage(context.Background(), StagePassB, func(ctx context.Context) {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			Worker(ctx, 3, func(wctx context.Context) {
				stage = labelOf(wctx, "stage")
				worker = labelOf(wctx, "worker")
			})
		}()
		wg.Wait()
	})
	if stage != StagePassB || worker != "3" {
		t.Fatalf("labels = stage:%q worker:%q, want stage:%q worker:\"3\"", stage, worker, StagePassB)
	}
}

func TestDoSwapsStageKeepsWorker(t *testing.T) {
	var stage, worker string
	Stage(context.Background(), StagePassB, func(ctx context.Context) {
		Worker(ctx, 1, func(wctx context.Context) {
			Do(wctx, StageTstat, func() {
				// Do's callback has no ctx; verify via the goroutine's
				// current label set instead.
			})
			// The labels applied by Do are visible to the goroutine while
			// fn runs; read them from inside via a nested pprof.Do.
			pprof.Do(wctx, pprof.Labels("stage", StageTstat), func(ictx context.Context) {
				stage = labelOf(ictx, "stage")
				worker = labelOf(ictx, "worker")
			})
		})
	})
	if stage != StageTstat || worker != "1" {
		t.Fatalf("labels = stage:%q worker:%q, want stage:%q worker:\"1\"", stage, worker, StageTstat)
	}
}

func TestStageReportsAllocations(t *testing.T) {
	var sink [][]byte
	info := Stage(context.Background(), StageMerge, func(context.Context) {
		for i := 0; i < 100; i++ {
			sink = append(sink, make([]byte, 4096))
		}
	})
	_ = sink
	if info.Bytes < 100*4096 {
		t.Fatalf("alloc bytes = %d, want >= %d", info.Bytes, 100*4096)
	}
	if info.Objects < 100 {
		t.Fatalf("alloc objects = %d, want >= 100", info.Objects)
	}
}

func TestMeasureAlloc(t *testing.T) {
	var sink []byte
	info := MeasureAlloc(func() { sink = make([]byte, 1<<20) })
	_ = sink
	if info.Bytes < 1<<20 {
		t.Fatalf("alloc bytes = %d, want >= %d", info.Bytes, 1<<20)
	}
}

func TestStageLabelsListMatchesConstants(t *testing.T) {
	want := []string{StagePassA, StageMACPrebuild, StagePassB, StageMerge, StageTstat, StageReport}
	got := StageLabels()
	if len(got) != len(want) {
		t.Fatalf("StageLabels() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StageLabels()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
