package prof

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file parses the debug=1 text form of the runtime's heap and
// goroutine profiles — the format the capture writes precisely because
// it is parseable without the protobuf toolchain. cmd/satprof renders
// the results.

// Frame is one resolved stack frame of a profile sample.
type Frame struct {
	// Func is the fully qualified function name
	// ("satwatch/internal/tstat.(*Tracker).Observe").
	Func string
	// File is "path/file.go:line"; empty when the runtime could not
	// resolve the frame.
	File string
}

// HeapSample is one allocation-site stack with its sampled values,
// unscaled exactly as the profile records them.
type HeapSample struct {
	InuseObjects, InuseBytes int64
	AllocObjects, AllocBytes int64
	Stack                    []Frame
}

// HeapProfile is a parsed debug=1 heap profile.
type HeapProfile struct {
	// Rate is the memory profiling sample rate in bytes (the `heap/R`
	// header value halved, i.e. runtime.MemProfileRate at capture time).
	Rate    int64
	Samples []HeapSample
}

var (
	// "heap profile: 4: 2304 [10: 5376] @ heap/1048576"
	reHeapHeader = regexp.MustCompile(`^heap profile: +(\d+): +(\d+) +\[(\d+): +(\d+)\] @ heap/(\d+)$`)
	// "2: 1024 [4: 2048] @ 0x4a1b2c 0x4b3d4e"
	reHeapSample = regexp.MustCompile(`^(\d+): (\d+) \[(\d+): (\d+)\] @( 0x[0-9a-f]+)*$`)
	// "#\t0x4a1b2b\tpkg.Func+0x2b\t/path/file.go:10"
	reFrame = regexp.MustCompile(`^#\t0x[0-9a-f]+\t(.+?)(?:\+0x[0-9a-f]+)?\t+(.*)$`)
	// "goroutine profile: total 7"
	reGoroutineHeader = regexp.MustCompile(`^goroutine profile: total (\d+)$`)
	// "2 @ 0x43a5c5 0x40726c"
	reGoroutineGroup = regexp.MustCompile(`^(\d+) @( 0x[0-9a-f]+)*$`)
)

func parseFrames(lines []string) []Frame {
	var out []Frame
	for _, line := range lines {
		m := reFrame.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		out = append(out, Frame{Func: m[1], File: m[2]})
	}
	return out
}

// ParseHeap parses a debug=1 heap profile. Sample values are kept as
// recorded (sampled); Scale estimates the true values.
func ParseHeap(r io.Reader) (*HeapProfile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := &HeapProfile{}
	seenHeader := false
	var cur *HeapSample
	var frames []string
	flush := func() {
		if cur != nil {
			cur.Stack = parseFrames(frames)
			p.Samples = append(p.Samples, *cur)
		}
		cur, frames = nil, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case !seenHeader:
			m := reHeapHeader.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("prof: not a debug=1 heap profile (header %q)", line)
			}
			r, _ := strconv.ParseInt(m[5], 10, 64)
			// The header advertises 2×MemProfileRate (historical quirk of
			// the legacy format; pprof halves it the same way).
			p.Rate = r / 2
			seenHeader = true
		case reHeapSample.MatchString(line):
			flush()
			m := reHeapSample.FindStringSubmatch(line)
			s := HeapSample{}
			s.InuseObjects, _ = strconv.ParseInt(m[1], 10, 64)
			s.InuseBytes, _ = strconv.ParseInt(m[2], 10, 64)
			s.AllocObjects, _ = strconv.ParseInt(m[3], 10, 64)
			s.AllocBytes, _ = strconv.ParseInt(m[4], 10, 64)
			cur = &s
		case strings.HasPrefix(line, "#\t0x"):
			// A frame line; everything else starting with "#" is the
			// trailing MemStats dump, which ends the samples.
			frames = append(frames, line)
		case strings.HasPrefix(line, "#"):
			flush()
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prof: heap profile: %w", err)
	}
	if !seenHeader {
		return nil, fmt.Errorf("prof: empty heap profile")
	}
	return p, nil
}

// Scale estimates the true count and bytes behind one sampled pair using
// the standard unsampling model: an allocation of average size s is
// sampled with probability 1-exp(-s/rate), so observed values divide by
// that. rate <= 1 means sampling was off and the values are exact.
func Scale(count, bytes, rate int64) (int64, int64) {
	if count == 0 || bytes == 0 {
		return count, bytes
	}
	if rate <= 1 {
		return count, bytes
	}
	avg := float64(bytes) / float64(count)
	scale := 1 / (1 - math.Exp(-avg/float64(rate)))
	return int64(float64(count) * scale), int64(float64(bytes) * scale)
}

// Site aggregates every sample attributed to one allocation site (the
// innermost non-runtime frame), with values scaled to estimates.
type Site struct {
	// Func is the allocating function; File its "file.go:line".
	Func string
	File string
	// Scaled estimates (see Scale).
	AllocObjects, AllocBytes int64
	InuseObjects, InuseBytes int64
}

// siteFrame picks the frame that names a sample's allocation site: the
// innermost frame outside the runtime (falling back to the first frame,
// then to a placeholder for symbol-less stacks).
func siteFrame(stack []Frame) Frame {
	for _, f := range stack {
		if !strings.HasPrefix(f.Func, "runtime.") {
			return f
		}
	}
	if len(stack) > 0 {
		return stack[0]
	}
	return Frame{Func: "(unresolved)"}
}

// Sites aggregates a heap profile by allocation site, scaled, sorted by
// allocated bytes descending (ties by function name).
func Sites(p *HeapProfile) []Site {
	byFunc := map[string]*Site{}
	for i := range p.Samples {
		s := &p.Samples[i]
		f := siteFrame(s.Stack)
		site, ok := byFunc[f.Func]
		if !ok {
			site = &Site{Func: f.Func, File: f.File}
			byFunc[f.Func] = site
		}
		ao, ab := Scale(s.AllocObjects, s.AllocBytes, p.Rate)
		io_, ib := Scale(s.InuseObjects, s.InuseBytes, p.Rate)
		site.AllocObjects += ao
		site.AllocBytes += ab
		site.InuseObjects += io_
		site.InuseBytes += ib
	}
	out := make([]Site, 0, len(byFunc))
	for _, s := range byFunc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AllocBytes != out[j].AllocBytes {
			return out[i].AllocBytes > out[j].AllocBytes
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// SiteDelta is one allocation site's change between two profiles, joined
// by function name (files move lines too easily across builds).
type SiteDelta struct {
	Func     string
	File     string // from the new profile when present there
	Old, New Site   // zero value when the site exists on one side only
}

// DeltaAllocBytes is the allocated-bytes change, the diff's sort key.
func (d SiteDelta) DeltaAllocBytes() int64 { return d.New.AllocBytes - d.Old.AllocBytes }

// DiffSites joins two aggregated site lists by function and returns the
// deltas sorted by absolute allocated-bytes change, descending.
func DiffSites(old, new []Site) []SiteDelta {
	byFunc := map[string]*SiteDelta{}
	for _, s := range old {
		byFunc[s.Func] = &SiteDelta{Func: s.Func, File: s.File, Old: s}
	}
	for _, s := range new {
		d, ok := byFunc[s.Func]
		if !ok {
			d = &SiteDelta{Func: s.Func}
			byFunc[s.Func] = d
		}
		d.New = s
		d.File = s.File
	}
	out := make([]SiteDelta, 0, len(byFunc))
	for _, d := range byFunc {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].DeltaAllocBytes(), out[j].DeltaAllocBytes()
		ai, aj := di, dj
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Func < out[j].Func
	})
	return out
}

// GoroutineGroup is one goroutine-profile stack group: Count goroutines
// sharing the same stack.
type GoroutineGroup struct {
	Count int64
	Stack []Frame
}

// Site names the group: the innermost non-runtime frame.
func (g GoroutineGroup) Site() Frame { return siteFrame(g.Stack) }

// GoroutineProfile is a parsed debug=1 goroutine profile.
type GoroutineProfile struct {
	Total  int64
	Groups []GoroutineGroup
}

// ParseGoroutine parses a debug=1 goroutine profile. Groups come back
// sorted by count descending, as the runtime writes them.
func ParseGoroutine(r io.Reader) (*GoroutineProfile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	p := &GoroutineProfile{}
	seenHeader := false
	var cur *GoroutineGroup
	var frames []string
	flush := func() {
		if cur != nil {
			cur.Stack = parseFrames(frames)
			p.Groups = append(p.Groups, *cur)
		}
		cur, frames = nil, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case !seenHeader:
			m := reGoroutineHeader.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("prof: not a debug=1 goroutine profile (header %q)", line)
			}
			p.Total, _ = strconv.ParseInt(m[1], 10, 64)
			seenHeader = true
		case reGoroutineGroup.MatchString(line):
			flush()
			m := reGoroutineGroup.FindStringSubmatch(line)
			n, _ := strconv.ParseInt(m[1], 10, 64)
			cur = &GoroutineGroup{Count: n}
		case strings.HasPrefix(line, "#\t0x"):
			frames = append(frames, line)
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prof: goroutine profile: %w", err)
	}
	if !seenHeader {
		return nil, fmt.Errorf("prof: empty goroutine profile")
	}
	return p, nil
}
