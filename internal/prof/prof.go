// Package prof is the pipeline's profiling layer: per-stage CPU
// attribution through pprof labels, per-stage allocation accounting from
// the runtime allocation counters, automatic profile artifacts (-profile
// DIR on the CLIs), and parsers for the text-format heap and goroutine
// profiles that cmd/satprof renders. Like internal/obs it is
// dependency-free: everything here is standard library.
//
// The stage-label contract (documented in DESIGN.md): every CPU sample
// taken while the pipeline runs carries a `stage` label naming the
// pipeline stage that was executing — one of the Stage* constants below —
// and, inside the fan-out stages, a `worker` label carrying the worker
// index. `go tool pprof -tags cpu.pprof` then attributes CPU exactly the
// way the manifest's timings block attributes wall time.
//
// Allocation accounting reads runtime.MemStats at stage boundaries. The
// counters are process-wide, so the deltas attribute cleanly only because
// the pipeline's stages are sequential (each one barriers on its workers
// before the next starts); concurrent background work (the 10 ms memory
// sampler, a debug server) contaminates them by at most a few KiB.
package prof

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"

	"satwatch/internal/obs"
)

// The stage labels of the pipeline, in execution order. These are a
// contract: DESIGN.md documents them, OBSERVABILITY.md's profiling
// section explains how to slice a CPU profile by them, and the
// cross-check test at the repo root fails when they drift from the docs.
const (
	// StagePassA is netsim pass A: parallel workload generation, offered
	// load aggregation and beam dimensioning.
	StagePassA = "netsim-passA"
	// StageMACPrebuild is the MAC access-delay grid pre-build between the
	// passes.
	StageMACPrebuild = "mac-prebuild"
	// StagePassB is netsim pass B: parallel flow synthesis and tracking.
	StagePassB = "passB"
	// StageMerge is the k-way merge of per-worker sorted logs.
	StageMerge = "merge"
	// StageTstat is tstat record flushing: tracker drain plus the
	// canonical sort (inside pass-B workers, and the sharded tracker's
	// Flush on live paths).
	StageTstat = "tstat"
	// StageReport is the analysis stage: dataset enrichment and the
	// paper's tables and figures.
	StageReport = "report"
)

// StageLabels lists every stage label the pipeline can attach to a CPU
// sample, in execution order (the doc cross-check test walks this).
func StageLabels() []string {
	return []string{StagePassA, StageMACPrebuild, StagePassB, StageMerge, StageTstat, StageReport}
}

// Stage runs fn as one named pipeline stage: the calling goroutine (and
// every goroutine fn spawns) gets the pprof label stage=<label> for CPU
// attribution, and the runtime allocation counters are read at the
// boundaries, returning the stage's allocation delta. fn receives a
// context carrying the label set, to hand to Worker for per-worker
// sub-labels. The caller's previous label set is restored on return.
func Stage(ctx context.Context, label string, fn func(ctx context.Context)) obs.AllocInfo {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	pprof.Do(ctx, pprof.Labels("stage", label), fn)
	runtime.ReadMemStats(&after)
	return obs.AllocInfo{
		Bytes:   after.TotalAlloc - before.TotalAlloc,
		Objects: after.Mallocs - before.Mallocs,
	}
}

// Worker labels the body of one worker goroutine with worker=<n> on top
// of the stage labels carried by ctx (the context a Stage callback
// received). fn receives the combined label context, so nested Do calls
// keep the worker label.
func Worker(ctx context.Context, n int, fn func(ctx context.Context)) {
	pprof.Do(ctx, pprof.Labels("worker", strconv.Itoa(n)), fn)
}

// Do runs fn under stage=<label> on top of whatever labels ctx carries —
// the re-labeling primitive for sub-stages inside a worker (e.g. the
// tstat flush at the end of a pass-B worker keeps its worker label but
// swaps the stage).
func Do(ctx context.Context, label string, fn func()) {
	pprof.Do(ctx, pprof.Labels("stage", label), func(context.Context) { fn() })
}

// MeasureAlloc runs fn bracketed by allocation-counter reads and returns
// the delta — Stage without the labels, for callers that only want the
// accounting.
func MeasureAlloc(fn func()) obs.AllocInfo {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return obs.AllocInfo{
		Bytes:   after.TotalAlloc - before.TotalAlloc,
		Objects: after.Mallocs - before.Mallocs,
	}
}
