package prof

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"

	"satwatch/internal/obs"
)

// The artifact file names a capture writes into its directory.
const (
	// CPUProfileName is the CPU profile, protobuf format (go tool pprof).
	CPUProfileName = "cpu.pprof"
	// HeapProfileName is the heap profile in debug=1 text form: readable
	// by go tool pprof and parseable by ParseHeap/cmd/satprof.
	HeapProfileName = "heap.pprof"
	// GoroutineProfileName is the goroutine profile in debug=1 text form.
	GoroutineProfileName = "goroutine.pprof"
	// BlockProfileName is the blocking profile, protobuf format.
	BlockProfileName = "block.pprof"
)

// ArtifactNames lists every file a capture writes, in the order they are
// produced (the doc cross-check test walks this).
func ArtifactNames() []string {
	return []string{CPUProfileName, HeapProfileName, GoroutineProfileName, BlockProfileName}
}

// blockProfileRate samples one blocking event per this many nanoseconds
// blocked — cheap enough for always-on capture, fine enough to surface
// the merge heap and channel waits.
const blockProfileRate = 1000

// Capture is an in-flight profile capture: the CPU profile streams to a
// temp file from StartCapture on; Stop writes every artifact atomically
// and returns the manifest `profiles` block. Only one capture can run
// per process (a CPU profile is process-global).
type Capture struct {
	dir    string
	cpuTmp *os.File
	once   sync.Once
	info   obs.ProfilesInfo
	err    error
}

// StartCapture creates dir (if needed), starts the CPU profile and
// enables block profiling. Call Stop to write the artifacts. Fails if a
// CPU profile is already running in this process.
func StartCapture(dir string) (*Capture, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("prof: capture dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+CPUProfileName+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("prof: capture: %w", err)
	}
	if err := pprof.StartCPUProfile(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("prof: capture: %w", err)
	}
	runtime.SetBlockProfileRate(blockProfileRate)
	return &Capture{dir: dir, cpuTmp: tmp}, nil
}

// Stop ends the capture and writes cpu, heap, goroutine and block
// profiles into the capture directory, each atomically (temp + rename),
// returning the manifest `profiles` block with their sha256 digests.
// Safe to call more than once; later calls return the first outcome.
func (c *Capture) Stop() (obs.ProfilesInfo, error) {
	c.once.Do(func() { c.info, c.err = c.stop() })
	return c.info, c.err
}

func (c *Capture) stop() (obs.ProfilesInfo, error) {
	info := obs.ProfilesInfo{Dir: c.dir, Files: map[string]string{}}

	// CPU: the profile streamed into the temp file; flush and move it
	// into place like every other pipeline output.
	pprof.StopCPUProfile()
	runtime.SetBlockProfileRate(0)
	cpuPath := filepath.Join(c.dir, CPUProfileName)
	if err := c.cpuTmp.Sync(); err != nil {
		return info, fmt.Errorf("prof: cpu profile: %w", err)
	}
	if err := c.cpuTmp.Close(); err != nil {
		return info, fmt.Errorf("prof: cpu profile: %w", err)
	}
	if err := os.Chmod(c.cpuTmp.Name(), 0o644); err != nil {
		return info, fmt.Errorf("prof: cpu profile: %w", err)
	}
	if err := os.Rename(c.cpuTmp.Name(), cpuPath); err != nil {
		return info, fmt.Errorf("prof: cpu profile: %w", err)
	}
	digest, err := digestFile(cpuPath)
	if err != nil {
		return info, err
	}
	info.Files[CPUProfileName] = digest

	// Heap last-GC state is what debug=1 reports; run a GC so the profile
	// reflects the end-of-run heap, not an arbitrary earlier cycle.
	runtime.GC()
	for _, p := range []struct {
		name    string
		profile string
		debug   int
	}{
		{HeapProfileName, "heap", 1},
		{GoroutineProfileName, "goroutine", 1},
		{BlockProfileName, "block", 0},
	} {
		path := filepath.Join(c.dir, p.name)
		h := sha256.New()
		if err := obs.WriteFileAtomic(path, func(w io.Writer) error {
			return pprof.Lookup(p.profile).WriteTo(io.MultiWriter(w, h), p.debug)
		}); err != nil {
			return info, fmt.Errorf("prof: %s profile: %w", p.profile, err)
		}
		info.Files[p.name] = "sha256:" + hex.EncodeToString(h.Sum(nil))
	}
	return info, nil
}

func digestFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("prof: digest: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("prof: digest %s: %w", path, err)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}
