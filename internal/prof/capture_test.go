package prof

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

func TestCaptureRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles")
	c, err := StartCapture(dir)
	if err != nil {
		t.Fatalf("StartCapture: %v", err)
	}
	// Burn a little CPU and heap so the profiles have content.
	var sink [][]byte
	for i := 0; i < 200; i++ {
		sink = append(sink, make([]byte, 64*1024))
	}
	_ = sink
	info, err := c.Stop()
	if err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if info.Dir != dir {
		t.Fatalf("info.Dir = %q, want %q", info.Dir, dir)
	}
	for _, name := range ArtifactNames() {
		digest, ok := info.Files[name]
		if !ok {
			t.Fatalf("info.Files missing %q (have %v)", name, info.Files)
		}
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("artifact %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
		sum := sha256.Sum256(b)
		if want := "sha256:" + hex.EncodeToString(sum[:]); digest != want {
			t.Fatalf("artifact %s digest = %s, want %s", name, digest, want)
		}
	}
	// No temp files may survive the capture.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(ArtifactNames()) {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("capture dir has %v, want exactly %v", names, ArtifactNames())
	}
}

func TestCaptureHeapProfileParses(t *testing.T) {
	dir := t.TempDir()
	c, err := StartCapture(dir)
	if err != nil {
		t.Fatalf("StartCapture: %v", err)
	}
	var sink [][]byte
	for i := 0; i < 100; i++ {
		sink = append(sink, make([]byte, 128*1024))
	}
	_ = sink
	if _, err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}

	f, err := os.Open(filepath.Join(dir, HeapProfileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	hp, err := ParseHeap(f)
	if err != nil {
		t.Fatalf("ParseHeap on captured profile: %v", err)
	}
	if hp.Rate <= 0 {
		t.Fatalf("parsed rate = %d, want > 0", hp.Rate)
	}

	g, err := os.Open(filepath.Join(dir, GoroutineProfileName))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	gp, err := ParseGoroutine(g)
	if err != nil {
		t.Fatalf("ParseGoroutine on captured profile: %v", err)
	}
	if gp.Total < 1 {
		t.Fatalf("goroutine total = %d, want >= 1", gp.Total)
	}
}

func TestCaptureStopIdempotent(t *testing.T) {
	dir := t.TempDir()
	c, err := StartCapture(dir)
	if err != nil {
		t.Fatalf("StartCapture: %v", err)
	}
	info1, err1 := c.Stop()
	info2, err2 := c.Stop()
	if err1 != nil || err2 != nil {
		t.Fatalf("Stop errs = %v, %v", err1, err2)
	}
	if info1.Dir != info2.Dir || len(info1.Files) != len(info2.Files) {
		t.Fatalf("second Stop returned a different snapshot: %+v vs %+v", info1, info2)
	}
}

func TestCaptureLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	c, err := StartCapture(dir)
	if err != nil {
		t.Fatalf("StartCapture: %v", err)
	}
	if _, err := c.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	// The CPU profiler's writer goroutine winds down asynchronously after
	// StopCPUProfile; give it a moment before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
