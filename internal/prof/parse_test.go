package prof

import (
	"math"
	"strings"
	"testing"
)

const heapFixture = `heap profile: 3: 3145728 [5: 5242880] @ heap/1048576
1: 1048576 [2: 2097152] @ 0x4a1b2c 0x4b3d4e 0x401000
#	0x4a1b2b	satwatch/internal/tstat.(*Tracker).Observe+0x2b	/root/repo/internal/tstat/tracker.go:120
#	0x4b3d4d	satwatch/internal/netsim.passB+0x1d	/root/repo/internal/netsim/netsim.go:610
2: 2097152 [2: 2097152] @ 0x5c1000 0x401000
#	0x5c0fff	runtime.mapassign+0xff	/usr/local/go/src/runtime/map.go:600
#	0x4c0fff	satwatch/internal/analytics.NewDataset+0xff	/root/repo/internal/analytics/dataset.go:55
0: 0 [1: 1048576] @ 0x6d2000
#	0x6d1fff	satwatch/internal/tstat.(*Tracker).Observe+0x3ff	/root/repo/internal/tstat/tracker.go:133

# runtime.MemStats
# Alloc = 1234
# TotalAlloc = 5678
`

func TestParseHeapFixture(t *testing.T) {
	p, err := ParseHeap(strings.NewReader(heapFixture))
	if err != nil {
		t.Fatalf("ParseHeap: %v", err)
	}
	if p.Rate != 524288 {
		t.Fatalf("rate = %d, want 524288 (header value halved)", p.Rate)
	}
	if len(p.Samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(p.Samples))
	}
	s := p.Samples[0]
	if s.InuseObjects != 1 || s.InuseBytes != 1048576 || s.AllocObjects != 2 || s.AllocBytes != 2097152 {
		t.Fatalf("sample 0 = %+v", s)
	}
	if len(s.Stack) != 2 {
		t.Fatalf("sample 0 stack = %d frames, want 2", len(s.Stack))
	}
	if s.Stack[0].Func != "satwatch/internal/tstat.(*Tracker).Observe" {
		t.Fatalf("frame func = %q", s.Stack[0].Func)
	}
	if s.Stack[0].File != "/root/repo/internal/tstat/tracker.go:120" {
		t.Fatalf("frame file = %q", s.Stack[0].File)
	}
	// The MemStats trailer must not leak into samples or frames.
	last := p.Samples[2]
	if last.AllocObjects != 1 || last.AllocBytes != 1048576 {
		t.Fatalf("sample 2 = %+v", last)
	}
	if len(last.Stack) != 1 {
		t.Fatalf("sample 2 stack = %d frames, want 1", len(last.Stack))
	}
}

func TestParseHeapRejectsGarbage(t *testing.T) {
	if _, err := ParseHeap(strings.NewReader("not a profile\n")); err == nil {
		t.Fatal("want error for garbage input")
	}
	if _, err := ParseHeap(strings.NewReader("")); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestScale(t *testing.T) {
	// Zero stays zero, rate<=1 is identity.
	if c, b := Scale(0, 0, 524288); c != 0 || b != 0 {
		t.Fatalf("Scale(0,0) = %d,%d", c, b)
	}
	if c, b := Scale(7, 700, 1); c != 7 || b != 700 {
		t.Fatalf("Scale rate=1 = %d,%d", c, b)
	}
	// avg = 1048576, rate = 524288 → scale = 1/(1-e^-2).
	c, b := Scale(2, 2097152, 524288)
	want := 1 / (1 - math.Exp(-2))
	if got := float64(b) / 2097152; math.Abs(got-want) > 0.01 {
		t.Fatalf("byte scale = %f, want ~%f", got, want)
	}
	if c < 2 {
		t.Fatalf("scaled count = %d, want >= 2", c)
	}
	// Small allocations scale up much harder than the sampling rate.
	_, b2 := Scale(1, 64, 524288)
	if b2 < 100000 {
		t.Fatalf("small-alloc scaled bytes = %d, want heavy scale-up", b2)
	}
}

func TestSitesAggregatesAndRanks(t *testing.T) {
	p, err := ParseHeap(strings.NewReader(heapFixture))
	if err != nil {
		t.Fatal(err)
	}
	sites := Sites(p)
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2 (tracker samples merge)", len(sites))
	}
	// Both tracker samples attribute to Observe; mapassign is runtime so
	// sample 1 attributes to NewDataset.
	var observe, dataset *Site
	for i := range sites {
		switch {
		case strings.Contains(sites[i].Func, "Observe"):
			observe = &sites[i]
		case strings.Contains(sites[i].Func, "NewDataset"):
			dataset = &sites[i]
		}
	}
	if observe == nil || dataset == nil {
		t.Fatalf("sites = %+v", sites)
	}
	if observe.AllocObjects < 3 {
		t.Fatalf("Observe alloc objects = %d, want >= 3 (2+1 scaled)", observe.AllocObjects)
	}
	if sites[0].AllocBytes < sites[1].AllocBytes {
		t.Fatal("sites not sorted by alloc bytes desc")
	}
}

func TestDiffSites(t *testing.T) {
	old := []Site{
		{Func: "a.F", File: "a.go:1", AllocBytes: 1000, AllocObjects: 10},
		{Func: "b.G", File: "b.go:2", AllocBytes: 500, AllocObjects: 5},
	}
	new := []Site{
		{Func: "a.F", File: "a.go:1", AllocBytes: 5000, AllocObjects: 50},
		{Func: "c.H", File: "c.go:3", AllocBytes: 200, AllocObjects: 2},
	}
	deltas := DiffSites(old, new)
	if len(deltas) != 3 {
		t.Fatalf("deltas = %d, want 3", len(deltas))
	}
	// Largest absolute change first: a.F (+4000), then b.G (-500), c.H (+200).
	if deltas[0].Func != "a.F" || deltas[0].DeltaAllocBytes() != 4000 {
		t.Fatalf("deltas[0] = %+v", deltas[0])
	}
	if deltas[1].Func != "b.G" || deltas[1].DeltaAllocBytes() != -500 {
		t.Fatalf("deltas[1] = %+v", deltas[1])
	}
	if deltas[2].Func != "c.H" || deltas[2].DeltaAllocBytes() != 200 {
		t.Fatalf("deltas[2] = %+v", deltas[2])
	}
}

const goroutineFixture = `goroutine profile: total 7
4 @ 0x43a5c5 0x40726c 0x401000
#	0x43a5c4	runtime.gopark+0xe4	/usr/local/go/src/runtime/proc.go:402
#	0x40726b	satwatch/internal/obs.(*MemSampler).loop+0x6b	/root/repo/internal/obs/mem.go:52
3 @ 0x52b000
#	0x52afff	satwatch/internal/netsim.worker+0x2ff	/root/repo/internal/netsim/netsim.go:500
`

func TestParseGoroutineFixture(t *testing.T) {
	p, err := ParseGoroutine(strings.NewReader(goroutineFixture))
	if err != nil {
		t.Fatalf("ParseGoroutine: %v", err)
	}
	if p.Total != 7 {
		t.Fatalf("total = %d, want 7", p.Total)
	}
	if len(p.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(p.Groups))
	}
	if p.Groups[0].Count != 4 {
		t.Fatalf("group 0 count = %d", p.Groups[0].Count)
	}
	if got := p.Groups[0].Site().Func; got != "satwatch/internal/obs.(*MemSampler).loop" {
		t.Fatalf("group 0 site = %q", got)
	}
	if got := p.Groups[1].Site().Func; got != "satwatch/internal/netsim.worker" {
		t.Fatalf("group 1 site = %q", got)
	}
}

func TestParseGoroutineRejectsGarbage(t *testing.T) {
	if _, err := ParseGoroutine(strings.NewReader("heap profile: 1: 2 [3: 4] @ heap/2\n")); err == nil {
		t.Fatal("want error for wrong profile type")
	}
}
