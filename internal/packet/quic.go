package packet

import (
	"encoding/binary"
	"fmt"
)

// QUICInitial is a QUIC long-header Initial packet carrying a CRYPTO frame
// with the TLS ClientHello.
//
// Simplification, documented in DESIGN.md: real QUIC protects the Initial
// payload with keys derived from the destination connection ID. A passive
// probe can and does undo that protection (the keys are public by design);
// our synthesizer skips the obfuscation step and writes the CRYPTO frame in
// the clear, so the decode path — long-header parse, varint framing, CRYPTO
// reassembly, inner ClientHello/SNI parse — is identical while the bench
// avoids pulling a TLS-1.3 key schedule into scope.
type QUICInitial struct {
	Version       uint32
	DCID          []byte
	SCID          []byte
	Token         []byte
	CryptoPayload []byte // TLS handshake bytes carried in the CRYPTO frame
}

// LayerType implements Layer.
func (*QUICInitial) LayerType() LayerType { return LayerTypeQUIC }

// QUICVersion1 is RFC 9000's version field value.
const QUICVersion1 uint32 = 1

const quicFrameCrypto = 0x06

// Encode serializes the Initial packet.
func (q *QUICInitial) Encode() ([]byte, error) {
	if len(q.DCID) > 20 || len(q.SCID) > 20 {
		return nil, fmt.Errorf("quic: connection id exceeds 20 bytes")
	}
	// CRYPTO frame: type, offset varint (0), length varint, data.
	frame := []byte{quicFrameCrypto, 0}
	frame = appendVarint(frame, uint64(len(q.CryptoPayload)))
	frame = append(frame, q.CryptoPayload...)

	// Packet number (1 byte, value 0) + frames form the protected payload.
	payload := append([]byte{0}, frame...)

	out := make([]byte, 0, 64+len(payload))
	out = append(out, 0xc0) // long header, Initial, 1-byte packet number
	out = binary.BigEndian.AppendUint32(out, q.Version)
	out = append(out, byte(len(q.DCID)))
	out = append(out, q.DCID...)
	out = append(out, byte(len(q.SCID)))
	out = append(out, q.SCID...)
	out = appendVarint(out, uint64(len(q.Token)))
	out = append(out, q.Token...)
	out = appendVarint(out, uint64(len(payload)))
	out = append(out, payload...)
	return out, nil
}

// IsQUICLongHeader reports whether data starts with a QUIC long header.
func IsQUICLongHeader(data []byte) bool {
	return len(data) >= 5 && data[0]&0xc0 == 0xc0
}

// DecodeQUICInitial parses an Initial packet and the ClientHello inside its
// CRYPTO frame, if any.
func DecodeQUICInitial(data []byte) (*QUICInitial, error) {
	if len(data) < 7 {
		return nil, ErrTruncated
	}
	first := data[0]
	if first&0x80 == 0 {
		return nil, fmt.Errorf("quic: short header")
	}
	if (first>>4)&0x3 != 0 {
		return nil, fmt.Errorf("quic: not an Initial packet")
	}
	q := &QUICInitial{Version: binary.BigEndian.Uint32(data[1:5])}
	off := 5
	var err error
	if q.DCID, off, err = readCID(data, off); err != nil {
		return nil, err
	}
	if q.SCID, off, err = readCID(data, off); err != nil {
		return nil, err
	}
	tokenLen, off, err := readVarint(data, off)
	if err != nil {
		return nil, err
	}
	if off+int(tokenLen) > len(data) {
		return nil, ErrTruncated
	}
	q.Token = append([]byte(nil), data[off:off+int(tokenLen)]...)
	off += int(tokenLen)
	payloadLen, off, err := readVarint(data, off)
	if err != nil {
		return nil, err
	}
	if off+int(payloadLen) > len(data) {
		return nil, ErrTruncated
	}
	payload := data[off : off+int(payloadLen)]
	pnLen := int(first&0x3) + 1
	if len(payload) < pnLen {
		return nil, ErrTruncated
	}
	frames := payload[pnLen:]
	for len(frames) > 0 {
		switch frames[0] {
		case 0: // PADDING
			frames = frames[1:]
		case quicFrameCrypto:
			fo := 1
			var n uint64
			if _, fo, err = readVarint(frames, fo); err != nil { // offset
				return nil, err
			}
			if n, fo, err = readVarint(frames, fo); err != nil { // length
				return nil, err
			}
			if fo+int(n) > len(frames) {
				return nil, ErrTruncated
			}
			q.CryptoPayload = append(q.CryptoPayload, frames[fo:fo+int(n)]...)
			frames = frames[fo+int(n):]
		default:
			// Unknown frame: stop scanning (the synthesizer only emits
			// PADDING and CRYPTO in Initials).
			return q, nil
		}
	}
	return q, nil
}

// SNI extracts the server name from the Initial's embedded ClientHello.
func (q *QUICInitial) SNI() (string, error) {
	msgs, err := DecodeTLSHandshakes(q.CryptoPayload)
	if err != nil {
		return "", err
	}
	for _, m := range msgs {
		if m.Type == TLSHandshakeClientHello {
			ch, err := ParseClientHello(m.Body)
			if err != nil {
				return "", err
			}
			return ch.ServerName, nil
		}
	}
	return "", nil
}

func readCID(data []byte, off int) ([]byte, int, error) {
	if off >= len(data) {
		return nil, 0, ErrTruncated
	}
	n := int(data[off])
	off++
	if n > 20 {
		return nil, 0, fmt.Errorf("quic: connection id length %d", n)
	}
	if off+n > len(data) {
		return nil, 0, ErrTruncated
	}
	return append([]byte(nil), data[off:off+n]...), off + n, nil
}

// appendVarint writes a QUIC variable-length integer (RFC 9000 §16).
func appendVarint(out []byte, v uint64) []byte {
	switch {
	case v < 1<<6:
		return append(out, byte(v))
	case v < 1<<14:
		return append(out, 0x40|byte(v>>8), byte(v))
	case v < 1<<30:
		return append(out, 0x80|byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	default:
		return append(out, 0xc0|byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
}

func readVarint(data []byte, off int) (uint64, int, error) {
	if off >= len(data) {
		return 0, 0, ErrTruncated
	}
	n := 1 << (data[off] >> 6)
	if off+n > len(data) {
		return 0, 0, ErrTruncated
	}
	v := uint64(data[off] & 0x3f)
	for i := 1; i < n; i++ {
		v = v<<8 | uint64(data[off+i])
	}
	return v, off + n, nil
}
