package packet

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	q := &DNS{ID: 0x1234, RD: true,
		Questions: []DNSQuestion{{Name: "play.googleapis.com", Type: DNSTypeA, Class: DNSClassIN}}}
	raw, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || !got.RD || got.QR {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Questions) != 1 || got.Questions[0].Name != "play.googleapis.com" {
		t.Fatalf("question mismatch: %+v", got.Questions)
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("172.217.16.142")
	m := &DNS{ID: 9, QR: true, RA: true, RCode: DNSRCodeNoError,
		Questions: []DNSQuestion{{Name: "google.com", Type: DNSTypeA, Class: DNSClassIN}},
		Answers: []DNSRR{
			{Name: "google.com", Type: DNSTypeCNAME, Class: DNSClassIN, TTL: 300, Target: "www.google.com"},
			{Name: "www.google.com", Type: DNSTypeA, Class: DNSClassIN, TTL: 60, Addr: addr},
		}}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.QR || !got.RA || got.RCode != DNSRCodeNoError {
		t.Fatalf("flags mismatch: %+v", got)
	}
	if len(got.Answers) != 2 {
		t.Fatalf("%d answers", len(got.Answers))
	}
	if got.Answers[0].Target != "www.google.com" {
		t.Fatalf("CNAME target %q", got.Answers[0].Target)
	}
	if got.Answers[1].Addr != addr {
		t.Fatalf("A record addr %v", got.Answers[1].Addr)
	}
}

func TestDNSAAAARoundTrip(t *testing.T) {
	addr := netip.MustParseAddr("2a00:1450:4003::8a")
	m := &DNS{ID: 1, QR: true,
		Answers: []DNSRR{{Name: "x.example", Type: DNSTypeAAAA, Class: DNSClassIN, TTL: 5, Addr: addr}}}
	raw, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Addr != addr {
		t.Fatalf("AAAA addr %v", got.Answers[0].Addr)
	}
}

func TestDNSCompressionPointers(t *testing.T) {
	// Hand-build a response using a compression pointer for the answer
	// name: question at offset 12, answer name is a pointer to it.
	var raw []byte
	raw = append(raw, 0x00, 0x07) // ID
	raw = append(raw, 0x81, 0x80) // QR+RD+RA
	raw = append(raw, 0, 1, 0, 1, 0, 0, 0, 0)
	name, _ := appendName(nil, "cdn.example.com")
	raw = append(raw, name...)
	raw = append(raw, 0, 1, 0, 1) // A IN
	raw = append(raw, 0xc0, 12)   // pointer to offset 12
	raw = append(raw, 0, 1, 0, 1) // A IN
	raw = append(raw, 0, 0, 0, 60)
	raw = append(raw, 0, 4, 1, 2, 3, 4)
	got, err := DecodeDNS(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != "cdn.example.com" {
		t.Fatalf("compressed name %q", got.Answers[0].Name)
	}
	if got.Answers[0].Addr != netip.AddrFrom4([4]byte{1, 2, 3, 4}) {
		t.Fatalf("addr %v", got.Answers[0].Addr)
	}
}

func TestDNSPointerLoopRejected(t *testing.T) {
	var raw []byte
	raw = append(raw, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0)
	// A name that is a pointer to itself would need a forward reference;
	// build two pointers at 12 and 14 pointing at each other.
	raw = append(raw, 0xc0, 14, 0xc0, 12)
	raw = append(raw, 0, 1, 0, 1)
	if _, err := DecodeDNS(raw); err == nil {
		t.Fatal("pointer loop accepted")
	}
}

func TestDNSMalformedInputs(t *testing.T) {
	cases := map[string][]byte{
		"empty":                 {},
		"short header":          {0, 1, 2},
		"counted but truncated": {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0},
	}
	for name, raw := range cases {
		if _, err := DecodeDNS(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDNSBadLabels(t *testing.T) {
	if _, err := appendName(nil, strings.Repeat("a", 64)+".com"); err == nil {
		t.Fatal("64-byte label accepted")
	}
	if _, err := appendName(nil, "a..com"); err == nil {
		t.Fatal("empty label accepted")
	}
}

func TestDNSRootName(t *testing.T) {
	raw, err := appendName(nil, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 || raw[0] != 0 {
		t.Fatalf("root name encoding %v", raw)
	}
}

func TestDNSARecordNeedsV4(t *testing.T) {
	m := &DNS{Answers: []DNSRR{{Name: "x", Type: DNSTypeA, Addr: netip.MustParseAddr("::1")}}}
	if _, err := m.Encode(); err == nil {
		t.Fatal("A record with IPv6 address accepted")
	}
}

func TestDNSNameRoundTripProperty(t *testing.T) {
	f := func(labels [3]uint8) bool {
		parts := make([]string, 0, 3)
		for _, l := range labels {
			n := int(l)%20 + 1
			parts = append(parts, strings.Repeat("x", n))
		}
		name := strings.Join(parts, ".")
		raw, err := appendName(nil, name)
		if err != nil {
			return false
		}
		got, _, err := readName(raw, 0)
		return err == nil && got == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDNSOverUDPPacket(t *testing.T) {
	q := &DNS{ID: 77, RD: true, Questions: []DNSQuestion{{Name: "whatsapp.net", Type: DNSTypeA, Class: DNSClassIN}}}
	payload, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Serialize(payload,
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: clientAddr, Dst: serverAddr},
		&UDP{SrcPort: 33333, DstPort: 53},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDNS(p.AppPayload())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 77 || got.Questions[0].Name != "whatsapp.net" {
		t.Fatalf("round trip through UDP failed: %+v", got)
	}
}
