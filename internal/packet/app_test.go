package packet

import (
	"testing"
)

func TestHTTPRequestRoundTrip(t *testing.T) {
	req := &HTTPRequest{Method: "GET", Target: "/update.bin", Version: "HTTP/1.1",
		Headers: []HTTPHeader{{"Host", "download.sky.com"}, {"User-Agent", "skybox/1.0"}}}
	raw := req.Encode()
	got, err := ParseHTTPRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != "/update.bin" {
		t.Fatalf("request line: %+v", got)
	}
	if got.Host() != "download.sky.com" {
		t.Fatalf("host %q", got.Host())
	}
}

func TestHTTPHostWithPort(t *testing.T) {
	req := &HTTPRequest{Headers: []HTTPHeader{{"host", "example.com:8080"}}}
	if req.Host() != "example.com" {
		t.Fatalf("host %q, want port stripped", req.Host())
	}
}

func TestHTTPHostMissing(t *testing.T) {
	req := &HTTPRequest{Headers: []HTTPHeader{{"Accept", "*/*"}}}
	if req.Host() != "" {
		t.Fatal("phantom host")
	}
}

func TestHTTPPartialHead(t *testing.T) {
	req := &HTTPRequest{Method: "POST", Target: "/", Headers: []HTTPHeader{
		{"Host", "api.example.com"}, {"Content-Type", "application/json"}}}
	raw := req.Encode()
	// Cut mid-way through the second header, as a first segment would.
	got, err := ParseHTTPRequest(raw[:len(raw)-10])
	if err != nil {
		t.Fatal(err)
	}
	if got.Host() != "api.example.com" {
		t.Fatalf("host from partial head %q", got.Host())
	}
	if len(got.Headers) != 1 {
		t.Fatalf("partial header line half-parsed: %+v", got.Headers)
	}
}

func TestHTTPHeadCutInsideHostValue(t *testing.T) {
	// When the cut lands inside the Host value, a truncated name must not
	// be reported: better no domain than a wrong one.
	req := &HTTPRequest{Method: "GET", Target: "/", Headers: []HTTPHeader{{"Host", "api.example.com"}}}
	raw := req.Encode()
	got, err := ParseHTTPRequest(raw[:len(raw)-6])
	if err != nil {
		t.Fatal(err)
	}
	if got.Host() != "" {
		t.Fatalf("truncated host reported as %q", got.Host())
	}
}

func TestLooksLikeHTTPRequest(t *testing.T) {
	if !LooksLikeHTTPRequest([]byte("GET / HTTP/1.1\r\n")) {
		t.Fatal("GET not recognized")
	}
	if LooksLikeHTTPRequest([]byte{0x16, 0x03, 0x03}) {
		t.Fatal("TLS bytes recognized as HTTP")
	}
	if LooksLikeHTTPRequest([]byte("GETX / HTTP/1.1")) {
		t.Fatal("bad method recognized")
	}
}

func TestHTTPNotARequest(t *testing.T) {
	if _, err := ParseHTTPRequest([]byte("HTTP/1.1 200 OK\r\n")); err == nil {
		t.Fatal("response parsed as request")
	}
}

func TestQUICInitialRoundTrip(t *testing.T) {
	ch := &ClientHello{Version: TLSVersion12, ServerName: "www.youtube.com"}
	hs, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q := &QUICInitial{Version: QUICVersion1, DCID: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		SCID: []byte{9, 9}, CryptoPayload: hs}
	raw, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !IsQUICLongHeader(raw) {
		t.Fatal("long header not recognized")
	}
	got, err := DecodeQUICInitial(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != QUICVersion1 || len(got.DCID) != 8 {
		t.Fatalf("header fields: %+v", got)
	}
	sni, err := got.SNI()
	if err != nil {
		t.Fatal(err)
	}
	if sni != "www.youtube.com" {
		t.Fatalf("SNI %q", sni)
	}
}

func TestQUICInitialWithToken(t *testing.T) {
	q := &QUICInitial{Version: QUICVersion1, DCID: []byte{1}, Token: make([]byte, 70)}
	raw, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQUICInitial(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Token) != 70 {
		t.Fatalf("token length %d", len(got.Token))
	}
}

func TestQUICRejectsShortHeader(t *testing.T) {
	raw := []byte{0x40, 1, 2, 3, 4, 5, 6, 7}
	if _, err := DecodeQUICInitial(raw); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestQUICRejectsOversizeCID(t *testing.T) {
	q := &QUICInitial{Version: 1, DCID: make([]byte, 21)}
	if _, err := q.Encode(); err == nil {
		t.Fatal("oversize DCID accepted")
	}
}

func TestQUICVarint(t *testing.T) {
	for _, v := range []uint64{0, 63, 64, 16383, 16384, 1<<30 - 1, 1 << 30, 1 << 40} {
		raw := appendVarint(nil, v)
		got, off, err := readVarint(raw, 0)
		if err != nil || got != v || off != len(raw) {
			t.Fatalf("varint %d round trip: got %d off %d err %v", v, got, off, err)
		}
	}
}

func TestRTPRoundTrip(t *testing.T) {
	r := &RTP{Marker: true, PayloadType: 111, Sequence: 4242, Timestamp: 90000, SSRC: 0xdeadbeef,
		CSRC: []uint32{1, 2}}
	raw, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, payload, err := DecodeRTP(append(raw, 0xab, 0xcd))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sequence != 4242 || got.SSRC != 0xdeadbeef || !got.Marker || got.PayloadType != 111 {
		t.Fatalf("fields: %+v", got)
	}
	if len(got.CSRC) != 2 || got.CSRC[1] != 2 {
		t.Fatalf("CSRC: %v", got.CSRC)
	}
	if len(payload) != 2 {
		t.Fatalf("payload %d bytes", len(payload))
	}
}

func TestRTPValidation(t *testing.T) {
	if _, err := (&RTP{PayloadType: 200}).Encode(); err == nil {
		t.Fatal("payload type > 127 accepted")
	}
	if _, err := (&RTP{CSRC: make([]uint32, 16)}).Encode(); err == nil {
		t.Fatal("16 CSRCs accepted")
	}
	if _, _, err := DecodeRTP([]byte{0x80}); err == nil {
		t.Fatal("truncated RTP accepted")
	}
	if _, _, err := DecodeRTP(make([]byte, 12)); err == nil {
		t.Fatal("version 0 accepted")
	}
}

func TestLooksLikeRTP(t *testing.T) {
	r := &RTP{PayloadType: 96, Sequence: 1}
	raw, _ := r.Encode()
	if !LooksLikeRTP(raw) {
		t.Fatal("RTP not recognized")
	}
	if LooksLikeRTP([]byte("GET / HTTP/1.1\r\n")) {
		t.Fatal("HTTP recognized as RTP")
	}
	// Version 2 but implausible payload type (between static and dynamic).
	odd := append([]byte{}, raw...)
	odd[1] = 80
	if LooksLikeRTP(odd) {
		t.Fatal("implausible payload type recognized")
	}
}
