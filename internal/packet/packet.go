// Package packet implements the wire formats the probe has to understand:
// IPv4, TCP, UDP, DNS, TLS records and handshake messages, HTTP/1.x request
// heads, QUIC long-header Initials, and RTP. The design follows gopacket's
// layer model — each protocol is a Layer that can decode from bytes and
// serialize by prepending itself to a SerializeBuffer — restricted to what
// a ground-station probe needs (per the paper §2.2: flow tracking, RTT
// samples, and DPI for Host/SNI/DNS extraction).
package packet

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer.
type LayerType uint8

// The layer types known to the decoder.
const (
	LayerTypeNone LayerType = iota
	LayerTypeIPv4
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeDNS
	LayerTypeTLS
	LayerTypeHTTP
	LayerTypeQUIC
	LayerTypeRTP
	LayerTypePayload
)

var layerTypeNames = map[LayerType]string{
	LayerTypeNone:    "None",
	LayerTypeIPv4:    "IPv4",
	LayerTypeTCP:     "TCP",
	LayerTypeUDP:     "UDP",
	LayerTypeDNS:     "DNS",
	LayerTypeTLS:     "TLS",
	LayerTypeHTTP:    "HTTP",
	LayerTypeQUIC:    "QUIC",
	LayerTypeRTP:     "RTP",
	LayerTypePayload: "Payload",
}

func (t LayerType) String() string {
	if s, ok := layerTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// Layer is one decoded protocol layer.
type Layer interface {
	LayerType() LayerType
}

// ErrTruncated reports input shorter than the header it should contain.
var ErrTruncated = errors.New("packet: truncated input")

// Payload is an opaque application payload layer.
type Payload []byte

// LayerType implements Layer.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// Packet is a decoded packet: the stack of layers plus the raw bytes.
type Packet struct {
	Raw    []byte
	Layers []Layer
}

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.Layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// IPv4Layer returns the IPv4 layer, or nil.
func (p *Packet) IPv4Layer() *IPv4 {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// TCPLayer returns the TCP layer, or nil.
func (p *Packet) TCPLayer() *TCP {
	if l := p.Layer(LayerTypeTCP); l != nil {
		return l.(*TCP)
	}
	return nil
}

// UDPLayer returns the UDP layer, or nil.
func (p *Packet) UDPLayer() *UDP {
	if l := p.Layer(LayerTypeUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// AppPayload returns the bytes above the transport layer (empty when none).
func (p *Packet) AppPayload() []byte {
	if l := p.Layer(LayerTypePayload); l != nil {
		return []byte(l.(Payload))
	}
	return nil
}

// Decode parses a raw IPv4 packet into its layer stack. Transport payloads
// are kept as an opaque Payload layer; the probe's DPI (package tstat)
// parses them on demand with the application-layer decoders in this
// package. Decode fails only when the network or transport header is
// malformed — an unparseable application payload is still a valid packet.
func Decode(raw []byte) (*Packet, error) {
	p := &Packet{Raw: raw}
	var ip IPv4
	rest, err := ip.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("ipv4: %w", err)
	}
	p.Layers = append(p.Layers, &ip)
	switch ip.Protocol {
	case ProtoTCP:
		var tcp TCP
		rest, err = tcp.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("tcp: %w", err)
		}
		p.Layers = append(p.Layers, &tcp)
	case ProtoUDP:
		var udp UDP
		rest, err = udp.Decode(rest)
		if err != nil {
			return nil, fmt.Errorf("udp: %w", err)
		}
		p.Layers = append(p.Layers, &udp)
	default:
		// Unknown transport: everything after IP is payload.
	}
	if len(rest) > 0 {
		p.Layers = append(p.Layers, Payload(rest))
	}
	return p, nil
}
