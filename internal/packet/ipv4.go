package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by the deployment.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// IPv4 is an IPv4 header. Options are carried opaquely.
type IPv4 struct {
	TOS      uint8
	Length   uint16 // total length; filled by SerializeTo
	ID       uint16
	Flags    uint8  // 3 bits: reserved, DF, MF
	FragOff  uint16 // 13 bits, in 8-byte units
	TTL      uint8
	Protocol uint8
	Checksum uint16 // filled by SerializeTo, verified by Decode
	Src, Dst netip.Addr
	Options  []byte // length must be a multiple of 4
}

// IPv4 flag bits.
const (
	IPv4DontFragment  uint8 = 0x2
	IPv4MoreFragments uint8 = 0x1
)

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// HeaderLen returns the header length in bytes including options.
func (ip *IPv4) HeaderLen() int { return 20 + len(ip.Options) }

// Decode parses the header from data and returns the bytes after it
// (bounded by the header's total-length field).
func (ip *IPv4) Decode(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, ErrTruncated
	}
	if v := data[0] >> 4; v != 4 {
		return nil, fmt.Errorf("version %d is not IPv4", v)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 {
		return nil, fmt.Errorf("header length %d below minimum", ihl)
	}
	if len(data) < ihl {
		return nil, ErrTruncated
	}
	ip.TOS = data[1]
	ip.Length = binary.BigEndian.Uint16(data[2:4])
	if int(ip.Length) < ihl {
		return nil, fmt.Errorf("total length %d below header length %d", ip.Length, ihl)
	}
	if int(ip.Length) > len(data) {
		return nil, ErrTruncated
	}
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	if sum := headerChecksum(data[:ihl]); sum != 0 {
		return nil, fmt.Errorf("bad header checksum")
	}
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	if ihl > 20 {
		ip.Options = append([]byte(nil), data[20:ihl]...)
	} else {
		ip.Options = nil
	}
	return data[ihl:int(ip.Length)], nil
}

// SerializeTo implements Serializer, computing Length and Checksum.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	if len(ip.Options)%4 != 0 {
		return fmt.Errorf("ipv4: options length %d not a multiple of 4", len(ip.Options))
	}
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("ipv4: src/dst must be IPv4 addresses")
	}
	hlen := ip.HeaderLen()
	total := hlen + b.Len()
	if total > 0xffff {
		return fmt.Errorf("ipv4: packet length %d exceeds 65535", total)
	}
	h := b.Prepend(hlen)
	h[0] = 4<<4 | uint8(hlen/4)
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], uint16(total))
	ip.Length = uint16(total)
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	binary.BigEndian.PutUint16(h[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	h[8] = ip.TTL
	h[9] = ip.Protocol
	h[10], h[11] = 0, 0
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(h[12:16], src[:])
	copy(h[16:20], dst[:])
	copy(h[20:], ip.Options)
	ip.Checksum = headerChecksum(h)
	binary.BigEndian.PutUint16(h[10:12], ip.Checksum)
	return nil
}

// headerChecksum is the RFC 1071 ones-complement sum over the header. Over
// a header with a correct checksum in place it returns 0.
func headerChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(h[i : i+2]))
	}
	if len(h)%2 == 1 {
		sum += uint32(h[len(h)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
