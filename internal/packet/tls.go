package packet

import (
	"encoding/binary"
	"fmt"
)

// TLS record content types.
const (
	TLSRecordChangeCipherSpec uint8 = 20
	TLSRecordAlert            uint8 = 21
	TLSRecordHandshake        uint8 = 22
	TLSRecordApplicationData  uint8 = 23
)

// TLS handshake message types.
const (
	TLSHandshakeClientHello       uint8 = 1
	TLSHandshakeServerHello       uint8 = 2
	TLSHandshakeCertificate       uint8 = 11
	TLSHandshakeServerHelloDone   uint8 = 14
	TLSHandshakeClientKeyExchange uint8 = 16
	TLSHandshakeFinished          uint8 = 20
)

// TLSVersion12 is the record/handshake version the synthesizer stamps.
const TLSVersion12 uint16 = 0x0303

// sniExtension is the server_name extension type.
const sniExtension uint16 = 0

// TLSRecord is one TLS record: a content type plus an opaque fragment.
type TLSRecord struct {
	Type    uint8
	Version uint16
	Payload []byte
}

// LayerType implements Layer.
func (*TLSRecord) LayerType() LayerType { return LayerTypeTLS }

// Encode serializes the record.
func (r *TLSRecord) Encode() ([]byte, error) {
	if len(r.Payload) > 1<<14+256 {
		return nil, fmt.Errorf("tls: record payload %d exceeds maximum", len(r.Payload))
	}
	out := make([]byte, 5+len(r.Payload))
	out[0] = r.Type
	binary.BigEndian.PutUint16(out[1:3], r.Version)
	binary.BigEndian.PutUint16(out[3:5], uint16(len(r.Payload)))
	copy(out[5:], r.Payload)
	return out, nil
}

// DecodeTLSRecords parses a byte stream into consecutive TLS records.
// A trailing partial record is returned as rest without error, so callers
// can feed reassembled stream chunks incrementally.
func DecodeTLSRecords(data []byte) (recs []TLSRecord, rest []byte, err error) {
	for len(data) >= 5 {
		typ := data[0]
		if typ < TLSRecordChangeCipherSpec || typ > TLSRecordApplicationData {
			return recs, data, fmt.Errorf("tls: unknown content type %d", typ)
		}
		n := int(binary.BigEndian.Uint16(data[3:5]))
		if 5+n > len(data) {
			break
		}
		recs = append(recs, TLSRecord{Type: typ, Version: binary.BigEndian.Uint16(data[1:3]), Payload: data[5 : 5+n]})
		data = data[5+n:]
	}
	return recs, data, nil
}

// TLSHandshake is one handshake message inside a handshake record.
type TLSHandshake struct {
	Type uint8
	Body []byte
}

// DecodeTLSHandshakes splits a handshake-record payload into messages.
func DecodeTLSHandshakes(payload []byte) ([]TLSHandshake, error) {
	var out []TLSHandshake
	for len(payload) > 0 {
		if len(payload) < 4 {
			return nil, ErrTruncated
		}
		n := int(payload[1])<<16 | int(payload[2])<<8 | int(payload[3])
		if 4+n > len(payload) {
			return nil, ErrTruncated
		}
		out = append(out, TLSHandshake{Type: payload[0], Body: payload[4 : 4+n]})
		payload = payload[4+n:]
	}
	return out, nil
}

// encodeHandshake frames a handshake message.
func encodeHandshake(typ uint8, body []byte) []byte {
	out := make([]byte, 4+len(body))
	out[0] = typ
	out[1] = byte(len(body) >> 16)
	out[2] = byte(len(body) >> 8)
	out[3] = byte(len(body))
	copy(out[4:], body)
	return out
}

// ClientHello is the subset of a TLS ClientHello the probe cares about.
type ClientHello struct {
	Version      uint16
	Random       [32]byte
	SessionID    []byte
	CipherSuites []uint16
	ServerName   string // SNI, empty when absent
}

// Encode builds the full handshake message (type + length + body).
func (ch *ClientHello) Encode() ([]byte, error) {
	if len(ch.SessionID) > 32 {
		return nil, fmt.Errorf("tls: session id too long")
	}
	body := make([]byte, 0, 128)
	body = binary.BigEndian.AppendUint16(body, ch.Version)
	body = append(body, ch.Random[:]...)
	body = append(body, byte(len(ch.SessionID)))
	body = append(body, ch.SessionID...)
	suites := ch.CipherSuites
	if len(suites) == 0 {
		suites = []uint16{0x1301, 0x1302, 0xc02f}
	}
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(suites)))
	for _, s := range suites {
		body = binary.BigEndian.AppendUint16(body, s)
	}
	body = append(body, 1, 0) // compression methods: null
	var exts []byte
	if ch.ServerName != "" {
		if len(ch.ServerName) > 255 {
			return nil, fmt.Errorf("tls: server name too long")
		}
		// server_name extension: list of (type=0 host_name, name).
		name := []byte(ch.ServerName)
		sni := make([]byte, 0, 5+len(name))
		sni = binary.BigEndian.AppendUint16(sni, uint16(3+len(name))) // server_name_list length
		sni = append(sni, 0)                                          // name_type host_name
		sni = binary.BigEndian.AppendUint16(sni, uint16(len(name)))
		sni = append(sni, name...)
		exts = binary.BigEndian.AppendUint16(exts, sniExtension)
		exts = binary.BigEndian.AppendUint16(exts, uint16(len(sni)))
		exts = append(exts, sni...)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(exts)))
	body = append(body, exts...)
	return encodeHandshake(TLSHandshakeClientHello, body), nil
}

// ParseClientHello parses a ClientHello handshake body (without the 4-byte
// handshake header).
func ParseClientHello(body []byte) (*ClientHello, error) {
	ch := &ClientHello{}
	if len(body) < 35 {
		return nil, ErrTruncated
	}
	ch.Version = binary.BigEndian.Uint16(body[0:2])
	copy(ch.Random[:], body[2:34])
	off := 34
	sidLen := int(body[off])
	off++
	if off+sidLen > len(body) {
		return nil, ErrTruncated
	}
	ch.SessionID = append([]byte(nil), body[off:off+sidLen]...)
	off += sidLen
	if off+2 > len(body) {
		return nil, ErrTruncated
	}
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if csLen%2 != 0 || off+csLen > len(body) {
		return nil, fmt.Errorf("tls: bad cipher suite list")
	}
	for i := 0; i < csLen; i += 2 {
		ch.CipherSuites = append(ch.CipherSuites, binary.BigEndian.Uint16(body[off+i:off+i+2]))
	}
	off += csLen
	if off >= len(body) {
		return ch, nil // no compression/extensions (legal pre-extensions hello)
	}
	compLen := int(body[off])
	off++
	off += compLen
	if off+2 > len(body) {
		return ch, nil // no extensions block
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+extLen > len(body) {
		return nil, ErrTruncated
	}
	exts := body[off : off+extLen]
	for len(exts) >= 4 {
		typ := binary.BigEndian.Uint16(exts[0:2])
		n := int(binary.BigEndian.Uint16(exts[2:4]))
		if 4+n > len(exts) {
			return nil, ErrTruncated
		}
		if typ == sniExtension {
			name, err := parseSNI(exts[4 : 4+n])
			if err != nil {
				return nil, err
			}
			ch.ServerName = name
		}
		exts = exts[4+n:]
	}
	return ch, nil
}

func parseSNI(ext []byte) (string, error) {
	if len(ext) < 2 {
		return "", ErrTruncated
	}
	listLen := int(binary.BigEndian.Uint16(ext[0:2]))
	if 2+listLen > len(ext) {
		return "", ErrTruncated
	}
	list := ext[2 : 2+listLen]
	for len(list) >= 3 {
		nameType := list[0]
		n := int(binary.BigEndian.Uint16(list[1:3]))
		if 3+n > len(list) {
			return "", ErrTruncated
		}
		if nameType == 0 {
			return string(list[3 : 3+n]), nil
		}
		list = list[3+n:]
	}
	return "", nil
}

// ServerHello is the subset of a TLS ServerHello the probe cares about.
type ServerHello struct {
	Version     uint16
	Random      [32]byte
	SessionID   []byte
	CipherSuite uint16
}

// Encode builds the full handshake message.
func (sh *ServerHello) Encode() ([]byte, error) {
	if len(sh.SessionID) > 32 {
		return nil, fmt.Errorf("tls: session id too long")
	}
	body := make([]byte, 0, 64)
	body = binary.BigEndian.AppendUint16(body, sh.Version)
	body = append(body, sh.Random[:]...)
	body = append(body, byte(len(sh.SessionID)))
	body = append(body, sh.SessionID...)
	body = binary.BigEndian.AppendUint16(body, sh.CipherSuite)
	body = append(body, 0) // compression: null
	body = binary.BigEndian.AppendUint16(body, 0)
	return encodeHandshake(TLSHandshakeServerHello, body), nil
}

// ParseServerHello parses a ServerHello handshake body.
func ParseServerHello(body []byte) (*ServerHello, error) {
	sh := &ServerHello{}
	if len(body) < 35 {
		return nil, ErrTruncated
	}
	sh.Version = binary.BigEndian.Uint16(body[0:2])
	copy(sh.Random[:], body[2:34])
	off := 34
	sidLen := int(body[off])
	off++
	if off+sidLen+2 > len(body) {
		return nil, ErrTruncated
	}
	sh.SessionID = append([]byte(nil), body[off:off+sidLen]...)
	off += sidLen
	sh.CipherSuite = binary.BigEndian.Uint16(body[off : off+2])
	return sh, nil
}

// OpaqueHandshake frames an opaque handshake message of the given type and
// body length (used by the synthesizer for Certificate, ClientKeyExchange,
// etc., whose contents the probe never inspects).
func OpaqueHandshake(typ uint8, bodyLen int) []byte {
	return encodeHandshake(typ, make([]byte, bodyLen))
}
