package packet

import (
	"net/netip"
	"testing"
)

// The decoders face attacker-controlled bytes (the probe parses whatever
// crosses the wire), so none of them may panic on any input. Each fuzz
// target seeds the corpus with valid frames and lets the fuzzer mutate.

func FuzzDecode(f *testing.F) {
	raw, _ := Serialize([]byte("payload"),
		&IPv4{TTL: 64, Protocol: ProtoTCP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("1.2.3.4")},
		&TCP{SrcPort: 1234, DstPort: 443, Flags: FlagACK})
	f.Add(raw)
	udp, _ := Serialize([]byte{1, 2, 3},
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("8.8.8.8")},
		&UDP{SrcPort: 53, DstPort: 53})
	f.Add(udp)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err == nil && p == nil {
			t.Fatal("nil packet without error")
		}
	})
}

func FuzzDecodeDNS(f *testing.F) {
	m := &DNS{ID: 1, RD: true, Questions: []DNSQuestion{{Name: "www.example.com", Type: DNSTypeA, Class: DNSClassIN}}}
	raw, _ := m.Encode()
	f.Add(raw)
	// A compressed response.
	var comp []byte
	comp = append(comp, 0, 7, 0x81, 0x80, 0, 1, 0, 1, 0, 0, 0, 0)
	name, _ := appendName(nil, "a.b")
	comp = append(comp, name...)
	comp = append(comp, 0, 1, 0, 1, 0xc0, 12, 0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 1, 2, 3, 4)
	f.Add(comp)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = DecodeDNS(data)
	})
}

func FuzzDecodeTLS(f *testing.F) {
	ch, _ := (&ClientHello{ServerName: "fuzz.example"}).Encode()
	rec, _ := (&TLSRecord{Type: TLSRecordHandshake, Version: TLSVersion12, Payload: ch}).Encode()
	f.Add(rec)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, _, err := DecodeTLSRecords(data)
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Type != TLSRecordHandshake {
				continue
			}
			msgs, err := DecodeTLSHandshakes(r.Payload)
			if err != nil {
				continue
			}
			for _, m := range msgs {
				switch m.Type {
				case TLSHandshakeClientHello:
					_, _ = ParseClientHello(m.Body)
				case TLSHandshakeServerHello:
					_, _ = ParseServerHello(m.Body)
				}
			}
		}
	})
}

func FuzzDecodeQUIC(f *testing.F) {
	hs, _ := (&ClientHello{ServerName: "quic.example"}).Encode()
	ini, _ := (&QUICInitial{Version: QUICVersion1, DCID: []byte{1, 2, 3, 4}, CryptoPayload: hs}).Encode()
	f.Add(ini)
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQUICInitial(data)
		if err == nil && q != nil {
			_, _ = q.SNI()
		}
	})
}

func FuzzParseHTTPRequest(f *testing.F) {
	f.Add([]byte("GET /x HTTP/1.1\r\nHost: a.b\r\n\r\n"))
	f.Add([]byte("POST / HTTP/1.0\r\nHost: c:80\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseHTTPRequest(data)
		if err == nil {
			_ = req.Host()
		}
	})
}

func FuzzDecodeRTP(f *testing.F) {
	raw, _ := (&RTP{PayloadType: 96, Sequence: 7, CSRC: []uint32{1}}).Encode()
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = DecodeRTP(data)
		_ = LooksLikeRTP(data)
	})
}
