package packet

import (
	"bytes"
	"fmt"
	"strings"
)

// HTTPRequest is the head of an HTTP/1.x request: what a probe can observe
// of plain-text web traffic (paper §2.2: the Host header names the server).
type HTTPRequest struct {
	Method  string
	Target  string
	Version string
	Headers []HTTPHeader
}

// HTTPHeader is one request header field.
type HTTPHeader struct {
	Name, Value string
}

// LayerType implements Layer.
func (*HTTPRequest) LayerType() LayerType { return LayerTypeHTTP }

// Host returns the Host header value (without any port), or "".
func (r *HTTPRequest) Host() string {
	for _, h := range r.Headers {
		if strings.EqualFold(h.Name, "Host") {
			host := h.Value
			if i := strings.LastIndexByte(host, ':'); i > 0 && !strings.Contains(host[i+1:], "]") {
				host = host[:i]
			}
			return host
		}
	}
	return ""
}

// Encode serializes the request head (no body).
func (r *HTTPRequest) Encode() []byte {
	var b strings.Builder
	method := r.Method
	if method == "" {
		method = "GET"
	}
	target := r.Target
	if target == "" {
		target = "/"
	}
	version := r.Version
	if version == "" {
		version = "HTTP/1.1"
	}
	fmt.Fprintf(&b, "%s %s %s\r\n", method, target, version)
	for _, h := range r.Headers {
		fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
	}
	b.WriteString("\r\n")
	return []byte(b.String())
}

var httpMethods = [...]string{"GET", "POST", "PUT", "HEAD", "DELETE", "OPTIONS", "PATCH", "CONNECT", "TRACE"}

// LooksLikeHTTPRequest reports whether data starts with an HTTP/1.x request
// line, without fully parsing it — the DPI fast path.
func LooksLikeHTTPRequest(data []byte) bool {
	for _, m := range httpMethods {
		if len(data) > len(m) && string(data[:len(m)]) == m && data[len(m)] == ' ' {
			return true
		}
	}
	return false
}

// ParseHTTPRequest parses a request head from the start of data. It accepts
// a partial header block (stops at the end of input), because the probe may
// only hold the first segment of the stream.
func ParseHTTPRequest(data []byte) (*HTTPRequest, error) {
	if !LooksLikeHTTPRequest(data) {
		return nil, fmt.Errorf("http: no request line")
	}
	// Bound the head to the header/body separator when present.
	if i := bytes.Index(data, []byte("\r\n\r\n")); i >= 0 {
		data = data[:i+2]
	}
	lines := strings.Split(string(data), "\r\n")
	if !bytes.HasSuffix(data, []byte("\r\n")) && len(lines) > 0 {
		// The segment was cut mid-line; the trailing fragment is not a
		// complete header field and must not be half-parsed.
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("http: no complete request line")
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("http: malformed request line %q", lines[0])
	}
	req := &HTTPRequest{Method: parts[0], Target: parts[1], Version: parts[2]}
	for _, ln := range lines[1:] {
		if ln == "" {
			break
		}
		name, value, ok := strings.Cut(ln, ":")
		if !ok {
			// Tolerate a trailing partial header line from a cut segment.
			break
		}
		req.Headers = append(req.Headers, HTTPHeader{Name: strings.TrimSpace(name), Value: strings.TrimSpace(value)})
	}
	return req, nil
}
