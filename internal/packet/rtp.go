package packet

import (
	"encoding/binary"
	"fmt"
)

// RTP is an RTP fixed header (RFC 3550). The paper observes a
// non-negligible share of real-time voice/video traffic even over the
// 550 ms link (Table 1: 1.1 % of volume).
type RTP struct {
	Padding     bool
	Marker      bool
	PayloadType uint8 // 7 bits
	Sequence    uint16
	Timestamp   uint32
	SSRC        uint32
	CSRC        []uint32 // up to 15
}

// LayerType implements Layer.
func (*RTP) LayerType() LayerType { return LayerTypeRTP }

// Encode serializes the header (version 2, no extension).
func (r *RTP) Encode() ([]byte, error) {
	if len(r.CSRC) > 15 {
		return nil, fmt.Errorf("rtp: %d CSRCs exceeds 15", len(r.CSRC))
	}
	if r.PayloadType > 127 {
		return nil, fmt.Errorf("rtp: payload type %d exceeds 127", r.PayloadType)
	}
	out := make([]byte, 12+4*len(r.CSRC))
	out[0] = 2 << 6
	if r.Padding {
		out[0] |= 1 << 5
	}
	out[0] |= uint8(len(r.CSRC))
	out[1] = r.PayloadType
	if r.Marker {
		out[1] |= 1 << 7
	}
	binary.BigEndian.PutUint16(out[2:4], r.Sequence)
	binary.BigEndian.PutUint32(out[4:8], r.Timestamp)
	binary.BigEndian.PutUint32(out[8:12], r.SSRC)
	for i, c := range r.CSRC {
		binary.BigEndian.PutUint32(out[12+4*i:16+4*i], c)
	}
	return out, nil
}

// DecodeRTP parses an RTP header and returns the payload.
func DecodeRTP(data []byte) (*RTP, []byte, error) {
	if len(data) < 12 {
		return nil, nil, ErrTruncated
	}
	if v := data[0] >> 6; v != 2 {
		return nil, nil, fmt.Errorf("rtp: version %d", v)
	}
	r := &RTP{
		Padding:     data[0]&(1<<5) != 0,
		Marker:      data[1]&(1<<7) != 0,
		PayloadType: data[1] & 0x7f,
		Sequence:    binary.BigEndian.Uint16(data[2:4]),
		Timestamp:   binary.BigEndian.Uint32(data[4:8]),
		SSRC:        binary.BigEndian.Uint32(data[8:12]),
	}
	cc := int(data[0] & 0x0f)
	if len(data) < 12+4*cc {
		return nil, nil, ErrTruncated
	}
	for i := 0; i < cc; i++ {
		r.CSRC = append(r.CSRC, binary.BigEndian.Uint32(data[12+4*i:16+4*i]))
	}
	return r, data[12+4*cc:], nil
}

// LooksLikeRTP is the DPI heuristic for RTP over UDP: version 2 and a
// plausible payload type.
func LooksLikeRTP(data []byte) bool {
	if len(data) < 12 || data[0]>>6 != 2 {
		return false
	}
	pt := data[1] & 0x7f
	// Dynamic (96-127) or well-known static payload types.
	return pt >= 96 || pt <= 34
}
