package packet

import (
	"encoding/binary"
	"fmt"
)

// TCPFlags is the TCP flag byte (we ignore the reserved/NS bits).
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

func (f TCPFlags) Has(bits TCPFlags) bool { return f&bits == bits }

func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name byte
	}{{FlagFIN, 'F'}, {FlagSYN, 'S'}, {FlagRST, 'R'}, {FlagPSH, 'P'}, {FlagACK, 'A'}, {FlagURG, 'U'}}
	out := make([]byte, 0, 6)
	for _, n := range names {
		if f&n.bit != 0 {
			out = append(out, n.name)
		}
	}
	if len(out) == 0 {
		return "-"
	}
	return string(out)
}

// TCP is a TCP header. Options are carried opaquely. The checksum is not
// computed (it needs a pseudo-header; the probe never validates it, as span
// ports commonly deliver offload-mangled checksums anyway).
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Urgent           uint16
	Options          []byte // length must be a multiple of 4
}

// LayerType implements Layer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// HeaderLen returns the header length in bytes including options.
func (t *TCP) HeaderLen() int { return 20 + len(t.Options) }

// Decode parses the header and returns the payload bytes.
func (t *TCP) Decode(data []byte) ([]byte, error) {
	if len(data) < 20 {
		return nil, ErrTruncated
	}
	off := int(data[12]>>4) * 4
	if off < 20 {
		return nil, fmt.Errorf("data offset %d below minimum", off)
	}
	if len(data) < off {
		return nil, ErrTruncated
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.Flags = TCPFlags(data[13] & 0x3f)
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	if off > 20 {
		t.Options = append([]byte(nil), data[20:off]...)
	} else {
		t.Options = nil
	}
	return data[off:], nil
}

// SerializeTo implements Serializer.
func (t *TCP) SerializeTo(b *SerializeBuffer) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("tcp: options length %d not a multiple of 4", len(t.Options))
	}
	hlen := t.HeaderLen()
	if hlen > 60 {
		return fmt.Errorf("tcp: header length %d exceeds 60", hlen)
	}
	h := b.Prepend(hlen)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = uint8(hlen/4) << 4
	h[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	h[16], h[17] = 0, 0 // checksum not computed
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	copy(h[20:], t.Options)
	return nil
}

// UDP is a UDP header. As with TCP the checksum is left zero (legal in
// IPv4: "no checksum computed").
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16 // filled by SerializeTo
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// Decode parses the header and returns the payload bytes (bounded by the
// UDP length field).
func (u *UDP) Decode(data []byte) ([]byte, error) {
	if len(data) < 8 {
		return nil, ErrTruncated
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	if int(u.Length) < 8 {
		return nil, fmt.Errorf("udp length %d below 8", u.Length)
	}
	if int(u.Length) > len(data) {
		return nil, ErrTruncated
	}
	return data[8:u.Length], nil
}

// SerializeTo implements Serializer.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	total := 8 + b.Len()
	if total > 0xffff {
		return fmt.Errorf("udp: datagram length %d exceeds 65535", total)
	}
	h := b.Prepend(8)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], uint16(total))
	u.Length = uint16(total)
	h[6], h[7] = 0, 0
	return nil
}
