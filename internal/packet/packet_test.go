package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	clientAddr = netip.MustParseAddr("10.8.1.2")
	serverAddr = netip.MustParseAddr("142.250.10.1")
)

func buildTCPPacket(t *testing.T, payload []byte, flags TCPFlags) []byte {
	t.Helper()
	raw, err := Serialize(payload,
		&IPv4{TTL: 64, Protocol: ProtoTCP, Src: clientAddr, Dst: serverAddr, ID: 7},
		&TCP{SrcPort: 40000, DstPort: 443, Seq: 1000, Ack: 2000, Flags: flags, Window: 65535},
	)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestIPv4TCPRoundTrip(t *testing.T) {
	payload := []byte("hello satellite")
	raw := buildTCPPacket(t, payload, FlagPSH|FlagACK)
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	ip := p.IPv4Layer()
	if ip == nil || ip.Src != clientAddr || ip.Dst != serverAddr {
		t.Fatalf("bad IP layer: %+v", ip)
	}
	if int(ip.Length) != len(raw) {
		t.Fatalf("IP length %d, raw %d", ip.Length, len(raw))
	}
	tcp := p.TCPLayer()
	if tcp == nil || tcp.SrcPort != 40000 || tcp.DstPort != 443 || tcp.Seq != 1000 || tcp.Ack != 2000 {
		t.Fatalf("bad TCP layer: %+v", tcp)
	}
	if !tcp.Flags.Has(FlagPSH | FlagACK) {
		t.Fatalf("flags %v", tcp.Flags)
	}
	if !bytes.Equal(p.AppPayload(), payload) {
		t.Fatalf("payload %q, want %q", p.AppPayload(), payload)
	}
}

func TestIPv4UDPRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	raw, err := Serialize(payload,
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: serverAddr, Dst: clientAddr},
		&UDP{SrcPort: 53, DstPort: 5353},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	udp := p.UDPLayer()
	if udp == nil || udp.SrcPort != 53 || udp.DstPort != 5353 {
		t.Fatalf("bad UDP layer: %+v", udp)
	}
	if int(udp.Length) != 8+len(payload) {
		t.Fatalf("UDP length %d", udp.Length)
	}
	if !bytes.Equal(p.AppPayload(), payload) {
		t.Fatal("payload mismatch")
	}
}

func TestIPv4ChecksumValidation(t *testing.T) {
	raw := buildTCPPacket(t, nil, FlagSYN)
	raw[10] ^= 0xff // corrupt checksum
	if _, err := Decode(raw); err == nil {
		t.Fatal("corrupted checksum accepted")
	}
}

func TestIPv4HeaderCorruption(t *testing.T) {
	raw := buildTCPPacket(t, []byte("x"), FlagACK)
	cases := map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:10] },
		"bad version": func(b []byte) []byte { b[0] = 6<<4 | 5; return b },
		"bad ihl":     func(b []byte) []byte { b[0] = 4<<4 | 3; return b },
		"truncated":   func(b []byte) []byte { return b[:len(b)-1] },
	}
	for name, corrupt := range cases {
		c := corrupt(append([]byte(nil), raw...))
		if _, err := Decode(c); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestIPv4Options(t *testing.T) {
	ip := &IPv4{TTL: 1, Protocol: ProtoUDP, Src: clientAddr, Dst: serverAddr, Options: []byte{1, 1, 1, 1}}
	raw, err := Serialize(nil, ip, &UDP{SrcPort: 1, DstPort: 2})
	if err != nil {
		t.Fatal(err)
	}
	var got IPv4
	if _, err := got.Decode(raw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Options, []byte{1, 1, 1, 1}) {
		t.Fatalf("options %v", got.Options)
	}
	bad := &IPv4{TTL: 1, Protocol: ProtoUDP, Src: clientAddr, Dst: serverAddr, Options: []byte{1, 2, 3}}
	if _, err := Serialize(nil, bad, &UDP{}); err == nil {
		t.Fatal("unaligned options accepted")
	}
}

func TestTCPFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SA" {
		t.Fatalf("flags string %q, want SA", s)
	}
	if s := TCPFlags(0).String(); s != "-" {
		t.Fatalf("zero flags string %q", s)
	}
}

func TestTCPOptionsRoundTrip(t *testing.T) {
	opts := []byte{2, 4, 5, 180, 1, 1, 1, 0} // MSS + padding
	raw, err := Serialize([]byte("d"),
		&IPv4{TTL: 64, Protocol: ProtoTCP, Src: clientAddr, Dst: serverAddr},
		&TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN, Options: opts},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.TCPLayer().Options, opts) {
		t.Fatal("TCP options mismatch")
	}
}

func TestFiveTupleCanonicalSymmetry(t *testing.T) {
	a := FiveTuple{Proto: ProtoTCP,
		Src: Endpoint{Addr: clientAddr, Port: 40000},
		Dst: Endpoint{Addr: serverAddr, Port: 443}}
	b := a.Reverse()
	ca, swapped := a.Canonical()
	cb, swappedB := b.Canonical()
	if ca != cb {
		t.Fatalf("canonical forms differ: %v vs %v", ca, cb)
	}
	if swapped == swappedB {
		t.Fatal("exactly one direction should be swapped")
	}
	if a.FastHash() != b.FastHash() {
		t.Fatal("FastHash not symmetric")
	}
}

func TestFiveTupleHashProperty(t *testing.T) {
	f := func(a1, a2 [4]byte, p1, p2 uint16, proto bool) bool {
		pr := ProtoTCP
		if !proto {
			pr = ProtoUDP
		}
		ft := FiveTuple{Proto: pr,
			Src: Endpoint{Addr: netip.AddrFrom4(a1), Port: p1},
			Dst: Endpoint{Addr: netip.AddrFrom4(a2), Port: p2}}
		return ft.FastHash() == ft.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleOf(t *testing.T) {
	raw := buildTCPPacket(t, nil, FlagSYN)
	p, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := TupleOf(p)
	if !ok {
		t.Fatal("no tuple")
	}
	if ft.Proto != ProtoTCP || ft.Src.Port != 40000 || ft.Dst.Port != 443 {
		t.Fatalf("tuple %v", ft)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer()
	big := b.Prepend(1000) // forces growth
	for i := range big {
		big[i] = byte(i)
	}
	if b.Len() != 1000 {
		t.Fatalf("len %d", b.Len())
	}
	if b.Bytes()[999] != byte(999%256) {
		t.Fatal("growth lost data")
	}
	b.Prepend(8)
	if b.Len() != 1008 {
		t.Fatalf("len after second prepend %d", b.Len())
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(src, dst [4]byte, tos, ttl uint8, id uint16, payload []byte) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		ip := &IPv4{TOS: tos, TTL: ttl, ID: id, Protocol: ProtoUDP,
			Src: netip.AddrFrom4(src), Dst: netip.AddrFrom4(dst)}
		raw, err := Serialize(payload, ip, &UDP{SrcPort: 9, DstPort: 10})
		if err != nil {
			return false
		}
		var got IPv4
		rest, err := got.Decode(raw)
		if err != nil {
			return false
		}
		var udp UDP
		inner, err := udp.Decode(rest)
		if err != nil {
			return false
		}
		return got.Src == ip.Src && got.Dst == ip.Dst && got.TOS == tos &&
			got.TTL == ttl && got.ID == id && bytes.Equal(inner, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
