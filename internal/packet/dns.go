package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// DNS record types and classes used by the deployment's resolvers.
const (
	DNSTypeA     uint16 = 1
	DNSTypeCNAME uint16 = 5
	DNSTypeAAAA  uint16 = 28
	DNSClassIN   uint16 = 1
)

// DNS response codes.
const (
	DNSRCodeNoError  uint8 = 0
	DNSRCodeNXDomain uint8 = 3
	DNSRCodeServFail uint8 = 2
)

// DNSQuestion is one question section entry.
type DNSQuestion struct {
	Name  string
	Type  uint16
	Class uint16
}

// DNSRR is one resource record. For A/AAAA records Addr carries the
// address; for CNAME records Target carries the canonical name; for other
// types Data carries the RDATA opaquely.
type DNSRR struct {
	Name   string
	Type   uint16
	Class  uint16
	TTL    uint32
	Addr   netip.Addr
	Target string
	Data   []byte
}

// DNS is a DNS message (RFC 1035 wire format). Encoding writes names
// uncompressed; decoding follows compression pointers.
type DNS struct {
	ID     uint16
	QR     bool // response
	Opcode uint8
	AA     bool
	TC     bool
	RD     bool
	RA     bool
	RCode  uint8

	Questions   []DNSQuestion
	Answers     []DNSRR
	Authorities []DNSRR
	Additionals []DNSRR
}

// LayerType implements Layer.
func (*DNS) LayerType() LayerType { return LayerTypeDNS }

// Encode serializes the message.
func (m *DNS) Encode() ([]byte, error) {
	out := make([]byte, 12, 64)
	binary.BigEndian.PutUint16(out[0:2], m.ID)
	var flags uint16
	if m.QR {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.AA {
		flags |= 1 << 10
	}
	if m.TC {
		flags |= 1 << 9
	}
	if m.RD {
		flags |= 1 << 8
	}
	if m.RA {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode & 0xf)
	binary.BigEndian.PutUint16(out[2:4], flags)
	binary.BigEndian.PutUint16(out[4:6], uint16(len(m.Questions)))
	binary.BigEndian.PutUint16(out[6:8], uint16(len(m.Answers)))
	binary.BigEndian.PutUint16(out[8:10], uint16(len(m.Authorities)))
	binary.BigEndian.PutUint16(out[10:12], uint16(len(m.Additionals)))
	var err error
	for _, q := range m.Questions {
		if out, err = appendName(out, q.Name); err != nil {
			return nil, err
		}
		out = binary.BigEndian.AppendUint16(out, q.Type)
		out = binary.BigEndian.AppendUint16(out, q.Class)
	}
	for _, sec := range [][]DNSRR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if out, err = appendRR(out, rr); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func appendRR(out []byte, rr DNSRR) ([]byte, error) {
	var err error
	if out, err = appendName(out, rr.Name); err != nil {
		return nil, err
	}
	out = binary.BigEndian.AppendUint16(out, rr.Type)
	out = binary.BigEndian.AppendUint16(out, rr.Class)
	out = binary.BigEndian.AppendUint32(out, rr.TTL)
	var rdata []byte
	switch rr.Type {
	case DNSTypeA:
		if !rr.Addr.Is4() {
			return nil, fmt.Errorf("dns: A record %q without IPv4 address", rr.Name)
		}
		a := rr.Addr.As4()
		rdata = a[:]
	case DNSTypeAAAA:
		if !rr.Addr.Is6() {
			return nil, fmt.Errorf("dns: AAAA record %q without IPv6 address", rr.Name)
		}
		a := rr.Addr.As16()
		rdata = a[:]
	case DNSTypeCNAME:
		if rdata, err = appendName(nil, rr.Target); err != nil {
			return nil, err
		}
	default:
		rdata = rr.Data
	}
	if len(rdata) > 0xffff {
		return nil, fmt.Errorf("dns: rdata of %q too long", rr.Name)
	}
	out = binary.BigEndian.AppendUint16(out, uint16(len(rdata)))
	return append(out, rdata...), nil
}

// appendName writes a domain name in uncompressed label format.
func appendName(out []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name != "" {
		for _, label := range strings.Split(name, ".") {
			if len(label) == 0 || len(label) > 63 {
				return nil, fmt.Errorf("dns: bad label in %q", name)
			}
			out = append(out, byte(len(label)))
			out = append(out, label...)
		}
	}
	return append(out, 0), nil
}

// DecodeDNS parses a DNS message.
func DecodeDNS(data []byte) (*DNS, error) {
	if len(data) < 12 {
		return nil, ErrTruncated
	}
	m := &DNS{ID: binary.BigEndian.Uint16(data[0:2])}
	flags := binary.BigEndian.Uint16(data[2:4])
	m.QR = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xf)
	m.AA = flags&(1<<10) != 0
	m.TC = flags&(1<<9) != 0
	m.RD = flags&(1<<8) != 0
	m.RA = flags&(1<<7) != 0
	m.RCode = uint8(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))
	off := 12
	var err error
	for i := 0; i < qd; i++ {
		var q DNSQuestion
		q.Name, off, err = readName(data, off)
		if err != nil {
			return nil, err
		}
		if off+4 > len(data) {
			return nil, ErrTruncated
		}
		q.Type = binary.BigEndian.Uint16(data[off : off+2])
		q.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
		off += 4
		m.Questions = append(m.Questions, q)
	}
	for _, sec := range []struct {
		n   int
		dst *[]DNSRR
	}{{an, &m.Answers}, {ns, &m.Authorities}, {ar, &m.Additionals}} {
		for i := 0; i < sec.n; i++ {
			var rr DNSRR
			rr, off, err = readRR(data, off)
			if err != nil {
				return nil, err
			}
			*sec.dst = append(*sec.dst, rr)
		}
	}
	return m, nil
}

func readRR(data []byte, off int) (DNSRR, int, error) {
	var rr DNSRR
	var err error
	rr.Name, off, err = readName(data, off)
	if err != nil {
		return rr, off, err
	}
	if off+10 > len(data) {
		return rr, off, ErrTruncated
	}
	rr.Type = binary.BigEndian.Uint16(data[off : off+2])
	rr.Class = binary.BigEndian.Uint16(data[off+2 : off+4])
	rr.TTL = binary.BigEndian.Uint32(data[off+4 : off+8])
	rdlen := int(binary.BigEndian.Uint16(data[off+8 : off+10]))
	off += 10
	if off+rdlen > len(data) {
		return rr, off, ErrTruncated
	}
	rdata := data[off : off+rdlen]
	switch rr.Type {
	case DNSTypeA:
		if rdlen != 4 {
			return rr, off, fmt.Errorf("dns: A rdata length %d", rdlen)
		}
		rr.Addr = netip.AddrFrom4([4]byte(rdata))
	case DNSTypeAAAA:
		if rdlen != 16 {
			return rr, off, fmt.Errorf("dns: AAAA rdata length %d", rdlen)
		}
		rr.Addr = netip.AddrFrom16([16]byte(rdata))
	case DNSTypeCNAME:
		// CNAME targets may use compression pointers into the message.
		rr.Target, _, err = readName(data, off)
		if err != nil {
			return rr, off, err
		}
	default:
		rr.Data = append([]byte(nil), rdata...)
	}
	return rr, off + rdlen, nil
}

// readName reads a possibly-compressed domain name starting at off and
// returns the name and the offset just past it in the original stream.
func readName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	jumped := false
	end := off
	hops := 0
	for {
		if off >= len(data) {
			return "", 0, ErrTruncated
		}
		l := int(data[off])
		switch {
		case l == 0:
			if !jumped {
				end = off + 1
			}
			return sb.String(), end, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, ErrTruncated
			}
			ptr := int(binary.BigEndian.Uint16(data[off:off+2]) & 0x3fff)
			if !jumped {
				end = off + 2
				jumped = true
			}
			if hops++; hops > 32 {
				return "", 0, fmt.Errorf("dns: compression pointer loop")
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("dns: forward compression pointer")
			}
			off = ptr
		case l&0xc0 != 0:
			return "", 0, fmt.Errorf("dns: reserved label type %#x", l&0xc0)
		default:
			if off+1+l > len(data) {
				return "", 0, ErrTruncated
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[off+1 : off+1+l])
			if sb.Len() > 255 {
				return "", 0, fmt.Errorf("dns: name too long")
			}
			off += 1 + l
		}
	}
}
