package packet

// SerializeBuffer builds packets back-to-front, gopacket-style: payloads are
// written first and each lower layer prepends its header, so headers can fix
// up lengths and checksums over the bytes that follow them.
type SerializeBuffer struct {
	data  []byte
	start int
}

// NewSerializeBuffer returns a buffer with room for typical headers.
func NewSerializeBuffer() *SerializeBuffer {
	const headroom = 128
	return &SerializeBuffer{data: make([]byte, headroom), start: headroom}
}

// Bytes returns the serialized packet so far.
func (b *SerializeBuffer) Bytes() []byte { return b.data[b.start:] }

// Len returns the current serialized length.
func (b *SerializeBuffer) Len() int { return len(b.data) - b.start }

// Prepend makes room for n bytes in front of the current content and
// returns that region for the caller to fill.
func (b *SerializeBuffer) Prepend(n int) []byte {
	if n <= b.start {
		b.start -= n
		return b.data[b.start : b.start+n]
	}
	grow := n - b.start + 256
	nd := make([]byte, len(b.data)+grow)
	copy(nd[grow:], b.data)
	b.data = nd
	b.start += grow
	b.start -= n
	return b.data[b.start : b.start+n]
}

// PushPayload appends payload as the innermost content. It must be called
// before any header is prepended.
func (b *SerializeBuffer) PushPayload(p []byte) {
	b.data = append(b.data[:len(b.data)], p...)
}

// Serializer is a layer that can prepend itself onto a buffer.
type Serializer interface {
	// SerializeTo prepends this layer's wire representation; the buffer
	// already holds everything above this layer.
	SerializeTo(b *SerializeBuffer) error
}

// Serialize builds a packet from layers (outermost first) and a payload.
func Serialize(payload []byte, layers ...Serializer) ([]byte, error) {
	b := NewSerializeBuffer()
	b.PushPayload(payload)
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return nil, err
		}
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}
