package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestClientHelloSNIRoundTrip(t *testing.T) {
	ch := &ClientHello{Version: TLSVersion12, ServerName: "edge.whatsapp.net"}
	ch.Random[0] = 0xaa
	msg, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := DecodeTLSHandshakes(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Type != TLSHandshakeClientHello {
		t.Fatalf("handshake framing: %+v", msgs)
	}
	got, err := ParseClientHello(msgs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerName != "edge.whatsapp.net" {
		t.Fatalf("SNI %q", got.ServerName)
	}
	if got.Random[0] != 0xaa || got.Version != TLSVersion12 {
		t.Fatal("fields lost in round trip")
	}
}

func TestClientHelloWithoutSNI(t *testing.T) {
	ch := &ClientHello{Version: TLSVersion12}
	msg, err := ch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ := DecodeTLSHandshakes(msg)
	got, err := ParseClientHello(msgs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.ServerName != "" {
		t.Fatalf("phantom SNI %q", got.ServerName)
	}
}

func TestServerHelloRoundTrip(t *testing.T) {
	sh := &ServerHello{Version: TLSVersion12, CipherSuite: 0xc02f, SessionID: []byte{1, 2, 3}}
	msg, err := sh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := DecodeTLSHandshakes(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseServerHello(msgs[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if got.CipherSuite != 0xc02f || !bytes.Equal(got.SessionID, []byte{1, 2, 3}) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestTLSRecordFraming(t *testing.T) {
	ch := &ClientHello{Version: TLSVersion12, ServerName: "x.test"}
	hs, _ := ch.Encode()
	rec := &TLSRecord{Type: TLSRecordHandshake, Version: TLSVersion12, Payload: hs}
	raw, err := rec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ccs, _ := (&TLSRecord{Type: TLSRecordChangeCipherSpec, Version: TLSVersion12, Payload: []byte{1}}).Encode()
	stream := append(append([]byte{}, raw...), ccs...)
	recs, rest, err := DecodeTLSRecords(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(rest) != 0 {
		t.Fatalf("%d records, %d rest", len(recs), len(rest))
	}
	if recs[0].Type != TLSRecordHandshake || recs[1].Type != TLSRecordChangeCipherSpec {
		t.Fatal("record types wrong")
	}
}

func TestTLSPartialRecordReturnedAsRest(t *testing.T) {
	rec, _ := (&TLSRecord{Type: TLSRecordApplicationData, Version: TLSVersion12, Payload: make([]byte, 100)}).Encode()
	recs, rest, err := DecodeTLSRecords(rec[:50])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || len(rest) != 50 {
		t.Fatalf("partial record mishandled: %d recs, %d rest", len(recs), len(rest))
	}
}

func TestTLSUnknownContentType(t *testing.T) {
	raw := []byte{99, 3, 3, 0, 1, 0}
	if _, _, err := DecodeTLSRecords(raw); err == nil {
		t.Fatal("unknown content type accepted")
	}
}

func TestHandshakeTruncation(t *testing.T) {
	ch := &ClientHello{ServerName: "a.b"}
	msg, _ := ch.Encode()
	if _, err := DecodeTLSHandshakes(msg[:3]); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := DecodeTLSHandshakes(msg[:len(msg)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestParseClientHelloTruncated(t *testing.T) {
	if _, err := ParseClientHello(make([]byte, 10)); err == nil {
		t.Fatal("truncated hello accepted")
	}
}

func TestOpaqueHandshake(t *testing.T) {
	msg := OpaqueHandshake(TLSHandshakeCertificate, 2000)
	msgs, err := DecodeTLSHandshakes(msg)
	if err != nil {
		t.Fatal(err)
	}
	if msgs[0].Type != TLSHandshakeCertificate || len(msgs[0].Body) != 2000 {
		t.Fatalf("opaque message: type %d len %d", msgs[0].Type, len(msgs[0].Body))
	}
}

func TestSNIRoundTripProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		n1 := int(a)%30 + 1
		n2 := int(b)%10 + 1
		name := string(bytes.Repeat([]byte{'s'}, n1)) + "." + string(bytes.Repeat([]byte{'d'}, n2))
		ch := &ClientHello{ServerName: name}
		msg, err := ch.Encode()
		if err != nil {
			return false
		}
		msgs, err := DecodeTLSHandshakes(msg)
		if err != nil {
			return false
		}
		got, err := ParseClientHello(msgs[0].Body)
		return err == nil && got.ServerName == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordTooLarge(t *testing.T) {
	r := &TLSRecord{Type: TLSRecordApplicationData, Payload: make([]byte, 1<<15)}
	if _, err := r.Encode(); err == nil {
		t.Fatal("oversized record accepted")
	}
}
