package packet

import (
	"fmt"
	"net/netip"
)

// Endpoint is one side of a transport conversation.
type Endpoint struct {
	Addr netip.Addr
	Port uint16
}

func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Less orders endpoints by address then port, for canonicalization.
func (e Endpoint) Less(o Endpoint) bool {
	switch e.Addr.Compare(o.Addr) {
	case -1:
		return true
	case 1:
		return false
	}
	return e.Port < o.Port
}

// FiveTuple identifies a transport flow: protocol plus both endpoints, in
// the direction of the packet it was extracted from.
type FiveTuple struct {
	Proto uint8
	Src   Endpoint
	Dst   Endpoint
}

func (f FiveTuple) String() string {
	proto := "?"
	switch f.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s > %s", proto, f.Src, f.Dst)
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Proto: f.Proto, Src: f.Dst, Dst: f.Src}
}

// Canonical returns a direction-independent tuple (the lesser endpoint
// first) plus whether this tuple was swapped to get there. Both directions
// of a conversation map to the same canonical key.
func (f FiveTuple) Canonical() (FiveTuple, bool) {
	if f.Dst.Less(f.Src) {
		return f.Reverse(), true
	}
	return f, false
}

// FastHash is a direction-symmetric 64-bit hash (FNV-1a over the canonical
// byte order), suitable for sharding flows across workers — following
// gopacket's symmetric Flow.FastHash contract.
func (f FiveTuple) FastHash() uint64 {
	c, _ := f.Canonical()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	mix(c.Proto)
	for _, e := range []Endpoint{c.Src, c.Dst} {
		b := e.Addr.As16()
		for _, x := range b {
			mix(x)
		}
		mix(byte(e.Port >> 8))
		mix(byte(e.Port))
	}
	return h
}

// TupleOf extracts the five-tuple from a decoded packet, or ok=false when
// the packet has no TCP/UDP transport layer.
func TupleOf(p *Packet) (FiveTuple, bool) {
	ip := p.IPv4Layer()
	if ip == nil {
		return FiveTuple{}, false
	}
	t := FiveTuple{Src: Endpoint{Addr: ip.Src}, Dst: Endpoint{Addr: ip.Dst}}
	switch ip.Protocol {
	case ProtoTCP:
		tcp := p.TCPLayer()
		if tcp == nil {
			return FiveTuple{}, false
		}
		t.Proto = ProtoTCP
		t.Src.Port, t.Dst.Port = tcp.SrcPort, tcp.DstPort
	case ProtoUDP:
		udp := p.UDPLayer()
		if udp == nil {
			return FiveTuple{}, false
		}
		t.Proto = ProtoUDP
		t.Src.Port, t.Dst.Port = udp.SrcPort, udp.DstPort
	default:
		return FiveTuple{}, false
	}
	return t, true
}
