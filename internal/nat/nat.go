// Package nat implements the ground station's NAT function (§2.1): every
// customer CPE holds a private IPv4 address, so all internet-bound
// connections are rewritten to the gateway's public pool, and no inbound
// connection can ever be initiated toward a customer.
package nat

import (
	"fmt"
	"net/netip"
	"sync"

	"satwatch/internal/packet"
)

// Binding is one active translation.
type Binding struct {
	Inside  packet.Endpoint // customer-side (private) endpoint
	Outside packet.Endpoint // public endpoint presented to the internet
}

// Table is a port-translating NAT with a public address pool. Safe for
// concurrent use.
type Table struct {
	mu      sync.Mutex
	pool    []netip.Addr
	nextIP  int
	nextPrt uint16
	byIn    map[packet.Endpoint]Binding
	byOut   map[packet.Endpoint]Binding
}

// portFloor is the first public port handed out.
const portFloor = 1024

// NewTable builds a NAT over the given public address pool.
func NewTable(pool []netip.Addr) (*Table, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("nat: empty public pool")
	}
	for _, a := range pool {
		if !a.Is4() {
			return nil, fmt.Errorf("nat: pool address %v is not IPv4", a)
		}
	}
	return &Table{
		pool:    append([]netip.Addr(nil), pool...),
		nextPrt: portFloor,
		byIn:    make(map[packet.Endpoint]Binding),
		byOut:   make(map[packet.Endpoint]Binding),
	}, nil
}

// Translate returns (creating if needed) the public endpoint for an inside
// endpoint. It fails when the pool's port space is exhausted.
func (t *Table) Translate(inside packet.Endpoint) (packet.Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.byIn[inside]; ok {
		return b.Outside, nil
	}
	// Scan for a free (addr, port) pair starting at the cursor.
	total := len(t.pool) * (65536 - portFloor)
	for tries := 0; tries < total; tries++ {
		out := packet.Endpoint{Addr: t.pool[t.nextIP], Port: t.nextPrt}
		t.advance()
		if _, used := t.byOut[out]; used {
			continue
		}
		b := Binding{Inside: inside, Outside: out}
		t.byIn[inside] = b
		t.byOut[out] = b
		return out, nil
	}
	return packet.Endpoint{}, fmt.Errorf("nat: public port space exhausted")
}

func (t *Table) advance() {
	if t.nextPrt == 65535 {
		t.nextPrt = portFloor
		t.nextIP = (t.nextIP + 1) % len(t.pool)
		return
	}
	t.nextPrt++
}

// ReverseLookup maps a public endpoint back to the inside endpoint. ok is
// false for unsolicited inbound traffic — which the NAT therefore drops,
// enforcing the "no servers on customer premises" property.
func (t *Table) ReverseLookup(outside packet.Endpoint) (packet.Endpoint, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.byOut[outside]
	return b.Inside, ok
}

// Release drops a binding (connection teardown or idle timeout).
func (t *Table) Release(inside packet.Endpoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.byIn[inside]; ok {
		delete(t.byIn, inside)
		delete(t.byOut, b.Outside)
	}
}

// Len returns the number of active bindings.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byIn)
}
