package nat

import (
	"net/netip"
	"testing"

	"satwatch/internal/packet"
)

func pool() []netip.Addr {
	return []netip.Addr{netip.MustParseAddr("151.5.0.1"), netip.MustParseAddr("151.5.0.2")}
}

func ep(addr string, port uint16) packet.Endpoint {
	return packet.Endpoint{Addr: netip.MustParseAddr(addr), Port: port}
}

func TestValidation(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewTable([]netip.Addr{netip.MustParseAddr("::1")}); err == nil {
		t.Fatal("IPv6 pool accepted")
	}
}

func TestTranslateStable(t *testing.T) {
	tbl, err := NewTable(pool())
	if err != nil {
		t.Fatal(err)
	}
	in := ep("10.1.2.3", 40000)
	out1, err := tbl.Translate(in)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := tbl.Translate(in)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatal("binding not stable")
	}
	if out1.Addr != pool()[0] {
		t.Fatalf("unexpected public address %v", out1.Addr)
	}
}

func TestDistinctInsideGetDistinctOutside(t *testing.T) {
	tbl, _ := NewTable(pool())
	seen := map[packet.Endpoint]bool{}
	for i := 0; i < 1000; i++ {
		out, err := tbl.Translate(ep("10.0.0.1", uint16(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		if seen[out] {
			t.Fatalf("public endpoint %v reused", out)
		}
		seen[out] = true
	}
	if tbl.Len() != 1000 {
		t.Fatalf("Len %d", tbl.Len())
	}
}

func TestReverseLookup(t *testing.T) {
	tbl, _ := NewTable(pool())
	in := ep("10.9.9.9", 555)
	out, _ := tbl.Translate(in)
	back, ok := tbl.ReverseLookup(out)
	if !ok || back != in {
		t.Fatalf("reverse lookup got %v/%v", back, ok)
	}
	// Unsolicited inbound: no binding, must be dropped.
	if _, ok := tbl.ReverseLookup(ep("151.5.0.1", 9999)); ok {
		t.Fatal("unsolicited inbound mapped — customers must not be reachable")
	}
}

func TestRelease(t *testing.T) {
	tbl, _ := NewTable(pool())
	in := ep("10.2.2.2", 777)
	out, _ := tbl.Translate(in)
	tbl.Release(in)
	if _, ok := tbl.ReverseLookup(out); ok {
		t.Fatal("released binding still reverse-maps")
	}
	if tbl.Len() != 0 {
		t.Fatal("Len after release")
	}
	// Releasing twice is a no-op.
	tbl.Release(in)
}

func TestPoolRollsToSecondAddress(t *testing.T) {
	tbl, _ := NewTable(pool())
	// Exhaust the first address's ports (64512 of them) cheaply: we just
	// check the cursor advances across addresses by taking many bindings.
	var lastAddr netip.Addr
	for i := 0; i < 65000; i++ {
		out, err := tbl.Translate(ep("10.3.0.1", uint16(i%65000)))
		if err != nil {
			t.Fatal(err)
		}
		_ = out
		lastAddr = out.Addr
		if lastAddr == pool()[1] {
			return // rolled over as expected
		}
	}
	t.Fatal("never advanced to the second pool address")
}
