// Package dnssim models the DNS ecosystem the probe observes (§6.3-§6.4):
// which resolver each customer uses (most use open resolvers, not the
// operator's), how long resolutions take as seen from the ground station,
// and — crucially — which CDN server a resolution returns, including the
// geolocation-confusion pathology: open resolvers see African customers'
// queries arrive from Italy (or answer from their own homeland view), so
// GeoDNS services hand back servers far from the gateway.
package dnssim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"net/netip"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/dist"
	"satwatch/internal/geo"
	"satwatch/internal/obs"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mQueries = obs.NewCounter("dnssim_queries_total",
		"Resolutions sampled through the resolver model.", "")
	mCacheMisses = obs.NewCounter("dnssim_cache_misses_total",
		"Resolutions where the resolver missed its cache and recursed to authoritatives.", "")
	mOutageQueries = obs.NewCounter("dnssim_outage_queries_total",
		"DNS queries sent into a resolver outage window (initial tries and retries).", "")
)

// ResolverID names one of the tracked resolvers (the Figure 10 rows).
type ResolverID string

// The Figure 10 resolver population.
const (
	ResolverOperator ResolverID = "Operator-EU"
	ResolverGoogle   ResolverID = "Google"
	ResolverCloudFl  ResolverID = "CloudFlare"
	ResolverNigerian ResolverID = "Nigerian"
	ResolverOpenDNS  ResolverID = "Open DNS"
	ResolverLevel3   ResolverID = "Level3"
	ResolverBaidu    ResolverID = "Baidu"
	Resolver114DNS   ResolverID = "114DNS"
	ResolverOther    ResolverID = "Other"
)

// GeoView is how a resolver localizes the client when answering GeoDNS
// queries (§6.4).
type GeoView uint8

const (
	// ViewGateway resolvers see the query source as the gateway in Italy
	// and return Europe-optimal answers — accidentally ideal here.
	ViewGateway GeoView = iota
	// ViewMixed resolvers (large anycast opens) sometimes localize to the
	// client's true country, sometimes to Italy, sometimes miss entirely.
	ViewMixed
	// ViewHomeland resolvers answer from their own home region's
	// perspective (Chinese resolvers return Asian CDN nodes).
	ViewHomeland
)

// Resolver is one tracked resolver.
type Resolver struct {
	ID   ResolverID
	Addr netip.Addr
	// MedianResponse is the median resolution time observed at the ground
	// station, calibrated to Figure 10's rightmost column.
	MedianResponse time.Duration
	Sigma          float64
	View           GeoView
	// HomeRegion is the region a ViewHomeland resolver answers from.
	HomeRegion cdn.Region
}

var resolvers = []Resolver{
	{ID: ResolverOperator, Addr: netip.MustParseAddr("185.12.64.53"), MedianResponse: 3980 * time.Microsecond, Sigma: 0.45, View: ViewGateway},
	{ID: ResolverGoogle, Addr: netip.MustParseAddr("8.8.8.8"), MedianResponse: 21980 * time.Microsecond, Sigma: 0.40, View: ViewMixed},
	{ID: ResolverCloudFl, Addr: netip.MustParseAddr("1.1.1.1"), MedianResponse: 19970 * time.Microsecond, Sigma: 0.40, View: ViewMixed},
	{ID: ResolverNigerian, Addr: netip.MustParseAddr("197.210.52.53"), MedianResponse: 119980 * time.Microsecond, Sigma: 0.25, View: ViewHomeland, HomeRegion: cdn.RegionAfrica},
	{ID: ResolverOpenDNS, Addr: netip.MustParseAddr("208.67.222.222"), MedianResponse: 17990 * time.Microsecond, Sigma: 0.40, View: ViewMixed},
	{ID: ResolverLevel3, Addr: netip.MustParseAddr("4.2.2.2"), MedianResponse: 23990 * time.Microsecond, Sigma: 0.40, View: ViewGateway},
	{ID: ResolverBaidu, Addr: netip.MustParseAddr("180.76.76.76"), MedianResponse: 355970 * time.Microsecond, Sigma: 0.20, View: ViewHomeland, HomeRegion: cdn.RegionChina},
	{ID: Resolver114DNS, Addr: netip.MustParseAddr("114.114.114.114"), MedianResponse: 109980 * time.Microsecond, Sigma: 0.22, View: ViewHomeland, HomeRegion: cdn.RegionAsia},
	{ID: ResolverOther, Addr: netip.MustParseAddr("192.0.2.53"), MedianResponse: 29970 * time.Microsecond, Sigma: 0.60, View: ViewMixed},
}

var resolverByID = func() map[ResolverID]Resolver {
	m := make(map[ResolverID]Resolver, len(resolvers))
	for _, r := range resolvers {
		m[r.ID] = r
	}
	return m
}()

// Resolvers returns the tracked resolvers in the Figure 10 row order.
func Resolvers() []Resolver {
	out := make([]Resolver, len(resolvers))
	copy(out, resolvers)
	return out
}

// ByID looks a resolver up.
func ByID(id ResolverID) (Resolver, bool) {
	r, ok := resolverByID[id]
	return r, ok
}

// ByAddr recovers the tracked resolver from its address. "Other" resolvers
// use many addresses; OtherAddr generates them and ByAddr maps any
// untracked address back to ResolverOther.
func ByAddr(addr netip.Addr) Resolver {
	for _, r := range resolvers {
		if r.Addr == addr {
			return r
		}
	}
	other := resolverByID[ResolverOther]
	other.Addr = addr
	return other
}

// OtherAddr returns the i-th long-tail resolver address (the paper observes
// 4195 distinct resolvers, most sporadic).
func OtherAddr(i int) netip.Addr {
	h := fnv.New32a()
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(i))
	h.Write(b[:])
	v := h.Sum32()
	return netip.AddrFrom4([4]byte{193, byte(8 + v%32), byte(v >> 8), 1 + byte(v>>16)%250})
}

// adoption is Figure 10's adoption matrix: percentage of DNS traffic per
// resolver, per country (columns Congo, Nigeria, South Africa, Ireland,
// Spain, U.K.).
var adoption = map[geo.CountryCode]map[ResolverID]float64{
	"CD": {ResolverOperator: 0.87, ResolverGoogle: 85.68, ResolverCloudFl: 3.02, ResolverNigerian: 0.00, ResolverOpenDNS: 1.22, ResolverLevel3: 0.45, ResolverBaidu: 0.68, Resolver114DNS: 2.97, ResolverOther: 5.11},
	"NG": {ResolverOperator: 9.10, ResolverGoogle: 50.69, ResolverCloudFl: 2.54, ResolverNigerian: 11.84, ResolverOpenDNS: 4.00, ResolverLevel3: 7.63, ResolverBaidu: 0.32, Resolver114DNS: 3.43, ResolverOther: 10.46},
	"ZA": {ResolverOperator: 1.87, ResolverGoogle: 63.47, ResolverCloudFl: 10.36, ResolverNigerian: 6.32, ResolverOpenDNS: 0.65, ResolverLevel3: 0.09, ResolverBaidu: 0.22, Resolver114DNS: 1.64, ResolverOther: 15.38},
	"IE": {ResolverOperator: 43.75, ResolverGoogle: 38.49, ResolverCloudFl: 2.03, ResolverNigerian: 0.00, ResolverOpenDNS: 0.49, ResolverLevel3: 0.00, ResolverBaidu: 0.12, Resolver114DNS: 0.05, ResolverOther: 15.07},
	"ES": {ResolverOperator: 28.95, ResolverGoogle: 61.27, ResolverCloudFl: 2.05, ResolverNigerian: 0.00, ResolverOpenDNS: 0.72, ResolverLevel3: 0.00, ResolverBaidu: 0.11, Resolver114DNS: 0.03, ResolverOther: 6.87},
	"GB": {ResolverOperator: 38.10, ResolverGoogle: 34.67, ResolverCloudFl: 6.04, ResolverNigerian: 0.00, ResolverOpenDNS: 6.97, ResolverLevel3: 0.49, ResolverBaidu: 0.05, Resolver114DNS: 0.01, ResolverOther: 13.67},
}

// defaults for countries outside the Figure 10 columns.
var adoptionDefaultEU = map[ResolverID]float64{
	ResolverOperator: 33, ResolverGoogle: 45, ResolverCloudFl: 4,
	ResolverOpenDNS: 2, ResolverLevel3: 0.5, ResolverBaidu: 0.1, Resolver114DNS: 0.05, ResolverOther: 15,
}
var adoptionDefaultAF = map[ResolverID]float64{
	ResolverOperator: 4, ResolverGoogle: 65, ResolverCloudFl: 5,
	ResolverOpenDNS: 2, ResolverLevel3: 1, ResolverBaidu: 0.5, Resolver114DNS: 2.5, ResolverOther: 20,
}

// AdoptionFor returns a weighted chooser over resolvers for a country.
func AdoptionFor(country geo.Country) (*dist.Weighted[ResolverID], error) {
	m, ok := adoption[country.Code]
	if !ok {
		if country.Continent == geo.Africa {
			m = adoptionDefaultAF
		} else {
			m = adoptionDefaultEU
		}
	}
	ids := make([]ResolverID, 0, len(resolvers))
	weights := make([]float64, 0, len(resolvers))
	for _, r := range resolvers {
		ids = append(ids, r.ID)
		weights = append(weights, m[r.ID])
	}
	w, err := dist.NewWeighted(ids, weights)
	if err != nil {
		return nil, fmt.Errorf("dnssim: adoption for %s: %w", country.Code, err)
	}
	return w, nil
}

// AdoptionShare returns the percentage of a country's DNS traffic using a
// resolver, per the Figure 10 calibration.
func AdoptionShare(country geo.CountryCode, id ResolverID) float64 {
	if m, ok := adoption[country]; ok {
		return m[id]
	}
	return 0
}

// RetryBackoff is the stub-resolver retry schedule the simulator uses
// when a resolver outage (internal/faults) swallows a query: retry
// after 1 s, again 3 s later, then give up — a compressed version of
// the common client timeout ladder.
var RetryBackoff = []time.Duration{time.Second, 3 * time.Second}

// CountOutageQueries feeds dnssim_outage_queries_total from the
// simulator's fault path: n queries (initial tries plus retries) were
// sent into a resolver outage window.
func CountOutageQueries(n int) {
	if n > 0 {
		mOutageQueries.Add(int64(n))
	}
}

// SampleResponseTime draws the resolution time observed at the ground
// station: the round trip to the resolver plus an occasional recursion
// penalty when the resolver misses its cache.
func (res Resolver) SampleResponseTime(r *dist.Rand) time.Duration {
	mQueries.Inc()
	base := dist.LogNormalFromMedian(float64(res.MedianResponse), res.Sigma).Sample(r)
	if r.Bool(0.12) {
		// Cache miss: the resolver recurses to authoritatives.
		mCacheMisses.Inc()
		base += r.Exponential(float64(80 * time.Millisecond))
	}
	return time.Duration(base)
}

// SelectRegion decides which hosting region serves a flow, given the
// catalog entry, the resolver used, and the client's country. This is the
// §6.4 server-selection policy with its pathologies.
func SelectRegion(e cdn.Entry, res Resolver, client geo.Country, r *dist.Rand) cdn.Region {
	switch e.Kind {
	case cdn.HostAnycast, cdn.HostSingle:
		// Anycast ignores DNS; single origins have nowhere else to go.
		return e.Home
	}
	// GeoDNS: the resolver's client-location guess picks the node.
	switch res.View {
	case ViewGateway:
		// Sees Italy → returns the Europe-optimal node.
		return e.Home
	case ViewHomeland:
		// Answers anchored to the resolver's homeland CDN footprint.
		if r.Bool(0.85) {
			return res.HomeRegion
		}
		return e.Home
	default: // ViewMixed
		if client.Continent == geo.Africa {
			// ECS sometimes reveals the true (African) client network,
			// sometimes the query exits near Italy; the result is a mix
			// of farther European nodes, the optimal node, and
			// occasionally a node back in Africa (Table 2's inflated
			// Google-DNS answers for Nigeria).
			switch {
			case r.Bool(0.15):
				return cdn.RegionAfrica
			case r.Bool(0.55):
				return cdn.RegionEurope
			default:
				return e.Home
			}
		}
		// European clients: mostly optimal, occasionally a farther
		// European node.
		if r.Bool(0.2) {
			return cdn.RegionEurope
		}
		return e.Home
	}
}
