package dnssim

import (
	"testing"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/dist"
	"satwatch/internal/geo"
)

func mustCountry(t *testing.T, code geo.CountryCode) geo.Country {
	t.Helper()
	c, ok := geo.ByCode(code)
	if !ok {
		t.Fatalf("country %s missing", code)
	}
	return c
}

func TestResolverRegistry(t *testing.T) {
	all := Resolvers()
	if len(all) != 9 {
		t.Fatalf("%d resolvers, want the 9 Figure 10 rows", len(all))
	}
	seen := map[ResolverID]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Fatalf("duplicate resolver %s", r.ID)
		}
		seen[r.ID] = true
		if !r.Addr.IsValid() {
			t.Fatalf("%s has no address", r.ID)
		}
		if r.MedianResponse <= 0 {
			t.Fatalf("%s has no median response", r.ID)
		}
	}
	if _, ok := ByID(ResolverGoogle); !ok {
		t.Fatal("ByID broken")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown resolver resolved")
	}
}

func TestFigure10Medians(t *testing.T) {
	want := map[ResolverID]time.Duration{
		ResolverOperator: 3980 * time.Microsecond,
		ResolverGoogle:   21980 * time.Microsecond,
		ResolverBaidu:    355970 * time.Microsecond,
		Resolver114DNS:   109980 * time.Microsecond,
		ResolverNigerian: 119980 * time.Microsecond,
	}
	for id, med := range want {
		r, _ := ByID(id)
		if r.MedianResponse != med {
			t.Errorf("%s median %v, want %v", id, r.MedianResponse, med)
		}
	}
}

func TestOperatorFastestResolver(t *testing.T) {
	op, _ := ByID(ResolverOperator)
	for _, r := range Resolvers() {
		if r.ID != ResolverOperator && r.MedianResponse <= op.MedianResponse {
			t.Fatalf("%s median %v not above operator's %v", r.ID, r.MedianResponse, op.MedianResponse)
		}
	}
}

func TestSampleResponseTimeMedian(t *testing.T) {
	res, _ := ByID(ResolverGoogle)
	r := dist.NewRand(1)
	const n = 40001
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = res.SampleResponseTime(r)
		if samples[i] <= 0 {
			t.Fatal("non-positive response time")
		}
	}
	// Median of samples should land near the calibrated median.
	below := 0
	for _, s := range samples {
		if s < res.MedianResponse {
			below++
		}
	}
	frac := float64(below) / n
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("%.3f of samples below the calibrated median", frac)
	}
}

func TestAdoptionMatchesFigure10(t *testing.T) {
	if got := AdoptionShare("CD", ResolverGoogle); got != 85.68 {
		t.Fatalf("Congo Google share %v, want 85.68", got)
	}
	if got := AdoptionShare("NG", ResolverNigerian); got != 11.84 {
		t.Fatalf("Nigeria local-resolver share %v, want 11.84", got)
	}
	if got := AdoptionShare("IE", ResolverOperator); got != 43.75 {
		t.Fatalf("Ireland operator share %v, want 43.75", got)
	}
	// The Nigerian resolver is unused outside Africa.
	if AdoptionShare("GB", ResolverNigerian) != 0 {
		t.Fatal("Nigerian resolver used in the U.K.")
	}
}

func TestAdoptionSampling(t *testing.T) {
	w, err := AdoptionFor(mustCountry(t, "CD"))
	if err != nil {
		t.Fatal(err)
	}
	r := dist.NewRand(2)
	counts := map[ResolverID]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	googleFrac := float64(counts[ResolverGoogle]) / n
	if googleFrac < 0.82 || googleFrac > 0.89 {
		t.Fatalf("Congo Google adoption sampled at %.3f, want ≈0.857", googleFrac)
	}
	if counts[ResolverNigerian] != 0 {
		t.Fatal("zero-share resolver sampled")
	}
}

func TestAdoptionDefaults(t *testing.T) {
	// Countries outside the Figure 10 columns fall back by continent.
	if _, err := AdoptionFor(mustCountry(t, "DE")); err != nil {
		t.Fatal(err)
	}
	if _, err := AdoptionFor(mustCountry(t, "SN")); err != nil {
		t.Fatal(err)
	}
}

func TestOtherAddrStable(t *testing.T) {
	if OtherAddr(5) != OtherAddr(5) {
		t.Fatal("OtherAddr not deterministic")
	}
	if OtherAddr(5) == OtherAddr(6) {
		t.Fatal("adjacent indices collide")
	}
	if ByAddr(OtherAddr(7)).ID != ResolverOther {
		t.Fatal("long-tail address not mapped to Other")
	}
	g, _ := ByID(ResolverGoogle)
	if ByAddr(g.Addr).ID != ResolverGoogle {
		t.Fatal("tracked address not recovered")
	}
}

func selectMany(t *testing.T, e cdn.Entry, res Resolver, c geo.Country, n int) map[cdn.Region]int {
	t.Helper()
	r := dist.NewRand(uint64(len(e.Domain)) + 99)
	out := map[cdn.Region]int{}
	for i := 0; i < n; i++ {
		out[SelectRegion(e, res, c, r)]++
	}
	return out
}

func TestAnycastIgnoresResolver(t *testing.T) {
	e, _ := cdn.Lookup("nflxvideo.net")
	baidu, _ := ByID(ResolverBaidu)
	got := selectMany(t, e, baidu, mustCountry(t, "NG"), 1000)
	if got[cdn.RegionPeered] != 1000 {
		t.Fatalf("anycast selection drifted: %v", got)
	}
}

func TestGeoDNSGatewayViewOptimal(t *testing.T) {
	e, _ := cdn.Lookup("captive.apple.com")
	op, _ := ByID(ResolverOperator)
	got := selectMany(t, e, op, mustCountry(t, "NG"), 1000)
	if got[e.Home] != 1000 {
		t.Fatalf("operator view should be optimal: %v", got)
	}
}

func TestGeoDNSHomelandView(t *testing.T) {
	e, _ := cdn.Lookup("captive.apple.com")
	dns114, _ := ByID(Resolver114DNS)
	got := selectMany(t, e, dns114, mustCountry(t, "NG"), 2000)
	if got[cdn.RegionAsia] < 1500 {
		t.Fatalf("114DNS should mostly return Asian nodes: %v", got)
	}
}

func TestGeoDNSMixedViewAfricanInflation(t *testing.T) {
	e, _ := cdn.Lookup("captive.apple.com")
	google, _ := ByID(ResolverGoogle)
	ng := selectMany(t, e, google, mustCountry(t, "NG"), 4000)
	gb := selectMany(t, e, google, mustCountry(t, "GB"), 4000)
	// African clients via mixed-view resolvers see farther nodes more
	// often than European clients (Table 2: 38.4 ms vs 26.0 ms).
	ngFar := ng[cdn.RegionEurope] + ng[cdn.RegionAfrica]
	gbFar := gb[cdn.RegionEurope] + gb[cdn.RegionAfrica]
	if ngFar <= gbFar {
		t.Fatalf("no African inflation: NG far=%d, GB far=%d", ngFar, gbFar)
	}
	if ng[cdn.RegionAfrica] == 0 {
		t.Fatal("mixed view never returned an African node for an African client")
	}
}

func TestSingleOriginFixed(t *testing.T) {
	e, _ := cdn.Lookup("news.netease.com")
	for _, id := range []ResolverID{ResolverOperator, ResolverGoogle, ResolverBaidu} {
		res, _ := ByID(id)
		got := selectMany(t, e, res, mustCountry(t, "CD"), 500)
		if got[cdn.RegionChina] != 500 {
			t.Fatalf("single-origin drifted via %s: %v", id, got)
		}
	}
}
