package pepmodel

import (
	"io"
	"satwatch/internal/trace"
	"testing"
	"time"

	"satwatch/internal/dist"
)

func TestMeanSetupDelayGrowsWithRho(t *testing.T) {
	m := Default()
	prev := time.Duration(0)
	for _, rho := range []float64{0, 0.5, 0.9, 0.98} {
		d := m.MeanSetupDelay(rho)
		if d <= prev {
			t.Fatalf("mean setup delay %v at rho=%.2f not above %v", d, rho, prev)
		}
		prev = d
	}
}

func TestSaturationReachesSeconds(t *testing.T) {
	// §6.1: PEP saturation adds seconds to connection setup.
	m := Default()
	if d := m.MeanSetupDelay(1.5); d < time.Second {
		t.Fatalf("saturated mean setup %v, want ≥ 1s", d)
	}
}

func TestRhoClamping(t *testing.T) {
	m := Default()
	if m.MeanSetupDelay(-1) != m.MeanSetupDelay(0) {
		t.Fatal("negative rho not clamped to 0")
	}
	if m.MeanSetupDelay(5) != m.MeanSetupDelay(m.MaxRho) {
		t.Fatal("rho above MaxRho not clamped")
	}
}

func TestSetupDelaySampleMean(t *testing.T) {
	m := Default()
	r := dist.NewRand(1)
	const rho = 0.8
	var sum time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		sum += m.SetupDelay(rho, r)
	}
	got := float64(sum) / n
	want := float64(m.MeanSetupDelay(rho))
	if got < want*0.95 || got > want*1.05 {
		t.Fatalf("sample mean %v, want ≈%v", time.Duration(got), time.Duration(want))
	}
}

func TestForwardDelaySmallerThanSetup(t *testing.T) {
	m := Default()
	r1, r2 := dist.NewRand(2), dist.NewRand(2)
	var fwd, setup time.Duration
	for i := 0; i < 10000; i++ {
		fwd += m.ForwardDelay(0.9, r1)
		setup += m.SetupDelay(0.9, r2)
	}
	if fwd >= setup {
		t.Fatal("forwarding delay not smaller than setup delay at equal rho")
	}
}

func TestRho(t *testing.T) {
	// Capacity = peak rate × factor; rho is offered/capacity.
	if got := Rho(50, 100, 1.0); got != 0.5 {
		t.Fatalf("Rho(50,100,1)=%v, want 0.5", got)
	}
	if got := Rho(100, 100, 0.75); got < 1.33 || got > 1.34 {
		t.Fatalf("Rho(100,100,0.75)=%v, want ≈1.333", got)
	}
	if Rho(10, 0, 1) != 0 || Rho(10, 100, 0) != 0 {
		t.Fatal("degenerate capacities should give rho 0")
	}
}

func TestSetupDelayTracedRecordsSpan(t *testing.T) {
	m := Default()
	fl := trace.New(io.Discard, 1).Start(3, 0, 1)
	d := m.SetupDelayTraced(0.9, dist.NewRand(4), fl)
	want := m.SetupDelay(0.9, dist.NewRand(4))
	if d != want {
		t.Fatalf("traced delay %v differs from untraced %v", d, want)
	}
	if len(fl.Spans) != 1 || fl.Spans[0].Name != trace.SpanPEPSetup {
		t.Fatalf("expected one %s span, got %+v", trace.SpanPEPSetup, fl.Spans)
	}
	s := fl.Spans[0]
	if s.Seg != trace.SegSatellite || s.Attrs["rho"] != 0.9 {
		t.Fatalf("span wrong: %+v", s)
	}
}
