// Package pepmodel models the resource limits of the operator's Performance
// Enhancing Proxy. The paper's key finding on congestion (§6.1) is that the
// multi-second satellite RTTs in Congo are caused not by beam capacity but
// by "the saturation of the PEP processing ability", which "slows down the
// forwarding of packets, especially during the initial phase of the
// connection setup"; the PEP resources assigned to each beam depend on the
// SLA. This package turns that observation into an explicit queueing model.
package pepmodel

import (
	"time"

	"satwatch/internal/dist"
	"satwatch/internal/obs"
	"satwatch/internal/trace"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mSetups = obs.NewCounter("pep_setups_total",
		"Connection setups processed by the PEP model.", "")
	mSetupSojourn = obs.NewHistogram("pep_setup_sojourn_seconds",
		"Sampled PEP connection-setup sojourn times (M/M/1).", "seconds", obs.LatencyBuckets())
	mPeakRho = obs.NewGauge("pep_peak_rho",
		"Highest PEP utilization (rho) seen by any setup so far.", "ratio")
	mSaturatedSetups = obs.NewCounter("pep_saturated_setups_total",
		"Setups served at rho > 0.9, where sojourns reach the multi-second regime.", "")
	mBypassed = obs.NewCounter("pep_bypassed_flows_total",
		"Flows pushed past split-TCP: by a PEP overload window, or by the adaptive LEO policy when the split no longer pays for its setup.", "")
)

// CountBypass records one flow that fell off split-TCP; its handshake
// and slow start cross the satellite end to end instead of terminating
// at the CPE. Two paths lead here: a PEP overload window
// (internal/faults), and — on non-static constellations — the adaptive
// policy that skips the split whenever Benefit is non-positive.
func CountBypass() { mBypassed.Inc() }

// Model describes the PEP processing resources of one beam.
type Model struct {
	// SetupTime is the unloaded service time of one connection setup
	// (tunnel Connect handling, proxy state allocation).
	SetupTime time.Duration
	// ForwardTime is the unloaded per-burst forwarding service time.
	ForwardTime time.Duration
	// MaxRho caps the effective utilization; beyond it the M/M/1 sojourn
	// would diverge while a real box sheds load instead.
	MaxRho float64
	// PerUserBuffer is the PEP buffer available to a single subscriber.
	// It back-pressures the ground-station-side download (§2.1, §6.5).
	PerUserBuffer int64
}

// Default returns the PEP dimensioning used by the simulator.
func Default() Model {
	return Model{
		SetupTime:     30 * time.Millisecond,
		ForwardTime:   2 * time.Millisecond,
		MaxRho:        0.985,
		PerUserBuffer: 3 << 20, // 3 MiB per user
	}
}

func (m Model) clampRho(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho > m.MaxRho {
		return m.MaxRho
	}
	return rho
}

// SetupDelay samples the sojourn time of a connection setup through the
// PEP at utilization rho, as an M/M/1 queue: exponential with mean
// SetupTime/(1-rho). At rho near MaxRho this reaches multiple seconds —
// the congested-beam behaviour of Figure 8.
func (m Model) SetupDelay(rho float64, r *dist.Rand) time.Duration {
	return m.SetupDelayTraced(rho, r, nil)
}

// SetupDelayTraced is SetupDelay recording a pep.setup span with the
// sampled utilization on fl (nil fl records nothing).
func (m Model) SetupDelayTraced(rho float64, r *dist.Rand, fl *trace.Flow) time.Duration {
	rho = m.clampRho(rho)
	mean := float64(m.SetupTime) / (1 - rho)
	d := time.Duration(r.Exponential(mean))
	mSetups.Inc()
	mSetupSojourn.ObserveDuration(d)
	mPeakRho.SetMax(rho)
	if rho > 0.9 {
		mSaturatedSetups.Inc()
	}
	if fl != nil {
		fl.Span(trace.SpanPEPSetup, trace.SegSatellite, d, trace.Attrs{
			"rho": rho, "setup_time_ms": float64(m.SetupTime) / float64(time.Millisecond),
		})
	}
	return d
}

// MeanSetupDelay returns the expected setup sojourn at utilization rho.
func (m Model) MeanSetupDelay(rho float64) time.Duration {
	rho = m.clampRho(rho)
	return time.Duration(float64(m.SetupTime) / (1 - rho))
}

// Benefit returns the expected handshake time split-TCP saves for a flow
// whose propagation RTT is propRTT, net of the setup sojourn the PEP
// charges at utilization rho: the proxy spoofs roughly two round trips of
// TCP/TLS handshake across the satellite, so the benefit is ~2×propRTT
// minus MeanSetupDelay(rho). At GEO propagation RTTs (~500 ms) the
// benefit is large except deep into saturation; at LEO RTTs (15–60 ms)
// it crosses zero at moderate load — the basis for the adaptive split
// policy the simulator applies under the LEO constellation, and the
// quantitative sense in which "PEP benefit shrinks at LEO RTTs".
func (m Model) Benefit(propRTT time.Duration, rho float64) time.Duration {
	return 2*propRTT - m.MeanSetupDelay(rho)
}

// ForwardDelay samples the per-burst forwarding sojourn at utilization rho.
// It uses the same M/M/1 shape with the (much smaller) forwarding service
// time, so saturated PEPs also slow mid-connection traffic, just less.
func (m Model) ForwardDelay(rho float64, r *dist.Rand) time.Duration {
	rho = m.clampRho(rho)
	mean := float64(m.ForwardTime) / (1 - rho)
	return time.Duration(r.Exponential(mean))
}

// Rho computes the PEP utilization of a beam given the current connection
// setup rate and the capacity the operator assigned: pepFactor times the
// dimensioning rate (the setup rate expected at the beam's busiest hour).
// pepFactor at or below 1 means the box saturates exactly at peak — the
// low-SLA beams of §6.1.
func Rho(setupRate, peakSetupRate, pepFactor float64) float64 {
	if peakSetupRate <= 0 || pepFactor <= 0 {
		return 0
	}
	capacity := peakSetupRate * pepFactor
	return setupRate / capacity
}
