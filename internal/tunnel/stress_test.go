package tunnel

// Stress suite: stream-lifecycle churn under loss and reordering, run
// with -race in CI. The 1k-flow drain test is the leak detector the
// ISSUE calls for: after every flow completes, both stream tables must
// be empty.

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// TestStressLifecycleUnderLossAndReorder churns concurrent
// open/write/close/reset through a lossy, reordering link while the
// race detector watches the locking.
func TestStressLifecycleUnderLossAndReorder(t *testing.T) {
	at, bt := newChanPair(0.03, 0.03, 31)
	cfg := testConfig()
	cfg.AcceptBacklog = 64
	client := New(at, cfg, true)
	server := New(bt, cfg, false)
	defer client.Close()
	defer server.Close()

	go func() {
		for {
			s, _, err := server.Accept()
			if err != nil {
				return
			}
			go func(s *Stream) {
				io.Copy(s, s)
				s.Close()
			}(s)
		}
	}()

	const (
		workers        = 8
		flowsPerWorker = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*flowsPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < flowsPerWorker; i++ {
				s, err := client.OpenStream("stress")
				if err != nil {
					errCh <- err
					return
				}
				msg := bytes.Repeat([]byte{byte(w*31 + i + 1)}, 700+i*13)
				// Two concurrent writers per stream plus a racing close
				// exercise the window/FIN atomicity.
				var sw sync.WaitGroup
				half := len(msg) / 2
				sw.Add(2)
				go func() { defer sw.Done(); s.Write(msg[:half]) }()
				go func() { defer sw.Done(); s.Write(msg[half:]) }()
				sw.Wait()
				s.Close()
				got, err := io.ReadAll(s)
				if err != nil {
					errCh <- err
					continue
				}
				if len(got) != len(msg) {
					// Interleaving of the two writers is arbitrary, but the
					// byte count must survive.
					errCh <- io.ErrShortWrite
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitDrained(t, "client", client, 10*time.Second)
	waitDrained(t, "server", server, 10*time.Second)
}

// TestDrain1kFlowsLeavesEmptyStreamTables is the leak-detection test:
// 1000 request/response flows, then both stream tables must drain to
// exactly zero.
func TestDrain1kFlowsLeavesEmptyStreamTables(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-flow drain test skipped in -short mode")
	}
	at, bt := newChanPair(0.01, 0.01, 32)
	cfg := testConfig()
	cfg.AcceptBacklog = 256
	client := New(at, cfg, true)
	server := New(bt, cfg, false)
	defer client.Close()
	defer server.Close()

	go func() {
		for {
			s, _, err := server.Accept()
			if err != nil {
				return
			}
			go func(s *Stream) {
				io.Copy(io.Discard, s)
				s.Write([]byte("done"))
				s.Close()
			}(s)
		}
	}()

	const flows = 1000
	sem := make(chan struct{}, 64)
	var wg sync.WaitGroup
	errCh := make(chan error, flows)
	for i := 0; i < flows; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			s, err := client.OpenStream("drain")
			if err != nil {
				errCh <- err
				return
			}
			s.Write(bytes.Repeat([]byte{byte(i)}, 200))
			s.Close()
			if _, err := io.ReadAll(s); err != nil {
				errCh <- err
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitDrained(t, "client", client, 15*time.Second)
	waitDrained(t, "server", server, 15*time.Second)
}

// TestStressResetStorm tears streams down mid-flight from both ends and
// checks the tables still drain (resets must not leave ACKing tombstones
// or leaked entries). The link is clean: a RESET is sent once, so this
// test pins down abort propagation, while the lossy-link tests above
// cover the ARQ (a lost RESET is repaired by the reset tombstone only
// when the peer retransmits into it).
func TestStressResetStorm(t *testing.T) {
	at, bt := newChanPair(0, 0, 33)
	cfg := testConfig()
	cfg.MaxRetransmits = 5
	client := New(at, cfg, true)
	server := New(bt, cfg, false)
	defer client.Close()
	defer server.Close()

	go func() {
		for {
			s, _, err := server.Accept()
			if err != nil {
				return
			}
			go func(s *Stream) {
				// Read a little, then abandon abruptly half the time.
				buf := make([]byte, 256)
				s.Read(buf)
				if s.ID()%4 == 0 {
					s.Reset()
					return
				}
				io.Copy(io.Discard, s)
				s.Close()
			}(s)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := client.OpenStream("storm")
			if err != nil {
				return
			}
			s.Write(bytes.Repeat([]byte{1}, 2000))
			if i%3 == 0 {
				s.Reset() // local abort must notify the peer
				return
			}
			s.Close()
			io.ReadAll(s)
		}(i)
	}
	wg.Wait()
	waitDrained(t, "client", client, 10*time.Second)
	waitDrained(t, "server", server, 10*time.Second)
}
