package tunnel

import "satwatch/internal/obs"

// Exported metrics (see OBSERVABILITY.md). They aggregate over every
// tunnel endpoint in the process: the load harness and the satpep CLI
// run a CPE-side and a gateway-side tunnel side by side, and both count
// here.
var (
	mStreamsOpened = obs.NewCounter("tunnel_streams_opened_total",
		"Streams entered into a tunnel stream table (locally opened plus accepted).", "")
	mStreamsClosed = obs.NewCounter("tunnel_streams_closed_total",
		"Streams removed from a tunnel stream table (graceful close, reset, or teardown).", "")
	mStreamsActive = obs.NewGauge("tunnel_streams_active",
		"Streams currently in a stream table (opened minus removed); nonzero after full drain = leak.", "")
	mStreamsReset = obs.NewCounter("tunnel_streams_reset_total",
		"Streams aborted by a RESET (sent or received).", "")
	mStreamsTimedOut = obs.NewCounter("tunnel_streams_timedout_total",
		"Streams torn down by the max-retransmit policy (dead peer).", "")
	mRetransmits = obs.NewCounter("tunnel_retransmits_total",
		"Frames retransmitted after an RTO expiry.", "")
	mRTO = obs.NewGauge("tunnel_rto_seconds",
		"Adaptive retransmission timeout after the most recent RTT sample (any tunnel).", "seconds")
	mRawDrops = obs.NewCounter("tunnel_raw_dropped_total",
		"Raw datagrams dropped because no RecvRaw reader was draining.", "")
	mWindowStalls = obs.NewCounter("tunnel_window_stalls_total",
		"Write calls that blocked at least once on a full send window.", "")
	mFramesSent = obs.NewCounter("tunnel_frames_sent_total",
		"Frames handed to the transport (first transmissions, retransmissions, ACKs, raw).", "")
	mFramesReceived = obs.NewCounter("tunnel_frames_received_total",
		"Well-formed frames received from the transport.", "")
)
