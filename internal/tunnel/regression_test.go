package tunnel

// Regression tests for the lifecycle bugs found in the AUDIT.md sweep.
// Each test fails on the pre-fix code.

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// recordingTransport wraps a Transport and keeps a copy of every frame
// written through it, so tests can assert on the wire conversation.
type recordingTransport struct {
	Transport
	mu     sync.Mutex
	frames [][]byte
}

func (r *recordingTransport) WriteDatagram(b []byte) error {
	cp := make([]byte, len(b))
	copy(cp, b)
	r.mu.Lock()
	r.frames = append(r.frames, cp)
	r.mu.Unlock()
	return r.Transport.WriteDatagram(b)
}

func (r *recordingTransport) snapshot() [][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]byte, len(r.frames))
	copy(out, r.frames)
	return out
}

func mkFrame(typ uint8, id, seq uint32, payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], id)
	binary.BigEndian.PutUint32(buf[5:9], seq)
	binary.BigEndian.PutUint16(buf[9:11], uint16(len(payload)))
	copy(buf[headerLen:], payload)
	return buf
}

func waitDrained(t *testing.T, label string, tn *Tunnel, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if tn.NumStreams() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s leaked %d streams (stream table not empty after drain)", label, tn.NumStreams())
}

// TestPeerFinLastDoesNotLeakStream reproduces the stream leak: when the
// peer's FIN is the last frame to arrive (our own FIN already ACKed),
// the fully-closed condition used to be checked only in the ACK branch
// of handleFrame, so the stream stayed in Tunnel.streams forever.
func TestPeerFinLastDoesNotLeakStream(t *testing.T) {
	at, bt := newChanPair(0, 0, 21)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	s, err := client.OpenStream("leakcheck")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Write([]byte("request"))
		s.Close() // client FIN goes out first and is ACKed first
	}()

	srv, _, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(srv); err != nil {
		t.Fatal(err)
	}
	srv.Write([]byte("response"))
	srv.Close() // server FIN is the last frame the client sees
	if _, err := io.ReadAll(s); err != nil {
		t.Fatal(err)
	}

	waitDrained(t, "client", client, 2*time.Second)
	waitDrained(t, "server", server, 2*time.Second)
}

// TestBacklogFullResetTombstoneAnswersReset reproduces the backlog-full
// reset bug: dispatch used to send frameReset and then install a normal
// TIME_WAIT tombstone, which re-ACKed the peer's retransmitted OPEN —
// convincing the peer the stream was established while our side had
// discarded it. The tombstone of a reset stream must answer with a
// reset.
func TestBacklogFullResetTombstoneAnswersReset(t *testing.T) {
	at, bt := newChanPair(0, 0, 22)
	cfg := testConfig()
	cfg.AcceptBacklog = 1
	server := New(bt, cfg, false)
	defer server.Close()
	defer at.Close()

	// Nobody calls Accept: stream 1 fills the backlog, stream 3 overflows
	// it and is reset.
	at.WriteDatagram(mkFrame(frameOpen, 1, 0, []byte("a")))
	at.WriteDatagram(mkFrame(frameOpen, 3, 0, []byte("b")))

	// Drain the server's responses to the first flight (ACK for 1, ACK
	// then RESET for 3, in some order).
	deadline := time.Now().Add(2 * time.Second)
	sawReset := false
	for !sawReset && time.Now().Before(deadline) {
		f := readFrameWithin(t, at, 200*time.Millisecond)
		if f != nil && f[0] == frameReset && binary.BigEndian.Uint32(f[1:5]) == 3 {
			sawReset = true
		}
	}
	if !sawReset {
		t.Fatal("overflowing the accept backlog did not produce a reset")
	}

	// The peer, whose RESET was lost, retransmits its OPEN for stream 3.
	at.WriteDatagram(mkFrame(frameOpen, 3, 0, []byte("b")))
	for time.Now().Before(deadline) {
		f := readFrameWithin(t, at, 200*time.Millisecond)
		if f == nil || binary.BigEndian.Uint32(f[1:5]) != 3 {
			continue
		}
		switch f[0] {
		case frameReset:
			return // correct: the tombstone repeats the reset
		case frameAck:
			t.Fatal("reset stream's tombstone re-ACKed the retransmitted OPEN (peer now believes the stream is established)")
		}
	}
	t.Fatal("no response to the retransmitted OPEN")
}

func readFrameWithin(t *testing.T, tr *chanTransport, d time.Duration) []byte {
	t.Helper()
	type res struct {
		b   []byte
		err error
	}
	ch := make(chan res, 1)
	go func() {
		b, err := tr.ReadDatagram()
		ch <- res{b, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return nil
		}
		return r.b
	case <-time.After(d):
		return nil
	}
}

// TestConcurrentWritersCannotOvershootWindow reproduces the send-window
// race: the window check and the seq reservation used to happen under
// separate lock acquisitions, so concurrent writers could all pass the
// check and overshoot the window. With ACKs never arriving, the number
// of sequenced frames must stay at exactly Window.
func TestConcurrentWritersCannotOvershootWindow(t *testing.T) {
	at, bt := newChanPair(0, 0, 23)
	rec := &recordingTransport{Transport: at}
	cfg := testConfig()
	cfg.Window = 4
	cfg.RTO = time.Hour // no retransmissions muddying the count
	client := New(rec, cfg, true)
	_ = bt // no peer tunnel: nothing ever ACKs

	s, err := client.OpenStream("windowed")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Write([]byte("x")) // blocks on the full window until teardown
		}()
	}
	time.Sleep(100 * time.Millisecond)

	seqs := map[uint32]bool{}
	for _, f := range rec.snapshot() {
		if f[0] == frameOpen || f[0] == frameData || f[0] == frameFin {
			seqs[binary.BigEndian.Uint32(f[5:9])] = true
		}
	}
	if len(seqs) > cfg.Window {
		t.Fatalf("sequenced %d frames with window %d: concurrent writers overshot", len(seqs), cfg.Window)
	}
	client.Close() // unblock the stalled writers
	wg.Wait()
}

// TestWriteRacingCloseNeverSequencesDataAfterFin: a Write racing Close
// must either be sequenced before the FIN or rejected — DATA after FIN
// corrupts the peer's EOF position.
func TestWriteRacingCloseNeverSequencesDataAfterFin(t *testing.T) {
	for round := 0; round < 20; round++ {
		at, bt := newChanPair(0, 0, 24)
		rec := &recordingTransport{Transport: at}
		cfg := testConfig()
		client := New(rec, cfg, true)
		server := New(bt, cfg, false)

		s, err := client.OpenStream("race")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := s.Write([]byte("d")); err != nil {
						return
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		s.Close()
		wg.Wait()

		var finSeq uint32
		hasFin := false
		for _, f := range rec.snapshot() {
			if f[0] == frameFin {
				finSeq = binary.BigEndian.Uint32(f[5:9])
				hasFin = true
			}
		}
		if !hasFin {
			t.Fatal("no FIN recorded")
		}
		for _, f := range rec.snapshot() {
			if f[0] == frameData && binary.BigEndian.Uint32(f[5:9]) > finSeq {
				t.Fatalf("DATA seq %d sequenced after FIN seq %d", binary.BigEndian.Uint32(f[5:9]), finSeq)
			}
		}
		client.Close()
		server.Close()
	}
}

// TestSendRawEnforcesMaxPayload: raw frames must respect the same MTU
// clamp as DATA instead of riding the 65535-byte wire limit.
func TestSendRawEnforcesMaxPayload(t *testing.T) {
	at, bt := newChanPair(0, 0, 25)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	ok := make([]byte, testConfig().MaxPayload)
	if err := client.SendRaw(1, ok); err != nil {
		t.Fatalf("payload at MaxPayload rejected: %v", err)
	}
	big := make([]byte, testConfig().MaxPayload+1)
	if err := client.SendRaw(1, big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized raw payload: got %v, want ErrTooLarge", err)
	}
}

// TestDeadPeerTimesOut: the max-retransmit policy must turn a dead peer
// into ErrTimeout instead of probing forever.
func TestDeadPeerTimesOut(t *testing.T) {
	at, bt := newChanPair(1.0, 0, 26) // total loss: the peer never hears us
	cfg := testConfig()
	cfg.RTO = 20 * time.Millisecond
	cfg.MaxRetransmits = 3
	client := New(at, cfg, true)
	server := New(bt, cfg, false)
	defer client.Close()
	defer server.Close()

	s, err := client.OpenStream("into the void")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !errors.Is(s.Err(), ErrTimeout) {
		t.Fatalf("stream error %v, want ErrTimeout", s.Err())
	}
	if _, err := s.Write([]byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Write on timed-out stream: %v, want ErrTimeout", err)
	}
	waitDrained(t, "client", client, 2*time.Second)
}
