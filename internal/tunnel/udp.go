package tunnel

import (
	"fmt"
	"net"
	"sync"
)

// maxDatagram bounds receive buffers; tunnel frames are much smaller.
const maxDatagram = 64 << 10

// UDPTransport is a point-to-point Transport over a UDP socket, matching
// the deployment's single CPE↔gateway tunnel. The listening side learns
// its peer from the first datagram received.
type UDPTransport struct {
	conn *net.UDPConn

	mu   sync.RWMutex
	peer *net.UDPAddr
}

// DialUDP creates the client (CPE) side, bound to an ephemeral port and
// aimed at the gateway address.
func DialUDP(gateway string) (*UDPTransport, error) {
	raddr, err := net.ResolveUDPAddr("udp", gateway)
	if err != nil {
		return nil, fmt.Errorf("tunnel: resolving %q: %w", gateway, err)
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4zero})
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn, peer: raddr}, nil
}

// ListenUDP creates the gateway side on a local address like ":4500".
// Use LocalAddr to discover the bound port when given port 0.
func ListenUDP(local string) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, fmt.Errorf("tunnel: resolving %q: %w", local, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{conn: conn}, nil
}

// LocalAddr returns the bound address.
func (u *UDPTransport) LocalAddr() net.Addr { return u.conn.LocalAddr() }

// WriteDatagram implements Transport. Before the listening side has
// learned its peer, writes are dropped (the CPE always speaks first).
func (u *UDPTransport) WriteDatagram(b []byte) error {
	u.mu.RLock()
	peer := u.peer
	u.mu.RUnlock()
	if peer == nil {
		return nil
	}
	_, err := u.conn.WriteToUDP(b, peer)
	return err
}

// ReadDatagram implements Transport.
func (u *UDPTransport) ReadDatagram() ([]byte, error) {
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return nil, err
		}
		u.mu.Lock()
		if u.peer == nil {
			u.peer = from
		}
		known := u.peer
		u.mu.Unlock()
		// A point-to-point tunnel ignores datagrams from other sources.
		if from.IP.Equal(known.IP) && from.Port == known.Port {
			out := make([]byte, n)
			copy(out, buf[:n])
			return out, nil
		}
	}
}

// Close implements Transport.
func (u *UDPTransport) Close() error { return u.conn.Close() }
