// Package tunnel implements the bidirectional reliable tunnel the PEP runs
// between the customer CPE and the ground station (§2.1: "forwards TCP
// payload to the ground station via a bidirectional reliable tunnel over
// UDP"). It multiplexes many proxied TCP connections as ordered, reliable
// byte streams over a single unreliable datagram transport, using
// per-stream sequence numbers, cumulative acknowledgements, a fixed send
// window, and timer-driven retransmission — a deliberately simple ARQ that
// tolerates the loss and reordering a satellite link produces.
package tunnel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Transport is the unreliable datagram layer under the tunnel: a UDP
// socket in deployment, an emulated satellite link in tests and demos.
type Transport interface {
	// WriteDatagram sends one datagram (best effort). The buffer is only
	// valid for the duration of the call: implementations that retain it
	// past returning must copy (the tunnel recycles frame buffers).
	WriteDatagram(b []byte) error
	// ReadDatagram blocks for the next datagram. It returns an error
	// when the transport is closed. The returned slice is only valid
	// until the next ReadDatagram call on the same transport, which
	// lets implementations recycle receive buffers; the tunnel's read
	// loop copies everything it keeps.
	ReadDatagram() ([]byte, error)
	Close() error
}

// Frame types.
const (
	frameOpen uint8 = iota + 1
	frameOpenAck
	frameData
	frameAck
	frameFin
	frameReset
	// frameRaw carries one unreliable datagram (§2.1: UDP traffic "cannot
	// benefit from PEP acceleration and therefore UDP packets are
	// forwarded as is"): no sequence numbers, no ACKs, no retransmission.
	// The stream-ID field carries an opaque flow label; the seq field
	// carries nothing.
	frameRaw
)

const headerLen = 1 + 4 + 4 + 2

// Config tunes the ARQ.
type Config struct {
	// RTO is the retransmission timeout; set it above the link RTT
	// (≥1.5x the ~550 ms satellite round trip in deployment).
	RTO time.Duration
	// Window is the per-stream send window in frames.
	Window int
	// MaxPayload is the maximum DATA payload per frame; it also clamps
	// SendRaw, so no frame ever exceeds the link MTU the value models.
	MaxPayload int
	// AcceptBacklog bounds pending un-Accept()ed streams.
	AcceptBacklog int
	// MaxRetransmits caps how often one frame is retransmitted before
	// the stream is torn down with ErrTimeout (a dead peer must produce
	// an error, not infinite RTO probes). 0 means the default; negative
	// disables the cap.
	MaxRetransmits int
}

// DefaultConfig returns deployment-shaped defaults.
func DefaultConfig() Config {
	return Config{RTO: 900 * time.Millisecond, Window: 128, MaxPayload: 1200,
		AcceptBacklog: 64, MaxRetransmits: 15}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.RTO <= 0 {
		c.RTO = d.RTO
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.MaxPayload <= 0 || c.MaxPayload > 60000 {
		c.MaxPayload = d.MaxPayload
	}
	if c.AcceptBacklog <= 0 {
		c.AcceptBacklog = d.AcceptBacklog
	}
	if c.MaxRetransmits == 0 {
		c.MaxRetransmits = d.MaxRetransmits
	}
	return c
}

// ErrClosed is returned on operations over a closed tunnel or stream.
var ErrClosed = errors.New("tunnel: closed")

// ErrTooLarge is returned by SendRaw for payloads over MaxPayload.
var ErrTooLarge = errors.New("tunnel: payload exceeds MaxPayload")

// Tunnel is one endpoint of the reliable tunnel.
type Tunnel struct {
	tr  Transport
	cfg Config

	mu      sync.Mutex
	streams map[uint32]*Stream
	// dead holds TIME_WAIT tombstones for recently closed streams so that
	// peer retransmissions (whose ACKs we lost) are re-acknowledged
	// instead of answered with a reset that could race ahead of data.
	dead map[uint32]tombstone
	// early buffers DATA/FIN frames that arrived before their stream's
	// OPEN (jitter reorders the first flight on a satellite link); they
	// replay as soon as the OPEN lands instead of waiting out an RTO.
	early  map[uint32][]earlyFrame
	nextID uint32
	closed bool

	acceptCh chan *Stream
	rawCh    chan RawDatagram
	done     chan struct{}
	loopErr  error

	// Buffer pools for the datagram hot path: wire frames (header +
	// payload) and the DATA payload copies Write keeps until
	// acknowledgement.
	framePool   *bufPool
	payloadPool *bufPool

	// Adaptive retransmission timeout (Jacobson/Karels smoothing over
	// RTT samples that pass Karn's rule). Config.RTO is the initial and
	// upper-anchor value.
	rttMu  sync.Mutex
	srtt   time.Duration
	rttvar time.Duration
	rto    time.Duration
}

// RawDatagram is one unreliable datagram received through the tunnel.
type RawDatagram struct {
	// FlowID is the opaque label the sender attached (e.g. a NAT flow).
	FlowID  uint32
	Payload []byte
}

// New creates a tunnel endpoint over a transport and starts its receive
// and retransmission loops. isClient selects the stream-ID parity so the
// two endpoints never collide when opening streams.
func New(tr Transport, cfg Config, isClient bool) *Tunnel {
	t := &Tunnel{
		tr:       tr,
		cfg:      cfg.withDefaults(),
		streams:  make(map[uint32]*Stream),
		dead:     make(map[uint32]tombstone),
		early:    make(map[uint32][]earlyFrame),
		acceptCh: make(chan *Stream, cfg.withDefaults().AcceptBacklog),
		rawCh:    make(chan RawDatagram, 256),
		done:     make(chan struct{}),
	}
	t.framePool = newBufPool(headerLen + t.cfg.MaxPayload)
	t.payloadPool = newBufPool(t.cfg.MaxPayload)
	t.rto = t.cfg.RTO
	if isClient {
		t.nextID = 1
	} else {
		t.nextID = 2
	}
	go t.readLoop()
	go t.retransmitLoop()
	return t
}

// OpenStream opens a new stream whose peer should connect to dst (an
// opaque destination label, typically "host:port").
func (t *Tunnel) OpenStream(dst string) (*Stream, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	id := t.nextID
	t.nextID += 2
	s := newStream(t, id, dst)
	t.streams[id] = s
	t.mu.Unlock()
	mStreamsOpened.Inc()
	mStreamsActive.Add(1)

	// The OPEN frame is retransmitted like data (seq 0 carries the dst).
	s.sendSegment(frameOpen, []byte(dst))
	return s, nil
}

// sampleRTT folds one clean RTT measurement into the smoothed estimator
// (RFC 6298 constants) and updates the retransmission timeout.
func (t *Tunnel) sampleRTT(rtt time.Duration) {
	t.rttMu.Lock()
	defer t.rttMu.Unlock()
	if t.srtt == 0 {
		t.srtt = rtt
		t.rttvar = rtt / 2
	} else {
		d := t.srtt - rtt
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + rtt) / 8
	}
	rto := t.srtt + 4*t.rttvar
	// Keep the adaptive value inside sane bounds around the configured
	// anchor: never quicker than an eighth (spurious-retransmit guard on
	// jittery satellite links), never slower than 4x.
	if min := t.cfg.RTO / 8; rto < min {
		rto = min
	}
	if max := 4 * t.cfg.RTO; rto > max {
		rto = max
	}
	t.rto = rto
	mRTO.Set(rto.Seconds())
}

// currentRTO returns the retransmission timeout in force.
func (t *Tunnel) currentRTO() time.Duration {
	t.rttMu.Lock()
	defer t.rttMu.Unlock()
	return t.rto
}

// RTTEstimate exposes the smoothed RTT (zero before any sample), for
// monitoring.
func (t *Tunnel) RTTEstimate() time.Duration {
	t.rttMu.Lock()
	defer t.rttMu.Unlock()
	return t.srtt
}

// SendRaw forwards one datagram unreliably (no ACK, no retransmission):
// the non-accelerated UDP path of the PEP architecture. flowID is an
// opaque label the receiver uses to demultiplex. Payloads over
// MaxPayload are rejected with ErrTooLarge — raw frames must respect
// the same MTU clamp as DATA, not ride the 65535-byte wire limit.
func (t *Tunnel) SendRaw(flowID uint32, payload []byte) error {
	if t.isClosed() {
		return ErrClosed
	}
	if len(payload) > t.cfg.MaxPayload {
		return fmt.Errorf("%w (%d > %d)", ErrTooLarge, len(payload), t.cfg.MaxPayload)
	}
	return t.send(frameRaw, flowID, 0, payload)
}

// RecvRaw blocks for the next raw datagram. Datagrams arriving while no
// reader is waiting beyond the channel buffer are dropped, matching UDP
// semantics.
func (t *Tunnel) RecvRaw() (RawDatagram, error) {
	select {
	case d := <-t.rawCh:
		return d, nil
	case <-t.done:
		return RawDatagram{}, t.closeReason()
	}
}

// Accept blocks for the next incoming stream and its destination label.
func (t *Tunnel) Accept() (*Stream, string, error) {
	select {
	case s := <-t.acceptCh:
		return s, s.dst, nil
	case <-t.done:
		return nil, "", t.closeReason()
	}
}

func (t *Tunnel) closeReason() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.loopErr != nil {
		return t.loopErr
	}
	return ErrClosed
}

// Close tears the tunnel and every stream down.
func (t *Tunnel) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	streams := make([]*Stream, 0, len(t.streams))
	for _, s := range t.streams {
		streams = append(streams, s)
	}
	t.mu.Unlock()
	close(t.done)
	for _, s := range streams {
		s.teardown(ErrClosed)
	}
	return t.tr.Close()
}

func (t *Tunnel) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// NumStreams returns the number of live streams in the stream table. It
// is the leak check of the load harness and stress tests: once every
// flow has drained it must return to zero.
func (t *Tunnel) NumStreams() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.streams)
}

// buildFrame serializes one frame into a pooled buffer; pass it to
// writeFrame (which recycles it) or return it with framePool.put.
func (t *Tunnel) buildFrame(typ uint8, id, seq uint32, payload []byte) []byte {
	buf := t.framePool.get(headerLen + len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], id)
	binary.BigEndian.PutUint32(buf[5:9], seq)
	binary.BigEndian.PutUint16(buf[9:11], uint16(len(payload)))
	copy(buf[headerLen:], payload)
	return buf
}

// writeFrame hands a built frame to the transport and recycles the
// buffer (Transport.WriteDatagram must not retain it).
func (t *Tunnel) writeFrame(buf []byte) error {
	err := t.tr.WriteDatagram(buf)
	t.framePool.put(buf)
	mFramesSent.Inc()
	return err
}

func (t *Tunnel) send(typ uint8, id, seq uint32, payload []byte) error {
	if len(payload) > 0xffff {
		return fmt.Errorf("tunnel: payload %d too large", len(payload))
	}
	return t.writeFrame(t.buildFrame(typ, id, seq, payload))
}

func (t *Tunnel) readLoop() {
	for {
		dgram, err := t.tr.ReadDatagram()
		if err != nil {
			t.mu.Lock()
			if !t.closed {
				t.loopErr = err
				t.closed = true
				close(t.done)
			}
			streams := make([]*Stream, 0, len(t.streams))
			for _, s := range t.streams {
				streams = append(streams, s)
			}
			t.mu.Unlock()
			for _, s := range streams {
				s.teardown(err)
			}
			return
		}
		t.dispatch(dgram)
	}
}

func (t *Tunnel) dispatch(dgram []byte) {
	if len(dgram) < headerLen {
		return // runt datagram: drop
	}
	typ := dgram[0]
	id := binary.BigEndian.Uint32(dgram[1:5])
	seq := binary.BigEndian.Uint32(dgram[5:9])
	n := int(binary.BigEndian.Uint16(dgram[9:11]))
	if headerLen+n > len(dgram) {
		return // truncated: drop
	}
	payload := dgram[headerLen : headerLen+n]
	mFramesReceived.Inc()

	if typ == frameRaw {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		select {
		case t.rawCh <- RawDatagram{FlowID: id, Payload: cp}:
		default:
			// Receiver not draining: drop, as UDP would.
			mRawDrops.Inc()
		}
		return
	}

	t.mu.Lock()
	s, ok := t.streams[id]
	if !ok {
		if d, wasDead := t.dead[id]; wasDead {
			t.mu.Unlock()
			if typ == frameData || typ == frameFin || typ == frameOpen {
				if d.reset {
					// The stream ended in a reset on our side: the peer
					// must not be talked back into believing it is
					// established — repeat the reset, never an ACK.
					_ = t.send(frameReset, id, 0, nil)
				} else {
					// TIME_WAIT: the peer retransmitted because our
					// final ACK was lost — repeat it rather than
					// resetting.
					_ = t.send(frameAck, id, d.recvNext, nil)
				}
			}
			return
		}
		if typ == frameOpen && !t.closed {
			// New incoming stream.
			s = newStream(t, id, string(payload))
			s.recvNext = 1 // the OPEN consumed seq 0
			t.streams[id] = s
			replay := t.early[id]
			delete(t.early, id)
			t.mu.Unlock()
			mStreamsOpened.Inc()
			mStreamsActive.Add(1)
			s.sendAck(1)
			select {
			case t.acceptCh <- s:
			default:
				// Backlog full: reset the stream. The removal must leave
				// a reset tombstone, not an ACKing one — an ACKing
				// tombstone would re-acknowledge the peer's
				// retransmissions and leave it believing the stream is
				// established while our side has discarded it.
				mStreamsReset.Inc()
				_ = t.send(frameReset, id, 0, nil)
				t.removeStream(id, true)
				return
			}
			// Replay the first flight that outran its OPEN.
			for _, f := range replay {
				s.handleFrame(f.typ, f.seq, f.payload)
			}
			return
		}
		if (typ == frameData || typ == frameFin) && !t.closed {
			// The first flight outran its OPEN (jitter reordering) or
			// the OPEN was lost and is being retransmitted: buffer a
			// bounded amount and replay once the OPEN lands, instead of
			// making the peer wait out a full RTO.
			if len(t.early) < 64 && len(t.early[id]) < 32 {
				cp := make([]byte, len(payload))
				copy(cp, payload)
				t.early[id] = append(t.early[id], earlyFrame{typ: typ, seq: seq, payload: cp, at: time.Now()})
			}
		}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	s.handleFrame(typ, seq, payload)
}

type tombstone struct {
	recvNext uint32
	at       time.Time
	// reset marks a stream that ended in a reset (backlog overflow,
	// max-retransmit teardown, peer abort): its tombstone answers
	// retransmissions with another reset instead of an ACK.
	reset bool
}

type earlyFrame struct {
	typ     uint8
	seq     uint32
	payload []byte
	at      time.Time
}

// removeStream drops a stream from the table and installs its TIME_WAIT
// tombstone. reset selects the tombstone flavour: a gracefully closed
// stream re-ACKs peer retransmissions, a reset stream repeats the reset.
func (t *Tunnel) removeStream(id uint32, reset bool) {
	t.mu.Lock()
	if s, ok := t.streams[id]; ok {
		delete(t.streams, id)
		s.mu.Lock()
		next := s.recvNext
		s.mu.Unlock()
		t.dead[id] = tombstone{recvNext: next, at: time.Now(), reset: reset}
		mStreamsClosed.Inc()
		mStreamsActive.Add(-1)
	}
	t.mu.Unlock()
}

// pruneDead expires TIME_WAIT tombstones and stale early-frame buffers
// older than several RTOs.
func (t *Tunnel) pruneDead(now time.Time) {
	linger := 8 * t.cfg.RTO
	t.mu.Lock()
	for id, d := range t.dead {
		if now.Sub(d.at) > linger {
			delete(t.dead, id)
		}
	}
	for id, frames := range t.early {
		if len(frames) > 0 && now.Sub(frames[0].at) > linger {
			delete(t.early, id)
		}
	}
	t.mu.Unlock()
}

func (t *Tunnel) retransmitLoop() {
	interval := t.cfg.RTO / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-tick.C:
		}
		t.mu.Lock()
		streams := make([]*Stream, 0, len(t.streams))
		for _, s := range t.streams {
			streams = append(streams, s)
		}
		t.mu.Unlock()
		now := time.Now()
		for _, s := range streams {
			s.retransmitDue(now)
		}
		t.pruneDead(now)
	}
}
