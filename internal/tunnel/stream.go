package tunnel

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrReset is returned when the peer aborted the stream.
var ErrReset = errors.New("tunnel: stream reset by peer")

type pending struct {
	typ     uint8
	payload []byte
	firstTx time.Time
	lastTx  time.Time
	txCount int
}

type oooSegment struct {
	fin  bool
	data []byte
}

// Stream is one ordered reliable byte stream inside a tunnel. Read and
// Write follow io semantics; Close performs a graceful half-close (the
// peer's Read drains buffered data, then sees io.EOF).
type Stream struct {
	t   *Tunnel
	id  uint32
	dst string

	mu       sync.Mutex
	sendCond *sync.Cond
	recvCond *sync.Cond

	// Sender state.
	sendNext uint32
	sendBase uint32
	unacked  map[uint32]*pending
	sentFin  bool

	// Receiver state.
	recvNext uint32
	recvBuf  bytes.Buffer
	ooo      map[uint32]oooSegment
	peerFin  bool // FIN delivered in order

	err    error
	closed bool
}

func newStream(t *Tunnel, id uint32, dst string) *Stream {
	s := &Stream{t: t, id: id, dst: dst, unacked: make(map[uint32]*pending), ooo: make(map[uint32]oooSegment)}
	s.sendCond = sync.NewCond(&s.mu)
	s.recvCond = sync.NewCond(&s.mu)
	return s
}

// ID returns the stream's tunnel-local identifier.
func (s *Stream) ID() uint32 { return s.id }

// Err returns the stream's terminal error (nil while healthy; ErrReset
// after a peer abort, the transport error after a tunnel failure).
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dst returns the destination label carried by the OPEN frame.
func (s *Stream) Dst() string { return s.dst }

// sendSegment assigns the next sequence number to a frame, registers it
// for retransmission, and transmits it once.
func (s *Stream) sendSegment(typ uint8, payload []byte) {
	s.mu.Lock()
	seq := s.sendNext
	s.sendNext++
	now := time.Now()
	p := &pending{typ: typ, payload: payload, firstTx: now, lastTx: now, txCount: 1}
	s.unacked[seq] = p
	s.mu.Unlock()
	_ = s.t.send(typ, s.id, seq, payload)
}

// Write implements io.Writer, blocking while the send window is full.
func (s *Stream) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > s.t.cfg.MaxPayload {
			n = s.t.cfg.MaxPayload
		}
		chunk := make([]byte, n)
		copy(chunk, b[:n])

		s.mu.Lock()
		for s.err == nil && !s.closed && s.sendNext-s.sendBase >= uint32(s.t.cfg.Window) {
			s.sendCond.Wait()
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return total, err
		}
		if s.closed {
			s.mu.Unlock()
			return total, ErrClosed
		}
		s.mu.Unlock()

		s.sendSegment(frameData, chunk)
		b = b[n:]
		total += n
	}
	return total, nil
}

// Read implements io.Reader: it blocks until data, EOF (peer FIN), or a
// stream error.
func (s *Stream) Read(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.recvBuf.Len() == 0 && !s.peerFin && s.err == nil {
		s.recvCond.Wait()
	}
	if s.recvBuf.Len() > 0 {
		return s.recvBuf.Read(b)
	}
	if s.peerFin {
		return 0, io.EOF
	}
	return 0, s.err
}

// Close performs a graceful close: a FIN is queued after all written data
// and retransmitted until acknowledged. Safe to call multiple times.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed || s.err != nil {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	alreadyFin := s.sentFin
	s.sentFin = true
	s.mu.Unlock()
	if !alreadyFin {
		s.sendSegment(frameFin, nil)
	}
	return nil
}

// teardown aborts the stream with an error, waking all waiters.
func (s *Stream) teardown(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.recvCond.Broadcast()
	s.sendCond.Broadcast()
	s.t.removeStream(s.id)
}

func (s *Stream) sendAckLocked(next uint32) {
	_ = s.t.send(frameAck, s.id, next, nil)
}

// handleFrame processes one incoming frame for this stream.
func (s *Stream) handleFrame(typ uint8, seq uint32, payload []byte) {
	switch typ {
	case frameAck:
		now := time.Now()
		var sample time.Duration
		s.mu.Lock()
		if seq > s.sendBase {
			for q := s.sendBase; q < seq; q++ {
				if p, ok := s.unacked[q]; ok {
					// Karn's rule: only never-retransmitted frames
					// produce RTT samples.
					if p.txCount == 1 {
						sample = now.Sub(p.firstTx)
					}
					delete(s.unacked, q)
				}
			}
			s.sendBase = seq
			s.sendCond.Broadcast()
		}
		done := s.closed && len(s.unacked) == 0 && s.peerFin
		s.mu.Unlock()
		if sample > 0 {
			s.t.sampleRTT(sample)
		}
		if done {
			s.t.removeStream(s.id)
		}
	case frameData, frameFin:
		s.mu.Lock()
		switch {
		case seq < s.recvNext:
			// Duplicate of something already delivered: re-ack.
		case seq >= s.recvNext+uint32(4*s.t.cfg.Window):
			// Absurdly far ahead: drop without ack.
			s.mu.Unlock()
			return
		default:
			if _, dup := s.ooo[seq]; !dup {
				data := append([]byte(nil), payload...)
				s.ooo[seq] = oooSegment{fin: typ == frameFin, data: data}
			}
			// Deliver everything now in order.
			for {
				seg, ok := s.ooo[s.recvNext]
				if !ok {
					break
				}
				delete(s.ooo, s.recvNext)
				s.recvNext++
				if seg.fin {
					s.peerFin = true
				} else {
					s.recvBuf.Write(seg.data)
				}
			}
		}
		next := s.recvNext
		s.recvCond.Broadcast()
		s.mu.Unlock()
		s.sendAckLocked(next)
	case frameReset:
		s.teardown(ErrReset)
	case frameOpen:
		// Duplicate OPEN (our ACK was lost): re-ack seq 1.
		s.mu.Lock()
		next := s.recvNext
		s.mu.Unlock()
		if next >= 1 {
			s.sendAckLocked(next)
		}
	}
}

// retransmitDue resends the oldest unacknowledged frame when its RTO has
// expired (go-back-one: one probe per RTO avoids retransmission storms on
// a long-delay link).
func (s *Stream) retransmitDue(now time.Time) {
	rto := s.t.currentRTO()
	s.mu.Lock()
	p, ok := s.unacked[s.sendBase]
	if !ok || s.err != nil || now.Sub(p.lastTx) < rto {
		s.mu.Unlock()
		return
	}
	p.lastTx = now
	p.txCount++
	seq := s.sendBase
	typ := p.typ
	payload := p.payload
	s.mu.Unlock()
	_ = s.t.send(typ, s.id, seq, payload)
}

// String implements fmt.Stringer for diagnostics.
func (s *Stream) String() string {
	return fmt.Sprintf("stream(%d→%s)", s.id, s.dst)
}
