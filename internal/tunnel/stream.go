package tunnel

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrReset is returned when the peer aborted the stream.
var ErrReset = errors.New("tunnel: stream reset by peer")

// ErrTimeout is returned when the max-retransmit policy gives up on a
// frame: the peer is dead or unreachable past any plausible outage.
var ErrTimeout = errors.New("tunnel: stream timed out (max retransmissions exceeded)")

type pending struct {
	typ     uint8
	payload []byte
	firstTx time.Time
	lastTx  time.Time
	txCount int
}

type oooSegment struct {
	fin  bool
	data []byte
}

// Stream is one ordered reliable byte stream inside a tunnel. Read and
// Write follow io semantics; Close performs a graceful half-close (the
// peer's Read drains buffered data, then sees io.EOF).
type Stream struct {
	t   *Tunnel
	id  uint32
	dst string

	mu       sync.Mutex
	sendCond *sync.Cond
	recvCond *sync.Cond

	// Sender state.
	sendNext uint32
	sendBase uint32
	unacked  map[uint32]*pending

	// Receiver state.
	recvNext uint32
	recvBuf  bytes.Buffer
	ooo      map[uint32]oooSegment
	peerFin  bool // FIN delivered in order

	err    error
	closed bool // Close called: the FIN holds the stream's last sequence number
}

func newStream(t *Tunnel, id uint32, dst string) *Stream {
	s := &Stream{t: t, id: id, dst: dst, unacked: make(map[uint32]*pending), ooo: make(map[uint32]oooSegment)}
	s.sendCond = sync.NewCond(&s.mu)
	s.recvCond = sync.NewCond(&s.mu)
	return s
}

// ID returns the stream's tunnel-local identifier.
func (s *Stream) ID() uint32 { return s.id }

// Err returns the stream's terminal error (nil while healthy; ErrReset
// after a peer abort, ErrTimeout after a max-retransmit teardown, the
// transport error after a tunnel failure).
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Dst returns the destination label carried by the OPEN frame.
func (s *Stream) Dst() string { return s.dst }

// reserveLocked assigns the next sequence number to a frame and
// registers it for retransmission; the caller holds s.mu and transmits
// after unlocking. Keeping the reservation under the caller's lock is
// what makes the window check atomic with sequencing: concurrent
// writers cannot overshoot the window, and no DATA can be sequenced
// after a racing Close's FIN.
func (s *Stream) reserveLocked(typ uint8, payload []byte) uint32 {
	seq := s.sendNext
	s.sendNext++
	now := time.Now()
	s.unacked[seq] = &pending{typ: typ, payload: payload, firstTx: now, lastTx: now, txCount: 1}
	return seq
}

// sendSegment reserves and transmits one frame (OPEN; DATA and FIN have
// their own paths so the window check and Close stay atomic).
func (s *Stream) sendSegment(typ uint8, payload []byte) {
	s.mu.Lock()
	seq := s.reserveLocked(typ, payload)
	s.mu.Unlock()
	_ = s.t.send(typ, s.id, seq, payload)
}

// Write implements io.Writer, blocking while the send window is full.
// Writes racing a Close fail with ErrClosed rather than sequencing data
// after the FIN.
func (s *Stream) Write(b []byte) (int, error) {
	total := 0
	for len(b) > 0 {
		n := len(b)
		if n > s.t.cfg.MaxPayload {
			n = s.t.cfg.MaxPayload
		}

		s.mu.Lock()
		stalled := false
		for s.err == nil && !s.closed && s.sendNext-s.sendBase >= uint32(s.t.cfg.Window) {
			if !stalled {
				stalled = true
				mWindowStalls.Inc()
			}
			s.sendCond.Wait()
		}
		if s.err != nil {
			err := s.err
			s.mu.Unlock()
			return total, err
		}
		if s.closed {
			s.mu.Unlock()
			return total, ErrClosed
		}
		// Copy into a pooled payload buffer (owned by unacked until the
		// ACK frees it) and sequence it under the same lock as the
		// window check above.
		chunk := s.t.payloadPool.get(n)
		copy(chunk, b[:n])
		seq := s.reserveLocked(frameData, chunk)
		s.mu.Unlock()

		_ = s.t.send(frameData, s.id, seq, chunk)
		b = b[n:]
		total += n
	}
	return total, nil
}

// Read implements io.Reader: it blocks until data, EOF (peer FIN), or a
// stream error.
func (s *Stream) Read(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.recvBuf.Len() == 0 && !s.peerFin && s.err == nil {
		s.recvCond.Wait()
	}
	if s.recvBuf.Len() > 0 {
		return s.recvBuf.Read(b)
	}
	if s.peerFin {
		return 0, io.EOF
	}
	return 0, s.err
}

// Close performs a graceful close: a FIN is sequenced after all written
// data — atomically with setting the closed flag, so no concurrent
// Write can slip a DATA frame behind it — and retransmitted until
// acknowledged. Safe to call multiple times.
func (s *Stream) Close() error {
	s.mu.Lock()
	if s.closed || s.err != nil {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	seq := s.reserveLocked(frameFin, nil)
	s.mu.Unlock()
	_ = s.t.send(frameFin, s.id, seq, nil)
	return nil
}

// Reset aborts the stream immediately: a RESET frame tells the peer
// (best effort — if it is lost, the peer's next retransmission hits our
// reset tombstone and is answered with another RESET), and local
// readers and writers fail with ErrReset.
func (s *Stream) Reset() {
	mStreamsReset.Inc()
	_ = s.t.send(frameReset, s.id, 0, nil)
	s.teardown(ErrReset)
}

// teardown aborts the stream with an error, waking all waiters and
// recycling any in-flight payload buffers.
func (s *Stream) teardown(err error) {
	s.mu.Lock()
	first := s.err == nil
	if first {
		s.err = err
		for seq, p := range s.unacked {
			if p.typ == frameData {
				s.t.payloadPool.put(p.payload)
			}
			delete(s.unacked, seq)
		}
	}
	s.mu.Unlock()
	s.recvCond.Broadcast()
	s.sendCond.Broadcast()
	// A torn-down stream never ACKs again: its tombstone answers with a
	// reset so a still-talking peer learns the stream is gone.
	s.t.removeStream(s.id, true)
}

func (s *Stream) sendAck(next uint32) {
	_ = s.t.send(frameAck, s.id, next, nil)
}

// handleFrame processes one incoming frame for this stream.
func (s *Stream) handleFrame(typ uint8, seq uint32, payload []byte) {
	switch typ {
	case frameAck:
		now := time.Now()
		var sample time.Duration
		s.mu.Lock()
		if seq > s.sendBase {
			for q := s.sendBase; q < seq; q++ {
				if p, ok := s.unacked[q]; ok {
					// Karn's rule: only never-retransmitted frames
					// produce RTT samples.
					if p.txCount == 1 {
						sample = now.Sub(p.firstTx)
					}
					if p.typ == frameData {
						s.t.payloadPool.put(p.payload)
					}
					delete(s.unacked, q)
				}
			}
			s.sendBase = seq
			s.sendCond.Broadcast()
		}
		done := s.fullyClosedLocked()
		s.mu.Unlock()
		if sample > 0 {
			s.t.sampleRTT(sample)
		}
		if done {
			s.t.removeStream(s.id, false)
		}
	case frameData, frameFin:
		s.mu.Lock()
		switch {
		case seq < s.recvNext:
			// Duplicate of something already delivered: re-ack.
		case seq >= s.recvNext+uint32(4*s.t.cfg.Window):
			// Absurdly far ahead: drop without ack.
			s.mu.Unlock()
			return
		default:
			if _, dup := s.ooo[seq]; !dup {
				// Pooled copy: the dispatch buffer is recycled on the next
				// ReadDatagram, and recvBuf.Write below copies again, so the
				// segment buffer can go straight back to the pool once
				// delivered.
				data := s.t.payloadPool.get(len(payload))
				copy(data, payload)
				s.ooo[seq] = oooSegment{fin: typ == frameFin, data: data}
			}
			// Deliver everything now in order.
			for {
				seg, ok := s.ooo[s.recvNext]
				if !ok {
					break
				}
				delete(s.ooo, s.recvNext)
				s.recvNext++
				if seg.fin {
					s.peerFin = true
				} else {
					s.recvBuf.Write(seg.data)
				}
				s.t.payloadPool.put(seg.data)
			}
		}
		next := s.recvNext
		// The peer's FIN can be the last frame of the conversation: when
		// our own FIN is already acknowledged, this branch — not the ACK
		// branch — is where the stream completes, and skipping the check
		// here leaks the stream in the table forever.
		done := s.fullyClosedLocked()
		s.recvCond.Broadcast()
		s.mu.Unlock()
		s.sendAck(next)
		if done {
			s.t.removeStream(s.id, false)
		}
	case frameReset:
		mStreamsReset.Inc()
		s.teardown(ErrReset)
	case frameOpen:
		// Duplicate OPEN (our ACK was lost): re-ack seq 1.
		s.mu.Lock()
		next := s.recvNext
		s.mu.Unlock()
		if next >= 1 {
			s.sendAck(next)
		}
	}
}

// fullyClosedLocked reports whether both directions have finished: our
// FIN is sent and acknowledged, and the peer's FIN was delivered in
// order. The caller holds s.mu.
func (s *Stream) fullyClosedLocked() bool {
	return s.closed && len(s.unacked) == 0 && s.peerFin
}

// retransmitDue resends the oldest unacknowledged frame when its RTO has
// expired (go-back-one: one probe per RTO avoids retransmission storms on
// a long-delay link). Past the max-retransmit cap the stream is torn
// down with ErrTimeout and the peer told via a best-effort reset.
func (s *Stream) retransmitDue(now time.Time) {
	rto := s.t.currentRTO()
	s.mu.Lock()
	p, ok := s.unacked[s.sendBase]
	if !ok || s.err != nil || now.Sub(p.lastTx) < rto {
		s.mu.Unlock()
		return
	}
	if max := s.t.cfg.MaxRetransmits; max > 0 && p.txCount > max {
		s.mu.Unlock()
		mStreamsTimedOut.Inc()
		_ = s.t.send(frameReset, s.id, 0, nil)
		s.teardown(ErrTimeout)
		return
	}
	p.lastTx = now
	p.txCount++
	// Serialize under the lock: the payload buffer is pooled and may be
	// recycled by an ACK the moment we let go of s.mu.
	buf := s.t.buildFrame(p.typ, s.id, s.sendBase, p.payload)
	s.mu.Unlock()
	mRetransmits.Inc()
	_ = s.t.writeFrame(buf)
}

// String implements fmt.Stringer for diagnostics.
func (s *Stream) String() string {
	return fmt.Sprintf("stream(%d→%s)", s.id, s.dst)
}
