package tunnel

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"satwatch/internal/dist"
)

// chanTransport is an in-memory Transport pair with optional loss and
// reordering injected deterministically.
type chanTransport struct {
	out     chan<- []byte
	in      <-chan []byte
	done    chan struct{}
	once    sync.Once
	mu      sync.Mutex
	r       *dist.Rand
	loss    float64
	reorder float64
	held    [][]byte
}

func newChanPair(loss, reorder float64, seed uint64) (*chanTransport, *chanTransport) {
	ab := make(chan []byte, 4096)
	ba := make(chan []byte, 4096)
	base := dist.NewRand(seed)
	a := &chanTransport{out: ab, in: ba, done: make(chan struct{}), r: base.Fork("a"), loss: loss, reorder: reorder}
	b := &chanTransport{out: ba, in: ab, done: make(chan struct{}), r: base.Fork("b"), loss: loss, reorder: reorder}
	return a, b
}

func (c *chanTransport) WriteDatagram(b []byte) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.loss > 0 && c.r.Bool(c.loss) {
		return nil
	}
	if c.reorder > 0 && c.r.Bool(c.reorder) {
		// Hold this datagram back; release it after the next one.
		c.held = append(c.held, cp)
		return nil
	}
	c.deliver(cp)
	for _, h := range c.held {
		c.deliver(h)
	}
	c.held = nil
	return nil
}

func (c *chanTransport) deliver(b []byte) {
	select {
	case c.out <- b:
	default:
	}
}

func (c *chanTransport) ReadDatagram() ([]byte, error) {
	select {
	case b := <-c.in:
		return b, nil
	case <-c.done:
		return nil, ErrClosed
	}
}

func (c *chanTransport) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func testConfig() Config {
	return Config{RTO: 40 * time.Millisecond, Window: 64, MaxPayload: 512, AcceptBacklog: 16}
}

func TestOpenAcceptRoundTrip(t *testing.T) {
	at, bt := newChanPair(0, 0, 1)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	s, err := client.OpenStream("origin.example:443")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Write([]byte("hello over 550ms"))
		s.Close()
	}()

	srv, dst, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if dst != "origin.example:443" {
		t.Fatalf("dst %q", dst)
	}
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello over 550ms" {
		t.Fatalf("got %q", got)
	}
}

func TestBidirectionalEcho(t *testing.T) {
	at, bt := newChanPair(0, 0, 2)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	go func() {
		s, _, err := server.Accept()
		if err != nil {
			return
		}
		io.Copy(s, s) // echo
		s.Close()
	}()

	s, err := client.OpenStream("echo")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ping across the satellite")
	if _, err := s.Write(msg); err != nil {
		t.Fatal(err)
	}
	s.Close()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestBulkTransferOverLossyReorderingLink(t *testing.T) {
	at, bt := newChanPair(0.05, 0.05, 3)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 300<<10) // 300 KiB
	r := dist.NewRand(4)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}
	wantSum := sha256.Sum256(payload)

	go func() {
		s, _, err := server.Accept()
		if err != nil {
			return
		}
		io.Copy(s, s)
		s.Close()
	}()

	s, err := client.OpenStream("bulk")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Write(payload)
		s.Close()
	}()
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) {
		t.Fatalf("echoed %d bytes, want %d", len(got), len(payload))
	}
	if sha256.Sum256(got) != wantSum {
		t.Fatal("payload corrupted across the lossy link")
	}
}

func TestManyConcurrentStreams(t *testing.T) {
	at, bt := newChanPair(0.02, 0.02, 5)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	go func() {
		for {
			s, _, err := server.Accept()
			if err != nil {
				return
			}
			go func(s *Stream) {
				io.Copy(s, s)
				s.Close()
			}(s)
		}
	}()

	const streams = 12
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := client.OpenStream("multi")
			if err != nil {
				errs <- err
				return
			}
			msg := bytes.Repeat([]byte{byte(i + 1)}, 4096+i*17)
			go func() {
				s.Write(msg)
				s.Close()
			}()
			got, err := io.ReadAll(s)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- errors.New("stream payload mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStreamIDParity(t *testing.T) {
	at, bt := newChanPair(0, 0, 6)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()
	s1, _ := client.OpenStream("a")
	s2, _ := client.OpenStream("b")
	if s1.ID()%2 != 1 || s2.ID()%2 != 1 {
		t.Fatal("client streams must use odd IDs")
	}
	if s1.ID() == s2.ID() {
		t.Fatal("duplicate stream IDs")
	}
}

func TestCloseUnblocksEverything(t *testing.T) {
	at, bt := newChanPair(0, 0, 7)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)

	s, err := client.OpenStream("x")
	if err != nil {
		t.Fatal(err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := s.Read(make([]byte, 10))
		readDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	client.Close()
	server.Close()
	select {
	case err := <-readDone:
		if err == nil {
			t.Fatal("blocked Read returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Read still blocked after Close")
	}
}

func TestCloseUnblocksAccept(t *testing.T) {
	at, bt := newChanPair(0, 0, 13)
	New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	acceptDone := make(chan error, 1)
	go func() {
		_, _, err := server.Accept()
		acceptDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	server.Close()
	select {
	case err := <-acceptDone:
		if err == nil {
			t.Fatal("Accept returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept still blocked after Close")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	at, bt := newChanPair(0, 0, 8)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()
	s, _ := client.OpenStream("x")
	s.Close()
	if _, err := s.Write([]byte("late")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestOpenOnClosedTunnel(t *testing.T) {
	at, bt := newChanPair(0, 0, 9)
	client := New(at, testConfig(), true)
	New(bt, testConfig(), false)
	client.Close()
	if _, err := client.OpenStream("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err %v, want ErrClosed", err)
	}
}

func TestRuntAndTruncatedDatagramsIgnored(t *testing.T) {
	at, bt := newChanPair(0, 0, 10)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()
	// Inject garbage at the raw transport level.
	at.WriteDatagram([]byte{1, 2, 3})
	bad := make([]byte, headerLen)
	bad[0] = frameData
	bad[9] = 0xff // claims 65280-byte payload, carries none
	bad[10] = 0
	at.WriteDatagram(bad)
	// The tunnel must still work.
	s, err := client.OpenStream("ok")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Write([]byte("fine"))
		s.Close()
	}()
	srv, _, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(srv)
	if string(got) != "fine" {
		t.Fatalf("got %q", got)
	}
}

func TestDataBeforeOpenIsHarmless(t *testing.T) {
	// A DATA frame arriving before its stream's OPEN (lost or reordered)
	// must be dropped silently — a reset here would race the
	// retransmitted OPEN and kill a healthy stream.
	at, bt := newChanPair(0, 0, 11)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()
	buf := make([]byte, headerLen+1)
	buf[0] = frameData
	buf[4] = 99 // stream id 99, never opened
	buf[10] = 1
	buf[headerLen] = 'x'
	at.WriteDatagram(buf)
	time.Sleep(30 * time.Millisecond)
	// The tunnel must still accept new streams normally.
	s, err := client.OpenStream("still-alive")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Write([]byte("ok"))
		s.Close()
	}()
	srv, _, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(srv)
	if string(got) != "ok" {
		t.Fatalf("got %q", got)
	}
}

func TestLostOpenRecoveredByRetransmission(t *testing.T) {
	// Force the very first datagram (the OPEN) to be lost, then verify
	// the ARQ re-establishes the stream and delivers everything.
	at, bt := newChanPair(0, 0, 14)
	at.mu.Lock()
	at.loss = 1.0 // lose everything for now
	at.mu.Unlock()
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	s, err := client.OpenStream("recover")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		s.Write([]byte("through the storm"))
		s.Close()
	}()
	time.Sleep(30 * time.Millisecond) // OPEN and first data are gone
	at.mu.Lock()
	at.loss = 0
	at.mu.Unlock()

	srv, dst, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if dst != "recover" {
		t.Fatalf("dst %q", dst)
	}
	got, err := io.ReadAll(srv)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "through the storm" {
		t.Fatalf("got %q", got)
	}
}

func TestHalfCloseDeliversEOFAfterData(t *testing.T) {
	at, bt := newChanPair(0, 0, 12)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	s, _ := client.OpenStream("half")
	s.Write([]byte("tail"))
	s.Close()

	srv, _, err := server.Accept()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := io.ReadFull(srv, buf[:4])
	if err != nil || n != 4 {
		t.Fatalf("read %d, %v", n, err)
	}
	if _, err := srv.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after FIN, got %v", err)
	}
	// The server can still write back after the client's half-close.
	if _, err := srv.Write([]byte("resp")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "resp" {
		t.Fatalf("got %q", got)
	}
}

func TestEarlyDataReplayedAfterLateOpen(t *testing.T) {
	// Deliver DATA before its OPEN (jitter reordering): once the OPEN
	// arrives the buffered first flight must replay immediately, without
	// waiting out an RTO.
	cfg := testConfig()
	cfg.RTO = 5 * time.Second // a retransmission would blow the deadline
	at, bt := newChanPair(0, 0, 15)
	client := New(at, cfg, true)
	server := New(bt, cfg, false)
	defer client.Close()
	defer server.Close()

	// Handcraft the reordered flight for stream id 1: DATA seq 1, then
	// FIN seq 2, then the OPEN (seq 0).
	payload := []byte("early bird")
	buf := make([]byte, headerLen+len(payload))
	buf[0] = frameData
	buf[4] = 1 // stream id
	buf[8] = 1 // seq 1
	buf[9] = byte(len(payload) >> 8)
	buf[10] = byte(len(payload))
	copy(buf[headerLen:], payload)
	at.WriteDatagram(buf)

	fin := make([]byte, headerLen)
	fin[0] = frameFin
	fin[4] = 1
	fin[8] = 2
	at.WriteDatagram(fin)

	open := make([]byte, headerLen+3)
	open[0] = frameOpen
	open[4] = 1
	open[10] = 3
	copy(open[headerLen:], "dst")
	at.WriteDatagram(open)

	done := make(chan string, 1)
	go func() {
		s, _, err := server.Accept()
		if err != nil {
			done <- "accept error"
			return
		}
		data, _ := io.ReadAll(s)
		done <- string(data)
	}()
	select {
	case got := <-done:
		if got != "early bird" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("early data not replayed promptly (waited past any jitter, under the 5s RTO)")
	}
}

func TestRawDatagrams(t *testing.T) {
	at, bt := newChanPair(0, 0, 16)
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()

	if err := client.SendRaw(7, []byte("dns query")); err != nil {
		t.Fatal(err)
	}
	d, err := server.RecvRaw()
	if err != nil {
		t.Fatal(err)
	}
	if d.FlowID != 7 || string(d.Payload) != "dns query" {
		t.Fatalf("got %+v", d)
	}
	// And back.
	if err := server.SendRaw(7, []byte("dns answer")); err != nil {
		t.Fatal(err)
	}
	d, err = client.RecvRaw()
	if err != nil || string(d.Payload) != "dns answer" {
		t.Fatalf("return path: %+v %v", d, err)
	}
}

func TestRawDatagramsAreUnreliable(t *testing.T) {
	at, bt := newChanPair(1.0, 0, 17) // total loss
	client := New(at, testConfig(), true)
	server := New(bt, testConfig(), false)
	defer client.Close()
	defer server.Close()
	if err := client.SendRaw(1, []byte("vanishes")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		server.RecvRaw()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("raw datagram survived a fully lossy link — it must not be retransmitted")
	case <-time.After(5 * testConfig().RTO):
	}
}

func TestRawOnClosedTunnel(t *testing.T) {
	at, bt := newChanPair(0, 0, 18)
	client := New(at, testConfig(), true)
	New(bt, testConfig(), false)
	client.Close()
	if err := client.SendRaw(1, []byte("x")); err == nil {
		t.Fatal("send on closed tunnel accepted")
	}
	if _, err := client.RecvRaw(); err == nil {
		t.Fatal("recv on closed tunnel accepted")
	}
}

func TestAdaptiveRTOLearnsLinkRTT(t *testing.T) {
	cfg := testConfig()
	cfg.RTO = 400 * time.Millisecond // pessimistic initial
	at, bt := newChanPair(0, 0, 19)
	client := New(at, cfg, true)
	server := New(bt, cfg, false)
	defer client.Close()
	defer server.Close()

	go func() {
		for {
			s, _, err := server.Accept()
			if err != nil {
				return
			}
			go func(s *Stream) {
				io.Copy(io.Discard, s)
			}(s)
		}
	}()

	s, err := client.OpenStream("fast-link")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.Write(bytes.Repeat([]byte{1}, 256)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	deadline := time.Now().Add(3 * time.Second)
	for client.RTTEstimate() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	srtt := client.RTTEstimate()
	if srtt == 0 {
		t.Fatal("no RTT samples collected")
	}
	// In-memory link: RTT is microseconds-to-milliseconds; the adaptive
	// RTO must have dropped well below the 400 ms anchor.
	if rto := client.currentRTO(); rto >= cfg.RTO {
		t.Fatalf("RTO %v did not adapt below the initial %v (srtt %v)", rto, cfg.RTO, srtt)
	}
	if rto := client.currentRTO(); rto < cfg.RTO/8 {
		t.Fatalf("RTO %v fell below the spurious-retransmit floor", rto)
	}
}
