package tunnel

import "sync"

// bufPool recycles the fixed-size byte buffers of the datagram hot path:
// one pool for wire frames (header + payload) and one for the DATA
// payload copies Write keeps until acknowledgement. Oversized requests
// fall back to plain allocation and undersized returns are dropped, so
// the pool only ever holds full-size buffers and get never returns a
// buffer another owner could still touch.
type bufPool struct {
	size int
	p    sync.Pool
}

func newBufPool(size int) *bufPool {
	bp := &bufPool{size: size}
	bp.p.New = func() any { return make([]byte, size) }
	return bp
}

// get returns a buffer of length n. Buffers longer than the pool's size
// class are allocated directly (and later dropped by put).
func (bp *bufPool) get(n int) []byte {
	if n > bp.size {
		return make([]byte, n)
	}
	return bp.p.Get().([]byte)[:n]
}

// put recycles b if it belongs to this pool's size class. Foreign
// buffers (OPEN destinations, oversized fallbacks, nil FIN payloads)
// are left to the garbage collector.
func (bp *bufPool) put(b []byte) {
	if cap(b) < bp.size {
		return
	}
	bp.p.Put(b[:bp.size])
}
