package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"satwatch/internal/obs"
)

// fixtureReport builds a minimal but schema-complete BENCH report without
// running the pipeline.
func fixtureReport(t *testing.T) *Report {
	t.Helper()
	metrics := json.RawMessage(`{
		"netsim_flows_total": {"kind": "counter", "help": "h", "unit": "flows", "value": 1000},
		"netsim_pass_b_seconds": {"kind": "timer", "help": "h", "unit": "seconds", "value": 0.5, "count": 1}
	}`)
	return &Report{
		Schema: Schema, Kind: Kind,
		Created: time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC),
		Version: "test", Env: Environment(),
		Scenarios: []Result{{
			Scenario:       Scenario{Name: "small-clear-p1", Customers: 20, Days: 1, Seed: 42, Parallelism: 1},
			WallSeconds:    2.0,
			TimingsSeconds: map[string]float64{"pass_a": 0.5, "pass_b": 1.0},
			Flows:          1000, DNS: 400, FlowsPerSecond: 500, Workers: 1,
			Mem:           obs.MemInfo{HeapAllocBytes: 1 << 20, TotalAllocBytes: 1 << 24, TotalAllocs: 22000, NumGC: 3, GCPauseTotalSeconds: 0.001, PeakHeapBytes: 1 << 21},
			AllocsPerFlow: 22, AllocBytesPerFlow: 3400,
			Allocs: map[string]obs.AllocInfo{
				"pass_a": {Bytes: 1 << 22, Objects: 5000},
				"pass_b": {Bytes: 3 << 22, Objects: 15000},
			},
			Outputs: map[string]string{"flows.tsv": "sha256:aaaa", "dns.tsv": "sha256:bbbb"},
			Metrics: metrics,
		}},
	}
}

func marshalToFile(t *testing.T, name string, v any) string {
	t.Helper()
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDetectArtifactAllThreeSchemas(t *testing.T) {
	// bench
	benchPath := marshalToFile(t, "BENCH_x.json", fixtureReport(t))
	a, err := ReadArtifact(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != ArtifactBench {
		t.Errorf("BENCH file detected as %q", a.Kind)
	}
	for _, key := range []string{
		"small-clear-p1.wall_seconds",
		"small-clear-p1.timings.pass_b",
		"small-clear-p1.flows",
		"small-clear-p1.mem.peak_heap_bytes",
		"small-clear-p1.mem.total_allocs",
		"small-clear-p1.allocs_per_flow",
		"small-clear-p1.alloc_bytes_per_flow",
		"small-clear-p1.allocs.pass_b.bytes",
		"small-clear-p1.allocs.pass_b.objects",
		"small-clear-p1.metrics.netsim_flows_total",
		"small-clear-p1.metrics.netsim_pass_b_seconds.count",
	} {
		if _, ok := a.Values[key]; !ok {
			t.Errorf("bench flatten is missing %q", key)
		}
	}
	if a.Digests["small-clear-p1.outputs.flows.tsv"] != "sha256:aaaa" {
		t.Errorf("bench flatten lost the output digest: %v", a.Digests)
	}

	// manifest
	m := obs.NewManifest("satgen", 42)
	m.Parallelism = 2
	m.AddTiming("pass_a", 500*time.Millisecond)
	m.Outputs["flows.tsv"] = "sha256:cccc"
	m.Mem = &obs.MemInfo{TotalAllocBytes: 1 << 20, PeakHeapBytes: 1 << 19}
	m.Trace = &obs.TraceInfo{File: "t.jsonl", SHA256: "sha256:dddd", Sample: 1}
	manifestPath := marshalToFile(t, "manifest.json", m)
	a, err = ReadArtifact(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != ArtifactManifest {
		t.Errorf("manifest detected as %q", a.Kind)
	}
	for _, key := range []string{"seed", "parallelism", "timings.pass_a", "mem.total_alloc_bytes"} {
		if _, ok := a.Values[key]; !ok {
			t.Errorf("manifest flatten is missing %q", key)
		}
	}
	if a.Digests["outputs.flows.tsv"] != "sha256:cccc" || a.Digests["trace"] != "sha256:dddd" {
		t.Errorf("manifest flatten lost digests: %v", a.Digests)
	}

	// metrics dump, produced by the real registry serializer
	reg := obs.NewRegistry()
	reg.Counter("netsim_flows_total", "h", "flows").Add(7)
	reg.Timer("netsim_pass_b_seconds", "h").Observe(250 * time.Millisecond)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	metricsPath := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(metricsPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err = ReadArtifact(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != ArtifactMetrics {
		t.Errorf("metrics dump detected as %q", a.Kind)
	}
	if a.Values["netsim_flows_total"] != 7 {
		t.Errorf("metrics flatten lost the counter: %v", a.Values)
	}
	if a.Values["netsim_pass_b_seconds.count"] != 1 {
		t.Errorf("metrics flatten lost the timer count: %v", a.Values)
	}

	// junk is rejected, not misdetected
	if _, err := DetectArtifact([]byte(`{"foo": {"bar": 1}}`)); err == nil {
		t.Error("junk JSON detected as an artifact")
	}
	if _, err := DetectArtifact([]byte(`{}`)); err == nil {
		t.Error("empty object detected as an artifact")
	}
}

func TestDiffIdenticalFilesIsClean(t *testing.T) {
	p := marshalToFile(t, "BENCH_x.json", fixtureReport(t))
	a, err := ReadArtifact(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadArtifact(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(a, b, Tolerances{Default: 0}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Fatalf("identical artifacts produced regressions: %v", d.Regressions)
	}
}

func TestDiffFlagsInjectedTimingRegression(t *testing.T) {
	base := fixtureReport(t)
	regressed := fixtureReport(t)
	// Inject a 50% pass_b slowdown; the ±10% default must flag it by name.
	regressed.Scenarios[0].TimingsSeconds["pass_b"] *= 1.5
	regressed.Scenarios[0].WallSeconds += 0.5

	ab, err := DetectArtifact(mustJSON(t, base))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := DetectArtifact(mustJSON(t, regressed))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(ab, ar, Tolerances{Default: 0.10}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) == 0 {
		t.Fatal("50% timing regression not flagged")
	}
	if !contains(d.Regressions, "small-clear-p1.timings.pass_b") {
		t.Errorf("regressions do not name the offending metric: %v", d.Regressions)
	}
	var out bytes.Buffer
	d.Render(&out, false)
	if !strings.Contains(out.String(), "small-clear-p1.timings.pass_b") {
		t.Errorf("render does not name the offending metric:\n%s", out.String())
	}

	// A generous tolerance absorbs it.
	d, err = Diff(ab, ar, Tolerances{Default: 0.60}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("60%% tolerance still flagged: %v", d.Regressions)
	}
}

// TestDiffFlagsInjectedAllocRegression is the CI alloc gate's own test:
// under the repo's real bench/ci-tolerances.json, a 2× per-flow allocation
// regression must fail the diff by name, while a within-band 20% wobble
// (machine variation) must pass.
func TestDiffFlagsInjectedAllocRegression(t *testing.T) {
	tol, err := LoadTolerances("../../bench/ci-tolerances.json", 0.10)
	if err != nil {
		t.Fatal(err)
	}

	base := fixtureReport(t)
	regressed := fixtureReport(t)
	regressed.Scenarios[0].AllocsPerFlow *= 2
	regressed.Scenarios[0].AllocBytesPerFlow *= 2
	regressed.Scenarios[0].Mem.TotalAllocs *= 2
	ab, err := DetectArtifact(mustJSON(t, base))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := DetectArtifact(mustJSON(t, regressed))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(ab, ar, tol, false, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"small-clear-p1.allocs_per_flow",
		"small-clear-p1.alloc_bytes_per_flow",
	} {
		if !contains(d.Regressions, name) {
			t.Errorf("2x alloc regression on %s not flagged under ci-tolerances: %v", name, d.Regressions)
		}
	}

	// The same report with benign cross-machine wobble stays green.
	wobble := fixtureReport(t)
	wobble.Scenarios[0].AllocsPerFlow *= 1.2
	wobble.Scenarios[0].AllocBytesPerFlow *= 1.2
	wobble.Scenarios[0].Mem.TotalAllocs = uint64(float64(wobble.Scenarios[0].Mem.TotalAllocs) * 1.5)
	passB := wobble.Scenarios[0].Allocs["pass_b"]
	wobble.Scenarios[0].Allocs["pass_b"] = obs.AllocInfo{Bytes: passB.Bytes + passB.Bytes*4/5, Objects: 20000}
	aw, err := DetectArtifact(mustJSON(t, wobble))
	if err != nil {
		t.Fatal(err)
	}
	d, err = Diff(ab, aw, tol, false, false)
	if err != nil {
		t.Fatal(err)
	}
	var allocRegressions []string
	for _, name := range d.Regressions {
		if strings.Contains(name, "alloc") {
			allocRegressions = append(allocRegressions, name)
		}
	}
	if len(allocRegressions) != 0 {
		t.Errorf("within-band alloc wobble flagged under ci-tolerances: %v", allocRegressions)
	}
}

func TestDiffDigestMismatchAndDrift(t *testing.T) {
	base := fixtureReport(t)
	cur := fixtureReport(t)
	cur.Scenarios[0].Outputs["flows.tsv"] = "sha256:eeee"
	delete(cur.Scenarios[0].TimingsSeconds, "pass_a")

	ab, _ := DetectArtifact(mustJSON(t, base))
	ac, _ := DetectArtifact(mustJSON(t, cur))

	// Even with an infinite numeric tolerance, digest mismatch and key
	// drift are regressions by default.
	d, err := Diff(ab, ac, Tolerances{Default: 1e9}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(d.Regressions, "small-clear-p1.outputs.flows.tsv") {
		t.Errorf("digest mismatch not flagged: %v", d.Regressions)
	}
	if !contains(d.Regressions, "small-clear-p1.timings.pass_a") {
		t.Errorf("dropped metric not flagged as drift: %v", d.Regressions)
	}
	if !contains(d.OnlyOld, "small-clear-p1.timings.pass_a") {
		t.Errorf("dropped metric not in OnlyOld: %v", d.OnlyOld)
	}

	// Both downgrades together make it clean.
	d, err = Diff(ab, ac, Tolerances{Default: 1e9}, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("allow-missing + ignore-digests still flagged: %v", d.Regressions)
	}

	// Mixed artifact kinds refuse to compare.
	m := obs.NewManifest("satgen", 1)
	am, _ := DetectArtifact(mustJSON(t, m))
	if _, err := Diff(ab, am, Tolerances{}, false, false); err == nil {
		t.Error("bench vs manifest compared without error")
	}
}

func TestTolerancesResolution(t *testing.T) {
	tol := Tolerances{
		Default: 0.10,
		Metrics: map[string]float64{
			"*.timings.*":          0.50,
			"*.timings.pass_b":     0.20, // longer pattern wins over *.timings.*
			"small-clear-p1.flows": 0,    // exact match wins over any glob
			"*.workers":            -1,   // negative = excluded
			"small-*.dns":          0.30,
		},
	}
	cases := []struct {
		name string
		want float64
	}{
		{"small-clear-p1.flows", 0},
		{"small-clear-p1.timings.pass_b", 0.20},
		{"small-clear-p1.timings.pass_a", 0.50},
		{"small-clear-p1.workers", -1},
		{"small-clear-p1.dns", 0.30},
		{"unmatched.metric.name", 0.10},
	}
	for _, c := range cases {
		if got := tol.For(c.name); got != c.want {
			t.Errorf("For(%q) = %v, want %v", c.name, got, c.want)
		}
	}

	// Excluded metrics never regress, even on wild changes.
	base := &Artifact{Kind: ArtifactMetrics, Values: map[string]float64{"netsim_workers": 1}, Digests: map[string]string{}}
	cur := &Artifact{Kind: ArtifactMetrics, Values: map[string]float64{"netsim_workers": 8}, Digests: map[string]string{}}
	d, err := Diff(base, cur, Tolerances{Default: 0, Metrics: map[string]float64{"netsim_workers": -1}}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 0 {
		t.Errorf("excluded metric regressed: %v", d.Regressions)
	}
	if !d.Rows[0].Ignored {
		t.Error("excluded metric row not marked Ignored")
	}

	// Zero tolerance means exact: 0→nonzero is a breach.
	base.Values["new_metric"] = 0
	cur.Values["new_metric"] = 0.001
	d, err = Diff(base, cur, Tolerances{Default: 0.5, Metrics: map[string]float64{"netsim_workers": -1}}, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(d.Regressions, "new_metric") {
		t.Errorf("0→nonzero not flagged: %v", d.Regressions)
	}
}

func TestLoadTolerancesFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "tol.json")
	if err := os.WriteFile(p, []byte(`{"default": 0.25, "metrics": {"*.flows": 0}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tol, err := LoadTolerances(p, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if tol.Default != 0.25 {
		t.Errorf("file default %v did not override flag fallback", tol.Default)
	}
	if tol.For("x.flows") != 0 {
		t.Errorf("glob from file not applied: %v", tol.For("x.flows"))
	}

	// File without a default keeps the flag fallback.
	if err := os.WriteFile(p, []byte(`{"metrics": {"a": 0.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	tol, err = LoadTolerances(p, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if tol.Default != 0.10 {
		t.Errorf("flag fallback lost: %v", tol.Default)
	}

	// Bad glob patterns fail eagerly.
	if err := os.WriteFile(p, []byte(`{"metrics": {"[bad": 0.5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTolerances(p, 0.10); err == nil {
		t.Error("bad pattern accepted")
	}

	// Missing file is an error (distinct from empty name = defaults).
	if _, err := LoadTolerances(filepath.Join(t.TempDir(), "nope.json"), 0.10); err == nil {
		t.Error("missing tolerances file accepted")
	}
	tol, err = LoadTolerances("", 0.42)
	if err != nil || tol.Default != 0.42 {
		t.Errorf("empty file name should mean flag defaults: %v %v", tol, err)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
