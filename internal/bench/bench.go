// Package bench is the pipeline's performance observatory: a fixed
// scenario matrix (population size × fault schedule × parallelism), a
// runner that drives the in-process pipeline (the same netsim → analytics
// path the CLIs and the root bench_test.go harness use) while capturing
// per-stage wall times, throughput, memory behaviour and a full metrics
// snapshot, and a schema-versioned BENCH_*.json artifact that cmd/satdiff
// can compare run-to-run to catch regressions. OBSERVABILITY.md's
// "Benchmarking and regression detection" section is the runbook.
package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path"
	"runtime"
	"strings"
	"time"

	"satwatch/internal/analytics"
	"satwatch/internal/faults"
	"satwatch/internal/linkemu"
	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/pep"
	"satwatch/internal/tstat"
	"satwatch/internal/tunnel"
)

// Schema is the BENCH file schema version; bump on breaking changes so
// satdiff can refuse to compare incompatible artifacts.
const Schema = 1

// Kind is the BENCH artifact discriminator satdiff auto-detects.
const Kind = "satbench"

// Scenario is one cell of the benchmark matrix.
type Scenario struct {
	// Name identifies the scenario across runs ("medium-stress-pmax");
	// satdiff matches scenarios by name.
	Name string `json:"name"`
	// Customers / Days / Seed parameterize the simulated deployment.
	Customers int    `json:"customers"`
	Days      int    `json:"days"`
	Seed      uint64 `json:"seed"`
	// Parallelism is the worker count (0 = GOMAXPROCS, the "pmax"
	// scenarios). Outputs are byte-identical at any value; only the
	// timings move.
	Parallelism int `json:"parallelism"`
	// Faults is a fault-schedule preset name ("" = clear sky).
	Faults string `json:"faults,omitempty"`
	// Constellation is the constellation backend ("" = geo).
	Constellation string `json:"constellation,omitempty"`
	// PepLoad, when set, switches the scenario from the netsim pipeline
	// to the concurrent split-TCP load harness (pep.RunLoad): real
	// sockets through the tunnel/PEP stack over an emulated link.
	PepLoad *PepLoadSpec `json:"pep_load,omitempty"`
}

// PepLoadSpec parameterizes a pepload scenario.
type PepLoadSpec struct {
	Flows       int `json:"flows"`
	Concurrency int `json:"concurrency"`
}

// identity is the output-determinism key: scenarios that share it must
// produce byte-identical pipeline outputs regardless of Parallelism.
func (s Scenario) identity() string {
	id := fmt.Sprintf("%d/%d/%d/%s/%s", s.Customers, s.Days, s.Seed, s.Faults, s.Constellation)
	if s.PepLoad != nil {
		// Load runs measure a live network, not a deterministic pipeline;
		// keep them out of the netsim digest groups.
		id += fmt.Sprintf("/pepload-%d-%d", s.PepLoad.Flows, s.PepLoad.Concurrency)
	}
	return id
}

// The matrix sizes. Small enough that the full matrix stays in CI
// territory, large enough that stage timings are meaningful.
var sizes = []struct {
	name      string
	customers int
}{
	{"small", 20},
	{"medium", 60},
	{"large", 160},
}

func matrix(seed uint64, sizeNames ...string) []Scenario {
	keep := map[string]bool{}
	for _, n := range sizeNames {
		keep[n] = true
	}
	var out []Scenario
	for _, sz := range sizes {
		if len(keep) > 0 && !keep[sz.name] {
			continue
		}
		// GEO scenarios keep their historical names ("small-clear-p1") so
		// BENCH artifacts stay comparable across the constellation change;
		// LEO variants interleave as "small-leo-clear-p1".
		for _, con := range []string{"", "leo"} {
			sname := sz.name
			if con != "" {
				sname += "-" + con
			}
			for _, flt := range []string{"", "stress"} {
				fname := "clear"
				if flt != "" {
					fname = flt
				}
				for _, par := range []struct {
					name string
					n    int
				}{{"p1", 1}, {"pmax", 0}} {
					out = append(out, Scenario{
						Name:          sname + "-" + fname + "-" + par.name,
						Customers:     sz.customers,
						Days:          1,
						Seed:          seed,
						Parallelism:   par.n,
						Faults:        flt,
						Constellation: con,
					})
				}
			}
		}
	}
	// The pepload scenarios exercise the real-socket tunnel/PEP stack
	// under concurrent load instead of the simulator pipeline. They are
	// cheap enough to ride in every matrix, including the CI subset.
	for _, flt := range []string{"", "stress"} {
		fname := "clear"
		if flt != "" {
			fname = flt
		}
		out = append(out, Scenario{
			Name:    "pepload-200-" + fname,
			Days:    1,
			Seed:    seed,
			Faults:  flt,
			PepLoad: &PepLoadSpec{Flows: 200, Concurrency: 100},
		})
	}
	return out
}

// Matrix is the full scenario matrix: {small, medium, large} × {geo, leo}
// × {clear, stress} × {1 worker, GOMAXPROCS workers} plus the two pepload
// load-harness scenarios — 26 scenarios.
func Matrix(seed uint64) []Scenario { return matrix(seed) }

// ReducedMatrix is the CI subset: small and medium sizes only, plus the
// pepload scenarios — 18 scenarios, a couple of seconds each on a laptop.
func ReducedMatrix(seed uint64) []Scenario { return matrix(seed, "small", "medium") }

// ByName finds a scenario of the full matrix by name.
func ByName(name string, seed uint64) (Scenario, bool) {
	for _, sc := range Matrix(seed) {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Result is one scenario's measured outcome.
type Result struct {
	Scenario Scenario `json:"scenario"`
	// WallSeconds is the scenario's total wall time (generate + analyze).
	WallSeconds float64 `json:"wall_seconds"`
	// TimingsSeconds are the per-stage wall times, taken from the same
	// manifest plumbing the CLIs use (pass_a, mac_prebuild, pass_b,
	// merge) plus the generate and analyze stage totals.
	TimingsSeconds map[string]float64 `json:"timings_seconds"`
	// Flows / DNS are the record counts of the run.
	Flows int `json:"flows"`
	DNS   int `json:"dns"`
	// FlowsPerSecond is Flows over the generate stage wall time.
	FlowsPerSecond float64 `json:"flows_per_second"`
	// Workers is the effective parallelism the run resolved to.
	Workers int `json:"workers"`
	// Mem is the scenario's memory behaviour (deltas over the run plus
	// the sampled peak heap).
	Mem obs.MemInfo `json:"mem"`
	// AllocsPerFlow / AllocBytesPerFlow are the scenario's allocation cost
	// per synthesized flow (run-wide allocation-counter deltas over the
	// flow count) — the bench's primary alloc regression signals.
	AllocsPerFlow     float64 `json:"allocs_per_flow,omitempty"`
	AllocBytesPerFlow float64 `json:"alloc_bytes_per_flow,omitempty"`
	// Allocs breaks the allocation cost down by pipeline stage, from the
	// same manifest plumbing as TimingsSeconds (pass_a, mac_prebuild,
	// pass_b, merge).
	Allocs map[string]obs.AllocInfo `json:"allocs,omitempty"`
	// Outputs digests the pipeline outputs exactly as the CLIs would
	// serialize them ("sha256:<hex>" per logical file). Equal-identity
	// scenarios must digest identically; see Report.VerifyDigests.
	Outputs map[string]string `json:"outputs"`
	// Metrics is the full obs registry snapshot after the run (the same
	// JSON object `-metrics FILE` dumps).
	Metrics json.RawMessage `json:"metrics"`
}

// Env fingerprints the machine a BENCH file was recorded on, so diffs
// across hosts are recognizably apples-to-oranges.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Environment captures the current process's fingerprint.
func Environment() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel best-effort reads the CPU model name (linux /proc/cpuinfo;
// empty elsewhere).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Report is the BENCH artifact: environment fingerprint plus one Result
// per scenario.
type Report struct {
	Schema    int       `json:"schema"`
	Kind      string    `json:"kind"`
	Created   time.Time `json:"created"`
	Version   string    `json:"version"`
	Env       Env       `json:"env"`
	Scenarios []Result  `json:"scenarios"`
	// Profiles records the profile artifacts when the matrix ran under
	// satbench -profile (one capture spanning every scenario). Excluded
	// from satdiff comparison: profiles are observations, not outputs.
	Profiles *obs.ProfilesInfo `json:"profiles,omitempty"`
}

// RunScenario executes one scenario in-process and measures it. The
// Default metrics registry is reset at scenario start (exactly like the
// CLIs do at run start), so the embedded snapshot reflects this scenario
// only.
func RunScenario(sc Scenario) (Result, error) {
	var sched *faults.Schedule
	if sc.Faults != "" {
		var err error
		sched, err = faults.Preset(sc.Faults, sc.Days, sc.Seed)
		if err != nil {
			return Result{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}
	if sc.PepLoad != nil {
		return runPepLoadScenario(sc, sched)
	}
	cfg := netsim.Config{
		Customers:     sc.Customers,
		Days:          sc.Days,
		Seed:          sc.Seed,
		Parallelism:   sc.Parallelism,
		Faults:        sched,
		Constellation: sc.Constellation,
	}

	obs.Default.Reset()
	runtime.GC()
	sampler := obs.StartMemSampler(5 * time.Millisecond)
	start := time.Now()
	out, err := netsim.Run(cfg)
	if err != nil {
		sampler.Stop()
		return Result{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	generate := time.Since(start)
	if st := out.Stats.Status(); st != netsim.StatusOK {
		sampler.Stop()
		return Result{}, fmt.Errorf("scenario %s: run completed %s (%d errors)", sc.Name, st, len(out.Stats.Errors))
	}

	analyzeStart := time.Now()
	ds := analytics.NewDataset(out, sc.Days)
	analyze := time.Since(analyzeStart)
	wall := time.Since(start)
	mem := sampler.Stop()

	// Reuse the manifest plumbing for the simulator's per-stage wall
	// times, then extend it with the harness stages.
	m := netsim.ManifestFor("satbench", cfg, out)
	m.AddTiming("generate", generate)
	m.AddTiming("analyze", analyze)

	outputs := map[string]string{}
	for name, write := range map[string]func(io.Writer) error{
		"flows.tsv":    func(w io.Writer) error { return tstat.WriteFlows(w, out.Flows) },
		"dns.tsv":      func(w io.Writer) error { return tstat.WriteDNS(w, out.DNS) },
		"meta.tsv":     func(w io.Writer) error { return netsim.WriteMeta(w, out.Meta) },
		"prefixes.tsv": func(w io.Writer) error { return netsim.WritePrefixes(w, out.CountryPrefixes) },
	} {
		h := sha256.New()
		if err := write(h); err != nil {
			return Result{}, fmt.Errorf("scenario %s: digest %s: %w", sc.Name, name, err)
		}
		outputs[name] = "sha256:" + hex.EncodeToString(h.Sum(nil))
	}

	var metrics bytes.Buffer
	if err := obs.Default.WriteJSON(&metrics); err != nil {
		return Result{}, fmt.Errorf("scenario %s: metrics snapshot: %w", sc.Name, err)
	}

	fps := 0.0
	if generate > 0 {
		fps = float64(len(ds.Flows)) / generate.Seconds()
	}
	allocsPerFlow, allocBytesPerFlow := 0.0, 0.0
	if n := len(out.Flows); n > 0 {
		allocsPerFlow = float64(mem.TotalAllocs) / float64(n)
		allocBytesPerFlow = float64(mem.TotalAllocBytes) / float64(n)
	}
	return Result{
		Scenario:          sc,
		WallSeconds:       wall.Seconds(),
		TimingsSeconds:    m.TimingsSeconds,
		Flows:             len(out.Flows),
		DNS:               len(out.DNS),
		FlowsPerSecond:    fps,
		Workers:           out.Stats.Workers,
		Mem:               mem,
		AllocsPerFlow:     allocsPerFlow,
		AllocBytesPerFlow: allocBytesPerFlow,
		Allocs:            m.Allocs,
		Outputs:           outputs,
		Metrics:           json.RawMessage(bytes.TrimSpace(metrics.Bytes())),
	}, nil
}

// runPepLoadScenario measures a pepload scenario: concurrent split-TCP
// flows through the real tunnel/PEP stack over a scaled-down emulated
// link (20 ms one way, the same shape the pep package's own load tests
// use, so CI stays fast). A fault schedule, when present, is played into
// the live link at high speedup. Leaked tunnel streams after the drain
// fail the scenario outright — that is the harness's core contract.
func runPepLoadScenario(sc Scenario, sched *faults.Schedule) (Result, error) {
	obs.Default.Reset()
	runtime.GC()
	sampler := obs.StartMemSampler(5 * time.Millisecond)
	start := time.Now()
	rep, err := pep.RunLoad(pep.LoadConfig{
		Flows:        sc.PepLoad.Flows,
		Concurrency:  sc.PepLoad.Concurrency,
		Link:         linkemu.Link{Delay: 20 * time.Millisecond, Jitter: 4 * time.Millisecond, Loss: 0.005},
		Tunnel:       tunnel.Config{RTO: 120 * time.Millisecond, Window: 64, MaxPayload: 1200},
		Seed:         sc.Seed,
		Faults:       sched,
		FaultSpeedup: 20000,
		DrainTimeout: 60 * time.Second,
	})
	wall := time.Since(start)
	mem := sampler.Stop()
	if err != nil {
		return Result{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if leaked := rep.Leaked(); leaked > 0 {
		return Result{}, fmt.Errorf("scenario %s: %d tunnel streams leaked after drain (cpe=%d gw=%d)",
			sc.Name, leaked, rep.LeakedCPE, rep.LeakedGW)
	}

	var metrics bytes.Buffer
	if err := obs.Default.WriteJSON(&metrics); err != nil {
		return Result{}, fmt.Errorf("scenario %s: metrics snapshot: %w", sc.Name, err)
	}
	return Result{
		Scenario:    sc,
		WallSeconds: wall.Seconds(),
		TimingsSeconds: map[string]float64{
			"load":  rep.Duration.Seconds(),
			"drain": (wall - rep.Duration).Seconds(),
		},
		Flows:          rep.Flows,
		FlowsPerSecond: rep.FlowsPerSecond,
		Workers:        sc.PepLoad.Concurrency,
		Mem:            mem,
		Outputs:        map[string]string{},
		Metrics:        json.RawMessage(bytes.TrimSpace(metrics.Bytes())),
	}, nil
}

// RunMatrix runs every scenario in order and assembles the Report. logf,
// when non-nil, receives one progress line per completed scenario.
func RunMatrix(scs []Scenario, logf func(format string, args ...any)) (*Report, error) {
	r := &Report{
		Schema:  Schema,
		Kind:    Kind,
		Created: time.Now().UTC(),
		Version: obs.Version(),
		Env:     Environment(),
	}
	for _, sc := range scs {
		res, err := RunScenario(sc)
		if err != nil {
			return nil, err
		}
		if logf != nil {
			logf("%-20s %7.2fs  %8d flows  %9.0f flows/s  peak heap %s",
				sc.Name, res.WallSeconds, res.Flows, res.FlowsPerSecond, formatBytes(res.Mem.PeakHeapBytes))
		}
		r.Scenarios = append(r.Scenarios, res)
	}
	return r, nil
}

// VerifyDigests checks the determinism contract inside one report:
// scenarios sharing (customers, days, seed, faults) must have produced
// byte-identical outputs no matter their parallelism. It returns the
// number of equal-output groups checked, or an error naming the first
// divergence.
func (r *Report) VerifyDigests() (groups int, err error) {
	byIdentity := map[string]*Result{}
	for i := range r.Scenarios {
		res := &r.Scenarios[i]
		key := res.Scenario.identity()
		first, ok := byIdentity[key]
		if !ok {
			byIdentity[key] = res
			continue
		}
		for name, want := range first.Outputs {
			if got := res.Outputs[name]; got != want {
				return 0, fmt.Errorf("determinism violation: %s %s digests %s, %s digests %s",
					res.Scenario.Name, name, got, first.Scenario.Name, want)
			}
		}
	}
	return len(byIdentity), nil
}

// DefaultFileName is the conventional artifact name for a report created
// at t: BENCH_<UTC-stamp>.json.
func DefaultFileName(t time.Time) string {
	return "BENCH_" + t.UTC().Format("20060102T150405Z") + ".json"
}

// WriteFile serializes the report atomically (temp + rename, like every
// other pipeline output).
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	return obs.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(append(b, '\n'))
		return err
	})
}

// ReadReport parses a BENCH file and validates its schema version.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.Kind != Kind {
		return nil, fmt.Errorf("bench: %s is not a %s artifact (kind %q)", path, Kind, r.Kind)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %d, this build understands %d", path, r.Schema, Schema)
	}
	return &r, nil
}

// Table renders the human-readable scenario summary printed on stdout.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %8s %8s %8s %8s %9s %11s %11s %10s  %s\n",
		"scenario", "wall", "pass_a", "pass_b", "flows", "flows/s", "alloc", "allocs/flow", "peak heap", "flows.tsv")
	for i := range r.Scenarios {
		res := &r.Scenarios[i]
		fmt.Fprintf(&sb, "%-20s %7.2fs %7.2fs %7.2fs %8d %9.0f %11s %11.0f %10s  %s\n",
			res.Scenario.Name, res.WallSeconds,
			res.TimingsSeconds["pass_a"], res.TimingsSeconds["pass_b"],
			res.Flows, res.FlowsPerSecond,
			formatBytes(res.Mem.TotalAllocBytes), res.AllocsPerFlow,
			formatBytes(res.Mem.PeakHeapBytes),
			shortDigest(res.Outputs["flows.tsv"]))
	}
	return sb.String()
}

func shortDigest(d string) string {
	d = strings.TrimPrefix(d, "sha256:")
	if len(d) > 12 {
		d = d[:12]
	}
	return d
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Filter keeps the scenarios whose name matches the glob (path.Match
// syntax); an empty glob keeps everything.
func Filter(scs []Scenario, glob string) ([]Scenario, error) {
	if glob == "" {
		return scs, nil
	}
	var out []Scenario
	for _, sc := range scs {
		ok, err := path.Match(glob, sc.Name)
		if err != nil {
			return nil, fmt.Errorf("bench: bad scenario glob %q: %w", glob, err)
		}
		if ok {
			out = append(out, sc)
		}
	}
	return out, nil
}
