package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path"
	"sort"
	"strings"

	"satwatch/internal/obs"
)

// The artifact kinds satdiff auto-detects from a file's schema.
const (
	ArtifactBench    = "bench"    // BENCH_*.json written by satbench
	ArtifactManifest = "manifest" // manifest.json written next to run outputs
	ArtifactMetrics  = "metrics"  // the -metrics registry dump of the CLIs
)

// Artifact is the schema-neutral comparison view of a perf record: a flat
// name → value map for everything numeric and a name → digest map for
// content hashes. Flattened key shapes per kind:
//
//	bench:    <scenario>.wall_seconds, <scenario>.timings.<stage>,
//	          <scenario>.flows, <scenario>.mem.<field>,
//	          <scenario>.allocs_per_flow, <scenario>.alloc_bytes_per_flow,
//	          <scenario>.allocs.<stage>.{bytes,objects},
//	          <scenario>.metrics.<metric>[.count],
//	          digests <scenario>.outputs.<file>
//	manifest: seed, parallelism, timings.<stage>, mem.<field>,
//	          alloc_bytes_per_flow, allocs.<stage>.{bytes,objects},
//	          digests outputs.<file> and trace
//	metrics:  <metric> (value), <metric>.count (timers/histograms)
type Artifact struct {
	Kind    string
	Values  map[string]float64
	Digests map[string]string
}

// registryDump mirrors the obs WriteJSON per-metric object.
type registryDump map[string]struct {
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	Count *int64  `json:"count"`
}

func (a *Artifact) addRegistry(prefix string, dump registryDump) {
	for name, m := range dump {
		a.Values[prefix+name] = m.Value
		if m.Count != nil {
			a.Values[prefix+name+".count"] = float64(*m.Count)
		}
	}
}

// DetectArtifact parses raw JSON, recognizes which of the three schemas
// it carries, and flattens it for comparison.
func DetectArtifact(data []byte) (*Artifact, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("bench: not a JSON object: %w", err)
	}
	switch {
	case string(probe["kind"]) == `"`+Kind+`"`:
		return flattenBench(data)
	case probe["tool"] != nil && probe["timings_seconds"] != nil:
		return flattenManifest(data)
	default:
		return flattenMetrics(data)
	}
}

// ReadArtifact loads and detects one artifact file.
func ReadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := DetectArtifact(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

func newArtifact(kind string) *Artifact {
	return &Artifact{Kind: kind, Values: map[string]float64{}, Digests: map[string]string{}}
}

func flattenBench(data []byte) (*Artifact, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse BENCH artifact: %w", err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("bench: BENCH schema %d, this build understands %d", r.Schema, Schema)
	}
	a := newArtifact(ArtifactBench)
	for i := range r.Scenarios {
		res := &r.Scenarios[i]
		p := res.Scenario.Name + "."
		a.Values[p+"wall_seconds"] = res.WallSeconds
		a.Values[p+"flows"] = float64(res.Flows)
		a.Values[p+"dns"] = float64(res.DNS)
		a.Values[p+"flows_per_second"] = res.FlowsPerSecond
		a.Values[p+"workers"] = float64(res.Workers)
		for stage, secs := range res.TimingsSeconds {
			a.Values[p+"timings."+stage] = secs
		}
		addMem(a, p+"mem.", res.Mem.HeapAllocBytes, res.Mem.TotalAllocBytes,
			res.Mem.TotalAllocs, uint64(res.Mem.NumGC), res.Mem.GCPauseTotalSeconds, res.Mem.PeakHeapBytes)
		a.Values[p+"allocs_per_flow"] = res.AllocsPerFlow
		a.Values[p+"alloc_bytes_per_flow"] = res.AllocBytesPerFlow
		addAllocs(a, p+"allocs.", res.Allocs)
		if len(res.Metrics) > 0 {
			var dump registryDump
			if err := json.Unmarshal(res.Metrics, &dump); err != nil {
				return nil, fmt.Errorf("bench: scenario %s metrics: %w", res.Scenario.Name, err)
			}
			a.addRegistry(p+"metrics.", dump)
		}
		for name, digest := range res.Outputs {
			a.Digests[p+"outputs."+name] = digest
		}
	}
	return a, nil
}

func addMem(a *Artifact, prefix string, heap, total, totalAllocs, numGC uint64, pause float64, peak uint64) {
	a.Values[prefix+"heap_alloc_bytes"] = float64(heap)
	a.Values[prefix+"total_alloc_bytes"] = float64(total)
	a.Values[prefix+"total_allocs"] = float64(totalAllocs)
	a.Values[prefix+"num_gc"] = float64(numGC)
	a.Values[prefix+"gc_pause_total_seconds"] = pause
	a.Values[prefix+"peak_heap_bytes"] = float64(peak)
}

func addAllocs(a *Artifact, prefix string, allocs map[string]obs.AllocInfo) {
	for stage, ai := range allocs {
		a.Values[prefix+stage+".bytes"] = float64(ai.Bytes)
		a.Values[prefix+stage+".objects"] = float64(ai.Objects)
	}
}

func flattenManifest(data []byte) (*Artifact, error) {
	var m struct {
		Seed           uint64                   `json:"seed"`
		Parallelism    int                      `json:"parallelism"`
		TimingsSeconds map[string]float64       `json:"timings_seconds"`
		Outputs        map[string]string        `json:"outputs"`
		Allocs         map[string]obs.AllocInfo `json:"allocs"`
		PerFlow        float64                  `json:"alloc_bytes_per_flow"`
		Mem            *struct {
			HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
			TotalAllocBytes     uint64  `json:"total_alloc_bytes"`
			TotalAllocs         uint64  `json:"total_allocs"`
			NumGC               uint32  `json:"num_gc"`
			GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
			PeakHeapBytes       uint64  `json:"peak_heap_bytes"`
		} `json:"mem"`
		Trace *struct {
			SHA256 string `json:"sha256"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("bench: parse manifest: %w", err)
	}
	a := newArtifact(ArtifactManifest)
	a.Values["seed"] = float64(m.Seed)
	a.Values["parallelism"] = float64(m.Parallelism)
	for stage, secs := range m.TimingsSeconds {
		a.Values["timings."+stage] = secs
	}
	addAllocs(a, "allocs.", m.Allocs)
	if m.PerFlow != 0 {
		a.Values["alloc_bytes_per_flow"] = m.PerFlow
	}
	if m.Mem != nil {
		addMem(a, "mem.", m.Mem.HeapAllocBytes, m.Mem.TotalAllocBytes,
			m.Mem.TotalAllocs, uint64(m.Mem.NumGC), m.Mem.GCPauseTotalSeconds, m.Mem.PeakHeapBytes)
	}
	for name, digest := range m.Outputs {
		a.Digests["outputs."+name] = digest
	}
	if m.Trace != nil && m.Trace.SHA256 != "" {
		a.Digests["trace"] = m.Trace.SHA256
	}
	return a, nil
}

func flattenMetrics(data []byte) (*Artifact, error) {
	var dump registryDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, fmt.Errorf("bench: parse metrics dump: %w", err)
	}
	for name, m := range dump {
		switch m.Kind {
		case "counter", "gauge", "timer", "histogram":
		default:
			return nil, fmt.Errorf("bench: not a metrics dump: metric %q has kind %q", name, m.Kind)
		}
	}
	if len(dump) == 0 {
		return nil, fmt.Errorf("bench: not a recognized artifact (empty object)")
	}
	a := newArtifact(ArtifactMetrics)
	a.addRegistry("", dump)
	return a, nil
}

// Tolerances maps metric names to the allowed relative change.
// A tolerance is a fraction (0.5 allows ±50%); 0 demands exact equality
// and a negative value excludes the metric from comparison. Metrics
// resolves by exact name first, then by path.Match glob — the longest
// matching pattern wins (ties break lexicographically).
type Tolerances struct {
	Default float64            `json:"default"`
	Metrics map[string]float64 `json:"metrics"`
}

// For resolves the tolerance for one metric name.
func (t Tolerances) For(name string) float64 {
	if v, ok := t.Metrics[name]; ok {
		return v
	}
	best := ""
	for pat := range t.Metrics {
		ok, err := path.Match(pat, name)
		if err != nil || !ok {
			continue
		}
		if len(pat) > len(best) || (len(pat) == len(best) && pat < best) {
			best = pat
		}
	}
	if best != "" {
		return t.Metrics[best]
	}
	return t.Default
}

// LoadTolerances reads a tolerance-override JSON file
// ({"default": 0.1, "metrics": {"<name-or-glob>": <fraction>}}).
// fallback is the -tolerance flag value, used when the file omits
// "default" (or when file is empty).
func LoadTolerances(file string, fallback float64) (Tolerances, error) {
	t := Tolerances{Default: fallback}
	if file == "" {
		return t, nil
	}
	b, err := os.ReadFile(file)
	if err != nil {
		return t, err
	}
	var raw struct {
		Default *float64           `json:"default"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return t, fmt.Errorf("bench: parse tolerances %s: %w", file, err)
	}
	if raw.Default != nil {
		t.Default = *raw.Default
	}
	t.Metrics = raw.Metrics
	// Validate patterns eagerly so a typo in the file fails the diff as
	// an error, not as a silently-ignored override.
	for pat := range t.Metrics {
		if _, err := path.Match(pat, ""); err != nil {
			return t, fmt.Errorf("bench: tolerances %s: bad pattern %q: %w", file, pat, err)
		}
	}
	return t, nil
}

// DiffRow is one compared metric.
type DiffRow struct {
	Name      string
	Old, New  float64
	AbsDelta  float64
	PctDelta  float64 // +Inf when Old == 0 and New != 0
	Tolerance float64
	Breach    bool
	Ignored   bool
}

// DigestRow is one compared content digest.
type DigestRow struct {
	Name     string
	Old, New string
	Match    bool
}

// DiffReport is the outcome of comparing two artifacts.
type DiffReport struct {
	Rows    []DiffRow
	Digests []DigestRow
	// OnlyOld / OnlyNew list keys (values or digests) present in exactly
	// one artifact — metric-set drift.
	OnlyOld, OnlyNew []string
	// Regressions names every failure: out-of-tolerance metrics, digest
	// mismatches, and (unless allowed) set drift.
	Regressions []string
}

// Diff compares the artifact cur against the baseline base (both must be
// the same kind). allowMissing downgrades metric-set drift from
// regression to report-only; ignoreDigests does the same for content
// digests.
func Diff(base, cur *Artifact, tol Tolerances, allowMissing, ignoreDigests bool) (*DiffReport, error) {
	if base.Kind != cur.Kind {
		return nil, fmt.Errorf("bench: artifact kinds differ: %s vs %s", base.Kind, cur.Kind)
	}
	d := &DiffReport{}

	names := make([]string, 0, len(base.Values))
	for name := range base.Values {
		if _, ok := cur.Values[name]; ok {
			names = append(names, name)
		} else {
			d.OnlyOld = append(d.OnlyOld, name)
		}
	}
	for name := range cur.Values {
		if _, ok := base.Values[name]; !ok {
			d.OnlyNew = append(d.OnlyNew, name)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		row := DiffRow{Name: name, Old: base.Values[name], New: cur.Values[name], Tolerance: tol.For(name)}
		row.AbsDelta = row.New - row.Old
		switch {
		case row.Old == 0 && row.New == 0:
			row.PctDelta = 0
		case row.Old == 0:
			row.PctDelta = math.Inf(sign(row.New))
		default:
			row.PctDelta = 100 * row.AbsDelta / math.Abs(row.Old)
		}
		if row.Tolerance < 0 {
			row.Ignored = true
		} else if row.Old == 0 {
			row.Breach = row.New != 0
		} else {
			row.Breach = math.Abs(row.AbsDelta) > row.Tolerance*math.Abs(row.Old)
		}
		if row.Breach {
			d.Regressions = append(d.Regressions, name)
		}
		d.Rows = append(d.Rows, row)
	}

	dnames := make([]string, 0, len(base.Digests))
	for name := range base.Digests {
		if _, ok := cur.Digests[name]; ok {
			dnames = append(dnames, name)
		} else {
			d.OnlyOld = append(d.OnlyOld, name)
		}
	}
	for name := range cur.Digests {
		if _, ok := base.Digests[name]; !ok {
			d.OnlyNew = append(d.OnlyNew, name)
		}
	}
	sort.Strings(dnames)
	for _, name := range dnames {
		row := DigestRow{Name: name, Old: base.Digests[name], New: cur.Digests[name]}
		row.Match = row.Old == row.New
		if !row.Match && !ignoreDigests {
			d.Regressions = append(d.Regressions, name)
		}
		d.Digests = append(d.Digests, row)
	}

	sort.Strings(d.OnlyOld)
	sort.Strings(d.OnlyNew)
	if !allowMissing {
		d.Regressions = append(d.Regressions, d.OnlyOld...)
		d.Regressions = append(d.Regressions, d.OnlyNew...)
	}
	return d, nil
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// Render writes the diff outcome: regressions (and drift and digest
// mismatches) always; every compared row when verbose.
func (d *DiffReport) Render(w io.Writer, verbose bool) {
	printed := 0
	for _, row := range d.Rows {
		if !verbose && !row.Breach {
			continue
		}
		mark := "  "
		switch {
		case row.Ignored:
			mark = "--"
		case row.Breach:
			mark = "!!"
		}
		pct := fmt.Sprintf("%+.1f%%", row.PctDelta)
		if math.IsInf(row.PctDelta, 0) {
			pct = "new≠0"
		}
		fmt.Fprintf(w, "%s %-58s %14.6g → %-14.6g Δ%+.6g (%s, tol ±%.0f%%)\n",
			mark, row.Name, row.Old, row.New, row.AbsDelta, pct, row.Tolerance*100)
		printed++
	}
	for _, row := range d.Digests {
		if !verbose && row.Match {
			continue
		}
		mark := "  "
		if !row.Match {
			mark = "!!"
		}
		fmt.Fprintf(w, "%s %-58s %s → %s\n", mark, row.Name, shortDigest(row.Old), shortDigest(row.New))
		printed++
	}
	for _, name := range d.OnlyOld {
		fmt.Fprintf(w, "-- only in OLD: %s\n", name)
	}
	for _, name := range d.OnlyNew {
		fmt.Fprintf(w, "++ only in NEW: %s\n", name)
	}
	fmt.Fprintf(w, "%d metrics and %d digests compared, %d regressions",
		len(d.Rows), len(d.Digests), len(d.Regressions))
	if len(d.OnlyOld)+len(d.OnlyNew) > 0 {
		fmt.Fprintf(w, ", %d keys drifted", len(d.OnlyOld)+len(d.OnlyNew))
	}
	fmt.Fprintln(w)
	if len(d.Regressions) > 0 {
		fmt.Fprintf(w, "regressed: %s\n", strings.Join(d.Regressions, ", "))
	}
}
