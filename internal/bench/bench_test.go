package bench

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyScenario keeps runner tests fast: 8 customers, 1 day.
func tinyScenario(name string, parallelism int, faults string) Scenario {
	return Scenario{Name: name, Customers: 8, Days: 1, Seed: 7, Parallelism: parallelism, Faults: faults}
}

func TestMatrixShape(t *testing.T) {
	full := Matrix(42)
	if len(full) != 26 {
		t.Fatalf("full matrix has %d scenarios, want 26", len(full))
	}
	reduced := ReducedMatrix(42)
	if len(reduced) != 18 {
		t.Fatalf("reduced matrix has %d scenarios, want 18", len(reduced))
	}
	seen := map[string]bool{}
	for _, sc := range full {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.PepLoad != nil {
			if sc.PepLoad.Flows <= 0 || sc.Days <= 0 {
				t.Errorf("pepload scenario %s has empty dimensions: %+v", sc.Name, sc)
			}
			continue
		}
		if sc.Customers <= 0 || sc.Days <= 0 {
			t.Errorf("scenario %s has empty dimensions: %+v", sc.Name, sc)
		}
	}
	for _, sc := range reduced {
		if !seen[sc.Name] {
			t.Errorf("reduced scenario %q not in the full matrix", sc.Name)
		}
		if strings.HasPrefix(sc.Name, "large-") {
			t.Errorf("reduced matrix contains large scenario %q", sc.Name)
		}
	}
	if _, ok := ByName("small-clear-p1", 42); !ok {
		t.Error("ByName cannot find small-clear-p1")
	}
	if sc, ok := ByName("small-leo-clear-p1", 42); !ok || sc.Constellation != "leo" {
		t.Errorf("ByName(small-leo-clear-p1) = %+v, %v; want a leo scenario", sc, ok)
	}
	if sc, _ := ByName("small-clear-p1", 42); sc.Constellation != "" {
		t.Errorf("GEO scenario names must keep their historical form, got constellation %q", sc.Constellation)
	}
	if sc, ok := ByName("pepload-200-clear", 42); !ok || sc.PepLoad == nil || sc.PepLoad.Flows != 200 {
		t.Errorf("ByName(pepload-200-clear) = %+v, %v; want a pepload scenario", sc, ok)
	}
	// pepload scenarios must never share a determinism group with a
	// netsim scenario: their Outputs are empty, not digested pipelines.
	netsimIDs := map[string]bool{}
	for _, sc := range full {
		if sc.PepLoad == nil {
			netsimIDs[sc.identity()] = true
		}
	}
	for _, sc := range full {
		if sc.PepLoad != nil && netsimIDs[sc.identity()] {
			t.Errorf("pepload scenario %s shares identity %q with a netsim scenario", sc.Name, sc.identity())
		}
	}
}

// TestRunPepLoadScenario runs a miniature pepload scenario end to end and
// checks that the Result carries the load-harness signals in the same
// shape satdiff flattens for every other scenario.
func TestRunPepLoadScenario(t *testing.T) {
	sc := Scenario{Name: "pepload-tiny", Days: 1, Seed: 7, PepLoad: &PepLoadSpec{Flows: 20, Concurrency: 10}}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows != 20 || res.FlowsPerSecond <= 0 {
		t.Fatalf("implausible load result: %d flows, %v flows/s", res.Flows, res.FlowsPerSecond)
	}
	for _, stage := range []string{"load", "drain"} {
		if _, ok := res.TimingsSeconds[stage]; !ok {
			t.Errorf("missing stage timing %q", stage)
		}
	}
	if len(res.Outputs) != 0 {
		t.Errorf("pepload scenario digested outputs: %v", res.Outputs)
	}
	var dump map[string]struct {
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(res.Metrics, &dump); err != nil {
		t.Fatalf("metrics snapshot is not a registry dump: %v", err)
	}
	if m, ok := dump["pep_load_flows_total"]; !ok || m.Value != 20 {
		t.Errorf("snapshot pep_load_flows_total = %+v, want 20", m)
	}
	if m, ok := dump["pep_load_leaked_streams"]; !ok || m.Value != 0 {
		t.Errorf("snapshot pep_load_leaked_streams = %+v, want 0", m)
	}
}

func TestFilter(t *testing.T) {
	scs, err := Filter(Matrix(42), "small-*")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 8 {
		t.Fatalf("small-* matches %d scenarios, want 8 (geo and leo variants)", len(scs))
	}
	if _, err := Filter(Matrix(42), "[bad"); err == nil {
		t.Error("bad glob accepted")
	}
}

func TestRunScenarioCapturesEverything(t *testing.T) {
	res, err := RunScenario(tinyScenario("tiny", 1, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows == 0 || res.DNS == 0 {
		t.Fatalf("empty run: %d flows, %d dns", res.Flows, res.DNS)
	}
	if res.FlowsPerSecond <= 0 {
		t.Errorf("flows/s = %v, want > 0", res.FlowsPerSecond)
	}
	if res.Workers != 1 {
		t.Errorf("workers = %d, want 1", res.Workers)
	}
	for _, stage := range []string{"pass_a", "pass_b", "generate", "analyze"} {
		if _, ok := res.TimingsSeconds[stage]; !ok {
			t.Errorf("missing stage timing %q", stage)
		}
	}
	for _, name := range []string{"flows.tsv", "dns.tsv", "meta.tsv", "prefixes.tsv"} {
		if d := res.Outputs[name]; !strings.HasPrefix(d, "sha256:") {
			t.Errorf("output %s digest = %q, want sha256:…", name, d)
		}
	}
	if res.Mem.TotalAllocBytes == 0 {
		t.Error("mem.total_alloc_bytes is zero — sampler not wired")
	}
	if res.Mem.PeakHeapBytes == 0 {
		t.Error("mem.peak_heap_bytes is zero — sampler not wired")
	}
	var dump map[string]struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(res.Metrics, &dump); err != nil {
		t.Fatalf("metrics snapshot is not a registry dump: %v", err)
	}
	if _, ok := dump["netsim_flows_total"]; !ok {
		t.Error("metrics snapshot is missing netsim_flows_total")
	}
}

func TestRunScenarioDeterministicAcrossParallelism(t *testing.T) {
	serial, err := RunScenario(tinyScenario("tiny-p1", 1, "stress"))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunScenario(tinyScenario("tiny-p4", 4, "stress"))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range serial.Outputs {
		if got := parallel.Outputs[name]; got != want {
			t.Errorf("%s digest differs across parallelism: %s vs %s", name, want, got)
		}
	}
	r := &Report{Schema: Schema, Kind: Kind, Scenarios: []Result{serial, parallel}}
	groups, err := r.VerifyDigests()
	if err != nil {
		t.Fatalf("VerifyDigests: %v", err)
	}
	if groups != 1 {
		t.Errorf("VerifyDigests counted %d groups, want 1", groups)
	}

	// A corrupted digest must be caught.
	bad := parallel
	bad.Outputs = map[string]string{"flows.tsv": "sha256:deadbeef"}
	r = &Report{Schema: Schema, Kind: Kind, Scenarios: []Result{serial, bad}}
	if _, err := r.VerifyDigests(); err == nil {
		t.Error("VerifyDigests accepted diverging digests")
	}
}

func TestReportRoundTrip(t *testing.T) {
	res, err := RunScenario(tinyScenario("tiny", 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	r := &Report{
		Schema: Schema, Kind: Kind,
		Created: time.Now().UTC(), Version: "test",
		Env:       Environment(),
		Scenarios: []Result{res},
	}
	path := filepath.Join(t.TempDir(), DefaultFileName(time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)))
	if filepath.Base(path) != "BENCH_20260805T120000Z.json" {
		t.Fatalf("DefaultFileName = %s", filepath.Base(path))
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != 1 || back.Scenarios[0].Flows != res.Flows {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Env.GoVersion == "" || back.Env.GOMAXPROCS == 0 {
		t.Errorf("environment fingerprint incomplete: %+v", back.Env)
	}
	if !strings.Contains(r.Table(), "tiny") {
		t.Error("Table does not mention the scenario")
	}

	// Wrong schema versions must be rejected.
	r.Schema = Schema + 1
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil {
		t.Error("ReadReport accepted a future schema version")
	}
}
