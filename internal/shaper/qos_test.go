package shaper

import (
	"testing"
	"time"
)

func TestClassifyFlow(t *testing.T) {
	cases := []struct {
		domain string
		port   uint16
		want   Class
	}{
		{"", 53, ClassInteractive},
		{"", 123, ClassInteractive},
		{"ipv4-c1.oca.nflxvideo.net", 443, ClassVideo},
		{"rr2---sn-ab.googlevideo.com", 443, ClassVideo},
		{"video-cdn.sky.com", 80, ClassVideo},
		{"e1.whatsapp.net", 443, ClassInteractive},
		{"www.google.com", 443, ClassBulk},
		{"unknown.example", 443, ClassBulk},
		{"", 443, ClassBulk},
	}
	for _, c := range cases {
		if got := ClassifyFlow(c.domain, c.port); got != c.want {
			t.Errorf("ClassifyFlow(%q,%d)=%v, want %v", c.domain, c.port, got, c.want)
		}
	}
}

func TestQoSValidation(t *testing.T) {
	if _, err := NewQoS(Plan30, 0); err == nil {
		t.Fatal("zero video share accepted")
	}
	if _, err := NewQoS(Plan30, 1.5); err == nil {
		t.Fatal("video share >1 accepted")
	}
}

func TestVideoShapedBelowLinkRate(t *testing.T) {
	q, err := NewQoS(Plan30, 0.4) // 30 Mb/s link, video capped at 12 Mb/s
	if err != nil {
		t.Fatal(err)
	}
	// Push 30 Mb of video at t=0: at the 12 Mb/s video rate the last
	// bytes wait ≈2.0-2.5s (minus the burst allowance).
	var lastWait time.Duration
	for i := 0; i < 30; i++ {
		lastWait = q.Depart(ClassVideo, 1_000_000/8*1, 0) // 125 KB chunks
	}
	total := 30 * 125_000
	videoRate := q.VideoRate()
	expect := time.Duration(float64(total)/videoRate*float64(time.Second)) - time.Second
	if lastWait < expect/2 {
		t.Fatalf("video wait %v, want roughly %v (shaping missing)", lastWait, expect)
	}
}

func TestInteractiveBypassesBulkBacklog(t *testing.T) {
	q, err := NewQoS(Plan10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate with bulk.
	for i := 0; i < 40; i++ {
		q.Depart(ClassBulk, 250_000, 0)
	}
	bulkWait := q.Depart(ClassBulk, 1500, 0)
	interWait := q.Depart(ClassInteractive, 1500, 0)
	if interWait >= bulkWait {
		t.Fatalf("interactive wait %v not below bulk backlog %v", interWait, bulkWait)
	}
}

func TestBulkFIFOBacklog(t *testing.T) {
	q, _ := NewQoS(Plan10, 0.5)
	w1 := q.Depart(ClassBulk, 2_000_000, 0)
	w2 := q.Depart(ClassBulk, 2_000_000, 0)
	if w2 <= w1 {
		t.Fatalf("later bulk burst departs earlier: %v then %v", w1, w2)
	}
}

func TestClassStrings(t *testing.T) {
	if ClassInteractive.String() != "interactive" || ClassVideo.String() != "video" || ClassBulk.String() != "bulk" {
		t.Fatal("class names")
	}
}
