package shaper

import (
	"io"
	"satwatch/internal/trace"
	"testing"
	"time"
)

func TestValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 100); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(100, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestBurstThenShaping(t *testing.T) {
	tb, err := NewTokenBucket(1000, 500) // 1000 B/s, 500 B burst
	if err != nil {
		t.Fatal(err)
	}
	// The burst passes immediately.
	if w := tb.Take(500, 0); w != 0 {
		t.Fatalf("burst delayed by %v", w)
	}
	// The next 1000 bytes must wait ~1s.
	w := tb.Take(1000, 0)
	if w < 900*time.Millisecond || w > 1100*time.Millisecond {
		t.Fatalf("post-burst wait %v, want ≈1s", w)
	}
}

func TestRefill(t *testing.T) {
	tb, _ := NewTokenBucket(1000, 500)
	tb.Take(500, 0)
	// After 0.5s, 500 tokens returned.
	if w := tb.Take(500, 500*time.Millisecond); w != 0 {
		t.Fatalf("refilled tokens not granted: wait %v", w)
	}
	// Refill never exceeds the burst.
	if w := tb.Take(501, 100*time.Second); w <= 0 {
		t.Fatal("bucket exceeded burst after long idle")
	}
}

func TestSteadyStateRate(t *testing.T) {
	tb, _ := NewTokenBucket(10000, 1000)
	var lastWait time.Duration
	for i := 0; i < 100; i++ {
		lastWait = tb.Take(1000, 0)
	}
	// 100 KB through a 10 KB/s bucket: the last chunk waits ≈9.9s.
	if lastWait < 9*time.Second || lastWait > 11*time.Second {
		t.Fatalf("steady-state wait %v, want ≈9.9s", lastWait)
	}
}

func TestDrainDuration(t *testing.T) {
	tb := ForPlan(Plan10) // 10 Mb/s = 1.25 MB/s
	d := tb.DrainDuration(10 << 20)
	want := time.Duration(float64(10<<20) / (10e6 / 8) * float64(time.Second))
	if d < want-time.Millisecond || d > want+time.Millisecond {
		t.Fatalf("drain %v, want %v", d, want)
	}
}

func TestPlansLineup(t *testing.T) {
	plans := Plans()
	if len(plans) != 5 {
		t.Fatalf("%d plans", len(plans))
	}
	prev := 0.0
	for _, p := range plans {
		if p.DownMbps <= prev {
			t.Fatalf("plans not increasing at %s", p.Name)
		}
		prev = p.DownMbps
		if p.UpMbps > 5 {
			t.Fatalf("%s uplink %v exceeds the 5 Mb/s cap", p.Name, p.UpMbps)
		}
	}
}

func TestForPlanRate(t *testing.T) {
	tb := ForPlan(Plan100)
	if got := tb.RateBytesPerSec(); got != 100e6/8 {
		t.Fatalf("rate %v", got)
	}
}

func TestTakeTracedRecordsThrottleOnly(t *testing.T) {
	tb, _ := NewTokenBucket(1000, 500)
	fl := trace.New(io.Discard, 1).Start(0, 0, 0)
	// The burst passes untraced: no throttle, no span.
	if w := tb.TakeTraced(500, 0, fl); w != 0 || len(fl.Spans) != 0 {
		t.Fatalf("unthrottled take recorded a span: wait %v, spans %+v", w, fl.Spans)
	}
	w := tb.TakeTraced(1000, 0, fl)
	if w <= 0 {
		t.Fatalf("expected a throttle wait, got %v", w)
	}
	if len(fl.Spans) != 1 || fl.Spans[0].Name != trace.SpanShaperThrottle {
		t.Fatalf("expected one %s span, got %+v", trace.SpanShaperThrottle, fl.Spans)
	}
	s := fl.Spans[0]
	if s.Seg != trace.SegGround || s.DurMS != float64(w)/float64(time.Millisecond) {
		t.Fatalf("span wrong: %+v for wait %v", s, w)
	}
}
