package shaper

import (
	"fmt"
	"time"

	"satwatch/internal/services"
)

// Class is a QoS traffic class. The operator prioritizes interactive
// traffic and shapes video streaming using L3/L4 and domain-name-specific
// rules (§2.1).
type Class uint8

// The operator's traffic classes.
const (
	// ClassInteractive is prioritized: DNS, handshakes, messaging.
	ClassInteractive Class = iota
	// ClassBulk is best-effort web and downloads.
	ClassBulk
	// ClassVideo is shaped: streaming platforms get a per-subscriber
	// rate cap to protect the shared beam.
	ClassVideo
)

func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassVideo:
		return "video"
	default:
		return "bulk"
	}
}

// ClassifyFlow applies the operator's rules: the server domain decides
// video shaping (the paper's domain-name-specific rules); small-port
// control protocols are interactive; everything else is bulk.
func ClassifyFlow(domain string, serverPort uint16) Class {
	if serverPort == 53 || serverPort == 123 {
		return ClassInteractive
	}
	if domain != "" {
		if svc, ok := services.Classify(domain); ok {
			switch svc.Category {
			case services.CategoryVideo:
				return ClassVideo
			case services.CategoryChat:
				return ClassInteractive
			}
		}
	}
	return ClassBulk
}

// QoS is a per-subscriber scheduler approximating the operator's strict
// priority + shaping: interactive traffic is served from its own
// full-rate bucket (it jumps any bulk/video queue, so it never pays their
// accumulated debt), bulk and video share the link bucket, and video
// additionally pays a tighter per-class shaper.
type QoS struct {
	inter *TokenBucket
	link  *TokenBucket
	video *TokenBucket
	// bulkHorizon tracks the virtual departure horizon of bulk traffic
	// so later bulk queues FIFO behind it.
	bulkHorizon time.Duration
}

// NewQoS builds a scheduler for a plan: the link bucket enforces the plan
// rate for bulk+video, the video bucket caps streaming at videoShare of it.
func NewQoS(plan Plan, videoShare float64) (*QoS, error) {
	if videoShare <= 0 || videoShare > 1 {
		return nil, fmt.Errorf("shaper: video share %v outside (0,1]", videoShare)
	}
	rate := plan.DownMbps * 1e6 / 8
	inter, err := NewTokenBucket(rate, rate/4)
	if err != nil {
		return nil, err
	}
	link, err := NewTokenBucket(rate, rate)
	if err != nil {
		return nil, err
	}
	video, err := NewTokenBucket(rate*videoShare, rate*videoShare/2)
	if err != nil {
		return nil, err
	}
	return &QoS{inter: inter, link: link, video: video}, nil
}

// Depart returns how long a burst of n bytes of the given class waits
// before leaving the shaper at instant now (a monotonic offset).
func (q *QoS) Depart(class Class, n int, now time.Duration) time.Duration {
	switch class {
	case ClassInteractive:
		// Strict priority: only interactive traffic's own serialization
		// matters; bulk/video backlog is pre-empted.
		return q.inter.Take(n, now)
	case ClassVideo:
		wait := q.link.Take(n, now)
		if vw := q.video.Take(n, now); vw > wait {
			wait = vw
		}
		q.noteBulk(now, wait)
		return wait
	default:
		wait := q.link.Take(n, now)
		// Bulk also queues behind earlier bulk that has not departed.
		if q.bulkHorizon > now+wait {
			wait = q.bulkHorizon - now
		}
		q.noteBulk(now, wait)
		return wait
	}
}

func (q *QoS) noteBulk(now, wait time.Duration) {
	if h := now + wait; h > q.bulkHorizon {
		q.bulkHorizon = h
	}
}

// VideoRate returns the video class's shaped rate in bytes/sec.
func (q *QoS) VideoRate() float64 { return q.video.RateBytesPerSec() }
