// Package shaper implements the ground station's QoS machinery (§2.1): a
// token-bucket rate limiter used to enforce the commercial plan caps (up to
// 5 Mb/s uplink; 10/20/30/50/100 Mb/s downlink) and to shape video flows.
//
// Two pieces live here. The commercial side is the Plan lineup and the
// TokenBucket that meters each subscriber's traffic against it: the bucket
// answers "when may these bytes leave" rather than dropping, which is how
// the operator treats non-interactive traffic (drops are tracked only as
// an observability signal, see shaper_token_drops_total). The policy side
// (qos.go) classifies flows into the operator's traffic classes —
// interactive, bulk, shaped video — from L3/L4 fields and domain-specific
// rules, deciding which flows the bucket shapes at all.
package shaper

import (
	"fmt"
	"sync"
	"time"

	"satwatch/internal/obs"
	"satwatch/internal/trace"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mBytes = obs.NewCounter("shaper_bytes_total",
		"Bytes metered through shaper token buckets.", "bytes")
	mThrottled = obs.NewCounter("shaper_throttle_events_total",
		"Take calls that found an empty bucket and had to wait.", "")
	mWait = obs.NewTimer("shaper_throttle_wait_seconds",
		"Shaping delay imposed on throttled Take calls.")
	mDrops = obs.NewCounter("shaper_token_drops_total",
		"Take calls arriving with the bucket a full burst in debt — the packets a queue-bounded shaper would drop.", "")
)

// Plan is a commercial subscription tier.
type Plan struct {
	Name     string
	DownMbps float64
	UpMbps   float64
}

// The operator's plan lineup. The paper reports 10 and 30 Mb/s plans sold
// in Africa and 30/50/100 Mb/s popular in Europe, all with up to 5 Mb/s up.
var (
	Plan10  = Plan{Name: "sat10", DownMbps: 10, UpMbps: 2}
	Plan20  = Plan{Name: "sat20", DownMbps: 20, UpMbps: 3}
	Plan30  = Plan{Name: "sat30", DownMbps: 30, UpMbps: 5}
	Plan50  = Plan{Name: "sat50", DownMbps: 50, UpMbps: 5}
	Plan100 = Plan{Name: "sat100", DownMbps: 100, UpMbps: 5}
)

// Plans returns the lineup in increasing-capacity order.
func Plans() []Plan { return []Plan{Plan10, Plan20, Plan30, Plan50, Plan100} }

// TokenBucket is a classic token bucket: tokens are bytes, refilled at Rate
// bytes/sec up to Burst. It answers "when may these bytes leave" rather
// than dropping, which is how the operator's shaper treats non-interactive
// traffic. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bytes
	tokens float64
	last   time.Duration // last refill instant (caller-supplied clock)
}

// NewTokenBucket builds a bucket that starts full.
func NewTokenBucket(rateBytesPerSec, burstBytes float64) (*TokenBucket, error) {
	if rateBytesPerSec <= 0 {
		return nil, fmt.Errorf("shaper: rate must be positive, got %v", rateBytesPerSec)
	}
	if burstBytes <= 0 {
		return nil, fmt.Errorf("shaper: burst must be positive, got %v", burstBytes)
	}
	return &TokenBucket{rate: rateBytesPerSec, burst: burstBytes, tokens: burstBytes}, nil
}

// ForPlan builds the downlink bucket of a plan with a 1-second burst.
func ForPlan(p Plan) *TokenBucket {
	rate := p.DownMbps * 1e6 / 8
	tb, err := NewTokenBucket(rate, rate)
	if err != nil {
		panic(err)
	}
	return tb
}

// Take requests n bytes at instant now (a monotonic simulation or wall
// offset) and returns how long the bytes must wait before leaving. The
// bucket may go negative internally — that debt is what produces the wait.
func (tb *TokenBucket) Take(n int, now time.Duration) time.Duration {
	return tb.TakeTraced(n, now, nil)
}

// TakeTraced is Take recording a shaper.throttle span on fl whenever the
// call is actually throttled (nil fl records nothing).
func (tb *TokenBucket) TakeTraced(n int, now time.Duration, fl *trace.Flow) time.Duration {
	wait := tb.take(n, now)
	if fl != nil && wait > 0 {
		fl.Span(trace.SpanShaperThrottle, trace.SegGround, wait, trace.Attrs{
			"bytes": n, "rate_bps": tb.rate * 8,
		})
	}
	return wait
}

func (tb *TokenBucket) take(n int, now time.Duration) time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	mBytes.Add(int64(n))
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if tb.tokens <= -tb.burst {
		mDrops.Inc()
	}
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return 0
	}
	wait := time.Duration(-tb.tokens / tb.rate * float64(time.Second))
	mThrottled.Inc()
	mWait.Observe(wait)
	return wait
}

// RateBytesPerSec returns the configured rate.
func (tb *TokenBucket) RateBytesPerSec() float64 { return tb.rate }

// DrainDuration returns how long transferring n bytes takes at the plan
// rate once the burst is exhausted: the steady-state shaping floor.
func (tb *TokenBucket) DrainDuration(n int64) time.Duration {
	return time.Duration(float64(n) / tb.rate * float64(time.Second))
}
