// Package shaper implements the ground station's QoS machinery (§2.1): a
// token-bucket rate limiter used to enforce the commercial plan caps (up to
// 5 Mb/s uplink; 10/20/30/50/100 Mb/s downlink) and to shape video flows.
package shaper

import (
	"fmt"
	"sync"
	"time"
)

// Plan is a commercial subscription tier.
type Plan struct {
	Name     string
	DownMbps float64
	UpMbps   float64
}

// The operator's plan lineup. The paper reports 10 and 30 Mb/s plans sold
// in Africa and 30/50/100 Mb/s popular in Europe, all with up to 5 Mb/s up.
var (
	Plan10  = Plan{Name: "sat10", DownMbps: 10, UpMbps: 2}
	Plan20  = Plan{Name: "sat20", DownMbps: 20, UpMbps: 3}
	Plan30  = Plan{Name: "sat30", DownMbps: 30, UpMbps: 5}
	Plan50  = Plan{Name: "sat50", DownMbps: 50, UpMbps: 5}
	Plan100 = Plan{Name: "sat100", DownMbps: 100, UpMbps: 5}
)

// Plans returns the lineup in increasing-capacity order.
func Plans() []Plan { return []Plan{Plan10, Plan20, Plan30, Plan50, Plan100} }

// TokenBucket is a classic token bucket: tokens are bytes, refilled at Rate
// bytes/sec up to Burst. It answers "when may these bytes leave" rather
// than dropping, which is how the operator's shaper treats non-interactive
// traffic. Safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bytes
	tokens float64
	last   time.Duration // last refill instant (caller-supplied clock)
}

// NewTokenBucket builds a bucket that starts full.
func NewTokenBucket(rateBytesPerSec, burstBytes float64) (*TokenBucket, error) {
	if rateBytesPerSec <= 0 {
		return nil, fmt.Errorf("shaper: rate must be positive, got %v", rateBytesPerSec)
	}
	if burstBytes <= 0 {
		return nil, fmt.Errorf("shaper: burst must be positive, got %v", burstBytes)
	}
	return &TokenBucket{rate: rateBytesPerSec, burst: burstBytes, tokens: burstBytes}, nil
}

// ForPlan builds the downlink bucket of a plan with a 1-second burst.
func ForPlan(p Plan) *TokenBucket {
	rate := p.DownMbps * 1e6 / 8
	tb, err := NewTokenBucket(rate, rate)
	if err != nil {
		panic(err)
	}
	return tb
}

// Take requests n bytes at instant now (a monotonic simulation or wall
// offset) and returns how long the bytes must wait before leaving. The
// bucket may go negative internally — that debt is what produces the wait.
func (tb *TokenBucket) Take(n int, now time.Duration) time.Duration {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return 0
	}
	return time.Duration(-tb.tokens / tb.rate * float64(time.Second))
}

// RateBytesPerSec returns the configured rate.
func (tb *TokenBucket) RateBytesPerSec() float64 { return tb.rate }

// DrainDuration returns how long transferring n bytes takes at the plan
// rate once the burst is exhausted: the steady-state shaping floor.
func (tb *TokenBucket) DrainDuration(n int64) time.Duration {
	return time.Duration(float64(n) / tb.rate * float64(time.Second))
}
