package pep

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"satwatch/internal/tunnel"
)

// The UDP path of the PEP architecture (§2.1): datagrams are forwarded
// as-is through the satellite tunnel — no local termination, no ARQ, no
// acceleration — which is exactly why DNS and QUIC pay the full 550 ms.
//
// Encapsulation: [1B dstLen][dst][payload]. Customer→internet datagrams
// carry the destination; internet→customer replies carry dstLen=0.

func encapUDP(dst string, payload []byte) ([]byte, error) {
	if len(dst) > 255 {
		return nil, fmt.Errorf("pep: udp destination %q too long", dst)
	}
	out := make([]byte, 1+len(dst)+len(payload))
	out[0] = byte(len(dst))
	copy(out[1:], dst)
	copy(out[1+len(dst):], payload)
	return out, nil
}

func decapUDP(b []byte) (dst string, payload []byte, err error) {
	if len(b) < 1 {
		return "", nil, fmt.Errorf("pep: empty udp encapsulation")
	}
	n := int(b[0])
	if 1+n > len(b) {
		return "", nil, fmt.Errorf("pep: truncated udp encapsulation")
	}
	return string(b[1 : 1+n]), b[1+n:], nil
}

// udpFlowID labels a customer source address stably.
func udpFlowID(addr net.Addr) uint32 {
	h := fnv.New32a()
	h.Write([]byte(addr.String()))
	id := h.Sum32()
	if id == 0 {
		id = 1
	}
	return id
}

// ServeUDP relays customer datagrams arriving on conn to dst across the
// satellite tunnel, unreliably, and routes replies back to the original
// source addresses. It returns when conn fails or the tunnel closes.
// The paper's CPE runs this path for DNS, QUIC and RTP.
func (c *CPE) ServeUDP(conn net.PacketConn, dst string) error {
	var mu sync.Mutex
	clients := map[uint32]net.Addr{}

	// Return path: raw datagrams from the gateway back to the senders.
	done := make(chan error, 1)
	go func() {
		for {
			d, err := c.tn.RecvRaw()
			if err != nil {
				done <- err
				return
			}
			_, payload, err := decapUDP(d.Payload)
			if err != nil {
				continue
			}
			mu.Lock()
			addr := clients[d.FlowID]
			mu.Unlock()
			if addr != nil {
				conn.WriteTo(payload, addr)
			}
		}
	}()

	buf := make([]byte, 64<<10)
	for {
		select {
		case err := <-done:
			return err
		default:
		}
		n, addr, err := conn.ReadFrom(buf)
		if err != nil {
			return err
		}
		id := udpFlowID(addr)
		mu.Lock()
		if len(clients) < 4096 {
			clients[id] = addr
		}
		mu.Unlock()
		enc, err := encapUDP(dst, buf[:n])
		if err != nil {
			continue
		}
		if err := c.tn.SendRaw(id, enc); err != nil {
			if errors.Is(err, tunnel.ErrTooLarge) {
				// Datagram over the link MTU: drop it, as the real
				// unfragmenting path would, and keep serving.
				c.Stats.Errors.Add(1)
				continue
			}
			return err
		}
		c.Stats.BytesUp.Add(int64(n))
	}
}

// gatewayUDPFlow is one internet-side socket of the gateway's UDP relay.
type gatewayUDPFlow struct {
	conn net.Conn
	last time.Time
}

// ServeUDPRelay runs the gateway side of the UDP path: it opens one
// internet-side socket per customer flow, forwards datagrams out, and
// tunnels replies back. It returns when the tunnel closes.
func (g *Gateway) ServeUDPRelay() error {
	var mu sync.Mutex
	flows := map[uint32]*gatewayUDPFlow{}
	defer func() {
		mu.Lock()
		for _, f := range flows {
			f.conn.Close()
		}
		mu.Unlock()
	}()

	// Janitor: expire idle flows.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				mu.Lock()
				for id, f := range flows {
					if time.Since(f.last) > time.Minute {
						f.conn.Close()
						delete(flows, id)
					}
				}
				mu.Unlock()
			}
		}
	}()

	for {
		d, err := g.tn.RecvRaw()
		if err != nil {
			if err == tunnel.ErrClosed {
				return nil
			}
			return err
		}
		dst, payload, err := decapUDP(d.Payload)
		if err != nil || dst == "" {
			continue
		}
		mu.Lock()
		f := flows[d.FlowID]
		mu.Unlock()
		if f == nil {
			conn, err := net.Dial("udp", dst)
			if err != nil {
				g.Stats.Errors.Add(1)
				continue
			}
			f = &gatewayUDPFlow{conn: conn, last: time.Now()}
			mu.Lock()
			flows[d.FlowID] = f
			mu.Unlock()
			// Reply pump for this flow.
			go func(id uint32, f *gatewayUDPFlow) {
				buf := make([]byte, 64<<10)
				for {
					n, err := f.conn.Read(buf)
					if err != nil {
						return
					}
					mu.Lock()
					f.last = time.Now()
					mu.Unlock()
					enc, err := encapUDP("", buf[:n])
					if err != nil {
						continue
					}
					if err := g.tn.SendRaw(id, enc); err != nil {
						if errors.Is(err, tunnel.ErrTooLarge) {
							g.Stats.Errors.Add(1)
							continue // oversized reply: drop, keep the flow
						}
						return
					}
					g.Stats.BytesDown.Add(int64(n))
				}
			}(d.FlowID, f)
		}
		mu.Lock()
		f.last = time.Now()
		mu.Unlock()
		f.conn.Write(payload)
		g.Stats.BytesUp.Add(int64(len(payload)))
	}
}
