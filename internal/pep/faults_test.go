package pep

import (
	"math"
	"testing"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/linkemu"
)

// These tests pin the overlap semantics of the fault→link-condition
// reduction that feeds Endpoint.SetConditions: two events active in the
// same tick must compose into one Conditions value, not clobber each
// other (SetConditions replaces the whole struct, so composition has to
// happen before the call).

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConditionsAtComposesRainAndGatewaySwitch(t *testing.T) {
	beams := geo.Beams()
	sched := &faults.Schedule{Name: "test", Events: []faults.Event{
		{Kind: faults.RainFront, Start: 0, End: 2 * time.Minute, Beam: beams[0].ID, Peak: 1.0},
		{Kind: faults.GatewaySwitch, Start: 30 * time.Second, End: 90 * time.Second, RTTStep: 200 * time.Millisecond},
	}}

	// t=60s: rain midpoint (intensity 1.0) and the switch window overlap.
	cond := conditionsAt(sched, 60*time.Second, beams)
	if !almostEqual(cond.ExtraLoss, 0.2) {
		t.Errorf("ExtraLoss = %v, want 0.2 (rain at peak)", cond.ExtraLoss)
	}
	if cond.ExtraDelay != 100*time.Millisecond {
		t.Errorf("ExtraDelay = %v, want 100ms (half the 200ms detour RTT)", cond.ExtraDelay)
	}

	// Outside the switch window the rain must persist alone, and vice
	// versa: composition, not one event masking the other.
	cond = conditionsAt(sched, 100*time.Second, beams)
	if cond.ExtraDelay != 0 {
		t.Errorf("ExtraDelay after switch window = %v, want 0", cond.ExtraDelay)
	}
	if cond.ExtraLoss <= 0 {
		t.Errorf("ExtraLoss after switch window = %v, want > 0 (rain still active)", cond.ExtraLoss)
	}
}

func TestConditionsAtOverlappingRainTakesWorst(t *testing.T) {
	beams := geo.Beams()
	// Two fronts on the same beam: a wide weak one and a narrow strong
	// one centered at t=60s.
	sched := &faults.Schedule{Name: "test", Events: []faults.Event{
		{Kind: faults.RainFront, Start: 0, End: 2 * time.Minute, Beam: beams[0].ID, Peak: 0.4},
		{Kind: faults.RainFront, Start: 40 * time.Second, End: 80 * time.Second, Beam: beams[0].ID, Peak: 1.0},
	}}

	// At the shared midpoint both are at peak: the worst (1.0) wins.
	cond := conditionsAt(sched, 60*time.Second, beams)
	if !almostEqual(cond.ExtraLoss, 0.2) {
		t.Errorf("ExtraLoss at overlap = %v, want 0.2 (worst front, not sum or last)", cond.ExtraLoss)
	}

	// At t=30s only the weak front is active, at its midpoint ramp
	// fraction 0.5 → intensity 0.2 → loss 0.04.
	cond = conditionsAt(sched, 30*time.Second, beams)
	if !almostEqual(cond.ExtraLoss, 0.2*0.2) {
		t.Errorf("ExtraLoss outside overlap = %v, want 0.04", cond.ExtraLoss)
	}
}

func TestConditionsAtOutageDominatesRain(t *testing.T) {
	beams := geo.Beams()
	sched := &faults.Schedule{Name: "test", Events: []faults.Event{
		{Kind: faults.RainFront, Start: 0, End: 2 * time.Minute, Beam: beams[0].ID, Peak: 0.5},
		{Kind: faults.BeamOutage, Start: 50 * time.Second, End: 70 * time.Second, Beam: beams[0].ID},
		{Kind: faults.GatewaySwitch, Start: 0, End: 2 * time.Minute, RTTStep: 100 * time.Millisecond},
	}}

	cond := conditionsAt(sched, 60*time.Second, beams)
	if cond.ExtraLoss != 1.0 {
		t.Errorf("ExtraLoss during outage = %v, want 1.0 (outage dominates fade)", cond.ExtraLoss)
	}
	// The detour delay still composes with the outage.
	if cond.ExtraDelay != 50*time.Millisecond {
		t.Errorf("ExtraDelay during outage = %v, want 50ms", cond.ExtraDelay)
	}
}

// TestOverlappingFaultsReachLink drives the composed conditions through a
// live endpoint pair: during the overlap the link must show both the
// detour delay and the fade loss at once.
func TestOverlappingFaultsReachLink(t *testing.T) {
	beams := geo.Beams()
	sched := &faults.Schedule{Name: "test", Events: []faults.Event{
		{Kind: faults.RainFront, Start: 0, End: 2 * time.Minute, Beam: beams[0].ID, Peak: 1.0},
		{Kind: faults.GatewaySwitch, Start: 0, End: 2 * time.Minute, RTTStep: 400 * time.Millisecond},
	}}
	cond := conditionsAt(sched, 60*time.Second, beams)

	a, b := linkemu.NewPair(linkemu.Link{Delay: time.Millisecond}, linkemu.Link{Delay: time.Millisecond}, 7)
	defer a.Close()
	defer b.Close()
	a.SetConditions(cond)
	b.SetConditions(cond)

	// With ExtraDelay = 200ms per direction, no datagram can arrive in
	// under 200ms after its send; without composition (delay clobbered by
	// the rain event's zero) the first arrival would come in ~1ms. The
	// composed ExtraLoss (0.2) may eat datagrams, so keep resending.
	got := make(chan struct{})
	go func() {
		if _, err := b.ReadDatagram(); err == nil {
			close(got)
		}
	}()
	start := time.Now()
	if err := a.WriteDatagram([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	resend := time.NewTicker(50 * time.Millisecond)
	defer resend.Stop()
	deadline := time.After(5 * time.Second)
	for arrived := false; !arrived; {
		select {
		case <-got:
			arrived = true
		case <-resend.C:
			if err := a.WriteDatagram([]byte("ping")); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("no datagram arrived in 5s despite resends")
		}
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("datagram arrived in %v, want ≥ 200ms (composed ExtraDelay lost)", elapsed)
	}
}
