package pep

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestEncapDecap(t *testing.T) {
	enc, err := encapUDP("dns.example:53", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	dst, payload, err := decapUDP(enc)
	if err != nil || dst != "dns.example:53" || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Fatalf("round trip: %q %v %v", dst, payload, err)
	}
	// Reply form.
	enc, _ = encapUDP("", []byte{9})
	dst, payload, err = decapUDP(enc)
	if err != nil || dst != "" || payload[0] != 9 {
		t.Fatal("reply form broken")
	}
	if _, _, err := decapUDP(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, err := decapUDP([]byte{200, 'a'}); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := encapUDP(string(make([]byte, 300)), nil); err == nil {
		t.Fatal("oversize destination accepted")
	}
}

// TestUDPRelayEndToEnd: DNS-style request/response across the emulated
// satellite: the datagrams must arrive unmodified and pay the full link
// delay both ways (no PEP acceleration on UDP, §2.1).
func TestUDPRelayEndToEnd(t *testing.T) {
	// A UDP "resolver" that uppercases.
	origin, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	go func() {
		buf := make([]byte, 2048)
		for {
			n, addr, err := origin.ReadFrom(buf)
			if err != nil {
				return
			}
			out := bytes.ToUpper(buf[:n])
			origin.WriteTo(out, addr)
		}
	}()

	addr, cpe, gw := startPEP(t, 0, "unused-tcp-dst")
	_ = addr
	go gw.ServeUDPRelay()

	cpeUDP, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cpeUDP.Close()
	go cpe.ServeUDP(cpeUDP, origin.LocalAddr().String())

	client, err := net.Dial("udp", cpeUDP.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	if _, err := client.Write([]byte("query www.google.com")); err != nil {
		t.Fatal(err)
	}
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 2048)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	rtt := time.Since(start)
	if string(buf[:n]) != "QUERY WWW.GOOGLE.COM" {
		t.Fatalf("reply %q", buf[:n])
	}
	// The emulated link is 30 ms one way: the reply cannot beat ~60 ms.
	if rtt < 50*time.Millisecond {
		t.Fatalf("UDP reply in %v — it must cross the satellite twice", rtt)
	}

	// A second transaction reuses the flow.
	client.Write([]byte("again"))
	n, err = client.Read(buf)
	if err != nil || string(buf[:n]) != "AGAIN" {
		t.Fatalf("second transaction: %q %v", buf[:n], err)
	}
}

func TestUDPRelayMultipleClients(t *testing.T) {
	origin, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	go func() {
		buf := make([]byte, 2048)
		for {
			n, addr, err := origin.ReadFrom(buf)
			if err != nil {
				return
			}
			origin.WriteTo(buf[:n], addr) // echo
		}
	}()

	_, cpe, gw := startPEP(t, 0, "unused")
	go gw.ServeUDPRelay()
	cpeUDP, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cpeUDP.Close()
	go cpe.ServeUDP(cpeUDP, origin.LocalAddr().String())

	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			c, err := net.Dial("udp", cpeUDP.LocalAddr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			msg := []byte{byte('a' + i), byte('0' + i)}
			c.Write(msg)
			c.SetReadDeadline(time.Now().Add(10 * time.Second))
			buf := make([]byte, 64)
			n, err := c.Read(buf)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf[:n], msg) {
				errs <- bytes.ErrTooLarge // any sentinel
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestUDPFlowIDStable(t *testing.T) {
	a1 := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 5000}
	a2 := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 5001}
	if udpFlowID(a1) != udpFlowID(a1) {
		t.Fatal("not stable")
	}
	if udpFlowID(a1) == udpFlowID(a2) {
		t.Fatal("distinct addresses collide")
	}
	if udpFlowID(a1) == 0 {
		t.Fatal("zero flow id")
	}
}
