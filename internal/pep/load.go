package pep

// The load harness behind `satpep -load`: it stands up a full
// CPE↔gateway pair over an emulated satellite link, drives thousands of
// concurrent split-TCP flows through it with a configurable size and
// arrival mix, optionally plays a fault schedule (rain fade, beam
// outage, gateway switch) into the live link, and verifies that the
// stream tables drain to zero afterwards — the leak check the tunnel
// lifecycle fixes are measured against.

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"satwatch/internal/dist"
	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/linkemu"
	"satwatch/internal/obs"
	"satwatch/internal/tunnel"
)

// Load-harness metrics (see OBSERVABILITY.md).
var (
	mLoadFlows = obs.NewCounter("pep_load_flows_total",
		"Flows completed by the load harness (successes and failures).", "")
	mLoadErrors = obs.NewCounter("pep_load_flow_errors_total",
		"Load-harness flows that failed (dial error, short or failed transfer).", "")
	mLoadActive = obs.NewGauge("pep_load_active_flows",
		"Flows currently in flight in the load harness.", "")
	mLoadPeak = obs.NewGauge("pep_load_peak_flows",
		"High-water mark of concurrent flows during the load run.", "")
	mLoadLeaked = obs.NewGauge("pep_load_leaked_streams",
		"Tunnel streams still in the CPE+gateway tables after the post-run drain (must be 0).", "")
	mLoadFaultTicks = obs.NewCounter("pep_load_fault_ticks_total",
		"Fault-injector ticks that applied a degraded link condition.", "")
	mLoadHandshake = obs.NewHistogram("pep_load_handshake_seconds",
		"Customer TCP connect latency against the CPE (split-TCP: no satellite RTT).", "seconds", obs.LatencyBuckets())
	mLoadTransfer = obs.NewHistogram("pep_load_transfer_seconds",
		"Request-to-EOF transfer latency through the tunnel.", "seconds", obs.LatencyBuckets())
)

// SizeWeight is one entry of the flow-size mix.
type SizeWeight struct {
	Bytes  int
	Weight float64
}

// ParseMix parses a flow-size mix such as "8k:0.6,64k:0.3,256k:0.1"
// (size:weight pairs; sizes accept k/m suffixes; weights need not sum
// to 1 — they are normalized).
func ParseMix(s string) ([]SizeWeight, error) {
	var mix []SizeWeight
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sz, weight, ok := strings.Cut(part, ":")
		w := 1.0
		if ok {
			var err error
			w, err = strconv.ParseFloat(weight, 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("pep: bad mix weight %q", part)
			}
		}
		n, err := parseSize(sz)
		if err != nil {
			return nil, err
		}
		mix = append(mix, SizeWeight{Bytes: n, Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("pep: empty flow-size mix %q", s)
	}
	return mix, nil
}

func parseSize(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "m"):
		mult, s = 1<<20, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "k"):
		mult, s = 1<<10, strings.TrimSuffix(s, "k")
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("pep: bad flow size %q", s)
	}
	return n * mult, nil
}

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Flows is the total number of flows to run (default 1000).
	Flows int
	// Concurrency caps flows in flight; 0 means no cap beyond Flows.
	Concurrency int
	// Mix is the flow-size distribution; nil means 8k:0.6,64k:0.3,256k:0.1.
	Mix []SizeWeight
	// ArrivalRate is the Poisson flow-arrival rate in flows/s; 0 starts
	// flows as fast as the concurrency cap admits them.
	ArrivalRate float64
	// Link shapes both directions of the emulated satellite path.
	Link linkemu.Link
	// Tunnel tunes the ARQ on both tunnel endpoints.
	Tunnel tunnel.Config
	// Seed drives the link, the mix and the arrival process.
	Seed uint64
	// Faults, when non-nil, is played into the live link: rain fade and
	// beam outages become extra loss, gateway switches extra delay.
	Faults *faults.Schedule
	// FaultSpeedup compresses the schedule: wall seconds × FaultSpeedup =
	// schedule seconds (default 1; a day-long schedule at 1000× plays in
	// ~86 s).
	FaultSpeedup float64
	// DrainTimeout bounds the post-run wait for empty stream tables
	// (default 30 s).
	DrainTimeout time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
	// Ctx, when non-nil, stops the run gracefully on cancellation: no new
	// flows are launched, in-flight flows finish, and the drain check
	// still runs. Used for SIGINT/SIGTERM handling in satpep.
	Ctx context.Context
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Flows <= 0 {
		c.Flows = 1000
	}
	if c.Concurrency <= 0 || c.Concurrency > c.Flows {
		c.Concurrency = c.Flows
	}
	if len(c.Mix) == 0 {
		c.Mix = []SizeWeight{{8 << 10, 0.6}, {64 << 10, 0.3}, {256 << 10, 0.1}}
	}
	if c.FaultSpeedup <= 0 {
		c.FaultSpeedup = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Ctx == nil {
		c.Ctx = context.Background()
	}
	return c
}

// LoadReport summarizes one load run.
type LoadReport struct {
	Flows          int           `json:"flows"`
	Errors         int           `json:"errors"`
	Duration       time.Duration `json:"duration_ns"`
	FlowsPerSecond float64       `json:"flows_per_second"`
	BytesDown      int64         `json:"bytes_down"`
	PeakConcurrent int           `json:"peak_concurrent"`
	HandshakeP50   time.Duration `json:"handshake_p50_ns"`
	HandshakeP99   time.Duration `json:"handshake_p99_ns"`
	TransferP50    time.Duration `json:"transfer_p50_ns"`
	TransferP99    time.Duration `json:"transfer_p99_ns"`
	LeakedCPE      int           `json:"leaked_cpe_streams"`
	LeakedGW       int           `json:"leaked_gw_streams"`
	Retransmits    int64         `json:"retransmits"`
	FaultTicks     int64         `json:"fault_ticks"`
}

// Leaked returns the total leaked streams across both tunnel endpoints.
func (r *LoadReport) Leaked() int { return r.LeakedCPE + r.LeakedGW }

// String renders the per-run summary the CLI prints.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"flows=%d errors=%d duration=%.1fs flows/s=%.1f bytes_down=%d peak_concurrent=%d\n"+
			"handshake p50=%s p99=%s  transfer p50=%s p99=%s\n"+
			"retransmits=%d fault_ticks=%d leaked_streams=%d (cpe=%d gw=%d)",
		r.Flows, r.Errors, r.Duration.Seconds(), r.FlowsPerSecond, r.BytesDown, r.PeakConcurrent,
		r.HandshakeP50.Round(time.Millisecond), r.HandshakeP99.Round(time.Millisecond),
		r.TransferP50.Round(time.Millisecond), r.TransferP99.Round(time.Millisecond),
		r.Retransmits, r.FaultTicks, r.Leaked(), r.LeakedCPE, r.LeakedGW)
}

func counterValue(name string) int64 {
	if s, ok := obs.Default.Get(name); ok {
		return int64(s.Value)
	}
	return 0
}

// RunLoad executes one load run: origin server, gateway, CPE, emulated
// link, N flows, fault playback, and the post-run drain check.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Tunnel.AcceptBacklog == 0 {
		// A gateway sized for this load: the whole admitted burst can be
		// in stream setup at once, and a backlog overflow means resets.
		cfg.Tunnel.AcceptBacklog = cfg.Concurrency
	}
	rnd := dist.NewRand(cfg.Seed)

	// Origin: reads a 4-byte big-endian size, streams that many bytes
	// back, closes. One goroutine per connection.
	origin, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("pep: origin listen: %w", err)
	}
	defer origin.Close()
	go serveOrigin(origin)

	// Emulated link and the two proxy halves.
	linkA, linkB := linkemu.NewPair(cfg.Link, cfg.Link, cfg.Seed)
	cpe := NewCPE(linkA, cfg.Tunnel, nil)
	gw := NewGateway(linkB, cfg.Tunnel, nil, nil)
	defer cpe.Close()
	defer gw.Close()
	go gw.Serve()

	cpeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("pep: cpe listen: %w", err)
	}
	defer cpeLn.Close()
	go cpe.ServeListener(cpeLn, origin.Addr().String())

	// Fault playback into the live link.
	stopFaults := make(chan struct{})
	var faultTicks atomic.Int64
	if cfg.Faults != nil {
		go playFaults(cfg.Faults, cfg.FaultSpeedup, linkA, linkB, &faultTicks, stopFaults)
	}

	retransBase := counterValue("tunnel_retransmits_total")
	cpeAddr := cpeLn.Addr().String()
	mix := normalizeMix(cfg.Mix)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		handshake []time.Duration
		transfer  []time.Duration
		errCount  int
		bytesDown int64
		active    atomic.Int64
		peak      atomic.Int64
	)
	sem := make(chan struct{}, cfg.Concurrency)
	arrivals := rnd.Fork("arrivals")
	start := time.Now()
	launched := 0
	for i := 0; i < cfg.Flows; i++ {
		if cfg.Ctx.Err() != nil {
			cfg.Logf("pep/load: interrupted after %d/%d flows, draining", launched, cfg.Flows)
			break
		}
		if cfg.ArrivalRate > 0 {
			time.Sleep(time.Duration(arrivals.ExpFloat64() / cfg.ArrivalRate * float64(time.Second)))
		}
		size := pickSize(mix, rnd.ForkN("size", uint64(i)).Float64())
		sem <- struct{}{}
		wg.Add(1)
		go func(size int) {
			defer wg.Done()
			defer func() { <-sem }()
			cur := active.Add(1)
			mLoadActive.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			defer func() { active.Add(-1); mLoadActive.Add(-1) }()

			hs, tr, n, ferr := runFlow(cpeAddr, size)
			mLoadFlows.Inc()
			mu.Lock()
			if ferr != nil {
				errCount++
				mu.Unlock()
				mLoadErrors.Inc()
				return
			}
			handshake = append(handshake, hs)
			transfer = append(transfer, tr)
			bytesDown += n
			mu.Unlock()
			mLoadHandshake.ObserveDuration(hs)
			mLoadTransfer.ObserveDuration(tr)
		}(size)
		launched++
		if launched%500 == 0 {
			cfg.Logf("pep/load: %d/%d flows launched, %d in flight", launched, cfg.Flows, active.Load())
		}
	}
	wg.Wait()
	duration := time.Since(start)
	close(stopFaults)

	// Drain: every stream must leave both tables. FINs and their ACKs
	// still need satellite round trips, so poll up to DrainTimeout.
	deadline := time.Now().Add(cfg.DrainTimeout)
	for time.Now().Before(deadline) && cpe.ActiveStreams()+gw.ActiveStreams() > 0 {
		time.Sleep(20 * time.Millisecond)
	}

	rep := &LoadReport{
		Flows:          launched,
		Errors:         errCount,
		Duration:       duration,
		FlowsPerSecond: float64(launched) / duration.Seconds(),
		BytesDown:      bytesDown,
		PeakConcurrent: int(peak.Load()),
		HandshakeP50:   percentile(handshake, 0.50),
		HandshakeP99:   percentile(handshake, 0.99),
		TransferP50:    percentile(transfer, 0.50),
		TransferP99:    percentile(transfer, 0.99),
		LeakedCPE:      cpe.ActiveStreams(),
		LeakedGW:       gw.ActiveStreams(),
		Retransmits:    counterValue("tunnel_retransmits_total") - retransBase,
		FaultTicks:     faultTicks.Load(),
	}
	mLoadPeak.SetMax(float64(rep.PeakConcurrent))
	mLoadLeaked.Set(float64(rep.Leaked()))
	return rep, nil
}

// runFlow runs one customer flow: connect to the CPE (handshake), send
// the 4-byte size request, read the response to EOF (transfer).
func runFlow(cpeAddr string, size int) (handshake, transfer time.Duration, n int64, err error) {
	t0 := time.Now()
	conn, err := net.Dial("tcp", cpeAddr)
	if err != nil {
		return 0, 0, 0, err
	}
	defer conn.Close()
	handshake = time.Since(t0)

	t1 := time.Now()
	var req [4]byte
	binary.BigEndian.PutUint32(req[:], uint32(size))
	if _, err := conn.Write(req[:]); err != nil {
		return handshake, 0, 0, err
	}
	n, err = io.Copy(io.Discard, conn)
	transfer = time.Since(t1)
	if err != nil {
		return handshake, transfer, n, err
	}
	if n != int64(size) {
		return handshake, transfer, n, fmt.Errorf("pep: flow got %d bytes, want %d", n, size)
	}
	return handshake, transfer, n, nil
}

func serveOrigin(ln net.Listener) {
	pattern := make([]byte, 32<<10)
	for i := range pattern {
		pattern[i] = byte(i)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			defer conn.Close()
			var req [4]byte
			if _, err := io.ReadFull(conn, req[:]); err != nil {
				return
			}
			left := int(binary.BigEndian.Uint32(req[:]))
			for left > 0 {
				n := left
				if n > len(pattern) {
					n = len(pattern)
				}
				if _, err := conn.Write(pattern[:n]); err != nil {
					return
				}
				left -= n
			}
		}(conn)
	}
}

// playFaults maps the schedule onto live link conditions at the given
// speedup until stopped: the worst active rain fade over all beams adds
// loss, a beam outage is total loss, and a gateway switch adds one-way
// delay.
func playFaults(sched *faults.Schedule, speedup float64, a, b *linkemu.Endpoint, ticks *atomic.Int64, stop <-chan struct{}) {
	const interval = 50 * time.Millisecond
	tick := time.NewTicker(interval)
	defer tick.Stop()
	beams := geo.Beams()
	start := time.Now()
	applied := linkemu.Conditions{}
	for {
		select {
		case <-stop:
			// Leave the link clean for the drain phase.
			a.SetConditions(linkemu.Conditions{})
			b.SetConditions(linkemu.Conditions{})
			return
		case <-tick.C:
		}
		simT := time.Duration(float64(time.Since(start)) * speedup)
		cond := conditionsAt(sched, simT, beams)
		if cond != applied {
			a.SetConditions(cond)
			b.SetConditions(cond)
			applied = cond
		}
		if cond != (linkemu.Conditions{}) {
			ticks.Add(1)
			mLoadFaultTicks.Inc()
		}
	}
}

// conditionsAt reduces every fault event active at simT to one link
// condition. Overlapping events compose instead of clobbering: concurrent
// rain fronts take the worst intensity, an outage dominates any fade, and
// a gateway switch's extra delay stacks on top of whatever loss the
// weather contributes (the detour RTT splits across the two one-way
// directions). It is a pure function of (schedule, simT, beams) so tests
// can probe overlap semantics directly.
func conditionsAt(sched *faults.Schedule, simT time.Duration, beams []geo.Beam) linkemu.Conditions {
	var cond linkemu.Conditions
	rain := 0.0
	down := false
	for _, bm := range beams {
		if r := sched.Rain(simT, bm.ID); r > rain {
			rain = r
		}
		if sched.BeamDown(simT, bm.ID) {
			down = true
		}
	}
	switch {
	case down:
		cond.ExtraLoss = 1.0
	default:
		// A deep fade past the ACM floor drops frames: map intensity
		// onto up to 20% extra loss.
		cond.ExtraLoss = 0.2 * rain
	}
	cond.ExtraDelay = sched.GatewayRTTExtra(simT) / 2
	return cond
}

func normalizeMix(mix []SizeWeight) []SizeWeight {
	total := 0.0
	for _, m := range mix {
		total += m.Weight
	}
	out := make([]SizeWeight, len(mix))
	for i, m := range mix {
		out[i] = SizeWeight{Bytes: m.Bytes, Weight: m.Weight / total}
	}
	return out
}

func pickSize(mix []SizeWeight, u float64) int {
	acc := 0.0
	for _, m := range mix {
		acc += m.Weight
		if u < acc {
			return m.Bytes
		}
	}
	return mix[len(mix)-1].Bytes
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
