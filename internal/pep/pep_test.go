package pep

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"satwatch/internal/linkemu"
	"satwatch/internal/tunnel"
)

// testLink returns a scaled-down satellite link (30 ms one way) so tests
// stay fast while still exercising delay, jitter, and loss.
func testLink(loss float64) linkemu.Link {
	return linkemu.Link{Delay: 30 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: loss, RateBps: 10e6 / 8}
}

func testTunnelConfig() tunnel.Config {
	return tunnel.Config{RTO: 150 * time.Millisecond, Window: 128, MaxPayload: 1200}
}

// startPEP wires CPE↔gateway over an emulated link and returns the CPE's
// customer-facing listener address proxying to dst.
func startPEP(t *testing.T, loss float64, dst string) (addr string, cpe *CPE, gw *Gateway) {
	t.Helper()
	cpeSide, gwSide := linkemu.NewPair(testLink(loss), testLink(loss), 42)
	cpe = NewCPE(cpeSide, testTunnelConfig(), nil)
	gw = NewGateway(gwSide, testTunnelConfig(), nil, nil)
	go gw.Serve()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go cpe.ServeListener(ln, dst)
	t.Cleanup(func() {
		ln.Close()
		cpe.Close()
		gw.Close()
	})
	return ln.Addr().String(), cpe, gw
}

// startOrigin runs a TCP origin server; handler runs per connection.
func startOrigin(t *testing.T, handler func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go handler(c)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func TestEndToEndRequestResponse(t *testing.T) {
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		buf := make([]byte, 4)
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		c.Write(append([]byte("re:"), buf...))
	})
	addr, cpe, gw := startPEP(t, 0.01, origin)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	resp := make([]byte, 7)
	if _, err := io.ReadFull(conn, resp); err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:ping" {
		t.Fatalf("resp %q", resp)
	}
	if cpe.Stats.Connections.Load() != 1 || gw.Stats.Connections.Load() != 1 {
		t.Fatal("connection counters wrong")
	}
}

func TestHandshakeAcceleration(t *testing.T) {
	// RFC 3135: the customer's TCP handshake terminates at the CPE, so
	// connecting must NOT cost a satellite round trip (60 ms emulated)
	// even though reaching the origin does.
	origin := startOrigin(t, func(c net.Conn) {
		io.Copy(io.Discard, c)
		c.Close()
	})
	addr, _, _ := startPEP(t, 0, origin)

	start := time.Now()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	handshake := time.Since(start)
	defer conn.Close()
	if handshake > 20*time.Millisecond {
		t.Fatalf("local handshake took %v — PEP acceleration broken", handshake)
	}
	// Early data is accepted immediately too.
	start = time.Now()
	if _, err := conn.Write(bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}
	if w := time.Since(start); w > 20*time.Millisecond {
		t.Fatalf("early write blocked %v", w)
	}
}

func TestBulkDownloadIntegrity(t *testing.T) {
	payload := bytes.Repeat([]byte("0123456789abcdef"), 16<<10) // 256 KiB
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		c.Write(payload)
	})
	addr, _, gw := startPEP(t, 0.02, origin)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("downloaded %d bytes, want %d (corrupt or truncated)", len(got), len(payload))
	}
	// Stats land once both relay directions finish; closing our side ends
	// the customer→internet direction.
	conn.Close()
	deadline := time.Now().Add(10 * time.Second)
	for gw.Stats.BytesDown.Load() != int64(len(payload)) {
		if time.Now().After(deadline) {
			t.Fatalf("gateway counted %d bytes down, want %d", gw.Stats.BytesDown.Load(), len(payload))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestUploadPath(t *testing.T) {
	recv := make(chan []byte, 1)
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		data, _ := io.ReadAll(c)
		recv <- data
	})
	addr, _, _ := startPEP(t, 0.02, origin)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	up := bytes.Repeat([]byte("u"), 64<<10)
	if _, err := conn.Write(up); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	select {
	case got := <-recv:
		if !bytes.Equal(got, up) {
			t.Fatalf("origin received %d bytes, want %d", len(got), len(up))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("upload never arrived")
	}
	conn.Close()
}

func TestConcurrentClients(t *testing.T) {
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		io.Copy(c, c)
	})
	addr, _, _ := startPEP(t, 0.01, origin)

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			msg := bytes.Repeat([]byte{byte('A' + i)}, 2048)
			if _, err := conn.Write(msg); err != nil {
				errs <- err
				return
			}
			conn.(*net.TCPConn).CloseWrite()
			got, err := io.ReadAll(conn)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, msg) {
				errs <- fmt.Errorf("client %d echo mismatch (%d bytes)", i, len(got))
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestHalfCloseClientToOriginStillAllowsResponse(t *testing.T) {
	// Customer half-closes after the request (as HTTP clients do): the
	// origin must see EOF on its read side, and its response must still
	// flow back through the relay.
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		req, err := io.ReadAll(c) // EOF arrives via the propagated FIN
		if err != nil {
			return
		}
		c.Write(append([]byte("len="), []byte(fmt.Sprint(len(req)))...))
	})
	addr, _, _ := startPEP(t, 0.01, origin)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(bytes.Repeat([]byte("q"), 1234)); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "len=1234" {
		t.Fatalf("response %q after client half-close", got)
	}
}

func TestHalfCloseOriginToClientStillAllowsUpload(t *testing.T) {
	// Origin half-closes after its banner (as SMTP-style servers do):
	// the customer must see EOF but its upload direction must survive.
	recv := make(chan []byte, 1)
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		c.Write([]byte("banner"))
		c.(*net.TCPConn).CloseWrite()
		data, _ := io.ReadAll(c)
		recv <- data
	})
	addr, _, _ := startPEP(t, 0.01, origin)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	banner := make([]byte, 6)
	if _, err := io.ReadFull(conn, banner); err != nil {
		t.Fatal(err)
	}
	if buf := make([]byte, 1); true {
		if _, err := conn.Read(buf); err != io.EOF {
			t.Fatalf("want EOF after origin half-close, got %v", err)
		}
	}
	up := bytes.Repeat([]byte("u"), 2048)
	if _, err := conn.Write(up); err != nil {
		t.Fatalf("upload after origin half-close failed: %v", err)
	}
	conn.Close()
	select {
	case got := <-recv:
		if !bytes.Equal(got, up) {
			t.Fatalf("origin received %d bytes after half-close, want %d", len(got), len(up))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("upload after origin half-close never arrived")
	}
}

func TestDialFailureClosesClient(t *testing.T) {
	// Gateway dials a dead port: the customer connection must terminate
	// rather than hang (after the satellite RTT, as in the real system).
	addr, _, gw := startPEP(t, 0, "127.0.0.1:1")
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded against a dead origin")
	}
	if gw.Stats.Errors.Load() == 0 {
		t.Fatal("gateway did not record the dial failure")
	}
}
