package pep

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"satwatch/internal/linkemu"
)

// startPEPWithDial is startPEP with a custom gateway dial function, so
// tests can inject transient origin failures.
func startPEPWithDial(t *testing.T, dst string, dial func(string) (net.Conn, error), tune func(*Gateway)) (addr string, gw *Gateway) {
	t.Helper()
	cpeSide, gwSide := linkemu.NewPair(testLink(0), testLink(0), 42)
	cpe := NewCPE(cpeSide, testTunnelConfig(), nil)
	gw = NewGateway(gwSide, testTunnelConfig(), dial, nil)
	if tune != nil {
		tune(gw)
	}
	go gw.Serve()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go cpe.ServeListener(ln, dst)
	t.Cleanup(func() {
		ln.Close()
		cpe.Close()
		gw.Close()
	})
	return ln.Addr().String(), gw
}

// TestDialRetryRecoversTransientFailure is the regression test for the
// retry path: a dial that fails twice and then succeeds must complete the
// flow (no reset) and count exactly two retries, where before the fix the
// first failure reset the stream immediately.
func TestDialRetryRecoversTransientFailure(t *testing.T) {
	origin := startOrigin(t, func(c net.Conn) {
		defer c.Close()
		c.Write([]byte("hello"))
	})

	var attempts atomic.Int64
	flaky := func(dst string) (net.Conn, error) {
		if attempts.Add(1) <= 2 {
			return nil, errors.New("transient: connection refused")
		}
		return net.Dial("tcp", dst)
	}
	retriesBefore := mDialRetries.Value()
	errorsBefore := mDialErrors.Value()
	addr, gw := startPEPWithDial(t, origin, flaky, func(g *Gateway) {
		g.DialRetryBase = time.Millisecond
		g.DialRetryCap = 4 * time.Millisecond
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatalf("flow failed despite dial recovery: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q, want %q", got, "hello")
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("dial attempts = %d, want 3 (1 failure-free retry budget left unused)", n)
	}
	if d := mDialRetries.Value() - retriesBefore; d != 2 {
		t.Fatalf("pep_dial_retries_total delta = %d, want 2", d)
	}
	if d := mDialErrors.Value() - errorsBefore; d != 0 {
		t.Fatalf("pep_dial_errors_total delta = %d, want 0 (the dial recovered)", d)
	}
	if gw.Stats.Errors.Load() != 0 {
		t.Fatalf("gateway recorded %d errors for a recovered dial", gw.Stats.Errors.Load())
	}
}

// TestDialRetryExhaustionResets verifies the failure side: a permanently
// dead origin is retried exactly DialRetries times with capped exponential
// backoff, then the stream is reset and the error counted once.
func TestDialRetryExhaustionResets(t *testing.T) {
	var attempts atomic.Int64
	dead := func(string) (net.Conn, error) {
		attempts.Add(1)
		return nil, errors.New("connection refused")
	}
	var backoffs []time.Duration
	errorsBefore := mDialErrors.Value()
	addr, gw := startPEPWithDial(t, "127.0.0.1:1", dead, func(g *Gateway) {
		g.DialRetries = 4
		g.DialRetryBase = time.Millisecond
		g.DialRetryCap = 4 * time.Millisecond
		g.sleep = func(d time.Duration) { backoffs = append(backoffs, d) }
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read succeeded against a dead origin")
	}
	if n := attempts.Load(); n != 5 {
		t.Fatalf("dial attempts = %d, want 5 (1 initial + 4 retries)", n)
	}
	if len(backoffs) != 4 {
		t.Fatalf("backoff sleeps = %d, want 4", len(backoffs))
	}
	// Jittered capped exponential: each sleep lands in [step/2, 3*step/2]
	// for step = min(base<<attempt, cap).
	for i, d := range backoffs {
		step := time.Millisecond << i
		if step > 4*time.Millisecond {
			step = 4 * time.Millisecond
		}
		if d < step/2 || d > step+step/2 {
			t.Errorf("backoff %d = %v, want within [%v, %v]", i, d, step/2, step+step/2)
		}
	}
	if d := mDialErrors.Value() - errorsBefore; d != 1 {
		t.Fatalf("pep_dial_errors_total delta = %d, want 1", d)
	}
	if gw.Stats.Errors.Load() != 1 {
		t.Fatalf("gateway errors = %d, want 1", gw.Stats.Errors.Load())
	}
}
