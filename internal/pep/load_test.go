package pep

import (
	"testing"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/linkemu"
	"satwatch/internal/tunnel"
)

func loadTestLink() linkemu.Link {
	return linkemu.Link{Delay: 20 * time.Millisecond, Jitter: 4 * time.Millisecond, Loss: 0.005, RateBps: 0}
}

func loadTestTunnel() tunnel.Config {
	return tunnel.Config{RTO: 120 * time.Millisecond, Window: 64, MaxPayload: 1200}
}

func TestParseMix(t *testing.T) {
	mix, err := ParseMix("8k:0.6,64k:0.3,256k:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].Bytes != 8<<10 || mix[2].Bytes != 256<<10 {
		t.Fatalf("mix %+v", mix)
	}
	if _, err := ParseMix("1m"); err != nil {
		t.Fatalf("bare size rejected: %v", err)
	}
	for _, bad := range []string{"", "x:1", "8k:-1", "0:1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("mix %q accepted", bad)
		}
	}
}

func TestPickSizeCoversMix(t *testing.T) {
	mix := normalizeMix([]SizeWeight{{100, 1}, {200, 1}})
	if pickSize(mix, 0.1) != 100 || pickSize(mix, 0.9) != 200 || pickSize(mix, 1.0) != 200 {
		t.Fatal("weighted size selection broken")
	}
}

// TestRunLoadDrainsClean is the harness's own leak check: a reduced run
// over a scaled-down link must finish with zero flow errors and empty
// stream tables on both ends.
func TestRunLoadDrainsClean(t *testing.T) {
	flows := 120
	if testing.Short() {
		flows = 30
	}
	rep, err := RunLoad(LoadConfig{
		Flows:        flows,
		Concurrency:  40,
		Mix:          []SizeWeight{{4 << 10, 0.7}, {32 << 10, 0.3}},
		Link:         loadTestLink(),
		Tunnel:       loadTestTunnel(),
		Seed:         7,
		DrainTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d flow errors: %s", rep.Errors, rep)
	}
	if rep.Leaked() != 0 {
		t.Fatalf("leaked streams after drain: %s", rep)
	}
	if rep.Flows != flows || rep.FlowsPerSecond <= 0 {
		t.Fatalf("implausible report: %s", rep)
	}
	if rep.HandshakeP50 > 20*time.Millisecond {
		t.Fatalf("handshake p50 %v — split-TCP acceleration broken under load", rep.HandshakeP50)
	}
	// Transfers cross the 20 ms link twice at minimum.
	if rep.TransferP50 < 20*time.Millisecond {
		t.Fatalf("transfer p50 %v below one link RTT — measurements broken", rep.TransferP50)
	}
}

// TestRunLoadWithFaults plays a compressed fault schedule into the live
// link; flows may slow down but must still complete and drain.
func TestRunLoadWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected load run skipped in -short mode")
	}
	// A deterministic schedule active from t=0 so even a sub-second run
	// is guaranteed to hit it: a moderate rain front plus a gateway
	// detour over the whole window.
	sched := &faults.Schedule{Name: "loadtest", Events: []faults.Event{
		{Kind: faults.RainFront, Beam: -1, Start: 0, End: 24 * time.Hour, Peak: 0.4},
		{Kind: faults.GatewaySwitch, Beam: -1, Start: 0, End: 24 * time.Hour, RTTStep: 20 * time.Millisecond},
	}}
	rep, err := RunLoad(LoadConfig{
		Flows:        40,
		Concurrency:  20,
		Mix:          []SizeWeight{{4 << 10, 1}},
		Link:         loadTestLink(),
		Tunnel:       loadTestTunnel(),
		Seed:         8,
		Faults:       sched,
		DrainTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Leaked() != 0 {
		t.Fatalf("leaked streams after faulted run: %s", rep)
	}
	if rep.FaultTicks == 0 {
		t.Fatal("fault injector never applied a degraded condition")
	}
}
