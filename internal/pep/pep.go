// Package pep implements a working RFC 3135 Performance Enhancing Proxy:
// the split-TCP pair the SatCom operator runs (§2.1). The CPE side
// terminates customer TCP connections locally — so the three-way handshake
// completes without crossing the satellite — and relays the byte stream
// over the reliable tunnel (package tunnel); the gateway side terminates
// the tunnel streams and opens the real TCP connections to origin servers.
// The two TCP congestion-control loops are thereby fully decoupled.
package pep

import (
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"satwatch/internal/tunnel"
)

// Stats counts proxy activity; all fields are atomically updated.
type Stats struct {
	Connections atomic.Int64
	BytesUp     atomic.Int64 // customer → internet
	BytesDown   atomic.Int64 // internet → customer
	Errors      atomic.Int64
}

// CPE is the customer-side proxy: it owns the CPE end of the tunnel.
type CPE struct {
	tn    *tunnel.Tunnel
	Stats Stats
	log   *slog.Logger
}

// NewCPE builds the CPE proxy over a satellite transport.
func NewCPE(tr tunnel.Transport, cfg tunnel.Config, logger *slog.Logger) *CPE {
	if logger == nil {
		logger = slog.Default()
	}
	return &CPE{tn: tunnel.New(tr, cfg, true), log: logger}
}

// Close tears down the tunnel and all proxied connections.
func (c *CPE) Close() error { return c.tn.Close() }

// ActiveStreams reports the live entries in the tunnel's stream table —
// the load harness's leak check after a full drain.
func (c *CPE) ActiveStreams() int { return c.tn.NumStreams() }

// ServeListener accepts customer TCP connections on ln and proxies each to
// dst through the satellite tunnel. It returns when the listener fails
// (e.g. is closed).
func (c *CPE) ServeListener(ln net.Listener, dst string) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go c.ProxyConn(conn, dst)
	}
}

// ProxyConn relays one already-accepted customer connection to dst. By the
// time this runs the customer's TCP handshake has already completed
// locally — the RFC 3135 acceleration — and any early data is forwarded
// immediately without waiting for the satellite round trip.
func (c *CPE) ProxyConn(conn net.Conn, dst string) {
	defer conn.Close()
	stream, err := c.tn.OpenStream(dst)
	if err != nil {
		c.Stats.Errors.Add(1)
		c.log.Error("pep/cpe: opening stream", "dst", dst, "err", err)
		return
	}
	c.Stats.Connections.Add(1)
	up, down := relay(conn, stream)
	c.Stats.BytesUp.Add(up)
	c.Stats.BytesDown.Add(down)
}

// Gateway dial-retry defaults: a transient origin dial failure (listener
// backlog blip, ephemeral port exhaustion, flapping route) is retried a
// few times with capped exponential backoff before the customer pays the
// satellite-RTT cost of a reset.
const (
	// DefaultDialRetries is the number of re-dials after the first
	// failure before the stream is Reset.
	DefaultDialRetries = 3
	// DefaultDialRetryBase is the first backoff step; each retry doubles
	// it, capped at DefaultDialRetryCap, with ±50% jitter to decorrelate
	// a burst of failing streams.
	DefaultDialRetryBase = 50 * time.Millisecond
	DefaultDialRetryCap  = time.Second
)

// Gateway is the ground-station side: it accepts tunnel streams and opens
// the real TCP connections toward the internet.
type Gateway struct {
	tn    *tunnel.Tunnel
	dial  func(dst string) (net.Conn, error)
	Stats Stats
	log   *slog.Logger

	// DialRetries / DialRetryBase / DialRetryCap tune the dial-retry
	// policy. The zero values take the Default* constants; DialRetries
	// < 0 disables retrying. Set them before Serve.
	DialRetries   int
	DialRetryBase time.Duration
	DialRetryCap  time.Duration

	// sleep is swapped out by tests to observe backoff without waiting.
	sleep func(time.Duration)
}

// NewGateway builds the gateway over a satellite transport. dial opens the
// internet-side connections; nil means net.Dial("tcp", dst).
func NewGateway(tr tunnel.Transport, cfg tunnel.Config, dial func(string) (net.Conn, error), logger *slog.Logger) *Gateway {
	if dial == nil {
		dial = func(dst string) (net.Conn, error) { return net.Dial("tcp", dst) }
	}
	if logger == nil {
		logger = slog.Default()
	}
	return &Gateway{tn: tunnel.New(tr, cfg, false), dial: dial, log: logger}
}

// Close tears down the tunnel and all proxied connections.
func (g *Gateway) Close() error { return g.tn.Close() }

// ActiveStreams reports the live entries in the tunnel's stream table.
func (g *Gateway) ActiveStreams() int { return g.tn.NumStreams() }

// Serve accepts tunnel streams until the tunnel closes. Each stream's
// destination label is dialed on the internet side; a dial failure simply
// closes the stream (the customer sees a reset after the satellite RTT, as
// in the real system).
func (g *Gateway) Serve() error {
	for {
		stream, dst, err := g.tn.Accept()
		if err != nil {
			if errors.Is(err, tunnel.ErrClosed) {
				return nil
			}
			return err
		}
		go g.handle(stream, dst)
	}
}

// dialWithRetry dials dst, retrying transient failures with capped
// exponential backoff and jitter. A stream that dies while we back off
// (peer reset, tunnel teardown) aborts the retry loop early.
func (g *Gateway) dialWithRetry(stream *tunnel.Stream, dst string) (net.Conn, error) {
	retries := g.DialRetries
	if retries == 0 {
		retries = DefaultDialRetries
	}
	base := g.DialRetryBase
	if base <= 0 {
		base = DefaultDialRetryBase
	}
	cap := g.DialRetryCap
	if cap <= 0 {
		cap = DefaultDialRetryCap
	}
	sleep := g.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	conn, err := g.dial(dst)
	for attempt := 0; err != nil && attempt < retries; attempt++ {
		backoff := base << attempt
		if backoff > cap {
			backoff = cap
		}
		// ±50% jitter decorrelates a burst of streams all re-dialing a
		// briefly unreachable origin.
		backoff = backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		sleep(backoff)
		if stream.Err() != nil {
			return nil, err
		}
		mDialRetries.Inc()
		conn, err = g.dial(dst)
	}
	return conn, err
}

func (g *Gateway) handle(stream *tunnel.Stream, dst string) {
	conn, err := g.dialWithRetry(stream, dst)
	if err != nil {
		g.Stats.Errors.Add(1)
		mDialErrors.Inc()
		g.log.Error("pep/gw: dialing", "dst", dst, "err", err)
		// Abort rather than half-close: the customer must see a reset,
		// not a clean empty response.
		stream.Reset()
		return
	}
	defer conn.Close()
	g.Stats.Connections.Add(1)
	down, up := relay(conn, stream)
	g.Stats.BytesDown.Add(down)
	g.Stats.BytesUp.Add(up)
}

// relay pumps bytes both ways between a TCP connection and a tunnel
// stream, propagating half-closes, and returns (bytes conn→stream,
// bytes stream→conn) once both directions finish.
func relay(conn net.Conn, stream *tunnel.Stream) (toStream, toConn int64) {
	mRelays.Inc()
	mRelaysActive.Add(1)
	defer mRelaysActive.Add(-1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		n, _ := io.Copy(stream, conn)
		toStream = n
		// Customer/server finished sending: half-close the stream so the
		// peer sees EOF after draining.
		stream.Close()
	}()
	go func() {
		defer wg.Done()
		n, _ := io.Copy(conn, stream)
		toConn = n
		if stream.Err() != nil {
			// The stream died (reset or tunnel failure): tear the TCP
			// side down fully so the other copy unblocks.
			conn.Close()
			return
		}
		// Stream EOF: propagate as a TCP half-close when supported.
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		} else {
			conn.Close()
		}
	}()
	wg.Wait()
	if stream.Err() != nil {
		mRelayErrors.Inc()
	}
	return toStream, toConn
}
