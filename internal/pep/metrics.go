package pep

import "satwatch/internal/obs"

// Relay metrics (see OBSERVABILITY.md). The simulation-side PEP model
// (internal/pepmodel) owns pep_setups_total and friends; these cover the
// real-socket proxy path.
var (
	mRelays = obs.NewCounter("pep_relays_total",
		"Proxied connections that entered the relay (CPE and gateway side combined).", "")
	mRelaysActive = obs.NewGauge("pep_relays_active",
		"Relays currently pumping bytes between a TCP connection and a tunnel stream.", "")
	mRelayErrors = obs.NewCounter("pep_relay_errors_total",
		"Relays that ended on a stream error (reset, timeout, tunnel failure) instead of clean EOFs.", "")
	mDialErrors = obs.NewCounter("pep_dial_errors_total",
		"Gateway dials toward the origin that failed after exhausting retries; the customer sees a reset.", "")
	mDialRetries = obs.NewCounter("pep_dial_retries_total",
		"Gateway re-dials toward the origin after a transient dial failure (capped exponential backoff).", "")
)
