// Package cdn models the internet side of the ground station: where the
// servers of popular services actually sit, and therefore which
// ground-segment RTT a flow experiences once it leaves the gateway in Italy.
//
// The regions reproduce the clusters of the paper's Figure 9: CDN nodes
// with direct peering at ~12 ms, other European hosting at ~15-17 ms and
// ~35 ms, U.S. East/West coast clouds at ~95/180 ms, services hosted back
// in the customer's African country at 300-400 ms (all traffic must hairpin
// through Italy, §6.2), and Chinese services at ~250-350 ms.
package cdn

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"
	"time"

	"satwatch/internal/dist"
)

// Region is a server-hosting location, measured from the ground station.
type Region string

// The hosting regions of Figure 9.
const (
	RegionPeered     Region = "peered-cdn" // direct peering at the gateway
	RegionEuropeNear Region = "europe-near"
	RegionEurope     Region = "europe"
	RegionUSEast     Region = "us-east"
	RegionUSWest     Region = "us-west"
	RegionAfrica     Region = "africa-local"
	RegionAsia       Region = "asia"
	RegionChina      Region = "china"
)

// rttBand is the ground-RTT distribution of a region, as a lognormal around
// the Figure 9 bump with a light tail.
type rttBand struct {
	median time.Duration
	sigma  float64
}

var bands = map[Region]rttBand{
	RegionPeered:     {12 * time.Millisecond, 0.10},
	RegionEuropeNear: {16 * time.Millisecond, 0.12},
	RegionEurope:     {35 * time.Millisecond, 0.15},
	RegionUSEast:     {95 * time.Millisecond, 0.08},
	RegionUSWest:     {180 * time.Millisecond, 0.06},
	RegionAfrica:     {340 * time.Millisecond, 0.12},
	RegionAsia:       {120 * time.Millisecond, 0.14},
	RegionChina:      {260 * time.Millisecond, 0.14},
}

// Regions lists all hosting regions in increasing-RTT order.
func Regions() []Region {
	return []Region{RegionPeered, RegionEuropeNear, RegionEurope, RegionUSEast, RegionAsia, RegionUSWest, RegionChina, RegionAfrica}
}

// MedianGroundRTT returns the region's typical ground-segment RTT.
func MedianGroundRTT(r Region) time.Duration { return bands[r].median }

// SampleGroundRTT draws one ground-segment RTT for a server in the region.
func SampleGroundRTT(region Region, r *dist.Rand) time.Duration {
	b, ok := bands[region]
	if !ok {
		b = bands[RegionEurope]
	}
	ln := dist.LogNormalFromMedian(float64(b.median), b.sigma)
	return time.Duration(ln.Sample(r))
}

// regionPrefix gives each region a distinctive address space so analyses
// (and tests) can recover the region from a server address.
var regionPrefix = map[Region]netip.Prefix{
	RegionPeered:     netip.MustParsePrefix("151.101.0.0/16"),
	RegionEuropeNear: netip.MustParsePrefix("185.60.0.0/16"),
	RegionEurope:     netip.MustParsePrefix("34.76.0.0/16"),
	RegionUSEast:     netip.MustParsePrefix("52.20.0.0/16"),
	RegionUSWest:     netip.MustParsePrefix("13.52.0.0/16"),
	RegionAfrica:     netip.MustParsePrefix("102.89.0.0/16"),
	RegionAsia:       netip.MustParsePrefix("47.74.0.0/16"),
	RegionChina:      netip.MustParsePrefix("39.156.0.0/16"),
}

// ServerAddr returns the deterministic address of replica i of a domain in
// a region. The same (domain, region, i) always maps to the same address.
func ServerAddr(domain string, region Region, i int) netip.Addr {
	p, ok := regionPrefix[region]
	if !ok {
		p = regionPrefix[RegionEurope]
	}
	h := fnv.New32a()
	h.Write([]byte(domain))
	var ib [4]byte
	binary.BigEndian.PutUint32(ib[:], uint32(i))
	h.Write(ib[:])
	v := h.Sum32()
	base := p.Addr().As4()
	// Fill the host bits (16 for our /16s) from the hash, avoiding .0/.255.
	base[2] = byte(v >> 8)
	base[3] = byte(v)
	if base[3] == 0 || base[3] == 255 {
		base[3] = 1 + byte(v>>16)%250
	}
	return netip.AddrFrom4(base)
}

// RegionOf recovers the hosting region from a server address, for the
// analytics stage (the probe only sees addresses). ok is false for
// addresses outside any modeled region.
func RegionOf(addr netip.Addr) (Region, bool) {
	for region, p := range regionPrefix {
		if p.Contains(addr) {
			return region, true
		}
	}
	return "", false
}
