package cdn

import (
	"fmt"
	"strings"

	"satwatch/internal/dist"
)

// AppProtocol is the application protocol a service's clients speak.
type AppProtocol uint8

// The protocol classes of Table 1.
const (
	AppHTTPS    AppProtocol = iota // TLS over TCP 443
	AppHTTP                        // plain HTTP over TCP 80
	AppQUIC                        // QUIC over UDP 443
	AppTCPOther                    // opaque TCP (VPN, mail, games)
	AppRTP                         // RTP over UDP (real-time voice/video)
	AppUDPOther                    // opaque UDP
)

func (p AppProtocol) String() string {
	switch p {
	case AppHTTPS:
		return "TCP/HTTPS"
	case AppHTTP:
		return "TCP/HTTP"
	case AppQUIC:
		return "UDP/QUIC"
	case AppTCPOther:
		return "Other TCP"
	case AppRTP:
		return "UDP/RTP"
	case AppUDPOther:
		return "Other UDP"
	}
	return fmt.Sprintf("AppProtocol(%d)", uint8(p))
}

// HostingKind describes how a domain's server is selected (§6.4).
type HostingKind uint8

const (
	// HostAnycast services reach the closest node regardless of the DNS
	// resolver used (the paper's nflxvideo.net case).
	HostAnycast HostingKind = iota
	// HostGeoDNS services return a server chosen from the *resolver's*
	// idea of where the client is — the mechanism the forced routing
	// through Italy confuses.
	HostGeoDNS
	// HostSingle services live in one fixed region.
	HostSingle
)

// Entry is one catalog domain.
type Entry struct {
	Domain  string // representative FQDN
	Kind    HostingKind
	Home    Region // HostSingle: location; HostGeoDNS/Anycast: best region
	Proto   AppProtocol
	Service string // services registry name, "" when untracked
	Sharded bool   // CDN-style numbered hostname shards exist
}

// The domain catalog: the popular services the paper's Appendix A tracks
// plus the untracked long tail its tables surface (Chinese platforms,
// African local services, OS updates, US clouds).
var catalog = []Entry{
	// Search / Google properties (GeoDNS, best served from peered nodes).
	{Domain: "www.google.com", Kind: HostGeoDNS, Home: RegionPeered, Proto: AppQUIC, Service: "Google"},
	{Domain: "play.googleapis.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS},
	{Domain: "www.gstatic.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS},
	{Domain: "www.youtube.com", Kind: HostGeoDNS, Home: RegionPeered, Proto: AppQUIC, Service: "Youtube"},
	{Domain: "googlevideo.com", Kind: HostGeoDNS, Home: RegionPeered, Proto: AppQUIC, Service: "Youtube", Sharded: true},
	{Domain: "i.ytimg.com", Kind: HostGeoDNS, Home: RegionPeered, Proto: AppQUIC, Service: "Youtube"},
	// Video.
	{Domain: "api-global.netflix.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Netflix"},
	{Domain: "nflxvideo.net", Kind: HostAnycast, Home: RegionPeered, Proto: AppHTTPS, Service: "Netflix", Sharded: true},
	{Domain: "assets.nflxext.com", Kind: HostAnycast, Home: RegionPeered, Proto: AppHTTPS, Service: "Netflix"},
	{Domain: "video-cdn.sky.com", Kind: HostSingle, Home: RegionEuropeNear, Proto: AppHTTP, Service: "Sky"},
	{Domain: "ocsp.sky.com", Kind: HostSingle, Home: RegionEuropeNear, Proto: AppHTTP, Service: "Sky"},
	{Domain: "atv-ps-eu.amazon.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Primevideo"},
	{Domain: "pv-cdn.net", Kind: HostAnycast, Home: RegionPeered, Proto: AppHTTPS, Service: "Primevideo", Sharded: true},
	// Social & chat (Meta properties are GeoDNS with wide presence).
	{Domain: "edge-mqtt.facebook.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS, Service: "Facebook"},
	{Domain: "fbcdn.net", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppQUIC, Service: "Facebook", Sharded: true},
	{Domain: "i.instagram.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS, Service: "Instagram"},
	{Domain: "cdninstagram.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppQUIC, Service: "Instagram", Sharded: true},
	{Domain: "e1.whatsapp.net", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS, Service: "Whatsapp"},
	{Domain: "mmg.whatsapp.net", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS, Service: "Whatsapp"},
	{Domain: "api.twitter.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Twitter"},
	{Domain: "www.linkedin.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Linkedin"},
	{Domain: "v16-webapp.tiktokv.com", Kind: HostGeoDNS, Home: RegionEurope, Proto: AppHTTPS, Service: "Tiktok"},
	{Domain: "tiktokcdn.com", Kind: HostGeoDNS, Home: RegionEurope, Proto: AppHTTPS, Service: "Tiktok", Sharded: true},
	{Domain: "app.snapchat.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Snapchat"},
	{Domain: "web.telegram.org", Kind: HostSingle, Home: RegionEuropeNear, Proto: AppHTTPS, Service: "Telegram"},
	{Domain: "short.weixin.qq.com", Kind: HostSingle, Home: RegionChina, Proto: AppHTTPS, Service: "Wechat"},
	// Audio.
	{Domain: "audio4-fa.scdn.com", Kind: HostAnycast, Home: RegionPeered, Proto: AppHTTPS, Service: "Spotify"},
	{Domain: "api.spotify.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Spotify"},
	// Work.
	{Domain: "outlook.office365.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Office365"},
	{Domain: "teams.microsoft.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Office365"},
	{Domain: "dl.dropboxusercontent.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Dropbox"},
	{Domain: "edge.skype.com", Kind: HostSingle, Home: RegionEurope, Proto: AppHTTPS, Service: "Skype"},
	// Apple & OS updates (the Ireland/U.K. HTTP share of Figure 3).
	{Domain: "captive.apple.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS},
	{Domain: "au.download.windowsupdate.com", Kind: HostSingle, Home: RegionEuropeNear, Proto: AppHTTP},
	{Domain: "gs.apple.com", Kind: HostGeoDNS, Home: RegionEuropeNear, Proto: AppHTTPS},
	// US clouds.
	{Domain: "s3.amazonaws.com", Kind: HostSingle, Home: RegionUSEast, Proto: AppHTTPS},
	{Domain: "github.com", Kind: HostSingle, Home: RegionUSEast, Proto: AppHTTPS},
	{Domain: "api.zoom.us", Kind: HostSingle, Home: RegionUSWest, Proto: AppHTTPS},
	{Domain: "cdn.cloudflare.net", Kind: HostAnycast, Home: RegionPeered, Proto: AppHTTPS, Sharded: true},
	// African local services (§6.2: hairpin through Italy).
	{Domain: "scooper.news", Kind: HostSingle, Home: RegionAfrica, Proto: AppHTTPS},
	{Domain: "shalltry.com", Kind: HostSingle, Home: RegionAfrica, Proto: AppHTTPS},
	{Domain: "www.gtbank.com", Kind: HostSingle, Home: RegionAfrica, Proto: AppHTTPS},
	{Domain: "ewn.co.za", Kind: HostSingle, Home: RegionAfrica, Proto: AppHTTPS},
	{Domain: "www.dstv.com", Kind: HostSingle, Home: RegionAfrica, Proto: AppHTTPS},
	// Chinese platforms popular with the Chinese communities in Africa.
	{Domain: "news.netease.com", Kind: HostSingle, Home: RegionChina, Proto: AppHTTPS},
	{Domain: "www.qq.com", Kind: HostSingle, Home: RegionChina, Proto: AppHTTPS},
	{Domain: "msg.umeng.com", Kind: HostSingle, Home: RegionChina, Proto: AppHTTPS},
	{Domain: "p2.yximgs.com", Kind: HostSingle, Home: RegionChina, Proto: AppHTTPS},
}

var catalogByDomain = func() map[string]Entry {
	m := make(map[string]Entry, len(catalog))
	for _, e := range catalog {
		m[e.Domain] = e
	}
	return m
}()

// Catalog returns all entries in a stable order.
func Catalog() []Entry {
	out := make([]Entry, len(catalog))
	copy(out, catalog)
	return out
}

// Lookup finds the catalog entry serving an FQDN: an exact match, or the
// sharded base domain the FQDN ends with.
func Lookup(fqdn string) (Entry, bool) {
	fqdn = strings.ToLower(strings.TrimSuffix(fqdn, "."))
	if e, ok := catalogByDomain[fqdn]; ok {
		return e, true
	}
	for _, e := range catalog {
		if e.Sharded && strings.HasSuffix(fqdn, "."+e.Domain) {
			return e, true
		}
	}
	return Entry{}, false
}

// FQDN returns a concrete hostname for the entry. Sharded entries get a
// CDN-style numbered shard label (deterministic per draw), matching the
// paper's observation that CDN names embed numbers and country codes.
func (e Entry) FQDN(r *dist.Rand) string {
	if !e.Sharded {
		return e.Domain
	}
	switch {
	case strings.Contains(e.Domain, "googlevideo"):
		return fmt.Sprintf("rr%d---sn-%02x.%s", 1+r.IntN(8), r.IntN(256), e.Domain)
	case strings.Contains(e.Domain, "nflxvideo"):
		return fmt.Sprintf("ipv4-c%03d-mxp001-ix.1.oca.%s", r.IntN(200), e.Domain)
	case strings.Contains(e.Domain, "fbcdn"):
		return fmt.Sprintf("scontent-mxp%d-1.xx.%s", 1+r.IntN(2), e.Domain)
	default:
		return fmt.Sprintf("cdn%d.%s", 1+r.IntN(16), e.Domain)
	}
}
