package cdn

import (
	"testing"
	"time"

	"satwatch/internal/dist"
)

func TestRegionRTTOrdering(t *testing.T) {
	regions := Regions()
	prev := time.Duration(0)
	for _, reg := range regions {
		m := MedianGroundRTT(reg)
		if m < prev {
			t.Fatalf("Regions() not in increasing RTT order at %s (%v < %v)", reg, m, prev)
		}
		prev = m
	}
}

func TestFigure9Bumps(t *testing.T) {
	// The paper's ground-RTT clusters: ~12, 15-17, 35, 95, 180, 300-400 ms.
	cases := map[Region][2]time.Duration{
		RegionPeered:     {10 * time.Millisecond, 14 * time.Millisecond},
		RegionEuropeNear: {14 * time.Millisecond, 18 * time.Millisecond},
		RegionEurope:     {30 * time.Millisecond, 40 * time.Millisecond},
		RegionUSEast:     {90 * time.Millisecond, 100 * time.Millisecond},
		RegionUSWest:     {170 * time.Millisecond, 190 * time.Millisecond},
		RegionAfrica:     {300 * time.Millisecond, 400 * time.Millisecond},
	}
	for reg, band := range cases {
		m := MedianGroundRTT(reg)
		if m < band[0] || m > band[1] {
			t.Errorf("%s median %v outside paper band [%v, %v]", reg, m, band[0], band[1])
		}
	}
}

func TestSampleGroundRTTConcentration(t *testing.T) {
	r := dist.NewRand(1)
	const n = 20000
	within := 0
	med := MedianGroundRTT(RegionEurope)
	for i := 0; i < n; i++ {
		s := SampleGroundRTT(RegionEurope, r)
		if s <= 0 {
			t.Fatalf("non-positive RTT sample %v", s)
		}
		if s > med/2 && s < med*2 {
			within++
		}
	}
	if frac := float64(within) / n; frac < 0.95 {
		t.Fatalf("only %.2f of samples within 2x of the median; band too loose", frac)
	}
}

func TestSampleGroundRTTUnknownRegionFallsBack(t *testing.T) {
	r := dist.NewRand(2)
	if SampleGroundRTT(Region("nowhere"), r) <= 0 {
		t.Fatal("fallback region broken")
	}
}

func TestServerAddrDeterminismAndRegion(t *testing.T) {
	a1 := ServerAddr("www.google.com", RegionPeered, 0)
	a2 := ServerAddr("www.google.com", RegionPeered, 0)
	if a1 != a2 {
		t.Fatal("same inputs gave different addresses")
	}
	if ServerAddr("www.google.com", RegionPeered, 1) == a1 {
		t.Fatal("different replicas share an address")
	}
	reg, ok := RegionOf(a1)
	if !ok || reg != RegionPeered {
		t.Fatalf("RegionOf(%v) = %v,%v", a1, reg, ok)
	}
	for _, region := range Regions() {
		addr := ServerAddr("x.example", region, 3)
		got, ok := RegionOf(addr)
		if !ok || got != region {
			t.Fatalf("round trip for %s failed: got %v", region, got)
		}
		b := addr.As4()
		if b[3] == 0 || b[3] == 255 {
			t.Fatalf("degenerate host byte in %v", addr)
		}
	}
}

func TestRegionOfUnknown(t *testing.T) {
	if _, ok := RegionOf(ServerAddr("x", Region("bogus"), 0)); !ok {
		// Bogus regions fall back to Europe's prefix, which is known.
		t.Fatal("fallback prefix not recognized")
	}
}

func TestCatalogLookup(t *testing.T) {
	if _, ok := Lookup("www.google.com"); !ok {
		t.Fatal("exact lookup failed")
	}
	e, ok := Lookup("rr3---sn-4g5ednd6.googlevideo.com")
	if !ok {
		t.Fatal("sharded suffix lookup failed")
	}
	if e.Service != "Youtube" {
		t.Fatalf("sharded entry service %q", e.Service)
	}
	if _, ok := Lookup("unknown.example"); ok {
		t.Fatal("unknown domain resolved")
	}
	if _, ok := Lookup("WWW.GOOGLE.COM."); !ok {
		t.Fatal("case/dot normalization failed")
	}
}

func TestCatalogConsistency(t *testing.T) {
	for _, e := range Catalog() {
		if e.Domain == "" {
			t.Fatal("entry without domain")
		}
		if _, ok := bands[e.Home]; !ok {
			t.Fatalf("%s home region %q has no RTT band", e.Domain, e.Home)
		}
		if e.Kind == HostAnycast && e.Home != RegionPeered {
			t.Errorf("%s: anycast entries should resolve to the peered region", e.Domain)
		}
	}
}

func TestAfricanAndChineseServicesExist(t *testing.T) {
	// §6.2's rightmost bumps need local-African and Chinese services.
	var af, cn int
	for _, e := range Catalog() {
		switch e.Home {
		case RegionAfrica:
			af++
		case RegionChina:
			cn++
		}
	}
	if af < 3 || cn < 3 {
		t.Fatalf("catalog has %d African and %d Chinese entries, want ≥3 each", af, cn)
	}
}

func TestFQDNShards(t *testing.T) {
	r := dist.NewRand(3)
	gv, _ := Lookup("googlevideo.com")
	f := gv.FQDN(r)
	if e, ok := Lookup(f); !ok || e.Domain != "googlevideo.com" {
		t.Fatalf("shard %q does not resolve to its base entry", f)
	}
	plain, _ := Lookup("www.google.com")
	if plain.FQDN(r) != "www.google.com" {
		t.Fatal("non-sharded entry produced a variant")
	}
	nf, _ := Lookup("nflxvideo.net")
	if e, ok := Lookup(nf.FQDN(r)); !ok || e.Service != "Netflix" {
		t.Fatal("netflix shard broken")
	}
}

func TestProtocolStrings(t *testing.T) {
	if AppHTTPS.String() != "TCP/HTTPS" || AppQUIC.String() != "UDP/QUIC" {
		t.Fatal("protocol names do not match Table 1 rows")
	}
}
