package faults

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestNilScheduleIsClearSky(t *testing.T) {
	var s *Schedule
	if s.Len() != 0 || s.Rain(time.Hour, 3) != 0 || s.BeamDown(0, 0) ||
		s.GatewayRTTExtra(0) != 0 || s.ResolverDown(0, "Google") {
		t.Fatal("nil schedule reported a fault")
	}
	if _, ok := s.PEPOverloadRho(0, 0); ok {
		t.Fatal("nil schedule reported PEP overload")
	}
	if _, ok := s.NextGatewaySwitch(0); ok {
		t.Fatal("nil schedule reported a gateway switch")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRainFrontRamp(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: RainFront, Beam: 2, Start: 1 * time.Hour, End: 3 * time.Hour, Peak: 0.8},
	}}
	if got := s.Rain(2*time.Hour, 2); got != 0.8 {
		t.Fatalf("midpoint rain = %v, want peak 0.8", got)
	}
	if got := s.Rain(90*time.Minute, 2); got < 0.39 || got > 0.41 {
		t.Fatalf("quarter-point rain = %v, want ~0.4", got)
	}
	if got := s.Rain(1*time.Hour, 2); got != 0 {
		t.Fatalf("window-edge rain = %v, want 0 (ramp starts at zero)", got)
	}
	if got := s.Rain(3*time.Hour, 2); got != 0 {
		t.Fatalf("rain past the window = %v, want 0", got)
	}
	if got := s.Rain(2*time.Hour, 5); got != 0 {
		t.Fatalf("rain on another beam = %v, want 0", got)
	}
}

func TestRainAllBeams(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: RainFront, Beam: -1, Start: 0, End: 2 * time.Hour, Peak: 1},
	}}
	for _, beam := range []int{0, 7, 20} {
		if got := s.Rain(time.Hour, beam); got != 1 {
			t.Fatalf("beam %d rain = %v, want 1 at midpoint of an all-beam front", beam, got)
		}
	}
}

func TestBeamOutageAndOverlappingFronts(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: BeamOutage, Beam: 4, Start: time.Hour, End: 2 * time.Hour},
		{Kind: RainFront, Beam: 4, Start: 0, End: 4 * time.Hour, Peak: 0.4},
		{Kind: RainFront, Beam: 4, Start: time.Hour, End: 3 * time.Hour, Peak: 1},
	}}
	if !s.BeamDown(90*time.Minute, 4) {
		t.Fatal("beam 4 should be down mid-window")
	}
	if s.BeamDown(30*time.Minute, 4) || s.BeamDown(90*time.Minute, 5) {
		t.Fatal("outage leaked outside its window or beam")
	}
	// Overlapping fronts: the strongest instantaneous depth wins.
	if got := s.Rain(2*time.Hour, 4); got != 1 {
		t.Fatalf("overlapping fronts rain = %v, want the stronger front's peak 1", got)
	}
}

func TestGatewaySwitchQueries(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: GatewaySwitch, Beam: -1, Start: 2 * time.Hour, End: 2*time.Hour + 10*time.Minute, RTTStep: 40 * time.Millisecond},
		{Kind: GatewaySwitch, Beam: -1, Start: 6 * time.Hour, End: 6*time.Hour + 5*time.Minute, RTTStep: 25 * time.Millisecond},
	}}
	if got := s.GatewayRTTExtra(2*time.Hour + 5*time.Minute); got != 40*time.Millisecond {
		t.Fatalf("detour RTT = %v, want 40ms", got)
	}
	if got := s.GatewayRTTExtra(3 * time.Hour); got != 0 {
		t.Fatalf("RTT step after the re-route window = %v, want 0", got)
	}
	next, ok := s.NextGatewaySwitch(time.Hour)
	if !ok || next != 2*time.Hour {
		t.Fatalf("next switch after 1h = %v/%v, want 2h", next, ok)
	}
	next, ok = s.NextGatewaySwitch(2 * time.Hour)
	if !ok || next != 6*time.Hour {
		t.Fatalf("next switch after 2h = %v/%v, want 6h (strictly after)", next, ok)
	}
	if _, ok := s.NextGatewaySwitch(7 * time.Hour); ok {
		t.Fatal("no switch should remain after 7h")
	}
}

func TestPEPOverloadAndResolverDown(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: PEPOverload, Beam: 3, Start: time.Hour, End: 2 * time.Hour, Peak: 0.96},
		{Kind: PEPOverload, Beam: 3, Start: time.Hour, End: 90 * time.Minute}, // Peak 0 → default
		{Kind: DNSOutage, Beam: -1, Start: 0, End: time.Hour, Resolver: "Google"},
		{Kind: DNSOutage, Beam: -1, Start: 5 * time.Hour, End: 6 * time.Hour},
	}}
	rho, ok := s.PEPOverloadRho(80*time.Minute, 3)
	if !ok || rho != 0.97 {
		t.Fatalf("overload rho = %v/%v, want the 0.97 default winning over 0.96", rho, ok)
	}
	if _, ok := s.PEPOverloadRho(80*time.Minute, 4); ok {
		t.Fatal("overload leaked to another beam")
	}
	if !s.ResolverDown(30*time.Minute, "Google") || s.ResolverDown(30*time.Minute, "CloudFlare") {
		t.Fatal("targeted resolver outage hit the wrong resolver")
	}
	if !s.ResolverDown(5*time.Hour+time.Minute, "CloudFlare") {
		t.Fatal("untargeted outage should hit every resolver")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	sp := Spec{Name: "t", Seed: 42, Days: 2, RainFronts: 5, BeamOutages: 3,
		GatewaySwitches: 2, PEPOverloads: 4, DNSOutages: 3}
	a, b := sp.Generate(), sp.Generate()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal specs generated different schedules")
	}
	if a.Len() != 17 {
		t.Fatalf("generated %d events, want 17", a.Len())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	window := 2 * 24 * time.Hour
	for i, e := range a.Events {
		if e.End > window {
			t.Fatalf("event %d ends at %v, past the %v window", i, e.End, window)
		}
	}
	sp.Seed = 43
	if reflect.DeepEqual(a, sp.Generate()) {
		t.Fatal("different seeds generated identical schedules")
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() == 0 {
			t.Fatalf("preset %q is empty", name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("preset %q: %v", name, err)
		}
	}
	if _, err := Preset("nope", 1, 7); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// The acceptance scenario: rain fronts plus PEP collapse.
	s, _ := Preset("rainfront", 1, 7)
	byKind := map[Kind]int{}
	for _, e := range s.Events {
		byKind[e.Kind]++
	}
	if byKind[RainFront] == 0 || byKind[PEPOverload] == 0 {
		t.Fatalf("rainfront preset kinds = %v, want rain fronts and PEP overloads", byKind)
	}
}

func TestLoadFileRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	orig, err := Preset("stress", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "sched.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("schedule changed across a JSON round trip")
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name":"x","events":[{"kind":"rain_front","start_ns":10,"end_ns":5}]}`), 0o644)
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("empty-window event accepted")
	}
	os.WriteFile(bad, []byte(`{"events":[{"kind":"volcano","start_ns":0,"end_ns":5}]}`), 0o644)
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}

	if s, err := Load("", 1, 1); err != nil || s != nil {
		t.Fatal("empty -faults arg must mean no schedule")
	}
	if _, err := Load("no-such-preset-or-file", 1, 1); err == nil {
		t.Fatal("bogus -faults arg accepted")
	}
}

func TestLEOHandoverQueryAndWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: LEOHandover, Beam: 3, Start: 100 * time.Second, End: 104 * time.Second,
			Peak: 0.5, RTTStep: 10 * time.Millisecond},
		{Kind: LEOHandover, Beam: 3, Start: 102 * time.Second, End: 106 * time.Second,
			Peak: 0.8, RTTStep: 6 * time.Millisecond},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.LEOHandover(99*time.Second, 3); ok {
		t.Fatal("handover reported outside every window")
	}
	if _, _, ok := s.LEOHandover(101*time.Second, 4); ok {
		t.Fatal("handover reported on the wrong beam")
	}
	step, stall, ok := s.LEOHandover(103*time.Second, 3)
	if !ok {
		t.Fatal("no handover reported inside the window")
	}
	if step != 10*time.Millisecond {
		t.Fatalf("step = %v, want the strongest overlapping step 10ms", step)
	}
	if want := time.Duration(0.8 * float64(handoverStallScale)); stall != want {
		t.Fatalf("stall = %v, want %v", stall, want)
	}
	if _, _, ok := s.LEOHandover(105*time.Second, 3); !ok {
		t.Fatal("second window not reported")
	}
}

func TestWithLEOHandoversDeterministicAndIdempotent(t *testing.T) {
	a := WithLEOHandovers(nil, 2, 42)
	b := WithLEOHandovers(nil, 2, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produce different handover timelines")
	}
	if a.Len() == 0 {
		t.Fatal("no handovers generated")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(WithLEOHandovers(a, 2, 42), a) {
		t.Fatal("re-merging a schedule that already has handovers must be a no-op")
	}
	other := WithLEOHandovers(nil, 2, 43)
	if reflect.DeepEqual(a.Events, other.Events) {
		t.Fatal("different seeds produce identical handover timelines")
	}

	// Merging on top of a base schedule keeps the base events and does
	// not mutate the base.
	base, err := Preset("rainfront", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	baseLen := base.Len()
	merged := WithLEOHandovers(base, 1, 7)
	if base.Len() != baseLen {
		t.Fatal("base schedule mutated")
	}
	kept := 0
	for _, e := range merged.Events {
		if e.Kind != LEOHandover {
			kept++
		}
	}
	if kept != baseLen {
		t.Fatalf("merged schedule kept %d base events, want %d", kept, baseLen)
	}
	if merged.Name != "rainfront+leo-handovers" {
		t.Fatalf("merged name = %q", merged.Name)
	}
}
