// Package faults models the degraded conditions the paper's vantage
// point actually observes — rain fade on the Ka-band forward link, beam
// congestion collapse, ground-station switchovers, PEP saturation, DNS
// resolver failures — as a deterministic, seeded schedule of timed
// events the simulator consults per flow.
//
// A schedule is pure data: every query is a pure function of (event
// list, simulated time, beam), never of scheduling or worker identity,
// so fault injection preserves the simulator's bit-for-bit determinism
// at any worker count. Schedules come from a named preset, from the
// seeded generator (Spec), or from a JSON file, and are recorded in the
// run manifest so a degraded run can be reproduced exactly.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"satwatch/internal/dist"
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/obs"
)

// Exported metrics (see OBSERVABILITY.md).
var mActive = obs.NewGauge("faults_active",
	"Fault events in the schedule injected into the current run (0 = clear sky).", "")

// RecordActive publishes the injected schedule's size to the
// faults_active gauge; nil means a clear-sky run.
func RecordActive(s *Schedule) { mActive.Set(float64(s.Len())) }

// Kind names one fault event type.
type Kind string

const (
	// RainFront is a rain-fade front crossing a beam: fade intensity
	// ramps linearly from zero at Start to Peak at the window midpoint
	// and back to zero at End (phy turns intensity into link margin
	// loss, ACM down-switching and residual frame errors).
	RainFront Kind = "rain_front"
	// BeamOutage takes a beam fully down: flows starting inside the
	// window see a dead uplink — SYN retransmissions, then silence.
	BeamOutage Kind = "beam_outage"
	// GatewaySwitch is a ground-station switchover at Start: every flow
	// alive at that instant is cut (mass resets at the old gateway), and
	// flows starting during the re-route window [Start, End] pay RTTStep
	// of extra ground RTT through the detour.
	GatewaySwitch Kind = "gateway_switch"
	// PEPOverload saturates the PEP: new flows in the window either
	// queue at utilization Peak or fall off split-TCP entirely, paying
	// end-to-end GEO handshakes.
	PEPOverload Kind = "pep_overload"
	// DNSOutage takes a resolver down: queries in the window are
	// retried on the stub-resolver backoff schedule and answered only
	// if the outage clears before the client gives up.
	DNSOutage Kind = "dns_outage"
	// LEOHandover is a disruptive satellite handover on a LEO beam:
	// flows starting inside the re-route window pay RTTStep of extra
	// satellite RTT, a first-flight stall proportional to Peak (the
	// stall intensity in [0,1]), and an elevated lead-segment
	// retransmission probability — the RTT steps, stalls and retransmit
	// blips LEO measurement studies observe around reconfigurations.
	// Seamless make-before-break handovers are not scheduled; the LEO
	// orbit model folds their geometry into the continuous RTT band.
	LEOHandover Kind = "leo_handover"
)

// kinds is every valid Kind, for validation.
var kinds = map[Kind]bool{
	RainFront: true, BeamOutage: true, GatewaySwitch: true,
	PEPOverload: true, DNSOutage: true, LEOHandover: true,
}

// Event is one scheduled fault. Times are offsets from the simulation
// epoch (UTC midnight of day 0), serialized as nanoseconds.
type Event struct {
	Kind Kind `json:"kind"`
	// Start and End bound the event window; a GatewaySwitch cuts flows
	// at Start and detours new flows until End.
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Beam is the affected beam ID; -1 hits every beam. Ignored by
	// gateway_switch and dns_outage, which are gateway-wide.
	Beam int `json:"beam"`
	// Peak is the event's intensity: rain-fade depth in [0,1] for
	// rain_front, forced PEP utilization for pep_overload.
	Peak float64 `json:"peak,omitempty"`
	// RTTStep is the extra ground RTT of a gateway_switch detour.
	RTTStep time.Duration `json:"rtt_step_ns,omitempty"`
	// Resolver is the dns_outage target (a dnssim.ResolverID string);
	// empty hits every resolver.
	Resolver string `json:"resolver,omitempty"`
}

// window reports whether t falls inside [Start, End).
func (e *Event) window(t time.Duration) bool { return t >= e.Start && t < e.End }

// hits reports whether the event applies to the given beam.
func (e *Event) hits(beam int) bool { return e.Beam < 0 || e.Beam == beam }

// Schedule is an immutable, queryable fault timeline. The zero value
// and a nil *Schedule are both valid clear-sky schedules: every query
// returns "no fault".
type Schedule struct {
	// Name identifies the preset or file the schedule came from.
	Name string `json:"name"`
	// Seed is the generator seed, zero for hand-written schedules.
	Seed uint64 `json:"seed,omitempty"`
	// Events is the timeline, sorted by (Start, Kind, Beam, End).
	Events []Event `json:"events"`
}

// Len returns the number of scheduled events; 0 for nil.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.Events)
}

// Rain returns the rain-fade intensity a flow starting at t on the
// given beam experiences: the strongest active front's triangular ramp
// (0 at the window edges, Peak at the midpoint).
func (s *Schedule) Rain(t time.Duration, beam int) float64 {
	if s == nil {
		return 0
	}
	depth := 0.0
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind != RainFront || !e.hits(beam) || !e.window(t) || e.End <= e.Start {
			continue
		}
		mid := e.Start + (e.End-e.Start)/2
		var frac float64
		if t < mid {
			frac = float64(t-e.Start) / float64(mid-e.Start)
		} else {
			frac = float64(e.End-t) / float64(e.End-mid)
		}
		if d := e.Peak * frac; d > depth {
			depth = d
		}
	}
	return depth
}

// BeamDown reports whether the beam is in a full outage at t.
func (s *Schedule) BeamDown(t time.Duration, beam int) bool {
	if s == nil {
		return false
	}
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind == BeamOutage && e.hits(beam) && e.window(t) {
			return true
		}
	}
	return false
}

// PEPOverloadRho returns the forced PEP utilization for a flow starting
// at t on the given beam, and whether an overload window is active.
func (s *Schedule) PEPOverloadRho(t time.Duration, beam int) (float64, bool) {
	if s == nil {
		return 0, false
	}
	rho, active := 0.0, false
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind != PEPOverload || !e.hits(beam) || !e.window(t) {
			continue
		}
		active = true
		peak := e.Peak
		if peak <= 0 {
			peak = 0.97
		}
		if peak > rho {
			rho = peak
		}
	}
	return rho, active
}

// GatewayRTTExtra returns the extra ground RTT a flow starting at t
// pays while a gateway switchover is re-routing traffic.
func (s *Schedule) GatewayRTTExtra(t time.Duration) time.Duration {
	if s == nil {
		return 0
	}
	var extra time.Duration
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind == GatewaySwitch && e.window(t) && e.RTTStep > extra {
			extra = e.RTTStep
		}
	}
	return extra
}

// NextGatewaySwitch returns the instant of the first gateway switchover
// strictly after t: a flow alive at that instant is cut by the old
// gateway's teardown.
func (s *Schedule) NextGatewaySwitch(t time.Duration) (time.Duration, bool) {
	if s == nil {
		return 0, false
	}
	var next time.Duration
	found := false
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind == GatewaySwitch && e.Start > t && (!found || e.Start < next) {
			next, found = e.Start, true
		}
	}
	return next, found
}

// handoverStallScale maps a leo_handover event's Peak intensity to the
// first-flight stall a flow starting in the window pays while the new
// path converges.
const handoverStallScale = 1500 * time.Millisecond

// LEOHandover returns the extra satellite RTT and the first-flight stall
// a flow starting at t on the given beam pays while a satellite handover
// re-routes the beam, and whether such a window is active. When windows
// overlap, the strongest step and stall win.
func (s *Schedule) LEOHandover(t time.Duration, beam int) (step, stall time.Duration, ok bool) {
	if s == nil {
		return 0, 0, false
	}
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind != LEOHandover || !e.hits(beam) || !e.window(t) {
			continue
		}
		ok = true
		if e.RTTStep > step {
			step = e.RTTStep
		}
		if st := time.Duration(e.Peak * float64(handoverStallScale)); st > stall {
			stall = st
		}
	}
	return step, stall, ok
}

// ResolverDown reports whether the named resolver is unreachable at t.
func (s *Schedule) ResolverDown(t time.Duration, resolver string) bool {
	if s == nil {
		return false
	}
	for i := range s.Events {
		e := &s.Events[i]
		if e.Kind != DNSOutage || !e.window(t) {
			continue
		}
		if e.Resolver == "" || e.Resolver == resolver {
			return true
		}
	}
	return false
}

// Validate checks the schedule is well-formed: known kinds, ordered
// non-empty windows, intensities in range.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i := range s.Events {
		e := &s.Events[i]
		if !kinds[e.Kind] {
			return fmt.Errorf("faults: event %d: unknown kind %q", i, e.Kind)
		}
		if e.Start < 0 || e.End <= e.Start {
			return fmt.Errorf("faults: event %d (%s): window [%v, %v) is empty or negative", i, e.Kind, e.Start, e.End)
		}
		if e.Peak < 0 || e.Peak > 1 {
			return fmt.Errorf("faults: event %d (%s): peak %v outside [0,1]", i, e.Kind, e.Peak)
		}
		if e.RTTStep < 0 {
			return fmt.Errorf("faults: event %d (%s): negative rtt step", i, e.Kind)
		}
	}
	return nil
}

// sortEvents puts events in the canonical order recorded in manifests.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := &evs[i], &evs[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Beam != b.Beam {
			return a.Beam < b.Beam
		}
		return a.End < b.End
	})
}

// Spec parameterizes the seeded schedule generator: how many events of
// each kind to scatter over a Days-long window.
type Spec struct {
	Name            string
	Seed            uint64
	Days            int
	RainFronts      int
	BeamOutages     int
	GatewaySwitches int
	PEPOverloads    int
	DNSOutages      int
}

// Generate scatters the spec's events over the observation window using
// the spec's seed: identical specs produce identical schedules.
func (sp Spec) Generate() *Schedule {
	days := sp.Days
	if days <= 0 {
		days = 1
	}
	window := time.Duration(days) * 24 * time.Hour
	beams := geo.Beams()
	resolvers := dnssim.Resolvers()
	r := dist.NewRand(sp.Seed).Fork("faults")

	// place draws a window of the given duration range inside the run.
	place := func(minDur, maxDur time.Duration) (time.Duration, time.Duration) {
		dur := minDur + time.Duration(r.IntN(int(maxDur-minDur)+1))
		start := time.Duration(r.IntN(int(window - dur)))
		return start, start + dur
	}

	var evs []Event
	for i := 0; i < sp.RainFronts; i++ {
		start, end := place(time.Hour, 3*time.Hour)
		evs = append(evs, Event{Kind: RainFront, Beam: beams[r.IntN(len(beams))].ID,
			Start: start, End: end, Peak: 0.5 + 0.5*r.Float64()})
	}
	for i := 0; i < sp.BeamOutages; i++ {
		start, end := place(10*time.Minute, 40*time.Minute)
		evs = append(evs, Event{Kind: BeamOutage, Beam: beams[r.IntN(len(beams))].ID,
			Start: start, End: end})
	}
	for i := 0; i < sp.GatewaySwitches; i++ {
		start, end := place(5*time.Minute, 15*time.Minute)
		evs = append(evs, Event{Kind: GatewaySwitch, Beam: -1, Start: start, End: end,
			RTTStep: time.Duration(20+r.IntN(41)) * time.Millisecond})
	}
	for i := 0; i < sp.PEPOverloads; i++ {
		start, end := place(time.Hour, 2*time.Hour)
		evs = append(evs, Event{Kind: PEPOverload, Beam: beams[r.IntN(len(beams))].ID,
			Start: start, End: end, Peak: 0.95 + 0.03*r.Float64()})
	}
	for i := 0; i < sp.DNSOutages; i++ {
		start, end := place(5*time.Minute, 20*time.Minute)
		evs = append(evs, Event{Kind: DNSOutage, Beam: -1, Start: start, End: end,
			Resolver: string(resolvers[r.IntN(len(resolvers))].ID)})
	}
	sortEvents(evs)
	return &Schedule{Name: sp.Name, Seed: sp.Seed, Events: evs}
}

// WithLEOHandovers returns base extended with the deterministic LEO
// handover timeline for a days-long run: per beam, a disruptive handover
// every ~2–4 hours (seeded jitter), each a 2–8 s re-route window carrying
// a 6–18 ms RTT step and a stall intensity in [0.2, 0.8]. The timeline is
// a pure function of (seed, days), so equal-seed LEO runs replay the same
// damage at any parallelism. If base already contains leo_handover events
// (a replayed manifest schedule), it is returned unchanged; base itself
// is never mutated.
func WithLEOHandovers(base *Schedule, days int, seed uint64) *Schedule {
	for i := 0; i < base.Len(); i++ {
		if base.Events[i].Kind == LEOHandover {
			return base
		}
	}
	if days <= 0 {
		days = 1
	}
	window := time.Duration(days) * 24 * time.Hour
	r := dist.NewRand(seed).Fork("leo-handover")

	evs := make([]Event, 0, base.Len()+8*days*len(geo.Beams()))
	if base != nil {
		evs = append(evs, base.Events...)
	}
	for _, b := range geo.Beams() {
		rb := r.ForkN("beam", uint64(b.ID))
		next := time.Duration(rb.IntN(int(2 * time.Hour)))
		for next < window {
			dur := 2*time.Second + time.Duration(rb.IntN(int(6*time.Second)))
			evs = append(evs, Event{
				Kind: LEOHandover, Beam: b.ID,
				Start:   next,
				End:     next + dur,
				Peak:    0.2 + 0.6*rb.Float64(),
				RTTStep: time.Duration(6+rb.IntN(13)) * time.Millisecond,
			})
			next += 2*time.Hour + time.Duration(rb.IntN(int(2*time.Hour)))
		}
	}
	sortEvents(evs)
	name := "leo-handovers"
	if base != nil && base.Name != "" {
		name = base.Name + "+leo-handovers"
	}
	return &Schedule{Name: name, Seed: seed, Events: evs}
}

// presets maps preset names to per-day event counts. "rainfront" is the
// acceptance scenario: weather plus PEP collapse; "stress" layers every
// kind for chaos testing.
var presets = map[string]func(days int) Spec{
	"rainfront": func(d int) Spec { return Spec{RainFronts: 3 * d, PEPOverloads: 2 * d} },
	"outage":    func(d int) Spec { return Spec{BeamOutages: 3 * d, GatewaySwitches: 1} },
	"dns":       func(d int) Spec { return Spec{DNSOutages: 3 * d} },
	"stress": func(d int) Spec {
		return Spec{RainFronts: 3 * d, BeamOutages: 2 * d, GatewaySwitches: 1,
			PEPOverloads: 2 * d, DNSOutages: 2 * d}
	},
}

// PresetNames lists the built-in preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset generates a named preset schedule scaled to the run's length
// and seeded by the run's seed, so -faults PRESET stays reproducible.
func Preset(name string, days int, seed uint64) (*Schedule, error) {
	f, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown preset %q (have: %s)", name, strings.Join(PresetNames(), ", "))
	}
	if days <= 0 {
		days = 1
	}
	sp := f(days)
	sp.Name, sp.Seed, sp.Days = name, seed, days
	return sp.Generate(), nil
}

// Load resolves a -faults argument: a path to a JSON schedule file if
// one exists there, else a preset name. Empty means no faults (nil).
func Load(arg string, days int, seed uint64) (*Schedule, error) {
	if arg == "" {
		return nil, nil
	}
	if _, err := os.Stat(arg); err == nil {
		return LoadFile(arg)
	}
	return Preset(arg, days, seed)
}

// LoadFile parses and validates a JSON schedule file.
func LoadFile(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("faults: parse %s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	sortEvents(s.Events)
	return &s, nil
}
