package simtime

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30*time.Millisecond, func(Stamp) { got = append(got, 3) })
	s.At(10*time.Millisecond, func(Stamp) { got = append(got, 1) })
	s.At(20*time.Millisecond, func(Stamp) { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock %v, want 30ms", s.Now())
	}
}

func TestSchedulerTieBreakIsFIFO(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func(Stamp) { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order %v not FIFO", got)
		}
	}
}

func TestSchedulerAfterChaining(t *testing.T) {
	var s Scheduler
	var stamps []Stamp
	var tick func(Stamp)
	n := 0
	tick = func(now Stamp) {
		stamps = append(stamps, now)
		if n++; n < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run()
	if len(stamps) != 5 {
		t.Fatalf("got %d ticks, want 5", len(stamps))
	}
	for i, st := range stamps {
		if want := time.Duration(i+1) * time.Second; st != want {
			t.Fatalf("tick %d at %v, want %v", i, st, want)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	var s Scheduler
	fired := 0
	s.At(time.Second, func(Stamp) { fired++ })
	s.At(3*time.Second, func(Stamp) { fired++ })
	s.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired %d events before deadline, want 1", fired)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock %v, want 2s", s.Now())
	}
	if s.Len() != 1 {
		t.Fatalf("%d events pending, want 1", s.Len())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired %d total, want 2", fired)
	}
}

func TestSchedulerNegativeAfterClamps(t *testing.T) {
	var s Scheduler
	s.At(time.Second, func(Stamp) {
		// From within an event, scheduling with a negative delay lands "now".
		s.After(-5*time.Second, func(now Stamp) {
			if now != time.Second {
				t.Fatalf("clamped event at %v, want 1s", now)
			}
		})
	})
	s.Run()
}

func TestSchedulerPastPanics(t *testing.T) {
	var s Scheduler
	s.At(time.Second, func(Stamp) {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(500*time.Millisecond, func(Stamp) {})
}

func TestStepOnEmpty(t *testing.T) {
	var s Scheduler
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}
