// Package simtime provides a deterministic discrete-event scheduler used by
// the satellite MAC and PEP micro-simulators.
//
// Simulated time is a time.Duration measured from the start of the run
// (the "epoch"). Events scheduled for the same instant fire in the order
// they were scheduled, which keeps runs reproducible.
package simtime

import (
	"container/heap"
	"fmt"
	"time"
)

// Stamp is a point in simulated time, expressed as the offset from the
// simulation epoch.
type Stamp = time.Duration

// Event is a callback scheduled to run at a given simulated instant.
type Event func(now Stamp)

type item struct {
	at  Stamp
	seq uint64
	fn  Event
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*item)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Scheduler is a discrete-event simulator clock plus pending-event queue.
// The zero value is ready to use.
type Scheduler struct {
	now   Stamp
	seq   uint64
	queue eventHeap
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Stamp { return s.now }

// Len returns the number of pending events.
func (s *Scheduler) Len() int { return len(s.queue) }

// At schedules fn to run at the absolute simulated time at. Scheduling in
// the past (before Now) panics: it would silently reorder causality.
func (s *Scheduler) At(at Stamp, fn Event) {
	if at < s.now {
		panic(fmt.Sprintf("simtime: scheduling at %v before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &item{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current simulated time.
func (s *Scheduler) After(d time.Duration, fn Event) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Step runs the single earliest pending event, advancing the clock to its
// timestamp. It reports false when no events are pending.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	it := heap.Pop(&s.queue).(*item)
	s.now = it.at
	it.fn(s.now)
	return true
}

// Run executes events until the queue is empty.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline stay queued.
func (s *Scheduler) RunUntil(deadline Stamp) {
	for len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
