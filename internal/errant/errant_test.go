package errant

import (
	"strings"
	"testing"
	"time"

	"satwatch/internal/analytics"
	"satwatch/internal/netsim"
)

var cachedDS *analytics.Dataset

func testDataset(t *testing.T) *analytics.Dataset {
	t.Helper()
	if cachedDS == nil {
		out, err := netsim.Run(netsim.Config{Customers: 60, Days: 1, Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		cachedDS = analytics.NewDataset(out, 1)
	}
	return cachedDS
}

func TestBuildProfiles(t *testing.T) {
	ds := testDataset(t)
	profiles := BuildProfiles(ds)
	if len(profiles) < 6 {
		t.Fatalf("only %d profiles", len(profiles))
	}
	seen := map[string]bool{}
	for _, p := range profiles {
		if seen[p.Name()] {
			t.Fatalf("duplicate profile %s", p.Name())
		}
		seen[p.Name()] = true
		// GEO physics: one-way delay ≥ ~235 ms (half the ~470+ ms RTT).
		if p.OneWayDelay < 230*time.Millisecond {
			t.Errorf("%s one-way delay %v below GEO physics", p.Name(), p.OneWayDelay)
		}
		if p.OneWayDelay > 5*time.Second {
			t.Errorf("%s one-way delay %v absurd", p.Name(), p.OneWayDelay)
		}
		if p.Jitter < 0 {
			t.Errorf("%s negative jitter", p.Name())
		}
		if p.RateDown <= 0 {
			t.Errorf("%s no downlink rate", p.Name())
		}
		if p.Samples < 10 {
			t.Errorf("%s built from %d samples", p.Name(), p.Samples)
		}
	}
}

func TestCongoPeakWorseThanNight(t *testing.T) {
	ds := testDataset(t)
	profiles := BuildProfiles(ds)
	var night, peak *Profile
	for i := range profiles {
		p := &profiles[i]
		if p.Country == "CD" && p.Window == WindowNight {
			night = p
		}
		if p.Country == "CD" && p.Window == WindowPeak {
			peak = p
		}
	}
	if night == nil || peak == nil {
		t.Skip("not enough Congo samples at this scale")
	}
	if peak.OneWayDelay <= night.OneWayDelay {
		t.Errorf("Congo peak delay %v not above night %v", peak.OneWayDelay, night.OneWayDelay)
	}
}

func TestNetemExport(t *testing.T) {
	p := Profile{Country: "ES", Window: WindowNight,
		OneWayDelay: 280 * time.Millisecond, Jitter: 40 * time.Millisecond,
		Loss: 0.005, RateDown: 30e6}
	cmds := p.NetemCommands("eth0")
	if len(cmds) != 2 {
		t.Fatalf("%d commands", len(cmds))
	}
	if !strings.Contains(cmds[0], "delay 280ms 40ms") {
		t.Fatalf("netem delay missing: %q", cmds[0])
	}
	if !strings.Contains(cmds[0], "loss 0.50%") {
		t.Fatalf("netem loss missing: %q", cmds[0])
	}
	if !strings.Contains(cmds[1], "rate 30000kbit") {
		t.Fatalf("tbf rate missing: %q", cmds[1])
	}
	if p.Name() != "satcom-ES-night" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestLinkInstantiation(t *testing.T) {
	p := Profile{OneWayDelay: 270 * time.Millisecond, Jitter: 30 * time.Millisecond,
		Loss: 0.01, RateDown: 10e6}
	l := p.Link()
	if l.Delay != p.OneWayDelay || l.Jitter != p.Jitter || l.Loss != p.Loss {
		t.Fatal("link fields not mapped")
	}
	if l.RateBps != p.RateDown/8 {
		t.Fatalf("rate %v bytes/s, want %v", l.RateBps, p.RateDown/8)
	}
}

func TestRender(t *testing.T) {
	ds := testDataset(t)
	out := Render(BuildProfiles(ds), "eth1")
	if !strings.Contains(out, "tc qdisc add dev eth1") {
		t.Fatal("render lacks netem commands")
	}
	if !strings.Contains(out, "satcom-") {
		t.Fatal("render lacks profile names")
	}
}
