// Package errant builds data-driven network-emulation profiles from
// measured datasets — the reproduction of the paper's released artifact
// (§1: "we have created a data-driven model for our ERRANT network
// emulator tool"). A profile captures, per country and time window, the
// delay/jitter/loss/rate behaviour a SatCom customer experiences, and can
// be exported as Linux tc/netem commands or instantiated as an in-process
// emulated link (package linkemu) for Go tests.
package errant

import (
	"fmt"
	"sort"
	"time"

	"satwatch/internal/analytics"
	"satwatch/internal/geo"
	"satwatch/internal/linkemu"
)

// Window names the time-of-day regime a profile describes.
type Window string

// The Figure 8a windows.
const (
	WindowNight Window = "night"
	WindowPeak  Window = "peak"
)

// Profile is one emulation operating point.
type Profile struct {
	Country geo.CountryCode
	Window  Window

	// OneWayDelay is half the median satellite RTT.
	OneWayDelay time.Duration
	// Jitter is half the (P90-P50) RTT spread.
	Jitter time.Duration
	// Loss is the emulated residual datagram loss.
	Loss float64
	// RateDown/RateUp are the median achievable rates in bit/s.
	RateDown float64
	RateUp   float64
	// Samples is how many RTT measurements back the profile.
	Samples int
}

// Name returns the profile's identifier, e.g. "satcom-CD-peak".
func (p Profile) Name() string {
	return fmt.Sprintf("satcom-%s-%s", p.Country, p.Window)
}

// NetemCommands renders the profile as tc/netem shell commands for iface.
func (p Profile) NetemCommands(iface string) []string {
	delayMs := float64(p.OneWayDelay) / float64(time.Millisecond)
	jitMs := float64(p.Jitter) / float64(time.Millisecond)
	rateKbit := p.RateDown * 1e-3
	return []string{
		fmt.Sprintf("tc qdisc add dev %s root handle 1: netem delay %.0fms %.0fms loss %.2f%%",
			iface, delayMs, jitMs, p.Loss*100),
		fmt.Sprintf("tc qdisc add dev %s parent 1: handle 2: tbf rate %.0fkbit burst 32kbit latency 400ms",
			iface, rateKbit),
	}
}

// Link instantiates the profile as an in-process emulated link direction.
func (p Profile) Link() linkemu.Link {
	return linkemu.Link{
		Delay:   p.OneWayDelay,
		Jitter:  p.Jitter,
		Loss:    p.Loss,
		RateBps: p.RateDown / 8,
	}
}

// minThroughputBytes is the bulk-flow threshold for the rate estimate.
const minThroughputBytes = 2 << 20

// BuildProfiles derives per-(country, window) profiles from a measured
// dataset. Countries without enough samples are skipped.
func BuildProfiles(ds *analytics.Dataset) []Profile {
	night, peak := ds.SatRTTSamples()
	thrNight, thrPeak, _ := ds.ThroughputSamples(minThroughputBytes)

	var out []Profile
	build := func(code geo.CountryCode, w Window, rtts []float64, thr []float64) {
		if len(rtts) < 10 {
			return
		}
		s := analytics.NewSample(rtts)
		med := s.Median()
		p90 := s.Quantile(0.9)
		prof := Profile{
			Country:     code,
			Window:      w,
			OneWayDelay: time.Duration(med / 2 * float64(time.Second)),
			Jitter:      time.Duration((p90 - med) / 2 * float64(time.Second)),
			Loss:        0.003,
			RateUp:      2e6,
			Samples:     s.Len(),
		}
		if len(thr) > 0 {
			prof.RateDown = analytics.NewSample(thr).Median()
		} else {
			prof.RateDown = 10e6
		}
		out = append(out, prof)
	}
	for _, c := range geo.Countries() {
		build(c.Code, WindowNight, night[c.Code], thrNight[c.Code])
		build(c.Code, WindowPeak, peak[c.Code], thrPeak[c.Code])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].Window < out[j].Window
	})
	return out
}

// Render prints profiles as a table plus netem scripts.
func Render(profiles []Profile, iface string) string {
	out := "ERRANT-style SatCom emulation profiles\n"
	for _, p := range profiles {
		out += fmt.Sprintf("%-20s delay=%v jitter=%v loss=%.2f%% rate_down=%.1fMb/s samples=%d\n",
			p.Name(), p.OneWayDelay.Round(time.Millisecond), p.Jitter.Round(time.Millisecond),
			p.Loss*100, p.RateDown/1e6, p.Samples)
		for _, cmd := range p.NetemCommands(iface) {
			out += "    " + cmd + "\n"
		}
	}
	return out
}
