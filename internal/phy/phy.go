// Package phy models the physical satellite channel: the link margin an
// earth station achieves given its position in the beam footprint, and the
// residual frame error rate the data-link layer (FEC + ARQ, package mac)
// has to absorb.
//
// The model is a deliberately compact DVB-S2-style abstraction: margin
// grows with elevation angle and shrinks with rain attenuation and with the
// station's distance from the beam center ("edge of coverage", Ireland's
// situation per §6.1 of the paper). The margin then selects an adaptive
// modulation/coding (ACM) point, which fixes spectral efficiency and the
// residual frame error rate.
package phy

import (
	"math"
	"time"

	"satwatch/internal/geo"
	"satwatch/internal/obs"
)

// Exported metrics (see OBSERVABILITY.md). The registry is reset per run,
// so phy_rtt_ms reflects the RTT band of the run's active constellation:
// a ~490–550 ms mass for GEO, 15–60 ms for LEO.
var (
	mRTT = obs.NewHistogram("phy_rtt_ms",
		"Propagation-only satellite-segment RTT sampled per flow, per the run's constellation.",
		"ms", obs.ExpBuckets(2, 1.5, 16))
	mHandovers = obs.NewCounter("phy_handovers_total",
		"Flows that started inside a leo_handover re-route window and paid its RTT step and stall.", "")
)

// ObserveRTT records one flow's propagation RTT in the phy_rtt_ms
// histogram.
func ObserveRTT(d time.Duration) { mRTT.Observe(float64(d) / float64(time.Millisecond)) }

// CountHandover counts one flow damaged by a satellite handover.
func CountHandover() { mHandovers.Inc() }

// Channel describes the physical link of one earth station (or of a beam's
// representative station).
type Channel struct {
	// ElevationDeg is the antenna elevation angle toward the satellite.
	ElevationDeg float64
	// EdgeFactor in [0,1] expresses how far the station sits from its
	// beam's boresight: 0 is beam center, 1 is the coverage edge where
	// the paper observes "severe transmission impairments".
	EdgeFactor float64
}

// edgeFactors captures, per country, where the serving beams' footprints
// put the bulk of the customers. Ireland sits at the edge of the coverage
// area; the U.K. and South Africa are noticeably off-center; Nigeria is
// essentially at boresight (§6.1).
var edgeFactors = map[geo.CountryCode]float64{
	"CD": 0.35, "NG": 0.05, "ZA": 0.45,
	"IE": 1.00, "ES": 0.10, "GB": 0.42,
	"DE": 0.30, "FR": 0.25, "IT": 0.15,
	"SN": 0.30, "CM": 0.25, "GH": 0.30,
}

// ChannelFor builds the representative channel of a country's customers
// using the default GEO satellite geometry.
func ChannelFor(c geo.Country) Channel {
	return ChannelAt(c, geo.GEO{Sat: geo.DefaultSatellite}, 0)
}

// ChannelAt builds the representative channel of a country's customers
// under the given constellation at simulated time t: the backend supplies
// the (possibly moving) serving satellite's elevation, and its
// EdgeFactorScale discounts the footprint-edge penalty for steered spot
// beams. For a static backend the result is independent of t.
func ChannelAt(c geo.Country, con geo.Constellation, t time.Duration) Channel {
	ef, ok := edgeFactors[c.Code]
	if !ok {
		ef = 0.3
	}
	return Channel{
		ElevationDeg: con.ElevationDeg(c, t),
		EdgeFactor:   ef * con.EdgeFactorScale(),
	}
}

// LinkMarginDB returns the clear-sky link margin in dB reduced by a rain
// attenuation term. rain in [0,1] is the instantaneous rain-fade intensity
// (0 = clear sky, 1 = heavy fade).
func (c Channel) LinkMarginDB(rain float64) float64 {
	// Clear-sky margin: up to ~12 dB at zenith, shrinking with slant path
	// (atmosphere crossed scales with 1/sin(elevation)) and with the
	// distance from beam boresight (antenna gain roll-off, up to ~7 dB).
	el := c.ElevationDeg * math.Pi / 180
	sin := math.Sin(el)
	if sin < 0.05 {
		sin = 0.05
	}
	atmos := 1.2 / sin            // dB of atmospheric loss
	rolloff := 9.0 * c.EdgeFactor // dB of beam-edge gain loss
	fade := 9.0 * rain            // dB of rain fade
	return 12.0 - atmos - rolloff - fade
}

// modcod is one point of the ACM ladder: the margin it requires, the
// spectral efficiency it delivers, and the residual frame error rate at
// that operating point.
type modcod struct {
	minMarginDB float64
	efficiency  float64 // bits/symbol after FEC
	residualFER float64
}

// A compressed DVB-S2 ladder: the link adapts down as margin degrades, and
// below the most robust point frames start failing outright.
var ladder = []modcod{
	{minMarginDB: 9.0, efficiency: 3.60, residualFER: 1e-5},
	{minMarginDB: 7.0, efficiency: 2.97, residualFER: 5e-5},
	{minMarginDB: 5.0, efficiency: 2.23, residualFER: 2e-4},
	{minMarginDB: 3.0, efficiency: 1.49, residualFER: 1e-3},
	{minMarginDB: 1.5, efficiency: 0.99, residualFER: 6e-3},
	{minMarginDB: 0.5, efficiency: 0.66, residualFER: 2.5e-2},
}

// floorFER is the error rate once the link is below the most robust ACM
// point: a large share of frames needs ARQ recovery.
const floorFER = 0.12

// operatingPoint selects the ACM point for the given rain fade.
func (c Channel) operatingPoint(rain float64) (efficiency, fer float64) {
	m := c.LinkMarginDB(rain)
	for _, mc := range ladder {
		if m >= mc.minMarginDB {
			return mc.efficiency, mc.residualFER
		}
	}
	return 0.49, floorFER
}

// SpectralEfficiency returns the delivered bits/symbol for the given rain
// fade intensity.
func (c Channel) SpectralEfficiency(rain float64) float64 {
	e, _ := c.operatingPoint(rain)
	return e
}

// FrameErrorRate returns the residual data-link frame error rate after FEC
// for the given rain fade intensity. This is the loss process the mac
// package's ARQ has to repair, each repair costing satellite-hop round
// trips that inflate the satellite-segment RTT.
func (c Channel) FrameErrorRate(rain float64) float64 {
	_, f := c.operatingPoint(rain)
	return f
}

// CapacityFactor returns the fraction of clear-sky throughput the link
// delivers under the given rain fade: the selected ACM point's spectral
// efficiency relative to clear sky. When a rain front crosses a beam the
// simulator divides effective utilization by this factor — the same
// offered load occupies a larger share of the degraded capacity.
func (c Channel) CapacityFactor(rain float64) float64 {
	clear := c.SpectralEfficiency(0)
	if clear <= 0 {
		return 1
	}
	return c.SpectralEfficiency(rain) / clear
}

// MeanFER returns the long-run frame error rate assuming the station spends
// rainFraction of the time in fade conditions of intensity rainDepth and
// clear sky otherwise. Used by the macro flow model; individual micro-sims
// sample fades explicitly.
func (c Channel) MeanFER(rainFraction, rainDepth float64) float64 {
	clear := c.FrameErrorRate(0)
	faded := c.FrameErrorRate(rainDepth)
	return clear*(1-rainFraction) + faded*rainFraction
}
