package phy

import (
	"testing"

	"satwatch/internal/geo"
)

func chanFor(t *testing.T, code geo.CountryCode) Channel {
	t.Helper()
	c, ok := geo.ByCode(code)
	if !ok {
		t.Fatalf("country %s missing", code)
	}
	return ChannelFor(c)
}

func TestMarginDecreasesWithRain(t *testing.T) {
	ch := chanFor(t, "ES")
	prev := ch.LinkMarginDB(0)
	for rain := 0.2; rain <= 1.0; rain += 0.2 {
		m := ch.LinkMarginDB(rain)
		if m >= prev {
			t.Fatalf("margin not decreasing with rain at %.1f", rain)
		}
		prev = m
	}
}

func TestFERIncreasesWithRain(t *testing.T) {
	ch := chanFor(t, "GB")
	if ch.FrameErrorRate(1.0) <= ch.FrameErrorRate(0) {
		t.Fatal("heavy fade did not raise FER")
	}
}

func TestEfficiencyDecreasesWithRain(t *testing.T) {
	ch := chanFor(t, "NG")
	if ch.SpectralEfficiency(1.0) >= ch.SpectralEfficiency(0) {
		t.Fatal("heavy fade did not reduce spectral efficiency")
	}
}

func TestIrelandWorstChannel(t *testing.T) {
	// §6.1: Ireland sits at the coverage edge with severe impairments, so
	// its clear-sky FER must dominate every other top-6 country's.
	ie := chanFor(t, "IE")
	for _, code := range []geo.CountryCode{"CD", "NG", "ZA", "ES", "GB"} {
		other := chanFor(t, code)
		if other.FrameErrorRate(0) > ie.FrameErrorRate(0) {
			t.Fatalf("%s clear-sky FER %.2g above Ireland's %.2g", code, other.FrameErrorRate(0), ie.FrameErrorRate(0))
		}
	}
	if ie.FrameErrorRate(0) < 1e-3 {
		t.Fatalf("Ireland clear-sky FER %.2g too clean to reproduce the paper's impairments", ie.FrameErrorRate(0))
	}
}

func TestNigeriaBestChannel(t *testing.T) {
	ng := chanFor(t, "NG")
	for _, code := range []geo.CountryCode{"CD", "ZA", "IE", "GB"} {
		other := chanFor(t, code)
		if other.FrameErrorRate(0) < ng.FrameErrorRate(0) {
			t.Fatalf("%s clear-sky FER below Nigeria's", code)
		}
	}
}

func TestMeanFERInterpolates(t *testing.T) {
	ch := chanFor(t, "ZA")
	clear := ch.FrameErrorRate(0)
	faded := ch.FrameErrorRate(0.8)
	mean := ch.MeanFER(0.25, 0.8)
	if mean < clear || mean > faded {
		t.Fatalf("mean FER %.3g outside [%.3g, %.3g]", mean, clear, faded)
	}
	if ch.MeanFER(0, 0.8) != clear {
		t.Fatal("zero rain fraction should give clear-sky FER")
	}
	if ch.MeanFER(1, 0.8) != faded {
		t.Fatal("full rain fraction should give faded FER")
	}
}

func TestUnknownCountryGetsDefaults(t *testing.T) {
	ch := ChannelFor(geo.Country{Code: "XX", Lat: 45, Lon: 9})
	if ch.EdgeFactor != 0.3 {
		t.Fatalf("default edge factor %v, want 0.3", ch.EdgeFactor)
	}
}

func TestLadderMonotone(t *testing.T) {
	// Lower margin must never increase efficiency nor decrease FER.
	ch := Channel{ElevationDeg: 90}
	prevEff, prevFER := 100.0, 0.0
	for rain := 0.0; rain <= 1.0; rain += 0.05 {
		eff := ch.SpectralEfficiency(rain)
		fer := ch.FrameErrorRate(rain)
		if eff > prevEff || fer < prevFER {
			t.Fatalf("ACM ladder non-monotone at rain %.2f", rain)
		}
		prevEff, prevFER = eff, fer
	}
}
