package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/obs"
)

// ControlHandler grows the batch tools' -debug-addr surface (/metrics,
// /progress, /debug/pprof) into the daemon's control plane:
//
//   - GET  /healthz            200 while no stage is stalled, else 503
//   - GET  /readyz             200 while running and not draining
//   - GET  /analytics          finalized window summaries, oldest first
//   - GET|POST /control/rate     read / set the workload multiplier
//   - GET|POST /control/faults   read / set the fault schedule (presets)
//   - GET|POST /control/scenario read / hot-swap the constellation
//
// Mutations take query parameters (?multiplier=, ?preset=, ?constellation=)
// so they are curl-able; every accepted mutation counts in
// live_control_requests_total. See OBSERVABILITY.md for the endpoint table.
func ControlHandler(p *Pipeline, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.DebugHandler(reg, func() any { return p.Progress() }))

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if stalled := p.Stalled(); len(stalled) > 0 {
			http.Error(w, fmt.Sprintf("stalled stages: %v", stalled), http.StatusServiceUnavailable)
			return
		}
		degraded, reason := p.Degraded()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "degraded": degraded, "reason": reason,
		})
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !p.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("/analytics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"watermark_seconds": p.Analytics().Watermark().Seconds(),
			"windows":           p.Analytics().Recent(),
		})
	})

	mux.HandleFunc("/control/rate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			raw := r.URL.Query().Get("multiplier")
			m, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad multiplier %q: %v", raw, err), http.StatusBadRequest)
				return
			}
			if err := p.SetRate(m); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mControlRequests.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]float64{"multiplier": p.Rate()})
	})

	mux.HandleFunc("/control/faults", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			preset := r.URL.Query().Get("preset")
			if preset == "" {
				http.Error(w, "missing ?preset= (a faults preset name, or \"clear\")", http.StatusBadRequest)
				return
			}
			if preset == "clear" {
				p.Sim().SetFaults(nil)
			} else {
				sched, err := faults.Preset(preset, 1, p.Sim().Seed())
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				// Presets are authored against day 0; shift them to start
				// at the current simulated instant so an injected fault
				// bites now, not days in the past.
				p.Sim().SetFaults(shiftSchedule(sched, p.Clock().Now()))
			}
			mControlRequests.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		sched := p.Sim().Faults()
		if sched == nil {
			enc.Encode(map[string]any{"active": false})
			return
		}
		enc.Encode(map[string]any{"active": true, "schedule": sched})
	})

	mux.HandleFunc("/control/scenario", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			con := r.URL.Query().Get("constellation")
			if con == "" {
				http.Error(w, "missing ?constellation=", http.StatusBadRequest)
				return
			}
			if err := p.Sim().SwapScenario(con); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mScenarioSwaps.Inc()
			mControlRequests.Inc()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"constellation": p.Sim().ScenarioName()})
	})

	return mux
}

// shiftSchedule rebases every event of s by offset (fault presets start
// at the epoch; live injection wants them to start now).
func shiftSchedule(s *faults.Schedule, offset time.Duration) *faults.Schedule {
	if s == nil {
		return nil
	}
	out := &faults.Schedule{Name: s.Name, Seed: s.Seed, Events: make([]faults.Event, len(s.Events))}
	copy(out.Events, s.Events)
	for i := range out.Events {
		out.Events[i].Start += offset
		out.Events[i].End += offset
	}
	return out
}
