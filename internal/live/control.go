package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/obs"
	"satwatch/internal/trace"
)

// ControlHandler grows the batch tools' -debug-addr surface (/metrics,
// /progress, /debug/pprof) into the daemon's control plane:
//
//   - GET  /healthz            200 while no stage is stalled, else 503
//   - GET  /readyz             200 while running and not draining
//   - GET  /analytics          finalized window summaries, oldest first
//   - GET  /trace/recent       recent traced flows, newest first (?limit=)
//   - GET  /metrics/history    registry time series (?metrics=a,b filter)
//   - GET  /dashboard          embedded single-file HTML observatory
//   - GET|POST /control/rate     read / set the workload multiplier
//   - GET|POST /control/faults   read / set the fault schedule (presets)
//   - GET|POST /control/scenario read / hot-swap the constellation
//
// Read-only endpoints reject non-GET methods, set Cache-Control:
// no-store (the payloads are live state) and count encode failures in
// live_control_encode_errors_total. Mutations take query parameters
// (?multiplier=, ?preset=, ?constellation=) so they are curl-able; every
// accepted mutation counts in live_control_requests_total. See
// OBSERVABILITY.md for the endpoint table.
func ControlHandler(p *Pipeline, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", obs.DebugHandler(reg, func() any { return p.Progress() }))

	// encode writes v as JSON, counting (not masking) encode failures —
	// by the time Encode fails the status line is gone anyway.
	encode := func(w http.ResponseWriter, indent bool, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if indent {
			enc.SetIndent("", "  ")
		}
		if err := enc.Encode(v); err != nil {
			mControlEncodeErrors.Inc()
		}
	}
	// readOnly wraps a GET-only live-state handler: non-GET is rejected
	// and responses are marked uncacheable.
	readOnly := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				w.Header().Set("Allow", http.MethodGet)
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Cache-Control", "no-store")
			h(w, r)
		}
	}

	mux.HandleFunc("/healthz", readOnly(func(w http.ResponseWriter, _ *http.Request) {
		if stalled := p.Stalled(); len(stalled) > 0 {
			http.Error(w, fmt.Sprintf("stalled stages: %v", stalled), http.StatusServiceUnavailable)
			return
		}
		degraded, reason := p.Degraded()
		encode(w, false, map[string]any{
			"status": "ok", "degraded": degraded, "reason": reason,
		})
	}))

	mux.HandleFunc("/readyz", readOnly(func(w http.ResponseWriter, _ *http.Request) {
		if !p.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	}))

	mux.HandleFunc("/analytics", readOnly(func(w http.ResponseWriter, _ *http.Request) {
		encode(w, true, map[string]any{
			"watermark_seconds":   p.Analytics().Watermark().Seconds(),
			"resume_from_seconds": p.ResumeFrom().Seconds(),
			"windows":             p.Analytics().Recent(),
		})
	}))

	mux.HandleFunc("/trace/recent", readOnly(func(w http.ResponseWriter, r *http.Request) {
		limit := 50
		if raw := r.URL.Query().Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", raw), http.StatusBadRequest)
				return
			}
			limit = n
		}
		flows := p.Tracing().Recent(limit)
		if flows == nil {
			flows = []*trace.Flow{} // keep the field an array, never null
		}
		encode(w, true, map[string]any{
			"sample_n": p.Tracing().SampleN(),
			"total":    p.Tracing().Total(),
			"flows":    flows,
		})
	}))

	mux.HandleFunc("/metrics/history", readOnly(func(w http.ResponseWriter, r *http.Request) {
		var names []string
		if raw := r.URL.Query().Get("metrics"); raw != "" {
			for _, n := range strings.Split(raw, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
		}
		points := p.MetricsHistory().Recent(names)
		if points == nil {
			points = []obs.Point{}
		}
		encode(w, false, map[string]any{
			"every_seconds": p.cfg.MetricsEvery.Seconds(),
			"points":        points,
		})
	}))

	mux.HandleFunc("/dashboard", readOnly(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(dashboardHTML)
	}))

	mux.HandleFunc("/control/rate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			raw := r.URL.Query().Get("multiplier")
			m, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad multiplier %q: %v", raw, err), http.StatusBadRequest)
				return
			}
			if err := p.SetRate(m); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mControlRequests.Inc()
		}
		encode(w, false, map[string]float64{"multiplier": p.Rate()})
	})

	mux.HandleFunc("/control/faults", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			preset := r.URL.Query().Get("preset")
			if preset == "" {
				http.Error(w, "missing ?preset= (a faults preset name, or \"clear\")", http.StatusBadRequest)
				return
			}
			if preset == "clear" {
				p.Sim().SetFaults(nil)
			} else {
				sched, err := faults.Preset(preset, 1, p.Sim().Seed())
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				// Presets are authored against day 0; shift them to start
				// at the current simulated instant so an injected fault
				// bites now, not days in the past.
				p.Sim().SetFaults(shiftSchedule(sched, p.Clock().Now()))
			}
			mControlRequests.Inc()
		}
		sched := p.Sim().Faults()
		if sched == nil {
			encode(w, true, map[string]any{"active": false})
			return
		}
		encode(w, true, map[string]any{"active": true, "schedule": sched})
	})

	mux.HandleFunc("/control/scenario", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			con := r.URL.Query().Get("constellation")
			if con == "" {
				http.Error(w, "missing ?constellation=", http.StatusBadRequest)
				return
			}
			if err := p.Sim().SwapScenario(con); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mScenarioSwaps.Inc()
			mControlRequests.Inc()
		}
		encode(w, false, map[string]string{"constellation": p.Sim().ScenarioName()})
	})

	return mux
}

// shiftSchedule rebases every event of s by offset (fault presets start
// at the epoch; live injection wants them to start now).
func shiftSchedule(s *faults.Schedule, offset time.Duration) *faults.Schedule {
	if s == nil {
		return nil
	}
	out := &faults.Schedule{Name: s.Name, Seed: s.Seed, Events: make([]faults.Event, len(s.Events))}
	copy(out.Events, s.Events)
	for i := range out.Events {
		out.Events[i].Start += offset
		out.Events[i].End += offset
	}
	return out
}
