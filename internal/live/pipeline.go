// Package live is the always-on streaming daemon: it runs the batch
// simulator's model stack as a continuous pipeline in simulated real
// time. Explicit stages — workload generation, dispatch, synthesis
// workers, windowed analytics — are connected by bounded queues, each
// edge with a declared backpressure policy (block upstream vs shed and
// count). A per-stage watchdog restarts wedged stages into degraded
// mode, and SIGTERM triggers a graceful drain that flushes trackers and
// finalizes analytics windows. See DESIGN.md §11.
package live

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"satwatch/internal/dist"
	"satwatch/internal/faults"
	"satwatch/internal/netsim"
	"satwatch/internal/obs"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
	"satwatch/internal/workload"
)

// Config parameterizes the daemon.
type Config struct {
	// Customers, Seed, Constellation and Faults configure the underlying
	// simulator exactly as a batch run would.
	Customers     int
	Seed          uint64
	Constellation string
	// Faults is recorded in the manifest under its own key, not the
	// config dump (matching netsim.Config).
	Faults *faults.Schedule `json:"-"`

	// Speedup is simulated seconds per wall second (default 60).
	Speedup float64
	// Workers is the synthesis shard count (default 4).
	Workers int
	// Rate is the initial workload multiplier (default 1). Values > 1
	// replicate intents at admission — an overload knob; the replicas get
	// fresh random streams so they diverge.
	Rate float64

	// Queue depths per edge (defaults 1024 / 256 per shard / 4096).
	IntentDepth, WorkerDepth, RecordDepth int

	// Window and Grace shape the rolling analytics (simulated time;
	// defaults 10 min each). KeepWindows bounds retained summaries.
	Window, Grace time.Duration
	KeepWindows   int

	// Lookahead is how far ahead of the sim clock the generator may
	// admit intents (simulated; default 30 s).
	Lookahead time.Duration

	// StallTimeout is the watchdog's heartbeat deadline (wall; default
	// 5 s). DrainTimeout bounds the graceful drain (wall; default 20 s).
	StallTimeout, DrainTimeout time.Duration

	// TraceSample enables live flight-recorder tracing of 1 in N
	// synthesized flows (0 disables; 1 traces everything). The sampling
	// key matches batch -trace-sample: a deterministic hash of
	// (customer, day, sequence), independent of worker count.
	TraceSample int
	// TraceDir, when set (and TraceSample > 0), writes traced flows to a
	// size-capped rotating JSONL log. TraceRing bounds the in-memory
	// recent ring served at /trace/recent; TraceFileMaxBytes and
	// TraceKeepFiles shape rotation (internal/trace defaults).
	TraceDir          string
	TraceRing         int
	TraceFileMaxBytes int64
	TraceKeepFiles    int

	// HistoryDir, when set, appends finalized window summaries to a
	// crash-tolerant JSONL log and replays it at startup, so restarts
	// keep their /analytics history and resume the sim clock past the
	// last persisted window.
	HistoryDir string

	// MetricsEvery is the /metrics/history sampling cadence in simulated
	// time (default 30 s); MetricsKeep bounds the retained points
	// (default obs.DefaultHistoryKeep).
	MetricsEvery time.Duration
	MetricsKeep  int

	// Logf receives operational log lines; nil discards them. Excluded
	// from the manifest config dump.
	Logf func(format string, args ...any) `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Speedup <= 0 {
		c.Speedup = 60
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Rate <= 0 {
		c.Rate = 1
	}
	if c.IntentDepth <= 0 {
		c.IntentDepth = 1024
	}
	if c.WorkerDepth <= 0 {
		c.WorkerDepth = 256
	}
	if c.RecordDepth <= 0 {
		c.RecordDepth = 4096
	}
	if c.Lookahead <= 0 {
		c.Lookahead = 30 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 20 * time.Second
	}
	if c.MetricsEvery <= 0 {
		c.MetricsEvery = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// intentItem is one admitted intent plus its run-unique sequence number
// (the key of its private random stream). admitNS is the wall-clock
// admission stamp for the queue-wait trace span; zero when tracing is
// off.
type intentItem struct {
	fi      workload.FlowIntent
	seq     uint64
	admitNS int64
}

// recordItem is either a flow or a DNS record on the analytics edge.
type recordItem struct {
	flow *tstat.FlowRecord
	dns  *tstat.DNSRecord
}

// Pipeline is the wired daemon. Build with New, drive with Run.
type Pipeline struct {
	cfg Config
	sim *netsim.LiveSim

	clock     *Clock
	source    *workload.Source
	intentQ   *Queue[intentItem]
	workerQs  []*Queue[intentItem]
	recordQ   *Queue[recordItem]
	analytics *Analytics
	sup       *supervisor

	tracing     *Tracing
	history     *HistoryLog
	metricsHist *obs.History
	// resumeFrom is the simulated instant the clock restarts at after a
	// history replay; intents starting before it are already covered by
	// persisted windows and are skipped at generation.
	resumeFrom time.Duration

	rateBits       atomic.Uint64 // math.Float64bits of the multiplier
	degraded       atomic.Bool
	degradedReason atomic.Pointer[string]
	seq            atomic.Uint64
	ready          atomic.Bool
	draining       atomic.Bool

	intents     atomic.Int64
	flowRecs    atomic.Int64
	dnsRecs     atomic.Int64
	activeFlows []atomic.Int64 // per worker shard

	workersLeft atomic.Int64
}

// New builds (but does not start) a pipeline.
func New(cfg Config) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	sim, err := netsim.NewLiveSim(netsim.Config{
		Customers: cfg.Customers, Seed: cfg.Seed,
		Constellation: cfg.Constellation, Faults: cfg.Faults,
	})
	if err != nil {
		return nil, err
	}
	prefixes, err := sim.CountryPrefixes()
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:         cfg,
		sim:         sim,
		source:      workload.NewSource(sim.Customers(), sim.Root()),
		activeFlows: make([]atomic.Int64, cfg.Workers),
	}
	p.setRate(cfg.Rate)
	p.intentQ = NewQueue[intentItem](cfg.IntentDepth, Block, qmIntents, &p.degraded)
	p.workerQs = make([]*Queue[intentItem], cfg.Workers)
	for i := range p.workerQs {
		p.workerQs[i] = NewQueue[intentItem](cfg.WorkerDepth, Shed, qmSynth, &p.degraded)
	}
	p.recordQ = NewQueue[recordItem](cfg.RecordDepth, Shed, qmRecords, &p.degraded)
	p.analytics = NewAnalytics(cfg.Window, cfg.Grace, cfg.KeepWindows, prefixes, &p.degraded)
	p.workersLeft.Store(int64(cfg.Workers))

	p.tracing, err = NewTracing(TracingConfig{
		SampleN: cfg.TraceSample, Ring: cfg.TraceRing,
		Dir: cfg.TraceDir, MaxBytes: cfg.TraceFileMaxBytes, KeepFiles: cfg.TraceKeepFiles,
	})
	if err != nil {
		return nil, err
	}
	if cfg.HistoryDir != "" {
		h, prior, st, err := OpenHistory(cfg.HistoryDir)
		if err != nil {
			return nil, err
		}
		p.history = h
		if st.Skipped > 0 {
			cfg.Logf("live: history replay skipped %d corrupt lines", st.Skipped)
		}
		if len(prior) > 0 {
			p.analytics.Preload(prior)
			// Restart past the last persisted window: the clock resumes
			// there and already-covered intents are skipped, so the
			// replayed window list never collides with new ones.
			p.resumeFrom = prior[len(prior)-1].End
			cfg.Logf("live: replayed %d windows from %s, resuming at sim %s",
				len(prior), h.Path(), p.resumeFrom)
		}
		mHistoryReloaded.Set(float64(len(prior)))
		p.analytics.OnFinalize(func(s WindowSummary) {
			if err := p.history.Append(s); err != nil {
				mHistoryWriteErrors.Inc()
				p.cfg.Logf("live: %v", err)
			} else {
				mHistoryAppends.Inc()
			}
		})
	}
	p.clock = NewClock(cfg.Speedup, p.resumeFrom)
	p.metricsHist = obs.NewHistory(nil, cfg.MetricsKeep)
	mSimSeconds.Set(p.resumeFrom.Seconds())

	p.sup = &supervisor{
		timeout: cfg.StallTimeout,
		degrade: p.degrade,
		logf:    cfg.Logf,
	}
	mSpeedup.Set(cfg.Speedup)
	return p, nil
}

// Sim exposes the underlying live simulator (control plane: fault and
// scenario swaps).
func (p *Pipeline) Sim() *netsim.LiveSim { return p.sim }

// Analytics exposes the rolling-window aggregator.
func (p *Pipeline) Analytics() *Analytics { return p.analytics }

// Tracing exposes the live flight recorder (nil when tracing is off).
func (p *Pipeline) Tracing() *Tracing { return p.tracing }

// MetricsHistory exposes the registry time-series sampler.
func (p *Pipeline) MetricsHistory() *obs.History { return p.metricsHist }

// History exposes the window-history log (nil without -history).
func (p *Pipeline) History() *HistoryLog { return p.history }

// ResumeFrom reports the simulated instant a history replay resumed the
// clock at (zero on a fresh start).
func (p *Pipeline) ResumeFrom() time.Duration { return p.resumeFrom }

// Clock exposes the simulation clock.
func (p *Pipeline) Clock() *Clock { return p.clock }

// Rate returns the live workload multiplier.
func (p *Pipeline) Rate() float64 { return math.Float64frombits(p.rateBits.Load()) }

// SetRate updates the workload multiplier (values clamped to [0, 100]).
func (p *Pipeline) SetRate(m float64) error {
	if math.IsNaN(m) || m < 0 || m > 100 {
		return fmt.Errorf("live: rate multiplier %v out of range [0, 100]", m)
	}
	p.setRate(m)
	return nil
}

func (p *Pipeline) setRate(m float64) {
	p.rateBits.Store(math.Float64bits(m))
	mRate.Set(m)
}

// Degraded reports whether the daemon is in degraded mode and why.
func (p *Pipeline) Degraded() (bool, string) {
	if !p.degraded.Load() {
		return false, ""
	}
	if r := p.degradedReason.Load(); r != nil {
		return true, *r
	}
	return true, "unknown"
}

// degrade flips the daemon into degraded mode (idempotent; first reason
// wins).
func (p *Pipeline) degrade(reason string) {
	if p.degraded.CompareAndSwap(false, true) {
		p.degradedReason.Store(&reason)
		mDegraded.Set(1)
		p.cfg.Logf("live: entering degraded mode: %s", reason)
	}
}

// Ready reports whether the pipeline is running and not draining (for
// /readyz).
func (p *Pipeline) Ready() bool { return p.ready.Load() && !p.draining.Load() }

// Stalled returns the names of currently stalled stages (for /healthz).
func (p *Pipeline) Stalled() []string { return p.sup.stalled() }

// Progress is the /progress and manifest snapshot.
type Progress struct {
	SimSeconds  float64  `json:"sim_seconds"`
	Day         int      `json:"day"`
	Scenario    string   `json:"scenario"`
	Rate        float64  `json:"rate_multiplier"`
	Intents     int64    `json:"intents"`
	FlowRecords int64    `json:"flow_records"`
	DNSRecords  int64    `json:"dns_records"`
	ActiveFlows int64    `json:"active_flows"`
	Windows     int      `json:"windows_finalized"`
	Traced      uint64   `json:"traced_flows,omitempty"`
	Faults      string   `json:"faults_active,omitempty"`
	Degraded    bool     `json:"degraded"`
	Reason      string   `json:"degraded_reason,omitempty"`
	Stalled     []string `json:"stalled_stages,omitempty"`
	QueueDepths struct {
		Intents int `json:"intents"`
		Synth   int `json:"synth"`
		Records int `json:"records"`
	} `json:"queue_depths"`
}

// Progress snapshots the run state.
func (p *Pipeline) Progress() Progress {
	var pr Progress
	pr.SimSeconds = p.clock.Now().Seconds()
	pr.Day = p.source.Day() // generator-owned, but an int read is tear-free in practice
	pr.Scenario = p.sim.ScenarioName()
	pr.Rate = p.Rate()
	pr.Intents = p.intents.Load()
	pr.FlowRecords = p.flowRecs.Load()
	pr.DNSRecords = p.dnsRecs.Load()
	pr.ActiveFlows = p.activeFlowsTotal()
	pr.Windows = len(p.analytics.Recent())
	pr.Traced = p.tracing.Total()
	if sched := p.sim.Faults(); sched != nil {
		pr.Faults = sched.Name
	}
	pr.Degraded, pr.Reason = p.Degraded()
	pr.Stalled = p.Stalled()
	pr.QueueDepths.Intents = p.intentQ.Len()
	for _, q := range p.workerQs {
		pr.QueueDepths.Synth += q.Len()
	}
	pr.QueueDepths.Records = p.recordQ.Len()
	return pr
}

func (p *Pipeline) activeFlowsTotal() int64 {
	var n int64
	for i := range p.activeFlows {
		n += p.activeFlows[i].Load()
	}
	return n
}

// QueueDepths returns the per-edge buffered totals (soak assertions).
func (p *Pipeline) QueueDepths() (intents, synth, records int) {
	intents = p.intentQ.Len()
	for _, q := range p.workerQs {
		synth += q.Len()
	}
	records = p.recordQ.Len()
	return
}

// ErrDrainTimeout reports that the graceful drain did not finish inside
// Config.DrainTimeout and the pipeline was hard-aborted.
var ErrDrainTimeout = errors.New("live: drain timed out, pipeline aborted")

// Run starts every stage and blocks until ctx is cancelled, then drains:
// the generator stops, queues empty downstream, workers flush their
// trackers, and analytics finalizes every open window. Returns nil on a
// clean drain, ErrDrainTimeout when the drain had to be aborted.
func (p *Pipeline) Run(ctx context.Context) error {
	// Stage lifetimes are decoupled from ctx: they must outlive it to
	// drain. hardCtx is the abort hammer of last resort.
	hardCtx, hardAbort := context.WithCancel(context.Background())
	defer hardAbort()

	drainCh := make(chan struct{})
	genR := p.sim.Root().Fork("live-rate")
	p.sup.add("generate", func(sctx context.Context, beat func()) error {
		return p.generate(sctx, drainCh, genR, beat)
	}, p.intentQ.Close)
	p.sup.add("dispatch", p.dispatch, func() {
		for _, q := range p.workerQs {
			q.Close()
		}
	})
	for i := 0; i < p.cfg.Workers; i++ {
		i := i
		p.sup.add(fmt.Sprintf("synth-%d", i), func(sctx context.Context, beat func()) error {
			return p.synth(sctx, i, beat)
		}, func() {
			if p.workersLeft.Add(-1) == 0 {
				p.recordQ.Close()
			}
		})
	}
	p.sup.add("analytics", p.analyze, p.analytics.Finalize)
	p.sup.add("sampler", func(sctx context.Context, beat func()) error {
		return p.sampleMetrics(sctx, drainCh, beat)
	}, nil)

	p.sup.start(hardCtx)
	p.ready.Store(true)
	<-ctx.Done()

	p.draining.Store(true)
	p.cfg.Logf("live: draining (timeout %s)", p.cfg.DrainTimeout)
	close(drainCh)
	done := make(chan struct{})
	go func() { p.sup.wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-time.After(p.cfg.DrainTimeout):
		hardAbort()
		<-done
		p.analytics.Finalize()
		err = ErrDrainTimeout
	}
	p.ready.Store(false)
	hardAbort() // reap the watchdog
	<-p.sup.wdDone
	// All stages are down: the finalize hook cannot fire again and no
	// worker holds a trace handle, so the persistence sinks close now.
	if cerr := p.history.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if cerr := p.tracing.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// sampleMetrics snapshots the registry into the /metrics/history ring
// every Config.MetricsEvery simulated seconds. It ticks on a short wall
// interval so heartbeats stay fresh even at low speedups.
func (p *Pipeline) sampleMetrics(ctx context.Context, drain <-chan struct{}, beat func()) error {
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	next := p.clock.Now() + p.cfg.MetricsEvery
	for {
		beat()
		select {
		case <-drain:
			return nil
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		if now := p.clock.Now(); now >= next {
			p.metricsHist.Sample(now.Seconds())
			mMetricsSamples.Inc()
			next = now + p.cfg.MetricsEvery
		}
	}
}

// generate is the source stage: it paces intents against the sim clock
// and admits them (times the rate multiplier) onto the blocking intent
// queue. Exits cleanly when drain closes.
func (p *Pipeline) generate(ctx context.Context, drain <-chan struct{}, r *dist.Rand, beat func()) error {
	for {
		beat()
		select {
		case <-drain:
			return nil
		case <-ctx.Done():
			return nil
		default:
		}
		fi := *p.source.Next() // copy: the source reuses its buffer per day
		if fi.Start < p.resumeFrom {
			// History replay already covers this instant; regenerating it
			// would double-count into finalized (persisted) windows.
			continue
		}

		// Pace: hold until the sim clock is within Lookahead of the
		// intent's start, heartbeating through long waits.
		for {
			wait := p.clock.WallUntil(fi.Start - p.cfg.Lookahead)
			if wait <= 0 {
				break
			}
			if wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			select {
			case <-drain:
				return nil
			case <-ctx.Done():
				return nil
			case <-time.After(wait):
				beat()
			}
		}
		mSimSeconds.Set(p.clock.Now().Seconds())

		// Rate multiplier: floor copies plus a Bernoulli trial on the
		// fraction. Replicas get distinct sequence numbers, hence
		// distinct random streams downstream.
		rate := p.Rate()
		n := int(rate)
		if frac := rate - float64(n); frac > 0 && r.Float64() < frac {
			n++
		}
		for c := 0; c < n; c++ {
			item := intentItem{fi: fi, seq: p.seq.Add(1)}
			if p.tracing != nil {
				item.admitNS = time.Now().UnixNano()
			}
			if !p.intentQ.Push(ctx, item, beat) {
				return nil // cancelled mid-push
			}
			p.intents.Add(1)
			mIntents.Inc()
		}
	}
}

// dispatch shards intents to workers by customer ID (each customer's
// port allocator and tracker state must stay on one goroutine). The
// worker edges shed under overload.
func (p *Pipeline) dispatch(ctx context.Context, beat func()) error {
	for {
		beat()
		item, ok := p.intentQ.Pop(ctx, beat)
		if !ok {
			if ctx.Err() != nil {
				return nil // hard abort; supervisor sorts it out
			}
			return nil // drained
		}
		shard := item.fi.Customer.ID % p.cfg.Workers
		p.workerQs[shard].Push(ctx, item, beat) // Shed: drop + count when full
	}
}

// synth is one synthesis shard: a LiveWorker owning a tracker whose
// records stream onto the analytics queue. Restarts build a fresh
// worker (in-flight flows of the old incarnation are lost — degraded).
//
// Trace handles finish on this goroutine — either inside the tracker's
// record emission (immediately before the OnFlow callback) or directly
// on the failure path — and are buffered worker-locally until the end
// of the iteration, when every span has been appended; only then are
// they published to the shared ring. `fresh` marks a handle finished
// synchronously by the emission the current callback belongs to, which
// is the only moment the analytics-admit span can be attributed safely;
// it is cleared between Process and Advance so a directly-finished
// handle (beam outage) can never steal a later record's admit span.
func (p *Pipeline) synth(ctx context.Context, shard int, beat func()) error {
	var pending []*trace.Flow
	fresh := false
	sink := trace.SinkFunc(func(f *trace.Flow) {
		pending = append(pending, f)
		fresh = true
	})
	takeFresh := func() *trace.Flow {
		if !fresh {
			return nil
		}
		fresh = false
		return pending[len(pending)-1]
	}
	publishPending := func() {
		for _, f := range pending {
			p.tracing.Publish(f)
		}
		pending = pending[:0]
		fresh = false
	}
	w := p.sim.NewWorker(
		func(rec tstat.FlowRecord) {
			fl := takeFresh()
			r := rec
			start := time.Time{}
			if fl != nil {
				start = time.Now()
			}
			ok := p.recordQ.Push(ctx, recordItem{flow: &r}, beat)
			if fl != nil {
				fl.Span(trace.SpanLiveAdmit, trace.SegProbe, time.Since(start),
					trace.Attrs{"admitted": ok})
			}
			if ok {
				p.flowRecs.Add(1)
				mFlowRecords.Inc()
			}
		},
		func(rec tstat.DNSRecord) {
			r := rec
			if p.recordQ.Push(ctx, recordItem{dns: &r}, beat) {
				p.dnsRecs.Add(1)
				mDNSRecords.Inc()
			}
		},
	)
	defer func() {
		p.activeFlows[shard].Store(0)
		p.publishActiveFlows()
	}()
	for {
		beat()
		item, ok := p.workerQs[shard].Pop(ctx, beat)
		if !ok {
			if ctx.Err() == nil {
				w.Flush() // graceful drain: emit everything in flight
			}
			publishPending()
			return nil
		}
		var fl *trace.Flow
		var synthStart time.Time
		if p.tracing != nil {
			day := int(item.fi.Start / (24 * time.Hour))
			fl = p.tracing.Start(sink, item.fi.Customer.ID, day, int(item.seq))
			if fl != nil {
				if item.admitNS != 0 {
					fl.Span(trace.SpanLiveQueueWait, trace.SegProbe,
						time.Since(time.Unix(0, item.admitNS)), nil)
				}
				synthStart = time.Now()
			}
		}
		if err := w.Process(&item.fi, item.seq, fl); err != nil {
			mSynthErrors.Inc()
			p.cfg.Logf("live: synth-%d: %v", shard, err)
		}
		if fl != nil {
			fl.Span(trace.SpanLiveSynth, trace.SegProbe, time.Since(synthStart),
				trace.Attrs{"shard": shard})
		}
		fresh = false // direct finishes (failure paths) must not claim admit spans
		w.Advance(p.clock.Now())
		publishPending()
		p.activeFlows[shard].Store(int64(w.ActiveFlows()))
		p.publishActiveFlows()
	}
}

func (p *Pipeline) publishActiveFlows() {
	mActiveFlows.Set(float64(p.activeFlowsTotal()))
}

// analyze folds the record stream into rolling windows.
func (p *Pipeline) analyze(ctx context.Context, beat func()) error {
	for {
		beat()
		item, ok := p.recordQ.Pop(ctx, beat)
		if !ok {
			return nil
		}
		switch {
		case item.flow != nil:
			p.analytics.AddFlow(*item.flow)
		case item.dns != nil:
			p.analytics.AddDNS(*item.dns)
		}
	}
}
