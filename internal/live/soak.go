package live

import (
	"context"
	"fmt"
	"runtime"
	"time"
)

// SoakReport is the verdict of a soak run: the pipeline runs for a fixed
// wall duration under an overload phase, then drains; the report checks
// the three leak classes an always-on daemon must not have.
type SoakReport struct {
	Duration time.Duration `json:"duration_ns"`

	// Goroutines before start and after drain (plus settle time).
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`

	// Post-drain queue depths; all must be zero.
	QueueIntents int `json:"queue_intents"`
	QueueSynth   int `json:"queue_synth"`
	QueueRecords int `json:"queue_records"`

	// GC'd heap at the first-quarter sample and at the end; unbounded
	// growth fails the run.
	HeapEarlyBytes uint64 `json:"heap_early_bytes"`
	HeapFinalBytes uint64 `json:"heap_final_bytes"`

	Progress Progress `json:"progress"`
	DrainErr string   `json:"drain_err,omitempty"`

	Failures []string `json:"failures,omitempty"`
}

// OK reports whether every invariant held.
func (r *SoakReport) OK() bool { return len(r.Failures) == 0 && r.DrainErr == "" }

// gcHeap samples the live heap after a forced GC, so transient garbage
// does not count as growth.
func gcHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Soak runs the pipeline for dur under cfg, doubling the rate multiplier
// through the middle third (the overload phase), then drains and checks:
// no leaked goroutines, every queue empty, heap growth bounded. The
// returned report carries the evidence; callers exit nonzero when !OK.
func Soak(cfg Config, dur time.Duration) (*SoakReport, error) {
	rep := &SoakReport{Duration: dur}

	// Baseline before the pipeline exists.
	runtime.GC()
	rep.GoroutinesBefore = runtime.NumGoroutine()

	p, err := New(cfg)
	if err != nil {
		return nil, err
	}
	baseRate := p.Rate()

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	runDone := make(chan error, 1)
	go func() { runDone <- p.Run(ctx) }()

	// Overload phase: double the admission rate through the middle third.
	third := dur / 3
	select {
	case <-time.After(third):
		p.SetRate(baseRate * 2)
	case err := <-runDone:
		return nil, fmt.Errorf("live: pipeline exited before soak end: %v", err)
	}
	rep.HeapEarlyBytes = gcHeap()
	select {
	case <-time.After(third):
		p.SetRate(baseRate)
	case err := <-runDone:
		return nil, fmt.Errorf("live: pipeline exited before soak end: %v", err)
	}

	// Let the run finish and drain.
	if err := <-runDone; err != nil {
		rep.DrainErr = err.Error()
	}
	rep.Progress = p.Progress()
	rep.QueueIntents, rep.QueueSynth, rep.QueueRecords = p.QueueDepths()
	rep.HeapFinalBytes = gcHeap()

	// Goroutines unwind asynchronously after drain; poll to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep.GoroutinesAfter = runtime.NumGoroutine()
		if rep.GoroutinesAfter <= rep.GoroutinesBefore+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	if rep.GoroutinesAfter > rep.GoroutinesBefore+2 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"goroutines leaked: %d before, %d after drain", rep.GoroutinesBefore, rep.GoroutinesAfter))
	}
	if rep.QueueIntents != 0 || rep.QueueSynth != 0 || rep.QueueRecords != 0 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"queues not drained: intents=%d synth=%d records=%d",
			rep.QueueIntents, rep.QueueSynth, rep.QueueRecords))
	}
	// Bounded-heap check: the post-drain heap may exceed the mid-run
	// sample only by a generous constant (steady-state caches), never by
	// a multiple that would indicate per-item accumulation.
	if rep.HeapFinalBytes > rep.HeapEarlyBytes*2+64<<20 {
		rep.Failures = append(rep.Failures, fmt.Sprintf(
			"heap grew unbounded: %d bytes early, %d bytes after drain",
			rep.HeapEarlyBytes, rep.HeapFinalBytes))
	}
	if rep.Progress.Intents == 0 {
		rep.Failures = append(rep.Failures, "no intents admitted: pipeline never moved")
	}
	return rep, nil
}
