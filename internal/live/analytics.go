package live

import (
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/tstat"
)

// WindowSummary is one finalized analytics window: the live counterpart
// of the batch report's per-dataset aggregates, computed online over a
// fixed span of simulated time. In degraded mode the per-country and
// per-resolver breakdowns are dropped (nil maps) and only the totals are
// kept — coarse but cheap.
type WindowSummary struct {
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`

	Flows     int64 `json:"flows"`
	DNS       int64 `json:"dns"`
	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`

	// BytesByCountry maps country code to total volume; nil in degraded
	// windows.
	BytesByCountry map[string]int64 `json:"bytes_by_country,omitempty"`
	// DNSByResolver maps resolver ID to query count; nil in degraded
	// windows.
	DNSByResolver map[string]int64 `json:"dns_by_resolver,omitempty"`

	// Satellite-RTT aggregate over the window's flows that completed a
	// TLS handshake.
	RTTSamples int64   `json:"rtt_samples"`
	RTTMeanMs  float64 `json:"rtt_mean_ms"`
	RTTMaxMs   float64 `json:"rtt_max_ms"`

	Degraded bool `json:"degraded,omitempty"`
}

type windowAgg struct {
	flows, dns         int64
	bytesUp, bytesDown int64
	byCountry          map[string]int64
	byResolver         map[string]int64
	rttN               int64
	rttSum             time.Duration
	rttMax             time.Duration
}

// Analytics folds the record stream into rolling windows of simulated
// time. A window [k*W, (k+1)*W) finalizes when the watermark — the
// maximum record start seen — passes its end plus a grace period
// (records arrive out of order by up to flow duration + idle timeout).
// Finalized summaries land in a bounded ring readable by the control
// plane. All methods are goroutine-safe.
type Analytics struct {
	window, grace time.Duration
	keep          int
	prefixes      map[netip.Prefix]geo.CountryCode
	degraded      *atomic.Bool

	mu        sync.Mutex
	open      map[int64]*windowAgg
	watermark time.Duration
	recent    []WindowSummary // newest last, capped at keep
	onFinal   func(WindowSummary)
}

// NewAnalytics builds the rolling-window aggregator. window and grace
// are simulated durations; keep bounds the retained summaries. degraded
// may be nil.
func NewAnalytics(window, grace time.Duration, keep int, prefixes map[netip.Prefix]geo.CountryCode, degraded *atomic.Bool) *Analytics {
	if window <= 0 {
		window = 10 * time.Minute
	}
	if grace <= 0 {
		grace = 10 * time.Minute
	}
	if keep <= 0 {
		keep = 48
	}
	return &Analytics{
		window: window, grace: grace, keep: keep,
		prefixes: prefixes, degraded: degraded,
		open: map[int64]*windowAgg{},
	}
}

func (a *Analytics) isDegraded() bool { return a.degraded != nil && a.degraded.Load() }

func (a *Analytics) countryOf(addr netip.Addr) (geo.CountryCode, bool) {
	for p, code := range a.prefixes {
		if p.Contains(addr) {
			return code, true
		}
	}
	return "", false
}

// aggAt returns the open aggregate for the window containing t, or nil
// when that window's finalization boundary has already passed the
// watermark. Folding a too-late record in would reopen the window and
// re-emit a duplicate summary for a span the control plane — and the
// history log — has already served; instead the record is dropped and
// counted, keeping finalization exactly-once per window. Callers hold
// a.mu.
func (a *Analytics) aggAt(t time.Duration) *windowAgg {
	k := int64(t / a.window)
	if time.Duration(k+1)*a.window+a.grace <= a.watermark {
		mLateRecords.Inc()
		return nil
	}
	agg, ok := a.open[k]
	if !ok {
		agg = &windowAgg{}
		if !a.isDegraded() {
			agg.byCountry = map[string]int64{}
			agg.byResolver = map[string]int64{}
		}
		a.open[k] = agg
	}
	return agg
}

// AddFlow folds one flow record into its window.
func (a *Analytics) AddFlow(rec tstat.FlowRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	agg := a.aggAt(rec.Start)
	if agg == nil {
		return
	}
	agg.flows++
	agg.bytesUp += rec.BytesUp
	agg.bytesDown += rec.BytesDown
	if agg.byCountry != nil {
		if code, ok := a.countryOf(rec.Client); ok {
			agg.byCountry[string(code)] += rec.BytesUp + rec.BytesDown
		}
	}
	if rec.SatRTT > 0 {
		agg.rttN++
		agg.rttSum += rec.SatRTT
		if rec.SatRTT > agg.rttMax {
			agg.rttMax = rec.SatRTT
		}
		mWindowRTT.ObserveDuration(rec.SatRTT)
	}
	a.advance(rec.Start)
}

// AddDNS folds one DNS record into its window.
func (a *Analytics) AddDNS(rec tstat.DNSRecord) {
	a.mu.Lock()
	defer a.mu.Unlock()
	agg := a.aggAt(rec.T)
	if agg == nil {
		return
	}
	agg.dns++
	if agg.byResolver != nil {
		agg.byResolver[string(dnssim.ByAddr(rec.Resolver).ID)]++
	}
	a.advance(rec.T)
}

// advance moves the watermark and finalizes every window whose end plus
// grace the watermark has passed. Callers hold a.mu.
func (a *Analytics) advance(t time.Duration) {
	if t > a.watermark {
		a.watermark = t
	}
	var due []int64
	for k := range a.open {
		if time.Duration(k+1)*a.window+a.grace <= a.watermark {
			due = append(due, k)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, k := range due {
		a.finalize(k, a.open[k])
	}
}

// Finalize flushes every open window (graceful-drain path).
func (a *Analytics) Finalize() {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]int64, 0, len(a.open))
	for k := range a.open {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		a.finalize(k, a.open[k])
	}
}

// finalize emits one window summary. Callers hold a.mu.
func (a *Analytics) finalize(k int64, agg *windowAgg) {
	delete(a.open, k)
	s := WindowSummary{
		Start: time.Duration(k) * a.window, End: time.Duration(k+1) * a.window,
		Flows: agg.flows, DNS: agg.dns,
		BytesUp: agg.bytesUp, BytesDown: agg.bytesDown,
		BytesByCountry: agg.byCountry, DNSByResolver: agg.byResolver,
		RTTSamples: agg.rttN,
		RTTMaxMs:   float64(agg.rttMax) / float64(time.Millisecond),
		Degraded:   agg.byCountry == nil,
	}
	if agg.rttN > 0 {
		s.RTTMeanMs = float64(agg.rttSum) / float64(agg.rttN) / float64(time.Millisecond)
	}
	a.recent = append(a.recent, s)
	if len(a.recent) > a.keep {
		a.recent = a.recent[len(a.recent)-a.keep:]
	}
	mWindows.Inc()
	if a.onFinal != nil {
		a.onFinal(s)
	}
}

// OnFinalize registers fn to receive every finalized summary (the
// history-log persistence hook). fn runs under the analytics lock on
// whatever goroutine triggered finalization, so it must not call back
// into Analytics. Call before the pipeline starts.
func (a *Analytics) OnFinalize(fn func(WindowSummary)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.onFinal = fn
}

// Preload seeds the ring with previously finalized summaries (a
// restarted daemon replaying its history log) and advances the
// watermark past them so already-covered windows cannot reopen. The
// OnFinalize hook is not invoked — these windows are already persisted.
func (a *Analytics) Preload(ws []WindowSummary) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range ws {
		a.recent = append(a.recent, s)
		if s.End > a.watermark {
			a.watermark = s.End
		}
	}
	if len(a.recent) > a.keep {
		a.recent = a.recent[len(a.recent)-a.keep:]
	}
}

// Recent returns the finalized summaries, oldest first.
func (a *Analytics) Recent() []WindowSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]WindowSummary, len(a.recent))
	copy(out, a.recent)
	return out
}

// Watermark returns the analytics watermark (max record time seen).
func (a *Analytics) Watermark() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.watermark
}
