package live

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func testSupervisor(timeout time.Duration) (*supervisor, *atomic.Int64) {
	var degradations atomic.Int64
	sup := &supervisor{
		timeout: timeout,
		degrade: func(string) { degradations.Add(1) },
		logf:    func(string, ...any) {},
	}
	return sup, &degradations
}

func TestSupervisorRestartsPanickedStage(t *testing.T) {
	sup, degradations := testSupervisor(time.Minute)
	restartsBefore := mStageRestarts.Value()

	var runs atomic.Int64
	sup.add("boom", func(ctx context.Context, beat func()) error {
		beat()
		if runs.Add(1) == 1 {
			panic("injected")
		}
		return nil // second incarnation exits cleanly
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.start(ctx)
	sup.wait()
	cancel()
	<-sup.wdDone

	if got := runs.Load(); got != 2 {
		t.Fatalf("stage ran %d times, want 2 (original + restart)", got)
	}
	if d := mStageRestarts.Value() - restartsBefore; d != 1 {
		t.Errorf("live_stage_restarts_total moved by %d, want 1", d)
	}
	if degradations.Load() == 0 {
		t.Error("panicked stage did not degrade the pipeline")
	}
}

func TestSupervisorErrorReturnRestarts(t *testing.T) {
	sup, _ := testSupervisor(time.Minute)
	var runs atomic.Int64
	sup.add("flaky", func(ctx context.Context, beat func()) error {
		beat()
		if runs.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.start(ctx)
	sup.wait()
	cancel()
	<-sup.wdDone
	if got := runs.Load(); got != 3 {
		t.Fatalf("stage ran %d times, want 3", got)
	}
}

// TestWatchdogCancelsStalledStage pins the stall contract: a stage that
// stops heartbeating mid-item gets its incarnation cancelled and is
// relaunched; the relaunched incarnation (which behaves) then exits
// cleanly on drain.
func TestWatchdogCancelsStalledStage(t *testing.T) {
	sup, degradations := testSupervisor(200 * time.Millisecond)
	stallsBefore := mWatchdogStalls.Value()

	var runs atomic.Int64
	drain := make(chan struct{})
	sup.add("wedged", func(ctx context.Context, beat func()) error {
		beat()
		if runs.Add(1) == 1 {
			// Wedge: block on the stage context without beating — the
			// watchdog must cancel us.
			<-ctx.Done()
			return nil // a clean return under a cancelled ctx still restarts
		}
		// Healthy incarnation: beat until drained.
		for {
			select {
			case <-drain:
				return nil
			case <-time.After(20 * time.Millisecond):
				beat()
			}
		}
	}, nil)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sup.start(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for runs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if runs.Load() < 2 {
		t.Fatal("watchdog never relaunched the wedged stage")
	}
	close(drain)
	sup.wait()
	cancel()
	<-sup.wdDone

	if mWatchdogStalls.Value() == stallsBefore {
		t.Error("live_watchdog_stalls_total did not move")
	}
	if degradations.Load() == 0 {
		t.Error("stall did not degrade the pipeline")
	}
}

func TestSupervisorHardAbortStopsRestarting(t *testing.T) {
	sup, _ := testSupervisor(time.Minute)
	ctx, cancel := context.WithCancel(context.Background())

	started := make(chan struct{}, 16)
	sup.add("loop", func(sctx context.Context, beat func()) error {
		started <- struct{}{}
		beat()
		<-sctx.Done()
		return sctx.Err()
	}, nil)
	sup.start(ctx)
	<-started
	cancel() // hard abort: the error return must not trigger a restart
	waited := make(chan struct{})
	go func() { sup.wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(2 * time.Second):
		t.Fatal("stage kept restarting after hard abort")
	}
	<-sup.wdDone
}
