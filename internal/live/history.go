package live

// Window-history persistence: finalized WindowSummary values append to
// a crash-tolerant JSONL log so a restarted daemon serves the same
// /analytics history it died with, and satreport -live-history can
// replay a log offline. Each summary is one line written in a single
// O_APPEND write followed by Sync — a crash corrupts at most the final
// line, which the tolerant reader (same contract as satreport -from)
// skips and counts instead of aborting on.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// HistoryFileName is the log file inside a -history directory.
const HistoryFileName = "history.jsonl"

// HistoryStats reports what a tolerant history read consumed.
type HistoryStats struct {
	Lines   int
	Skipped int
}

// HistoryLog is the append destination for finalized windows. Safe for
// concurrent use (finalization is serialized anyway, but the control
// plane may race a Close).
type HistoryLog struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// OpenHistory opens (creating dir if needed) the history log, first
// replaying whatever the log already holds: the returned summaries are
// the previous incarnations' finalized windows, oldest first, and stats
// counts any corrupt lines skipped.
func OpenHistory(dir string) (*HistoryLog, []WindowSummary, HistoryStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, HistoryStats{}, fmt.Errorf("live: history dir: %w", err)
	}
	path := filepath.Join(dir, HistoryFileName)
	var prior []WindowSummary
	var st HistoryStats
	if _, err := os.Stat(path); err == nil {
		prior, st, err = ReadHistoryFile(path)
		if err != nil {
			return nil, nil, st, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, st, fmt.Errorf("live: open history: %w", err)
	}
	return &HistoryLog{path: path, f: f}, prior, st, nil
}

// Path returns the log file path.
func (h *HistoryLog) Path() string {
	if h == nil {
		return ""
	}
	return h.path
}

// Append writes one finalized window as a JSONL line and syncs. Nil-safe.
func (h *HistoryLog) Append(s WindowSummary) error {
	if h == nil {
		return nil
	}
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("live: encode window: %w", err)
	}
	b = append(b, '\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return fmt.Errorf("live: history log closed")
	}
	if _, err := h.f.Write(b); err != nil {
		return fmt.Errorf("live: append window: %w", err)
	}
	if err := h.f.Sync(); err != nil {
		return fmt.Errorf("live: sync history: %w", err)
	}
	return nil
}

// Close closes the log. Nil-safe, idempotent.
func (h *HistoryLog) Close() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f == nil {
		return nil
	}
	err := h.f.Close()
	h.f = nil
	return err
}

// ReadHistoryFile replays a history log tolerantly: corrupt lines (a
// truncated tail after a crash, editor garbage) are skipped and
// counted. Summaries return in file order, which is finalization order.
func ReadHistoryFile(path string) ([]WindowSummary, HistoryStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, HistoryStats{}, err
	}
	defer f.Close()
	var out []WindowSummary
	var st HistoryStats
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s WindowSummary
		if err := json.Unmarshal(b, &s); err != nil {
			st.Skipped++
			continue
		}
		st.Lines++
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("live: read history: %w", err)
	}
	return out, st, nil
}

// RenderHistory folds a replayed window list into the standard report
// tables: run span, totals, per-country volume and per-resolver query
// breakdowns (satreport -live-history).
func RenderHistory(ws []WindowSummary) string {
	var sb strings.Builder
	if len(ws) == 0 {
		sb.WriteString("live history: no finalized windows\n")
		return sb.String()
	}
	var flows, dns, up, down, rttN int64
	var rttSum, rttMax float64
	degraded := 0
	byCountry := map[string]int64{}
	byResolver := map[string]int64{}
	start, end := ws[0].Start, ws[0].End
	for _, w := range ws {
		if w.Start < start {
			start = w.Start
		}
		if w.End > end {
			end = w.End
		}
		flows += w.Flows
		dns += w.DNS
		up += w.BytesUp
		down += w.BytesDown
		rttN += w.RTTSamples
		rttSum += w.RTTMeanMs * float64(w.RTTSamples)
		if w.RTTMaxMs > rttMax {
			rttMax = w.RTTMaxMs
		}
		if w.Degraded {
			degraded++
		}
		for c, b := range w.BytesByCountry {
			byCountry[c] += b
		}
		for r, n := range w.DNSByResolver {
			byResolver[r] += n
		}
	}
	fmt.Fprintf(&sb, "live history: %d windows spanning %s → %s (simulated)\n",
		len(ws), fmtDur(start), fmtDur(end))
	fmt.Fprintf(&sb, "  flows %d · dns %d · bytes up %d down %d", flows, dns, up, down)
	if rttN > 0 {
		fmt.Fprintf(&sb, " · sat RTT mean %.1f ms max %.1f ms (%d samples)", rttSum/float64(rttN), rttMax, rttN)
	}
	sb.WriteByte('\n')
	if degraded > 0 {
		fmt.Fprintf(&sb, "  %d degraded windows (breakdowns dropped while degraded)\n", degraded)
	}

	writeTable := func(title, valHead string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		type row struct {
			key string
			v   int64
		}
		rows := make([]row, 0, len(m))
		var total int64
		for k, v := range m {
			rows = append(rows, row{k, v})
			total += v
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].v != rows[j].v {
				return rows[i].v > rows[j].v
			}
			return rows[i].key < rows[j].key
		})
		fmt.Fprintf(&sb, "\n%s\n%-12s %14s %7s\n", title, "key", valHead, "share")
		for _, r := range rows {
			share := 0.0
			if total > 0 {
				share = 100 * float64(r.v) / float64(total)
			}
			fmt.Fprintf(&sb, "%-12s %14d %6.1f%%\n", r.key, r.v, share)
		}
	}
	writeTable("per-country volume", "bytes", byCountry)
	writeTable("per-resolver queries", "queries", byResolver)

	fmt.Fprintf(&sb, "\nwindows\n%-12s %-12s %10s %8s %14s %10s\n",
		"start", "end", "flows", "dns", "bytes", "rtt ms")
	for _, w := range ws {
		rtt := "-"
		if w.RTTSamples > 0 {
			rtt = fmt.Sprintf("%.1f", w.RTTMeanMs)
		}
		mark := ""
		if w.Degraded {
			mark = " (degraded)"
		}
		fmt.Fprintf(&sb, "%-12s %-12s %10d %8d %14d %10s%s\n",
			fmtDur(w.Start), fmtDur(w.End), w.Flows, w.DNS, w.BytesUp+w.BytesDown, rtt, mark)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string { return d.Round(time.Second).String() }
