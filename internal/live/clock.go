package live

import "time"

// Clock maps wall time onto simulated time at a fixed speedup: one wall
// second advances Speedup simulated seconds. The anchor is set once at
// Start, so Now is a pure read — goroutine-safe without locks.
type Clock struct {
	speedup float64
	anchor  time.Time
	base    time.Duration
}

// NewClock builds a clock that starts simulated time at base and runs at
// speedup simulated seconds per wall second (<= 0 → 1).
func NewClock(speedup float64, base time.Duration) *Clock {
	if speedup <= 0 {
		speedup = 1
	}
	return &Clock{speedup: speedup, anchor: time.Now(), base: base}
}

// Speedup returns the simulated-seconds-per-wall-second factor.
func (c *Clock) Speedup() float64 { return c.speedup }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration {
	wall := time.Since(c.anchor)
	return c.base + time.Duration(float64(wall)*c.speedup)
}

// WallUntil returns the wall-clock duration until the simulated instant
// simT; <= 0 when simT has already passed.
func (c *Clock) WallUntil(simT time.Duration) time.Duration {
	return time.Duration(float64(simT-c.Now()) / c.speedup)
}
