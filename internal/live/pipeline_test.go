package live

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"satwatch/internal/obs"
)

// testConfig is a small, fast pipeline: 20 customers at 3600x speedup —
// one wall second covers one simulated hour, so trackers idle flows out
// and analytics windows finalize within a short test run.
func testConfig() Config {
	return Config{
		Customers: 20, Seed: 7,
		Speedup: 3600, Workers: 2,
		Window: 10 * time.Minute, Grace: time.Minute,
		StallTimeout: 5 * time.Second, DrainTimeout: 30 * time.Second,
	}
}

func TestPipelineRunsAndDrainsGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live run")
	}
	p, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := p.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}

	pr := p.Progress()
	if pr.Intents == 0 {
		t.Error("no intents admitted")
	}
	if pr.FlowRecords == 0 {
		t.Error("no flow records reached analytics")
	}
	if got := len(p.Analytics().Recent()); got == 0 {
		t.Error("no analytics windows finalized after drain")
	}
	// The drain contract: every queue empty.
	qi, qs, qr := p.QueueDepths()
	if qi != 0 || qs != 0 || qr != 0 {
		t.Errorf("queues not drained: intents=%d synth=%d records=%d", qi, qs, qr)
	}
	if d, reason := p.Degraded(); d {
		t.Errorf("clean run ended degraded: %s", reason)
	}
}

func TestPipelineRateMultiplierReplicates(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live run")
	}
	run := func(rate float64) int64 {
		cfg := testConfig()
		cfg.Rate = rate
		p, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
		defer cancel()
		if err := p.Run(ctx); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return p.Progress().Intents
	}
	base := run(1)
	double := run(2)
	if base == 0 {
		t.Fatal("baseline run admitted no intents")
	}
	// The 2x run re-paces the same intent stream, so wall-time noise
	// aside it must admit substantially more.
	if double < base*3/2 {
		t.Errorf("rate 2 admitted %d intents vs %d at rate 1: multiplier had no effect", double, base)
	}
}

func TestControlHandlerEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live run")
	}
	p, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := ControlHandler(p, obs.Default)

	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- p.Run(ctx) }()
	defer func() {
		cancel()
		if err := <-runDone; err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	// Wait until the pipeline reports ready.
	for i := 0; i < 100 && !p.Ready(); i++ {
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}
	post := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, nil))
		return rec.Code, rec.Body.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d while running", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "live_intents_total") {
		t.Errorf("/metrics = %d (missing live_intents_total)", code)
	}
	if code, body := get("/progress"); code != http.StatusOK || !strings.Contains(body, "sim_seconds") {
		t.Errorf("/progress = %d %q", code, body)
	}

	// Rate control round-trips.
	if code, body := post("/control/rate?multiplier=2.5"); code != http.StatusOK || !strings.Contains(body, "2.5") {
		t.Errorf("POST /control/rate = %d %q", code, body)
	}
	if p.Rate() != 2.5 {
		t.Errorf("rate after POST = %v, want 2.5", p.Rate())
	}
	if code, _ := post("/control/rate?multiplier=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus rate accepted: %d", code)
	}
	if code, _ := post("/control/rate?multiplier=-1"); code != http.StatusBadRequest {
		t.Errorf("negative rate accepted: %d", code)
	}

	// Fault injection: preset lands shifted to "now", clear removes it.
	if code, body := post("/control/faults?preset=rainfront"); code != http.StatusOK || !strings.Contains(body, `"active": true`) {
		t.Errorf("POST /control/faults = %d %q", code, body)
	}
	sched := p.Sim().Faults()
	if sched == nil || sched.Len() == 0 {
		t.Fatal("fault schedule not installed")
	}
	now := p.Clock().Now()
	for _, ev := range sched.Events {
		if ev.End < now-time.Hour {
			t.Errorf("fault event [%s, %s) entirely in the past at sim %s", ev.Start, ev.End, now)
		}
	}
	if code, _ := post("/control/faults?preset=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown preset accepted: %d", code)
	}
	if code, body := post("/control/faults?preset=clear"); code != http.StatusOK || !strings.Contains(body, `"active": false`) {
		t.Errorf("clear faults = %d %q", code, body)
	}

	// Scenario hot-swap to LEO and back.
	if code, body := post("/control/scenario?constellation=leo"); code != http.StatusOK || !strings.Contains(body, "leo") {
		t.Errorf("POST /control/scenario = %d %q", code, body)
	}
	if p.Sim().ScenarioName() != "leo" {
		t.Errorf("scenario after swap = %q", p.Sim().ScenarioName())
	}
	if code, _ := post("/control/scenario?constellation=marsnet"); code != http.StatusBadRequest {
		t.Errorf("unknown constellation accepted: %d", code)
	}

	// Analytics endpoint serves valid JSON.
	code, body := get("/analytics")
	if code != http.StatusOK {
		t.Fatalf("/analytics = %d", code)
	}
	var payload struct {
		Windows []WindowSummary `json:"windows"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("/analytics not JSON: %v\n%s", err, body)
	}
}

// TestSoakShort drives the full soak harness briefly: the run must
// admit work, survive the overload phase, drain clean and pass its own
// leak checks.
func TestSoakShort(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak")
	}
	cfg := testConfig()
	rep, err := Soak(cfg, 3*time.Second)
	if err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("soak failed: %v %s", rep.Failures, rep.DrainErr)
	}
	if rep.Progress.FlowRecords == 0 {
		t.Error("soak run produced no flow records")
	}
}
