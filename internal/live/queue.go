package live

import (
	"context"
	"sync/atomic"
	"time"

	"satwatch/internal/obs"
)

// Policy declares what a full queue does to a producer: Block applies
// backpressure upstream (the producer waits), Shed drops the item and
// counts it. Every pipeline edge declares its policy explicitly — see
// DESIGN.md §11 for the per-edge table and the reasoning.
type Policy int

const (
	// Block makes Push wait for space (or context cancellation). Used
	// where losing an item would desynchronize the pipeline.
	Block Policy = iota
	// Shed makes Push drop the item immediately when the queue is full,
	// incrementing the shed counter. Used where the system must keep up
	// with real time and items are individually expendable.
	Shed
)

func (p Policy) String() string {
	if p == Shed {
		return "shed"
	}
	return "block"
}

// QueueMetrics is the flat metric family of one pipeline edge. Depth is
// updated with deltas so several queues (worker shards) can share one
// family and aggregate correctly.
type QueueMetrics struct {
	Depth     *obs.Gauge
	HighWater *obs.Gauge
	Shed      *obs.Counter
	Pushed    *obs.Counter
}

// Queue is a bounded, metric-instrumented channel with a declared
// overflow policy. In degraded mode a Shed queue halves its admission
// threshold, shedding earlier to shield the slow consumer.
type Queue[T any] struct {
	ch       chan T
	policy   Policy
	m        QueueMetrics
	degraded *atomic.Bool // shared pipeline flag; nil → never degraded
	closed   atomic.Bool
}

// NewQueue builds a queue with the given capacity and policy. degraded
// may be nil.
func NewQueue[T any](capacity int, policy Policy, m QueueMetrics, degraded *atomic.Bool) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{ch: make(chan T, capacity), policy: policy, m: m, degraded: degraded}
}

// Len returns the buffered item count.
func (q *Queue[T]) Len() int { return len(q.ch) }

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return cap(q.ch) }

// Policy returns the declared overflow policy.
func (q *Queue[T]) Policy() Policy { return q.policy }

// limit is the effective admission threshold: full capacity normally,
// half in degraded mode (Shed queues only).
func (q *Queue[T]) limit() int {
	if q.policy == Shed && q.degraded != nil && q.degraded.Load() {
		return cap(q.ch) / 2
	}
	return cap(q.ch)
}

func (q *Queue[T]) accepted() {
	q.m.Pushed.Inc()
	depth := float64(len(q.ch))
	q.m.Depth.Add(1)
	q.m.HighWater.SetMax(depth)
}

// Push offers v to the queue. Block policy waits for space, calling beat
// (when non-nil) periodically so a backpressured producer still
// heartbeats — backpressure is not a stall. Shed policy never waits.
// Returns false when the item was shed or ctx was cancelled. Push on a
// closed queue panics (the pipeline closes an edge only after every
// producer has exited).
func (q *Queue[T]) Push(ctx context.Context, v T, beat func()) bool {
	if q.policy == Shed {
		if len(q.ch) >= q.limit() {
			q.m.Shed.Inc()
			return false
		}
		select {
		case q.ch <- v:
			q.accepted()
			return true
		default:
			q.m.Shed.Inc()
			return false
		}
	}
	// Block: try fast, then wait with heartbeats.
	select {
	case q.ch <- v:
		q.accepted()
		return true
	default:
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case q.ch <- v:
			q.accepted()
			return true
		case <-ctx.Done():
			return false
		case <-tick.C:
			if beat != nil {
				beat()
			}
		}
	}
}

// Pop takes the next item, waiting for one. beat (when non-nil) is
// called periodically while idle so a starved consumer still heartbeats.
// ok is false when the queue is closed and drained, or ctx is cancelled.
func (q *Queue[T]) Pop(ctx context.Context, beat func()) (v T, ok bool) {
	select {
	case v, ok = <-q.ch:
		if ok {
			q.m.Depth.Add(-1)
		}
		return v, ok
	default:
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case v, ok = <-q.ch:
			if ok {
				q.m.Depth.Add(-1)
			}
			return v, ok
		case <-ctx.Done():
			return v, false
		case <-tick.C:
			if beat != nil {
				beat()
			}
		}
	}
}

// Close marks the producer side finished; Pop drains the remaining items
// and then reports ok=false. Idempotent.
func (q *Queue[T]) Close() {
	if q.closed.CompareAndSwap(false, true) {
		close(q.ch)
	}
}
