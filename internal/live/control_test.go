package live

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"satwatch/internal/obs"
	"satwatch/internal/trace"
)

// newTestHandler builds a pipeline (not running — the read-only surface
// must serve coherent state before Run) with tracing enabled.
func newTestHandler(t *testing.T) (*Pipeline, http.Handler) {
	t.Helper()
	cfg := testConfig()
	cfg.TraceSample = 1
	cfg.TraceRing = 8
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p, ControlHandler(p, obs.Default)
}

func do(h http.Handler, method, path string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
	return rec
}

func TestReadOnlyEndpointsRejectNonGET(t *testing.T) {
	_, h := newTestHandler(t)
	paths := []string{"/healthz", "/readyz", "/analytics", "/trace/recent", "/metrics/history", "/dashboard"}
	for _, path := range paths {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			rec := do(h, method, path)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s Allow = %q", method, path, allow)
			}
		}
		rec := do(h, http.MethodGet, path)
		if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
			t.Errorf("GET %s Cache-Control = %q, want no-store", path, cc)
		}
		// HEAD rides along with GET on a read-only surface.
		if rec := do(h, http.MethodHead, path); rec.Code == http.StatusMethodNotAllowed {
			t.Errorf("HEAD %s rejected", path)
		}
	}
}

func TestTraceRecentEndpoint(t *testing.T) {
	p, h := newTestHandler(t)

	// Empty ring: the flows field must be an array, never null.
	rec := do(h, http.MethodGet, "/trace/recent")
	if rec.Code != http.StatusOK {
		t.Fatalf("/trace/recent = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"flows": []`) {
		t.Fatalf("empty ring must serialize as []: %s", rec.Body.String())
	}

	// Publish a few flows and read them back newest-first.
	for i := 0; i < 4; i++ {
		f := &trace.Flow{Customer: 1, Index: i}
		f.SetMeta(0, "IT", 9, "TCP/HTTPS", "x.test", time.Duration(i)*time.Second)
		f.Span(trace.SpanLiveSynth, trace.SegProbe, time.Millisecond, nil)
		p.Tracing().Publish(f)
	}
	rec = do(h, http.MethodGet, "/trace/recent?limit=2")
	var payload struct {
		SampleN int           `json:"sample_n"`
		Total   uint64        `json:"total"`
		Flows   []*trace.Flow `json:"flows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/trace/recent not JSON: %v", err)
	}
	if payload.SampleN != 1 || payload.Total != 4 {
		t.Errorf("sample_n=%d total=%d, want 1, 4", payload.SampleN, payload.Total)
	}
	if len(payload.Flows) != 2 || payload.Flows[0].Index != 3 {
		t.Errorf("limit=2 returned %d flows, first index %d", len(payload.Flows), payload.Flows[0].Index)
	}

	if rec := do(h, http.MethodGet, "/trace/recent?limit=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit accepted: %d", rec.Code)
	}
	if rec := do(h, http.MethodGet, "/trace/recent?limit=-1"); rec.Code != http.StatusBadRequest {
		t.Errorf("negative limit accepted: %d", rec.Code)
	}
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	p, h := newTestHandler(t)

	rec := do(h, http.MethodGet, "/metrics/history")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics/history = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"points":[]`) {
		t.Fatalf("empty history must serialize as []: %s", rec.Body.String())
	}

	p.MetricsHistory().Sample(30)
	p.MetricsHistory().Sample(60)
	rec = do(h, http.MethodGet, "/metrics/history?metrics=live_flow_records_total,live_q_synth_depth")
	var payload struct {
		EverySeconds float64     `json:"every_seconds"`
		Points       []obs.Point `json:"points"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/metrics/history not JSON: %v", err)
	}
	if payload.EverySeconds != 30 {
		t.Errorf("every_seconds = %v, want default 30", payload.EverySeconds)
	}
	if len(payload.Points) != 2 || payload.Points[0].T != 30 {
		t.Fatalf("points = %+v", payload.Points)
	}
	for _, p := range payload.Points {
		for name := range p.Values {
			if name != "live_flow_records_total" && name != "live_q_synth_depth" {
				t.Errorf("?metrics filter leaked %q", name)
			}
		}
	}
}

func TestDashboardServedSelfContained(t *testing.T) {
	_, h := newTestHandler(t)
	rec := do(h, http.MethodGet, "/dashboard")
	if rec.Code != http.StatusOK {
		t.Fatalf("/dashboard = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	if len(body) < 1024 || !strings.Contains(body, "<!doctype html>") {
		t.Fatalf("dashboard body implausibly small (%d bytes) or not HTML", len(body))
	}
	// The observatory must work air-gapped: no external fetches of any
	// kind — every script, style and font ships inline.
	if m := regexp.MustCompile(`(?:src|href)\s*=\s*["']?https?://`).FindString(body); m != "" {
		t.Errorf("dashboard references an external resource: %q", m)
	}
	if strings.Contains(body, "cdn.") || strings.Contains(body, "unpkg") || strings.Contains(body, "jsdelivr") {
		t.Error("dashboard references a CDN")
	}
	// It polls the endpoints this handler serves.
	for _, ep := range []string{"/analytics", "/metrics/history", "/trace/recent", "/progress"} {
		if !strings.Contains(body, ep) {
			t.Errorf("dashboard does not poll %s", ep)
		}
	}
}

func TestAnalyticsEndpointReportsResumePoint(t *testing.T) {
	dir := t.TempDir()
	seed := []WindowSummary{
		{Start: 0, End: 10 * time.Minute, Flows: 3},
		{Start: 10 * time.Minute, End: 20 * time.Minute, Flows: 4},
	}
	log, _, _, err := OpenHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seed {
		if err := log.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	cfg := testConfig()
	cfg.HistoryDir = dir
	p, err := New(cfg)
	if err != nil {
		t.Fatalf("New with history: %v", err)
	}
	if p.ResumeFrom() != 20*time.Minute {
		t.Fatalf("ResumeFrom = %s, want 20m", p.ResumeFrom())
	}
	h := ControlHandler(p, obs.Default)
	rec := do(h, http.MethodGet, "/analytics")
	var payload struct {
		ResumeFromSeconds float64         `json:"resume_from_seconds"`
		Windows           []WindowSummary `json:"windows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("/analytics not JSON: %v", err)
	}
	if payload.ResumeFromSeconds != 1200 {
		t.Errorf("resume_from_seconds = %v, want 1200", payload.ResumeFromSeconds)
	}
	if len(payload.Windows) != 2 || payload.Windows[1].Flows != 4 {
		t.Errorf("replayed windows = %+v", payload.Windows)
	}
}
