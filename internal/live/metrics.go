package live

import "satwatch/internal/obs"

// Exported metrics (see OBSERVABILITY.md). The obs registry has no label
// support, so every queue edge gets its own flat metric family; worker
// shard queues share one family (depths are deltas, so they aggregate).
var (
	mSimSeconds = obs.NewGauge("live_sim_seconds",
		"Simulated time reached by the live pipeline's clock.", "seconds")
	mSpeedup = obs.NewGauge("live_speedup",
		"Simulated seconds advanced per wall second.", "")
	mRate = obs.NewGauge("live_rate_multiplier",
		"Workload rate multiplier applied at intent admission (set via /control/rate).", "")
	mIntents = obs.NewCounter("live_intents_total",
		"Flow intents admitted into the pipeline (after rate multiplication).", "")
	mSynthErrors = obs.NewCounter("live_synth_errors_total",
		"Intents whose synthesis failed; the worker drops them and continues.", "")
	mFlowRecords = obs.NewCounter("live_flow_records_total",
		"Flow records emitted by worker trackers into the analytics stage.", "")
	mDNSRecords = obs.NewCounter("live_dns_records_total",
		"DNS records emitted by worker trackers into the analytics stage.", "")
	mActiveFlows = obs.NewGauge("live_active_flows",
		"In-flight flows across all worker trackers.", "")
	mDegraded = obs.NewGauge("live_degraded",
		"1 while the daemon is in degraded mode (stalled/restarted stage or coarse analytics), else 0.", "")
	mStageRestarts = obs.NewCounter("live_stage_restarts_total",
		"Stage goroutines relaunched by the supervisor after a panic or watchdog cancel.", "")
	mWatchdogStalls = obs.NewCounter("live_watchdog_stalls_total",
		"Heartbeat stalls detected by the per-stage watchdog.", "")
	mWindows = obs.NewCounter("live_windows_total",
		"Analytics windows finalized (watermark passed window end plus grace).", "")
	mLateRecords = obs.NewCounter("live_analytics_late_records_total",
		"Records dropped because they arrived after their window's end-plus-grace boundary had already finalized.", "")
	mWindowRTT = obs.NewHistogram("live_window_rtt_seconds",
		"Satellite-segment RTT of flows entering the rolling analytics windows.", "seconds",
		obs.LatencyBuckets())
	mScenarioSwaps = obs.NewCounter("live_scenario_swaps_total",
		"Constellation hot-swaps applied via /control/scenario.", "")
	mControlRequests = obs.NewCounter("live_control_requests_total",
		"Mutating control-plane requests accepted (/control/rate, /control/faults, /control/scenario).", "")
	mTracedFlows = obs.NewCounter("live_traced_flows_total",
		"Sampled flow span trees published to the recent-trace ring (and disk log when -trace is set).", "")
	mTraceWriteErrors = obs.NewCounter("live_trace_write_errors_total",
		"Failed writes to the rotating live trace log (the flow stays in the ring; the pipeline continues).", "")
	mTraceRotations = obs.NewCounter("live_trace_rotations_total",
		"Size-cap rotations of the live trace log.", "")
	mHistoryAppends = obs.NewCounter("live_history_appended_total",
		"Finalized windows appended to the history log.", "")
	mHistoryWriteErrors = obs.NewCounter("live_history_write_errors_total",
		"Failed history-log appends (the window stays in the in-memory ring; the pipeline continues).", "")
	mHistoryReloaded = obs.NewGauge("live_history_reloaded_windows",
		"Windows replayed from the history log at startup (-history restart).", "")
	mMetricsSamples = obs.NewCounter("live_metrics_samples_total",
		"Registry snapshots taken into the /metrics/history time series.", "")
	mControlEncodeErrors = obs.NewCounter("live_control_encode_errors_total",
		"JSON encode failures on control-plane read endpoints (client likely disconnected mid-response).", "")

	// Queue edges. intents: generator → dispatcher (Block). synth:
	// dispatcher → worker shards (Shed). records: workers → analytics
	// (Shed).
	qmIntents = QueueMetrics{
		Depth: obs.NewGauge("live_q_intents_depth",
			"Items buffered on the generator → dispatcher queue.", ""),
		HighWater: obs.NewGauge("live_q_intents_highwater",
			"Peak depth observed on the generator → dispatcher queue.", ""),
		Shed: obs.NewCounter("live_q_intents_shed_total",
			"Items shed at the generator → dispatcher queue (0 by construction: this edge blocks).", ""),
		Pushed: obs.NewCounter("live_q_intents_pushed_total",
			"Items accepted onto the generator → dispatcher queue.", ""),
	}
	qmSynth = QueueMetrics{
		Depth: obs.NewGauge("live_q_synth_depth",
			"Items buffered across all dispatcher → worker shard queues.", ""),
		HighWater: obs.NewGauge("live_q_synth_highwater",
			"Peak per-shard depth observed on the dispatcher → worker queues.", ""),
		Shed: obs.NewCounter("live_q_synth_shed_total",
			"Intents shed at full worker shard queues (load shedding under overload).", ""),
		Pushed: obs.NewCounter("live_q_synth_pushed_total",
			"Intents accepted onto worker shard queues.", ""),
	}
	qmRecords = QueueMetrics{
		Depth: obs.NewGauge("live_q_records_depth",
			"Records buffered on the workers → analytics queue.", ""),
		HighWater: obs.NewGauge("live_q_records_highwater",
			"Peak depth observed on the workers → analytics queue.", ""),
		Shed: obs.NewCounter("live_q_records_shed_total",
			"Records shed at the full analytics queue (analytics lag under overload).", ""),
		Pushed: obs.NewCounter("live_q_records_pushed_total",
			"Records accepted onto the analytics queue.", ""),
	}
)
