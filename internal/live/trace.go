package live

// Streaming flight recorder: the batch pipeline samples flows into a
// Tracer that sorts and writes once at exit; the daemon needs the same
// span trees continuously. Tracing owns the two live destinations — a
// bounded ring `GET /trace/recent` serves and an optional size-capped
// rotating JSONL log — and the deterministic sampling decision, keyed
// exactly like batch `-trace-sample` (splitmix64 over the flow
// identity), so a given sample rate picks the same flows regardless of
// worker count or scheduling.
//
// Publication discipline: synthesis workers buffer finished handles
// locally (see pipeline.go synth) and call Publish only after all spans
// are appended, so readers never observe a tree mid-write.

import (
	"satwatch/internal/trace"
)

// DefaultTraceRing bounds the recent-traced-flows ring when no size is
// configured.
const DefaultTraceRing = 256

// Tracing is the live flight-recorder state: sampling rate, recent ring
// and optional rotating disk log. A nil *Tracing disables tracing (all
// methods are nil-safe; Sampled always reports false).
type Tracing struct {
	sampleN uint64
	ring    *trace.Ring
	w       *trace.RotatingWriter // nil: ring only
}

// TracingConfig parameterizes NewTracing.
type TracingConfig struct {
	// SampleN traces 1 in N flows (<= 0 disables tracing; 1 traces all).
	SampleN int
	// Ring bounds the recent-flow buffer (default DefaultTraceRing).
	Ring int
	// Dir, when non-empty, enables the rotating JSONL log.
	Dir string
	// MaxBytes and KeepFiles shape rotation (defaults in internal/trace).
	MaxBytes  int64
	KeepFiles int
}

// NewTracing builds the live tracer. A SampleN <= 0 returns (nil, nil):
// tracing disabled, zero hot-path cost beyond a nil check.
func NewTracing(cfg TracingConfig) (*Tracing, error) {
	if cfg.SampleN <= 0 {
		return nil, nil
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultTraceRing
	}
	t := &Tracing{sampleN: uint64(cfg.SampleN), ring: trace.NewRing(cfg.Ring)}
	if cfg.Dir != "" {
		w, err := trace.NewRotatingWriter(cfg.Dir, cfg.MaxBytes, cfg.KeepFiles)
		if err != nil {
			return nil, err
		}
		t.w = w
	}
	return t, nil
}

// SampleN reports the 1-in-N rate (0 when disabled).
func (t *Tracing) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.sampleN)
}

// Start returns a recording handle when the flow identity is sampled,
// delivering the finished tree to sink. Nil-safe.
func (t *Tracing) Start(sink trace.SinkFunc, customer, day, index int) *trace.Flow {
	if t == nil {
		return nil
	}
	return trace.StartSampled(sink, customer, day, index, t.sampleN)
}

// Publish makes a finished, fully-spanned flow visible: ring first (the
// dashboard path), then the disk log. Write errors count but do not
// stop the pipeline — tracing is an observation, never a liability.
func (t *Tracing) Publish(f *trace.Flow) {
	if t == nil || f == nil {
		return
	}
	t.ring.Add(f)
	mTracedFlows.Inc()
	if t.w == nil {
		return
	}
	rotated, err := t.w.Write(f)
	if rotated {
		mTraceRotations.Inc()
	}
	if err != nil {
		mTraceWriteErrors.Inc()
	}
}

// Recent returns up to limit traced flows, newest first.
func (t *Tracing) Recent(limit int) []*trace.Flow {
	if t == nil {
		return nil
	}
	return t.ring.Recent(limit)
}

// Total reports how many flows have been published.
func (t *Tracing) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.Total()
}

// Close closes the disk log (nil-safe, idempotent via RotatingWriter).
func (t *Tracing) Close() error {
	if t == nil || t.w == nil {
		return nil
	}
	return t.w.Close()
}
