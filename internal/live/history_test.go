package live

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func summaryAt(k int64) WindowSummary {
	return WindowSummary{
		Start: time.Duration(k) * 10 * time.Minute,
		End:   time.Duration(k+1) * 10 * time.Minute,
		Flows: 10 + k, DNS: 3, BytesUp: 100, BytesDown: 1000 * (k + 1),
		BytesByCountry: map[string]int64{"IT": 600 * (k + 1), "NG": 500},
		DNSByResolver:  map[string]int64{"google": 2, "cpe": 1},
		RTTSamples:     4, RTTMeanMs: 552.5, RTTMaxMs: 750,
	}
}

func TestHistoryLogRoundTrips(t *testing.T) {
	dir := t.TempDir()
	h, prior, st, err := OpenHistory(dir)
	if err != nil {
		t.Fatalf("OpenHistory: %v", err)
	}
	if len(prior) != 0 || st.Lines != 0 || st.Skipped != 0 {
		t.Fatalf("fresh dir replayed %d windows (%+v)", len(prior), st)
	}
	for k := int64(0); k < 3; k++ {
		if err := h.Append(summaryAt(k)); err != nil {
			t.Fatalf("Append %d: %v", k, err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	if err := h.Append(summaryAt(9)); err == nil {
		t.Fatal("Append after Close must fail")
	}

	// A restart replays exactly what was persisted, in order.
	h2, prior, st, err := OpenHistory(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer h2.Close()
	if st.Lines != 3 || st.Skipped != 0 {
		t.Fatalf("replay stats = %+v, want 3 clean lines", st)
	}
	if len(prior) != 3 {
		t.Fatalf("replayed %d windows, want 3", len(prior))
	}
	for k, w := range prior {
		want := summaryAt(int64(k))
		if w.Start != want.Start || w.End != want.End || w.Flows != want.Flows {
			t.Errorf("window %d = %+v, want %+v", k, w, want)
		}
		if w.BytesByCountry["IT"] != want.BytesByCountry["IT"] {
			t.Errorf("window %d lost country breakdown: %v", k, w.BytesByCountry)
		}
		if w.RTTMeanMs != want.RTTMeanMs {
			t.Errorf("window %d rtt mean = %v", k, w.RTTMeanMs)
		}
	}

	// Appends after a reopen extend the same log.
	if err := h2.Append(summaryAt(3)); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	ws, st, err := ReadHistoryFile(h2.Path())
	if err != nil {
		t.Fatalf("ReadHistoryFile: %v", err)
	}
	if len(ws) != 4 || st.Lines != 4 {
		t.Fatalf("log holds %d windows after reopen+append, want 4", len(ws))
	}
}

func TestHistoryReaderTolerance(t *testing.T) {
	write := func(t *testing.T, content string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), HistoryFileName)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// line produces one on-disk record via a real Append, so the cases
	// exercise the exact encoding the daemon writes.
	line := func(k int64) string {
		log, _, _, err := OpenHistory(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(summaryAt(k)); err != nil {
			t.Fatal(err)
		}
		log.Close()
		b, err := os.ReadFile(log.Path())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	cases := []struct {
		name        string
		content     string
		wantLines   int
		wantSkipped int
	}{
		{"empty file", "", 0, 0},
		{"blank lines only", "\n\n\n", 0, 0},
		{"clean log", line(0) + line(1), 2, 0},
		{"truncated tail", line(0) + strings.TrimSuffix(line(1), "}\n"), 1, 1},
		{"garbage line mid-log", line(0) + "not json at all\n" + line(1), 2, 1},
		{"garbage only", "{{{{\nxyz\n", 0, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws, st, err := ReadHistoryFile(write(t, tc.content))
			if err != nil {
				t.Fatalf("ReadHistoryFile: %v", err)
			}
			if st.Lines != tc.wantLines || st.Skipped != tc.wantSkipped {
				t.Fatalf("stats = %+v, want %d lines %d skipped", st, tc.wantLines, tc.wantSkipped)
			}
			if len(ws) != tc.wantLines {
				t.Fatalf("read %d windows, want %d", len(ws), tc.wantLines)
			}
		})
	}

	if _, _, err := ReadHistoryFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing file must error (only corrupt content is tolerated)")
	}
}

func TestRenderHistoryTables(t *testing.T) {
	ws := []WindowSummary{summaryAt(0), summaryAt(1)}
	ws[1].Degraded = true
	ws[1].BytesByCountry = nil
	ws[1].DNSByResolver = nil
	out := RenderHistory(ws)
	for _, want := range []string{
		"2 windows", "per-country volume", "per-resolver queries",
		"IT", "google", "(degraded)", "1 degraded windows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderHistory missing %q:\n%s", want, out)
		}
	}
	if empty := RenderHistory(nil); !strings.Contains(empty, "no finalized windows") {
		t.Errorf("empty render = %q", empty)
	}
}
