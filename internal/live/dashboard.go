package live

import _ "embed"

// dashboardHTML is the single-file observatory served at /dashboard: a
// dependency-free HTML+JS page (no CDN fetches, no external assets)
// polling /progress, /analytics, /metrics/history and /trace/recent.
//
//go:embed dashboard.html
var dashboardHTML []byte
