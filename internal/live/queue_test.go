package live

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"satwatch/internal/obs"
)

func testQueueMetrics(t *testing.T) QueueMetrics {
	t.Helper()
	reg := obs.NewRegistry()
	return QueueMetrics{
		Depth:     reg.Gauge("test_depth", "", ""),
		HighWater: reg.Gauge("test_highwater", "", ""),
		Shed:      reg.Counter("test_shed_total", "", ""),
		Pushed:    reg.Counter("test_pushed_total", "", ""),
	}
}

func TestQueueBlockAppliesBackpressure(t *testing.T) {
	m := testQueueMetrics(t)
	q := NewQueue[int](2, Block, m, nil)
	ctx := context.Background()

	if !q.Push(ctx, 1, nil) || !q.Push(ctx, 2, nil) {
		t.Fatal("pushes within capacity must succeed")
	}

	// A third push must block until a pop frees space — and must call
	// beat while waiting, because backpressure is not a stall.
	var beats atomic.Int64
	pushed := make(chan bool, 1)
	go func() {
		pushed <- q.Push(ctx, 3, func() { beats.Add(1) })
	}()
	select {
	case <-pushed:
		t.Fatal("push on a full Block queue returned without a pop")
	case <-time.After(250 * time.Millisecond):
	}
	if beats.Load() == 0 {
		t.Error("blocked push never heartbeated")
	}
	if v, ok := q.Pop(ctx, nil); !ok || v != 1 {
		t.Fatalf("Pop = %d, %v", v, ok)
	}
	select {
	case ok := <-pushed:
		if !ok {
			t.Fatal("unblocked push reported failure")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("push still blocked after pop freed space")
	}
	if m.Shed.Value() != 0 {
		t.Errorf("Block queue shed %d items", m.Shed.Value())
	}
	if m.Pushed.Value() != 3 {
		t.Errorf("pushed counter = %d, want 3", m.Pushed.Value())
	}
}

func TestQueueBlockPushAbortsOnCancel(t *testing.T) {
	q := NewQueue[int](1, Block, testQueueMetrics(t), nil)
	q.Push(context.Background(), 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- q.Push(ctx, 2, nil) }()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled push reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled push did not return")
	}
}

func TestQueueShedDropsAndCounts(t *testing.T) {
	m := testQueueMetrics(t)
	q := NewQueue[int](2, Shed, m, nil)
	ctx := context.Background()

	if !q.Push(ctx, 1, nil) || !q.Push(ctx, 2, nil) {
		t.Fatal("pushes within capacity must succeed")
	}
	start := time.Now()
	if q.Push(ctx, 3, nil) {
		t.Fatal("push on a full Shed queue must drop")
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("Shed push waited instead of dropping immediately")
	}
	if m.Shed.Value() != 1 {
		t.Errorf("shed counter = %d, want 1", m.Shed.Value())
	}
	if m.Pushed.Value() != 2 {
		t.Errorf("pushed counter = %d, want 2", m.Pushed.Value())
	}
}

func TestQueueShedHalvesThresholdWhenDegraded(t *testing.T) {
	var degraded atomic.Bool
	q := NewQueue[int](4, Shed, testQueueMetrics(t), &degraded)
	ctx := context.Background()

	q.Push(ctx, 1, nil)
	q.Push(ctx, 2, nil)
	degraded.Store(true)
	// Depth 2 == cap/2: the degraded threshold sheds here even though
	// two slots remain.
	if q.Push(ctx, 3, nil) {
		t.Fatal("degraded Shed queue admitted past half capacity")
	}
	degraded.Store(false)
	if !q.Push(ctx, 3, nil) {
		t.Fatal("healthy Shed queue refused an item within capacity")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue[int](4, Block, testQueueMetrics(t), nil)
	ctx := context.Background()
	q.Push(ctx, 1, nil)
	q.Push(ctx, 2, nil)
	q.Close()
	q.Close() // idempotent

	if v, ok := q.Pop(ctx, nil); !ok || v != 1 {
		t.Fatalf("Pop after close = %d, %v; want 1, true", v, ok)
	}
	if v, ok := q.Pop(ctx, nil); !ok || v != 2 {
		t.Fatalf("Pop after close = %d, %v; want 2, true", v, ok)
	}
	if _, ok := q.Pop(ctx, nil); ok {
		t.Fatal("Pop on a drained closed queue reported ok")
	}
}

func TestClockSpeedup(t *testing.T) {
	c := NewClock(1000, 0)
	time.Sleep(50 * time.Millisecond)
	got := c.Now()
	// 50 ms wall at 1000x ≈ 50 s sim; CI schedulers stretch the sleep,
	// never shrink it.
	if got < 45*time.Second || got > 10*time.Minute {
		t.Fatalf("Now() = %s after 50ms wall at 1000x", got)
	}
	if w := c.WallUntil(got + 1000*time.Second); w < 500*time.Millisecond || w > 1100*time.Millisecond {
		t.Fatalf("WallUntil(+1000s sim) = %s, want ~1s wall", w)
	}
	if c.WallUntil(0) > 0 {
		t.Fatal("WallUntil(past) must be <= 0")
	}
}
