package live

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"satwatch/internal/obs"
)

// stageFn is one stage's body. It must heartbeat via the provided beat
// function at every loop iteration (queue Push/Pop call it while
// waiting). Returning nil means clean exit (input drained) — the
// supervisor lets the stage go. Returning an error (or panicking) gets
// the stage relaunched.
type stageFn func(ctx context.Context, beat func()) error

// stage is the supervised unit: a named goroutine with a heartbeat the
// watchdog inspects, restarted on panic or watchdog cancel.
type stage struct {
	name string
	fn   stageFn

	hb       atomic.Int64 // wall nanos of the last heartbeat
	restarts atomic.Int64
	done     atomic.Bool // clean exit; no restart, watchdog ignores

	cancelMu sync.Mutex
	cancel   context.CancelFunc // cancels the current incarnation

	// onExit runs once, after the stage's final clean exit (used to
	// close downstream queues when a stage group finishes).
	onExit func()

	// age publishes the heartbeat age so stall proximity is observable
	// before the watchdog fires: live_stage_heartbeat_age_seconds_<name>.
	age *obs.Gauge
}

func (st *stage) beat() { st.hb.Store(time.Now().UnixNano()) }

// stale reports whether the heartbeat is older than timeout.
func (st *stage) stale(timeout time.Duration) bool {
	if st.done.Load() {
		return false
	}
	return time.Since(time.Unix(0, st.hb.Load())) > timeout
}

// supervisor runs stages, watches their heartbeats, and restarts the
// ones that panic or stall. A stall or restart flips the pipeline into
// degraded mode — the daemon keeps running, sheds earlier, and reports
// the state via /healthz and live_degraded.
type supervisor struct {
	stages  []*stage
	timeout time.Duration
	degrade func(reason string)
	logf    func(format string, args ...any)
	wg      sync.WaitGroup // stage goroutines only
	wdDone  chan struct{}  // watchdog exit (it outlives the stages)
}

func (sup *supervisor) add(name string, fn stageFn, onExit func()) *stage {
	st := &stage{name: name, fn: fn, onExit: onExit}
	st.age = obs.NewGauge("live_stage_heartbeat_age_seconds_"+strings.ReplaceAll(name, "-", "_"),
		"Seconds since the "+name+" stage last heartbeat; compared against the watchdog stall timeout.",
		"seconds")
	sup.stages = append(sup.stages, st)
	return st
}

// start launches every stage under ctx plus the watchdog. The watchdog
// exits only when ctx is cancelled — it must outlive a graceful drain,
// so wait does not cover it; cancel ctx and receive on wdDone to reap it.
func (sup *supervisor) start(ctx context.Context) {
	for _, st := range sup.stages {
		st.beat() // arm before launch so a pre-first-iteration probe isn't "stalled"
		sup.wg.Add(1)
		go sup.run(ctx, st)
	}
	sup.wdDone = make(chan struct{})
	go sup.watchdog(ctx)
}

// wait blocks until every stage has exited (the watchdog is reaped
// separately via wdDone).
func (sup *supervisor) wait() { sup.wg.Wait() }

// run supervises one stage: invoke, recover panics, restart until the
// stage exits cleanly or the parent context dies.
func (sup *supervisor) run(ctx context.Context, st *stage) {
	defer sup.wg.Done()
	for {
		st.beat()
		stageCtx, cancel := context.WithCancel(ctx)
		st.cancelMu.Lock()
		st.cancel = cancel
		st.cancelMu.Unlock()
		err := sup.invoke(stageCtx, st)
		cancel()
		if err == nil {
			st.done.Store(true)
			if st.onExit != nil {
				st.onExit()
			}
			return
		}
		if ctx.Err() != nil {
			// Hard abort: don't restart, don't run onExit (the exit was
			// not clean; the pipeline is tearing down anyway).
			st.done.Store(true)
			return
		}
		st.restarts.Add(1)
		mStageRestarts.Inc()
		sup.degrade(fmt.Sprintf("stage %s restarted: %v", st.name, err))
		sup.logf("live: stage %s restarting (#%d): %v", st.name, st.restarts.Load(), err)
	}
}

// invoke runs one incarnation of the stage with a panic fence.
func (sup *supervisor) invoke(ctx context.Context, st *stage) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if err := st.fn(ctx, st.beat); err != nil {
		return err
	}
	// A nil return under a watchdog-cancelled context is still a restart:
	// the incarnation was killed, not drained.
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return nil
}

// watchdog scans heartbeats and cancels stalled incarnations. Every
// blocking point in a stage is context-aware and beats while waiting, so
// a stale heartbeat means the stage is wedged mid-item; cancelling its
// context unwinds it and run relaunches it in (now) degraded mode.
func (sup *supervisor) watchdog(ctx context.Context) {
	defer close(sup.wdDone)
	interval := sup.timeout / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, st := range sup.stages {
			if st.done.Load() {
				st.age.Set(0)
			} else {
				st.age.Set(time.Since(time.Unix(0, st.hb.Load())).Seconds())
			}
			if !st.stale(sup.timeout) {
				continue
			}
			mWatchdogStalls.Inc()
			sup.degrade(fmt.Sprintf("stage %s stalled > %s", st.name, sup.timeout))
			sup.logf("live: watchdog: stage %s stalled, cancelling incarnation", st.name)
			st.beat() // arm the next detection window before the cancel lands
			st.cancelMu.Lock()
			if st.cancel != nil {
				st.cancel()
			}
			st.cancelMu.Unlock()
		}
	}
}

// stalled reports the names of currently stale stages (for /healthz).
func (sup *supervisor) stalled() []string {
	var out []string
	for _, st := range sup.stages {
		if st.stale(sup.timeout) {
			out = append(out, st.name)
		}
	}
	return out
}
