package live

import (
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/tstat"
)

func testAnalytics(degraded *atomic.Bool) *Analytics {
	prefixes := map[netip.Prefix]geo.CountryCode{
		netip.MustParsePrefix("10.1.0.0/16"): "IT",
		netip.MustParsePrefix("10.2.0.0/16"): "NG",
	}
	return NewAnalytics(10*time.Minute, time.Minute, 8, prefixes, degraded)
}

func flowAt(t time.Duration, client string, down int64, rtt time.Duration) tstat.FlowRecord {
	return tstat.FlowRecord{
		Client: netip.MustParseAddr(client),
		Start:  t, End: t + time.Second,
		BytesDown: down, BytesUp: 10,
		SatRTT: rtt,
	}
}

func TestAnalyticsWindowsFinalizeOnWatermark(t *testing.T) {
	a := testAnalytics(nil)
	a.AddFlow(flowAt(1*time.Minute, "10.1.0.5", 1000, 550*time.Millisecond))
	a.AddFlow(flowAt(5*time.Minute, "10.2.0.9", 500, 0))
	if got := len(a.Recent()); got != 0 {
		t.Fatalf("windows finalized before watermark passed grace: %d", got)
	}

	// A record at 11:30 sets the watermark past 10m + 1m grace: the
	// first window must finalize.
	a.AddFlow(flowAt(11*time.Minute+30*time.Second, "10.1.0.5", 42, 0))
	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("finalized windows = %d, want 1", len(recent))
	}
	w := recent[0]
	if w.Start != 0 || w.End != 10*time.Minute {
		t.Errorf("window bounds = [%s, %s)", w.Start, w.End)
	}
	if w.Flows != 2 || w.BytesDown != 1500 {
		t.Errorf("window totals = %d flows, %d bytes down; want 2, 1500", w.Flows, w.BytesDown)
	}
	if w.BytesByCountry["IT"] != 1010 || w.BytesByCountry["NG"] != 510 {
		t.Errorf("per-country volumes = %v", w.BytesByCountry)
	}
	if w.RTTSamples != 1 || w.RTTMeanMs != 550 {
		t.Errorf("rtt aggregate = %d samples, mean %.1f ms", w.RTTSamples, w.RTTMeanMs)
	}
	if w.Degraded {
		t.Error("healthy window marked degraded")
	}
}

func TestAnalyticsResolverShares(t *testing.T) {
	a := testAnalytics(nil)
	res := dnssim.Resolvers()
	a.AddDNS(tstat.DNSRecord{Resolver: res[0].Addr, T: time.Minute})
	a.AddDNS(tstat.DNSRecord{Resolver: res[0].Addr, T: 2 * time.Minute})
	a.AddDNS(tstat.DNSRecord{Resolver: res[1].Addr, T: 3 * time.Minute})
	a.Finalize()
	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("finalized windows = %d, want 1", len(recent))
	}
	w := recent[0]
	if w.DNS != 3 {
		t.Errorf("dns total = %d, want 3", w.DNS)
	}
	if w.DNSByResolver[string(res[0].ID)] != 2 || w.DNSByResolver[string(res[1].ID)] != 1 {
		t.Errorf("resolver shares = %v", w.DNSByResolver)
	}
}

func TestAnalyticsDegradedDropsBreakdowns(t *testing.T) {
	var degraded atomic.Bool
	degraded.Store(true)
	a := testAnalytics(&degraded)
	a.AddFlow(flowAt(time.Minute, "10.1.0.5", 1000, 0))
	a.Finalize()
	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("finalized windows = %d, want 1", len(recent))
	}
	w := recent[0]
	if !w.Degraded {
		t.Error("degraded window not marked")
	}
	if w.BytesByCountry != nil || w.DNSByResolver != nil {
		t.Error("degraded window kept per-country/per-resolver maps")
	}
	if w.Flows != 1 || w.BytesDown != 1000 {
		t.Errorf("degraded window lost totals: %+v", w)
	}
}

func TestAnalyticsRingBounded(t *testing.T) {
	a := testAnalytics(nil)
	for i := 0; i < 20; i++ {
		a.AddFlow(flowAt(time.Duration(i)*10*time.Minute+time.Minute, "10.1.0.5", 1, 0))
	}
	a.Finalize()
	if got := len(a.Recent()); got != 8 {
		t.Fatalf("ring holds %d summaries, want keep=8", got)
	}
	// Oldest first, newest last.
	recent := a.Recent()
	for i := 1; i < len(recent); i++ {
		if recent[i].Start <= recent[i-1].Start {
			t.Fatalf("ring out of order: %s after %s", recent[i].Start, recent[i-1].Start)
		}
	}
}

// TestAnalyticsWatermarkGraceBoundary pins the finalization condition:
// a window [0, W) finalizes exactly when the watermark reaches W + grace
// — not one tick before.
func TestAnalyticsWatermarkGraceBoundary(t *testing.T) {
	const (
		window = 10 * time.Minute
		grace  = time.Minute
	)
	cases := []struct {
		name      string
		watermark time.Duration
		finalized int
	}{
		{"inside window", 5 * time.Minute, 0},
		{"at window end", window, 0},
		{"one tick before boundary", window + grace - time.Nanosecond, 0},
		{"exactly at boundary", window + grace, 1},
		{"past boundary", window + grace + time.Second, 1},
		{"two windows due", 2*window + grace, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := testAnalytics(nil)
			a.AddFlow(flowAt(time.Minute, "10.1.0.5", 100, 0))
			// Seed the second window only when the probe will still own
			// the watermark — every AddFlow advances it.
			if tc.watermark > window+time.Minute {
				a.AddFlow(flowAt(window+time.Minute, "10.2.0.9", 200, 0))
			}
			// The probe record advances the watermark; it may itself open
			// (or extend) a window but never finalizes its own.
			a.AddFlow(flowAt(tc.watermark, "10.1.0.5", 1, 0))
			if got := len(a.Recent()); got != tc.finalized {
				t.Fatalf("watermark %s finalized %d windows, want %d",
					tc.watermark, got, tc.finalized)
			}
			if w := a.Watermark(); w != tc.watermark {
				t.Fatalf("watermark = %s, want %s", w, tc.watermark)
			}
		})
	}
}

// TestAnalyticsRingEvictionUnderKeepPressure drives far more windows
// than the ring keeps and checks the survivors are exactly the newest
// keep, in order, with the eviction count visible via total progression.
func TestAnalyticsRingEvictionUnderKeepPressure(t *testing.T) {
	cases := []struct {
		name    string
		keep    int
		windows int
	}{
		{"keep 1", 1, 6},
		{"keep smaller than produced", 4, 12},
		{"keep equal to produced", 5, 5},
		{"keep larger than produced", 16, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAnalytics(10*time.Minute, time.Minute, tc.keep, nil, nil)
			var finalized []WindowSummary
			a.OnFinalize(func(s WindowSummary) { finalized = append(finalized, s) })
			for i := 0; i < tc.windows; i++ {
				a.AddFlow(flowAt(time.Duration(i)*10*time.Minute+time.Minute, "10.1.0.5", 1, 0))
			}
			a.Finalize()
			if len(finalized) != tc.windows {
				t.Fatalf("OnFinalize saw %d windows, want every one of %d", len(finalized), tc.windows)
			}
			recent := a.Recent()
			wantKept := tc.keep
			if tc.windows < wantKept {
				wantKept = tc.windows
			}
			if len(recent) != wantKept {
				t.Fatalf("ring holds %d, want %d", len(recent), wantKept)
			}
			// Survivors are the newest windows, oldest-first.
			for i, w := range recent {
				wantStart := time.Duration(tc.windows-wantKept+i) * 10 * time.Minute
				if w.Start != wantStart {
					t.Fatalf("ring[%d].Start = %s, want %s", i, w.Start, wantStart)
				}
			}
		})
	}
}

// TestAnalyticsPreloadAdvancesWatermark checks the restart path: a
// preloaded history must land in the ring without re-firing the
// persistence hook, and already-covered windows must not reopen.
func TestAnalyticsPreloadAdvancesWatermark(t *testing.T) {
	a := testAnalytics(nil)
	fired := 0
	a.OnFinalize(func(WindowSummary) { fired++ })
	prior := []WindowSummary{
		{Start: 0, End: 10 * time.Minute, Flows: 5},
		{Start: 10 * time.Minute, End: 20 * time.Minute, Flows: 7},
	}
	a.Preload(prior)
	if fired != 0 {
		t.Fatalf("Preload fired OnFinalize %d times; preloaded windows are already persisted", fired)
	}
	if got := len(a.Recent()); got != 2 {
		t.Fatalf("ring after Preload = %d windows", got)
	}
	if w := a.Watermark(); w != 20*time.Minute {
		t.Fatalf("watermark after Preload = %s, want 20m", w)
	}
	// New records for the already-covered span fold into windows at or
	// after the watermark only after passing grace; they never duplicate
	// a preloaded window in the ring by merely arriving.
	a.AddFlow(flowAt(21*time.Minute, "10.1.0.5", 10, 0))
	a.Finalize()
	recent := a.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring = %d windows after one new finalization, want 3", len(recent))
	}
	if fired != 1 {
		t.Fatalf("OnFinalize fired %d times for the one new window", fired)
	}
	if recent[2].Start != 20*time.Minute {
		t.Fatalf("new window start = %s, want 20m", recent[2].Start)
	}
}

// TestAnalyticsLateRecordsDroppedExactlyOnce pins the exactly-once
// finalization contract: a record arriving after its window's
// end-plus-grace boundary must be dropped — never reopen the window and
// re-emit a duplicate summary (which would also duplicate a history-log
// line a restarted daemon replays).
func TestAnalyticsLateRecordsDroppedExactlyOnce(t *testing.T) {
	a := testAnalytics(nil)
	var finalized []WindowSummary
	a.OnFinalize(func(s WindowSummary) { finalized = append(finalized, s) })

	a.AddFlow(flowAt(time.Minute, "10.1.0.5", 100, 0))
	// Watermark to 12m: window [0, 10m) finalizes (boundary 11m).
	a.AddFlow(flowAt(12*time.Minute, "10.2.0.9", 200, 0))
	if len(finalized) != 1 {
		t.Fatalf("finalized %d windows, want 1", len(finalized))
	}

	// Flow and DNS records landing back inside the finalized window
	// must be dropped, not aggregated into a duplicate.
	a.AddFlow(flowAt(2*time.Minute, "10.1.0.5", 999, 0))
	a.AddDNS(tstat.DNSRecord{T: 3 * time.Minute, Resolver: dnssim.Resolvers()[0].Addr})
	if len(finalized) != 1 {
		t.Fatalf("late records re-finalized: %d windows", len(finalized))
	}
	if got := len(a.Recent()); got != 1 {
		t.Fatalf("ring has %d windows, want 1", got)
	}
	if a.Recent()[0].Flows != 1 {
		t.Errorf("late flow leaked into the finalized summary: %+v", a.Recent()[0])
	}

	// A record in a still-open window (inside grace) is not late.
	a.AddFlow(flowAt(11*time.Minute+30*time.Second, "10.1.0.5", 5, 0))
	a.AddFlow(flowAt(21*time.Minute+10*time.Second, "10.1.0.5", 7, 0))
	if len(finalized) != 2 {
		t.Fatalf("finalized %d windows, want 2", len(finalized))
	}
	if finalized[1].Flows != 2 {
		t.Errorf("second window flows = %d, want 2 (12m and 11m30s records)", finalized[1].Flows)
	}
	for i := 1; i < len(finalized); i++ {
		if finalized[i].Start <= finalized[i-1].Start {
			t.Errorf("window starts not strictly increasing: %v then %v",
				finalized[i-1].Start, finalized[i].Start)
		}
	}
}
