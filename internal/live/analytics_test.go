package live

import (
	"net/netip"
	"sync/atomic"
	"testing"
	"time"

	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/tstat"
)

func testAnalytics(degraded *atomic.Bool) *Analytics {
	prefixes := map[netip.Prefix]geo.CountryCode{
		netip.MustParsePrefix("10.1.0.0/16"): "IT",
		netip.MustParsePrefix("10.2.0.0/16"): "NG",
	}
	return NewAnalytics(10*time.Minute, time.Minute, 8, prefixes, degraded)
}

func flowAt(t time.Duration, client string, down int64, rtt time.Duration) tstat.FlowRecord {
	return tstat.FlowRecord{
		Client: netip.MustParseAddr(client),
		Start:  t, End: t + time.Second,
		BytesDown: down, BytesUp: 10,
		SatRTT: rtt,
	}
}

func TestAnalyticsWindowsFinalizeOnWatermark(t *testing.T) {
	a := testAnalytics(nil)
	a.AddFlow(flowAt(1*time.Minute, "10.1.0.5", 1000, 550*time.Millisecond))
	a.AddFlow(flowAt(5*time.Minute, "10.2.0.9", 500, 0))
	if got := len(a.Recent()); got != 0 {
		t.Fatalf("windows finalized before watermark passed grace: %d", got)
	}

	// A record at 11:30 sets the watermark past 10m + 1m grace: the
	// first window must finalize.
	a.AddFlow(flowAt(11*time.Minute+30*time.Second, "10.1.0.5", 42, 0))
	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("finalized windows = %d, want 1", len(recent))
	}
	w := recent[0]
	if w.Start != 0 || w.End != 10*time.Minute {
		t.Errorf("window bounds = [%s, %s)", w.Start, w.End)
	}
	if w.Flows != 2 || w.BytesDown != 1500 {
		t.Errorf("window totals = %d flows, %d bytes down; want 2, 1500", w.Flows, w.BytesDown)
	}
	if w.BytesByCountry["IT"] != 1010 || w.BytesByCountry["NG"] != 510 {
		t.Errorf("per-country volumes = %v", w.BytesByCountry)
	}
	if w.RTTSamples != 1 || w.RTTMeanMs != 550 {
		t.Errorf("rtt aggregate = %d samples, mean %.1f ms", w.RTTSamples, w.RTTMeanMs)
	}
	if w.Degraded {
		t.Error("healthy window marked degraded")
	}
}

func TestAnalyticsResolverShares(t *testing.T) {
	a := testAnalytics(nil)
	res := dnssim.Resolvers()
	a.AddDNS(tstat.DNSRecord{Resolver: res[0].Addr, T: time.Minute})
	a.AddDNS(tstat.DNSRecord{Resolver: res[0].Addr, T: 2 * time.Minute})
	a.AddDNS(tstat.DNSRecord{Resolver: res[1].Addr, T: 3 * time.Minute})
	a.Finalize()
	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("finalized windows = %d, want 1", len(recent))
	}
	w := recent[0]
	if w.DNS != 3 {
		t.Errorf("dns total = %d, want 3", w.DNS)
	}
	if w.DNSByResolver[string(res[0].ID)] != 2 || w.DNSByResolver[string(res[1].ID)] != 1 {
		t.Errorf("resolver shares = %v", w.DNSByResolver)
	}
}

func TestAnalyticsDegradedDropsBreakdowns(t *testing.T) {
	var degraded atomic.Bool
	degraded.Store(true)
	a := testAnalytics(&degraded)
	a.AddFlow(flowAt(time.Minute, "10.1.0.5", 1000, 0))
	a.Finalize()
	recent := a.Recent()
	if len(recent) != 1 {
		t.Fatalf("finalized windows = %d, want 1", len(recent))
	}
	w := recent[0]
	if !w.Degraded {
		t.Error("degraded window not marked")
	}
	if w.BytesByCountry != nil || w.DNSByResolver != nil {
		t.Error("degraded window kept per-country/per-resolver maps")
	}
	if w.Flows != 1 || w.BytesDown != 1000 {
		t.Errorf("degraded window lost totals: %+v", w)
	}
}

func TestAnalyticsRingBounded(t *testing.T) {
	a := testAnalytics(nil)
	for i := 0; i < 20; i++ {
		a.AddFlow(flowAt(time.Duration(i)*10*time.Minute+time.Minute, "10.1.0.5", 1, 0))
	}
	a.Finalize()
	if got := len(a.Recent()); got != 8 {
		t.Fatalf("ring holds %d summaries, want keep=8", got)
	}
	// Oldest first, newest last.
	recent := a.Recent()
	for i := 1; i < len(recent); i++ {
		if recent[i].Start <= recent[i-1].Start {
			t.Fatalf("ring out of order: %s after %s", recent[i].Start, recent[i-1].Start)
		}
	}
}
