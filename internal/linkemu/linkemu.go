// Package linkemu emulates the satellite link in real time: a pair of
// tunnel.Transport endpoints connected by two independent one-way channels
// with configurable propagation delay, jitter, random loss, and a
// serialization rate. It lets the live PEP (package pep) run over a
// realistic 550 ms GEO path entirely in-process — the ERRANT-style
// emulation the paper released for the research community.
package linkemu

import (
	"errors"
	"sync"
	"time"

	"satwatch/internal/dist"
)

// Link describes one direction of the emulated path.
type Link struct {
	// Delay is the one-way propagation delay (≈270 ms for GEO).
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) — the MAC
	// and scheduling variability. Jitter also produces reordering.
	Jitter time.Duration
	// Loss is the independent datagram loss probability in [0,1].
	Loss float64
	// RateBps is the serialization rate in bytes/second; zero means
	// infinite (no serialization delay).
	RateBps float64
}

// GEO returns the deployment-shaped link: ~270 ms one way with moderate
// jitter, matching the paper's ~550 ms round trip.
func GEO() Link {
	return Link{Delay: 270 * time.Millisecond, Jitter: 30 * time.Millisecond, Loss: 0.005, RateBps: 10e6 / 8}
}

// Conditions are live adjustments layered on top of a direction's base
// Link — the hook the fault injector uses to play rain fades, beam
// outages, and gateway switches into a running link without touching
// its base shape.
type Conditions struct {
	// ExtraDelay is added to the propagation delay (a gateway switch to
	// a farther ground station).
	ExtraDelay time.Duration
	// ExtraLoss combines with the base loss as independent drop
	// processes: p = 1-(1-Loss)(1-ExtraLoss). 1 means total outage.
	ExtraLoss float64
}

// ErrClosed is returned by ReadDatagram after Close.
var ErrClosed = errors.New("linkemu: closed")

// pktPool recycles packet buffers between WriteDatagram's copy and the
// post-ReadDatagram release (the tunnel.Transport contract lets the
// previously returned slice be recycled on the next call).
var pktPool = sync.Pool{New: func() any { return make([]byte, 2048) }}

func getPkt(n int) []byte {
	b := pktPool.Get().([]byte)
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func putPkt(b []byte) {
	if b != nil {
		pktPool.Put(b[:cap(b)])
	}
}

// Endpoint is one side of the pair; it implements tunnel.Transport.
type Endpoint struct {
	out  *direction // the direction this endpoint writes into
	in   chan []byte
	done chan struct{}
	once sync.Once
	peer *Endpoint
	// prev is the buffer handed out by the last ReadDatagram, recycled on
	// the next call. ReadDatagram therefore expects a single reader (the
	// tunnel's read loop), matching the Transport contract.
	prev []byte
}

// direction carries packets one way.
type direction struct {
	link Link

	mu       sync.Mutex
	r        *dist.Rand
	cond     Conditions
	nextFree time.Time // when the serializer is free again
}

// NewPair builds two connected endpoints. aToB shapes datagrams written by
// the first endpoint, bToA those written by the second. The seed drives
// loss and jitter deterministically (delivery order can still vary with
// goroutine scheduling, as on a real link).
func NewPair(aToB, bToA Link, seed uint64) (a, b *Endpoint) {
	base := dist.NewRand(seed)
	dirAB := &direction{link: aToB, r: base.Fork("a2b")}
	dirBA := &direction{link: bToA, r: base.Fork("b2a")}
	ea := &Endpoint{out: dirAB, in: make(chan []byte, 4096), done: make(chan struct{})}
	eb := &Endpoint{out: dirBA, in: make(chan []byte, 4096), done: make(chan struct{})}
	ea.peer, eb.peer = eb, ea
	return ea, eb
}

// SetConditions applies live fault conditions to the direction this
// endpoint writes into. Degrading a whole link means calling it on both
// endpoints of the pair.
func (e *Endpoint) SetConditions(c Conditions) {
	e.out.mu.Lock()
	e.out.cond = c
	e.out.mu.Unlock()
}

// WriteDatagram schedules delivery at the peer after loss, serialization,
// propagation, and jitter.
func (e *Endpoint) WriteDatagram(b []byte) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	d := e.out
	d.mu.Lock()
	loss := d.link.Loss
	if d.cond.ExtraLoss > 0 {
		loss = 1 - (1-loss)*(1-d.cond.ExtraLoss)
	}
	if loss > 0 && d.r.Bool(loss) {
		d.mu.Unlock()
		return nil // lost on the air interface
	}
	now := time.Now()
	txStart := now
	if txStart.Before(d.nextFree) {
		txStart = d.nextFree
	}
	var ser time.Duration
	if d.link.RateBps > 0 {
		ser = time.Duration(float64(len(b)) / d.link.RateBps * float64(time.Second))
	}
	d.nextFree = txStart.Add(ser)
	extra := d.cond.ExtraDelay
	if d.link.Jitter > 0 {
		extra += time.Duration(d.r.Float64() * float64(d.link.Jitter))
	}
	deliverAt := txStart.Add(ser + d.link.Delay + extra)
	d.mu.Unlock()

	// Copy into a pooled buffer: the caller may recycle b the moment we
	// return (tunnel.Transport contract).
	pkt := getPkt(len(b))
	copy(pkt, b)
	peer := e.peer
	time.AfterFunc(time.Until(deliverAt), func() {
		select {
		case peer.in <- pkt:
		case <-peer.done:
			putPkt(pkt)
		default:
			// Inbox full: tail-drop, as a real modem queue would.
			putPkt(pkt)
		}
	})
	return nil
}

// ReadDatagram blocks for the next delivered datagram. The returned
// slice is valid until the next ReadDatagram call on this endpoint.
func (e *Endpoint) ReadDatagram() ([]byte, error) {
	select {
	case pkt := <-e.in:
		putPkt(e.prev)
		e.prev = pkt
		return pkt, nil
	case <-e.done:
		return nil, ErrClosed
	}
}

// Close shuts this endpoint down; pending reads fail.
func (e *Endpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}
