// Package linkemu emulates the satellite link in real time: a pair of
// tunnel.Transport endpoints connected by two independent one-way channels
// with configurable propagation delay, jitter, random loss, and a
// serialization rate. It lets the live PEP (package pep) run over a
// realistic 550 ms GEO path entirely in-process — the ERRANT-style
// emulation the paper released for the research community.
package linkemu

import (
	"errors"
	"sync"
	"time"

	"satwatch/internal/dist"
)

// Link describes one direction of the emulated path.
type Link struct {
	// Delay is the one-way propagation delay (≈270 ms for GEO).
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) — the MAC
	// and scheduling variability. Jitter also produces reordering.
	Jitter time.Duration
	// Loss is the independent datagram loss probability in [0,1].
	Loss float64
	// RateBps is the serialization rate in bytes/second; zero means
	// infinite (no serialization delay).
	RateBps float64
}

// GEO returns the deployment-shaped link: ~270 ms one way with moderate
// jitter, matching the paper's ~550 ms round trip.
func GEO() Link {
	return Link{Delay: 270 * time.Millisecond, Jitter: 30 * time.Millisecond, Loss: 0.005, RateBps: 10e6 / 8}
}

// ErrClosed is returned by ReadDatagram after Close.
var ErrClosed = errors.New("linkemu: closed")

// endpoint is one side of the pair; it implements tunnel.Transport.
type endpoint struct {
	out  *direction // the direction this endpoint writes into
	in   chan []byte
	done chan struct{}
	once sync.Once
	peer *endpoint
}

// direction carries packets one way.
type direction struct {
	link Link

	mu       sync.Mutex
	r        *dist.Rand
	nextFree time.Time // when the serializer is free again
}

// NewPair builds two connected endpoints. aToB shapes datagrams written by
// the first endpoint, bToA those written by the second. The seed drives
// loss and jitter deterministically (delivery order can still vary with
// goroutine scheduling, as on a real link).
func NewPair(aToB, bToA Link, seed uint64) (a, b interface {
	WriteDatagram([]byte) error
	ReadDatagram() ([]byte, error)
	Close() error
}) {
	base := dist.NewRand(seed)
	dirAB := &direction{link: aToB, r: base.Fork("a2b")}
	dirBA := &direction{link: bToA, r: base.Fork("b2a")}
	ea := &endpoint{out: dirAB, in: make(chan []byte, 4096), done: make(chan struct{})}
	eb := &endpoint{out: dirBA, in: make(chan []byte, 4096), done: make(chan struct{})}
	ea.peer, eb.peer = eb, ea
	return ea, eb
}

// WriteDatagram schedules delivery at the peer after loss, serialization,
// propagation, and jitter.
func (e *endpoint) WriteDatagram(b []byte) error {
	select {
	case <-e.done:
		return ErrClosed
	default:
	}
	d := e.out
	d.mu.Lock()
	if d.link.Loss > 0 && d.r.Bool(d.link.Loss) {
		d.mu.Unlock()
		return nil // lost on the air interface
	}
	now := time.Now()
	txStart := now
	if txStart.Before(d.nextFree) {
		txStart = d.nextFree
	}
	var ser time.Duration
	if d.link.RateBps > 0 {
		ser = time.Duration(float64(len(b)) / d.link.RateBps * float64(time.Second))
	}
	d.nextFree = txStart.Add(ser)
	extra := time.Duration(0)
	if d.link.Jitter > 0 {
		extra = time.Duration(d.r.Float64() * float64(d.link.Jitter))
	}
	deliverAt := txStart.Add(ser + d.link.Delay + extra)
	d.mu.Unlock()

	pkt := make([]byte, len(b))
	copy(pkt, b)
	peer := e.peer
	time.AfterFunc(time.Until(deliverAt), func() {
		select {
		case peer.in <- pkt:
		case <-peer.done:
		default:
			// Inbox full: tail-drop, as a real modem queue would.
		}
	})
	return nil
}

// ReadDatagram blocks for the next delivered datagram.
func (e *endpoint) ReadDatagram() ([]byte, error) {
	select {
	case pkt := <-e.in:
		return pkt, nil
	case <-e.done:
		return nil, ErrClosed
	}
}

// Close shuts this endpoint down; pending reads fail.
func (e *endpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}
