package linkemu

import (
	"testing"
	"time"
)

func fastLink(delay time.Duration) Link {
	return Link{Delay: delay, Jitter: 0, Loss: 0, RateBps: 0}
}

func TestDeliveryAndDelay(t *testing.T) {
	a, b := NewPair(fastLink(30*time.Millisecond), fastLink(30*time.Millisecond), 1)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.WriteDatagram([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadDatagram()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if elapsed < 25*time.Millisecond {
		t.Fatalf("delivered in %v, want ≥ ~30ms propagation", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("delivered in %v, absurdly late", elapsed)
	}
}

func TestBothDirections(t *testing.T) {
	a, b := NewPair(fastLink(5*time.Millisecond), fastLink(5*time.Millisecond), 2)
	defer a.Close()
	defer b.Close()
	a.WriteDatagram([]byte("up"))
	b.WriteDatagram([]byte("down"))
	if got, _ := b.ReadDatagram(); string(got) != "up" {
		t.Fatalf("b got %q", got)
	}
	if got, _ := a.ReadDatagram(); string(got) != "down" {
		t.Fatalf("a got %q", got)
	}
}

func TestTotalLoss(t *testing.T) {
	lossy := Link{Delay: time.Millisecond, Loss: 1.0}
	a, b := NewPair(lossy, fastLink(time.Millisecond), 3)
	defer a.Close()
	defer b.Close()
	a.WriteDatagram([]byte("vanish"))
	done := make(chan struct{})
	go func() {
		b.ReadDatagram()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("datagram survived a 100% lossy link")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestPartialLossStatistics(t *testing.T) {
	lossy := Link{Delay: 0, Loss: 0.3}
	a, b := NewPair(lossy, fastLink(0), 4)
	defer a.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		a.WriteDatagram([]byte{byte(i)})
	}
	received := make(chan int, 1)
	go func() {
		count := 0
		for {
			if _, err := b.ReadDatagram(); err != nil {
				received <- count
				return
			}
			count++
		}
	}()
	time.Sleep(200 * time.Millisecond)
	b.Close()
	got := <-received
	frac := float64(got) / n
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("received %.2f of datagrams through a 30%% lossy link", frac)
	}
}

func TestRateSerialization(t *testing.T) {
	// 10 KB through a 100 KB/s link: serialization alone is ~100 ms.
	rated := Link{Delay: 0, RateBps: 100_000}
	a, b := NewPair(rated, fastLink(0), 5)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	const chunks = 10
	for i := 0; i < chunks; i++ {
		a.WriteDatagram(make([]byte, 1000))
	}
	for i := 0; i < chunks; i++ {
		if _, err := b.ReadDatagram(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("10 KB crossed a 100 KB/s link in %v", elapsed)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	a, b := NewPair(fastLink(time.Millisecond), fastLink(time.Millisecond), 6)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.ReadDatagram()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("read returned nil after close")
		}
	case <-time.After(time.Second):
		t.Fatal("read still blocked after close")
	}
	if err := a.WriteDatagram([]byte("x")); err != nil {
		t.Fatal("writes to the open side should still succeed")
	}
	a.Close()
	if err := a.WriteDatagram([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestConditionsExtraLossOutage(t *testing.T) {
	a, b := NewPair(fastLink(time.Millisecond), fastLink(time.Millisecond), 7)
	defer a.Close()
	defer b.Close()
	a.SetConditions(Conditions{ExtraLoss: 1.0}) // beam outage
	a.WriteDatagram([]byte("lost"))
	done := make(chan struct{})
	go func() {
		b.ReadDatagram()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("datagram survived a total-outage condition")
	case <-time.After(50 * time.Millisecond):
	}
	a.SetConditions(Conditions{}) // fault clears
	a.WriteDatagram([]byte("back"))
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("link did not recover after the condition cleared")
	}
}

func TestConditionsExtraDelay(t *testing.T) {
	a, b := NewPair(fastLink(time.Millisecond), fastLink(time.Millisecond), 8)
	defer a.Close()
	defer b.Close()
	a.SetConditions(Conditions{ExtraDelay: 80 * time.Millisecond}) // gateway switch
	start := time.Now()
	a.WriteDatagram([]byte("rerouted"))
	if _, err := b.ReadDatagram(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("delivered in %v despite an 80ms extra-delay condition", elapsed)
	}
}

func TestReadBufferValidUntilNextRead(t *testing.T) {
	// The Transport contract: the slice from ReadDatagram is valid until
	// the next call. Contents must be intact in that window even with
	// pooled buffers behind the scenes.
	a, b := NewPair(fastLink(0), fastLink(0), 9)
	defer a.Close()
	defer b.Close()
	a.WriteDatagram([]byte("first"))
	got1, err := b.ReadDatagram()
	if err != nil || string(got1) != "first" {
		t.Fatalf("got %q, %v", got1, err)
	}
	cp := string(got1) // capture before the next read recycles it
	a.WriteDatagram([]byte("second"))
	got2, err := b.ReadDatagram()
	if err != nil || string(got2) != "second" {
		t.Fatalf("got %q, %v", got2, err)
	}
	if cp != "first" {
		t.Fatalf("first buffer corrupted before the next read: %q", cp)
	}
}

func TestGEOProfile(t *testing.T) {
	l := GEO()
	if l.Delay < 230*time.Millisecond || l.Delay > 300*time.Millisecond {
		t.Fatalf("GEO one-way delay %v outside the physical band", l.Delay)
	}
	if l.Loss <= 0 || l.Loss > 0.05 {
		t.Fatalf("GEO loss %v implausible", l.Loss)
	}
}
