package linkemu

import (
	"testing"
	"time"
)

func fastLink(delay time.Duration) Link {
	return Link{Delay: delay, Jitter: 0, Loss: 0, RateBps: 0}
}

func TestDeliveryAndDelay(t *testing.T) {
	a, b := NewPair(fastLink(30*time.Millisecond), fastLink(30*time.Millisecond), 1)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.WriteDatagram([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadDatagram()
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if string(got) != "ping" {
		t.Fatalf("got %q", got)
	}
	if elapsed < 25*time.Millisecond {
		t.Fatalf("delivered in %v, want ≥ ~30ms propagation", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("delivered in %v, absurdly late", elapsed)
	}
}

func TestBothDirections(t *testing.T) {
	a, b := NewPair(fastLink(5*time.Millisecond), fastLink(5*time.Millisecond), 2)
	defer a.Close()
	defer b.Close()
	a.WriteDatagram([]byte("up"))
	b.WriteDatagram([]byte("down"))
	if got, _ := b.ReadDatagram(); string(got) != "up" {
		t.Fatalf("b got %q", got)
	}
	if got, _ := a.ReadDatagram(); string(got) != "down" {
		t.Fatalf("a got %q", got)
	}
}

func TestTotalLoss(t *testing.T) {
	lossy := Link{Delay: time.Millisecond, Loss: 1.0}
	a, b := NewPair(lossy, fastLink(time.Millisecond), 3)
	defer a.Close()
	defer b.Close()
	a.WriteDatagram([]byte("vanish"))
	done := make(chan struct{})
	go func() {
		b.ReadDatagram()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("datagram survived a 100% lossy link")
	case <-time.After(100 * time.Millisecond):
	}
}

func TestPartialLossStatistics(t *testing.T) {
	lossy := Link{Delay: 0, Loss: 0.3}
	a, b := NewPair(lossy, fastLink(0), 4)
	defer a.Close()
	const n = 2000
	for i := 0; i < n; i++ {
		a.WriteDatagram([]byte{byte(i)})
	}
	received := make(chan int, 1)
	go func() {
		count := 0
		for {
			if _, err := b.ReadDatagram(); err != nil {
				received <- count
				return
			}
			count++
		}
	}()
	time.Sleep(200 * time.Millisecond)
	b.Close()
	got := <-received
	frac := float64(got) / n
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("received %.2f of datagrams through a 30%% lossy link", frac)
	}
}

func TestRateSerialization(t *testing.T) {
	// 10 KB through a 100 KB/s link: serialization alone is ~100 ms.
	rated := Link{Delay: 0, RateBps: 100_000}
	a, b := NewPair(rated, fastLink(0), 5)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	const chunks = 10
	for i := 0; i < chunks; i++ {
		a.WriteDatagram(make([]byte, 1000))
	}
	for i := 0; i < chunks; i++ {
		if _, err := b.ReadDatagram(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Fatalf("10 KB crossed a 100 KB/s link in %v", elapsed)
	}
}

func TestCloseUnblocksRead(t *testing.T) {
	a, b := NewPair(fastLink(time.Millisecond), fastLink(time.Millisecond), 6)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.ReadDatagram()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("read returned nil after close")
		}
	case <-time.After(time.Second):
		t.Fatal("read still blocked after close")
	}
	if err := a.WriteDatagram([]byte("x")); err != nil {
		t.Fatal("writes to the open side should still succeed")
	}
	a.Close()
	if err := a.WriteDatagram([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestGEOProfile(t *testing.T) {
	l := GEO()
	if l.Delay < 230*time.Millisecond || l.Delay > 300*time.Millisecond {
		t.Fatalf("GEO one-way delay %v outside the physical band", l.Delay)
	}
	if l.Loss <= 0 || l.Loss > 0.05 {
		t.Fatalf("GEO loss %v implausible", l.Loss)
	}
}
