package geo

import (
	"testing"
	"time"
)

// TestGEOBackendMatchesSatellite pins the refactor's compatibility
// contract: the GEO backend must return exactly the closed-form Satellite
// values, at any simulated time, so pre-interface runs stay byte-identical.
func TestGEOBackendMatchesSatellite(t *testing.T) {
	con, err := ConstellationByName("", 7)
	if err != nil {
		t.Fatal(err)
	}
	if con.Name() != "geo" || !con.Static() {
		t.Fatalf("empty name must resolve to the static geo backend, got %s", con.Name())
	}
	for _, c := range Countries() {
		for _, at := range []time.Duration{0, time.Hour, 31 * time.Hour} {
			if got, want := con.SegmentRTT(c, at), DefaultSatellite.SegmentRTT(c); got != want {
				t.Errorf("%s: SegmentRTT(%v) = %v, want %v", c.Code, at, got, want)
			}
			if got, want := con.ZenithDeg(c, at), DefaultSatellite.ZenithDeg(c.Lat, c.Lon); got != want {
				t.Errorf("%s: ZenithDeg(%v) = %v, want %v", c.Code, at, got, want)
			}
		}
		if id, extra := con.Gateway(c, 5*time.Hour); id != 0 || extra != 0 {
			t.Errorf("%s: geo backend must have a single primary gateway", c.Code)
		}
	}
}

// TestLEORTTBand checks the LEO backend's headline property: a 15–60 ms
// time-varying segment RTT for every market, at every point of the pass.
func TestLEORTTBand(t *testing.T) {
	l := NewLEO(2022)
	lo, hi := 15*time.Millisecond, 60*time.Millisecond
	for _, c := range Countries() {
		minSeen, maxSeen := time.Duration(1<<62), time.Duration(0)
		for at := time.Duration(0); at < 24*time.Hour; at += 7 * time.Second {
			rtt := l.SegmentRTT(c, at)
			if rtt < lo || rtt > hi {
				t.Fatalf("%s: SegmentRTT(%v) = %v outside [%v, %v]", c.Code, at, rtt, lo, hi)
			}
			if rtt < minSeen {
				minSeen = rtt
			}
			if rtt > maxSeen {
				maxSeen = rtt
			}
			if el := l.ElevationDeg(c, at); el < l.MinElevDeg-1e-9 || el > l.MaxElevDeg+1e-9 {
				t.Fatalf("%s: elevation %v outside [%v, %v]", c.Code, el, l.MinElevDeg, l.MaxElevDeg)
			}
		}
		// The RTT must actually vary over a day — a flat value would mean
		// the pass phase is broken.
		if maxSeen-minSeen < 5*time.Millisecond {
			t.Errorf("%s: RTT band [%v, %v] barely varies", c.Code, minSeen, maxSeen)
		}
	}
}

// TestLEODeterministicAndSeeded checks the orbit model is a pure function
// of (seed, country, time) and that different seeds shift the phases.
func TestLEODeterministicAndSeeded(t *testing.T) {
	a, b, other := NewLEO(1), NewLEO(1), NewLEO(2)
	c, _ := ByCode("NG")
	diff := false
	for at := time.Duration(0); at < time.Hour; at += 13 * time.Second {
		if a.SegmentRTT(c, at) != b.SegmentRTT(c, at) {
			t.Fatalf("equal seeds disagree at %v", at)
		}
		if a.SegmentRTT(c, at) != other.SegmentRTT(c, at) {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 1 and 2 produce identical orbits — phases are not seeded")
	}
}

// TestLEOGatewayDiversity checks the ground segment changes across a day
// and that the extra RTT tracks the gateway index.
func TestLEOGatewayDiversity(t *testing.T) {
	l := NewLEO(9)
	for _, c := range Countries() {
		seen := map[int]bool{}
		for at := time.Duration(0); at < 24*time.Hour; at += 10 * time.Minute {
			id, extra := l.Gateway(c, at)
			if id < 0 || id >= l.GatewayCount {
				t.Fatalf("%s: gateway %d outside [0,%d)", c.Code, id, l.GatewayCount)
			}
			if want := time.Duration(id) * l.GatewayStep; extra != want {
				t.Fatalf("%s: gateway %d extra %v, want %v", c.Code, id, extra, want)
			}
			seen[id] = true
		}
		if len(seen) < 2 {
			t.Errorf("%s: ground segment never changed over a day (saw %d gateway)", c.Code, len(seen))
		}
	}
}

// TestConstellationByNameRejectsUnknown pins the CLI error path.
func TestConstellationByNameRejectsUnknown(t *testing.T) {
	if _, err := ConstellationByName("meo", 1); err == nil {
		t.Fatal("unknown constellation must be rejected")
	}
}
