package geo

import "fmt"

// Beam is one directional spot beam of the satellite. Each beam is an
// independent physical channel pair (uplink + downlink frequencies) covering
// a region of a country (§2.1). Capacity is dimensioned by the operator; the
// PEP resources assigned to a beam depend on the SLA and service cost
// (§6.1), which is why PEP saturation and beam-capacity congestion are
// independent knobs here.
type Beam struct {
	ID      int
	Country CountryCode
	// TargetPeakUtil is the fraction of the beam's capacity the operator
	// expects the covered population to offer at that population's peak
	// hour. The simulator sizes the beam's absolute capacity from the
	// generated offered load so that this utilization emerges; values
	// close to 1 reproduce the congested Congolese beams.
	TargetPeakUtil float64
	// PEPFactor scales the connection-setup capacity of the PEP resources
	// the operator assigned to this beam relative to the beam's expected
	// peak connection-setup rate. Values at or below 1 saturate at peak
	// (the cause of Congo's multi-second satellite RTTs per §6.1).
	PEPFactor float64
}

// beamPlan describes, per country, how many beams cover it and how tightly
// the operator dimensioned them. Calibrated to §6.1: Congo's beams are
// congested and PEP-starved, a subset of Nigerian beams see some
// congestion, Spain/U.K./South Africa are practically uncongested, and
// Ireland's problem is the channel, not load.
var beamPlan = []struct {
	country  CountryCode
	n        int
	peakUtil []float64 // per beam; len == n
	pep      []float64 // per beam; len == n
}{
	{"CD", 3, []float64{0.97, 0.93, 0.88}, []float64{0.40, 0.55, 0.70}},
	{"NG", 3, []float64{0.88, 0.62, 0.55}, []float64{0.85, 1.3, 1.5}},
	{"ZA", 2, []float64{0.48, 0.42}, []float64{1.8, 1.8}},
	{"IE", 2, []float64{0.40, 0.38}, []float64{1.8, 1.8}},
	{"ES", 3, []float64{0.35, 0.32, 0.30}, []float64{2.0, 2.0, 2.0}},
	{"GB", 2, []float64{0.42, 0.40}, []float64{1.9, 1.9}},
	{"DE", 1, []float64{0.45}, []float64{1.8}},
	{"FR", 1, []float64{0.40}, []float64{1.8}},
	{"IT", 1, []float64{0.38}, []float64{1.8}},
	{"SN", 1, []float64{0.70}, []float64{1.2}},
	{"CM", 1, []float64{0.80}, []float64{1.0}},
	{"GH", 1, []float64{0.72}, []float64{1.2}},
}

// Beams returns the full beam layout in a stable order with stable IDs.
func Beams() []Beam {
	var out []Beam
	id := 0
	for _, p := range beamPlan {
		if len(p.peakUtil) != p.n || len(p.pep) != p.n {
			panic(fmt.Sprintf("geo: malformed beam plan for %s", p.country))
		}
		for i := 0; i < p.n; i++ {
			out = append(out, Beam{ID: id, Country: p.country, TargetPeakUtil: p.peakUtil[i], PEPFactor: p.pep[i]})
			id++
		}
	}
	return out
}

// BeamsFor returns the beams covering a country.
func BeamsFor(code CountryCode) []Beam {
	var out []Beam
	for _, b := range Beams() {
		if b.Country == code {
			out = append(out, b)
		}
	}
	return out
}
