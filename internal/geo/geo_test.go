package geo

import (
	"testing"
	"time"
)

func country(t *testing.T, code CountryCode) Country {
	t.Helper()
	c, ok := ByCode(code)
	if !ok {
		t.Fatalf("country %s missing", code)
	}
	return c
}

func TestCountriesTable(t *testing.T) {
	all := Countries()
	if len(all) < 10 {
		t.Fatalf("only %d countries, want at least the top-10", len(all))
	}
	seen := map[CountryCode]bool{}
	for _, c := range all {
		if seen[c.Code] {
			t.Fatalf("duplicate country %s", c.Code)
		}
		seen[c.Code] = true
		if c.Name == "" {
			t.Fatalf("country %s has no name", c.Code)
		}
	}
	for _, code := range Top6() {
		if !seen[code] {
			t.Fatalf("top-6 country %s not in table", code)
		}
	}
	if _, ok := ByCode("XX"); ok {
		t.Fatal("unknown code resolved")
	}
}

func TestTop6Composition(t *testing.T) {
	af, eu := 0, 0
	for _, code := range Top6() {
		c := country(t, code)
		if c.Continent == Africa {
			af++
		} else {
			eu++
		}
	}
	if af != 3 || eu != 3 {
		t.Fatalf("top-6 has %d African and %d European countries, want 3+3", af, eu)
	}
}

func TestSubSatellitePointGeometry(t *testing.T) {
	s := Satellite{Lon: 9}
	if el := s.ElevationDeg(0, 9); el < 89.9 {
		t.Fatalf("elevation at sub-satellite point %.2f, want ~90", el)
	}
	if r := s.SlantRangeKm(0, 9); r < GEOAltitudeKm-1 || r > GEOAltitudeKm+1 {
		t.Fatalf("slant range at nadir %.1f km, want ~%v", r, GEOAltitudeKm)
	}
}

func TestNigeriaClosestToZenith(t *testing.T) {
	ng := country(t, "NG")
	ngEl := DefaultSatellite.ElevationDeg(ng.Lat, ng.Lon)
	for _, code := range Top6() {
		if code == "NG" {
			continue
		}
		c := country(t, code)
		if el := DefaultSatellite.ElevationDeg(c.Lat, c.Lon); el >= ngEl {
			t.Fatalf("%s elevation %.1f >= Nigeria's %.1f; paper §6.1 has Nigeria closest to zenith", code, el, ngEl)
		}
	}
	if ngEl < 75 {
		t.Fatalf("Nigeria elevation %.1f, want near-zenith", ngEl)
	}
}

func TestIrelandEdgeOfCoverage(t *testing.T) {
	ie := country(t, "IE")
	es := country(t, "ES")
	ieZ := DefaultSatellite.ZenithDeg(ie.Lat, ie.Lon)
	esZ := DefaultSatellite.ZenithDeg(es.Lat, es.Lon)
	if ieZ <= esZ {
		t.Fatalf("Ireland zenith angle %.1f <= Spain's %.1f", ieZ, esZ)
	}
}

func TestSlantRangeBounds(t *testing.T) {
	for _, c := range Countries() {
		r := DefaultSatellite.SlantRangeKm(c.Lat, c.Lon)
		if r < GEOAltitudeKm || r > 41700 {
			t.Fatalf("%s slant range %.0f km outside the physically possible band", c.Code, r)
		}
	}
}

func TestSegmentOneWayMatchesPaper(t *testing.T) {
	// §2.1: the CPE→satellite→ground-station pass accumulates 240-280 ms.
	for _, code := range Top6() {
		c := country(t, code)
		ow := DefaultSatellite.SegmentOneWay(c)
		if ow < 230*time.Millisecond || ow > 290*time.Millisecond {
			t.Fatalf("%s one-way segment delay %v outside 240-280 ms band", code, ow)
		}
	}
}

func TestSegmentRTTAbove480ms(t *testing.T) {
	// Four slant passes: the propagation floor under the ~550 ms RTT.
	for _, c := range Countries() {
		rtt := DefaultSatellite.SegmentRTT(c)
		if rtt < 470*time.Millisecond || rtt > 580*time.Millisecond {
			t.Fatalf("%s propagation RTT %v outside the GEO band", c.Code, rtt)
		}
	}
}

func TestElevationMonotoneWithLatitude(t *testing.T) {
	s := DefaultSatellite
	prev := 91.0
	for lat := 0.0; lat <= 70; lat += 5 {
		el := s.ElevationDeg(lat, s.Lon)
		if el >= prev {
			t.Fatalf("elevation not decreasing with latitude at %v", lat)
		}
		prev = el
	}
}

func TestBeamsLayout(t *testing.T) {
	beams := Beams()
	if len(beams) == 0 {
		t.Fatal("no beams")
	}
	seen := map[int]bool{}
	byCountry := map[CountryCode]int{}
	for _, b := range beams {
		if seen[b.ID] {
			t.Fatalf("duplicate beam id %d", b.ID)
		}
		seen[b.ID] = true
		if _, ok := ByCode(b.Country); !ok {
			t.Fatalf("beam %d covers unknown country %s", b.ID, b.Country)
		}
		if b.TargetPeakUtil <= 0 || b.TargetPeakUtil > 1 {
			t.Fatalf("beam %d peak util %v outside (0,1]", b.ID, b.TargetPeakUtil)
		}
		if b.PEPFactor <= 0 {
			t.Fatalf("beam %d PEP factor %v not positive", b.ID, b.PEPFactor)
		}
		byCountry[b.Country]++
	}
	for _, c := range Countries() {
		if byCountry[c.Code] == 0 {
			t.Fatalf("country %s has no beam coverage", c.Code)
		}
	}
	// §6.1 calibration: Congo's beams run hot and PEP-starved vs Spain's.
	for _, cd := range BeamsFor("CD") {
		for _, es := range BeamsFor("ES") {
			if cd.TargetPeakUtil <= es.TargetPeakUtil {
				t.Fatal("Congo beam not more utilized than Spain's")
			}
			if cd.PEPFactor >= es.PEPFactor {
				t.Fatal("Congo beam not more PEP-constrained than Spain's")
			}
		}
	}
}

func TestBeamsForUnknownCountry(t *testing.T) {
	if got := BeamsFor("XX"); len(got) != 0 {
		t.Fatalf("beams for unknown country: %v", got)
	}
}
