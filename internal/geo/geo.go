// Package geo models the geometry of the monitored SatCom deployment: the
// countries it serves, the ground segment, and the orbit model behind the
// Constellation interface. The default GEO backend is the paper's
// geostationary satellite, whose per-country slant paths put the floor
// under the 550 ms round trip the paper is named after; the LEO backend
// models a low-earth shell where the same quantities become functions of
// simulated time.
package geo

import (
	"math"
	"time"
)

// Physical constants of the GEO geometry.
const (
	EarthRadiusKm    = 6378.137 // equatorial radius
	GEOAltitudeKm    = 35786.0  // altitude above the equator
	GEOOrbitRadiusKm = EarthRadiusKm + GEOAltitudeKm
	LightSpeedKmPerS = 299792.458
)

// Continent identifies the two coverage regions of the satellite.
type Continent uint8

const (
	Europe Continent = iota
	Africa
)

func (c Continent) String() string {
	if c == Africa {
		return "Africa"
	}
	return "Europe"
}

// CountryCode is an ISO 3166-1 alpha-2 code.
type CountryCode string

// Country is a served market with the representative customer location used
// for link-geometry purposes.
type Country struct {
	Code      CountryCode
	Name      string
	Continent Continent
	Lat, Lon  float64 // representative customer centroid, degrees
	TZOffset  int     // hours ahead of UTC (no DST modeling)
}

// The served markets. The top-3 per continent (by the paper's Figures 4-11)
// are Congo, Nigeria, South Africa and Ireland, Spain, United Kingdom; the
// rest fill out the Figure 2/3 top-10 long tail.
var countries = []Country{
	{Code: "CD", Name: "Congo", Continent: Africa, Lat: -2.88, Lon: 23.65, TZOffset: 1},
	{Code: "NG", Name: "Nigeria", Continent: Africa, Lat: 9.08, Lon: 8.68, TZOffset: 1},
	{Code: "ZA", Name: "South Africa", Continent: Africa, Lat: -28.99, Lon: 24.66, TZOffset: 2},
	{Code: "IE", Name: "Ireland", Continent: Europe, Lat: 53.42, Lon: -8.24, TZOffset: 0},
	{Code: "ES", Name: "Spain", Continent: Europe, Lat: 40.42, Lon: -3.70, TZOffset: 1},
	{Code: "GB", Name: "U.K.", Continent: Europe, Lat: 54.00, Lon: -2.89, TZOffset: 0},
	{Code: "DE", Name: "Germany", Continent: Europe, Lat: 51.11, Lon: 10.45, TZOffset: 1},
	{Code: "FR", Name: "France", Continent: Europe, Lat: 46.60, Lon: 2.21, TZOffset: 1},
	{Code: "IT", Name: "Italy", Continent: Europe, Lat: 42.83, Lon: 12.83, TZOffset: 1},
	{Code: "SN", Name: "Senegal", Continent: Africa, Lat: 14.50, Lon: -14.45, TZOffset: 0},
	{Code: "CM", Name: "Cameroon", Continent: Africa, Lat: 5.69, Lon: 12.74, TZOffset: 1},
	{Code: "GH", Name: "Ghana", Continent: Africa, Lat: 7.95, Lon: -1.03, TZOffset: 0},
}

var byCode = func() map[CountryCode]Country {
	m := make(map[CountryCode]Country, len(countries))
	for _, c := range countries {
		m[c.Code] = c
	}
	return m
}()

// Countries returns all served markets in a stable order.
func Countries() []Country {
	out := make([]Country, len(countries))
	copy(out, countries)
	return out
}

// ByCode looks a country up by ISO code.
func ByCode(code CountryCode) (Country, bool) {
	c, ok := byCode[code]
	return c, ok
}

// Top6 returns the three European and three African countries the paper's
// detailed analysis focuses on, in the paper's presentation order.
func Top6() []CountryCode {
	return []CountryCode{"CD", "NG", "ZA", "IE", "ES", "GB"}
}

// GroundStation is the single gateway in Italy through which all traffic
// enters the internet (paper §2.1).
var GroundStation = struct {
	Lat, Lon float64
	Country  CountryCode
}{Lat: 45.07, Lon: 7.69, Country: "IT"}

// Satellite is a geostationary satellite parked at the given longitude.
// The deployment's satellite sits at 9°E, which places its sub-satellite
// point essentially on top of Nigeria — the reason the paper finds Nigeria
// enjoys the shortest slant path (§6.1).
type Satellite struct {
	Lon float64
}

// DefaultSatellite is the satellite used throughout the reproduction.
var DefaultSatellite = Satellite{Lon: 9.0}

// CentralAngle returns the geocentric angle (radians) between the earth
// station at (lat, lon) and the sub-satellite point.
func (s Satellite) CentralAngle(lat, lon float64) float64 {
	la := lat * math.Pi / 180
	dl := (lon - s.Lon) * math.Pi / 180
	c := math.Cos(la) * math.Cos(dl)
	return math.Acos(clamp(c, -1, 1))
}

// SlantRangeKm returns the distance from the earth station to the satellite.
func (s Satellite) SlantRangeKm(lat, lon float64) float64 {
	g := s.CentralAngle(lat, lon)
	re, r := EarthRadiusKm, GEOOrbitRadiusKm
	return math.Sqrt(re*re + r*r - 2*re*r*math.Cos(g))
}

// ElevationDeg returns the antenna elevation angle in degrees. Values near
// 90 mean the satellite is close to the zenith; values below ~10 mean the
// station sits at the edge of the coverage area (Ireland's case).
func (s Satellite) ElevationDeg(lat, lon float64) float64 {
	g := s.CentralAngle(lat, lon)
	sg := math.Sin(g)
	if sg == 0 {
		return 90
	}
	re, r := EarthRadiusKm, GEOOrbitRadiusKm
	e := math.Atan((math.Cos(g) - re/r) / sg)
	return e * 180 / math.Pi
}

// ZenithDeg returns the zenith angle (90 - elevation), the quantity the
// paper reasons with in §6.1.
func (s Satellite) ZenithDeg(lat, lon float64) float64 {
	return 90 - s.ElevationDeg(lat, lon)
}

// HopDelay returns the one-way propagation delay earth-station → satellite
// (a single pass of the slant path).
func (s Satellite) HopDelay(lat, lon float64) time.Duration {
	km := s.SlantRangeKm(lat, lon)
	return time.Duration(km / LightSpeedKmPerS * float64(time.Second))
}

// SegmentOneWay returns the one-way propagation delay CPE → satellite →
// ground station: the "traverses 35 786 km twice" of §2.1.
func (s Satellite) SegmentOneWay(c Country) time.Duration {
	return s.HopDelay(c.Lat, c.Lon) + s.HopDelay(GroundStation.Lat, GroundStation.Lon)
}

// SegmentRTT returns the propagation-only round trip CPE ↔ ground station
// (four passes of the slant path, 240–280 ms each way per the paper).
func (s Satellite) SegmentRTT(c Country) time.Duration {
	return 2 * s.SegmentOneWay(c)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
