package geo

import (
	"fmt"
	"math"
	"time"
)

// Constellation abstracts the orbit geometry of the access network: every
// quantity the simulator derives from "where is the satellite" is a method
// taking the served country and the simulated time. The GEO backend
// reproduces the paper's fixed 550 ms geometry; the LEO backend models a
// shell of moving satellites on deterministic seeded orbits.
//
// Determinism contract: every method must be a pure function of the
// backend's construction parameters (including its seed), the country and
// the simulated time — never of wall clocks, call order, or shared mutable
// state. The simulator calls these methods concurrently from its pass-B
// workers and relies on them for byte-identical output at any parallelism.
type Constellation interface {
	// Name is the stable identifier used on CLIs, in manifests and in
	// bench scenario names ("geo", "leo").
	Name() string
	// Static reports whether the geometry is time-invariant. The
	// simulator pre-computes per-country channels and propagation delays
	// for static backends and evaluates them per flow otherwise.
	Static() bool
	// SlantPasses is the number of slant-path traversals in one round
	// trip (4 for a bent-pipe: CPE→sat→gateway and back).
	SlantPasses() int
	// SegmentRTT returns the propagation-only round trip CPE ↔ gateway
	// for a country's representative customer at simulated time t.
	SegmentRTT(c Country, t time.Duration) time.Duration
	// ElevationDeg returns the antenna elevation toward the serving
	// satellite at t; ZenithDeg is its complement (90 − elevation).
	ElevationDeg(c Country, t time.Duration) float64
	ZenithDeg(c Country, t time.Duration) float64
	// EdgeFactorScale scales the per-country beam-edge factor (package
	// phy): 1 for fixed footprints whose edges are a fact of geography,
	// lower for steered spot beams that follow the user.
	EdgeFactorScale() float64
	// Gateway returns the index of the ground station serving the
	// country at t and the extra ground-segment RTT that gateway pays
	// relative to the primary one. A single-gateway backend returns
	// (0, 0) always; a diverse backend rotates customers across its
	// ground segment over the day.
	Gateway(c Country, t time.Duration) (id int, extra time.Duration)
}

// ConstellationNames lists the built-in backend names, in CLI help order.
func ConstellationNames() []string { return []string{"geo", "leo"} }

// ConstellationByName resolves a -constellation argument. The empty name
// selects GEO, matching the pre-constellation behaviour of the pipeline.
// The seed parameterizes seeded backends (LEO orbit phases); GEO ignores
// it.
func ConstellationByName(name string, seed uint64) (Constellation, error) {
	switch name {
	case "", "geo":
		return GEO{Sat: DefaultSatellite}, nil
	case "leo":
		return NewLEO(seed), nil
	}
	return nil, fmt.Errorf("geo: unknown constellation %q (have: geo, leo)", name)
}

// GEO is the paper's geometry behind the Constellation interface: one
// geostationary satellite, one gateway in Italy, time-invariant slant
// paths. Methods delegate to the closed-form Satellite math, so a GEO run
// is byte-identical to the pipeline before the interface existed.
type GEO struct {
	Sat Satellite
}

func (g GEO) Name() string             { return "geo" }
func (g GEO) Static() bool             { return true }
func (g GEO) SlantPasses() int         { return 4 }
func (g GEO) EdgeFactorScale() float64 { return 1 }

func (g GEO) SegmentRTT(c Country, _ time.Duration) time.Duration { return g.Sat.SegmentRTT(c) }

func (g GEO) ElevationDeg(c Country, _ time.Duration) float64 {
	return g.Sat.ElevationDeg(c.Lat, c.Lon)
}

func (g GEO) ZenithDeg(c Country, _ time.Duration) float64 { return g.Sat.ZenithDeg(c.Lat, c.Lon) }

func (g GEO) Gateway(Country, time.Duration) (int, time.Duration) { return 0, 0 }

// LEO models a dense low-earth-orbit shell (550 km, the altitude of the
// title's counterpoint constellations): there is always a satellite in
// view, the serving satellite drifts from rise to set over one pass
// period, and service hands over to the next riser at the pass boundary.
// The model is analytic rather than ephemeris-driven — the serving
// satellite's elevation follows the pass phase, and every per-country
// phase is derived from the constellation seed — which keeps each query a
// pure O(1) function of (seed, country, t).
type LEO struct {
	// Seed offsets every per-country orbit phase and gateway rotation.
	Seed uint64
	// AltitudeKm is the shell altitude.
	AltitudeKm float64
	// PassPeriod is the serving-satellite dwell: elevation rises from
	// MinElevDeg to MaxElevDeg and back over one period, then the next
	// satellite takes over.
	PassPeriod time.Duration
	// MinElevDeg/MaxElevDeg bound the serving satellite's elevation
	// (handover happens at MinElevDeg; MaxElevDeg is the mid-pass peak).
	MinElevDeg, MaxElevDeg float64
	// GatewayElevDeg is the fixed representative elevation of the
	// satellite↔gateway leg (gateways track whichever satellite serves
	// them; the leg's length barely varies).
	GatewayElevDeg float64
	// BaseDelay is the non-propagation floor of the segment RTT: CPE and
	// gateway processing plus uplink scheduling.
	BaseDelay time.Duration
	// EdgeDelay is the extra routing delay near the pass edges, where
	// the serving satellite is far and the path detours over extra
	// inter-satellite or ground hops. Applied ∝ edge³, so mid-pass flows
	// barely see it and flows near a handover approach the full value.
	EdgeDelay time.Duration
	// GatewayCount and GatewayPeriod describe the ground-segment
	// diversity: customers rotate across GatewayCount gateways, changing
	// every GatewayPeriod (phase-offset per country by the seed).
	GatewayCount  int
	GatewayPeriod time.Duration
	// GatewayStep is the extra ground RTT per step away from the primary
	// gateway (gateway i pays i × GatewayStep).
	GatewayStep time.Duration
}

// NewLEO returns the default LEO backend for the given seed: a 550 km
// shell with ~4-minute serving passes, a 15–60 ms segment RTT band, and
// three gateways rotated over the day.
func NewLEO(seed uint64) *LEO {
	return &LEO{
		Seed:           seed,
		AltitudeKm:     550,
		PassPeriod:     4 * time.Minute,
		MinElevDeg:     30,
		MaxElevDeg:     85,
		GatewayElevDeg: 40,
		BaseDelay:      7 * time.Millisecond,
		EdgeDelay:      20 * time.Millisecond,
		GatewayCount:   3,
		GatewayPeriod:  6 * time.Hour,
		GatewayStep:    5 * time.Millisecond,
	}
}

func (l *LEO) Name() string             { return "leo" }
func (l *LEO) Static() bool             { return false }
func (l *LEO) SlantPasses() int         { return 4 }
func (l *LEO) EdgeFactorScale() float64 { return 0.25 }

// phase returns the country's pass phase in [0,1): 0 just after a
// handover, 0.5 at the mid-pass elevation peak. Each country's orbit
// plane is offset by a seeded hash so handovers never align across
// markets.
func (l *LEO) phase(c Country, t time.Duration) float64 {
	p := l.PassPeriod
	if p <= 0 {
		p = 4 * time.Minute
	}
	off := time.Duration(mix64(l.Seed, string(c.Code)) % uint64(p))
	x := (t + off) % p
	return float64(x) / float64(p)
}

// ElevationDeg follows the serving satellite over the pass: MinElevDeg at
// the handover boundaries, MaxElevDeg at mid-pass.
func (l *LEO) ElevationDeg(c Country, t time.Duration) float64 {
	ph := l.phase(c, t)
	return l.MinElevDeg + (l.MaxElevDeg-l.MinElevDeg)*math.Sin(math.Pi*ph)
}

func (l *LEO) ZenithDeg(c Country, t time.Duration) float64 {
	return 90 - l.ElevationDeg(c, t)
}

// SegmentRTT is the propagation round trip through the serving satellite
// plus the processing floor and the pass-edge routing detour. With the
// default parameters it spans ~16 ms (mid-pass) to ~39 ms (handover
// boundary); the MAC access delay layered on top by the simulator brings
// the probe-visible satellite RTT into the 15–60 ms band the LEO
// measurement literature reports.
func (l *LEO) SegmentRTT(c Country, t time.Duration) time.Duration {
	up := slantRangeAtElevKm(l.ElevationDeg(c, t), l.AltitudeKm)
	down := slantRangeAtElevKm(l.GatewayElevDeg, l.AltitudeKm)
	prop := time.Duration(2 * (up + down) / LightSpeedKmPerS * float64(time.Second))
	edge := math.Abs(2*l.phase(c, t) - 1) // 0 mid-pass, 1 at the boundary
	detour := time.Duration(float64(l.EdgeDelay) * edge * edge * edge)
	return prop + l.BaseDelay + detour
}

// Gateway rotates the country across the ground segment: every
// GatewayPeriod the serving gateway advances (phase-offset per country by
// the seed), and each step away from the primary gateway adds GatewayStep
// of ground RTT.
func (l *LEO) Gateway(c Country, t time.Duration) (int, time.Duration) {
	n := l.GatewayCount
	if n <= 1 {
		return 0, 0
	}
	p := l.GatewayPeriod
	if p <= 0 {
		p = 6 * time.Hour
	}
	off := time.Duration(mix64(l.Seed^0x9e3779b97f4a7c15, string(c.Code)) % uint64(p))
	id := int(((t + off) / p) % time.Duration(n))
	return id, time.Duration(id) * l.GatewayStep
}

// slantRangeAtElevKm returns the station→satellite distance for a given
// elevation angle and shell altitude (spherical-earth geometry).
func slantRangeAtElevKm(elevDeg, altKm float64) float64 {
	el := elevDeg * math.Pi / 180
	re, r := EarthRadiusKm, EarthRadiusKm+altKm
	cos := math.Cos(el)
	return math.Sqrt(r*r-re*re*cos*cos) - re*math.Sin(el)
}

// mix64 hashes a seed and a label into a uniform 64-bit value (FNV-1a
// over the seed bytes then the label, finished with a splitmix64
// avalanche). Used to derive per-country orbit and gateway phases.
func mix64(seed uint64, label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
