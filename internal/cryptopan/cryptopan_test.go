package cryptopan

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func testKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

func newAnon(t *testing.T) *Anonymizer {
	t.Helper()
	a, err := New(testKey())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestKeyValidation(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := New(make([]byte, 33)); err == nil {
		t.Fatal("long key accepted")
	}
}

func TestDeterministicAndKeyed(t *testing.T) {
	a := newAnon(t)
	b := newAnon(t)
	addr := netip.MustParseAddr("10.20.30.40")
	if a.MustAnonymize(addr) != b.MustAnonymize(addr) {
		t.Fatal("same key produced different mappings")
	}
	otherKey := testKey()
	otherKey[0] ^= 0xff
	c, err := New(otherKey)
	if err != nil {
		t.Fatal(err)
	}
	if a.MustAnonymize(addr) == c.MustAnonymize(addr) {
		t.Fatal("different keys produced the same mapping")
	}
}

func TestRejectsIPv6(t *testing.T) {
	a := newAnon(t)
	if _, err := a.Anonymize(netip.MustParseAddr("::1")); err == nil {
		t.Fatal("IPv6 accepted")
	}
}

func commonPrefixLen(x, y netip.Addr) int {
	a, b := x.As4(), y.As4()
	for i := 0; i < 32; i++ {
		byteIdx, bit := i/8, 7-i%8
		if a[byteIdx]>>bit&1 != b[byteIdx]>>bit&1 {
			return i
		}
	}
	return 32
}

func TestPrefixPreservation(t *testing.T) {
	a := newAnon(t)
	pairs := []struct {
		x, y string
		want int
	}{
		{"10.1.2.3", "10.1.2.4", 29},   // differ in the low 3 bits
		{"10.1.2.3", "10.1.3.3", 23},   // differ at bit 23
		{"10.1.2.3", "11.1.2.3", 7},    // differ at bit 7
		{"192.168.0.1", "10.0.0.1", 0}, // differ at the first bit
	}
	for _, p := range pairs {
		x, y := netip.MustParseAddr(p.x), netip.MustParseAddr(p.y)
		if got := commonPrefixLen(x, y); got != p.want {
			t.Fatalf("test-case sanity: prefix(%s,%s)=%d, want %d", p.x, p.y, got, p.want)
		}
		ax, ay := a.MustAnonymize(x), a.MustAnonymize(y)
		if got := commonPrefixLen(ax, ay); got != p.want {
			t.Errorf("prefix(%s,%s): original %d bits, anonymized %d", p.x, p.y, p.want, got)
		}
	}
}

func TestPrefixPreservationProperty(t *testing.T) {
	a := newAnon(t)
	f := func(x, y [4]byte) bool {
		ax := a.MustAnonymize(netip.AddrFrom4(x))
		ay := a.MustAnonymize(netip.AddrFrom4(y))
		return commonPrefixLen(netip.AddrFrom4(x), netip.AddrFrom4(y)) ==
			commonPrefixLen(ax, ay)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBijectiveOnSample(t *testing.T) {
	a := newAnon(t)
	seen := map[netip.Addr]netip.Addr{}
	for i := 0; i < 4096; i++ {
		addr := netip.AddrFrom4([4]byte{byte(i >> 8), byte(i), byte(i * 13), byte(i * 29)})
		out := a.MustAnonymize(addr)
		if prev, dup := seen[out]; dup {
			t.Fatalf("collision: %v and %v both map to %v", prev, addr, out)
		}
		seen[out] = addr
	}
}

func TestActuallyAnonymizes(t *testing.T) {
	a := newAnon(t)
	same := 0
	for i := 0; i < 256; i++ {
		addr := netip.AddrFrom4([4]byte{byte(i), 10, 20, 30})
		if a.MustAnonymize(addr) == addr {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("%d/256 addresses mapped to themselves", same)
	}
}
