// Package cryptopan implements Crypto-PAn prefix-preserving IP address
// anonymization (Fan, Xu, Ammar, 2004), the algorithm the paper uses to
// anonymize customer addresses in real time (§2.3). Two addresses sharing a
// k-bit prefix map to anonymized addresses sharing exactly a k-bit prefix,
// so per-subnet (per-country) analyses survive anonymization.
package cryptopan

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"
	"net/netip"
)

// KeySize is the required key material length: 16 bytes of AES key plus
// 16 bytes of padding secret.
const KeySize = 32

// Anonymizer anonymizes IPv4 addresses with a fixed key. It is safe for
// concurrent use after construction.
type Anonymizer struct {
	block cipher.Block
	pad   [16]byte
	pad32 uint32
}

// New builds an Anonymizer from 32 bytes of key material.
func New(key []byte) (*Anonymizer, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("cryptopan: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, err
	}
	a := &Anonymizer{block: block}
	// The published algorithm first encrypts the second half of the key
	// to obtain the padding block.
	a.block.Encrypt(a.pad[:], key[16:32])
	a.pad32 = binary.BigEndian.Uint32(a.pad[:4])
	return a, nil
}

// Anonymize maps an IPv4 address prefix-preservingly.
func (a *Anonymizer) Anonymize(addr netip.Addr) (netip.Addr, error) {
	if !addr.Is4() {
		return netip.Addr{}, fmt.Errorf("cryptopan: %v is not IPv4", addr)
	}
	b := addr.As4()
	orig := binary.BigEndian.Uint32(b[:])

	var input, output [16]byte
	copy(input[:], a.pad[:])

	var otp uint32
	for pos := 0; pos < 32; pos++ {
		// First pos bits from the original address, the rest from the pad.
		var mask uint32
		if pos > 0 {
			mask = ^uint32(0) << (32 - pos)
		}
		mixed := orig&mask | a.pad32&^mask
		binary.BigEndian.PutUint32(input[:4], mixed)
		a.block.Encrypt(output[:], input[:])
		otp |= uint32(output[0]>>7) << (31 - pos)
	}
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], orig^otp)
	return netip.AddrFrom4(out), nil
}

// MustAnonymize is Anonymize for addresses already known to be IPv4.
func (a *Anonymizer) MustAnonymize(addr netip.Addr) netip.Addr {
	out, err := a.Anonymize(addr)
	if err != nil {
		panic(err)
	}
	return out
}
