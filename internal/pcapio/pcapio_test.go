package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	base := time.Unix(1650000000, 123456000).UTC()
	pkts := [][]byte{{1, 2, 3}, {4}, bytes.Repeat([]byte{0xaa}, 1500)}
	for i, p := range pkts {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Fatalf("link type %d", r.LinkType())
	}
	for i, want := range pkts {
		ts, data, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("packet %d mismatch", i)
		}
		wantTS := base.Add(time.Duration(i) * time.Second)
		if ts.Unix() != wantTS.Unix() || ts.Nanosecond()/1000 != wantTS.Nanosecond()/1000 {
			t.Fatalf("packet %d timestamp %v, want %v", i, ts, wantTS)
		}
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestEmptyCaptureIsValid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeEthernet)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Fatalf("link type %d", r.LinkType())
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBigEndianAndNanos(t *testing.T) {
	// Hand-build a big-endian nanosecond capture.
	var buf bytes.Buffer
	var h [24]byte
	binary.BigEndian.PutUint32(h[0:4], magicNanos)
	binary.BigEndian.PutUint16(h[4:6], versionMajor)
	binary.BigEndian.PutUint16(h[6:8], versionMinor)
	binary.BigEndian.PutUint32(h[16:20], 65535)
	binary.BigEndian.PutUint32(h[20:24], LinkTypeRaw)
	buf.Write(h[:])
	var rec [16]byte
	binary.BigEndian.PutUint32(rec[0:4], 1000)
	binary.BigEndian.PutUint32(rec[4:8], 999)
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec[:])
	buf.Write([]byte{7, 8})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ts, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ts.Unix() != 1000 || ts.Nanosecond() != 999 {
		t.Fatalf("nanosecond timestamp %v", ts)
	}
	if !bytes.Equal(data, []byte{7, 8}) {
		t.Fatal("data mismatch")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero magic accepted")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("truncated file header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("truncated packet data accepted")
	}
}

func TestImplausibleCaptureLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	if err := w.WritePacket(time.Unix(0, 0), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt caplen to exceed snaplen.
	binary.LittleEndian.PutUint32(raw[24+8:24+12], DefaultSnapLen+1)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil {
		t.Fatal("oversize caplen accepted")
	}
}

func TestOversizePacketRejected(t *testing.T) {
	w := NewWriter(io.Discard, LinkTypeRaw)
	if err := w.WritePacket(time.Unix(0, 0), make([]byte, DefaultSnapLen+1)); err == nil {
		t.Fatal("oversize packet accepted")
	}
}
