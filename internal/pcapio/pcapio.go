// Package pcapio reads and writes classic pcap capture files (the libpcap
// format, magic 0xa1b2c3d4) using only the standard library. The probe
// binaries use it to persist and replay synthesized packet traces.
//
// Traces are written with LINKTYPE_RAW (101): packets start directly at the
// IPv4 header, matching what package packet decodes.
package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

const (
	magicMicros = 0xa1b2c3d4
	magicNanos  = 0xa1b23c4d

	versionMajor = 2
	versionMinor = 4

	// LinkTypeRaw is LINKTYPE_RAW: packets begin with the IP header.
	LinkTypeRaw = 101
	// LinkTypeEthernet is LINKTYPE_ETHERNET.
	LinkTypeEthernet = 1
)

// DefaultSnapLen is the snapshot length written into file headers.
const DefaultSnapLen = 262144

// Writer writes a pcap file with microsecond timestamps.
type Writer struct {
	w        *bufio.Writer
	linkType uint32
	wroteHdr bool
}

// NewWriter creates a Writer emitting the given link type.
func NewWriter(w io.Writer, linkType uint32) *Writer {
	return &Writer{w: bufio.NewWriter(w), linkType: linkType}
}

func (w *Writer) writeHeader() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:4], magicMicros)
	binary.LittleEndian.PutUint16(h[4:6], versionMajor)
	binary.LittleEndian.PutUint16(h[6:8], versionMinor)
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(h[16:20], DefaultSnapLen)
	binary.LittleEndian.PutUint32(h[20:24], w.linkType)
	_, err := w.w.Write(h[:])
	return err
}

// WritePacket appends one packet with the given capture timestamp.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if !w.wroteHdr {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wroteHdr = true
	}
	if len(data) > DefaultSnapLen {
		return fmt.Errorf("pcapio: packet length %d exceeds snaplen", len(data))
	}
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(h[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(data)))
	if _, err := w.w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data)
	return err
}

// Flush flushes buffered output. Call it before closing the underlying file.
func (w *Writer) Flush() error {
	if !w.wroteHdr {
		// An empty capture is still a valid file with just the header.
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wroteHdr = true
	}
	return w.w.Flush()
}

// Reader reads a pcap file, accepting both endiannesses and both
// microsecond and nanosecond variants.
type Reader struct {
	r        *bufio.Reader
	order    binary.ByteOrder
	nanos    bool
	linkType uint32
	snapLen  uint32
}

// NewReader parses the file header and prepares to iterate packets.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var h [24]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return nil, fmt.Errorf("pcapio: reading file header: %w", err)
	}
	rd := &Reader{r: br}
	magicLE := binary.LittleEndian.Uint32(h[0:4])
	magicBE := binary.BigEndian.Uint32(h[0:4])
	switch {
	case magicLE == magicMicros:
		rd.order = binary.LittleEndian
	case magicLE == magicNanos:
		rd.order, rd.nanos = binary.LittleEndian, true
	case magicBE == magicMicros:
		rd.order = binary.BigEndian
	case magicBE == magicNanos:
		rd.order, rd.nanos = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("pcapio: bad magic %#x", magicLE)
	}
	if major := rd.order.Uint16(h[4:6]); major != versionMajor {
		return nil, fmt.Errorf("pcapio: unsupported version %d", major)
	}
	rd.snapLen = rd.order.Uint32(h[16:20])
	rd.linkType = rd.order.Uint32(h[20:24])
	return rd, nil
}

// LinkType returns the capture's link type.
func (r *Reader) LinkType() uint32 { return r.linkType }

// Next returns the next packet and its timestamp, or io.EOF at the end.
func (r *Reader) Next() (time.Time, []byte, error) {
	var h [16]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return time.Time{}, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return time.Time{}, nil, fmt.Errorf("pcapio: truncated record header")
		}
		return time.Time{}, nil, err
	}
	sec := r.order.Uint32(h[0:4])
	sub := r.order.Uint32(h[4:8])
	capLen := r.order.Uint32(h[8:12])
	origLen := r.order.Uint32(h[12:16])
	if capLen > r.snapLen || capLen > origLen {
		return time.Time{}, nil, fmt.Errorf("pcapio: implausible capture length %d", capLen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return time.Time{}, nil, fmt.Errorf("pcapio: truncated packet data: %w", err)
	}
	nanos := int64(sub) * 1000
	if r.nanos {
		nanos = int64(sub)
	}
	return time.Unix(int64(sec), nanos), data, nil
}
