package pcapio

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// FuzzReader: the reader must never panic or allocate absurdly on corrupt
// capture files.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf, LinkTypeRaw)
	w.WritePacket(time.Unix(1, 0), []byte{1, 2, 3, 4})
	w.WritePacket(time.Unix(2, 0), []byte{5})
	w.Flush()
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, _, err := r.Next()
			if err == io.EOF || err != nil {
				return
			}
		}
	})
}
