// Package pcapgen synthesizes small packet-level captures: every packet is
// fully encoded on the wire (IPv4/TCP/UDP with real TLS, HTTP, QUIC and
// DNS payloads), so a capture written here exercises the probe's complete
// decode path when replayed. The satgen binary uses it for demo captures;
// the tests use it to close the loop pcap → packet → tstat.
package pcapgen

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/dist"
	"satwatch/internal/dnssim"
	"satwatch/internal/packet"
	"satwatch/internal/pcapio"
)

// Options tune the generated capture.
type Options struct {
	// Flows is the number of application flows (HTTPS/HTTP/QUIC + one
	// DNS transaction each).
	Flows int
	Seed  uint64
	// Epoch is the capture start time.
	Epoch time.Time
}

// Stats summarizes what was written.
type Stats struct {
	Packets int
	Flows   int
	DNS     int
}

// Write produces the capture on w (LINKTYPE_RAW).
func Write(w io.Writer, opt Options) (Stats, error) {
	if opt.Flows <= 0 {
		opt.Flows = 10
	}
	if opt.Epoch.IsZero() {
		opt.Epoch = time.Date(2022, 2, 7, 9, 0, 0, 0, time.UTC)
	}
	r := dist.NewRand(opt.Seed)
	pw := pcapio.NewWriter(w, pcapio.LinkTypeRaw)
	var st Stats

	catalog := cdn.Catalog()
	now := opt.Epoch
	emit := func(ts time.Time, raw []byte) error {
		st.Packets++
		return pw.WritePacket(ts, raw)
	}

	for i := 0; i < opt.Flows; i++ {
		entry := catalog[r.IntN(len(catalog))]
		client := netip.AddrFrom4([4]byte{10, 16, byte(i / 250), byte(2 + i%250)})
		server := cdn.ServerAddr(entry.Domain, entry.Home, 0)
		domain := entry.FQDN(r)
		now = now.Add(time.Duration(50+r.IntN(400)) * time.Millisecond)

		// DNS lookup first.
		resolver, _ := dnssim.ByID(dnssim.ResolverGoogle)
		if err := writeDNS(emit, now, client, resolver.Addr, domain, server, uint16(i)); err != nil {
			return st, err
		}
		st.DNS++
		now = now.Add(25 * time.Millisecond)

		var err error
		switch entry.Proto {
		case cdn.AppHTTP:
			err = writeHTTP(emit, now, client, server, domain, r)
		case cdn.AppQUIC:
			err = writeQUIC(emit, now, client, server, domain, r)
		default:
			err = writeHTTPS(emit, now, client, server, domain, r)
		}
		if err != nil {
			return st, err
		}
		st.Flows++
	}
	return st, pw.Flush()
}

type emitFn func(time.Time, []byte) error

func writeDNS(emit emitFn, ts time.Time, client, resolver netip.Addr, domain string, answer netip.Addr, id uint16) error {
	q := &packet.DNS{ID: id, RD: true,
		Questions: []packet.DNSQuestion{{Name: domain, Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	qb, err := q.Encode()
	if err != nil {
		return err
	}
	resp := &packet.DNS{ID: id, QR: true, RA: true, Questions: q.Questions,
		Answers: []packet.DNSRR{{Name: domain, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: 300, Addr: answer}}}
	rb, err := resp.Encode()
	if err != nil {
		return err
	}
	sport := uint16(32000 + id)
	raw, err := packet.Serialize(qb,
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: client, Dst: resolver},
		&packet.UDP{SrcPort: sport, DstPort: 53})
	if err != nil {
		return err
	}
	if err := emit(ts, raw); err != nil {
		return err
	}
	raw, err = packet.Serialize(rb,
		&packet.IPv4{TTL: 60, Protocol: packet.ProtoUDP, Src: resolver, Dst: client},
		&packet.UDP{SrcPort: 53, DstPort: sport})
	if err != nil {
		return err
	}
	return emit(ts.Add(22*time.Millisecond), raw)
}

// tcpSeg emits one TCP segment.
func tcpSeg(emit emitFn, ts time.Time, src, dst netip.Addr, sport, dport uint16, seq, ack uint32, flags packet.TCPFlags, payload []byte) error {
	raw, err := packet.Serialize(payload,
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: src, Dst: dst},
		&packet.TCP{SrcPort: sport, DstPort: dport, Seq: seq, Ack: ack, Flags: flags, Window: 65535})
	if err != nil {
		return err
	}
	return emit(ts, raw)
}

func writeHTTPS(emit emitFn, ts time.Time, client, server netip.Addr, domain string, r *dist.Rand) error {
	sport := uint16(40000 + r.IntN(20000))
	g := 18 * time.Millisecond
	sat := 600 * time.Millisecond

	ch, err := (&packet.ClientHello{Version: packet.TLSVersion12, ServerName: domain}).Encode()
	if err != nil {
		return err
	}
	chRec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: ch}).Encode()
	if err != nil {
		return err
	}
	sh, err := (&packet.ServerHello{Version: packet.TLSVersion12, CipherSuite: 0xc02f}).Encode()
	if err != nil {
		return err
	}
	sh = append(sh, packet.OpaqueHandshake(packet.TLSHandshakeCertificate, 1200)...)
	shRec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: sh}).Encode()
	if err != nil {
		return err
	}
	cke := packet.OpaqueHandshake(packet.TLSHandshakeClientKeyExchange, 66)
	ckeRec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: cke}).Encode()
	if err != nil {
		return err
	}
	appRec, err := (&packet.TLSRecord{Type: packet.TLSRecordApplicationData, Version: packet.TLSVersion12, Payload: make([]byte, 1000)}).Encode()
	if err != nil {
		return err
	}

	steps := []struct {
		dt      time.Duration
		fromCli bool
		flags   packet.TCPFlags
		payload []byte
	}{
		{0, true, packet.FlagSYN, nil},
		{g, false, packet.FlagSYN | packet.FlagACK, nil},
		{g + time.Millisecond, true, packet.FlagACK, nil},
		{g + 2*time.Millisecond, true, packet.FlagACK | packet.FlagPSH, chRec},
		{2*g + 3*time.Millisecond, false, packet.FlagACK | packet.FlagPSH, shRec},
		{2*g + 3*time.Millisecond + sat, true, packet.FlagACK | packet.FlagPSH, ckeRec},
		{3*g + 4*time.Millisecond + sat, false, packet.FlagACK | packet.FlagPSH, appRec},
		{3*g + 40*time.Millisecond + sat, true, packet.FlagFIN | packet.FlagACK, nil},
		{4*g + 41*time.Millisecond + sat, false, packet.FlagFIN | packet.FlagACK, nil},
	}
	cliSeq, srvSeq := uint32(1), uint32(1)
	for _, s := range steps {
		var err error
		if s.fromCli {
			err = tcpSeg(emit, ts.Add(s.dt), client, server, sport, 443, cliSeq, srvSeq, s.flags, s.payload)
			cliSeq += uint32(len(s.payload))
		} else {
			err = tcpSeg(emit, ts.Add(s.dt), server, client, 443, sport, srvSeq, cliSeq, s.flags, s.payload)
			srvSeq += uint32(len(s.payload))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHTTP(emit emitFn, ts time.Time, client, server netip.Addr, domain string, r *dist.Rand) error {
	sport := uint16(40000 + r.IntN(20000))
	g := 16 * time.Millisecond
	req := (&packet.HTTPRequest{Method: "GET", Target: "/chunk.ts",
		Headers: []packet.HTTPHeader{{Name: "Host", Value: domain}}}).Encode()
	resp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 900\r\n\r\n")
	resp = append(resp, make([]byte, 900)...)

	if err := tcpSeg(emit, ts, client, server, sport, 80, 0, 0, packet.FlagSYN, nil); err != nil {
		return err
	}
	if err := tcpSeg(emit, ts.Add(g), server, client, 80, sport, 0, 1, packet.FlagSYN|packet.FlagACK, nil); err != nil {
		return err
	}
	if err := tcpSeg(emit, ts.Add(g+2*time.Millisecond), client, server, sport, 80, 1, 1, packet.FlagACK|packet.FlagPSH, req); err != nil {
		return err
	}
	if err := tcpSeg(emit, ts.Add(2*g+3*time.Millisecond), server, client, 80, sport, 1, 1+uint32(len(req)), packet.FlagACK|packet.FlagPSH, resp); err != nil {
		return err
	}
	if err := tcpSeg(emit, ts.Add(2*g+30*time.Millisecond), client, server, sport, 80, 1+uint32(len(req)), 1+uint32(len(resp)), packet.FlagFIN|packet.FlagACK, nil); err != nil {
		return err
	}
	return tcpSeg(emit, ts.Add(3*g+31*time.Millisecond), server, client, 80, sport, 1+uint32(len(resp)), 2+uint32(len(req)), packet.FlagFIN|packet.FlagACK, nil)
}

func writeQUIC(emit emitFn, ts time.Time, client, server netip.Addr, domain string, r *dist.Rand) error {
	sport := uint16(50000 + r.IntN(10000))
	hs, err := (&packet.ClientHello{Version: packet.TLSVersion12, ServerName: domain}).Encode()
	if err != nil {
		return err
	}
	dcid := make([]byte, 8)
	for i := range dcid {
		dcid[i] = byte(r.Uint64())
	}
	ini, err := (&packet.QUICInitial{Version: packet.QUICVersion1, DCID: dcid, CryptoPayload: hs}).Encode()
	if err != nil {
		return err
	}
	raw, err := packet.Serialize(ini,
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoUDP, Src: client, Dst: server},
		&packet.UDP{SrcPort: sport, DstPort: 443})
	if err != nil {
		return err
	}
	if err := emit(ts, raw); err != nil {
		return err
	}
	// Server response datagram (opaque).
	raw, err = packet.Serialize(make([]byte, 1200),
		&packet.IPv4{TTL: 60, Protocol: packet.ProtoUDP, Src: server, Dst: client},
		&packet.UDP{SrcPort: 443, DstPort: sport})
	if err != nil {
		return err
	}
	return emit(ts.Add(20*time.Millisecond), raw)
}

// Describe returns a one-line summary of generated stats.
func (s Stats) Describe() string {
	return fmt.Sprintf("%d packets, %d flows, %d DNS transactions", s.Packets, s.Flows, s.DNS)
}
