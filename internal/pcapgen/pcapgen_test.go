package pcapgen

import (
	"bytes"
	"io"
	"testing"
	"time"

	"satwatch/internal/pcapio"
	"satwatch/internal/tstat"
)

// TestCaptureRoundTripThroughProbe closes the full packet loop: synthesize
// a capture, read it back as pcap, decode every packet, and track it with
// the probe — the complete pipeline a real deployment would run.
func TestCaptureRoundTripThroughProbe(t *testing.T) {
	var buf bytes.Buffer
	st, err := Write(&buf, Options{Flows: 25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st.Flows != 25 || st.DNS != 25 {
		t.Fatalf("stats %+v", st)
	}
	if st.Packets < 25*5 {
		t.Fatalf("only %d packets", st.Packets)
	}

	rd, err := pcapio.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rd.LinkType() != pcapio.LinkTypeRaw {
		t.Fatalf("link type %d", rd.LinkType())
	}
	tr := tstat.NewTracker(tstat.Config{})
	var epoch time.Time
	n := 0
	for {
		ts, data, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if epoch.IsZero() {
			epoch = ts
		}
		if err := tr.FeedPacket(ts.Sub(epoch), data); err != nil {
			t.Fatalf("packet %d: %v", n, err)
		}
		n++
	}
	if n != st.Packets {
		t.Fatalf("replayed %d packets, wrote %d", n, st.Packets)
	}
	flows, dns := tr.Flush()
	if len(dns) != st.DNS {
		t.Fatalf("probe saw %d DNS transactions, want %d", len(dns), st.DNS)
	}
	// Application flows plus DNS flows.
	appFlows := 0
	withDomain := 0
	satRTT := 0
	for _, f := range flows {
		if f.Proto == tstat.ProtoDNS {
			continue
		}
		appFlows++
		if f.Domain != "" {
			withDomain++
		}
		if f.SatRTT > 500*time.Millisecond && f.SatRTT < 800*time.Millisecond {
			satRTT++
		}
	}
	if appFlows != st.Flows {
		t.Fatalf("probe saw %d app flows, want %d", appFlows, st.Flows)
	}
	if withDomain != appFlows {
		t.Fatalf("DPI named %d of %d app flows", withDomain, appFlows)
	}
	if satRTT == 0 {
		t.Fatal("no satellite RTT estimates from the TLS handshakes")
	}
	// DNS answers must match the servers the flows then contact.
	for _, d := range dns {
		if !d.Answer.IsValid() {
			t.Fatalf("DNS record for %q without answer", d.Query)
		}
		if d.ResponseTime != 22*time.Millisecond {
			t.Fatalf("response time %v", d.ResponseTime)
		}
	}
}

func TestCaptureDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if _, err := Write(&a, Options{Flows: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, Options{Flows: 8, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different captures")
	}
	var c bytes.Buffer
	if _, err := Write(&c, Options{Flows: 8, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical captures")
	}
}

func TestDefaultOptions(t *testing.T) {
	var buf bytes.Buffer
	st, err := Write(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Flows != 10 {
		t.Fatalf("default flows %d", st.Flows)
	}
	if st.Describe() == "" {
		t.Fatal("empty description")
	}
}
