// Package mac models the satellite data-link layer of the SatCom access
// network (§2.1 of the paper): a slotted-Aloha reservation channel for a
// CPE's first transmission, a TDMA frame scheduler that shares the uplink
// among active CPEs, and an ARQ loop that repairs the residual frame errors
// left by FEC (package phy).
//
// The package runs an honest slot-level discrete-event micro-simulation
// (package simtime) for a grid of (utilization, frame error rate) operating
// points and distills each run into an empirical access-delay distribution.
// The macro flow simulator then samples those distributions — this is what
// makes the satellite-segment RTT distributions of Figure 8 emerge from the
// MAC mechanism rather than from played-back numbers.
//
// Two standard stabilizations keep the contention channel from collapsing,
// as deployed DVB-RCS-style systems do: contenders transmit with
// probability min(1, R/n̂) where n̂ estimates the contender population
// (stabilized Aloha), and a CPE holds its reservation for a configurable
// number of frames after its queue drains so steady flows do not re-contend
// for every burst.
package mac

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"satwatch/internal/dist"
	"satwatch/internal/obs"
	"satwatch/internal/simtime"
	"satwatch/internal/trace"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mUplinkDelay = obs.NewHistogram("mac_uplink_access_delay_seconds",
		"Sampled uplink MAC access delay (contention + reservation + ARQ).", "seconds", obs.LatencyBuckets())
	mDownlinkDelay = obs.NewHistogram("mac_downlink_queue_delay_seconds",
		"Sampled downlink frame-alignment plus queueing delay.", "seconds", obs.LatencyBuckets())
	mBeamUtil = obs.NewHistogram("mac_beam_utilization_ratio",
		"Beam utilization observed at each uplink sample (flow-weighted).", "ratio", obs.RatioBuckets())
	mCellBuilds = obs.NewCounter("mac_cells_built_total",
		"Access-delay grid cells built by the slot-level micro-simulation.", "")
	mCellBuildTime = obs.NewTimer("mac_cell_build_seconds",
		"Wall time spent building access-delay grid cells (micro-simulation runs).")
)

// Params are the data-link dimensioning knobs.
type Params struct {
	// FrameDuration is the TDMA frame period.
	FrameDuration time.Duration
	// SlotsPerFrame is the number of traffic slots shared each frame.
	SlotsPerFrame int
	// ReservationSlots is the number of slotted-Aloha contention slots
	// per frame used by CPEs requesting capacity for a new burst.
	ReservationSlots int
	// NumCPE is the number of active terminals sharing the beam in the
	// micro-simulation.
	NumCPE int
	// HopRTT is the terminal↔scheduler control-loop round trip: a
	// reservation grant or an ARQ NAK needs a full bounce off the
	// satellite before the CPE learns about it.
	HopRTT time.Duration
	// HoldFrames is how many frames a CPE keeps its reservation open
	// after its transmit queue drains, avoiding re-contention for
	// closely spaced bursts.
	HoldFrames int
	// MaxARQRetries bounds ARQ recovery attempts per frame.
	MaxARQRetries int
	// SimFrames is the number of TDMA frames each micro-simulation runs.
	SimFrames int
	// Seed makes table construction reproducible.
	Seed uint64
}

// DefaultParams returns the dimensioning matched to the default GEO
// constellation backend (geo.Constellation "geo"): 45 ms superframes, 64
// traffic slots, 8 contention slots, a ~260 ms control loop (HopRTT — one
// bounce off the serving orbit plus processing; at GEO altitude that is
// the dominant term), and a ~0.9 s reservation hold. The mechanism itself
// — contention, reservation, ARQ over a shared beam — is orbit-agnostic;
// only the control-loop and frame timing follow the constellation.
func DefaultParams() Params {
	return Params{
		FrameDuration:    45 * time.Millisecond,
		SlotsPerFrame:    64,
		ReservationSlots: 8,
		NumCPE:           48,
		HopRTT:           260 * time.Millisecond,
		HoldFrames:       20,
		MaxARQRetries:    6,
		SimFrames:        2400,
		Seed:             0x5a7c0,
	}
}

// LEOParams returns the dimensioning matched to the LEO constellation
// backend: the same slot structure over much shorter frames (5 ms) and a
// ~10 ms control loop — a reservation grant or ARQ NAK bounces off a
// 550 km shell instead of a 35 786 km one — with a longer reservation
// hold (in frames) so steady flows still avoid re-contention. The
// simulator selects these automatically for `-constellation leo` when the
// config does not override the MAC explicitly.
func LEOParams() Params {
	p := DefaultParams()
	p.FrameDuration = 5 * time.Millisecond
	p.HopRTT = 10 * time.Millisecond
	p.HoldFrames = 40
	return p
}

// WithDefaults fills every zero field from DefaultParams, so a caller
// overriding only some knobs (say, FrameDuration) still gets a usable
// dimensioning instead of divide-by-zero slot math. Set MaxARQRetries
// negative to disable ARQ; zero means "default".
func (p Params) WithDefaults() Params {
	d := DefaultParams()
	if p.FrameDuration <= 0 {
		p.FrameDuration = d.FrameDuration
	}
	if p.SlotsPerFrame <= 0 {
		p.SlotsPerFrame = d.SlotsPerFrame
	}
	if p.ReservationSlots <= 0 {
		p.ReservationSlots = d.ReservationSlots
	}
	if p.NumCPE <= 0 {
		p.NumCPE = d.NumCPE
	}
	if p.HopRTT <= 0 {
		p.HopRTT = d.HopRTT
	}
	if p.HoldFrames <= 0 {
		p.HoldFrames = d.HoldFrames
	}
	if p.SimFrames <= 0 {
		p.SimFrames = d.SimFrames
	}
	if p.MaxARQRetries == 0 {
		p.MaxARQRetries = d.MaxARQRetries
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

// quantile levels retained from each micro-simulation run.
var tableLevels = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// SimulateAccessDelay runs the slot-level micro-simulation at the given
// offered utilization (fraction of SlotsPerFrame demanded on average) and
// residual frame error rate, and returns the empirical distribution of the
// uplink access delay: the time from a transmission request arriving at a
// CPE to its successful delivery to the scheduler, excluding propagation of
// the data itself (the caller adds slant-path delays).
func SimulateAccessDelay(p Params, util, fer float64, seed uint64) *dist.Empirical {
	p = p.WithDefaults()
	if util < 0.01 {
		util = 0.01
	}
	if util > 0.99 {
		util = 0.99
	}
	r := dist.NewRand(seed)
	var sched simtime.Scheduler

	type cpe struct {
		backlog    int  // queued slot-requests
		reserved   bool // holds an active capacity reservation
		contending bool // waiting to win a contention slot
		grant      bool // reservation grant in flight (control loop)
		holdUntil  int  // frame number the reservation is held through
	}
	cpes := make([]*cpe, p.NumCPE)
	for i := range cpes {
		cpes[i] = &cpe{}
	}

	// Each "request" is one slot's worth of payload. Poisson arrivals at
	// aggregate rate util*SlotsPerFrame per frame, spread over the CPEs.
	meanInterarrival := float64(p.FrameDuration) / (util * float64(p.SlotsPerFrame))

	type job struct {
		owner   *cpe
		arrived simtime.Stamp
	}
	var delays []time.Duration
	var queue []*job // FIFO across CPEs

	record := func(arrived, done simtime.Stamp, warmup simtime.Stamp) {
		if arrived >= warmup {
			delays = append(delays, time.Duration(done-arrived))
		}
	}
	warmup := simtime.Stamp(p.SimFrames/10) * simtime.Stamp(p.FrameDuration)

	var arrive func(now simtime.Stamp)
	arrive = func(now simtime.Stamp) {
		c := cpes[r.IntN(len(cpes))]
		if !c.reserved && !c.contending && !c.grant {
			c.contending = true
		}
		c.backlog++
		queue = append(queue, &job{owner: c, arrived: now})
		sched.After(time.Duration(r.Exponential(meanInterarrival)), arrive)
	}
	sched.After(time.Duration(r.Exponential(meanInterarrival)), arrive)

	frameNo := 0
	var frame func(now simtime.Stamp)
	frame = func(now simtime.Stamp) {
		frameNo++
		if frameNo > p.SimFrames {
			return
		}
		// Stabilized slotted-Aloha: contenders transmit with probability
		// R/n̂ and pick a random reservation slot; sole occupants win.
		var contenders []*cpe
		for _, c := range cpes {
			if c.contending {
				contenders = append(contenders, c)
			}
		}
		if n := len(contenders); n > 0 {
			pTx := 1.0
			if n > p.ReservationSlots {
				pTx = float64(p.ReservationSlots) / float64(n)
			}
			slotPick := make(map[int][]*cpe, p.ReservationSlots)
			for _, c := range contenders {
				if r.Bool(pTx) {
					s := r.IntN(p.ReservationSlots)
					slotPick[s] = append(slotPick[s], c)
				}
			}
			for _, cs := range slotPick {
				if len(cs) == 1 {
					winner := cs[0]
					winner.contending = false
					winner.grant = true
					// The grant arrives one control loop later.
					sched.After(p.HopRTT, func(simtime.Stamp) {
						winner.grant = false
						winner.reserved = true
					})
				}
				// Collisions retry next frame (contending stays set).
			}
		}
		// TDMA grants: serve up to SlotsPerFrame queued jobs whose owner
		// holds an active reservation, in FIFO order across CPEs.
		slotTime := simtime.Stamp(p.FrameDuration) / simtime.Stamp(p.SlotsPerFrame)
		granted := 0
		rest := queue[:0]
		for _, j := range queue {
			if granted < p.SlotsPerFrame && j.owner.reserved {
				granted++
				j.owner.backlog--
				j.owner.holdUntil = frameNo + p.HoldFrames
				// The transmission errors with probability fer; each ARQ
				// recovery costs a control loop plus the retx frame.
				done := now + slotTime
				for retries := 0; retries < p.MaxARQRetries && r.Bool(fer); retries++ {
					done += simtime.Stamp(p.HopRTT) + simtime.Stamp(p.FrameDuration)
				}
				record(j.arrived, done, warmup)
			} else {
				rest = append(rest, j)
			}
		}
		queue = rest
		// Close reservations whose hold expired with an empty queue.
		for _, c := range cpes {
			if c.reserved && c.backlog == 0 && frameNo > c.holdUntil {
				c.reserved = false
			}
			// A reservation that closed while traffic queued up again
			// must re-contend (arrival saw reserved=true at queue time).
			if !c.reserved && !c.grant && !c.contending && c.backlog > 0 {
				c.contending = true
			}
		}
		sched.After(p.FrameDuration, frame)
	}
	sched.After(p.FrameDuration, frame)

	deadline := simtime.Stamp(p.SimFrames+1) * simtime.Stamp(p.FrameDuration)
	sched.RunUntil(deadline)

	return distill(delays, p)
}

// distill reduces raw delay samples to an empirical quantile table.
func distill(delays []time.Duration, p Params) *dist.Empirical {
	if len(delays) == 0 {
		// Pathological (e.g. zero offered load): a flat half-frame.
		half := float64(p.FrameDuration) / 2
		e, _ := dist.NewEmpirical([]float64{0.25, 0.75}, []float64{half, half})
		return e
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	values := make([]float64, len(tableLevels))
	for i, q := range tableLevels {
		idx := int(q * float64(len(delays)-1))
		values[i] = float64(delays[idx])
	}
	// Enforce monotonicity against duplicate quantile collapses.
	for i := 1; i < len(values); i++ {
		if values[i] < values[i-1] {
			values[i] = values[i-1]
		}
	}
	e, err := dist.NewEmpirical(tableLevels, values)
	if err != nil {
		panic("mac: distill produced invalid empirical: " + err.Error())
	}
	return e
}

// Model interpolates access-delay distributions over a precomputed
// (utilization, FER) grid. Grid cells are pure functions of the
// dimensioning, so they live in a process-wide cache shared by every model
// with identical Params: a second Run (or a second Model) rebuilds
// nothing. Missing cells are built lazily on first touch — each cell
// independently, so two samplers needing different cells never serialize
// on each other — or all at once with Prebuild. Safe for concurrent use.
type Model struct {
	p     Params
	utils []float64
	fers  []float64

	// cells is the per-model fast path: a flat [len(utils)*len(fers)]
	// array of pointers resolved from the shared cache on first touch.
	cells []atomic.Pointer[dist.Empirical]
}

// cellKey identifies one grid cell in the process-wide cache by its full
// dimensioning and operating point.
type cellKey struct {
	p      Params
	ui, fi int
}

// cellEntry guards one shared cell: the first goroutine to need it builds
// it inside the once; concurrent builders of *other* cells proceed.
type cellEntry struct {
	once sync.Once
	e    *dist.Empirical
}

var sharedCells sync.Map // cellKey → *cellEntry

// NewModel builds an access-delay model over the standard grid. Zero
// fields of p are filled from DefaultParams (see Params.WithDefaults).
func NewModel(p Params) *Model {
	m := &Model{
		p:     p.WithDefaults(),
		utils: []float64{0.05, 0.20, 0.35, 0.50, 0.65, 0.78, 0.88, 0.94, 0.98},
		fers:  []float64{1e-5, 1e-3, 6e-3, 2.5e-2, 0.12},
	}
	m.cells = make([]atomic.Pointer[dist.Empirical], len(m.utils)*len(m.fers))
	return m
}

// Params returns the dimensioning the model was built with.
func (m *Model) Params() Params { return m.p }

// GridSize returns the number of (utilization, FER) cells in the grid.
func (m *Model) GridSize() int { return len(m.utils) * len(m.fers) }

// Prebuild constructs every grid cell not yet in the process-wide cache,
// using up to `workers` parallel builders (<=0 → GOMAXPROCS). Cells are
// deterministic functions of (Params, util, fer) alone, so build order and
// parallelism never affect sampled values; prebuilding only moves the
// micro-simulation cost off the sampling hot path, where a lazy build
// would stall every sampler needing that cell.
func (m *Model) Prebuild(workers int) {
	n := m.GridSize()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				m.cell(i/len(m.fers), i%len(m.fers))
			}
		}()
	}
	wg.Wait()
}

func nearestIdx(grid []float64, x float64) int {
	best, bd := 0, -1.0
	for i, g := range grid {
		d := g - x
		if d < 0 {
			d = -d
		}
		if bd < 0 || d < bd {
			best, bd = i, d
		}
	}
	return best
}

func (m *Model) cell(ui, fi int) *dist.Empirical {
	idx := ui*len(m.fers) + fi
	if c := m.cells[idx].Load(); c != nil {
		return c
	}
	v, _ := sharedCells.LoadOrStore(cellKey{p: m.p, ui: ui, fi: fi}, &cellEntry{})
	ce := v.(*cellEntry)
	ce.once.Do(func() {
		seed := m.p.Seed ^ uint64(ui*31+fi+1)*0x9e3779b97f4a7c15
		stop := mCellBuildTime.Start()
		ce.e = SimulateAccessDelay(m.p, m.utils[ui], m.fers[fi], seed)
		stop()
		mCellBuilds.Inc()
	})
	m.cells[idx].Store(ce.e)
	return ce.e
}

// SampleUplink draws one uplink access delay at the given beam utilization
// and frame error rate.
func (m *Model) SampleUplink(util, fer float64, r *dist.Rand) time.Duration {
	return m.SampleUplinkTraced(util, fer, r, nil)
}

// SampleUplinkTraced is SampleUplink recording a mac.uplink_access span
// with the operating-point inputs on fl (nil fl records nothing).
func (m *Model) SampleUplinkTraced(util, fer float64, r *dist.Rand, fl *trace.Flow) time.Duration {
	ui := nearestIdx(m.utils, util)
	fi := nearestIdx(m.fers, fer)
	d := time.Duration(m.cell(ui, fi).Sample(r))
	mUplinkDelay.ObserveDuration(d)
	mBeamUtil.Observe(util)
	if fl != nil {
		fl.Span(trace.SpanMACUplink, trace.SegSatellite, d, trace.Attrs{
			"util": util, "fer": fer, "grid_util": m.utils[ui], "grid_fer": m.fers[fi],
		})
	}
	return d
}

// SampleDownlink draws one downlink delay. The downlink is a broadcast
// channel with no contention: delay is frame alignment plus queueing that
// grows with utilization, plus ARQ recovery on frame errors.
func (m *Model) SampleDownlink(util, fer float64, r *dist.Rand) time.Duration {
	return m.SampleDownlinkTraced(util, fer, r, nil)
}

// SampleDownlinkTraced is SampleDownlink recording a mac.downlink_queue
// span with the operating-point inputs on fl (nil fl records nothing).
func (m *Model) SampleDownlinkTraced(util, fer float64, r *dist.Rand, fl *trace.Flow) time.Duration {
	if util > 0.98 {
		util = 0.98
	}
	if util < 0 {
		util = 0
	}
	frame := float64(m.p.FrameDuration)
	align := r.Float64() * frame / 2
	// M/D/1-style waiting time in units of frame service time.
	wait := frame * util / (2 * (1 - util))
	d := align + wait
	for retries := 0; retries < m.p.MaxARQRetries && r.Bool(fer); retries++ {
		d += float64(m.p.HopRTT) + frame
	}
	mDownlinkDelay.ObserveDuration(time.Duration(d))
	if fl != nil {
		fl.Span(trace.SpanMACDownlink, trace.SegSatellite, time.Duration(d), trace.Attrs{
			"util": util, "fer": fer,
		})
	}
	return time.Duration(d)
}

// QuantileUplink reports the q-quantile of the uplink access delay at an
// operating point, for tests and for Figure 8b's per-beam medians.
func (m *Model) QuantileUplink(util, fer, q float64) time.Duration {
	ui := nearestIdx(m.utils, util)
	fi := nearestIdx(m.fers, fer)
	return time.Duration(m.cell(ui, fi).Quantile(q))
}
