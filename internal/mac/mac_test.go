package mac

import (
	"io"
	"satwatch/internal/trace"
	"testing"
	"time"

	"satwatch/internal/dist"
)

// fastParams shrinks the micro-simulation for test runtime.
func fastParams() Params {
	p := DefaultParams()
	p.SimFrames = 600
	return p
}

func TestAccessDelayPositiveAndBounded(t *testing.T) {
	p := fastParams()
	e := SimulateAccessDelay(p, 0.5, 1e-3, 1)
	for _, q := range []float64{0.05, 0.5, 0.95} {
		d := time.Duration(e.Quantile(q))
		if d <= 0 {
			t.Fatalf("q%.2f delay %v not positive", q, d)
		}
		if d > 30*time.Second {
			t.Fatalf("q%.2f delay %v absurd", q, d)
		}
	}
}

func TestModerateLoadDelaysAreSmall(t *testing.T) {
	// With held reservations, steady-state access at moderate load should
	// be dominated by frame alignment: well under one control loop.
	p := fastParams()
	e := SimulateAccessDelay(p, 0.5, 1e-5, 2)
	if med := time.Duration(e.Quantile(0.5)); med > 150*time.Millisecond {
		t.Fatalf("median access delay %v at util 0.5, want < 150ms", med)
	}
}

func TestSparseTrafficPaysContention(t *testing.T) {
	// At very low utilization reservations expire between bursts, so the
	// tail pays slotted-Aloha plus the grant control loop (≥ HopRTT).
	p := fastParams()
	e := SimulateAccessDelay(p, 0.05, 1e-5, 3)
	if p95 := time.Duration(e.Quantile(0.95)); p95 < p.HopRTT {
		t.Fatalf("p95 %v at sparse load, want ≥ control loop %v", p95, p.HopRTT)
	}
}

func TestOverloadInflatesDelay(t *testing.T) {
	p := fastParams()
	low := SimulateAccessDelay(p, 0.5, 1e-5, 4)
	high := SimulateAccessDelay(p, 0.98, 1e-5, 4)
	if high.Quantile(0.9) <= low.Quantile(0.9) {
		t.Fatalf("p90 at util 0.98 (%v) not above util 0.5 (%v)",
			time.Duration(high.Quantile(0.9)), time.Duration(low.Quantile(0.9)))
	}
}

func TestHighFERInflatesTail(t *testing.T) {
	p := fastParams()
	clean := SimulateAccessDelay(p, 0.4, 1e-5, 5)
	dirty := SimulateAccessDelay(p, 0.4, 0.12, 5)
	if dirty.Quantile(0.95) <= clean.Quantile(0.95) {
		t.Fatal("FER 0.12 did not inflate the p95 access delay")
	}
	// One ARQ recovery costs at least a control loop.
	if gap := dirty.Quantile(0.99) - clean.Quantile(0.99); time.Duration(gap) < p.HopRTT/2 {
		t.Fatalf("p99 gap %v too small for ARQ recovery", time.Duration(gap))
	}
}

func TestSimulationDeterminism(t *testing.T) {
	p := fastParams()
	a := SimulateAccessDelay(p, 0.65, 1e-3, 77)
	b := SimulateAccessDelay(p, 0.65, 1e-3, 77)
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("same seed diverged at q%.1f", q)
		}
	}
}

func TestUtilClamping(t *testing.T) {
	p := fastParams()
	// Out-of-range utilizations must not hang or panic.
	if SimulateAccessDelay(p, -1, 1e-3, 6) == nil {
		t.Fatal("nil distribution for clamped low util")
	}
	if SimulateAccessDelay(p, 2, 1e-3, 7) == nil {
		t.Fatal("nil distribution for clamped high util")
	}
}

func TestModelSamplingAndCaching(t *testing.T) {
	p := fastParams()
	m := NewModel(p)
	r := dist.NewRand(9)
	d1 := m.SampleUplink(0.5, 1e-3, r)
	if d1 <= 0 {
		t.Fatalf("sample %v not positive", d1)
	}
	// Second call hits the cached cell; quantiles must be stable.
	q := m.QuantileUplink(0.5, 1e-3, 0.5)
	if q != m.QuantileUplink(0.5, 1e-3, 0.5) {
		t.Fatal("cached cell unstable")
	}
	if m.Params().SimFrames != p.SimFrames {
		t.Fatal("Params accessor broken")
	}
}

func TestDownlinkQueueingGrowsWithUtil(t *testing.T) {
	m := NewModel(fastParams())
	r1 := dist.NewRand(10)
	r2 := dist.NewRand(10)
	var lo, hi time.Duration
	for i := 0; i < 2000; i++ {
		lo += m.SampleDownlink(0.2, 1e-5, r1)
		hi += m.SampleDownlink(0.97, 1e-5, r2)
	}
	if hi <= lo*2 {
		t.Fatalf("downlink congestion too mild: mean(0.97)=%v vs mean(0.2)=%v", hi/2000, lo/2000)
	}
}

func TestDownlinkFERAddsControlLoops(t *testing.T) {
	m := NewModel(fastParams())
	r1 := dist.NewRand(11)
	r2 := dist.NewRand(11)
	var clean, dirty time.Duration
	for i := 0; i < 3000; i++ {
		clean += m.SampleDownlink(0.3, 0, r1)
		dirty += m.SampleDownlink(0.3, 0.12, r2)
	}
	if dirty <= clean {
		t.Fatal("downlink FER did not add delay")
	}
}

func TestDistillEmptyFallback(t *testing.T) {
	e := distill(nil, DefaultParams())
	if e == nil {
		t.Fatal("nil fallback distribution")
	}
	half := float64(DefaultParams().FrameDuration) / 2
	if e.Quantile(0.5) != half {
		t.Fatalf("fallback quantile %v, want %v", e.Quantile(0.5), half)
	}
}

func TestSampleUplinkTracedRecordsSpan(t *testing.T) {
	m := NewModel(fastParams())
	fl := trace.New(io.Discard, 1).Start(1, 0, 2)
	d := m.SampleUplinkTraced(0.5, 1e-5, dist.NewRand(7), fl)
	want := m.SampleUplink(0.5, 1e-5, dist.NewRand(7))
	if d != want {
		t.Fatalf("traced sample %v differs from untraced %v", d, want)
	}
	if len(fl.Spans) != 1 || fl.Spans[0].Name != trace.SpanMACUplink {
		t.Fatalf("expected one %s span, got %+v", trace.SpanMACUplink, fl.Spans)
	}
	s := fl.Spans[0]
	if s.Seg != trace.SegSatellite || s.DurMS != float64(d)/float64(time.Millisecond) {
		t.Fatalf("span wrong: %+v for delay %v", s, d)
	}
	if s.Attrs["util"] != 0.5 || s.Attrs["fer"] != 1e-5 {
		t.Fatalf("span missing inputs: %+v", s.Attrs)
	}
}

func TestSampleDownlinkTracedRecordsSpan(t *testing.T) {
	m := NewModel(fastParams())
	fl := trace.New(io.Discard, 1).Start(1, 0, 2)
	d := m.SampleDownlinkTraced(0.7, 1e-4, dist.NewRand(8), fl)
	if len(fl.Spans) != 1 || fl.Spans[0].Name != trace.SpanMACDownlink {
		t.Fatalf("expected one %s span, got %+v", trace.SpanMACDownlink, fl.Spans)
	}
	if fl.Spans[0].DurMS != float64(d)/float64(time.Millisecond) {
		t.Fatalf("span duration %v vs delay %v", fl.Spans[0].DurMS, d)
	}
}

// TestPartialParamsGetDefaults regresses the divide-by-zero crash: a
// caller overriding only some knobs (here FrameDuration) used to leave
// SlotsPerFrame zero and panic inside the micro-simulation.
func TestPartialParamsGetDefaults(t *testing.T) {
	p := Params{FrameDuration: 30 * time.Millisecond, SimFrames: 600}
	e := SimulateAccessDelay(p, 0.5, 1e-3, 3)
	if e == nil || e.Quantile(0.5) <= 0 {
		t.Fatal("partial params produced no usable distribution")
	}
	m := NewModel(Params{FrameDuration: 30 * time.Millisecond, SimFrames: 600})
	if d := m.SampleUplink(0.5, 1e-3, dist.NewRand(3)); d <= 0 {
		t.Fatalf("partial-params model sampled %v", d)
	}
	eff := m.Params()
	if eff.FrameDuration != 30*time.Millisecond {
		t.Fatalf("override lost: FrameDuration %v", eff.FrameDuration)
	}
	if eff.SlotsPerFrame != DefaultParams().SlotsPerFrame {
		t.Fatalf("SlotsPerFrame not defaulted: %d", eff.SlotsPerFrame)
	}
}

// TestWithDefaultsSemantics pins the two special fields: zero means
// "default" for MaxARQRetries (use negative to disable ARQ) and Seed.
func TestWithDefaultsSemantics(t *testing.T) {
	eff := Params{}.WithDefaults()
	if eff != DefaultParams() {
		t.Fatalf("zero params != DefaultParams: %+v", eff)
	}
	noARQ := Params{MaxARQRetries: -1}.WithDefaults()
	if noARQ.MaxARQRetries != -1 {
		t.Fatalf("negative MaxARQRetries overwritten: %d", noARQ.MaxARQRetries)
	}
}

// TestPrebuildWarmsFullGrid checks Prebuild leaves no cell to be built
// lazily and that sampling afterwards agrees with lazy building.
func TestPrebuildWarmsFullGrid(t *testing.T) {
	p := fastParams()
	p.SimFrames = 300
	p.Seed = 0xfeed1 // distinct Params → fresh process-wide cache entries
	warm := NewModel(p)
	warm.Prebuild(4)
	lazy := NewModel(p)
	for _, u := range []float64{0.05, 0.65, 0.98} {
		for _, f := range []float64{1e-5, 1e-2, 0.12} {
			if warm.QuantileUplink(u, f, 0.5) != lazy.QuantileUplink(u, f, 0.5) {
				t.Fatalf("prebuilt cell (%v,%v) differs from lazy build", u, f)
			}
		}
	}
	if warm.GridSize() <= 0 {
		t.Fatal("grid size not reported")
	}
}
