package services

import "testing"

func TestClassification(t *testing.T) {
	cases := []struct {
		domain  string
		service string
		cat     Category
	}{
		{"open.spotify.com", "Spotify", CategoryAudio},
		{"audio4-fa.scdn.com", "Spotify", CategoryAudio},
		{"rr4---sn-h5q7dnz7.googlevideo.com", "Youtube", CategoryVideo},
		{"i9.ytimg.com", "Youtube", CategoryVideo},
		{"www.youtube.com", "Youtube", CategoryVideo},
		{"api-global.netflix.com", "Netflix", CategoryVideo},
		{"ipv4-c001-mrs001-ix.1.oca.nflxvideo.net", "Netflix", CategoryVideo},
		{"assets.nflxext.com", "Netflix", CategoryVideo},
		{"ocsp.sky.com", "Sky", CategoryVideo},
		{"atv-ps-eu.amazon.com", "Primevideo", CategoryVideo},
		{"www.primevideo.com", "Primevideo", CategoryVideo},
		{"www.facebook.com", "Facebook", CategorySocial},
		{"scontent-mxp1-1.xx.fbcdn.net", "Facebook", CategorySocial},
		{"api.twitter.com", "Twitter", CategorySocial},
		{"pbs.twimg.com", "Twitter", CategorySocial},
		{"www.linkedin.com", "Linkedin", CategorySocial},
		{"media.licdn.com", "Linkedin", CategorySocial},
		{"i.instagram.com", "Instagram", CategorySocial},
		{"scontent.cdninstagram.com", "Instagram", CategorySocial},
		{"m.tiktok.com", "Tiktok", CategorySocial},
		{"v16-webapp.tiktokv.com", "Tiktok", CategorySocial},
		{"p16-sign-va.tiktokcdn.com", "Tiktok", CategorySocial},
		{"www.google.com", "Google", CategorySearch},
		{"google.es", "Google", CategorySearch},
		{"www.bing.com", "Bing", CategorySearch},
		{"search.yahoo.com", "Yahoo", CategorySearch},
		{"links.duckduckgo.com", "Duckduck", CategorySearch},
		{"e1.whatsapp.net", "Whatsapp", CategoryChat},
		{"web.whatsapp.com", "Whatsapp", CategoryChat},
		{"web.telegram.org", "Telegram", CategoryChat},
		{"telegram.org", "Telegram", CategoryChat},
		{"app.snapchat.com", "Snapchat", CategoryChat},
		{"feelinsonice-hrd.appspot.com", "Snapchat", CategoryChat},
		{"web.wechat.com", "Wechat", CategoryChat},
		{"short.weixin.qq.com", "Wechat", CategoryChat},
		{"edge.skype.com", "Skype", CategoryChat},
		{"contoso.sharepoint.com", "Office365", CategoryWork},
		{"outlook.office365.com", "Office365", CategoryWork},
		{"teams.microsoft.com", "Office365", CategoryWork},
		{"www.dropbox.com", "Dropbox", CategoryWork},
		{"dl.dropboxusercontent.com", "Dropbox", CategoryWork},
	}
	for _, c := range cases {
		s, ok := Classify(c.domain)
		if !ok {
			t.Errorf("%s: unclassified, want %s", c.domain, c.service)
			continue
		}
		if s.Name != c.service || s.Category != c.cat {
			t.Errorf("%s: got %s/%s, want %s/%s", c.domain, s.Name, s.Category, c.service, c.cat)
		}
	}
}

func TestUnknownDomains(t *testing.T) {
	for _, d := range []string{"example.com", "uam.es", "polito.it", "cdn.operator.example"} {
		if s, ok := Classify(d); ok {
			t.Errorf("%s classified as %s", d, s.Name)
		}
		if ClassifyCategory(d) != "" {
			t.Errorf("%s got a category", d)
		}
	}
}

func TestSkypeBeatsOffice365(t *testing.T) {
	// Office365's pattern list includes "skype"-related names; the Skype
	// service must win by declaration order so chat stays chat.
	s, ok := Classify("edge.skype.com")
	if !ok || s.Name != "Skype" {
		t.Fatalf("edge.skype.com classified as %v", s)
	}
}

func TestCaseInsensitiveAndTrailingDot(t *testing.T) {
	s, ok := Classify("WWW.GOOGLE.COM.")
	if !ok || s.Name != "Google" {
		t.Fatalf("uppercase domain: %v", s)
	}
}

func TestNoFalseSubstringMatches(t *testing.T) {
	// Anchored patterns must not match look-alike domains.
	for _, d := range []string{
		"notsky.com",            // .sky.com$ must not match
		"fakegooglevideo.co.ev", // googlevideo.com$ must not match
		"mytelegram.org.evil.com",
	} {
		if s, ok := Classify(d); ok {
			t.Errorf("%s wrongly classified as %s", d, s.Name)
		}
	}
}

func TestIntentionalList(t *testing.T) {
	got := Intentional()
	if len(got) != 12 {
		t.Fatalf("%d intentional services, want the 12 Figure-6 rows", len(got))
	}
	if got[0].Name != "Google" || got[11].Name != "Dropbox" {
		t.Fatal("Figure 6 row order broken")
	}
	for _, s := range got {
		if !s.Intentional {
			t.Errorf("%s in Intentional() but not flagged", s.Name)
		}
	}
	// YouTube and Facebook appear mostly as third parties (§5).
	for _, name := range []string{"Youtube", "Facebook"} {
		s, _ := ByName(name)
		if s.Intentional {
			t.Errorf("%s flagged intentional", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Nope"); ok {
		t.Fatal("unknown service resolved")
	}
	s, ok := ByName("Netflix")
	if !ok || s.Category != CategoryVideo {
		t.Fatal("Netflix lookup broken")
	}
}

func TestCategories(t *testing.T) {
	if len(Categories()) != 6 {
		t.Fatalf("%d categories, want 6", len(Categories()))
	}
}

func TestSecondLevel(t *testing.T) {
	cases := map[string]string{
		"www.google.com":          "google.com",
		"a.b.c.nflxvideo.net":     "nflxvideo.net",
		"news.bbc.co.uk":          "bbc.co.uk",
		"shop.example.co.za":      "example.co.za",
		"portal.something.com.ng": "something.com.ng",
		"google.com":              "google.com",
		"localhost":               "localhost",
		"WWW.Example.COM.":        "example.com",
		"static.xx.fbcdn.net":     "fbcdn.net",
		"edge-mqtt.facebook.com":  "facebook.com",
	}
	for in, want := range cases {
		if got := SecondLevel(in); got != want {
			t.Errorf("SecondLevel(%q)=%q, want %q", in, got, want)
		}
	}
}
