// Package services classifies server domain names into the services and
// categories of the paper's Appendix A (Table 3). The regular expressions
// are the paper's, normalized to Go syntax with literal dots escaped; the
// classification is by first match in declaration order, so e.g. Skype
// domains resolve to the Skype chat service before Office365's broader
// "skype" pattern can claim them.
//
// The classification feeds two consumers. The analytics side maps each
// tstat flow record's DPI-named domain to a service, producing the
// per-service popularity heatmap (Figure 6) and the per-category volume
// boxplots (Figure 7). The workload side uses the same table in reverse,
// sampling the domains each archetype visits so that synthesized traffic
// classifies back to the paper's penetration matrix. Each Service carries
// an Intentional flag separating deliberately visited services (the
// Figure 6 rows) from ones that mostly appear as embedded third parties
// (YouTube players, Facebook buttons), which the paper excludes from the
// popularity analysis; Classify matches any of them.
package services

import (
	"regexp"
	"strings"
)

// Category is a service category of §3.1.
type Category string

// The six categories the paper analyzes.
const (
	CategoryAudio  Category = "Audio"
	CategoryVideo  Category = "Video"
	CategorySocial Category = "Social"
	CategorySearch Category = "Search engine"
	CategoryChat   Category = "Chat"
	CategoryWork   Category = "Work"
)

// Categories lists all categories in the paper's presentation order.
func Categories() []Category {
	return []Category{CategoryAudio, CategoryChat, CategorySearch, CategorySocial, CategoryVideo, CategoryWork}
}

// Service is one classified service.
type Service struct {
	Name     string
	Category Category
	// Intentional marks services whose domains the paper considers
	// deliberately visited (the Figure 6 rows); services that commonly
	// appear as third parties (YouTube embeds, Facebook buttons) are not.
	Intentional bool

	patterns []*regexp.Regexp
	raw      []string
}

// Patterns returns the service's regular expressions as written (the
// paper's Table 3 column).
func (s *Service) Patterns() []string {
	out := make([]string, len(s.raw))
	copy(out, s.raw)
	return out
}

// Match reports whether domain belongs to this service.
func (s *Service) Match(domain string) bool {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	for _, re := range s.patterns {
		if re.MatchString(domain) {
			return true
		}
	}
	return false
}

func svc(name string, cat Category, intentional bool, patterns ...string) *Service {
	s := &Service{Name: name, Category: cat, Intentional: intentional, raw: patterns}
	for _, p := range patterns {
		s.patterns = append(s.patterns, regexp.MustCompile(p))
	}
	return s
}

// registry is Table 3 in declaration (priority) order.
var registry = []*Service{
	svc("Spotify", CategoryAudio, true, `spotify\.com$`, `\.scdn\.com$`),
	svc("Youtube", CategoryVideo, false, `googlevideo\.com$`, `\.ytimg\.com$`, `\.youtube\.com$`,
		`\.gvt1\.com$`, `\.gvt2\.com$`, `\.youtube-nocookie\.com$`),
	svc("Netflix", CategoryVideo, true, `netflix`, `nflxext\.`, `nflximg`, `nflxvideo`, `nflxso\.`),
	svc("Sky", CategoryVideo, true, `\.sky\.com$`),
	svc("Primevideo", CategoryVideo, true, `amazonvideo\.com$`, `primevideo\.com$`, `pv-cdn\.net$`,
		`atv-ps\.amazon\.com$`, `atv-ext\.amazon\.com$`, `atv-ext-eu\.amazon\.com$`,
		`atv-ext-fe\.amazon\.com$`, `atv-ps-eu\.amazon`, `atv-ps-fe\.amazon`),
	svc("Facebook", CategorySocial, false, `facebook\.com$`, `fbcdn\.net$`, `facebook\.net$`,
		`^fbcdn`, `^fbstatic`, `^fbexternal`, `fbsbx\.com$`, `fb\.com$`),
	svc("Twitter", CategorySocial, false, `\.twitter`, `\.twimg`, `^twitter\.com$`,
		`twitter\.com\.edgesuite\.net`, `twitter-any\.s3\.amazonaws\.com`, `twitter-blog\.s3\.amazonaws\.com`),
	svc("Linkedin", CategorySocial, false, `linkedin\.com$`, `licdn\.com$`, `lnkd\.in$`),
	svc("Instagram", CategorySocial, true, `\.instagram\.com$`, `cdninstagram\.com$`, `^igcdn`),
	svc("Tiktok", CategorySocial, true, `tiktok\.com$`, `tiktokcdn`, `tiktokv\.com$`),
	svc("Google", CategorySearch, true, `^www\.google`, `^google\.`),
	svc("Bing", CategorySearch, false, `bing\.com$`),
	svc("Yahoo", CategorySearch, false, `\.yahoo\.com$`, `\.yahoo\.net$`, `\.yimg\.com$`),
	svc("Duckduck", CategorySearch, false, `\.duckduckgo\.`),
	svc("Whatsapp", CategoryChat, true, `\.whatsapp\.com$`, `\.whatsapp\.net$`),
	svc("Telegram", CategoryChat, true, `\.telegram\.org$`, `^telegram\.org$`),
	svc("Snapchat", CategoryChat, true, `\.snapchat\.com$`, `feelinsonice\.appspot\.com$`,
		`feelinsonice-hrd\.appspot\.com$`, `feelinsonice\.l\.google\.com$`),
	svc("Wechat", CategoryChat, true, `wechat\.com$`, `weixin\.qq\.com$`, `wxs\.qq\.com$`),
	svc("Skype", CategoryChat, false, `skypeassets\.com$`, `\.skype\.com$`, `\.skype\.net$`),
	svc("Office365", CategoryWork, false, `sharepoint\.com$`, `office\.net$`, `onenote\.com$`,
		`office365\.com$`, `office\.com$`, `teams\.microsoft`, `teams\.office`, `lync`, `live\.com$`),
	svc("Gsuite", CategoryWork, false, `googledrive\.com$`, `\.drive\.google\.com$`, `\.docs\.google\.com$`,
		`\.sheets\.google\.com$`, `\.slides\.google\.com$`, `\.takeout\.google\.com$`),
	svc("Dropbox", CategoryWork, true, `dropbox`, `db\.tt$`),
}

// Services returns the full registry in priority order.
func Services() []*Service { return registry }

// ByName looks a service up by name.
func ByName(name string) (*Service, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}

// Intentional returns the Figure 6 services in the paper's row order.
func Intentional() []*Service {
	order := []string{"Google", "Whatsapp", "Snapchat", "Wechat", "Telegram",
		"Instagram", "Tiktok", "Netflix", "Primevideo", "Sky", "Spotify", "Dropbox"}
	out := make([]*Service, 0, len(order))
	for _, n := range order {
		s, ok := ByName(n)
		if !ok {
			panic("services: intentional service " + n + " missing from registry")
		}
		out = append(out, s)
	}
	return out
}

// Classify maps a domain to its service, by first match. ok is false for
// domains belonging to none of the tracked services.
func Classify(domain string) (service *Service, ok bool) {
	for _, s := range registry {
		if s.Match(domain) {
			return s, true
		}
	}
	return nil, false
}

// ClassifyCategory returns just the category of a domain, or "" when the
// domain matches no tracked service.
func ClassifyCategory(domain string) Category {
	if s, ok := Classify(domain); ok {
		return s.Category
	}
	return ""
}

// SecondLevel returns the second-level registrable domain of a FQDN,
// handling the common two-label public suffixes the deployment sees
// (co.uk, co.za, com.ng, ...), per the paper's footnote 6.
func SecondLevel(domain string) string {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	labels := strings.Split(domain, ".")
	if len(labels) <= 2 {
		return domain
	}
	tld := labels[len(labels)-1]
	sld := labels[len(labels)-2]
	twoLabelSuffix := map[string]bool{
		"co": true, "com": true, "org": true, "net": true, "ac": true, "gov": true,
	}
	if len(sld) <= 3 && twoLabelSuffix[sld] && len(tld) == 2 {
		if len(labels) >= 3 {
			return strings.Join(labels[len(labels)-3:], ".")
		}
	}
	return strings.Join(labels[len(labels)-2:], ".")
}
