package tcpmodel

import (
	"testing"
	"time"
)

func TestHandshakeTiming(t *testing.T) {
	p := DefaultParams(100*time.Millisecond, 1e6)
	tl := Compute(0, p)
	if tl.HandshakeDone != 100*time.Millisecond {
		t.Fatalf("handshake at %v, want 1 RTT", tl.HandshakeDone)
	}
	if tl.LastData != tl.FirstData {
		t.Fatal("empty transfer has data duration")
	}
}

func TestSmallFlowDominatedByRTT(t *testing.T) {
	// 15 KB at 12.5 MB/s with 100 ms RTT: ~11 segments, two rounds;
	// time is RTT-bound, not rate-bound.
	p := DefaultParams(100*time.Millisecond, 12.5e6)
	tl := Compute(15_000, p)
	if tl.Rounds < 2 {
		t.Fatalf("%d rounds, want ≥2 (IW10 can't carry 11 segments)", tl.Rounds)
	}
	if d := tl.LastData - tl.HandshakeDone; d > 500*time.Millisecond {
		t.Fatalf("small flow took %v", d)
	}
	// Rate floor: at 12.5 MB/s, 15 KB takes 1.2 ms; RTT effects dominate.
	if g := GoodputBps(15_000, tl); g > 12.5e6/4 {
		t.Fatalf("small flow reached %v B/s — slow start should prevent that", g)
	}
}

func TestLargeFlowReachesBottleneck(t *testing.T) {
	// 50 MB at 1.25 MB/s (a 10 Mb/s plan): the flow must saturate the
	// plan, so goodput lands within a few percent of the bottleneck.
	p := DefaultParams(600*time.Millisecond, 1.25e6)
	n := int64(50 << 20)
	tl := Compute(n, p)
	g := GoodputBps(n, tl)
	if g < 1.25e6*0.90 || g > 1.25e6*1.01 {
		t.Fatalf("goodput %v B/s, want ≈1.25e6", g)
	}
}

func TestHigherPlanFasterTransfer(t *testing.T) {
	n := int64(20 << 20)
	slow := Compute(n, DefaultParams(600*time.Millisecond, 10e6/8))
	fast := Compute(n, DefaultParams(600*time.Millisecond, 100e6/8))
	if fast.Duration() >= slow.Duration() {
		t.Fatalf("100 Mb/s (%v) not faster than 10 Mb/s (%v)", fast.Duration(), slow.Duration())
	}
}

func TestLongerRTTSlowsSlowStart(t *testing.T) {
	n := int64(1 << 20) // 1 MB: still window-bound
	near := Compute(n, DefaultParams(20*time.Millisecond, 12.5e6))
	far := Compute(n, DefaultParams(600*time.Millisecond, 12.5e6))
	if far.Duration() <= near.Duration() {
		t.Fatal("long RTT did not slow a window-bound flow")
	}
}

func TestSegmentsCount(t *testing.T) {
	p := DefaultParams(100*time.Millisecond, 1e6)
	tl := Compute(MSS*10+1, p)
	if tl.Segments != 11 {
		t.Fatalf("%d segments, want 11", tl.Segments)
	}
}

func TestPEPBufferClampsEarly(t *testing.T) {
	// With a tiny PEP buffer the transfer hits rate-limited mode almost
	// immediately, so a big-buffer run finishes the window-bound phase
	// faster or equal.
	n := int64(10 << 20)
	small := DefaultParams(600*time.Millisecond, 1.25e6)
	small.PEPBuffer = 64 << 10
	big := DefaultParams(600*time.Millisecond, 1.25e6)
	big.PEPBuffer = 64 << 20
	ts := Compute(n, small)
	tb := Compute(n, big)
	if ts.Rounds > tb.Rounds {
		t.Fatalf("small buffer used more slow-start rounds (%d) than big (%d)", ts.Rounds, tb.Rounds)
	}
	if ts.Duration() < tb.Duration()/2 {
		t.Fatal("buffer size should not halve a rate-bound transfer")
	}
}

func TestDegenerateParams(t *testing.T) {
	tl := Compute(1000, Params{RTT: 0, BottleneckBps: 1e6, InitialWindow: 0})
	if tl.LastData <= 0 {
		t.Fatal("degenerate params produced a non-positive timeline")
	}
	if GoodputBps(0, Timeline{}) != 0 {
		t.Fatal("zero-duration goodput should be 0")
	}
}

func TestGoodputMonotoneInBottleneckProperty(t *testing.T) {
	n := int64(30 << 20)
	prev := 0.0
	for _, mbps := range []float64{5, 10, 20, 30, 50, 100} {
		tl := Compute(n, DefaultParams(600*time.Millisecond, mbps*1e6/8))
		g := GoodputBps(n, tl)
		if g <= prev {
			t.Fatalf("goodput not increasing at %v Mb/s", mbps)
		}
		prev = g
	}
}
