// Package tcpmodel computes the timing of a TCP transfer between the
// ground-station PEP and an internet server: handshake, slow start growing
// from the initial window, and the steady phase clamped by the bottleneck
// rate (the PEP's per-user buffer back-pressures the download to the
// customer's delivery rate, §2.1/§6.5). The probe's throughput figures
// (Figure 11) are measured over the segment timelines this model produces.
package tcpmodel

import (
	"time"
)

// MSS is the segment payload size used throughout the simulator.
const MSS = 1460

// Params describe one transfer.
type Params struct {
	// RTT is the round trip between the ground station and the server.
	RTT time.Duration
	// BottleneckBps is the delivery rate toward the customer in bytes/s
	// (plan shaping x beam congestion x terminal limits). The PEP buffer
	// clamps the server-side transfer to this rate once full.
	BottleneckBps float64
	// InitialWindow is the initial congestion window in segments.
	InitialWindow int
	// PEPBuffer is the PEP's per-user buffer in bytes; until it fills,
	// slow start runs at path speed regardless of the bottleneck.
	PEPBuffer int64
}

// DefaultParams fills the conventional values: IW10 and a 3 MiB PEP buffer.
func DefaultParams(rtt time.Duration, bottleneckBps float64) Params {
	return Params{RTT: rtt, BottleneckBps: bottleneckBps, InitialWindow: 10, PEPBuffer: 3 << 20}
}

// Timeline is the computed shape of one transfer.
type Timeline struct {
	// HandshakeDone is when the three-way handshake completes (one RTT
	// after the SYN leaves).
	HandshakeDone time.Duration
	// FirstData is when the first data segment is observed.
	FirstData time.Duration
	// LastData is when the last data segment is observed.
	LastData time.Duration
	// Rounds is the number of slow-start rounds the transfer used.
	Rounds int
	// Segments is the total number of MSS-sized segments.
	Segments int64
}

// Duration returns first-to-last data time, the denominator of the paper's
// throughput metric (§6.5: bytes / (last - first data segment)).
func (t Timeline) Duration() time.Duration { return t.LastData - t.FirstData }

// Compute produces the transfer timeline for n payload bytes.
//
// Slow start doubles the per-RTT window from InitialWindow until either the
// window reaches the bandwidth-delay product of the bottleneck (from then
// on delivery is rate-limited) or the PEP buffer fills (same effect: the
// ground station can no longer pull faster than it drains). This yields the
// classic short-flow behaviour — small flows never reach the plan rate,
// which is why the paper restricts Figure 11 to ≥10 MB flows.
func Compute(n int64, p Params) Timeline {
	tl := Timeline{}
	if p.InitialWindow <= 0 {
		p.InitialWindow = 10
	}
	if p.RTT <= 0 {
		p.RTT = time.Millisecond
	}
	tl.HandshakeDone = p.RTT
	tl.FirstData = p.RTT + p.RTT/2 // request travels half an RTT after ACK
	if n <= 0 {
		tl.LastData = tl.FirstData
		return tl
	}
	tl.Segments = (n + MSS - 1) / MSS

	// Window (in segments per RTT) that saturates the bottleneck.
	satWindow := p.BottleneckBps * p.RTT.Seconds() / MSS
	if satWindow < 1 {
		satWindow = 1
	}

	remaining := tl.Segments
	now := tl.FirstData
	window := float64(p.InitialWindow)
	buffered := int64(0)
	for remaining > 0 {
		tl.Rounds++
		send := int64(window)
		if send < 1 {
			send = 1
		}
		if send > remaining {
			send = remaining
		}
		remaining -= send
		if remaining == 0 {
			// The last round's segments stream out within the round,
			// paced by the bottleneck once past saturation.
			tail := time.Duration(float64(send*MSS) / p.BottleneckBps * float64(time.Second))
			if window < satWindow && tail > p.RTT {
				tail = p.RTT
			}
			now += tail
			break
		}
		now += p.RTT
		buffered += send * MSS
		if window >= satWindow || (p.PEPBuffer > 0 && buffered >= p.PEPBuffer) {
			// Rate-limited steady phase: everything left drains at the
			// bottleneck rate.
			now += time.Duration(float64(remaining*MSS) / p.BottleneckBps * float64(time.Second))
			remaining = 0
			break
		}
		window *= 2
		if window > satWindow {
			window = satWindow
		}
	}
	tl.LastData = now
	return tl
}

// GoodputBps returns the gross throughput the probe computes: total bytes
// over first-to-last segment time (§6.5).
func GoodputBps(n int64, tl Timeline) float64 {
	d := tl.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(n) / d
}
