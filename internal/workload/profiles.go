// Package workload models the subscriber population and its behaviour: who
// the customers are (residential households, idle second homes, business
// sites, African community WiFi access points), which services they use
// each day, how much they move, and when. The distributions are calibrated
// to the paper's published aggregates (Figures 2 and 4-7) and the causal
// mechanisms the paper identifies — community APs multiplexing many
// end-users behind one CPE, idle European CPEs, business VPNs — are
// explicit model features, so the population *generates* the paper's
// shapes rather than replaying them.
package workload

import (
	"satwatch/internal/dist"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

// CustomerType is the subscriber archetype.
type CustomerType uint8

// The four archetypes the paper's analysis surfaces.
const (
	// Residential households.
	Residential CustomerType = iota
	// SecondHome CPEs stay connected but mostly unused (§4: the European
	// customers behind the 50-250 flows/day knee).
	SecondHome
	// Business sites run VPNs and work tooling (§3.2: the German
	// other-TCP share).
	Business
	// CommunityAP is a shared WiFi access point or internet café
	// multiplexing many end-users behind one CPE (§4-§5).
	CommunityAP
)

func (t CustomerType) String() string {
	switch t {
	case Residential:
		return "residential"
	case SecondHome:
		return "second-home"
	case Business:
		return "business"
	case CommunityAP:
		return "community-ap"
	}
	return "unknown"
}

// CountryProfile is the per-country population calibration.
type CountryProfile struct {
	Country geo.Country
	// CustomerShare is the country's fraction of the subscriber base
	// (Figure 2 calibration: Congo ≈20%, Spain ≈16%, ...).
	CustomerShare float64
	// TypeMix weights the archetypes.
	TypeMix map[CustomerType]float64
	// PlanMix weights the sold plans by downlink Mb/s (§6.5: 10/30 in
	// Africa; 30/50/100 popular in Europe).
	PlanMix map[float64]float64
}

var profiles = []CountryProfile{
	{Country: mustCountry("CD"), CustomerShare: 0.20,
		TypeMix: map[CustomerType]float64{Residential: 0.52, SecondHome: 0.03, Business: 0.15, CommunityAP: 0.30},
		PlanMix: map[float64]float64{10: 0.65, 30: 0.35}},
	{Country: mustCountry("NG"), CustomerShare: 0.09,
		TypeMix: map[CustomerType]float64{Residential: 0.55, SecondHome: 0.03, Business: 0.20, CommunityAP: 0.22},
		PlanMix: map[float64]float64{10: 0.55, 30: 0.45}},
	{Country: mustCountry("ZA"), CustomerShare: 0.07,
		TypeMix: map[CustomerType]float64{Residential: 0.62, SecondHome: 0.04, Business: 0.18, CommunityAP: 0.16},
		PlanMix: map[float64]float64{10: 0.45, 30: 0.55}},
	{Country: mustCountry("IE"), CustomerShare: 0.08,
		TypeMix: map[CustomerType]float64{Residential: 0.52, SecondHome: 0.38, Business: 0.10, CommunityAP: 0},
		PlanMix: map[float64]float64{30: 0.40, 50: 0.40, 100: 0.20}},
	{Country: mustCountry("ES"), CustomerShare: 0.16,
		TypeMix: map[CustomerType]float64{Residential: 0.50, SecondHome: 0.42, Business: 0.08, CommunityAP: 0},
		PlanMix: map[float64]float64{30: 0.45, 50: 0.35, 100: 0.20}},
	{Country: mustCountry("GB"), CustomerShare: 0.10,
		TypeMix: map[CustomerType]float64{Residential: 0.55, SecondHome: 0.33, Business: 0.12, CommunityAP: 0},
		PlanMix: map[float64]float64{30: 0.40, 50: 0.35, 100: 0.25}},
	{Country: mustCountry("DE"), CustomerShare: 0.06,
		TypeMix: map[CustomerType]float64{Residential: 0.40, SecondHome: 0.25, Business: 0.35, CommunityAP: 0},
		PlanMix: map[float64]float64{30: 0.40, 50: 0.35, 100: 0.25}},
	{Country: mustCountry("FR"), CustomerShare: 0.07,
		TypeMix: map[CustomerType]float64{Residential: 0.50, SecondHome: 0.38, Business: 0.12, CommunityAP: 0},
		PlanMix: map[float64]float64{30: 0.45, 50: 0.35, 100: 0.20}},
	{Country: mustCountry("IT"), CustomerShare: 0.05,
		TypeMix: map[CustomerType]float64{Residential: 0.52, SecondHome: 0.36, Business: 0.12, CommunityAP: 0},
		PlanMix: map[float64]float64{30: 0.45, 50: 0.35, 100: 0.20}},
	{Country: mustCountry("SN"), CustomerShare: 0.04,
		TypeMix: map[CustomerType]float64{Residential: 0.58, SecondHome: 0.04, Business: 0.18, CommunityAP: 0.20},
		PlanMix: map[float64]float64{10: 0.60, 30: 0.40}},
	{Country: mustCountry("CM"), CustomerShare: 0.05,
		TypeMix: map[CustomerType]float64{Residential: 0.56, SecondHome: 0.04, Business: 0.16, CommunityAP: 0.24},
		PlanMix: map[float64]float64{10: 0.60, 30: 0.40}},
	{Country: mustCountry("GH"), CustomerShare: 0.03,
		TypeMix: map[CustomerType]float64{Residential: 0.58, SecondHome: 0.04, Business: 0.18, CommunityAP: 0.20},
		PlanMix: map[float64]float64{10: 0.60, 30: 0.40}},
}

func mustCountry(code geo.CountryCode) geo.Country {
	c, ok := geo.ByCode(code)
	if !ok {
		panic("workload: unknown country " + string(code))
	}
	return c
}

// Profiles returns the per-country calibration in a stable order.
func Profiles() []CountryProfile {
	out := make([]CountryProfile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileFor returns the profile of a country.
func ProfileFor(code geo.CountryCode) (CountryProfile, bool) {
	for _, p := range profiles {
		if p.Country.Code == code {
			return p, true
		}
	}
	return CountryProfile{}, false
}

// Diurnal profiles in LOCAL time per archetype. Residential leisure peaks
// in the evening (Figure 4's European 18:00-20:00 UTC peak); community APs
// and businesses are day-heavy, which — combined with the African type mix
// — produces the African morning peak and the ≥40% night floor.
var (
	residentialDiurnal = dist.MustDiurnal([24]float64{
		2.0, 1.4, 1.0, 0.9, 0.9, 1.0, 1.5, 2.2, 2.8, 3.2, 3.4, 3.6,
		3.8, 3.6, 3.5, 3.8, 4.2, 5.5, 8.0, 10.0, 9.0, 6.5, 4.5, 3.0})
	communityAPDiurnal = dist.MustDiurnal([24]float64{
		3.8, 3.6, 3.6, 3.6, 3.8, 4.2, 5.5, 7.5, 9.2, 10.0, 9.8, 9.3,
		9.0, 9.2, 9.0, 8.8, 8.5, 8.0, 7.8, 7.2, 6.2, 5.2, 4.5, 4.0})
	businessDiurnal = dist.MustDiurnal([24]float64{
		0.8, 0.7, 0.7, 0.7, 0.8, 1.2, 2.5, 5.0, 8.5, 10.0, 9.8, 9.0,
		8.0, 8.8, 9.2, 8.8, 7.5, 5.5, 3.2, 2.0, 1.5, 1.2, 1.0, 0.9})
	secondHomeDiurnal = dist.MustDiurnal([24]float64{
		1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1,
		1, 1, 1, 1, 1, 1.5, 2, 2.5, 2.5, 2, 1.5, 1})
)

// DiurnalFor returns the local-time activity profile of an archetype.
func DiurnalFor(t CustomerType) *dist.Diurnal {
	switch t {
	case CommunityAP:
		return communityAPDiurnal
	case Business:
		return businessDiurnal
	case SecondHome:
		return secondHomeDiurnal
	default:
		return residentialDiurnal
	}
}

// penetration is Figure 6: the percentage of customers using each service
// on a given day, columns Congo, Nigeria, South Africa, Ireland, Spain,
// U.K. (the paper's exact heatmap values).
var penetration = map[string]map[geo.CountryCode]float64{
	"Google":     {"CD": 62.96, "NG": 61.26, "ZA": 64.72, "IE": 68.58, "ES": 68.30, "GB": 65.48},
	"Whatsapp":   {"CD": 61.22, "NG": 51.18, "ZA": 62.88, "IE": 59.59, "ES": 63.82, "GB": 53.75},
	"Snapchat":   {"CD": 33.93, "NG": 28.90, "ZA": 19.14, "IE": 38.52, "ES": 12.33, "GB": 28.50},
	"Wechat":     {"CD": 6.42, "NG": 3.55, "ZA": 1.11, "IE": 0.49, "ES": 0.06, "GB": 0.41},
	"Telegram":   {"CD": 1.83, "NG": 3.17, "ZA": 1.28, "IE": 0.53, "ES": 1.75, "GB": 0.29},
	"Instagram":  {"CD": 48.81, "NG": 41.04, "ZA": 40.67, "IE": 48.53, "ES": 45.59, "GB": 40.43},
	"Tiktok":     {"CD": 41.56, "NG": 31.99, "ZA": 36.31, "IE": 40.11, "ES": 31.89, "GB": 36.53},
	"Netflix":    {"CD": 17.34, "NG": 17.84, "ZA": 38.91, "IE": 50.91, "ES": 39.20, "GB": 46.41},
	"Primevideo": {"CD": 3.90, "NG": 3.77, "ZA": 8.42, "IE": 21.30, "ES": 22.78, "GB": 28.21},
	"Sky":        {"CD": 15.71, "NG": 7.86, "ZA": 7.26, "IE": 27.68, "ES": 6.04, "GB": 28.37},
	"Spotify":    {"CD": 37.78, "NG": 30.31, "ZA": 33.19, "IE": 46.79, "ES": 45.20, "GB": 39.73},
	"Dropbox":    {"CD": 11.50, "NG": 9.22, "ZA": 16.57, "IE": 10.39, "ES": 9.34, "GB": 16.81},
	// Services the paper doesn't chart get plausible penetrations so the
	// traffic mix stays realistic.
	"Youtube":   {"CD": 55, "NG": 50, "ZA": 55, "IE": 60, "ES": 60, "GB": 58},
	"Facebook":  {"CD": 50, "NG": 45, "ZA": 45, "IE": 50, "ES": 48, "GB": 45},
	"Office365": {"CD": 8, "NG": 10, "ZA": 14, "IE": 18, "ES": 15, "GB": 20},
}

// PenetrationFor returns the daily-use probability (0..1) of a service in
// a country; unknown countries fall back to a continent average.
func PenetrationFor(service string, country geo.Country) float64 {
	m, ok := penetration[service]
	if !ok {
		return 0
	}
	if v, ok := m[country.Code]; ok {
		return v / 100
	}
	// Fallback: average the same-continent columns.
	var codes []geo.CountryCode
	if country.Continent == geo.Africa {
		codes = []geo.CountryCode{"CD", "NG", "ZA"}
	} else {
		codes = []geo.CountryCode{"IE", "ES", "GB"}
	}
	sum := 0.0
	for _, c := range codes {
		sum += m[c]
	}
	return sum / float64(len(codes)) / 100
}

// PenetrationMatrix exposes the Figure 6 services in row order for the
// report stage.
func PenetrationMatrix() (rows []string, get func(string, geo.CountryCode) float64) {
	for _, s := range services.Intentional() {
		rows = append(rows, s.Name)
	}
	return rows, func(service string, code geo.CountryCode) float64 {
		return penetration[service][code]
	}
}
