package workload

import (
	"sort"
	"testing"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/dist"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

func pop(t *testing.T, n int, seed uint64) []*Customer {
	t.Helper()
	cs, err := BuildPopulation(n, dist.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestProfilesSharesSumToOne(t *testing.T) {
	sum := 0.0
	for _, p := range Profiles() {
		if p.CustomerShare <= 0 {
			t.Fatalf("%s share %v", p.Country.Code, p.CustomerShare)
		}
		sum += p.CustomerShare
		tm := 0.0
		for _, w := range p.TypeMix {
			tm += w
		}
		if tm < 0.99 || tm > 1.01 {
			t.Fatalf("%s type mix sums to %v", p.Country.Code, tm)
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("country shares sum to %v", sum)
	}
}

func TestAfricanPlansCappedAt30(t *testing.T) {
	// §6.5: the operator sells 10 and 30 Mb/s plans in Africa.
	for _, p := range Profiles() {
		if p.Country.Continent != geo.Africa {
			continue
		}
		for mbps := range p.PlanMix {
			if mbps > 30 {
				t.Fatalf("%s sells a %v Mb/s plan", p.Country.Code, mbps)
			}
		}
	}
}

func TestOnlyAfricaHasCommunityAPs(t *testing.T) {
	for _, p := range Profiles() {
		if p.Country.Continent == geo.Europe && p.TypeMix[CommunityAP] > 0 {
			t.Fatalf("%s has community APs", p.Country.Code)
		}
		if p.Country.Continent == geo.Africa && p.TypeMix[CommunityAP] == 0 {
			t.Fatalf("%s has no community APs", p.Country.Code)
		}
	}
}

func TestBuildPopulationComposition(t *testing.T) {
	cs := pop(t, 1000, 1)
	if len(cs) < 950 || len(cs) > 1050 {
		t.Fatalf("population %d, want ≈1000", len(cs))
	}
	byCountry := map[geo.CountryCode]int{}
	seenAddr := map[string]bool{}
	for _, c := range cs {
		byCountry[c.Country.Code]++
		if seenAddr[c.Addr.String()] {
			t.Fatalf("duplicate CPE address %v", c.Addr)
		}
		seenAddr[c.Addr.String()] = true
		if code, ok := CountryOfAddr(c.Addr); !ok || code != c.Country.Code {
			t.Fatalf("address %v maps to %v, want %v", c.Addr, code, c.Country.Code)
		}
		if c.Multiplex < 1 {
			t.Fatal("multiplex below 1")
		}
		if c.Type == CommunityAP && c.Multiplex < 6 {
			t.Fatal("AP without multiplexed users")
		}
		if c.Type != CommunityAP && c.Multiplex != 1 {
			t.Fatal("non-AP with multiplexing")
		}
		if !c.Resolver.Addr.IsValid() {
			t.Fatal("customer without resolver")
		}
	}
	// Figure 2 calibration: Congo ≈20% of customers, Spain ≈16%.
	if f := float64(byCountry["CD"]) / float64(len(cs)); f < 0.17 || f > 0.23 {
		t.Fatalf("Congo share %.3f, want ≈0.20", f)
	}
	if f := float64(byCountry["ES"]) / float64(len(cs)); f < 0.13 || f > 0.19 {
		t.Fatalf("Spain share %.3f, want ≈0.16", f)
	}
}

func TestPopulationDeterminism(t *testing.T) {
	a := pop(t, 300, 7)
	b := pop(t, 300, 7)
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Type != b[i].Type || a[i].Resolver.ID != b[i].Resolver.ID {
			t.Fatalf("population not deterministic at %d", i)
		}
	}
}

func TestResolverAdoptionShape(t *testing.T) {
	cs := pop(t, 4000, 3)
	googleCD, totalCD := 0, 0
	operatorIE, totalIE := 0, 0
	for _, c := range cs {
		switch c.Country.Code {
		case "CD":
			totalCD++
			if c.Resolver.ID == "Google" {
				googleCD++
			}
		case "IE":
			totalIE++
			if c.Resolver.ID == "Operator-EU" {
				operatorIE++
			}
		}
	}
	if f := float64(googleCD) / float64(totalCD); f < 0.78 || f > 0.92 {
		t.Fatalf("Congo Google resolver share %.2f, want ≈0.86", f)
	}
	if f := float64(operatorIE) / float64(totalIE); f < 0.33 || f > 0.54 {
		t.Fatalf("Ireland operator share %.2f, want ≈0.44", f)
	}
}

func TestPenetrationFigure6Values(t *testing.T) {
	es := mustCountry("ES")
	if p := PenetrationFor("Whatsapp", es); p != 0.6382 {
		t.Fatalf("Spain WhatsApp penetration %v", p)
	}
	cd := mustCountry("CD")
	if p := PenetrationFor("Wechat", cd); p != 0.0642 {
		t.Fatalf("Congo WeChat penetration %v", p)
	}
	if PenetrationFor("Nope", es) != 0 {
		t.Fatal("unknown service penetrated")
	}
	// Fallback for uncharted countries.
	sn := mustCountry("SN")
	if p := PenetrationFor("Whatsapp", sn); p <= 0.4 || p >= 0.7 {
		t.Fatalf("Senegal fallback penetration %v", p)
	}
}

func TestDailyServiceVolumeShape(t *testing.T) {
	r := dist.NewRand(5)
	chat, _ := services.ByName("Whatsapp")
	cdCust := &Customer{Country: mustCountry("CD"), Multiplex: 1}
	esCust := &Customer{Country: mustCountry("ES"), Multiplex: 1}
	apCust := &Customer{Country: mustCountry("CD"), Multiplex: 25, Type: CommunityAP}

	median := func(c *Customer) int64 {
		var vols []int64
		for i := 0; i < 2001; i++ {
			d, u := DailyServiceVolume(c, chat, r)
			vols = append(vols, d+u)
		}
		sort.Slice(vols, func(i, j int) bool { return vols[i] < vols[j] })
		return vols[len(vols)/2]
	}
	mCD, mES, mAP := median(cdCust), median(esCust), median(apCust)
	// Figure 7: African chat volumes are an order of magnitude (or more)
	// above European ones; APs amplify further.
	if mCD < 8*mES {
		t.Fatalf("Congo chat median %d not ≫ Spain's %d", mCD, mES)
	}
	if mAP < 3*mCD {
		t.Fatalf("AP chat median %d not ≫ residential %d", mAP, mCD)
	}
	if mES > 40*MB {
		t.Fatalf("Spain chat median %d too high", mES)
	}
}

func TestUploadFractionChatHighest(t *testing.T) {
	if UpFraction(services.CategoryChat) <= UpFraction(services.CategoryVideo) {
		t.Fatal("chat upload share should dominate video's (Figure 5c mechanism)")
	}
}

func TestSampleFlowSizesConservesBytes(t *testing.T) {
	r := dist.NewRand(6)
	for _, cat := range services.Categories() {
		total := int64(50 * MB)
		sizes := SampleFlowSizes(cat, total, r)
		if len(sizes) == 0 {
			t.Fatalf("%s: no flows", cat)
		}
		var sum int64
		for _, s := range sizes {
			if s <= 0 {
				t.Fatalf("%s: non-positive flow size", cat)
			}
			sum += s
		}
		if sum != total {
			t.Fatalf("%s: flows sum to %d, want %d", cat, sum, total)
		}
	}
	if SampleFlowSizes(services.CategoryChat, 0, r) != nil {
		t.Fatal("zero volume produced flows")
	}
}

func TestVideoFlowsBiggerThanChatFlows(t *testing.T) {
	r := dist.NewRand(7)
	video := SampleFlowSizes(services.CategoryVideo, 100*MB, r)
	chat := SampleFlowSizes(services.CategoryChat, 100*MB, r)
	if len(video) >= len(chat) {
		t.Fatalf("video split 100MB into %d flows, chat into %d — wrong granularity", len(video), len(chat))
	}
}

func TestGenerateDayIdleCustomersFewFlows(t *testing.T) {
	r := dist.NewRand(8)
	c := &Customer{Country: mustCountry("ES"), Type: SecondHome, Multiplex: 1}
	// Second homes are idle ~88% of days; over many days most must land
	// under the Figure 5a knee (≤250 flows) with only tiny flows.
	idleDays := 0
	const days = 60
	for day := 0; day < days; day++ {
		flows := GenerateDay(c, day, r.ForkN("day", uint64(day)))
		if len(flows) == 0 {
			t.Fatalf("day %d produced no flows at all", day)
		}
		small := true
		for _, f := range flows {
			if f.Down > MB {
				small = false
				break
			}
		}
		if small && len(flows) <= 250 {
			idleDays++
		}
	}
	if idleDays < days*6/10 {
		t.Fatalf("only %d/%d second-home days under the knee", idleDays, days)
	}
}

func TestGenerateDayActiveResidentialEU(t *testing.T) {
	r := dist.NewRand(9)
	c := &Customer{ID: 1, Country: mustCountry("GB"), Type: Residential, Multiplex: 1}
	flows := GenerateDay(c, 0, r)
	if len(flows) < 40 || len(flows) > 3000 {
		t.Fatalf("EU residential day has %d flows", len(flows))
	}
	var haveTracked bool
	for _, f := range flows {
		if f.Start < 0 || f.Start >= Day {
			t.Fatalf("flow at %v outside day 0", f.Start)
		}
		if f.Domain != "" {
			if _, ok := cdn.Lookup(f.Domain); !ok {
				t.Fatalf("flow to unknown domain %q", f.Domain)
			}
		}
		if f.Entry.Service != "" {
			haveTracked = true
		}
		if f.Down < 0 || f.Up < 0 {
			t.Fatal("negative volume")
		}
	}
	if !haveTracked {
		t.Fatal("no tracked-service flows in an active day")
	}
}

func TestGenerateDayAPMuchBusier(t *testing.T) {
	r := dist.NewRand(10)
	ap := &Customer{ID: 2, Country: mustCountry("CD"), Type: CommunityAP, Multiplex: 30}
	res := &Customer{ID: 3, Country: mustCountry("ES"), Type: Residential, Multiplex: 1}
	apFlows := GenerateDay(ap, 0, r.Fork("ap"))
	resFlows := GenerateDay(res, 0, r.Fork("res"))
	if len(apFlows) < 3*len(resFlows) {
		t.Fatalf("AP day %d flows vs EU residential %d — multiplexing missing", len(apFlows), len(resFlows))
	}
	var apDown int64
	for _, f := range apFlows {
		apDown += f.Down
	}
	if apDown < 200*MB {
		t.Fatalf("AP daily volume %d bytes too small", apDown)
	}
}

func TestGenerateDayBusinessHasVPN(t *testing.T) {
	r := dist.NewRand(11)
	c := &Customer{ID: 4, Country: mustCountry("DE"), Type: Business, Multiplex: 1}
	flows := GenerateDay(c, 0, r)
	var vpn int
	for _, f := range flows {
		if f.Proto == cdn.AppTCPOther {
			vpn++
			if f.Domain != "" {
				t.Fatal("VPN flow with a domain")
			}
			if !f.OpaqueServer.IsValid() {
				t.Fatal("VPN flow without server")
			}
		}
	}
	if vpn == 0 {
		t.Fatal("business customer with no VPN flows")
	}
}

func TestGenerateDayDeterminism(t *testing.T) {
	c := &Customer{ID: 5, Country: mustCountry("NG"), Type: Residential, Multiplex: 1}
	a := GenerateDay(c, 3, dist.NewRand(77))
	b := GenerateDay(c, 3, dist.NewRand(77))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Down != b[i].Down || a[i].Domain != b[i].Domain {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestDiurnalShapes(t *testing.T) {
	// Residential evening peak (Figure 4 Europe), AP morning peak
	// (Figure 4 Congo: 10:00 local), business office hours.
	if h := DiurnalFor(Residential).PeakHour(); h < 18 || h > 21 {
		t.Fatalf("residential peak at %d", h)
	}
	if h := DiurnalFor(CommunityAP).PeakHour(); h < 8 || h > 11 {
		t.Fatalf("AP peak at %d", h)
	}
	if h := DiurnalFor(Business).PeakHour(); h < 8 || h > 16 {
		t.Fatalf("business peak at %d", h)
	}
	// African night floor ≥ 40% of peak comes from the AP profile.
	ap := DiurnalFor(CommunityAP)
	if ap.Intensity(3) < 0.3 {
		t.Fatalf("AP night intensity %.2f too low for the Figure 4 floor", ap.Intensity(3))
	}
}

func TestStampsRespectTimezone(t *testing.T) {
	// A South African (UTC+2) business flow at local hour h appears at
	// UTC hour h-2; check the bulk lands in [06,16) UTC.
	r := dist.NewRand(12)
	c := &Customer{ID: 6, Country: mustCountry("ZA"), Type: Business, Multiplex: 1}
	flows := GenerateDay(c, 0, r)
	in, total := 0, 0
	for _, f := range flows {
		h := int(f.Start/time.Hour) % 24
		if h >= 5 && h < 17 {
			in++
		}
		total++
	}
	if total == 0 || float64(in)/float64(total) < 0.6 {
		t.Fatalf("only %d/%d business flows in UTC office hours", in, total)
	}
}

func TestCongoVolumeDominatesSpainStatistically(t *testing.T) {
	// Figure 2's mechanism check at the generator level: summing a few
	// hundred customer-days, Congolese subscriptions must move several
	// times the Spanish per-customer volume.
	r := dist.NewRand(99)
	perCustomer := func(code geo.CountryCode, typ CustomerType, mux int, n int) float64 {
		var total int64
		for i := 0; i < n; i++ {
			c := &Customer{ID: 9000 + i, Country: mustCountry(code), Type: typ, Multiplex: mux}
			for _, f := range GenerateDay(c, 0, r.ForkN(string(code), uint64(i))) {
				total += f.Down + f.Up
			}
		}
		return float64(total) / float64(n)
	}
	// Weighted by the archetype mixes of the two countries.
	cd := 0.52*perCustomer("CD", Residential, 1, 40) + 0.30*perCustomer("CD", CommunityAP, 20, 40)
	es := 0.50 * perCustomer("ES", Residential, 1, 40)
	if cd < 2*es {
		t.Fatalf("Congo per-customer volume %.0f not ≫ Spain's %.0f", cd, es)
	}
}

func TestUploadShareAfricaHigher(t *testing.T) {
	// Figure 5c's mechanism: chat-heavy African traffic uploads a larger
	// fraction of its volume than European traffic.
	r := dist.NewRand(101)
	share := func(code geo.CountryCode) float64 {
		var up, down int64
		for i := 0; i < 60; i++ {
			c := &Customer{ID: 8000 + i, Country: mustCountry(code), Type: Residential, Multiplex: 1}
			for _, f := range GenerateDay(c, 0, r.ForkN("up"+string(code), uint64(i))) {
				up += f.Up
				down += f.Down
			}
		}
		return float64(up) / float64(up+down)
	}
	cd, es := share("CD"), share("ES")
	if cd <= es {
		t.Fatalf("Congo upload share %.3f not above Spain's %.3f", cd, es)
	}
}
