package workload

import (
	"sort"

	"satwatch/internal/dist"
)

// Source generates flow intents incrementally, in global start order,
// holding at most one day of the whole population in memory — the live
// pipeline's replacement for the batch simulator's whole-window
// generation. Day d of customer c uses the exact same forked random
// stream as the batch passes (root.ForkN("day", c.ID*1024+d)), so the
// intents themselves are identical to what a batch run would feed the
// synthesizer; only the interleaving differs (sorted by Start across the
// population instead of grouped per customer).
//
// Days advance without bound, reusing the diurnal profile — the daemon's
// "day 37" workload is day 37's forked streams over the same population.
// Source is not goroutine-safe; the generator stage owns it.
type Source struct {
	customers []*Customer
	root      *dist.Rand
	day       int
	buf       []FlowIntent
	pos       int
}

// NewSource builds a source over the population. root must be the same
// run root a batch simulation would use for identical intents.
func NewSource(customers []*Customer, root *dist.Rand) *Source {
	return &Source{customers: customers, root: root}
}

// Day returns the simulation day the source is currently generating.
func (s *Source) Day() int { return s.day }

// Next returns the next flow intent in start order. It never runs dry:
// exhausting a day's buffer generates the next day for every customer.
// The returned pointer is valid until the following Next call consumes
// the buffer (the caller copies or finishes with it before then).
func (s *Source) Next() *FlowIntent {
	for s.pos >= len(s.buf) {
		s.generateDay()
	}
	fi := &s.buf[s.pos]
	s.pos++
	return fi
}

// Pending returns how many intents of the current day remain buffered.
func (s *Source) Pending() int { return len(s.buf) - s.pos }

func (s *Source) generateDay() {
	s.buf = s.buf[:0]
	s.pos = 0
	for _, c := range s.customers {
		r := s.root.ForkN("day", uint64(c.ID)*1024+uint64(s.day))
		s.buf = append(s.buf, GenerateDay(c, s.day, r)...)
	}
	sort.SliceStable(s.buf, func(i, j int) bool { return s.buf[i].Start < s.buf[j].Start })
	s.day++
}
