package workload

import (
	"fmt"
	"net/netip"

	"satwatch/internal/dist"
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/shaper"
)

// Customer is one subscription (one CPE, §2.1 footnote: an individual, a
// household, an office, or a community WiFi solution).
type Customer struct {
	ID      int
	Country geo.Country
	Type    CustomerType
	Plan    shaper.Plan
	// Beam is the id of the spot beam serving this customer.
	Beam int
	// Addr is the CPE's private IPv4 address; the per-country /16 makes
	// the anonymized-prefix → country enrichment work (§2.3/§3.1).
	Addr netip.Addr
	// Multiplex is how many end-users share the CPE (1 for residential).
	Multiplex int
	// Resolver is the DNS resolver this customer's devices use.
	Resolver dnssim.Resolver
	// ChineseCommunity marks customers gravitating to Chinese services
	// and homeland resolvers (§5-§6.3).
	ChineseCommunity bool
}

// countrySubnets assigns each country a /16 inside 10.0.0.0/8, indexed by
// the profile order.
func countrySubnet(idx int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(16 + idx), 0, 0}), 16)
}

// SubnetFor returns the CPE address block of a country.
func SubnetFor(code geo.CountryCode) (netip.Prefix, bool) {
	for i, p := range profiles {
		if p.Country.Code == code {
			return countrySubnet(i), true
		}
	}
	return netip.Prefix{}, false
}

// CountryOfAddr recovers the country of a (non-anonymized) CPE address.
func CountryOfAddr(addr netip.Addr) (geo.CountryCode, bool) {
	for i, p := range profiles {
		if countrySubnet(i).Contains(addr) {
			return p.Country.Code, true
		}
	}
	return "", false
}

// addrFor places customer j of country idx inside its /16.
func addrFor(countryIdx, j int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(16 + countryIdx), byte(j / 250), byte(2 + j%250)})
}

// planFor samples a plan from the country's mix.
func planFor(p CountryProfile, r *dist.Rand) shaper.Plan {
	var plans []shaper.Plan
	var weights []float64
	for _, pl := range shaper.Plans() {
		if w, ok := p.PlanMix[pl.DownMbps]; ok && w > 0 {
			plans = append(plans, pl)
			weights = append(weights, w)
		}
	}
	w := dist.MustWeighted(plans, weights)
	return w.Sample(r)
}

// typeFor samples an archetype from the country's mix.
func typeFor(p CountryProfile, r *dist.Rand) CustomerType {
	types := []CustomerType{Residential, SecondHome, Business, CommunityAP}
	weights := make([]float64, len(types))
	for i, t := range types {
		weights[i] = p.TypeMix[t]
	}
	return dist.MustWeighted(types, weights).Sample(r)
}

// BuildPopulation creates n customers distributed per the country shares,
// deterministically from r.
func BuildPopulation(n int, r *dist.Rand) ([]*Customer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: population size %d", n)
	}
	var out []*Customer
	id := 0
	for idx, p := range profiles {
		count := int(float64(n)*p.CustomerShare + 0.5)
		if count == 0 {
			count = 1
		}
		beams := geo.BeamsFor(p.Country.Code)
		if len(beams) == 0 {
			return nil, fmt.Errorf("workload: no beams for %s", p.Country.Code)
		}
		adoption, err := dnssim.AdoptionFor(p.Country)
		if err != nil {
			return nil, err
		}
		cr := r.Fork("population/" + string(p.Country.Code))
		for j := 0; j < count; j++ {
			c := &Customer{
				ID:      id,
				Country: p.Country,
				Type:    typeFor(p, cr),
				Plan:    planFor(p, cr),
				Beam:    beams[j%len(beams)].ID,
				Addr:    addrFor(idx, j),
			}
			if c.Type == CommunityAP {
				// Internet cafés and community hotspots: 6-60 users.
				c.Multiplex = 6 + cr.IntN(35)
			} else {
				c.Multiplex = 1
			}
			rid := adoption.Sample(cr)
			res, _ := dnssim.ByID(rid)
			if rid == dnssim.ResolverOther {
				res.Addr = dnssim.OtherAddr(cr.IntN(4000))
			}
			c.Resolver = res
			// Homeland-resolver users are the Chinese-community signal;
			// a small extra share uses Chinese services via open
			// resolvers too.
			c.ChineseCommunity = rid == dnssim.ResolverBaidu || rid == dnssim.Resolver114DNS ||
				(p.Country.Continent == geo.Africa && cr.Bool(0.01))
			out = append(out, c)
			id++
		}
	}
	return out, nil
}

// IsActiveDay reports whether the customer produces real traffic on the
// given day. Second homes are occupied only occasionally — the cause of
// the Figure 5a knee.
func (c *Customer) IsActiveDay(day int, r *dist.Rand) bool {
	if c.Type == SecondHome {
		return r.Bool(0.12)
	}
	return true
}
