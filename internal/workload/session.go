package workload

import (
	"fmt"
	"math"
	"net/netip"
	"time"
	"unsafe"

	"satwatch/internal/cdn"
	"satwatch/internal/dist"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

// FlowIntent is one application-level flow the population wants to make:
// the input to the network simulator.
type FlowIntent struct {
	Customer *Customer
	// Start is the flow's start, offset from the simulation epoch (UTC).
	Start time.Duration
	// Entry is the catalog entry being contacted; zero-valued for opaque
	// flows (VPN, RTP, unknown UDP), which use OpaqueServer instead.
	Entry  cdn.Entry
	Domain string // concrete FQDN; "" for opaque flows
	Proto  cdn.AppProtocol
	// OpaqueServer/OpaqueRegion locate the server of non-catalog flows.
	OpaqueServer netip.Addr
	OpaqueRegion cdn.Region
	Down, Up     int64
}

// trackedServices are the services the generator schedules explicitly.
var trackedServices = []string{
	"Google", "Whatsapp", "Snapchat", "Wechat", "Telegram", "Instagram",
	"Tiktok", "Netflix", "Primevideo", "Sky", "Spotify", "Dropbox",
	"Youtube", "Facebook", "Office365",
}

// entriesByService indexes the catalog once.
var entriesByService = func() map[string][]cdn.Entry {
	m := map[string][]cdn.Entry{}
	for _, e := range cdn.Catalog() {
		if e.Service != "" {
			m[e.Service] = append(m[e.Service], e)
		}
	}
	return m
}()

// backgroundEntries are the untracked domains every CPE talks to
// (telemetry, captive checks, OS updates, clouds).
var backgroundEntries = func() []cdn.Entry {
	var out []cdn.Entry
	for _, d := range []string{
		"captive.apple.com", "gs.apple.com", "play.googleapis.com", "www.gstatic.com",
		"au.download.windowsupdate.com", "s3.amazonaws.com", "github.com",
		"api.zoom.us", "cdn.cloudflare.net",
	} {
		e, ok := cdn.Lookup(d)
		if !ok {
			panic("workload: background domain missing from catalog: " + d)
		}
		out = append(out, e)
	}
	return out
}()

var africanEntries = func() []cdn.Entry {
	var out []cdn.Entry
	for _, e := range cdn.Catalog() {
		if e.Home == cdn.RegionAfrica {
			out = append(out, e)
		}
	}
	return out
}()

var chineseEntries = func() []cdn.Entry {
	var out []cdn.Entry
	for _, e := range cdn.Catalog() {
		if e.Home == cdn.RegionChina && e.Service == "" {
			out = append(out, e)
		}
	}
	return out
}()

// Day is 24 hours of simulated time.
const Day = 24 * time.Hour

// MemBytes estimates the retained heap footprint of one intent, for the
// simulator's pass-A intent cache budget. The struct itself plus the
// per-flow FQDN string; catalog-entry strings are shared with the catalog
// and not counted.
func (fi *FlowIntent) MemBytes() int {
	return int(unsafe.Sizeof(*fi)) + len(fi.Domain)
}

// GenerateDay produces all flow intents of one customer for one day.
// Determinism: the caller derives r per (customer, day).
func GenerateDay(c *Customer, day int, r *dist.Rand) []FlowIntent {
	var out []FlowIntent
	dayStart := time.Duration(day) * Day
	diurnal := DiurnalFor(c.Type)
	tz := c.Country.TZOffset

	stamp := func() time.Duration {
		local := diurnal.SampleTimeOfDay(r)
		utc := local - time.Duration(tz)*time.Hour
		for utc < 0 {
			utc += Day
		}
		for utc >= Day {
			utc -= Day
		}
		return dayStart + utc
	}

	if !c.IsActiveDay(day, r) {
		// Idle CPE: telemetry and update checks only (the Figure 5a
		// knee: tens to a couple hundred tiny flows).
		n := 25 + r.IntN(120)
		for i := 0; i < n; i++ {
			e := backgroundEntries[r.IntN(len(backgroundEntries))]
			size := int64(2<<10 + r.IntN(40<<10))
			out = append(out, FlowIntent{Customer: c, Start: stamp(), Entry: e,
				Domain: e.FQDN(r), Proto: e.Proto, Down: size, Up: size / 8})
		}
		return out
	}

	// Tracked services per the Figure 6 penetration, boosted for
	// community APs (any of the multiplexed users may use the service).
	for _, name := range trackedServices {
		svc, ok := services.ByName(name)
		if !ok {
			continue
		}
		p := PenetrationFor(name, c.Country)
		if c.Multiplex > 1 {
			p = 1 - math.Pow(1-p, math.Sqrt(float64(c.Multiplex)))
		}
		if !r.Bool(p) {
			continue
		}
		down, up := DailyServiceVolume(c, svc, r)
		sizes := SampleFlowSizes(svc.Category, down, r)
		entries := entriesByService[name]
		if len(entries) == 0 {
			continue
		}
		for _, sz := range sizes {
			e := entries[r.IntN(len(entries))]
			flowUp := int64(float64(sz) * float64(up) / float64(down+1))
			out = append(out, FlowIntent{Customer: c, Start: stamp(), Entry: e,
				Domain: e.FQDN(r), Proto: e.Proto, Down: sz, Up: flowUp + 200})
		}
	}

	// Background traffic for active customers.
	nBg := 50 + r.IntN(120)
	for i := 0; i < nBg; i++ {
		e := backgroundEntries[r.IntN(len(backgroundEntries))]
		size := int64(3<<10 + r.IntN(200<<10))
		out = append(out, FlowIntent{Customer: c, Start: stamp(), Entry: e,
			Domain: e.FQDN(r), Proto: e.Proto, Down: size, Up: size / 8})
	}

	// OS/software update downloads over plain HTTP (with Sky's HTTP video
	// these drive the Figure 3 unencrypted-web share).
	updateProb := 0.25
	if c.Country.Continent == geo.Africa {
		updateProb = 0.12
	}
	if r.Bool(updateProb) {
		e, _ := cdn.Lookup("au.download.windowsupdate.com")
		size := int64(dist.LogNormalFromMedian(50*MB, 1.1).Sample(r))
		out = append(out, FlowIntent{Customer: c, Start: stamp(), Entry: e,
			Domain: e.Domain, Proto: cdn.AppHTTP, Down: size, Up: size / 100})
	}

	// African customers reach services hosted back home (§6.2's 300-400ms
	// ground-RTT bump).
	if c.Country.Continent == geo.Africa && r.Bool(0.55) {
		n := 2 + r.IntN(10)
		for i := 0; i < n; i++ {
			e := africanEntries[r.IntN(len(africanEntries))]
			size := int64(dist.LogNormalFromMedian(150<<10, 1.2).Sample(r))
			out = append(out, FlowIntent{Customer: c, Start: stamp(), Entry: e,
				Domain: e.FQDN(r), Proto: e.Proto, Down: size, Up: size / 10})
		}
	}

	// Chinese-community customers use Chinese platforms (§5, §6.2).
	if c.ChineseCommunity {
		n := 4 + r.IntN(12)
		for i := 0; i < n; i++ {
			e := chineseEntries[r.IntN(len(chineseEntries))]
			size := int64(dist.LogNormalFromMedian(400<<10, 1.3).Sample(r))
			out = append(out, FlowIntent{Customer: c, Start: stamp(), Entry: e,
				Domain: e.FQDN(r), Proto: e.Proto, Down: size, Up: size / 8})
		}
	}

	// Business sites run VPN tunnels: long opaque TCP flows (the German
	// other-TCP share of Figure 3).
	if c.Type == Business {
		n := 1 + r.IntN(3)
		for i := 0; i < n; i++ {
			vol := int64(dist.LogNormalFromMedian(140*MB, 1.0).Sample(r))
			region := cdn.RegionEurope
			if r.Bool(0.2) {
				region = cdn.RegionUSEast
			}
			out = append(out, FlowIntent{Customer: c, Start: stamp(),
				Proto:        cdn.AppTCPOther,
				OpaqueServer: cdn.ServerAddr(fmt.Sprintf("vpn-%d-%d", c.ID, i), region, 0),
				OpaqueRegion: region,
				Down:         vol, Up: int64(float64(vol) * 0.45)})
		}
	}

	// Real-time calls (RTP over UDP, Table 1's 1.1% of volume despite the
	// 550 ms of latency).
	callProb := 0.12
	if c.Country.Continent == geo.Africa {
		callProb = 0.2
	}
	if c.Multiplex > 1 {
		callProb = 0.8
	}
	if r.Bool(callProb) {
		n := 1 + r.IntN(3)
		if c.Multiplex > 1 {
			n = 2 + r.IntN(5)
		}
		for i := 0; i < n; i++ {
			// 1-15 minutes; audio ~80 kb/s, sometimes video ~400 kb/s.
			secs := 60 + r.IntN(840)
			rate := 80_000
			if r.Bool(0.45) {
				rate = 400_000
			}
			vol := int64(secs * rate / 8)
			region := cdn.RegionEuropeNear
			out = append(out, FlowIntent{Customer: c, Start: stamp(),
				Proto:        cdn.AppRTP,
				OpaqueServer: cdn.ServerAddr(fmt.Sprintf("turn-%d-%d", c.ID, i), region, 0),
				OpaqueRegion: region,
				Down:         vol, Up: vol})
		}
	}

	// Miscellaneous UDP (games, STUN, P2P chatter, VPN-over-UDP).
	nUDP := r.IntN(11)
	for i := 0; i < nUDP; i++ {
		region := cdn.RegionEurope
		size := int64(dist.LogNormalFromMedian(3*MB, 1.5).Sample(r))
		out = append(out, FlowIntent{Customer: c, Start: stamp(),
			Proto:        cdn.AppUDPOther,
			OpaqueServer: cdn.ServerAddr(fmt.Sprintf("udp-%d-%d", c.ID, i), region, 0),
			OpaqueRegion: region,
			Down:         size, Up: size / 3})
	}

	return out
}
