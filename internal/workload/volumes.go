package workload

import (
	"math"

	"satwatch/internal/dist"
	"satwatch/internal/geo"
	"satwatch/internal/services"
)

// MB is one megabyte in bytes.
const MB = 1 << 20

// volumeModel calibrates the per-end-user daily volume of a service
// category: the Figure 7 distributions. Medians are bytes per day for a
// single end-user; community APs scale by Multiplex^exponent (concurrent
// users share the day, so scaling is sublinear).
type volumeModel struct {
	medianAfrica float64
	medianEurope float64
	sigma        float64
	// multiplexExp is the AP scaling exponent: interactive categories
	// multiplex almost linearly, streaming hardly (few simultaneous
	// screens on a café AP).
	multiplexExp float64
	// upFraction is the upload share of the category's volume. Chat's
	// high share drives Figure 5c (media sharing from mobile apps, §4).
	upFraction float64
}

var volumeModels = map[services.Category]volumeModel{
	services.CategoryAudio:  {medianAfrica: 2 * MB, medianEurope: 7 * MB, sigma: 1.1, multiplexExp: 0.35, upFraction: 0.015},
	services.CategoryChat:   {medianAfrica: 80 * MB, medianEurope: 6 * MB, sigma: 1.05, multiplexExp: 0.62, upFraction: 0.32},
	services.CategorySearch: {medianAfrica: 2 * MB, medianEurope: 3 * MB, sigma: 1.0, multiplexExp: 0.6, upFraction: 0.06},
	services.CategorySocial: {medianAfrica: 80 * MB, medianEurope: 28 * MB, sigma: 1.0, multiplexExp: 0.58, upFraction: 0.13},
	services.CategoryVideo:  {medianAfrica: 80 * MB, medianEurope: 150 * MB, sigma: 1.35, multiplexExp: 0.22, upFraction: 0.015},
	services.CategoryWork:   {medianAfrica: 8 * MB, medianEurope: 15 * MB, sigma: 1.3, multiplexExp: 0.6, upFraction: 0.28},
}

// serviceVolumeFactor adjusts a service's volume relative to its category
// median (a WhatsApp day moves more bytes than a Telegram day).
var serviceVolumeFactor = map[string]float64{
	"Whatsapp": 1.0, "Snapchat": 0.55, "Telegram": 0.35, "Wechat": 0.6, "Skype": 0.5,
	"Youtube": 1.7, "Netflix": 1.35, "Primevideo": 1.2, "Sky": 1.3,
	"Instagram": 0.85, "Tiktok": 1.05, "Facebook": 0.6, "Twitter": 0.35, "Linkedin": 0.2,
	"Google": 1.0, "Bing": 0.5, "Yahoo": 0.4, "Duckduck": 0.4,
	"Spotify": 1.0, "Dropbox": 1.0, "Office365": 1.2, "Gsuite": 0.8,
}

// DailyServiceVolume samples the total bytes a customer moves for one
// service on one day (down+up combined; split with upFraction).
func DailyServiceVolume(c *Customer, svc *services.Service, r *dist.Rand) (down, up int64) {
	m, ok := volumeModels[svc.Category]
	if !ok {
		return 0, 0
	}
	median := m.medianEurope
	if c.Country.Continent == geo.Africa {
		median = m.medianAfrica
	}
	if f, ok := serviceVolumeFactor[svc.Name]; ok {
		median *= f
	}
	if c.Multiplex > 1 {
		median *= math.Pow(float64(c.Multiplex), m.multiplexExp)
	}
	total := dist.LogNormalFromMedian(median, m.sigma).Sample(r)
	const maxDaily = 80 << 30 // safety cap: 80 GB/day
	if total > maxDaily {
		total = maxDaily
	}
	up = int64(total * m.upFraction)
	down = int64(total) - up
	return down, up
}

// UpFraction exposes a category's upload share for tests and docs.
func UpFraction(cat services.Category) float64 { return volumeModels[cat].upFraction }

// flowSizeModel gives the per-flow size distribution of a category: video
// moves few big flows, chat many small ones. Sizes are download bytes per
// flow.
type flowSizeModel struct {
	median float64
	sigma  float64
	// maxFlows caps the number of flows a service-day may produce.
	maxFlows int
}

var flowSizes = map[services.Category]flowSizeModel{
	services.CategoryAudio:  {median: 2 * MB, sigma: 0.8, maxFlows: 300},
	services.CategoryChat:   {median: 120 << 10, sigma: 1.5, maxFlows: 2500},
	services.CategorySearch: {median: 50 << 10, sigma: 1.0, maxFlows: 1200},
	services.CategorySocial: {median: 400 << 10, sigma: 1.4, maxFlows: 2500},
	services.CategoryVideo:  {median: 6 * MB, sigma: 1.2, maxFlows: 500},
	services.CategoryWork:   {median: 350 << 10, sigma: 1.5, maxFlows: 1000},
}

// SampleFlowSizes splits a service-day volume into individual flow sizes.
func SampleFlowSizes(cat services.Category, downTotal int64, r *dist.Rand) []int64 {
	m, ok := flowSizes[cat]
	if !ok || downTotal <= 0 {
		return nil
	}
	ln := dist.LogNormalFromMedian(m.median, m.sigma)
	var out []int64
	remaining := downTotal
	for remaining > 0 && len(out) < m.maxFlows {
		s := int64(ln.Sample(r))
		if s < 1<<10 {
			s = 1 << 10
		}
		if s > remaining {
			s = remaining
		}
		out = append(out, s)
		remaining -= s
	}
	if remaining > 0 && len(out) > 0 {
		// Budget exhausted by the flow cap: fold the tail into the last
		// flow so byte accounting stays exact.
		out[len(out)-1] += remaining
	}
	return out
}
