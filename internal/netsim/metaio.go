package netsim

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/tstat"
	"satwatch/internal/workload"
)

// Metadata serialization: the operator-side join table (anonymized client →
// country/beam/plan/archetype/resolver, plus the anonymized country
// prefixes). Persisting it alongside the flow/DNS logs makes a simulation
// output fully re-analyzable from disk — the paper's pipeline, where the
// probe writes logs at the ground station and the Hadoop cluster joins
// them with operator metadata later (§3.1).

const metaHeader = "client\tcountry\tbeam\ttype\tplan_mbps\tmultiplex\tresolver"
const prefixHeader = "prefix\tcountry"

// WriteMeta writes the customer metadata table as TSV.
func WriteMeta(w io.Writer, meta map[netip.Addr]CustomerMeta) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, metaHeader); err != nil {
		return err
	}
	// Deterministic order.
	addrs := make([]netip.Addr, 0, len(meta))
	for a := range meta {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	for _, a := range addrs {
		m := meta[a]
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%g\t%d\t%s\n",
			a, m.Country, m.Beam, m.Type, m.PlanMbs, m.Multiplex, m.Resolver); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseMetaLine parses one data line of the customer metadata TSV.
func parseMetaLine(text string) (netip.Addr, CustomerMeta, error) {
	var m CustomerMeta
	f := strings.Split(text, "\t")
	if len(f) != 7 {
		return netip.Addr{}, m, fmt.Errorf("%d fields, want 7", len(f))
	}
	addr, err := netip.ParseAddr(f[0])
	if err != nil {
		return netip.Addr{}, m, err
	}
	beam, err := strconv.Atoi(f[2])
	if err != nil {
		return netip.Addr{}, m, err
	}
	typ, err := strconv.Atoi(f[3])
	if err != nil {
		return netip.Addr{}, m, err
	}
	plan, err := strconv.ParseFloat(f[4], 64)
	if err != nil {
		return netip.Addr{}, m, err
	}
	mux, err := strconv.Atoi(f[5])
	if err != nil {
		return netip.Addr{}, m, err
	}
	m = CustomerMeta{
		Country:   geo.CountryCode(f[1]),
		Beam:      beam,
		Type:      workload.CustomerType(typ),
		PlanMbs:   plan,
		Multiplex: mux,
		Resolver:  dnssim.ResolverID(f[6]),
	}
	return addr, m, nil
}

// readMeta is the shared scanner behind ReadMeta/ReadMetaTolerant.
func readMeta(r io.Reader, strict bool) (map[netip.Addr]CustomerMeta, tstat.ReadStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := map[netip.Addr]CustomerMeta{}
	var st tstat.ReadStats
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if first {
			first = false
			if text != metaHeader {
				return nil, st, fmt.Errorf("netsim: meta line 1: unexpected header")
			}
			continue
		}
		if text == "" {
			continue
		}
		addr, m, err := parseMetaLine(text)
		if err != nil {
			if strict {
				return nil, st, fmt.Errorf("netsim: meta line %d: %w", line, err)
			}
			st.Skipped++
			continue
		}
		st.Lines++
		out[addr] = m
	}
	return out, st, sc.Err()
}

// ReadMeta parses a TSV written by WriteMeta, failing on the first
// corrupt line.
func ReadMeta(r io.Reader) (map[netip.Addr]CustomerMeta, error) {
	out, _, err := readMeta(r, true)
	return out, err
}

// ReadMetaTolerant parses a TSV written by WriteMeta, skipping and
// counting corrupt lines.
func ReadMetaTolerant(r io.Reader) (map[netip.Addr]CustomerMeta, tstat.ReadStats, error) {
	return readMeta(r, false)
}

// WritePrefixes writes the anonymized country-prefix table as TSV.
func WritePrefixes(w io.Writer, prefixes map[netip.Prefix]geo.CountryCode) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, prefixHeader); err != nil {
		return err
	}
	ps := make([]netip.Prefix, 0, len(prefixes))
	for p := range prefixes {
		ps = append(ps, p)
	}
	sortPrefixes(ps)
	for _, p := range ps {
		if _, err := fmt.Fprintf(bw, "%s\t%s\n", p, prefixes[p]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPrefixes parses a TSV written by WritePrefixes.
func ReadPrefixes(r io.Reader) (map[netip.Prefix]geo.CountryCode, error) {
	sc := bufio.NewScanner(r)
	out := map[netip.Prefix]geo.CountryCode{}
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if first {
			first = false
			if text != prefixHeader {
				return nil, fmt.Errorf("netsim: prefix line 1: unexpected header")
			}
			continue
		}
		if text == "" {
			continue
		}
		f := strings.Split(text, "\t")
		if len(f) != 2 {
			return nil, fmt.Errorf("netsim: prefix line %d: %d fields", line, len(f))
		}
		p, err := netip.ParsePrefix(f[0])
		if err != nil {
			return nil, fmt.Errorf("netsim: prefix line %d: %w", line, err)
		}
		out[p] = geo.CountryCode(f[1])
	}
	return out, sc.Err()
}

func sortAddrs(addrs []netip.Addr) {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
}

func sortPrefixes(ps []netip.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if c := ps[i].Addr().Compare(ps[j].Addr()); c != 0 {
			return c < 0
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}
