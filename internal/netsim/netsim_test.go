package netsim

import (
	"testing"
	"time"

	"satwatch/internal/geo"
	"satwatch/internal/tstat"
)

// run executes a small deterministic simulation, cached across tests.
var cachedOut *Output

func smallRun(t *testing.T) *Output {
	t.Helper()
	if cachedOut != nil {
		return cachedOut
	}
	out, err := Run(Config{Customers: 80, Days: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cachedOut = out
	return out
}

func TestRunProducesFlowsAndDNS(t *testing.T) {
	out := smallRun(t)
	if len(out.Flows) < 1000 {
		t.Fatalf("only %d flows", len(out.Flows))
	}
	if len(out.DNS) < 100 {
		t.Fatalf("only %d DNS transactions", len(out.DNS))
	}
	if len(out.Meta) < 70 {
		t.Fatalf("metadata for %d customers", len(out.Meta))
	}
	if len(out.Beams) != len(geo.Beams()) {
		t.Fatalf("%d beam stats", len(out.Beams))
	}
}

func TestClientsAreAnonymized(t *testing.T) {
	out := smallRun(t)
	for i := range out.Flows {
		f := &out.Flows[i]
		// Raw CPE addresses live in 10.16.0.0/12; anonymized ones must
		// not (prefix-preservation maps the 10/8 block elsewhere
		// deterministically, but never identically for our keys).
		if _, ok := out.Meta[f.Client]; !ok {
			t.Fatalf("flow client %v has no metadata — anonymization/metadata mismatch", f.Client)
		}
	}
}

func TestCountryPrefixRecovery(t *testing.T) {
	out := smallRun(t)
	for addr, meta := range out.Meta {
		found := false
		for p, code := range out.CountryPrefixes {
			if p.Contains(addr) {
				found = true
				if code != meta.Country {
					t.Fatalf("prefix says %s, metadata says %s", code, meta.Country)
				}
			}
		}
		if !found {
			t.Fatalf("no prefix covers %v", addr)
		}
	}
}

func TestSatRTTFloor(t *testing.T) {
	out := smallRun(t)
	n := 0
	for i := range out.Flows {
		f := &out.Flows[i]
		if f.SatRTT == 0 {
			continue
		}
		n++
		if f.SatRTT < 470*time.Millisecond {
			t.Fatalf("satellite RTT %v below the GEO propagation floor", f.SatRTT)
		}
	}
	if n == 0 {
		t.Fatal("no satellite RTT samples at all")
	}
}

func TestFlowsCarryDomainsAndRTT(t *testing.T) {
	out := smallRun(t)
	withDomain, withRTT := 0, 0
	for i := range out.Flows {
		f := &out.Flows[i]
		if f.Domain != "" {
			withDomain++
		}
		if f.GroundRTT.Samples > 0 {
			withRTT++
		}
	}
	if frac := float64(withDomain) / float64(len(out.Flows)); frac < 0.5 {
		t.Fatalf("only %.2f of flows carry a domain", frac)
	}
	if frac := float64(withRTT) / float64(len(out.Flows)); frac < 0.5 {
		t.Fatalf("only %.2f of flows have ground RTT samples", frac)
	}
}

func TestProtocolMix(t *testing.T) {
	out := smallRun(t)
	vol := map[tstat.Protocol]int64{}
	var total int64
	for i := range out.Flows {
		f := &out.Flows[i]
		vol[f.Proto] += f.BytesUp + f.BytesDown
		total += f.BytesUp + f.BytesDown
	}
	share := func(p tstat.Protocol) float64 { return 100 * float64(vol[p]) / float64(total) }
	// Loose Table 1 bands: shapes, not absolutes.
	if s := share(tstat.ProtoHTTPS); s < 35 || s > 70 {
		t.Fatalf("HTTPS share %.1f%% outside [35,70]", s)
	}
	if s := share(tstat.ProtoQUIC); s < 10 || s > 35 {
		t.Fatalf("QUIC share %.1f%% outside [10,35]", s)
	}
	if s := share(tstat.ProtoHTTP); s < 3 || s > 25 {
		t.Fatalf("HTTP share %.1f%% outside [3,25]", s)
	}
	if s := share(tstat.ProtoDNS); s > 0.5 {
		t.Fatalf("DNS share %.2f%% above Table 1's <0.1%% scale", s)
	}
	if vol[tstat.ProtoRTP] == 0 || vol[tstat.ProtoTCPOther] == 0 || vol[tstat.ProtoUDPOther] == 0 {
		t.Fatal("missing protocol classes in the mix")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(Config{Customers: 25, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Customers: 25, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Flows) != len(b.Flows) || len(a.DNS) != len(b.DNS) {
		t.Fatalf("sizes differ: %d/%d flows, %d/%d dns", len(a.Flows), len(b.Flows), len(a.DNS), len(b.DNS))
	}
	for i := range a.Flows {
		x, y := a.Flows[i], b.Flows[i]
		if x.Client != y.Client || x.Start != y.Start || x.BytesDown != y.BytesDown || x.SatRTT != y.SatRTT {
			t.Fatalf("flow %d differs between identical runs", i)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a, _ := Run(Config{Customers: 25, Days: 1, Seed: 5})
	b, _ := Run(Config{Customers: 25, Days: 1, Seed: 6})
	if len(a.Flows) == len(b.Flows) && len(a.DNS) == len(b.DNS) {
		same := true
		for i := range a.Flows {
			if a.Flows[i].Start != b.Flows[i].Start {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical runs")
		}
	}
}

func TestBeamStatsSane(t *testing.T) {
	out := smallRun(t)
	for _, b := range out.Beams {
		if b.PeakUtil <= 0 || b.PeakUtil > 1.05 {
			t.Fatalf("beam %d peak util %v", b.Beam, b.PeakUtil)
		}
		if b.MeanUtil > b.PeakUtil {
			t.Fatalf("beam %d mean util above peak", b.Beam)
		}
		if b.CapacityBps <= 0 {
			t.Fatalf("beam %d capacity %v", b.Beam, b.CapacityBps)
		}
	}
}

func TestAblationPEPReducesCongestedRTT(t *testing.T) {
	base, err := Run(Config{Customers: 60, Days: 1, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	nopep, err := Run(Config{Customers: 60, Days: 1, Seed: 21, DisablePEP: true})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(out *Output) time.Duration {
		var sum time.Duration
		n := 0
		for i := range out.Flows {
			f := &out.Flows[i]
			if f.SatRTT > 0 && out.Meta[f.Client].Country == "CD" {
				sum += f.SatRTT
				n++
			}
		}
		if n == 0 {
			t.Fatal("no Congolese TLS flows")
		}
		return sum / time.Duration(n)
	}
	if m0, m1 := mean(base), mean(nopep); m1 >= m0 {
		t.Fatalf("disabling the PEP did not reduce Congo's satellite RTT (%v → %v)", m0, m1)
	}
}

func TestAblationAfricanGroundStation(t *testing.T) {
	base, err := Run(Config{Customers: 60, Days: 1, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Run(Config{Customers: 60, Days: 1, Seed: 22, AfricanGroundStation: true})
	if err != nil {
		t.Fatal(err)
	}
	// African customers' worst-case ground RTTs must collapse.
	p95 := func(out *Output) float64 {
		var xs []float64
		for i := range out.Flows {
			f := &out.Flows[i]
			meta := out.Meta[f.Client]
			if f.GroundRTT.Samples > 0 && (meta.Country == "CD" || meta.Country == "NG") {
				xs = append(xs, f.GroundRTT.Avg.Seconds())
			}
		}
		if len(xs) == 0 {
			t.Fatal("no African ground RTT samples")
		}
		// crude p95
		max := 0.0
		over := 0
		for _, x := range xs {
			if x > 0.25 {
				over++
			}
			if x > max {
				max = x
			}
		}
		return float64(over) / float64(len(xs))
	}
	if b, l := p95(base), p95(local); l >= b {
		t.Fatalf("African gateway did not reduce the >250ms share (%.3f → %.3f)", b, l)
	}
}
