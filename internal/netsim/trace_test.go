package netsim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"satwatch/internal/obs"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

// traceRun executes a small simulation with tracing attached and returns
// the raw JSONL bytes.
func traceRun(t *testing.T, seed uint64, sampleN, parallelism int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(&buf, sampleN)
	_, err := Run(Config{Customers: 25, Days: 1, Seed: seed,
		Parallelism: parallelism, Trace: tr})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("trace close: %v", err)
	}
	return buf.Bytes()
}

// TestTraceDeterministic is the tentpole guarantee: same seed and sample
// rate produce byte-identical trace output, across repeated runs and
// across worker counts.
func TestTraceDeterministic(t *testing.T) {
	a := traceRun(t, 5, 17, 1)
	b := traceRun(t, 5, 17, 1)
	if !bytes.Equal(a, b) {
		t.Fatal("trace output differs between identical runs")
	}
	c := traceRun(t, 5, 17, 4)
	if !bytes.Equal(a, c) {
		t.Fatal("trace output depends on worker count")
	}
	if len(a) == 0 {
		t.Fatal("sampling selected no flows; lower the rate so the test bites")
	}
	d := traceRun(t, 6, 17, 1)
	if bytes.Equal(a, d) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTraceDecompositionConsistent checks every traced flow's satellite
// spans sum to its recorded total within 1 ms, and that the probe's
// handshake-RTT measurement agrees with the decomposition for flows
// where tstat could measure it.
func TestTraceDecompositionConsistent(t *testing.T) {
	flows, err := trace.Read(bytes.NewReader(traceRun(t, 9, 5, 0)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(flows) < 20 {
		t.Fatalf("only %d traced flows; not enough to exercise the check", len(flows))
	}
	measured := 0
	for _, f := range flows {
		if f.TotalMS <= 0 {
			t.Fatalf("%s has no total RTT", f.ID())
		}
		if d := math.Abs(f.SatSumMS() - f.TotalMS); d > 1 {
			t.Fatalf("%s: sat spans sum %.3f ms vs total %.3f ms (|Δ| %.3f > 1)",
				f.ID(), f.SatSumMS(), f.TotalMS, d)
		}
		if f.ComponentMS(trace.SpanPropagation) <= 0 {
			t.Fatalf("%s missing propagation span", f.ID())
		}
		if hs := f.ComponentMS(trace.SpanHandshakeRTT); hs > 0 {
			measured++
			// The probe measures the satellite leg from the handshake gap;
			// for HTTPS that gap is exactly the satellite RTT.
			if strings.Contains(f.Proto, "HTTPS") {
				if d := math.Abs(hs - f.TotalMS); d > 1 {
					t.Fatalf("%s: probe measured %.3f ms vs total %.3f ms (|Δ| %.3f > 1)",
						f.ID(), hs, f.TotalMS, d)
				}
			}
		}
	}
	if measured == 0 {
		t.Fatal("no traced flow carries a probe handshake-RTT span")
	}
}

// TestTraceAgreesWithAggregates cross-checks the flight recorder against
// the obs histograms: with every flow sampled, the summed pep.setup span
// time must equal the pep_setup_sojourn_seconds histogram sum for the
// same run.
func TestTraceAgreesWithAggregates(t *testing.T) {
	obs.Default.Reset()
	flows, err := trace.Read(bytes.NewReader(traceRun(t, 3, 1, 0)))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	snap, ok := obs.Default.Get("pep_setup_sojourn_seconds")
	if !ok {
		t.Fatal("pep_setup_sojourn_seconds not registered")
	}
	var spanSeconds float64
	spans := 0
	for _, f := range flows {
		if ms := f.ComponentMS(trace.SpanPEPSetup); ms > 0 {
			spanSeconds += ms / 1000
			spans++
		}
	}
	if spans == 0 || snap.Count == 0 {
		t.Fatalf("nothing to compare: %d spans, %d observations", spans, snap.Count)
	}
	// Identical samples, so the sums agree to float tolerance (the spans
	// are stored in ms, the histogram in seconds).
	if d := math.Abs(spanSeconds - snap.Value); d > 1e-3*math.Max(1, snap.Value) {
		t.Fatalf("pep.setup spans sum %.6f s vs histogram sum %.6f s (Δ %.6f)",
			spanSeconds, snap.Value, d)
	}
}

// TestTraceDisabledUnchanged guards the nil path: a run without a tracer
// must produce exactly the same flow records as before tracing existed
// (the instrumented components delegate through nil handles).
func TestTraceDisabledUnchanged(t *testing.T) {
	a, err := Run(Config{Customers: 25, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := trace.New(&buf, 3)
	b, err := Run(Config{Customers: 25, Days: 1, Seed: 5, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("tracing changed flow count: %d vs %d", len(a.Flows), len(b.Flows))
	}
	var wantTSV, gotTSV bytes.Buffer
	if err := tstat.WriteFlows(&wantTSV, a.Flows); err != nil {
		t.Fatal(err)
	}
	if err := tstat.WriteFlows(&gotTSV, b.Flows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantTSV.Bytes(), gotTSV.Bytes()) {
		t.Fatal("tracing changed the flow log output")
	}
}
