package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"satwatch/internal/cdn"
	"satwatch/internal/dist"
	"satwatch/internal/dnssim"
	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/mac"
	"satwatch/internal/packet"
	"satwatch/internal/pepmodel"
	"satwatch/internal/phy"
	"satwatch/internal/shaper"
	"satwatch/internal/tcpmodel"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
	"satwatch/internal/workload"
)

// observer is where the synthesizer delivers segment events: a single
// tracker, or the sharded tracker when pass B runs in parallel.
type observer interface {
	Observe(tuple packet.FiveTuple, ev tstat.SegmentEvent)
}

// flowTracer is the optional observer extension that completes trace
// handles with the probe's own measurements (implemented by
// tstat.Tracker).
type flowTracer interface {
	TraceFlow(tuple packet.FiveTuple, fl *trace.Flow)
}

// synthesizer turns flow intents into vantage-point segment events.
type synthesizer struct {
	cfg Config
	// con is the orbit backend; sched the effective fault schedule
	// (Config.Faults plus constellation-contributed handover events).
	con     geo.Constellation
	sched   *faults.Schedule
	tracker observer
	mac     *mac.Model
	loads   []*beamLoad // indexed by beam ID

	// channels and propRTT are precomputed per country for a static
	// constellation and left empty for a moving one, where both are
	// evaluated per flow at the flow's start time.
	channels map[geo.CountryCode]phy.Channel
	propRTT  map[geo.CountryCode]time.Duration
	ports    map[int]*portAlloc

	chCache  map[string][]byte // ClientHello bytes per SNI
	shBytes  []byte            // ServerHello + Certificate + HelloDone
	ckeBytes []byte            // ClientKeyExchange + CCS + Finished

	// Per-flow fault state, reset at the top of flow() (each synthesizer
	// is single-goroutine). cutoff > 0 marks a gateway switchover during
	// the flow's lifetime: events at or past it are suppressed and the
	// first suppressed TCP event becomes a single RST. retxP is the
	// rain-driven per-lead-segment retransmission probability.
	cutoff time.Duration
	cutRST bool
	retxP  float64
}

// observe delivers one event to the tracker unless a gateway switchover
// cut the flow first: the old gateway tears its proxied connections
// down, so the probe sees a reset at the switch instant and nothing
// after (the paper's mass flow resets on ground-station maintenance).
func (s *synthesizer) observe(tuple packet.FiveTuple, ev tstat.SegmentEvent) {
	if s.cutoff > 0 && ev.T >= s.cutoff {
		if !s.cutRST && tuple.Proto == packet.ProtoTCP {
			s.cutRST = true
			s.tracker.Observe(tuple, tstat.SegmentEvent{T: s.cutoff, Flags: packet.FlagRST, Packets: 1, WireLen: hdrLen})
		}
		return
	}
	s.tracker.Observe(tuple, ev)
}

const mss = tcpmodel.MSS

// headers per wire packet (IP+TCP), for WireLen accounting.
const hdrLen = 40

func (s *synthesizer) init() error {
	if s.ports != nil {
		return nil
	}
	s.ports = map[int]*portAlloc{}
	s.chCache = map[string][]byte{}
	if s.con == nil {
		s.con = geo.GEO{Sat: geo.DefaultSatellite}
	}
	s.propRTT = map[geo.CountryCode]time.Duration{}
	if s.con.Static() {
		for code := range s.channels {
			c, _ := geo.ByCode(code)
			s.propRTT[code] = s.con.SegmentRTT(c, 0)
		}
	}
	sh, err := (&packet.ServerHello{Version: packet.TLSVersion12, CipherSuite: 0xc02f}).Encode()
	if err != nil {
		return fmt.Errorf("encode ServerHello: %w", err)
	}
	hs := append(sh, packet.OpaqueHandshake(packet.TLSHandshakeCertificate, 2800)...)
	hs = append(hs, packet.OpaqueHandshake(packet.TLSHandshakeServerHelloDone, 0)...)
	rec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: hs}).Encode()
	if err != nil {
		return fmt.Errorf("encode server handshake record: %w", err)
	}
	s.shBytes = rec

	cke := packet.OpaqueHandshake(packet.TLSHandshakeClientKeyExchange, 66)
	rec1, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: cke}).Encode()
	if err != nil {
		return fmt.Errorf("encode ClientKeyExchange record: %w", err)
	}
	ccs, err := (&packet.TLSRecord{Type: packet.TLSRecordChangeCipherSpec, Version: packet.TLSVersion12, Payload: []byte{1}}).Encode()
	if err != nil {
		return fmt.Errorf("encode ChangeCipherSpec record: %w", err)
	}
	s.ckeBytes = append(rec1, ccs...)
	return nil
}

func (s *synthesizer) clientHello(sni string) ([]byte, error) {
	if b, ok := s.chCache[sni]; ok {
		return b, nil
	}
	hs, err := (&packet.ClientHello{Version: packet.TLSVersion12, ServerName: sni}).Encode()
	if err != nil {
		return nil, fmt.Errorf("encode ClientHello %q: %w", sni, err)
	}
	rec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: hs}).Encode()
	if err != nil {
		return nil, fmt.Errorf("encode ClientHello record %q: %w", sni, err)
	}
	s.chCache[sni] = rec
	return rec, nil
}

// portAlloc hands out a customer's ephemeral source ports.
type portAlloc struct {
	next uint16
	// busy maps issued ports to a conservative busy-until timestamp, so a
	// wrapped allocator never reissues a port whose previous flow the
	// probe could still be tracking (which would merge two flows sharing
	// a server into one 5-tuple).
	busy map[uint16]time.Duration
}

// portReuseGuard must exceed the tracker's largest inactivity window
// (TCPIdle + FinLinger) so a reused 5-tuple always lands on a fresh flow.
const portReuseGuard = 6 * time.Minute

// nextPort issues an ephemeral port for a flow starting at start. Ports
// walk 1024..65535 and wrap; a wrapped port is reissued only once its
// previous flow has been idle past the tracker's sweep window.
func (s *synthesizer) nextPort(custID int, start time.Duration) uint16 {
	pa := s.ports[custID]
	if pa == nil {
		pa = &portAlloc{next: 1024, busy: map[uint16]time.Duration{}}
		s.ports[custID] = pa
	}
	for tries := 0; tries < 1<<16; tries++ {
		p := pa.next
		if pa.next == 65535 {
			pa.next = 1024
		} else {
			pa.next++
		}
		if until, ok := pa.busy[p]; ok {
			if until+portReuseGuard > start {
				continue
			}
			delete(pa.busy, p)
		}
		return p
	}
	// Pathological: every port busy. Reuse the cursor anyway.
	return pa.next
}

// holdPort records when a flow on port p went quiet, blocking its reuse
// until the probe must have swept the flow.
func (s *synthesizer) holdPort(custID int, p uint16, end time.Duration) {
	if pa := s.ports[custID]; pa != nil && end > pa.busy[p] {
		pa.busy[p] = end
	}
}

// pathParams holds the per-flow sampled network conditions.
type pathParams struct {
	groundRTT time.Duration
	satRTT    time.Duration // prop + MAC + PEP, the satellite segment
	bneckBps  float64       // delivery bottleneck toward the customer
	upBps     float64
	// bypass marks a flow that fell off split-TCP during a PEP overload
	// window: its handshake legs and download RTT cross the satellite.
	bypass bool
	// retxP is the per-lead-segment retransmission probability induced
	// by rain-driven frame loss (0 in clear sky).
	retxP float64
	// degraded marks the flow as shaped by at least one fault event.
	degraded bool
}

func (s *synthesizer) samplePath(fi *workload.FlowIntent, region cdn.Region, class shaper.Class, r *dist.Rand, fl *trace.Flow) pathParams {
	c := fi.Customer
	h := hourOf(fi.Start)
	var bl *beamLoad
	if c.Beam >= 0 && c.Beam < len(s.loads) {
		bl = s.loads[c.Beam]
	}
	util := 0.0
	rho := 0.0
	if bl != nil {
		util = bl.util(h)
		rho = bl.pepRho(h, bl.beam.PEPFactor)
	}
	if util > 0.98 {
		util = 0.98
	}

	var p pathParams
	p.groundRTT = cdn.SampleGroundRTT(region, r)
	if s.cfg.AfricanGroundStation && region == cdn.RegionAfrica && c.Country.Continent == geo.Africa {
		// Ablation A2: a local gateway serves African-hosted content
		// without the hairpin through Italy.
		p.groundRTT = time.Duration(dist.LogNormalFromMedian(float64(35*time.Millisecond), 0.2).Sample(r))
	}
	sched := s.sched
	if extra := sched.GatewayRTTExtra(fi.Start); extra > 0 {
		// A gateway switchover is re-routing traffic through the backup
		// ground station: the detour adds a fixed RTT step.
		p.degraded = true
		p.groundRTT += extra
	}
	if !s.con.Static() {
		// Ground-segment diversity: the serving gateway rotates over the
		// day, and gateways away from the primary PoP pay extra ground
		// RTT toward the hosting regions.
		gw, extra := s.con.Gateway(c.Country, fi.Start)
		p.groundRTT += extra
		if fl != nil {
			fl.SetAttr("gateway", gw)
		}
	}
	if fl != nil {
		fl.Span(trace.SpanGroundRTT, trace.SegGround, p.groundRTT, trace.Attrs{"region": string(region)})
	}

	// Satellite segment: propagation + MAC access + PEP processing.
	ch, ok := s.channels[c.Country.Code]
	if !ok {
		ch = phy.ChannelAt(c.Country, s.con, fi.Start)
	}
	rain := 0.0
	if r.Bool(0.08) {
		rain = 0.6 + 0.4*r.Float64()
	}
	if front := sched.Rain(fi.Start, c.Beam); front > 0 {
		// A scheduled rain front is crossing the beam: the front's fade
		// depth overrides ambient weather, frames start failing (ARQ
		// repairs inflate the satellite RTT and retransmit segments),
		// and the degraded spectral efficiency makes the same offered
		// load fill a larger share of the beam.
		p.degraded = true
		if front > rain {
			rain = front
		}
		p.retxP = 8 * ch.FrameErrorRate(rain)
		if p.retxP > 0.3 {
			p.retxP = 0.3
		}
		if cf := ch.CapacityFactor(rain); cf > 0 && cf < 1 {
			util /= cf
			if util > 0.98 {
				util = 0.98
			}
		}
	}
	fer := ch.FrameErrorRate(rain)
	prop, ok := s.propRTT[c.Country.Code]
	if !ok {
		prop = s.con.SegmentRTT(c.Country, fi.Start)
	}
	phy.ObserveRTT(prop)
	// A disruptive satellite handover re-routing the beam damages flows
	// that start inside its window: the new path's RTT step, a
	// first-flight stall while it converges, and retransmit blips on the
	// lead segments. All pure functions of (schedule, flow start, beam).
	hoStep, hoStall, handover := sched.LEOHandover(fi.Start, c.Beam)
	if handover {
		p.degraded = true
		phy.CountHandover()
		if p.retxP < 0.12 {
			p.retxP = 0.12
		}
	}
	if fl != nil {
		fl.Span(trace.SpanPropagation, trace.SegSatellite, prop, trace.Attrs{
			"country":      string(c.Country.Code),
			"zenith_deg":   s.con.ZenithDeg(c.Country, fi.Start),
			"slant_passes": s.con.SlantPasses(),
		})
		if handover {
			fl.Span(trace.SpanHandover, trace.SegSatellite, hoStep+hoStall, trace.Attrs{
				"step_ms":  float64(hoStep) / float64(time.Millisecond),
				"stall_ms": float64(hoStall) / float64(time.Millisecond),
			})
		}
		fl.SetAttr("util", util)
		fl.SetAttr("fer", fer)
		fl.SetAttr("rho", rho)
	}
	if orho, ok := sched.PEPOverloadRho(fi.Start, c.Beam); ok {
		// PEP overload window: most new flows fall off split-TCP and
		// pay end-to-end GEO handshakes; the rest queue at the forced
		// saturation utilization (§6.1's multi-second setup sojourns).
		p.degraded = true
		if r.Bool(0.6) {
			p.bypass = true
			pepmodel.CountBypass()
		} else if orho > rho {
			rho = orho
		}
	}
	if !s.con.Static() && !p.bypass && !s.cfg.DisablePEP {
		// Adaptive split policy at LEO RTTs: the PEP's handshake benefit
		// (~2×propagation RTT) shrinks with the orbit, so when the M/M/1
		// setup sojourn at the beam's current rho would cost more than
		// the split saves, the operator forwards the flow end-to-end
		// instead of proxying it. A pure function of (prop, rho) — no
		// randomness — so it cannot perturb parallel determinism.
		if s.cfg.PEP.Benefit(prop, rho) <= 0 {
			p.bypass = true
			pepmodel.CountBypass()
		}
	}
	sat := prop
	if handover {
		sat += hoStep + hoStall
	}
	if !s.cfg.DisableMAC {
		sat += s.mac.SampleUplinkTraced(util, fer, r, fl)
		sat += s.mac.SampleDownlinkTraced(util, fer, r, fl)
	}
	if !s.cfg.DisablePEP && !p.bypass {
		sat += s.cfg.PEP.SetupDelayTraced(rho, r, fl)
	}
	p.satRTT = sat
	fl.SetTotal(sat)

	// Delivery bottleneck: plan shaping, beam congestion, terminal and
	// AP contention (§6.5's mechanisms).
	planBps := c.Plan.DownMbps * 1e6 / 8
	cong := 1.0
	if util > 0.5 {
		x := (util - 0.5) / 0.5
		cong = 1 - 0.55*x*x
	}
	term := 1.0
	if c.Country.Continent == geo.Africa {
		term = 0.85
	}
	apShare := 1.0
	if c.Multiplex > 1 {
		apShare = 1 / (1 + 0.06*float64(c.Multiplex-1))
	}
	qos := 1.0
	if class == shaper.ClassVideo {
		// The operator shapes streaming flows (§2.1 domain-specific
		// rules) to protect the shared beam.
		qos = 0.7
	}
	p.bneckBps = planBps * cong * term * apShare * qos
	if p.bneckBps < 50e3/8 {
		p.bneckBps = 50e3 / 8
	}
	p.upBps = c.Plan.UpMbps * 1e6 / 8 * cong * apShare
	if p.upBps < 25e3/8 {
		p.upBps = 25e3 / 8
	}
	if fl != nil {
		// The macro simulator applies plan shaping analytically (no
		// token-bucket tick on this path), so the shaper contribution is
		// the bottleneck itself, recorded as flow inputs.
		fl.SetAttr("bneck_mbps", p.bneckBps*8/1e6)
		fl.SetAttr("class", class.String())
	}
	return p
}

// flow synthesizes one intent into tracker events, recording the sampled
// flow's latency decomposition on fl (nil fl records nothing). Errors
// are serialization failures carrying the flow's context; the caller
// drops the customer and keeps the run alive.
func (s *synthesizer) flow(fi *workload.FlowIntent, r *dist.Rand, fl *trace.Flow) error {
	if err := s.init(); err != nil {
		return err
	}
	c := fi.Customer

	// Reset per-flow fault state, then resolve the flow's fate against
	// the schedule. All decisions are pure functions of (schedule, flow
	// start, beam) plus the flow's own forked random stream, so fault
	// runs stay byte-identical at any worker count.
	s.cutoff, s.cutRST, s.retxP = 0, false, 0
	sched := s.sched
	if ts, ok := sched.NextGatewaySwitch(fi.Start); ok {
		s.cutoff = ts
	}
	if sched.BeamDown(fi.Start, c.Beam) {
		s.failedFlow(fi, r, fl)
		mFlowsDegraded.Inc()
		return nil
	}

	// Server selection.
	var region cdn.Region
	var serverAddr netip.Addr
	var serverPort uint16
	if fi.Entry.Domain != "" {
		resolver := c.Resolver
		if s.cfg.ForceOperatorDNS {
			resolver, _ = dnssim.ByID(dnssim.ResolverOperator)
		}
		region = dnssim.SelectRegion(fi.Entry, resolver, c.Country, r)
		serverAddr = cdn.ServerAddr(fi.Entry.Domain, region, r.IntN(4))
		switch fi.Proto {
		case cdn.AppHTTP:
			serverPort = 80
		default:
			serverPort = 443
		}
	} else {
		region = fi.OpaqueRegion
		serverAddr = fi.OpaqueServer
		switch fi.Proto {
		case cdn.AppTCPOther:
			serverPort = []uint16{1194, 8443, 22, 25}[r.IntN(4)]
		case cdn.AppRTP:
			serverPort = uint16(30000 + r.IntN(2000))
		default:
			serverPort = []uint16{3478, 27015, 4500}[r.IntN(3)]
		}
	}

	class := shaper.ClassifyFlow(fi.Domain, serverPort)
	if fl != nil {
		fl.SetMeta(c.Beam, string(c.Country.Code), hourOf(fi.Start)%24,
			fi.Proto.String(), fi.Domain, fi.Start)
	}
	path := s.samplePath(fi, region, class, r, fl)
	if path.degraded {
		mFlowsDegraded.Inc()
		if fl != nil {
			fl.SetAttr("faulted", true)
		}
	}
	s.retxP = path.retxP
	client := packet.Endpoint{Addr: c.Addr, Port: s.nextPort(c.ID, fi.Start)}
	server := packet.Endpoint{Addr: serverAddr, Port: serverPort}

	if fl != nil {
		// Hand the trace to the probe: the tracker appends its own
		// handshake-RTT measurement and finishes the tree when the flow
		// record is emitted. Sinks without trace support finish here.
		tupleProto := packet.ProtoUDP
		switch fi.Proto {
		case cdn.AppHTTPS, cdn.AppHTTP, cdn.AppTCPOther:
			tupleProto = packet.ProtoTCP
		}
		tuple := packet.FiveTuple{Proto: tupleProto, Src: client, Dst: server}
		if ft, ok := s.tracker.(flowTracer); ok {
			ft.TraceFlow(tuple, fl)
		} else {
			defer fl.Finish()
		}
	}

	// DNS resolution precedes ~30% of catalog flows (the rest hit the
	// device/CPE cache).
	if fi.Entry.Domain != "" && r.Bool(0.3) {
		s.dnsTransaction(fi, c, serverAddr, r)
	}

	var end time.Duration
	switch fi.Proto {
	case cdn.AppHTTPS, cdn.AppHTTP, cdn.AppTCPOther:
		var err error
		end, err = s.tcpFlow(fi, client, server, path, r)
		if err != nil {
			return err
		}
	case cdn.AppQUIC:
		end = s.quicFlow(fi, client, server, path, r)
	case cdn.AppRTP:
		end = s.rtpFlow(fi, client, server, path, r)
	default:
		end = s.udpFlow(fi, client, server, path, r)
	}
	s.holdPort(c.ID, client.Port, end)
	return nil
}

// failedFlow synthesizes the vantage-point view of a flow started into a
// dead beam: the client's attempts leave the terminal but nothing comes
// back, so the probe logs an unanswered SYN train (or a couple of lone
// datagrams) with zero downstream bytes.
func (s *synthesizer) failedFlow(fi *workload.FlowIntent, r *dist.Rand, fl *trace.Flow) {
	c := fi.Customer
	var serverAddr netip.Addr
	var serverPort uint16
	if fi.Entry.Domain != "" {
		// Resolution is cached or stale; region choice is moot for a flow
		// that never leaves the beam, so pin the first candidate server.
		serverAddr = cdn.ServerAddr(fi.Entry.Domain, cdn.RegionEurope, 0)
		serverPort = 443
	} else {
		serverAddr = fi.OpaqueServer
		serverPort = 443
	}
	client := packet.Endpoint{Addr: c.Addr, Port: s.nextPort(c.ID, fi.Start)}
	server := packet.Endpoint{Addr: serverAddr, Port: serverPort}

	isTCP := false
	switch fi.Proto {
	case cdn.AppHTTPS, cdn.AppHTTP, cdn.AppTCPOther:
		isTCP = true
	}
	if fl != nil {
		fl.SetMeta(c.Beam, string(c.Country.Code), hourOf(fi.Start)%24,
			fi.Proto.String(), fi.Domain, fi.Start)
		fl.SetAttr("fault", "beam_outage")
		fl.SetAttr("faulted", true)
		defer fl.Finish()
	}
	end := fi.Start
	if isTCP {
		tuple := packet.FiveTuple{Proto: packet.ProtoTCP, Src: client, Dst: server}
		// SYN plus the kernel's first two retries (1 s, then 3 s backoff).
		for _, off := range []time.Duration{0, time.Second, 3 * time.Second} {
			s.observe(tuple, tstat.SegmentEvent{T: fi.Start + off, Flags: packet.FlagSYN, Packets: 1, WireLen: hdrLen + 12})
			end = fi.Start + off
		}
	} else {
		tuple := packet.FiveTuple{Proto: packet.ProtoUDP, Src: client, Dst: server}
		sz := 64 + r.IntN(400)
		for _, off := range []time.Duration{0, 2 * time.Second} {
			s.observe(tuple, tstat.SegmentEvent{T: fi.Start + off, Payload: sz, WireLen: sz + 28, Packets: 1})
			end = fi.Start + off
		}
	}
	s.holdPort(c.ID, client.Port, end)
}

// dnsTransaction emits the query/response pair observed at the vantage
// point: the response time is the resolver leg from the ground station.
func (s *synthesizer) dnsTransaction(fi *workload.FlowIntent, c *workload.Customer, answer netip.Addr, r *dist.Rand) {
	resolver := c.Resolver
	if s.cfg.ForceOperatorDNS {
		resolver, _ = dnssim.ByID(dnssim.ResolverOperator)
	}
	respTime := resolver.SampleResponseTime(r)
	tq := fi.Start - respTime - 30*time.Millisecond
	if tq < 0 {
		tq = 0
	}
	id := uint16(r.Uint64())
	q := &packet.DNS{ID: id, RD: true,
		Questions: []packet.DNSQuestion{{Name: fi.Domain, Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	qb, err := q.Encode()
	if err != nil {
		return
	}
	resp := &packet.DNS{ID: id, QR: true, RA: true, Questions: q.Questions,
		Answers: []packet.DNSRR{{Name: fi.Domain, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: 60, Addr: answer}}}
	rb, err := resp.Encode()
	if err != nil {
		return
	}
	cp := packet.Endpoint{Addr: c.Addr, Port: s.nextPort(c.ID, tq)}
	rp := packet.Endpoint{Addr: resolver.Addr, Port: 53}
	c2r := packet.FiveTuple{Proto: packet.ProtoUDP, Src: cp, Dst: rp}

	if s.sched.ResolverDown(tq, string(resolver.ID)) {
		// Resolver outage: the stub resolver fires its query and walks the
		// retry ladder; a retry is answered only once the resolver is back.
		end := tq
		outage := 0
		attempts := []time.Duration{tq}
		for _, backoff := range dnssim.RetryBackoff {
			attempts = append(attempts, attempts[len(attempts)-1]+backoff)
		}
		for _, ta := range attempts {
			if !s.sched.ResolverDown(ta, string(resolver.ID)) {
				s.observe(c2r, tstat.SegmentEvent{T: ta, Payload: len(qb), WireLen: len(qb) + 28, Packets: 1, AppData: qb})
				s.observe(c2r.Reverse(), tstat.SegmentEvent{T: ta + respTime, Payload: len(rb), WireLen: len(rb) + 28, Packets: 1, AppData: rb})
				end = ta + respTime
				break
			}
			s.observe(c2r, tstat.SegmentEvent{T: ta, Payload: len(qb), WireLen: len(qb) + 28, Packets: 1, AppData: qb})
			outage++
			end = ta
		}
		dnssim.CountOutageQueries(outage)
		s.holdPort(c.ID, cp.Port, end)
		return
	}

	s.observe(c2r, tstat.SegmentEvent{T: tq, Payload: len(qb), WireLen: len(qb) + 28, Packets: 1, AppData: qb})
	s.observe(c2r.Reverse(), tstat.SegmentEvent{T: tq + respTime, Payload: len(rb), WireLen: len(rb) + 28, Packets: 1, AppData: rb})
	s.holdPort(c.ID, cp.Port, tq+respTime)
}

// tcpFlow synthesizes the PEP-side TCP conversation and returns the time
// of its last event.
func (s *synthesizer) tcpFlow(fi *workload.FlowIntent, client, server packet.Endpoint, path pathParams, r *dist.Rand) (time.Duration, error) {
	c2s := packet.FiveTuple{Proto: packet.ProtoTCP, Src: client, Dst: server}
	s2c := c2s.Reverse()
	g := path.groundRTT
	ms := time.Millisecond
	obs := func(tuple packet.FiveTuple, ev tstat.SegmentEvent) { s.observe(tuple, ev) }

	t := fi.Start
	seq := uint32(1)
	// Handshake (ground-station PEP ↔ server). A bypassed flow's final
	// handshake ACK comes from the real client across the satellite: the
	// probe's handshake RTT jumps from the ground leg to the GEO leg.
	ackGap := ms
	if path.bypass {
		ackGap = path.satRTT
	}
	obs(c2s, tstat.SegmentEvent{T: t, Flags: packet.FlagSYN, Packets: 1, WireLen: hdrLen + 12})
	obs(s2c, tstat.SegmentEvent{T: t + g, Flags: packet.FlagSYN | packet.FlagACK, Ack: 1, Packets: 1, WireLen: hdrLen + 12})
	obs(c2s, tstat.SegmentEvent{T: t + g + ackGap, Flags: packet.FlagACK, Ack: 1, Packets: 1, WireLen: hdrLen})

	dataStart := t + g + ackGap + ms
	switch fi.Proto {
	case cdn.AppHTTPS:
		ch, err := s.clientHello(fi.Domain)
		if err != nil {
			return 0, err
		}
		tCH := t + g + ackGap + ms
		obs(c2s, tstat.SegmentEvent{T: tCH, Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Payload: len(ch), WireLen: hdrLen + len(ch), Packets: 1, AppData: ch})
		seq += uint32(len(ch))
		obs(s2c, tstat.SegmentEvent{T: tCH + g, Flags: packet.FlagACK, Ack: seq, Packets: 1, WireLen: hdrLen})
		tSH := tCH + g + ms
		obs(s2c, tstat.SegmentEvent{T: tSH, Flags: packet.FlagACK | packet.FlagPSH, Seq: 1, Payload: len(s.shBytes), WireLen: 3*hdrLen + len(s.shBytes), Packets: 3, AppData: s.shBytes})
		// The client's next flight crosses the satellite: this gap is
		// the probe's satellite-RTT estimate (§2.2).
		tCKE := tSH + path.satRTT
		obs(c2s, tstat.SegmentEvent{T: tCKE, Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Payload: len(s.ckeBytes), WireLen: hdrLen + len(s.ckeBytes), Packets: 1, AppData: s.ckeBytes})
		seq += uint32(len(s.ckeBytes))
		obs(s2c, tstat.SegmentEvent{T: tCKE + g, Flags: packet.FlagACK, Ack: seq, Packets: 1, WireLen: hdrLen})
		dataStart = tCKE + g + ms
	case cdn.AppHTTP:
		req := (&packet.HTTPRequest{Method: "GET", Target: "/", Headers: []packet.HTTPHeader{{Name: "Host", Value: fi.Domain}}}).Encode()
		tReq := t + g + ackGap + ms
		obs(c2s, tstat.SegmentEvent{T: tReq, Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Payload: len(req), WireLen: hdrLen + len(req), Packets: 1, AppData: req})
		seq += uint32(len(req))
		obs(s2c, tstat.SegmentEvent{T: tReq + g, Flags: packet.FlagACK, Ack: seq, Packets: 1, WireLen: hdrLen})
		dataStart = tReq + g + ms
	default: // opaque TCP: first client payload right after the handshake
		first := 64 + r.IntN(400)
		obs(c2s, tstat.SegmentEvent{T: t + g + ackGap + ms, Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Payload: first, WireLen: hdrLen + first, Packets: 1, AppData: []byte{0x16, 0x99, 0x01}})
		seq += uint32(first)
		obs(s2c, tstat.SegmentEvent{T: t + g + ackGap + ms + g, Flags: packet.FlagACK, Ack: seq, Packets: 1, WireLen: hdrLen})
		dataStart = t + 2*g + ackGap + 2*ms
	}

	// Download phase. A bypassed flow's congestion control runs end to
	// end: slow start clocks on the full GEO RTT with no PEP buffer
	// absorbing it (the exact overhead split-TCP exists to hide).
	dlRTT := g
	pepBuf := s.cfg.PEP.PerUserBuffer
	if path.bypass {
		dlRTT = g + path.satRTT
		pepBuf = 0
	}
	tl := tcpmodel.Compute(fi.Down, tcpmodel.Params{RTT: dlRTT, BottleneckBps: path.bneckBps, InitialWindow: 10, PEPBuffer: pepBuf})
	durData := tl.LastData - tl.FirstData
	const maxDur = 4 * time.Hour
	if durData > maxDur {
		durData = maxDur
	}
	endData := s.emitDownload(c2s, s2c, dataStart, durData, fi.Down, seq, r)

	// Upload phase (client payload beyond the request).
	if fi.Up > 2<<10 {
		upDur := time.Duration(float64(fi.Up) / path.upBps * float64(time.Second))
		if upDur > maxDur {
			upDur = maxDur
		}
		tEnd := s.emitUpload(c2s, s2c, dataStart, upDur, fi.Up, &seq, path.groundRTT)
		if tEnd > endData {
			endData = tEnd
		}
	}

	// Teardown.
	obs(c2s, tstat.SegmentEvent{T: endData + 2*ms, Flags: packet.FlagFIN | packet.FlagACK, Seq: seq, Packets: 1, WireLen: hdrLen})
	obs(s2c, tstat.SegmentEvent{T: endData + 2*ms + g, Flags: packet.FlagFIN | packet.FlagACK, Ack: seq + 1, Packets: 1, WireLen: hdrLen})
	return endData + 2*ms + g, nil
}

// emitDownload spreads the server→client bytes over the transfer window:
// the first segments individually (the probe logs first-10 timings), the
// rest as burst events with exact byte/packet counts.
func (s *synthesizer) emitDownload(c2s, s2c packet.FiveTuple, start time.Duration, dur time.Duration, bytes int64, clientSeq uint32, r *dist.Rand) time.Duration {
	if bytes <= 0 {
		return start
	}
	obs := func(tuple packet.FiveTuple, ev tstat.SegmentEvent) { s.observe(tuple, ev) }
	segs := (bytes + mss - 1) / mss
	lead := segs
	if lead > 6 {
		lead = 6
	}
	leadGap := dur / time.Duration(lead*4+1)
	tv := start
	var sent int64
	srvSeq := uint32(1)
	for i := int64(0); i < lead; i++ {
		n := int64(mss)
		if bytes-sent < n {
			n = bytes - sent
		}
		obs(s2c, tstat.SegmentEvent{T: tv, Flags: packet.FlagACK, Seq: srvSeq, Payload: int(n), WireLen: hdrLen + int(n), Packets: 1})
		if s.retxP > 0 && r.Bool(s.retxP) {
			// Rain-window frame loss: the lead segment is repaired by a
			// retransmission the probe sees as a duplicate (same Seq),
			// inflating the flow's packet and byte counts.
			obs(s2c, tstat.SegmentEvent{T: tv + 40*time.Millisecond, Flags: packet.FlagACK, Seq: srvSeq, Payload: int(n), WireLen: hdrLen + int(n), Packets: 1})
		}
		srvSeq += uint32(n)
		sent += n
		tv += leadGap
	}
	remaining := bytes - sent
	if remaining > 0 {
		bursts := int64(8)
		if remaining/mss < bursts {
			bursts = remaining/mss + 1
		}
		burstGap := (start + dur - tv) / time.Duration(bursts)
		per := remaining / bursts
		for i := int64(0); i < bursts; i++ {
			n := per
			if i == bursts-1 {
				n = remaining - per*(bursts-1)
			}
			if n <= 0 {
				continue
			}
			pkts := int((n + mss - 1) / mss)
			obs(s2c, tstat.SegmentEvent{T: tv, Flags: packet.FlagACK, Seq: srvSeq, Payload: int(n), WireLen: int(n) + pkts*hdrLen, Packets: pkts})
			srvSeq += uint32(n)
			// Delayed ACKs from the PEP side: about one per two
			// data packets, aggregated alongside the burst.
			acks := pkts / 2
			if acks > 0 {
				obs(c2s, tstat.SegmentEvent{T: tv + time.Millisecond, Flags: packet.FlagACK, Ack: srvSeq, Packets: acks, WireLen: acks * hdrLen})
			}
			tv += burstGap
		}
	}
	return tv
}

// emitUpload spreads client→server bytes over the upload window; server
// ACKs arrive a ground RTT later, feeding the probe's RTT estimator.
func (s *synthesizer) emitUpload(c2s, s2c packet.FiveTuple, start time.Duration, dur time.Duration, bytes int64, seq *uint32, g time.Duration) time.Duration {
	obs := func(tuple packet.FiveTuple, ev tstat.SegmentEvent) { s.observe(tuple, ev) }
	bursts := int64(6)
	if bytes/mss < bursts {
		bursts = bytes/mss + 1
	}
	gap := dur / time.Duration(bursts)
	tv := start + 3*time.Millisecond
	per := bytes / bursts
	for i := int64(0); i < bursts; i++ {
		n := per
		if i == bursts-1 {
			n = bytes - per*(bursts-1)
		}
		if n <= 0 {
			continue
		}
		pkts := int((n + mss - 1) / mss)
		obs(c2s, tstat.SegmentEvent{T: tv, Flags: packet.FlagACK, Seq: *seq, Payload: int(n), WireLen: int(n) + pkts*hdrLen, Packets: pkts})
		*seq += uint32(n)
		obs(s2c, tstat.SegmentEvent{T: tv + g, Flags: packet.FlagACK, Ack: *seq, Packets: (pkts + 1) / 2, WireLen: hdrLen * ((pkts + 1) / 2)})
		tv += gap
	}
	return tv + g
}

// quicFlow synthesizes a QUIC conversation (UDP is not PEP-accelerated,
// §2.1, so the whole handshake crosses the satellite). Returns the time
// of its last event.
func (s *synthesizer) quicFlow(fi *workload.FlowIntent, client, server packet.Endpoint, path pathParams, r *dist.Rand) time.Duration {
	c2s := packet.FiveTuple{Proto: packet.ProtoUDP, Src: client, Dst: server}
	s2c := c2s.Reverse()
	obs := func(tuple packet.FiveTuple, ev tstat.SegmentEvent) { s.observe(tuple, ev) }

	hs, err := (&packet.ClientHello{Version: packet.TLSVersion12, ServerName: fi.Domain}).Encode()
	if err != nil {
		return fi.Start
	}
	dcid := make([]byte, 8)
	for i := range dcid {
		dcid[i] = byte(r.Uint64())
	}
	ini, err := (&packet.QUICInitial{Version: packet.QUICVersion1, DCID: dcid, CryptoPayload: hs}).Encode()
	if err != nil {
		return fi.Start
	}
	t := fi.Start
	g := path.groundRTT
	obs(c2s, tstat.SegmentEvent{T: t, Payload: 1252, WireLen: 1280, Packets: 1, AppData: ini})
	obs(s2c, tstat.SegmentEvent{T: t + g, Payload: 3600, WireLen: 3684, Packets: 3})
	// The client's handshake completion crosses the satellite.
	obs(c2s, tstat.SegmentEvent{T: t + g + path.satRTT, Payload: 120, WireLen: 148, Packets: 1})

	tl := tcpmodel.Compute(fi.Down, tcpmodel.Params{RTT: g + path.satRTT, BottleneckBps: path.bneckBps, InitialWindow: 10})
	dur := tl.LastData - tl.FirstData
	if dur > 4*time.Hour {
		dur = 4 * time.Hour
	}
	s.emitDatagramBurst(s2c, t+g+path.satRTT+g, dur, fi.Down, 10)
	if fi.Up > 2<<10 {
		s.emitDatagramBurst(c2s, t+g+path.satRTT+g, dur, fi.Up, 6)
	}
	return t + g + path.satRTT + g + dur
}

// rtpFlow synthesizes a real-time media session: constant-rate packets in
// both directions for the call duration. Returns the time of its last
// event.
func (s *synthesizer) rtpFlow(fi *workload.FlowIntent, client, server packet.Endpoint, path pathParams, r *dist.Rand) time.Duration {
	c2s := packet.FiveTuple{Proto: packet.ProtoUDP, Src: client, Dst: server}
	s2c := c2s.Reverse()
	rtp, err := (&packet.RTP{PayloadType: 111, Sequence: uint16(r.Uint64()), SSRC: uint32(r.Uint64())}).Encode()
	if err != nil {
		return fi.Start
	}
	probe := append(rtp, make([]byte, 148)...)
	// First packet carries DPI-visible RTP bytes.
	s.observe(c2s, tstat.SegmentEvent{T: fi.Start, Payload: len(probe), WireLen: len(probe) + 28, Packets: 1, AppData: probe})
	const rateBps = 80_000.0 / 8
	dur := time.Duration(float64(fi.Down) / rateBps * float64(time.Second))
	if dur > time.Hour {
		dur = time.Hour
	}
	s.emitDatagramBurst(s2c, fi.Start+path.groundRTT, dur, fi.Down, 10)
	s.emitDatagramBurst(c2s, fi.Start+10*time.Millisecond, dur, fi.Up, 10)
	return fi.Start + path.groundRTT + dur
}

// udpFlow synthesizes opaque UDP exchanges. Returns the time of its last
// event.
func (s *synthesizer) udpFlow(fi *workload.FlowIntent, client, server packet.Endpoint, path pathParams, r *dist.Rand) time.Duration {
	c2s := packet.FiveTuple{Proto: packet.ProtoUDP, Src: client, Dst: server}
	s2c := c2s.Reverse()
	first := make([]byte, 64)
	first[0] = 0x01 // neither QUIC long header nor RTP v2
	s.observe(c2s, tstat.SegmentEvent{T: fi.Start, Payload: len(first), WireLen: len(first) + 28, Packets: 1, AppData: first})
	dur := time.Duration(30+r.IntN(300)) * time.Second
	s.emitDatagramBurst(s2c, fi.Start+path.groundRTT, dur, fi.Down, 5)
	s.emitDatagramBurst(c2s, fi.Start+20*time.Millisecond, dur, fi.Up, 4)
	return fi.Start + path.groundRTT + dur
}

// emitDatagramBurst spreads bytes across up to n burst events.
func (s *synthesizer) emitDatagramBurst(dir packet.FiveTuple, start time.Duration, dur time.Duration, bytes int64, n int64) {
	if bytes <= 0 {
		return
	}
	const dgram = 1200
	if bytes/dgram < n {
		n = bytes/dgram + 1
	}
	gap := dur / time.Duration(n)
	per := bytes / n
	tv := start
	for i := int64(0); i < n; i++ {
		sz := per
		if i == n-1 {
			sz = bytes - per*(n-1)
		}
		if sz <= 0 {
			continue
		}
		pkts := int((sz + dgram - 1) / dgram)
		s.observe(dir, tstat.SegmentEvent{T: tv, Payload: int(sz), WireLen: int(sz) + pkts*28, Packets: pkts})
		tv += gap
	}
}
