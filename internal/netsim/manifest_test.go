package netsim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"satwatch/internal/obs"
)

// TestManifestIntegration runs a small simulation end to end, writes the
// run manifest the way the CLIs do, and asserts it is parseable with
// nonzero pass timings and intact output digests.
func TestManifestIntegration(t *testing.T) {
	cfg := Config{Customers: 30, Days: 1, Seed: 7, Parallelism: 2}
	out, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.PassA <= 0 || out.Stats.PassB <= 0 {
		t.Fatalf("run stats missing pass timings: %+v", out.Stats)
	}
	if out.Stats.Workers != 2 {
		t.Fatalf("effective workers = %d, want 2", out.Stats.Workers)
	}
	if got, want := out.Stats.Flows(), len(out.Flows); got == 0 {
		t.Fatalf("worker flow counts empty (records: %d)", want)
	}

	dir := t.TempDir()
	output := filepath.Join(dir, "flows.tsv")
	if err := os.WriteFile(output, []byte("placeholder\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := ManifestFor("netsim-test", cfg, out)
	if err := m.AddOutput(output); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}

	// Re-read through the generic JSON path to prove it parses.
	raw, err := os.ReadFile(filepath.Join(dir, obs.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(raw, &generic); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	got, err := obs.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "netsim-test" || got.Seed != 7 || got.Parallelism != 2 {
		t.Fatalf("manifest identity fields wrong: %+v", got)
	}
	if got.TimingsSeconds["pass_a"] <= 0 || got.TimingsSeconds["pass_b"] <= 0 {
		t.Fatalf("manifest pass timings not positive: %v", got.TimingsSeconds)
	}
	if _, ok := got.Outputs["flows.tsv"]; !ok {
		t.Fatalf("manifest missing output digest: %v", got.Outputs)
	}
	// The embedded config must round-trip the run parameters.
	cfgJSON, err := json.Marshal(got.Config)
	if err != nil {
		t.Fatal(err)
	}
	var rt Config
	if err := json.Unmarshal(cfgJSON, &rt); err != nil {
		t.Fatalf("manifest config does not unmarshal into netsim.Config: %v", err)
	}
	if rt.Customers != 30 || rt.Days != 1 || rt.Seed != 7 {
		t.Fatalf("manifest config lost fields: %+v", rt)
	}
}

// TestProgressLine sanity-checks the live progress rendering after a run.
func TestProgressLine(t *testing.T) {
	if _, err := Run(Config{Customers: 10, Days: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	line := ProgressLine(2 * time.Second)
	for _, want := range []string{"customers", "flows", "ETA"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
}
