package netsim

import (
	"fmt"
	"time"

	"satwatch/internal/obs"
)

// ManifestFor seeds a run manifest from a finished simulation: seed and
// full config, the effective parallelism, and the pass-A/pass-B wall
// timings. Callers add output digests and extra timings, then Write it
// next to the run's outputs.
func ManifestFor(tool string, cfg Config, out *Output) *obs.Manifest {
	m := obs.NewManifest(tool, cfg.Seed)
	m.Config = cfg.withDefaults()
	m.Parallelism = out.Stats.Workers
	m.AddTiming("pass_a", out.Stats.PassA)
	m.AddTiming("pass_b", out.Stats.PassB)
	return m
}

// ProgressLine renders the live one-line run summary the CLIs print under
// -progress: phase, customer progress with ETA, flow throughput, and the
// load gauges (beam utilization so far, peak PEP rho). It reads the
// Default obs registry, so it reflects whatever run is in flight.
func ProgressLine(elapsed time.Duration) string {
	get := func(name string) obs.Snapshot {
		s, _ := obs.Default.Get(name)
		return s
	}
	total := int64(get("netsim_customers_total").Value)
	done := int64(get("netsim_customers_done_total").Value)
	flows := int64(get("netsim_flows_total").Value)
	phase := "pass A"
	if get("netsim_pass_a_seconds").Value > 0 {
		phase = "pass B"
	}
	if get("netsim_pass_b_seconds").Value > 0 {
		phase = "finalize"
	}
	line := fmt.Sprintf("[%s %s] customers %d/%d · flows %d (%s) · %s",
		elapsed.Round(time.Second), phase, done, total,
		flows, obs.FormatRate(flows, elapsed), obs.ETA(done, total, elapsed))
	if bu := get("mac_beam_utilization_ratio"); bu.Count > 0 {
		line += fmt.Sprintf(" · beam-util≈%.2f", bu.Mean())
	}
	if rho := get("pep_peak_rho"); rho.Value > 0 {
		line += fmt.Sprintf(" · pep-rho-peak %.2f", rho.Value)
	}
	return line
}
