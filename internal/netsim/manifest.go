package netsim

import (
	"fmt"
	"time"

	"satwatch/internal/obs"
)

// ManifestFor seeds a run manifest from a finished simulation: seed and
// full config, the effective parallelism, and the per-stage wall timings
// (pass A, MAC grid pre-build, pass B, k-way merge). Callers add output
// digests and extra timings, then Write it next to the run's outputs.
func ManifestFor(tool string, cfg Config, out *Output) *obs.Manifest {
	m := obs.NewManifest(tool, cfg.Seed)
	m.Config = cfg.withDefaults()
	m.Parallelism = out.Stats.Workers
	m.Status = out.Stats.Status()
	m.Errors = out.Stats.Errors
	// The manifest records the effective schedule the run played back
	// (Config.Faults plus constellation-contributed handover events), so
	// a LEO run's manifest is enough to reproduce its damage exactly.
	if out.Faults != nil {
		m.Faults = out.Faults
	} else if cfg.Faults != nil {
		m.Faults = cfg.Faults
	}
	m.AddTiming("pass_a", out.Stats.PassA)
	m.AddTiming("mac_prebuild", out.Stats.MACPrebuild)
	m.AddTiming("pass_b", out.Stats.PassB)
	m.AddTiming("merge", out.Stats.Merge)
	for stage, a := range out.Stats.StageAllocs {
		m.AddAlloc(stage, a)
	}
	m.AllocBytesPerFlow = out.Stats.AllocBytesPerFlow()
	return m
}

// Progress is the live state of the run in flight, read from the Default
// obs registry. It backs both the -progress stderr line and the debug
// server's /progress JSON endpoint.
type Progress struct {
	// ElapsedSeconds is filled by the caller (the registry has no start
	// time); zero when unknown.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Phase          string  `json:"phase"`
	CustomersDone  int64   `json:"customers_done"`
	CustomersTotal int64   `json:"customers_total"`
	Flows          int64   `json:"flows"`
	// BeamUtilMean is the mean beam utilization over all uplink samples
	// so far (0 before the first sample).
	BeamUtilMean float64 `json:"beam_util_mean"`
	// PEPPeakRho is the highest PEP utilization any setup has seen.
	PEPPeakRho float64 `json:"pep_peak_rho"`
}

// CurrentProgress snapshots the in-flight run state from the Default
// registry.
func CurrentProgress() Progress {
	get := func(name string) obs.Snapshot {
		s, _ := obs.Default.Get(name)
		return s
	}
	p := Progress{
		Phase:          "pass A",
		CustomersDone:  int64(get("netsim_customers_done_total").Value),
		CustomersTotal: int64(get("netsim_customers_total").Value),
		Flows:          int64(get("netsim_flows_total").Value),
		PEPPeakRho:     get("pep_peak_rho").Value,
	}
	if get("netsim_pass_a_seconds").Value > 0 {
		p.Phase = "pass B"
	}
	if get("netsim_pass_b_seconds").Value > 0 {
		p.Phase = "finalize"
	}
	if bu := get("mac_beam_utilization_ratio"); bu.Count > 0 {
		p.BeamUtilMean = bu.Mean()
	}
	return p
}

// ProgressLine renders the live one-line run summary the CLIs print under
// -progress: phase, customer progress with ETA, flow throughput, and the
// load gauges (beam utilization so far, peak PEP rho).
func ProgressLine(elapsed time.Duration) string {
	p := CurrentProgress()
	line := fmt.Sprintf("[%s %s] customers %d/%d · flows %d (%s) · %s",
		elapsed.Round(time.Second), p.Phase, p.CustomersDone, p.CustomersTotal,
		p.Flows, obs.FormatRate(p.Flows, elapsed), obs.ETA(p.CustomersDone, p.CustomersTotal, elapsed))
	if p.BeamUtilMean > 0 {
		line += fmt.Sprintf(" · beam-util≈%.2f", p.BeamUtilMean)
	}
	if p.PEPPeakRho > 0 {
		line += fmt.Sprintf(" · pep-rho-peak %.2f", p.PEPPeakRho)
	}
	return line
}
