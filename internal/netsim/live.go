package netsim

// Live-mode access to the batch synthesizer: internal/live runs an
// always-on daemon that feeds flow intents through the same model stack
// (geo/phy/mac/pepmodel/shaper/cdn/dnssim) one intent at a time instead
// of in two whole-window passes. LiveSim owns the shared, read-only model
// state (population, dimensioned beam loads, MAC grid, anonymizer) plus
// two atomically swappable knobs the control plane drives at runtime: the
// fault schedule and the scenario (constellation + matching MAC model).
// LiveWorker is the per-goroutine synthesis handle; intents must be
// sharded to workers by customer ID so each customer's port allocator and
// tracker stay single-goroutine.

import (
	"fmt"
	"net/netip"
	"sync/atomic"
	"time"

	"satwatch/internal/cryptopan"
	"satwatch/internal/dist"
	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/mac"
	"satwatch/internal/phy"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
	"satwatch/internal/workload"
)

// liveScenario is the immutable bundle a scenario swap replaces as one
// unit: orbit backend, MAC model matched to it, per-country channels and
// the periodic one-day beam-load profile. Workers detect a swap by the
// generation counter and rebuild their synthesizer.
type liveScenario struct {
	name     string
	gen      uint64
	con      geo.Constellation
	mac      *mac.Model
	channels map[geo.CountryCode]phy.Channel
	loads    []*beamLoad
}

// LiveSim is the shared state of a live run. All methods are
// goroutine-safe; per-flow synthesis happens on LiveWorkers.
type LiveSim struct {
	cfg       Config
	root      *dist.Rand
	customers []*workload.Customer
	anon      *cryptopan.Anonymizer

	scen    atomic.Pointer[liveScenario]
	sched   atomic.Pointer[faults.Schedule]
	scenGen atomic.Uint64
}

// NewLiveSim builds the live simulator: population from the seed, a
// one-day dimensioning pass (the periodic load profile every later day
// reuses), and the initial scenario. cfg.Days is ignored — a live run has
// no window.
func NewLiveSim(cfg Config) (*LiveSim, error) {
	cfg.Days = 1 // dimension one day; the profile wraps forever
	cfg = cfg.withDefaults()
	root := dist.NewRand(cfg.Seed)
	customers, err := workload.BuildPopulation(cfg.Customers, root.Fork("population"))
	if err != nil {
		return nil, err
	}
	anonKey := make([]byte, cryptopan.KeySize)
	kr := root.Fork("anon-key")
	for i := range anonKey {
		anonKey[i] = byte(kr.Uint64())
	}
	anon, err := cryptopan.New(anonKey)
	if err != nil {
		return nil, err
	}
	lv := &LiveSim{cfg: cfg, root: root, customers: customers, anon: anon}
	lv.sched.Store(cfg.Faults)
	scen, err := lv.buildScenario(cfg.Constellation)
	if err != nil {
		return nil, err
	}
	lv.scen.Store(scen)
	return lv, nil
}

// buildScenario dimensions the beams for one day of offered load and
// assembles the orbit-matched model bundle. The generation pass uses the
// same per-(customer, day) forked streams as batch pass A, so the profile
// is what a batch run of day 0 would dimension.
func (lv *LiveSim) buildScenario(constellation string) (*liveScenario, error) {
	con, err := geo.ConstellationByName(constellation, lv.cfg.Seed)
	if err != nil {
		return nil, err
	}
	params := mac.DefaultParams()
	if constellation == "leo" {
		params = mac.LEOParams()
	}
	macModel := mac.NewModel(params.WithDefaults())
	macModel.Prebuild(0)

	const hours = 24
	beams := geo.Beams()
	maxBeamID := 0
	for _, b := range beams {
		if b.ID > maxBeamID {
			maxBeamID = b.ID
		}
	}
	bytesHour := make([][]int64, maxBeamID+1)
	setupsHour := make([][]int64, maxBeamID+1)
	for _, b := range beams {
		bytesHour[b.ID] = make([]int64, hours)
		setupsHour[b.ID] = make([]int64, hours)
	}
	for _, c := range lv.customers {
		r := lv.root.ForkN("day", uint64(c.ID)*1024)
		intents := workload.GenerateDay(c, 0, r)
		bb, sb := bytesHour[c.Beam], setupsHour[c.Beam]
		for i := range intents {
			fi := &intents[i]
			if h := hourOf(fi.Start); h >= 0 && h < hours {
				bb[h] += fi.Down + fi.Up
				sb[h]++
			}
		}
	}
	loads := make([]*beamLoad, maxBeamID+1)
	for _, b := range beams {
		bl := &beamLoad{beam: b, bytesHour: make([]float64, hours), setupsHour: make([]float64, hours), wrap: true}
		var peakBytes, peakSetups int64
		for h := 0; h < hours; h++ {
			bl.bytesHour[h] = float64(bytesHour[b.ID][h])
			bl.setupsHour[h] = float64(setupsHour[b.ID][h])
			if bytesHour[b.ID][h] > peakBytes {
				peakBytes = bytesHour[b.ID][h]
			}
			if setupsHour[b.ID][h] > peakSetups {
				peakSetups = setupsHour[b.ID][h]
			}
		}
		offered := float64(peakBytes) / 3600
		if offered <= 0 {
			offered = 1
		}
		bl.capacity = offered / b.TargetPeakUtil
		bl.pepPeak = float64(peakSetups) / 3600
		if bl.pepPeak <= 0 {
			bl.pepPeak = 1.0 / 3600
		}
		loads[b.ID] = bl
	}
	channels := map[geo.CountryCode]phy.Channel{}
	if con.Static() {
		for _, country := range geo.Countries() {
			channels[country.Code] = phy.ChannelAt(country, con, 0)
		}
	}
	return &liveScenario{
		name: constellation, gen: lv.scenGen.Add(1),
		con: con, mac: macModel, channels: channels, loads: loads,
	}, nil
}

// SwapScenario hot-swaps the constellation (and its matched MAC model) on
// a running daemon. In-flight workers pick the new scenario up at their
// next intent.
func (lv *LiveSim) SwapScenario(constellation string) error {
	scen, err := lv.buildScenario(constellation)
	if err != nil {
		return err
	}
	lv.scen.Store(scen)
	return nil
}

// ScenarioName returns the active constellation name.
func (lv *LiveSim) ScenarioName() string { return lv.scen.Load().name }

// SetFaults atomically replaces the fault schedule consulted by every
// worker from its next intent on. nil restores clear skies.
func (lv *LiveSim) SetFaults(s *faults.Schedule) {
	lv.sched.Store(s)
	faults.RecordActive(s)
}

// Faults returns the active fault schedule (nil for clear skies).
func (lv *LiveSim) Faults() *faults.Schedule { return lv.sched.Load() }

// Customers returns the generated population, indexed by customer ID.
func (lv *LiveSim) Customers() []*workload.Customer { return lv.customers }

// CountryPrefixes maps anonymized /N prefixes to countries — the same
// prefix-preserving join a batch run records in Output.CountryPrefixes,
// so live analytics can attribute anonymized records geographically.
func (lv *LiveSim) CountryPrefixes() (map[netip.Prefix]geo.CountryCode, error) {
	out := map[netip.Prefix]geo.CountryCode{}
	for _, p := range workload.Profiles() {
		subnet, ok := workload.SubnetFor(p.Country.Code)
		if !ok {
			return nil, fmt.Errorf("netsim: no subnet for %s", p.Country.Code)
		}
		anonBase := lv.anon.MustAnonymize(subnet.Addr())
		anonPrefix, err := anonBase.Prefix(subnet.Bits())
		if err != nil {
			return nil, err
		}
		out[anonPrefix] = p.Country.Code
	}
	return out, nil
}

// Root returns the run's root random stream; fork, never consume.
func (lv *LiveSim) Root() *dist.Rand { return lv.root }

// Seed returns the run seed.
func (lv *LiveSim) Seed() uint64 { return lv.cfg.Seed }

// LiveWorker synthesizes intents on one goroutine: it owns a private
// tracker (streaming records out through the OnFlow/OnDNS callbacks) and
// a synthesizer rebuilt whenever the scenario generation moves. Not
// goroutine-safe — one goroutine per worker, intents sharded by customer.
type LiveWorker struct {
	lv      *LiveSim
	tracker *tstat.Tracker
	syn     *synthesizer
	gen     uint64
}

// NewWorker builds a live synthesis worker. onFlow/onDNS receive records
// as flows idle out or close; they run on the worker's goroutine.
func (lv *LiveSim) NewWorker(onFlow func(tstat.FlowRecord), onDNS func(tstat.DNSRecord)) *LiveWorker {
	w := &LiveWorker{
		lv: lv,
		tracker: tstat.NewTracker(tstat.Config{
			Anonymizer: lv.anon, OnFlow: onFlow, OnDNS: onDNS,
		}),
	}
	w.refresh()
	return w
}

// refresh rebuilds the synthesizer after a scenario swap and re-reads the
// fault schedule pointer (cheap; done per intent).
func (w *LiveWorker) refresh() {
	scen := w.lv.scen.Load()
	if w.syn == nil || w.gen != scen.gen {
		w.syn = &synthesizer{
			cfg:      w.lv.cfg,
			con:      scen.con,
			tracker:  w.tracker,
			mac:      scen.mac,
			loads:    scen.loads,
			channels: scen.channels,
		}
		w.gen = scen.gen
	}
	w.syn.sched = w.lv.sched.Load()
}

// Process synthesizes one intent into tracker events. seq must be unique
// per intent across the run (the pipeline's intent sequence number): it
// keys the flow's private random stream, so replicated intents (overload
// multipliers) still diverge. fl is an optional flight-recorder handle
// (nil when the flow is unsampled or live tracing is off); the
// synthesizer appends model spans to it and hands it to the tracker,
// which finishes it at record emission.
func (w *LiveWorker) Process(fi *workload.FlowIntent, seq uint64, fl *trace.Flow) error {
	w.refresh()
	r := w.lv.root.ForkN("live-synth", seq)
	if err := w.syn.flow(fi, r, fl); err != nil {
		return fmt.Errorf("netsim: live intent %d: %w", seq, err)
	}
	mFlows.Inc()
	return nil
}

// Advance moves the worker's tracker clock to simT, emitting flows that
// have idled out even if this shard saw no recent traffic.
func (w *LiveWorker) Advance(simT time.Duration) { w.tracker.AdvanceTime(simT) }

// ActiveFlows returns the tracker's in-flight flow count.
func (w *LiveWorker) ActiveFlows() int { return w.tracker.Active() }

// Flush force-emits every in-flight flow through the callbacks — the
// drain step of a graceful shutdown.
func (w *LiveWorker) Flush() { w.tracker.Flush() }
