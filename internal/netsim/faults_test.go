package netsim

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/obs"
	"satwatch/internal/tstat"
)

// testSchedule builds a hand-written all-beam schedule with disjoint,
// known windows so every assertion below can be tied to one event.
func testSchedule() *faults.Schedule {
	return &faults.Schedule{
		Name: "test",
		Events: []faults.Event{
			// The PEP overload sits in the quiet small hours so the forced
			// saturation is visible over the low ambient utilization.
			{Kind: faults.PEPOverload, Beam: -1, Start: 2 * time.Hour, End: 4 * time.Hour, Peak: 0.97},
			{Kind: faults.DNSOutage, Beam: -1, Start: 12 * time.Hour, End: 12*time.Hour + 30*time.Minute},
			{Kind: faults.RainFront, Beam: -1, Start: 14 * time.Hour, End: 16 * time.Hour, Peak: 0.9},
			{Kind: faults.BeamOutage, Beam: -1, Start: 20 * time.Hour, End: 21 * time.Hour},
			{Kind: faults.GatewaySwitch, Beam: -1, Start: 22 * time.Hour,
				End: 23 * time.Hour, RTTStep: 40 * time.Millisecond},
		},
	}
}

// isDead spots a flow that got nothing back from a dead uplink. DNS
// exchanges (server port 53) are excluded: an unanswered query during a
// resolver outage is also downstream-silent, by design.
func isDead(f *tstat.FlowRecord) bool {
	return f.PktsDown == 0 && f.BytesDown == 0 && f.SPort != 53
}

// handshakeAckGap returns the SYN-ACK → final-ACK gap of a TLS flow's
// TCP handshake (First10 indices 1 and 2): milliseconds through the PEP,
// a full GEO round trip when the flow bypassed it.
func handshakeAckGap(f *tstat.FlowRecord) (time.Duration, bool) {
	if f.SatRTT == 0 || len(f.First10) < 3 {
		return 0, false
	}
	return f.First10[2] - f.First10[1], true
}

func inWindow(t, lo, hi time.Duration) bool { return t >= lo && t < hi }

// meanSatRTT averages the TLS handshake RTT estimate over flows starting
// inside [lo, hi).
func meanSatRTT(flows []tstat.FlowRecord, lo, hi time.Duration) (time.Duration, int) {
	var sum time.Duration
	n := 0
	for i := range flows {
		f := &flows[i]
		if f.SatRTT > 0 && inWindow(f.Start, lo, hi) {
			sum += f.SatRTT
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / time.Duration(n), n
}

// meanGroundRTT averages the data→ACK ground RTT estimate over flows
// starting inside [lo, hi) that collected at least one sample.
func meanGroundRTT(flows []tstat.FlowRecord, lo, hi time.Duration) (time.Duration, int) {
	var sum time.Duration
	n := 0
	for i := range flows {
		f := &flows[i]
		if f.GroundRTT.Samples > 0 && inWindow(f.Start, lo, hi) {
			sum += f.GroundRTT.Avg
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / time.Duration(n), n
}

func sumPktsDown(flows []tstat.FlowRecord, lo, hi time.Duration) int64 {
	var sum int64
	for i := range flows {
		if inWindow(flows[i].Start, lo, hi) {
			sum += flows[i].PktsDown
		}
	}
	return sum
}

func metricValue(t *testing.T, name string) float64 {
	t.Helper()
	s, ok := obs.Default.Get(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return s.Value
}

// TestFaultEffectsConfinedToWindows is the PR's acceptance scenario: each
// scheduled event visibly degrades the flows starting inside its window —
// dead uplinks, bypassed handshakes paying end-to-end GEO RTTs, rain
// retransmissions, switchover resets — and leaves the rest of the day
// looking like the clear-sky run.
func TestFaultEffectsConfinedToWindows(t *testing.T) {
	cfg := Config{Customers: 40, Days: 1, Seed: 4242}

	obs.Default.Reset()
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sched := testSchedule()
	if err := sched.Validate(); err != nil {
		t.Fatal(err)
	}
	obs.Default.Reset()
	cfg.Faults = sched
	fault, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := fault.Stats.Status(); st != StatusOK {
		t.Fatalf("fault injection alone must not degrade the run status, got %q (errors: %v)", st, fault.Stats.Errors)
	}
	// Faults shape flows rather than dropping them; the only records that
	// legitimately disappear are the DNS exchanges dead-beam flows never
	// attempt, so the counts stay within a couple of percent.
	if diff := len(base.Flows) - len(fault.Flows); diff < 0 || diff > len(base.Flows)/50 {
		t.Fatalf("fault run has %d flows, clear-sky run %d: beyond the dead-beam DNS deficit",
			len(fault.Flows), len(base.Flows))
	}

	// Fault wiring publishes its activity through the obs registry.
	if got := metricValue(t, "faults_active"); got != float64(len(sched.Events)) {
		t.Errorf("faults_active = %v, want %d", got, len(sched.Events))
	}
	for _, m := range []string{"netsim_flows_degraded_total", "pep_bypassed_flows_total", "dnssim_outage_queries_total"} {
		if metricValue(t, m) == 0 {
			t.Errorf("%s = 0, want > 0 with an active schedule", m)
		}
	}

	// Clear sky: the probe never logs a flow with zero downstream traffic,
	// and every TLS handshake completes its final ACK within milliseconds
	// of the SYN-ACK (the PEP answers locally).
	for i := range base.Flows {
		f := &base.Flows[i]
		if isDead(f) {
			t.Fatalf("clear-sky run logged a dead flow (%s:%d start %v)", f.Client, f.CPort, f.Start)
		}
		if g, ok := handshakeAckGap(f); ok && g > 400*time.Millisecond {
			t.Fatalf("clear-sky handshake ACK gap %v exceeds the bypass detection threshold", g)
		}
	}

	const margin = 15 * time.Minute

	// Beam outage [20h, 21h): flows starting inside the window die on a
	// dead uplink (SYN train or lone datagrams, nothing back), dead flows
	// appear nowhere else.
	deadIn, deadOut := 0, 0
	for i := range fault.Flows {
		f := &fault.Flows[i]
		if !isDead(f) {
			continue
		}
		if inWindow(f.Start, 20*time.Hour-margin, 21*time.Hour+margin) {
			deadIn++
		} else {
			deadOut++
			t.Errorf("dead flow outside the beam-outage window at %v", f.Start)
		}
	}
	if deadIn < 5 {
		t.Errorf("beam outage produced %d dead flows, want >= 5", deadIn)
	}
	for i := range fault.Flows {
		f := &fault.Flows[i]
		if inWindow(f.Start, 20*time.Hour+margin, 21*time.Hour-margin) && !isDead(f) {
			t.Errorf("flow deep inside the beam outage survived (%s:%d start %v, %d pkts down)",
				f.Client, f.CPort, f.Start, f.PktsDown)
		}
	}

	// PEP overload [2h, 4h): bypassed flows complete their handshake end
	// to end, so the final ACK trails the SYN-ACK by a full GEO round trip
	// instead of the PEP's local millisecond turnaround; no flow outside
	// the window does.
	bypassIn := 0
	for i := range fault.Flows {
		f := &fault.Flows[i]
		g, ok := handshakeAckGap(f)
		if !ok || g <= 400*time.Millisecond {
			continue
		}
		if inWindow(f.Start, 2*time.Hour-margin, 4*time.Hour+margin) {
			bypassIn++
		} else {
			t.Errorf("GEO-sized handshake ACK gap %v outside the PEP overload window at %v", g, f.Start)
		}
	}
	if bypassIn < 5 {
		t.Errorf("PEP overload produced %d bypassed flows with GEO-sized handshake gaps, want >= 5", bypassIn)
	}
	// Queued (non-bypassed) flows pay the saturated PEP's setup sojourn,
	// which the probe sees as an elevated handshake RTT estimate. Bypassed
	// flows skip the PEP queue entirely, so they are excluded from the
	// comparison (their signal is the ACK gap above).
	baseMean, bn := meanSatRTT(base.Flows, 2*time.Hour+margin, 4*time.Hour-margin)
	var queuedSum time.Duration
	qn := 0
	for i := range fault.Flows {
		f := &fault.Flows[i]
		if f.SatRTT == 0 || !inWindow(f.Start, 2*time.Hour+margin, 4*time.Hour-margin) {
			continue
		}
		if g, ok := handshakeAckGap(f); ok && g > 400*time.Millisecond {
			continue // bypassed
		}
		queuedSum += f.SatRTT
		qn++
	}
	if bn == 0 || qn == 0 {
		t.Fatalf("no TLS flows inside the overload window (base %d, queued fault %d)", bn, qn)
	}
	if queuedMean := queuedSum / time.Duration(qn); queuedMean < baseMean+200*time.Millisecond {
		t.Errorf("overload-window mean queued handshake RTT %v vs clear-sky %v: want >= +200ms", queuedMean, baseMean)
	}

	// Rain front [14h, 16h): frame loss retransmits download segments, so
	// the window's downstream packet count strictly exceeds clear sky's.
	baseRain := sumPktsDown(base.Flows, 14*time.Hour+margin, 16*time.Hour-margin)
	faultRain := sumPktsDown(fault.Flows, 14*time.Hour+margin, 16*time.Hour-margin)
	if faultRain <= baseRain {
		t.Errorf("rain window pkts down %d (fault) vs %d (clear sky): retransmissions missing", faultRain, baseRain)
	}

	// Gateway switchover [22h, 23h): flows routed through the backup
	// ground station pay the detour's RTT step, visible as a shift in the
	// window's mean data→ACK ground RTT. (The mass reset at the switch
	// instant is real but unassertable at this scale: laptop-scale flows
	// are seconds long, so almost none are alive at any given instant.)
	baseG, bgn := meanGroundRTT(base.Flows, 22*time.Hour+margin, 23*time.Hour-margin)
	faultG, fgn := meanGroundRTT(fault.Flows, 22*time.Hour+margin, 23*time.Hour-margin)
	if bgn == 0 || fgn == 0 {
		t.Fatalf("no RTT-sampled flows inside the switchover window (base %d, fault %d)", bgn, fgn)
	}
	if faultG < baseG+20*time.Millisecond {
		t.Errorf("switchover-window mean ground RTT %v vs clear-sky %v: want >= +20ms (RTTStep 40ms)", faultG, baseG)
	}
}

// TestFaultParallelismInvariance extends the headline determinism
// contract to degraded runs: a seeded fault schedule must still produce
// byte-identical outputs at any worker count.
func TestFaultParallelismInvariance(t *testing.T) {
	sched, err := faults.Preset("stress", 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	runAt := func(par int) (flows, dns, meta []byte) {
		out, err := Run(Config{Customers: 30, Days: 1, Seed: 99, Parallelism: par, Faults: sched})
		if err != nil {
			t.Fatal(err)
		}
		return serialize(t, out)
	}
	bf, bd, bm := runAt(1)
	if len(bf) == 0 {
		t.Fatal("empty serialized output at parallelism 1")
	}
	for _, par := range []int{2, 4} {
		f, d, m := runAt(par)
		if !bytes.Equal(bf, f) {
			t.Errorf("fault-run flow log differs between parallelism 1 and %d", par)
		}
		if !bytes.Equal(bd, d) {
			t.Errorf("fault-run DNS log differs between parallelism 1 and %d", par)
		}
		if !bytes.Equal(bm, m) {
			t.Errorf("fault-run metadata differs between parallelism 1 and %d", par)
		}
	}
}

// TestClearSkyScheduleMatchesNil pins the zero-cost property: an empty
// schedule consumes no random draws, so its output is byte-identical to a
// run with no schedule at all.
func TestClearSkyScheduleMatchesNil(t *testing.T) {
	a, err := Run(Config{Customers: 20, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Customers: 20, Days: 1, Seed: 5, Faults: &faults.Schedule{Name: "empty"}})
	if err != nil {
		t.Fatal(err)
	}
	af, ad, am := serialize(t, a)
	bf, bd, bm := serialize(t, b)
	if !bytes.Equal(af, bf) || !bytes.Equal(ad, bd) || !bytes.Equal(am, bm) {
		t.Fatal("an empty fault schedule changed the output")
	}
}

// TestWorkerPanicRecovery: a panic while synthesizing one customer must
// not crash the run — the customer is dropped with an error naming it,
// everyone else's flows survive, and the run reports itself degraded.
func TestWorkerPanicRecovery(t *testing.T) {
	testHookSynthCustomer = func(id int) {
		if id%7 == 2 {
			panic("boom")
		}
	}
	defer func() { testHookSynthCustomer = nil }()

	const n = 20
	out, err := Run(Config{Customers: n, Days: 1, Seed: 11, Parallelism: 4})
	if err != nil {
		t.Fatalf("a worker panic must be recovered, not returned: %v", err)
	}
	if st := out.Stats.Status(); st != StatusDegraded {
		t.Fatalf("status = %q, want %q", st, StatusDegraded)
	}
	if len(out.Stats.Errors) == 0 {
		t.Fatal("degraded run reported no errors")
	}
	for _, e := range out.Stats.Errors {
		if !strings.Contains(e, "panic: boom") || !strings.Contains(e, "customer") {
			t.Errorf("error %q does not carry the panic and customer context", e)
		}
	}
	if out.Stats.CustomersDone+len(out.Stats.Errors) != n {
		t.Errorf("done %d + failed %d != %d customers", out.Stats.CustomersDone, len(out.Stats.Errors), n)
	}
	if out.Stats.CustomersDone == 0 || len(out.Flows) == 0 {
		t.Fatal("no customers salvaged from the degraded run")
	}

	// The manifest carries the salvage story.
	m := ManifestFor("test", Config{Customers: n, Days: 1, Seed: 11}, out)
	if m.Status != StatusDegraded || len(m.Errors) == 0 {
		t.Errorf("manifest status %q with %d errors, want degraded with errors", m.Status, len(m.Errors))
	}
}

// TestInterruptedRunIsPartial: cancelling the context between the passes
// stops workers at customer boundaries and yields a parseable partial
// output instead of an error.
func TestInterruptedRunIsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testHookAfterPassA = cancel
	defer func() { testHookAfterPassA = nil }()

	out, err := RunContext(ctx, Config{Customers: 20, Days: 1, Seed: 13, Parallelism: 4})
	if err != nil {
		t.Fatalf("interruption during pass B must salvage, not fail: %v", err)
	}
	if !out.Stats.Interrupted {
		t.Fatal("Stats.Interrupted not set")
	}
	if st := out.Stats.Status(); st != StatusPartial {
		t.Fatalf("status = %q, want %q", st, StatusPartial)
	}
	if out.Stats.CustomersDone >= 20 {
		t.Fatalf("interrupted run completed all %d customers", out.Stats.CustomersDone)
	}
	// Whatever was salvaged must serialize cleanly.
	f, d, m := serialize(t, out)
	if len(f) == 0 || len(d) == 0 || len(m) == 0 {
		t.Fatal("salvaged output did not serialize")
	}
}
