package netsim

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"satwatch/internal/faults"
	"satwatch/internal/trace"
)

// TestLEOParallelismInvariance extends the headline determinism contract
// to the LEO backend: equal-seed LEO runs — time-varying RTTs, handover
// damage, gateway rotation and all — must be byte-identical at any worker
// count, traces included.
func TestLEOParallelismInvariance(t *testing.T) {
	type result struct {
		flows, dns, meta, traces []byte
	}
	runAt := func(par int) result {
		var tb bytes.Buffer
		tr := trace.New(&tb, 1)
		out, err := Run(Config{Customers: 40, Days: 1, Seed: 99, Parallelism: par,
			Constellation: "leo", Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		f, d, m := serialize(t, out)
		return result{f, d, m, tb.Bytes()}
	}
	serial := runAt(1)
	parallel := runAt(4)
	if !bytes.Equal(serial.flows, parallel.flows) {
		t.Error("LEO flow logs differ between parallelism 1 and 4")
	}
	if !bytes.Equal(serial.dns, parallel.dns) {
		t.Error("LEO DNS logs differ between parallelism 1 and 4")
	}
	if !bytes.Equal(serial.meta, parallel.meta) {
		t.Error("LEO metadata differs between parallelism 1 and 4")
	}
	if !bytes.Equal(serial.traces, parallel.traces) {
		t.Error("LEO traces differ between parallelism 1 and 4")
	}
}

// TestLEOSatRTTBand checks the orbit swap actually lands where the LEO
// measurement literature puts it: the bulk of probe-visible satellite
// RTTs in tens of milliseconds — an order of magnitude under GEO's
// ~550 ms floor — with a congestion/handover tail.
func TestLEOSatRTTBand(t *testing.T) {
	out, err := Run(Config{Customers: 60, Days: 1, Seed: 2022, Constellation: "leo"})
	if err != nil {
		t.Fatal(err)
	}
	var rtts []float64
	for _, f := range out.Flows {
		if f.SatRTT > 0 {
			rtts = append(rtts, float64(f.SatRTT)/float64(time.Millisecond))
		}
	}
	if len(rtts) == 0 {
		t.Fatal("no satellite RTT samples")
	}
	sort.Float64s(rtts)
	q := func(p float64) float64 { return rtts[int(p*float64(len(rtts)-1))] }
	if min := rtts[0]; min < 10 {
		t.Errorf("min satellite RTT %.1f ms below the LEO propagation floor", min)
	}
	if med := q(0.5); med < 15 || med > 60 {
		t.Errorf("median satellite RTT %.1f ms outside the 15-60 ms LEO band", med)
	}
	if p95 := q(0.95); p95 > 150 {
		t.Errorf("p95 satellite RTT %.1f ms — the tail should be congestion, not geometry", p95)
	}
}

// TestLEOHandoverDamageVisible checks that the constellation-contributed
// handover timeline reaches the outputs: events in the effective schedule
// (and thus the manifest), and degraded flows inside the windows.
func TestLEOHandoverDamageVisible(t *testing.T) {
	out, err := Run(Config{Customers: 60, Days: 1, Seed: 7, Constellation: "leo"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Faults.Len() == 0 {
		t.Fatal("LEO run produced no effective fault schedule")
	}
	handovers := 0
	for _, e := range out.Faults.Events {
		if e.Kind != faults.LEOHandover {
			t.Fatalf("clear-sky LEO run scheduled a %s event", e.Kind)
		}
		handovers++
	}
	if handovers == 0 {
		t.Fatal("no leo_handover events in the effective schedule")
	}
	// Flows that start inside a window must show the RTT step: compare
	// each in-window flow's SatRTT against the out-of-window median.
	m := ManifestFor("test", Config{Customers: 60, Days: 1, Seed: 7, Constellation: "leo"}, out)
	if ms, ok := m.Faults.(*faults.Schedule); !ok || ms.Len() != out.Faults.Len() {
		t.Fatal("manifest does not record the effective LEO schedule")
	}
	inWindow := 0
	for _, f := range out.Flows {
		meta, ok := out.Meta[f.Client]
		if !ok || f.SatRTT <= 0 {
			continue
		}
		if _, _, active := out.Faults.LEOHandover(f.Start, meta.Beam); active {
			inWindow++
		}
	}
	if inWindow == 0 {
		t.Fatal("no flow started inside a handover window — windows too rare or workload too small")
	}
}

// TestLEODiffersFromGEO pins that the constellation selection changes the
// output at all (equal seeds, different orbit).
func TestLEODiffersFromGEO(t *testing.T) {
	geoOut, err := Run(Config{Customers: 20, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	leoOut, err := Run(Config{Customers: 20, Days: 1, Seed: 5, Constellation: "leo"})
	if err != nil {
		t.Fatal(err)
	}
	gf, _, _ := serialize(t, geoOut)
	lf, _, _ := serialize(t, leoOut)
	if bytes.Equal(gf, lf) {
		t.Fatal("GEO and LEO runs produced identical flow logs")
	}
}

// TestUnknownConstellationRejected pins the config error path.
func TestUnknownConstellationRejected(t *testing.T) {
	if _, err := Run(Config{Customers: 5, Days: 1, Constellation: "meo"}); err == nil {
		t.Fatal("unknown constellation must fail the run")
	}
}
