// Package netsim is the integrated deployment simulator: it drives the
// workload population through the satellite network models (geometry, PHY,
// MAC, PEP, shaper, CDN, DNS) and synthesizes the packet/segment stream a
// probe at the ground station would capture, feeding it straight into the
// tstat tracker. Every latency component of the resulting records is
// produced by an explicit mechanism:
//
//	satellite RTT = 4 slant-path passes (geo) + uplink MAC access (mac)
//	              + downlink queueing (mac) + PEP setup sojourn (pepmodel)
//	ground RTT    = hosting-region path (cdn) chosen by the customer's
//	                resolver view (dnssim)
//	throughput    = plan shaping (shaper) x beam congestion x terminal
//	                and AP contention factors, rolled out by tcpmodel
//
// The simulator runs in two passes: pass A aggregates offered load per
// (beam, hour) to dimension beam capacity and PEP resources; pass B
// regenerates the same flows deterministically and synthesizes their
// timelines under the resulting utilization.
package netsim

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"satwatch/internal/cryptopan"
	"satwatch/internal/dist"
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
	"satwatch/internal/mac"
	"satwatch/internal/obs"
	"satwatch/internal/pepmodel"
	"satwatch/internal/phy"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
	"satwatch/internal/workload"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mPassA = obs.NewGauge("netsim_pass_a_seconds",
		"Wall time of pass A (offered-load aggregation and beam dimensioning) of the last run.", "seconds")
	mPassB = obs.NewGauge("netsim_pass_b_seconds",
		"Wall time of pass B (parallel flow synthesis and tracking) of the last run.", "seconds")
	mWorkers = obs.NewGauge("netsim_workers",
		"Effective pass-B worker count of the last run.", "")
	mCustomersTotal = obs.NewGauge("netsim_customers_total",
		"Population size of the last run.", "")
	mCustomersDone = obs.NewCounter("netsim_customers_done_total",
		"Customers fully synthesized by pass-B workers.", "")
	mFlows = obs.NewCounter("netsim_flows_total",
		"Flow intents synthesized into tracker events.", "")
	mWorkerRate = obs.NewHistogram("netsim_worker_flows_per_second",
		"Per-worker pass-B flow synthesis throughput (one sample per worker per run).", "flows/s",
		obs.ExpBuckets(100, 2, 14))
)

// Config parameterizes a simulation run.
type Config struct {
	// Customers is the population size; Days the observation window.
	Customers int
	Days      int
	// Seed drives all randomness; identical configs produce identical logs.
	Seed uint64
	// Parallelism is the number of pass-B workers (0 → GOMAXPROCS). Flow
	// synthesis partitions by customer and the sharded tracker merges
	// deterministically, so results depend only on Seed.
	Parallelism int

	// MAC overrides the data-link dimensioning (zero value → defaults).
	MAC mac.Params
	// PEP overrides the PEP resource model (zero value → defaults).
	PEP pepmodel.Model

	// Trace, when non-nil, records a per-flow latency-decomposition span
	// tree for sampled flows (see internal/trace). Nil disables tracing;
	// the hot-path cost of the disabled state is a nil check. The caller
	// owns the tracer and must Close it after Run returns. Excluded from
	// the manifest config dump.
	Trace *trace.Tracer `json:"-"`

	// Ablations (DESIGN.md A1-A4).
	//
	// DisablePEP removes the PEP setup sojourn from the satellite path.
	DisablePEP bool
	// DisableMAC replaces the MAC access delays with zero (ideal access).
	DisableMAC bool
	// AfricanGroundStation adds a second gateway in Africa: African
	// customers reaching African-hosted services no longer hairpin
	// through Italy (§6.2's discussed optimization).
	AfricanGroundStation bool
	// ForceOperatorDNS makes every customer use the operator resolver
	// (§6.4's proposed fix).
	ForceOperatorDNS bool
}

// DefaultConfig returns a laptop-scale run: 400 customers over 2 days.
func DefaultConfig() Config {
	return Config{Customers: 400, Days: 2, Seed: 1, MAC: mac.DefaultParams(), PEP: pepmodel.Default()}
}

func (c Config) withDefaults() Config {
	if c.Customers <= 0 {
		c.Customers = 400
	}
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.MAC.FrameDuration == 0 {
		c.MAC = mac.DefaultParams()
	}
	if c.PEP.SetupTime == 0 {
		c.PEP = pepmodel.Default()
	}
	return c
}

// CustomerMeta is the operator-side metadata joined to anonymized records
// during analysis (the paper's §3.1 enrichment, done "with the support of
// the SatCom operator").
type CustomerMeta struct {
	Country geo.CountryCode
	Beam    int
	Type    workload.CustomerType
	PlanMbs float64
	// Multiplex is the number of end-users behind the CPE.
	Multiplex int
	// Resolver is the resolver this customer's devices use.
	Resolver dnssim.ResolverID
}

// BeamStat summarizes one beam over the run (Figure 8b inputs).
type BeamStat struct {
	Beam           int
	Country        geo.CountryCode
	PeakUtil       float64 // utilization at the beam's busiest hour
	MeanUtil       float64
	PEPPeakRho     float64
	CapacityBps    float64
	OfferedPeakBps float64
}

// RunStats are the per-stage wall timings and worker statistics of one
// Run, feeding the run manifest (see ManifestFor) and the progress line.
type RunStats struct {
	// PassA / PassB are the wall times of the two simulator passes.
	PassA time.Duration
	PassB time.Duration
	// Workers is the effective pass-B parallelism (Config.Parallelism
	// resolved against GOMAXPROCS and the population size).
	Workers int
	// WorkerFlows is the number of flow intents each worker synthesized.
	WorkerFlows []int
}

// Flows returns the total flow intents synthesized across workers.
func (s RunStats) Flows() int {
	total := 0
	for _, n := range s.WorkerFlows {
		total += n
	}
	return total
}

// Output is everything a run produces.
type Output struct {
	Flows []tstat.FlowRecord
	DNS   []tstat.DNSRecord
	// Meta maps anonymized client addresses to operator metadata.
	Meta map[netip.Addr]CustomerMeta
	// CountryPrefixes maps anonymized /16 prefixes to countries.
	CountryPrefixes map[netip.Prefix]geo.CountryCode
	// Beams carries per-beam load statistics.
	Beams []BeamStat
	// Epoch is the wall-clock instant of simulated time zero (UTC
	// midnight), for pcap export.
	Epoch time.Time
	// Stats carries the run's wall timings and worker statistics.
	Stats RunStats
}

// hourOf returns the absolute hour index of a simulation timestamp.
func hourOf(t time.Duration) int { return int(t / time.Hour) }

// beamLoad accumulates pass-A aggregates for one beam.
type beamLoad struct {
	beam       geo.Beam
	bytesHour  []float64 // offered bytes per absolute hour
	setupsHour []float64 // connection setups per absolute hour
	capacity   float64   // bytes/sec, dimensioned after pass A
	pepPeak    float64   // setups/sec at the dimensioning peak
}

func (b *beamLoad) util(hour int) float64 {
	if b.capacity <= 0 || hour < 0 || hour >= len(b.bytesHour) {
		return 0
	}
	return b.bytesHour[hour] / 3600 / b.capacity
}

func (b *beamLoad) pepRho(hour int, factor float64) float64 {
	if hour < 0 || hour >= len(b.setupsHour) {
		return 0
	}
	return pepmodel.Rho(b.setupsHour[hour]/3600, b.pepPeak, factor)
}

// Run executes the simulation.
func Run(cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	root := dist.NewRand(cfg.Seed)
	startA := time.Now()
	mCustomersTotal.Set(float64(cfg.Customers))

	customers, err := workload.BuildPopulation(cfg.Customers, root.Fork("population"))
	if err != nil {
		return nil, err
	}

	// --- Pass A: offered load per beam-hour --------------------------
	hours := cfg.Days * 24
	loads := map[int]*beamLoad{}
	for _, b := range geo.Beams() {
		loads[b.ID] = &beamLoad{beam: b, bytesHour: make([]float64, hours), setupsHour: make([]float64, hours)}
	}
	for _, c := range customers {
		for day := 0; day < cfg.Days; day++ {
			r := root.ForkN("day", uint64(c.ID)*1024+uint64(day))
			for _, fi := range workload.GenerateDay(c, day, r) {
				bl := loads[c.Beam]
				h := hourOf(fi.Start)
				if h >= 0 && h < hours {
					bl.bytesHour[h] += float64(fi.Down + fi.Up)
					bl.setupsHour[h]++
				}
			}
		}
	}
	// Dimension each beam so its busiest hour hits the operator's target
	// utilization, and the PEP so its busiest hour hits 1/PEPFactor.
	for _, bl := range loads {
		var peakBytes, peakSetups float64
		for h := 0; h < hours; h++ {
			if bl.bytesHour[h] > peakBytes {
				peakBytes = bl.bytesHour[h]
			}
			if bl.setupsHour[h] > peakSetups {
				peakSetups = bl.setupsHour[h]
			}
		}
		offered := peakBytes / 3600
		if offered <= 0 {
			offered = 1
		}
		bl.capacity = offered / bl.beam.TargetPeakUtil
		bl.pepPeak = peakSetups / 3600
		if bl.pepPeak <= 0 {
			bl.pepPeak = 1.0 / 3600
		}
	}

	passA := time.Since(startA)
	mPassA.SetDuration(passA)

	// --- Pass B: synthesize the vantage-point stream ------------------
	startB := time.Now()
	anonKey := make([]byte, cryptopan.KeySize)
	kr := root.Fork("anon-key")
	for i := range anonKey {
		anonKey[i] = byte(kr.Uint64())
	}
	anon, err := cryptopan.New(anonKey)
	if err != nil {
		return nil, err
	}
	macModel := mac.NewModel(cfg.MAC)
	channels := map[geo.CountryCode]phy.Channel{}
	for _, country := range geo.Countries() {
		channels[country.Code] = phy.ChannelFor(country)
	}
	// Warm the MAC grid cells the run will touch before fanning out, so
	// workers never contend on cell construction.
	warm := dist.NewRand(cfg.Seed ^ 0xbeef)
	for _, u := range []float64{0.05, 0.35, 0.65, 0.88, 0.98} {
		macModel.SampleUplink(u, 1e-3, warm)
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(customers) {
		workers = len(customers)
	}
	// Each worker owns a private tracker and synthesizes only its own
	// customers (stride partition), so every tracker sees a fully
	// deterministic single-producer event order; flows never span
	// workers because 5-tuples are per-customer. The per-worker logs are
	// merged and sorted afterwards, making the output independent of
	// scheduling.
	type workerOut struct {
		flows   []tstat.FlowRecord
		dns     []tstat.DNSRecord
		intents int
	}
	outs := make([]workerOut, workers)
	mWorkers.Set(float64(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tracker := tstat.NewTracker(tstat.Config{Anonymizer: anon})
			syn := &synthesizer{
				cfg:      cfg,
				tracker:  tracker,
				mac:      macModel,
				loads:    loads,
				channels: channels,
			}
			for ci := w; ci < len(customers); ci += workers {
				c := customers[ci]
				for day := 0; day < cfg.Days; day++ {
					r := root.ForkN("day", uint64(c.ID)*1024+uint64(day))
					intents := workload.GenerateDay(c, day, r)
					sr := root.ForkN("synth", uint64(c.ID)*1024+uint64(day))
					for i := range intents {
						// cfg.Trace.Start is nil-safe: with tracing off
						// (or the flow unsampled) fl is nil and every
						// downstream recording call is a pointer check.
						fl := cfg.Trace.Start(c.ID, day, i)
						syn.flow(&intents[i], sr, fl)
					}
					outs[w].intents += len(intents)
					mFlows.Add(int64(len(intents)))
				}
				mCustomersDone.Inc()
			}
			outs[w].flows, outs[w].dns = tracker.Flush()
		}(w)
	}
	wg.Wait()
	passB := time.Since(startB)
	mPassB.SetDuration(passB)
	stats := RunStats{PassA: passA, PassB: passB, Workers: workers, WorkerFlows: make([]int, workers)}
	for w := range outs {
		stats.WorkerFlows[w] = outs[w].intents
		if secs := passB.Seconds(); secs > 0 {
			mWorkerRate.Observe(float64(outs[w].intents) / secs)
		}
	}

	var flows []tstat.FlowRecord
	var dns []tstat.DNSRecord
	for _, o := range outs {
		flows = append(flows, o.flows...)
		dns = append(dns, o.dns...)
	}
	tstat.SortFlows(flows)
	tstat.SortDNS(dns)

	out := &Output{
		Flows:           flows,
		DNS:             dns,
		Meta:            make(map[netip.Addr]CustomerMeta, len(customers)),
		CountryPrefixes: map[netip.Prefix]geo.CountryCode{},
		Epoch:           time.Date(2022, time.February, 7, 0, 0, 0, 0, time.UTC),
		Stats:           stats,
	}
	for _, c := range customers {
		out.Meta[anon.MustAnonymize(c.Addr)] = CustomerMeta{
			Country: c.Country.Code, Beam: c.Beam, Type: c.Type,
			PlanMbs: c.Plan.DownMbps, Multiplex: c.Multiplex, Resolver: c.Resolver.ID,
		}
	}
	for _, p := range workload.Profiles() {
		subnet, ok := workload.SubnetFor(p.Country.Code)
		if !ok {
			return nil, fmt.Errorf("netsim: no subnet for %s", p.Country.Code)
		}
		anonBase := anon.MustAnonymize(subnet.Addr())
		anonPrefix, err := anonBase.Prefix(subnet.Bits())
		if err != nil {
			return nil, err
		}
		out.CountryPrefixes[anonPrefix] = p.Country.Code
	}
	for _, bl := range loads {
		var sum, peak, pepPeakRho float64
		for h := 0; h < hours; h++ {
			u := bl.util(h)
			sum += u
			if u > peak {
				peak = u
			}
			if rho := bl.pepRho(h, bl.beam.PEPFactor); rho > pepPeakRho {
				pepPeakRho = rho
			}
		}
		out.Beams = append(out.Beams, BeamStat{
			Beam: bl.beam.ID, Country: bl.beam.Country,
			PeakUtil: peak, MeanUtil: sum / float64(hours),
			PEPPeakRho: pepPeakRho, CapacityBps: bl.capacity * 8,
			OfferedPeakBps: bl.capacity * bl.beam.TargetPeakUtil * 8,
		})
	}
	return out, nil
}
