// Package netsim is the integrated deployment simulator: it drives the
// workload population through the satellite network models (geometry, PHY,
// MAC, PEP, shaper, CDN, DNS) and synthesizes the packet/segment stream a
// probe at the ground station would capture, feeding it straight into the
// tstat tracker. Every latency component of the resulting records is
// produced by an explicit mechanism:
//
//	satellite RTT = 4 slant-path passes (geo) + uplink MAC access (mac)
//	              + downlink queueing (mac) + PEP setup sojourn (pepmodel)
//	ground RTT    = hosting-region path (cdn) chosen by the customer's
//	                resolver view (dnssim)
//	throughput    = plan shaping (shaper) x beam congestion x terminal
//	                and AP contention factors, rolled out by tcpmodel
//
// The simulator runs in two passes over the same worker partition
// (customers striped across workers): pass A generates every customer-day
// workload in parallel and aggregates offered load per (beam, hour) into
// per-worker integer shards, reduced exactly by beam ID to dimension beam
// capacity and PEP resources; pass B synthesizes the flow timelines under
// the resulting utilization, reusing the pass-A intents through a
// memory-bounded cache (regenerating deterministically when the budget
// spilled them). Per-worker logs are sorted in parallel and combined with
// a k-way merge, so the output is byte-identical at any worker count.
package netsim

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"satwatch/internal/cryptopan"
	"satwatch/internal/dist"
	"satwatch/internal/dnssim"
	"satwatch/internal/faults"
	"satwatch/internal/geo"
	"satwatch/internal/mac"
	"satwatch/internal/obs"
	"satwatch/internal/pepmodel"
	"satwatch/internal/phy"
	"satwatch/internal/prof"
	"satwatch/internal/trace"
	"satwatch/internal/tstat"
	"satwatch/internal/workload"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mPassA = obs.NewGauge("netsim_pass_a_seconds",
		"Wall time of pass A (parallel workload generation and beam dimensioning) of the last run.", "seconds")
	mPassB = obs.NewGauge("netsim_pass_b_seconds",
		"Wall time of pass B (parallel flow synthesis and tracking) of the last run.", "seconds")
	mMACPrebuild = obs.NewGauge("netsim_mac_prebuild_seconds",
		"Wall time spent pre-building the full MAC access-delay grid between passes.", "seconds")
	mMerge = obs.NewGauge("netsim_merge_seconds",
		"Wall time of the k-way merge of per-worker sorted logs of the last run.", "seconds")
	mWorkers = obs.NewGauge("netsim_workers",
		"Effective worker count (both passes) of the last run.", "")
	mCustomersTotal = obs.NewGauge("netsim_customers_total",
		"Population size of the last run.", "")
	mCustomersDone = obs.NewCounter("netsim_customers_done_total",
		"Customers fully synthesized by pass-B workers.", "")
	mFlows = obs.NewCounter("netsim_flows_total",
		"Flow intents synthesized into tracker events.", "")
	mWorkerRate = obs.NewHistogram("netsim_worker_flows_per_second",
		"Per-worker pass-B flow synthesis throughput (one sample per worker per run).", "flows/s",
		obs.ExpBuckets(100, 2, 14))
	mIntentCacheHits = obs.NewCounter("netsim_intent_cache_hits_total",
		"Customer-days whose pass-A intents were reused in pass B without regeneration.", "")
	mIntentCacheSpills = obs.NewCounter("netsim_intent_cache_spills_total",
		"Customer-days dropped from the intent cache by the byte budget (regenerated in pass B).", "")
	mIntentCacheBytes = obs.NewGauge("netsim_intent_cache_bytes",
		"Peak bytes admitted to the pass-A intent cache in the last run.", "bytes")
	mFlowsDegraded = obs.NewCounter("netsim_flows_degraded_total",
		"Flows shaped or killed by at least one scheduled fault event (internal/faults).", "")
	mRowsSkipped = obs.NewCounter("netsim_rows_skipped_total",
		"Corrupt input rows skipped (and counted) by tolerant readers across the toolchain.", "")
	mWorkerRecoveries = obs.NewCounter("netsim_worker_recoveries_total",
		"Worker panics recovered into per-customer errors instead of crashing the run.", "")
	mCustomersSalvaged = obs.NewCounter("netsim_customers_salvaged_total",
		"Customers whose logs were salvaged from a degraded or interrupted run.", "")
	// Per-stage allocation accounting (runtime allocation-counter deltas
	// at the stage boundaries; see internal/prof).
	mPassAAllocBytes = obs.NewCounter("netsim_pass_a_alloc_bytes_total",
		"Heap bytes allocated during pass A (workload generation and beam dimensioning).", "bytes")
	mPassAAllocs = obs.NewCounter("netsim_pass_a_allocs_total",
		"Heap objects allocated during pass A.", "")
	mMACPrebuildAllocBytes = obs.NewCounter("netsim_mac_prebuild_alloc_bytes_total",
		"Heap bytes allocated while pre-building the MAC access-delay grid.", "bytes")
	mMACPrebuildAllocs = obs.NewCounter("netsim_mac_prebuild_allocs_total",
		"Heap objects allocated while pre-building the MAC access-delay grid.", "")
	mPassBAllocBytes = obs.NewCounter("netsim_pass_b_alloc_bytes_total",
		"Heap bytes allocated during pass B (flow synthesis, tracking and per-worker sorts).", "bytes")
	mPassBAllocs = obs.NewCounter("netsim_pass_b_allocs_total",
		"Heap objects allocated during pass B.", "")
	mMergeAllocBytes = obs.NewCounter("netsim_merge_alloc_bytes_total",
		"Heap bytes allocated during the k-way merge of per-worker sorted logs.", "bytes")
	mMergeAllocs = obs.NewCounter("netsim_merge_allocs_total",
		"Heap objects allocated during the k-way merge.", "")
	mAllocBytesPerFlow = obs.NewGauge("netsim_alloc_bytes_per_flow",
		"Heap bytes allocated per synthesized flow across all simulator stages of the last run.", "bytes")
)

// CountSkippedRows feeds netsim_rows_skipped_total from the tolerant
// readers in the CLIs (the metric lives here so every tool shares one
// name for "input rows dropped instead of aborting").
func CountSkippedRows(n int) {
	if n > 0 {
		mRowsSkipped.Add(int64(n))
	}
}

// Test hooks (nil outside tests). testHookSynthCustomer runs at the top
// of every customer synthesis; testHookAfterPassA runs once between the
// passes. They let tests inject panics and cancellations at exact points.
var (
	testHookSynthCustomer func(customerID int)
	testHookAfterPassA    func()
)

// Run status values, surfaced through RunStats.Status and the manifest.
const (
	// StatusOK: every customer synthesized, no errors.
	StatusOK = "ok"
	// StatusDegraded: the run completed but dropped customers (recovered
	// panics or serialization errors); outputs are valid but incomplete.
	StatusDegraded = "degraded"
	// StatusPartial: the run was interrupted; outputs hold whatever the
	// workers finished flushing.
	StatusPartial = "partial"
)

// defaultIntentCacheBytes bounds the pass-A→pass-B intent cache when the
// config leaves IntentCacheBytes zero: laptop-scale runs fit entirely and
// skip the second workload generation, while operator-scale runs degrade
// gracefully to regeneration once the budget is spent.
const defaultIntentCacheBytes = 512 << 20

// Config parameterizes a simulation run. Zero fields take the effective
// defaults applied by Run: 400 customers, 2 days (matching
// DefaultConfig), seed 0, GOMAXPROCS workers, per-field MAC defaults
// (mac.DefaultParams), the default PEP model, and a 512 MiB intent cache.
type Config struct {
	// Customers is the population size; Days the observation window.
	Customers int
	Days      int
	// Seed drives all randomness; identical configs produce identical logs.
	Seed uint64
	// Parallelism is the number of simulation workers for both passes
	// (0 → GOMAXPROCS). Both passes partition by customer, pass-A load
	// aggregation reduces integer shards exactly, and the per-worker logs
	// are k-way merged in a canonical total order, so results depend only
	// on Seed — byte-identical at any worker count.
	Parallelism int

	// IntentCacheBytes bounds the memory holding pass-A flow intents for
	// reuse in pass B (0 → 512 MiB; negative disables the cache). Intents
	// beyond the budget are regenerated deterministically in pass B, so
	// the budget trades memory for generation time without affecting
	// output.
	IntentCacheBytes int64

	// Constellation selects the orbit backend: "geo" (default; the
	// paper's fixed 550 ms geometry) or "leo" (a seeded low-earth shell
	// with time-varying 15–60 ms RTTs, satellite handovers and gateway
	// diversity — see geo.ConstellationByName). Recorded in the manifest
	// config dump.
	Constellation string

	// MAC overrides the data-link dimensioning (zero fields → defaults
	// matched to the constellation: mac.DefaultParams for geo,
	// mac.LEOParams for leo).
	MAC mac.Params
	// PEP overrides the PEP resource model (zero value → defaults).
	PEP pepmodel.Model

	// Trace, when non-nil, records a per-flow latency-decomposition span
	// tree for sampled flows (see internal/trace). Nil disables tracing;
	// the hot-path cost of the disabled state is a nil check. The caller
	// owns the tracer and must Close it after Run returns. Excluded from
	// the manifest config dump.
	Trace *trace.Tracer `json:"-"`

	// Ablations (DESIGN.md A1-A4).
	//
	// DisablePEP removes the PEP setup sojourn from the satellite path.
	DisablePEP bool
	// DisableMAC replaces the MAC access delays with zero (ideal access).
	DisableMAC bool
	// AfricanGroundStation adds a second gateway in Africa: African
	// customers reaching African-hosted services no longer hairpin
	// through Italy (§6.2's discussed optimization).
	AfricanGroundStation bool
	// ForceOperatorDNS makes every customer use the operator resolver
	// (§6.4's proposed fix).
	ForceOperatorDNS bool

	// Faults, when non-nil, is the deterministic fault schedule the run
	// plays back (rain fronts, beam outages, gateway switchovers, PEP
	// overloads, resolver outages — internal/faults). Nil means clear
	// skies: the output is byte-identical to a run without fault support.
	// Recorded in the manifest under its own key, not the config dump.
	Faults *faults.Schedule `json:"-"`
}

// DefaultConfig returns a laptop-scale run: 400 customers over 2 days.
func DefaultConfig() Config {
	return Config{Customers: 400, Days: 2, Seed: 1, MAC: mac.DefaultParams(), PEP: pepmodel.Default()}
}

func (c Config) withDefaults() Config {
	if c.Customers <= 0 {
		c.Customers = 400
	}
	if c.Days <= 0 {
		c.Days = 2
	}
	if c.Constellation == "" {
		c.Constellation = "geo"
	}
	if c.Constellation == "leo" && c.MAC == (mac.Params{}) {
		// An untouched MAC follows the orbit: the control loop bounces
		// off a 550 km shell, not a geostationary one.
		c.MAC = mac.LEOParams()
	}
	c.MAC = c.MAC.WithDefaults()
	if c.PEP.SetupTime == 0 {
		c.PEP = pepmodel.Default()
	}
	return c
}

// CustomerMeta is the operator-side metadata joined to anonymized records
// during analysis (the paper's §3.1 enrichment, done "with the support of
// the SatCom operator").
type CustomerMeta struct {
	Country geo.CountryCode
	Beam    int
	Type    workload.CustomerType
	PlanMbs float64
	// Multiplex is the number of end-users behind the CPE.
	Multiplex int
	// Resolver is the resolver this customer's devices use.
	Resolver dnssim.ResolverID
}

// BeamStat summarizes one beam over the run (Figure 8b inputs).
type BeamStat struct {
	Beam           int
	Country        geo.CountryCode
	PeakUtil       float64 // utilization at the beam's busiest hour
	MeanUtil       float64
	PEPPeakRho     float64
	CapacityBps    float64
	OfferedPeakBps float64
}

// RunStats are the per-stage wall timings and worker statistics of one
// Run, feeding the run manifest (see ManifestFor) and the progress line.
type RunStats struct {
	// PassA / PassB are the wall times of the two simulator passes.
	PassA time.Duration
	PassB time.Duration
	// MACPrebuild is the wall time spent pre-building the MAC grid
	// between the passes (near zero when the process-wide cell cache is
	// already warm).
	MACPrebuild time.Duration
	// Merge is the wall time of the final k-way merge of per-worker logs.
	Merge time.Duration
	// Workers is the effective parallelism of both passes
	// (Config.Parallelism resolved against GOMAXPROCS and the population
	// size).
	Workers int
	// WorkerFlows is the number of flow intents each worker synthesized.
	WorkerFlows []int
	// IntentCacheHits / IntentCacheSpills count customer-days whose
	// pass-A intents were reused in pass B vs. regenerated because the
	// cache byte budget was exhausted.
	IntentCacheHits   int
	IntentCacheSpills int
	// Errors collects the per-customer failures (recovered panics,
	// serialization errors) of a degraded run, sorted for determinism.
	Errors []string
	// CustomersDone counts customers fully synthesized in pass B.
	CustomersDone int
	// Interrupted is set when the run's context was cancelled and the
	// outputs hold only what the workers had finished.
	Interrupted bool
	// StageAllocs maps stage name (same keys as the manifest timings:
	// "pass_a", "mac_prebuild", "pass_b", "merge") to the stage's
	// allocation delta, read from the runtime allocation counters at the
	// stage boundaries by internal/prof.
	StageAllocs map[string]obs.AllocInfo
}

// Status folds the run outcome into the manifest status field: "partial"
// when interrupted, "degraded" when customers were dropped, "ok" otherwise.
func (s RunStats) Status() string {
	switch {
	case s.Interrupted:
		return StatusPartial
	case len(s.Errors) > 0:
		return StatusDegraded
	default:
		return StatusOK
	}
}

// Flows returns the total flow intents synthesized across workers.
func (s RunStats) Flows() int {
	total := 0
	for _, n := range s.WorkerFlows {
		total += n
	}
	return total
}

// AllocBytesPerFlow derives the run's per-flow allocation cost: the sum
// of the per-stage allocation byte deltas over the flow count. 0 when
// the run produced no flows or alloc accounting did not run.
func (s RunStats) AllocBytesPerFlow() float64 {
	n := s.Flows()
	if n == 0 {
		return 0
	}
	var total uint64
	for _, a := range s.StageAllocs {
		total += a.Bytes
	}
	return float64(total) / float64(n)
}

// Output is everything a run produces.
type Output struct {
	Flows []tstat.FlowRecord
	DNS   []tstat.DNSRecord
	// Meta maps anonymized client addresses to operator metadata.
	Meta map[netip.Addr]CustomerMeta
	// CountryPrefixes maps anonymized /16 prefixes to countries.
	CountryPrefixes map[netip.Prefix]geo.CountryCode
	// Beams carries per-beam load statistics, ordered by beam ID.
	Beams []BeamStat
	// Epoch is the wall-clock instant of simulated time zero (UTC
	// midnight), for pcap export.
	Epoch time.Time
	// Faults is the effective fault schedule the run played back:
	// Config.Faults plus any constellation-contributed events (LEO
	// handovers). Recorded in the manifest; nil for clear-sky GEO runs.
	Faults *faults.Schedule
	// Stats carries the run's wall timings and worker statistics.
	Stats RunStats
}

// hourOf returns the absolute hour index of a simulation timestamp.
func hourOf(t time.Duration) int { return int(t / time.Hour) }

// beamLoad accumulates pass-A aggregates for one beam.
type beamLoad struct {
	beam       geo.Beam
	bytesHour  []float64 // offered bytes per absolute hour
	setupsHour []float64 // connection setups per absolute hour
	capacity   float64   // bytes/sec, dimensioned after pass A
	pepPeak    float64   // setups/sec at the dimensioning peak
	// wrap makes the hourly profile periodic: the live pipeline
	// dimensions one day and indexes it forever with hour % len, while a
	// batch run keeps the absolute out-of-range → zero-load behavior.
	wrap bool
}

func (b *beamLoad) hourIdx(hour int) int {
	if b.wrap && len(b.bytesHour) > 0 && hour >= 0 {
		return hour % len(b.bytesHour)
	}
	return hour
}

func (b *beamLoad) util(hour int) float64 {
	hour = b.hourIdx(hour)
	if b.capacity <= 0 || hour < 0 || hour >= len(b.bytesHour) {
		return 0
	}
	return b.bytesHour[hour] / 3600 / b.capacity
}

func (b *beamLoad) pepRho(hour int, factor float64) float64 {
	hour = b.hourIdx(hour)
	if hour < 0 || hour >= len(b.setupsHour) {
		return 0
	}
	return pepmodel.Rho(b.setupsHour[hour]/3600, b.pepPeak, factor)
}

// passAShard is one worker's private pass-A state: integer load
// accumulators per (beam, hour) — integer sums reduce exactly in any
// order, which is what keeps the dimensioning bit-identical at any worker
// count — plus the intents it generated, cached for pass B when the byte
// budget allows.
type passAShard struct {
	bytes  [][]int64 // [beam ID][hour] offered bytes
	setups [][]int64 // [beam ID][hour] connection setups
	// cache holds this worker's generated intents per local
	// (customer, day) slot; nil slots were spilled by the budget and are
	// regenerated deterministically in pass B.
	cache      [][]workload.FlowIntent
	cacheBytes int64
	hits       int
	spills     int
	// errs collects recovered pass-A panics; failed marks the local
	// slots they poisoned so pass B never regenerates them (which would
	// just re-trigger the panic).
	errs   []string
	failed map[int]bool
}

// generateDaySafe is GenerateDay with a panic fence: one bad customer-day
// becomes an error carrying its coordinates instead of a dead worker.
func generateDaySafe(c *workload.Customer, day int, r *dist.Rand) (intents []workload.FlowIntent, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("netsim: generate customer %d day %d: panic: %v", c.ID, day, p)
		}
	}()
	return workload.GenerateDay(c, day, r), nil
}

// workerOut is one pass-B worker's private output.
type workerOut struct {
	flows   []tstat.FlowRecord
	dns     []tstat.DNSRecord
	intents int
	errs    []string
	done    int
}

// synthCustomer synthesizes one customer's full observation window,
// recovering panics from the model stack into an error naming the
// customer and day; the worker drops that customer and keeps going.
func synthCustomer(syn *synthesizer, sh *passAShard, root *dist.Rand, cfg Config, c *workload.Customer, local int, out *workerOut) (err error) {
	day := -1
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("netsim: synthesize customer %d day %d: panic: %v", c.ID, day, p)
		}
	}()
	if testHookSynthCustomer != nil {
		testHookSynthCustomer(c.ID)
	}
	for day = 0; day < cfg.Days; day++ {
		slot := local*cfg.Days + day
		if sh.failed[slot] {
			continue
		}
		intents := sh.cache[slot]
		if intents != nil {
			sh.cache[slot] = nil // consumed; release for GC
			sh.hits++
		} else {
			r := root.ForkN("day", uint64(c.ID)*1024+uint64(day))
			var gerr error
			intents, gerr = generateDaySafe(c, day, r)
			if gerr != nil {
				return gerr
			}
		}
		sr := root.ForkN("synth", uint64(c.ID)*1024+uint64(day))
		for i := range intents {
			// cfg.Trace.Start is nil-safe: with tracing off (or the
			// flow unsampled) fl is nil and every downstream recording
			// call is a pointer check.
			fl := cfg.Trace.Start(c.ID, day, i)
			if ferr := syn.flow(&intents[i], sr, fl); ferr != nil {
				return fmt.Errorf("netsim: customer %d day %d flow %d: %w", c.ID, day, i, ferr)
			}
		}
		out.intents += len(intents)
		mFlows.Add(int64(len(intents)))
	}
	return nil
}

// Run executes the simulation to completion (no cancellation).
func Run(cfg Config) (*Output, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the simulation under ctx. Cancellation during pass
// B stops every worker at its next customer boundary and returns the
// flows the workers had finished, with Stats.Interrupted set (manifest
// status "partial"); cancellation during pass A — before any flow exists
// — fails the run outright.
func RunContext(ctx context.Context, cfg Config) (*Output, error) {
	cfg = cfg.withDefaults()
	con, err := geo.ConstellationByName(cfg.Constellation, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// A moving constellation contributes its own deterministic fault
	// timeline: the disruptive subset of satellite handovers, merged with
	// whatever schedule the caller injected. The merged schedule is what
	// the synthesizers consult and what the manifest records.
	sched := cfg.Faults
	if !con.Static() {
		sched = faults.WithLEOHandovers(sched, cfg.Days, cfg.Seed)
	}
	faults.RecordActive(sched)
	root := dist.NewRand(cfg.Seed)
	startA := time.Now()
	mCustomersTotal.Set(float64(cfg.Customers))

	customers, err := workload.BuildPopulation(cfg.Customers, root.Fork("population"))
	if err != nil {
		return nil, err
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(customers) {
		workers = len(customers)
	}
	mWorkers.Set(float64(workers))

	// --- Pass A: offered load per beam-hour, sharded by worker ----------
	// Customers stripe across workers (ci ≡ w mod workers) — the same
	// partition pass B uses, so each worker's intent cache feeds its own
	// pass-B loop. Each (customer, day) has its own forked random stream,
	// so generation order across workers cannot perturb the workload.
	hours := cfg.Days * 24
	beams := geo.Beams()
	maxBeamID := 0
	for _, b := range beams {
		if b.ID > maxBeamID {
			maxBeamID = b.ID
		}
	}

	budget := cfg.IntentCacheBytes
	if budget == 0 {
		budget = defaultIntentCacheBytes
	}
	var cacheFree atomic.Int64
	cacheFree.Store(budget)

	shards := make([]passAShard, workers)
	var wg sync.WaitGroup
	// loads is indexed by beam ID, filled by the reduce below.
	loads := make([]*beamLoad, maxBeamID+1)
	// The whole of pass A — worker fan-out plus the beam reduce — runs as
	// one labeled stage: every CPU sample it takes carries stage=<pass A>
	// (plus worker=N inside the fan-out), and the stage's allocation delta
	// feeds the manifest allocs block and the alloc metrics.
	allocA := prof.Stage(ctx, prof.StagePassA, func(sctx context.Context) {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				prof.Worker(sctx, w, func(wctx context.Context) {
					sh := &shards[w]
					sh.bytes = make([][]int64, maxBeamID+1)
					sh.setups = make([][]int64, maxBeamID+1)
					for _, b := range beams {
						sh.bytes[b.ID] = make([]int64, hours)
						sh.setups[b.ID] = make([]int64, hours)
					}
					nLocal := (len(customers) - w + workers - 1) / workers
					sh.cache = make([][]workload.FlowIntent, nLocal*cfg.Days)
					local := 0
					for ci := w; ci < len(customers); ci += workers {
						if wctx.Err() != nil {
							return
						}
						c := customers[ci]
						for day := 0; day < cfg.Days; day++ {
							r := root.ForkN("day", uint64(c.ID)*1024+uint64(day))
							intents, gerr := generateDaySafe(c, day, r)
							if gerr != nil {
								mWorkerRecoveries.Inc()
								sh.errs = append(sh.errs, gerr.Error())
								if sh.failed == nil {
									sh.failed = map[int]bool{}
								}
								sh.failed[local*cfg.Days+day] = true
								continue
							}
							bb, sb := sh.bytes[c.Beam], sh.setups[c.Beam]
							var size int64
							for i := range intents {
								fi := &intents[i]
								if h := hourOf(fi.Start); h >= 0 && h < hours {
									bb[h] += fi.Down + fi.Up
									sb[h]++
								}
								size += int64(fi.MemBytes())
							}
							// Admit into the intent cache while the budget
							// lasts; spilled slots are regenerated in pass B.
							if cacheFree.Add(-size) >= 0 {
								sh.cache[local*cfg.Days+day] = intents
								sh.cacheBytes += size
							} else {
								cacheFree.Add(size)
								sh.spills++
							}
						}
						local++
					}
				})
			}(w)
		}
		wg.Wait()
		if ctx.Err() != nil {
			return
		}

		var cachedBytes int64
		for w := range shards {
			cachedBytes += shards[w].cacheBytes
		}
		mIntentCacheBytes.Set(float64(cachedBytes))

		// Reduce the integer shards by beam ID and dimension each beam so its
		// busiest hour hits the operator's target utilization, and the PEP so
		// its busiest hour hits 1/PEPFactor.
		for _, b := range beams {
			bl := &beamLoad{beam: b, bytesHour: make([]float64, hours), setupsHour: make([]float64, hours)}
			var peakBytes, peakSetups int64
			for h := 0; h < hours; h++ {
				var byteSum, setupSum int64
				for w := range shards {
					byteSum += shards[w].bytes[b.ID][h]
					setupSum += shards[w].setups[b.ID][h]
				}
				bl.bytesHour[h] = float64(byteSum)
				bl.setupsHour[h] = float64(setupSum)
				if byteSum > peakBytes {
					peakBytes = byteSum
				}
				if setupSum > peakSetups {
					peakSetups = setupSum
				}
			}
			offered := float64(peakBytes) / 3600
			if offered <= 0 {
				offered = 1
			}
			bl.capacity = offered / b.TargetPeakUtil
			bl.pepPeak = float64(peakSetups) / 3600
			if bl.pepPeak <= 0 {
				bl.pepPeak = 1.0 / 3600
			}
			loads[b.ID] = bl
		}
	})
	if err := ctx.Err(); err != nil {
		// No flow exists yet; there is nothing to salvage.
		return nil, fmt.Errorf("netsim: interrupted during workload generation: %w", err)
	}
	mPassAAllocBytes.Add(int64(allocA.Bytes))
	mPassAAllocs.Add(int64(allocA.Objects))

	passA := time.Since(startA)
	mPassA.SetDuration(passA)

	if testHookAfterPassA != nil {
		testHookAfterPassA()
	}

	// --- MAC grid pre-build ----------------------------------------------
	// Build every (util, FER) access-delay cell in parallel before fanning
	// out, so no pass-B worker ever stalls on a lazy micro-simulation (the
	// first rainy flow used to build its FER cell under a global lock).
	// Cells live in a process-wide cache, so repeated runs skip this.
	startPre := time.Now()
	macModel := mac.NewModel(cfg.MAC)
	allocPre := prof.Stage(ctx, prof.StageMACPrebuild, func(context.Context) {
		macModel.Prebuild(workers)
	})
	prebuild := time.Since(startPre)
	mMACPrebuild.SetDuration(prebuild)
	mMACPrebuildAllocBytes.Add(int64(allocPre.Bytes))
	mMACPrebuildAllocs.Add(int64(allocPre.Objects))

	// --- Pass B: synthesize the vantage-point stream ------------------
	startB := time.Now()
	anonKey := make([]byte, cryptopan.KeySize)
	kr := root.Fork("anon-key")
	for i := range anonKey {
		anonKey[i] = byte(kr.Uint64())
	}
	anon, err := cryptopan.New(anonKey)
	if err != nil {
		return nil, err
	}
	// For a static constellation the per-country channel is fixed and
	// precomputed; a moving one is evaluated per flow in samplePath.
	channels := map[geo.CountryCode]phy.Channel{}
	if con.Static() {
		for _, country := range geo.Countries() {
			channels[country.Code] = phy.ChannelAt(country, con, 0)
		}
	}

	// Each worker owns a private tracker and synthesizes only its own
	// customers (the pass-A stride partition), so every tracker sees a
	// fully deterministic single-producer event order; flows never span
	// workers because 5-tuples are per-customer. Each worker sorts its
	// own log into the canonical total order, and the sorted runs are
	// k-way merged afterwards, making the output independent of
	// scheduling and worker count. A customer whose synthesis panics is
	// dropped with a recovered error; a cancelled context stops every
	// worker at its next customer boundary — either way the remaining
	// customers' logs are flushed, sorted, and merged as usual.
	var interrupted atomic.Bool
	outs := make([]workerOut, workers)
	allocB := prof.Stage(ctx, prof.StagePassB, func(sctx context.Context) {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				prof.Worker(sctx, w, func(wctx context.Context) {
					tracker := tstat.NewTracker(tstat.Config{Anonymizer: anon})
					syn := &synthesizer{
						cfg:      cfg,
						con:      con,
						sched:    sched,
						tracker:  tracker,
						mac:      macModel,
						loads:    loads,
						channels: channels,
					}
					sh := &shards[w]
					local := 0
					for ci := w; ci < len(customers); ci += workers {
						if wctx.Err() != nil {
							interrupted.Store(true)
							break
						}
						c := customers[ci]
						if err := synthCustomer(syn, sh, root, cfg, c, local, &outs[w]); err != nil {
							mWorkerRecoveries.Inc()
							outs[w].errs = append(outs[w].errs, err.Error())
						} else {
							outs[w].done++
							mCustomersDone.Inc()
						}
						local++
					}
					// The end-of-worker flush and canonical sort are tstat
					// work, not synthesis — relabel them (keeping worker=N)
					// so profiles separate tracker drain from flow synthesis.
					prof.Do(wctx, prof.StageTstat, func() {
						outs[w].flows, outs[w].dns = tracker.Flush()
						tstat.SortFlows(outs[w].flows)
						tstat.SortDNS(outs[w].dns)
					})
				})
			}(w)
		}
		wg.Wait()
	})
	passB := time.Since(startB)
	mPassB.SetDuration(passB)
	mPassBAllocBytes.Add(int64(allocB.Bytes))
	mPassBAllocs.Add(int64(allocB.Objects))
	stats := RunStats{
		PassA: passA, PassB: passB, MACPrebuild: prebuild,
		Workers: workers, WorkerFlows: make([]int, workers),
		Interrupted: interrupted.Load(),
	}
	for w := range outs {
		stats.WorkerFlows[w] = outs[w].intents
		stats.IntentCacheHits += shards[w].hits
		stats.IntentCacheSpills += shards[w].spills
		stats.Errors = append(stats.Errors, shards[w].errs...)
		stats.Errors = append(stats.Errors, outs[w].errs...)
		stats.CustomersDone += outs[w].done
		if secs := passB.Seconds(); secs > 0 {
			mWorkerRate.Observe(float64(outs[w].intents) / secs)
		}
	}
	sort.Strings(stats.Errors)
	if stats.Status() != StatusOK {
		mCustomersSalvaged.Add(int64(stats.CustomersDone))
	}
	mIntentCacheHits.Add(int64(stats.IntentCacheHits))
	mIntentCacheSpills.Add(int64(stats.IntentCacheSpills))

	startMerge := time.Now()
	flowRuns := make([][]tstat.FlowRecord, workers)
	dnsRuns := make([][]tstat.DNSRecord, workers)
	for w := range outs {
		flowRuns[w] = outs[w].flows
		dnsRuns[w] = outs[w].dns
	}
	var flows []tstat.FlowRecord
	var dns []tstat.DNSRecord
	allocMerge := prof.Stage(ctx, prof.StageMerge, func(context.Context) {
		flows = tstat.MergeFlows(flowRuns)
		dns = tstat.MergeDNS(dnsRuns)
	})
	stats.Merge = time.Since(startMerge)
	mMerge.SetDuration(stats.Merge)
	mMergeAllocBytes.Add(int64(allocMerge.Bytes))
	mMergeAllocs.Add(int64(allocMerge.Objects))
	stats.StageAllocs = map[string]obs.AllocInfo{
		"pass_a":       allocA,
		"mac_prebuild": allocPre,
		"pass_b":       allocB,
		"merge":        allocMerge,
	}
	if perFlow := stats.AllocBytesPerFlow(); perFlow > 0 {
		mAllocBytesPerFlow.Set(perFlow)
	}

	out := &Output{
		Flows:           flows,
		DNS:             dns,
		Meta:            make(map[netip.Addr]CustomerMeta, len(customers)),
		CountryPrefixes: map[netip.Prefix]geo.CountryCode{},
		Epoch:           time.Date(2022, time.February, 7, 0, 0, 0, 0, time.UTC),
		Faults:          sched,
		Stats:           stats,
	}
	for _, c := range customers {
		out.Meta[anon.MustAnonymize(c.Addr)] = CustomerMeta{
			Country: c.Country.Code, Beam: c.Beam, Type: c.Type,
			PlanMbs: c.Plan.DownMbps, Multiplex: c.Multiplex, Resolver: c.Resolver.ID,
		}
	}
	for _, p := range workload.Profiles() {
		subnet, ok := workload.SubnetFor(p.Country.Code)
		if !ok {
			return nil, fmt.Errorf("netsim: no subnet for %s", p.Country.Code)
		}
		anonBase := anon.MustAnonymize(subnet.Addr())
		anonPrefix, err := anonBase.Prefix(subnet.Bits())
		if err != nil {
			return nil, err
		}
		out.CountryPrefixes[anonPrefix] = p.Country.Code
	}
	// loads is indexed by beam ID, so iterating it in order yields Beams
	// sorted by ID — a deterministic order, unlike the map iteration this
	// replaced.
	for _, bl := range loads {
		if bl == nil {
			continue
		}
		var sum, peak, pepPeakRho float64
		for h := 0; h < hours; h++ {
			u := bl.util(h)
			sum += u
			if u > peak {
				peak = u
			}
			if rho := bl.pepRho(h, bl.beam.PEPFactor); rho > pepPeakRho {
				pepPeakRho = rho
			}
		}
		out.Beams = append(out.Beams, BeamStat{
			Beam: bl.beam.ID, Country: bl.beam.Country,
			PeakUtil: peak, MeanUtil: sum / float64(hours),
			PEPPeakRho: pepPeakRho, CapacityBps: bl.capacity * 8,
			OfferedPeakBps: bl.capacity * bl.beam.TargetPeakUtil * 8,
		})
	}
	return out, nil
}
