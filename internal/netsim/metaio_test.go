package netsim

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"satwatch/internal/geo"
	"satwatch/internal/workload"
)

func TestMetaRoundTrip(t *testing.T) {
	in := map[netip.Addr]CustomerMeta{
		netip.MustParseAddr("77.1.2.3"): {Country: "CD", Beam: 2, Type: workload.CommunityAP, PlanMbs: 10, Multiplex: 25, Resolver: "Google"},
		netip.MustParseAddr("77.1.2.4"): {Country: "ES", Beam: 11, Type: workload.Residential, PlanMbs: 50, Multiplex: 1, Resolver: "Operator-EU"},
	}
	var buf bytes.Buffer
	if err := WriteMeta(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

func TestMetaWriteDeterministic(t *testing.T) {
	in := map[netip.Addr]CustomerMeta{}
	for i := 0; i < 50; i++ {
		in[netip.AddrFrom4([4]byte{77, 0, byte(i), 1})] = CustomerMeta{Country: "GB", Beam: i}
	}
	var a, b bytes.Buffer
	WriteMeta(&a, in)
	WriteMeta(&b, in)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("map-order leakage in meta serialization")
	}
}

func TestMetaRejectsGarbage(t *testing.T) {
	if _, err := ReadMeta(strings.NewReader("nope\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := metaHeader + "\nnot-an-ip\tCD\t1\t0\t10\t1\tGoogle\n"
	if _, err := ReadMeta(strings.NewReader(bad)); err == nil {
		t.Fatal("bad address accepted")
	}
	short := metaHeader + "\n1.2.3.4\tCD\n"
	if _, err := ReadMeta(strings.NewReader(short)); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestMetaTolerantSkipsAndCounts(t *testing.T) {
	in := map[netip.Addr]CustomerMeta{
		netip.MustParseAddr("77.1.2.3"): {Country: "CD", Beam: 2, Type: workload.Residential, PlanMbs: 10, Multiplex: 1, Resolver: "Google"},
		netip.MustParseAddr("77.1.2.4"): {Country: "ES", Beam: 11, Type: workload.Residential, PlanMbs: 50, Multiplex: 1, Resolver: "Operator-EU"},
	}
	var buf bytes.Buffer
	if err := WriteMeta(&buf, in); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	damaged := lines[0] + lines[1] + "not-an-ip\tCD\t1\t0\t10\t1\tGoogle\n" + lines[2][:len(lines[2])/2] + "\n"
	out, st, err := ReadMetaTolerant(strings.NewReader(damaged))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || st.Lines != 1 || st.Skipped != 2 {
		t.Fatalf("salvage: %d rows, stats %+v, want 1 row / 1 line / 2 skipped", len(out), st)
	}
	// Tolerance covers damaged rows, not foreign files.
	if _, _, err := ReadMetaTolerant(strings.NewReader("alpha\tbeta\n1\t2\n")); err == nil {
		t.Fatal("tolerant meta read accepted a foreign header")
	}
}

func TestPrefixRoundTrip(t *testing.T) {
	in := map[netip.Prefix]geo.CountryCode{
		netip.MustParsePrefix("77.16.0.0/16"): "CD",
		netip.MustParsePrefix("77.20.0.0/16"): "ES",
	}
	var buf bytes.Buffer
	if err := WritePrefixes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPrefixes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatal("prefix round trip mismatch")
	}
	if _, err := ReadPrefixes(strings.NewReader("bad\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestFullOutputRoundTrip(t *testing.T) {
	out := smallRun(t)
	var mb, pb bytes.Buffer
	if err := WriteMeta(&mb, out.Meta); err != nil {
		t.Fatal(err)
	}
	if err := WritePrefixes(&pb, out.CountryPrefixes); err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMeta(&mb)
	if err != nil {
		t.Fatal(err)
	}
	prefixes, err := ReadPrefixes(&pb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Meta, meta) {
		t.Fatal("simulation metadata did not survive disk round trip")
	}
	if !reflect.DeepEqual(out.CountryPrefixes, prefixes) {
		t.Fatal("prefixes did not survive disk round trip")
	}
}
