package netsim

import (
	"bytes"
	"reflect"
	"testing"

	"satwatch/internal/trace"
	"satwatch/internal/tstat"
)

// serialize renders a run's outputs exactly as the CLIs write them, so
// comparisons below are over the bytes users actually get.
func serialize(t *testing.T, out *Output) (flows, dns, meta []byte) {
	t.Helper()
	var fb, db, mb bytes.Buffer
	if err := tstat.WriteFlows(&fb, out.Flows); err != nil {
		t.Fatal(err)
	}
	if err := tstat.WriteDNS(&db, out.DNS); err != nil {
		t.Fatal(err)
	}
	if err := WriteMeta(&mb, out.Meta); err != nil {
		t.Fatal(err)
	}
	return fb.Bytes(), db.Bytes(), mb.Bytes()
}

// TestBeamsOrderDeterministic regresses the old map-iteration bug: Beams
// must come out identical (and ordered by ID) on every equal-seed run.
func TestBeamsOrderDeterministic(t *testing.T) {
	a, err := Run(Config{Customers: 30, Days: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Customers: 30, Days: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Beams, b.Beams) {
		t.Fatal("Beams differ between identical runs")
	}
	for i := 1; i < len(a.Beams); i++ {
		if a.Beams[i-1].Beam >= a.Beams[i].Beam {
			t.Fatalf("Beams not sorted by ID: %d before %d", a.Beams[i-1].Beam, a.Beams[i].Beam)
		}
	}
}

// TestParallelismInvariance is the PR's headline contract: the same seed
// must produce byte-identical outputs (flow log, DNS log, metadata, and
// flow traces) at any worker count.
func TestParallelismInvariance(t *testing.T) {
	type result struct {
		flows, dns, meta, traces []byte
	}
	runAt := func(par int) result {
		var tb bytes.Buffer
		tr := trace.New(&tb, 1)
		out, err := Run(Config{Customers: 40, Days: 1, Seed: 99, Parallelism: par, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		f, d, m := serialize(t, out)
		return result{flows: f, dns: d, meta: m, traces: tb.Bytes()}
	}
	base := runAt(1)
	if len(base.flows) == 0 || len(base.traces) == 0 {
		t.Fatal("empty serialized output at parallelism 1")
	}
	for _, par := range []int{2, 8} {
		got := runAt(par)
		if !bytes.Equal(base.flows, got.flows) {
			t.Errorf("flow log differs between parallelism 1 and %d", par)
		}
		if !bytes.Equal(base.dns, got.dns) {
			t.Errorf("DNS log differs between parallelism 1 and %d", par)
		}
		if !bytes.Equal(base.meta, got.meta) {
			t.Errorf("metadata differs between parallelism 1 and %d", par)
		}
		if !bytes.Equal(base.traces, got.traces) {
			t.Errorf("flow traces differ between parallelism 1 and %d", par)
		}
	}
}

// TestIntentCacheSpillEquivalence: a budget too small to cache anything
// must still produce byte-identical output — the cache is purely a
// performance lever.
func TestIntentCacheSpillEquivalence(t *testing.T) {
	cached, err := Run(Config{Customers: 30, Days: 1, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Stats.IntentCacheHits == 0 {
		t.Fatal("default budget cached nothing on a laptop-scale run")
	}
	spilled, err := Run(Config{Customers: 30, Days: 1, Seed: 41, IntentCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if spilled.Stats.IntentCacheHits != 0 {
		t.Fatal("disabled cache still reported hits")
	}
	cf, cd, cm := serialize(t, cached)
	sf, sd, sm := serialize(t, spilled)
	if !bytes.Equal(cf, sf) || !bytes.Equal(cd, sd) || !bytes.Equal(cm, sm) {
		t.Fatal("intent-cache spills changed the output")
	}
}

// TestEffectiveDefaults pins the documented effective defaults — in
// particular Days, which used to silently default to 1 while
// DefaultConfig advertised 2.
func TestEffectiveDefaults(t *testing.T) {
	eff := Config{}.withDefaults()
	def := DefaultConfig()
	if eff.Days != def.Days {
		t.Fatalf("effective Days default %d != DefaultConfig's %d", eff.Days, def.Days)
	}
	if eff.Customers != def.Customers {
		t.Fatalf("effective Customers default %d != DefaultConfig's %d", eff.Customers, def.Customers)
	}
	if eff.MAC.SlotsPerFrame == 0 || eff.MAC.FrameDuration == 0 {
		t.Fatal("effective MAC params not filled in")
	}
}

// TestNextPortIssuesFullRange regresses the ephemeral-port allocator: the
// first issued port is 1024 (it used to be skipped), the walk is
// sequential, and a wrap never reissues a port whose flow the probe could
// still be tracking.
func TestNextPortIssuesFullRange(t *testing.T) {
	s := &synthesizer{ports: map[int]*portAlloc{}}
	if p := s.nextPort(1, 0); p != 1024 {
		t.Fatalf("first port = %d, want 1024", p)
	}
	if p := s.nextPort(1, 0); p != 1025 {
		t.Fatalf("second port = %d, want 1025", p)
	}
	// Walk to the wrap point: the full range through 65535 is issued.
	var last uint16
	for i := 0; i < 65535-1025; i++ {
		last = s.nextPort(1, 0)
	}
	if last != 65535 {
		t.Fatalf("port before wrap = %d, want 65535", last)
	}
	// Mark 1024 as busy until t=100m; the wrapped allocator must skip it
	// for a flow starting inside the guard window and reuse it after.
	s.holdPort(1, 1024, 100*60e9)
	if p := s.nextPort(1, 100*60e9); p != 1025 {
		t.Fatalf("wrap reissued a busy port: got %d, want 1025", p)
	}
	pa := s.ports[1]
	pa.next = 1024
	if p := s.nextPort(1, 200*60e9); p != 1024 {
		t.Fatalf("idle port not reissued after the guard: got %d", p)
	}
}

// TestPortsDoNotCollideAcrossCustomers checks the allocator state is
// per-customer.
func TestPortsDoNotCollideAcrossCustomers(t *testing.T) {
	s := &synthesizer{ports: map[int]*portAlloc{}}
	if a, b := s.nextPort(1, 0), s.nextPort(2, 0); a != b {
		t.Fatalf("fresh allocators disagree: %d vs %d", a, b)
	}
}
