package tstat

import (
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleFlow() FlowRecord {
	return FlowRecord{
		Client: netip.MustParseAddr("10.1.2.3"),
		Server: netip.MustParseAddr("151.101.1.1"),
		CPort:  40000, SPort: 443,
		Proto:   ProtoHTTPS,
		Domain:  "e1.whatsapp.net",
		Start:   90 * time.Second,
		End:     95 * time.Second,
		BytesUp: 1234, BytesDown: 567890,
		PktsUp: 12, PktsDown: 420,
		First10: []time.Duration{90 * time.Second, 90*time.Second + 20*time.Millisecond},
		GroundRTT: RTTStats{Samples: 5, Min: 10 * time.Millisecond, Avg: 12 * time.Millisecond,
			Max: 20 * time.Millisecond, Std: 3 * time.Millisecond},
		SatRTT: 612 * time.Millisecond,
	}
}

func TestFlowTSVRoundTrip(t *testing.T) {
	in := []FlowRecord{sampleFlow()}
	second := sampleFlow()
	second.Proto = ProtoQUIC
	second.Domain = ""
	second.First10 = nil
	second.SatRTT = 0
	in = append(in, second)

	var buf bytes.Buffer
	if err := WriteFlows(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFlows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestFlowTSVRejectsGarbage(t *testing.T) {
	if _, err := ReadFlows(strings.NewReader("not a header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := flowHeader + "\njunk\tfields\n"
	if _, err := ReadFlows(strings.NewReader(bad)); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestDNSTSVRoundTrip(t *testing.T) {
	in := []DNSRecord{
		{Client: netip.MustParseAddr("10.5.5.5"), Resolver: netip.MustParseAddr("8.8.8.8"),
			Query: "play.googleapis.com", RCode: 0, Answer: netip.MustParseAddr("142.250.1.2"),
			T: time.Hour, ResponseTime: 22 * time.Millisecond},
		{Client: netip.MustParseAddr("10.5.5.6"), Resolver: netip.MustParseAddr("114.114.114.114"),
			Query: "captive.apple.com", RCode: 3, T: 2 * time.Hour, ResponseTime: 110 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteDNS(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestRTTAccumStats(t *testing.T) {
	var a rttAccum
	if got := a.stats(); got.Samples != 0 || got.Avg != 0 {
		t.Fatal("empty accumulator not zero")
	}
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		a.add(d)
	}
	st := a.stats()
	if st.Samples != 3 || st.Min != 10*time.Millisecond || st.Max != 30*time.Millisecond {
		t.Fatalf("stats %+v", st)
	}
	if st.Avg != 20*time.Millisecond {
		t.Fatalf("avg %v", st.Avg)
	}
	// Std of {10,20,30} ms is ~8.16 ms.
	if st.Std < 8*time.Millisecond || st.Std > 9*time.Millisecond {
		t.Fatalf("std %v", st.Std)
	}
}

func TestProtocolStrings(t *testing.T) {
	for p, want := range map[Protocol]string{
		ProtoHTTPS: "TCP/HTTPS", ProtoHTTP: "TCP/HTTP", ProtoTCPOther: "Other TCP",
		ProtoQUIC: "UDP/QUIC", ProtoRTP: "UDP/RTP", ProtoDNS: "UDP/DNS", ProtoUDPOther: "Other UDP",
	} {
		if p.String() != want {
			t.Errorf("%d: %q, want %q", p, p.String(), want)
		}
		if parseProtocol(want) != p {
			t.Errorf("parseProtocol(%q) broken", want)
		}
	}
	if !ProtoHTTPS.IsTCP() || ProtoQUIC.IsTCP() {
		t.Fatal("IsTCP wrong")
	}
}
