package tstat

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"satwatch/internal/packet"
)

// syntheticEvents builds a mixed batch of flows' events.
func syntheticEvents(flows int) []struct {
	tuple packet.FiveTuple
	ev    SegmentEvent
} {
	var out []struct {
		tuple packet.FiveTuple
		ev    SegmentEvent
	}
	for i := 0; i < flows; i++ {
		cli := packet.Endpoint{Addr: netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}), Port: uint16(1024 + i)}
		srv := packet.Endpoint{Addr: netip.AddrFrom4([4]byte{151, 101, 0, byte(i%250 + 1)}), Port: 443}
		c2s := packet.FiveTuple{Proto: packet.ProtoTCP, Src: cli, Dst: srv}
		base := time.Duration(i) * time.Second
		add := func(tuple packet.FiveTuple, ev SegmentEvent) {
			out = append(out, struct {
				tuple packet.FiveTuple
				ev    SegmentEvent
			}{tuple, ev})
		}
		add(c2s, SegmentEvent{T: base, Flags: packet.FlagSYN, Packets: 1})
		add(c2s.Reverse(), SegmentEvent{T: base + 20*time.Millisecond, Flags: packet.FlagSYN | packet.FlagACK, Ack: 1, Packets: 1})
		add(c2s, SegmentEvent{T: base + 21*time.Millisecond, Seq: 1, Payload: 500, Flags: packet.FlagACK, Packets: 1})
		add(c2s.Reverse(), SegmentEvent{T: base + 41*time.Millisecond, Flags: packet.FlagACK, Ack: 501, Packets: 1})
		add(c2s.Reverse(), SegmentEvent{T: base + 50*time.Millisecond, Seq: 1, Payload: 90000, Flags: packet.FlagACK, Packets: 62})
		add(c2s, SegmentEvent{T: base + 60*time.Millisecond, Flags: packet.FlagFIN | packet.FlagACK, Seq: 501, Packets: 1})
		add(c2s.Reverse(), SegmentEvent{T: base + 80*time.Millisecond, Flags: packet.FlagFIN | packet.FlagACK, Ack: 502, Packets: 1})
	}
	return out
}

func TestShardedMatchesSingleTracker(t *testing.T) {
	events := syntheticEvents(200)

	single := NewTracker(Config{})
	for _, e := range events {
		single.Observe(e.tuple, e.ev)
	}
	sf, sd := single.Flush()

	sharded := NewSharded(4, Config{})
	for _, e := range events {
		sharded.Observe(e.tuple, e.ev)
	}
	pf, pd := sharded.Flush()

	if !reflect.DeepEqual(sf, pf) {
		t.Fatalf("sharded flows differ from single tracker: %d vs %d records", len(pf), len(sf))
	}
	if !reflect.DeepEqual(sd, pd) {
		t.Fatal("sharded DNS records differ")
	}
	if sharded.Observed() != int64(len(events)) {
		t.Fatalf("observed %d events, want %d", sharded.Observed(), len(events))
	}
}

func TestShardedConcurrentProducers(t *testing.T) {
	events := syntheticEvents(120)
	sharded := NewSharded(3, Config{})
	var wg sync.WaitGroup
	// Feed each flow's events from its own goroutine: per-flow order is
	// preserved (same producer), cross-flow order races — which is fine.
	perFlow := 7
	for f := 0; f < len(events)/perFlow; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for _, e := range events[f*perFlow : (f+1)*perFlow] {
				sharded.Observe(e.tuple, e.ev)
			}
		}(f)
	}
	wg.Wait()
	flows, _ := sharded.Flush()
	if len(flows) != 120 {
		t.Fatalf("%d flows, want 120", len(flows))
	}
	for i := range flows {
		f := &flows[i]
		if f.BytesDown != 90000 || f.PktsDown != 65 {
			t.Fatalf("flow %d corrupted: %+v", i, f)
		}
		if f.GroundRTT.Samples == 0 {
			t.Fatalf("flow %d lost RTT samples", i)
		}
	}
}

func TestShardedRejectsCallbacks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("callbacks accepted")
		}
	}()
	NewSharded(2, Config{OnFlow: func(FlowRecord) {}})
}
