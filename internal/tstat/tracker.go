package tstat

import (
	"fmt"
	"sort"
	"time"

	"satwatch/internal/cryptopan"
	"satwatch/internal/obs"
	"satwatch/internal/packet"
	"satwatch/internal/trace"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mEvents = obs.NewCounter("tstat_events_observed_total",
		"Segment events delivered to trackers (counted at Flush).", "")
	mFlowRecords = obs.NewCounter("tstat_flow_records_total",
		"Flow records emitted by tracker flushes.", "")
	mDNSRecords = obs.NewCounter("tstat_dns_records_total",
		"DNS records emitted by tracker flushes.", "")
)

// Config tunes the tracker.
type Config struct {
	// TCPIdle / UDPIdle are the inactivity timeouts after which a flow is
	// considered finished and its record emitted.
	TCPIdle time.Duration
	UDPIdle time.Duration
	// FinLinger keeps a cleanly closed TCP flow around briefly for late
	// ACKs before emitting it.
	FinLinger time.Duration
	// Anonymizer, when set, anonymizes customer addresses on emission
	// (the paper's real-time Crypto-PAn step, §2.3).
	Anonymizer *cryptopan.Anonymizer
	// OnFlow/OnDNS, when set, stream records out instead of accumulating
	// them in memory.
	OnFlow func(FlowRecord)
	OnDNS  func(DNSRecord)
}

// DefaultConfig mirrors common Tstat timeouts.
func DefaultConfig() Config {
	return Config{TCPIdle: 5 * time.Minute, UDPIdle: time.Minute, FinLinger: 5 * time.Second}
}

// Tracker is the flow table. It is not safe for concurrent use; shard by
// FiveTuple.FastHash across trackers for parallel feeds (as the DPDK
// pipeline in the paper does).
type Tracker struct {
	cfg   Config
	flows map[packet.FiveTuple]*flowState
	now   time.Duration

	lastSweep time.Duration

	flowsOut []FlowRecord
	dnsOut   []DNSRecord

	// traced maps canonical tuples of sampled flows to their trace
	// handles; the handle is completed and finished when the flow record
	// is emitted (the probe is the last component to see the flow).
	traced map[packet.FiveTuple]*trace.Flow

	// Counters for operational visibility.
	Observed   int64
	DecodeErrs int64
}

// NewTracker builds a tracker.
func NewTracker(cfg Config) *Tracker {
	d := DefaultConfig()
	if cfg.TCPIdle <= 0 {
		cfg.TCPIdle = d.TCPIdle
	}
	if cfg.UDPIdle <= 0 {
		cfg.UDPIdle = d.UDPIdle
	}
	if cfg.FinLinger <= 0 {
		cfg.FinLinger = d.FinLinger
	}
	return &Tracker{cfg: cfg, flows: make(map[packet.FiveTuple]*flowState)}
}

// Observe feeds one segment event. tuple is oriented as sent (the event
// source is tuple.Src); the tracker derives the flow direction from the
// initiator it saw first.
func (t *Tracker) Observe(tuple packet.FiveTuple, ev SegmentEvent) {
	t.Observed++
	if ev.T > t.now {
		t.now = ev.T
	}
	key, _ := tuple.Canonical()
	f, ok := t.flows[key]
	if !ok {
		f = newFlowState(tuple.Src, tuple.Dst, tuple.Proto == packet.ProtoTCP, ev.T)
		t.flows[key] = f
	}
	if tuple.Src == f.client {
		ev.Dir = ClientToServer
	} else {
		ev.Dir = ServerToClient
	}
	f.observe(ev, t)

	// Amortized eviction sweep once per simulated second of trace time.
	if t.now-t.lastSweep >= time.Second {
		t.sweep()
	}
}

// FeedPacket decodes a raw IPv4 packet (pcap replay or live capture) and
// feeds it as a segment event — the packet frontend.
func (t *Tracker) FeedPacket(ts time.Duration, raw []byte) error {
	p, err := packet.Decode(raw)
	if err != nil {
		t.DecodeErrs++
		return fmt.Errorf("tstat: %w", err)
	}
	tuple, ok := packet.TupleOf(p)
	if !ok {
		t.DecodeErrs++
		return fmt.Errorf("tstat: packet without transport layer")
	}
	ev := SegmentEvent{
		T:       ts,
		Payload: len(p.AppPayload()),
		WireLen: len(raw),
		Packets: 1,
		AppData: p.AppPayload(),
	}
	if tcp := p.TCPLayer(); tcp != nil {
		ev.Flags = tcp.Flags
		ev.Seq = tcp.Seq
		ev.Ack = tcp.Ack
	}
	t.Observe(tuple, ev)
	return nil
}

// emitOrdered emits a batch of finished flows in a deterministic order
// (start time, then endpoints), so identical inputs produce identical
// logs regardless of map iteration order.
func (t *Tracker) emitOrdered(batch []*flowState) {
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.start != b.start {
			return a.start < b.start
		}
		if c := a.client.Addr.Compare(b.client.Addr); c != 0 {
			return c < 0
		}
		if a.client.Port != b.client.Port {
			return a.client.Port < b.client.Port
		}
		if c := a.server.Addr.Compare(b.server.Addr); c != 0 {
			return c < 0
		}
		return a.server.Port < b.server.Port
	})
	for _, f := range batch {
		t.emitFlow(f)
	}
}

// sweep emits flows that have been idle past their timeout or linger.
func (t *Tracker) sweep() {
	t.lastSweep = t.now
	var batch []*flowState
	for key, f := range t.flows {
		idle := t.now - f.last
		var done bool
		switch {
		case f.isTCP && f.closed() && idle >= t.cfg.FinLinger:
			done = true
		case f.isTCP && idle >= t.cfg.TCPIdle:
			done = true
		case !f.isTCP && idle >= t.cfg.UDPIdle:
			done = true
		}
		if done {
			batch = append(batch, f)
			delete(t.flows, key)
		}
	}
	t.emitOrdered(batch)
}

// Flush closes every active flow and returns all accumulated records.
// Streaming configurations (OnFlow/OnDNS) receive the remaining records
// through their callbacks and get empty slices here.
func (t *Tracker) Flush() ([]FlowRecord, []DNSRecord) {
	batch := make([]*flowState, 0, len(t.flows))
	for key, f := range t.flows {
		batch = append(batch, f)
		delete(t.flows, key)
	}
	t.emitOrdered(batch)
	flows, dns := t.flowsOut, t.dnsOut
	t.flowsOut, t.dnsOut = nil, nil
	mEvents.Add(t.Observed)
	mFlowRecords.Add(int64(len(flows)))
	mDNSRecords.Add(int64(len(dns)))
	return flows, dns
}

// Active returns the number of in-flight flows.
func (t *Tracker) Active() int { return len(t.flows) }

// AdvanceTime moves the tracker clock forward without an event and runs
// the idle sweep when due. Streaming consumers (the live pipeline) call
// it as simulated time passes so flows that went quiet are emitted even
// when no new traffic arrives on this shard. Like every other method it
// must be called from the tracker's owning goroutine.
func (t *Tracker) AdvanceTime(now time.Duration) {
	if now > t.now {
		t.now = now
	}
	if t.now-t.lastSweep >= time.Second {
		t.sweep()
	}
}

// TraceFlow registers a trace handle for the flow identified by tuple.
// When the tracker emits that flow's record it appends a
// tstat.handshake_rtt span (the probe's satellite-RTT measurement, when
// one was made) and finishes the handle. A nil fl is ignored.
func (t *Tracker) TraceFlow(tuple packet.FiveTuple, fl *trace.Flow) {
	if fl == nil {
		return
	}
	key, _ := tuple.Canonical()
	if t.traced == nil {
		t.traced = make(map[packet.FiveTuple]*trace.Flow)
	}
	t.traced[key] = fl
}

// finishTrace completes a registered trace handle at flow emission.
func (t *Tracker) finishTrace(f *flowState, rec *FlowRecord) {
	if len(t.traced) == 0 {
		return
	}
	proto := packet.ProtoUDP
	if f.isTCP {
		proto = packet.ProtoTCP
	}
	key, _ := packet.FiveTuple{Proto: proto, Src: f.client, Dst: f.server}.Canonical()
	fl, ok := t.traced[key]
	if !ok {
		return
	}
	delete(t.traced, key)
	if rec.SatRTT > 0 {
		fl.Span(trace.SpanHandshakeRTT, trace.SegProbe, rec.SatRTT, trace.Attrs{
			"proto": rec.Proto.String(), "events": rec.PktsUp + rec.PktsDown,
		})
	}
	fl.Finish()
}

func (t *Tracker) emitFlow(f *flowState) {
	rec := f.record()
	t.finishTrace(f, &rec)
	if t.cfg.Anonymizer != nil && rec.Client.Is4() {
		rec.Client = t.cfg.Anonymizer.MustAnonymize(rec.Client)
	}
	if t.cfg.OnFlow != nil {
		t.cfg.OnFlow(rec)
		return
	}
	t.flowsOut = append(t.flowsOut, rec)
}

func (t *Tracker) emitDNS(rec DNSRecord) {
	if t.cfg.Anonymizer != nil && rec.Client.Is4() {
		rec.Client = t.cfg.Anonymizer.MustAnonymize(rec.Client)
	}
	if t.cfg.OnDNS != nil {
		t.cfg.OnDNS(rec)
		return
	}
	t.dnsOut = append(t.dnsOut, rec)
}
