package tstat

import (
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// synthFlows builds a deterministic pseudo-random record set with plenty
// of ties on the leading sort keys, exercising the deep tie-breaks.
func synthFlows(n int) []FlowRecord {
	state := uint64(0x9e3779b97f4a7c15)
	next := func(mod uint64) uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % mod
	}
	out := make([]FlowRecord, n)
	for i := range out {
		out[i] = FlowRecord{
			Start:     time.Duration(next(50)) * time.Second, // dense → ties
			Client:    netip.AddrFrom4([4]byte{10, byte(next(4)), 0, byte(next(8))}),
			CPort:     uint16(1024 + next(16)),
			Server:    netip.AddrFrom4([4]byte{93, 184, byte(next(3)), 34}),
			SPort:     443,
			Proto:     Protocol(next(5)),
			Domain:    []string{"", "a.example", "b.example"}[next(3)],
			End:       time.Duration(next(100)) * time.Second,
			BytesDown: int64(next(1000)),
			SatRTT:    time.Duration(next(3)) * 275 * time.Millisecond,
		}
	}
	return out
}

// TestMergeFlowsMatchesGlobalSort: k-way merging per-run sorted slices
// must be indistinguishable from concatenating and sorting globally, for
// any partitioning.
func TestMergeFlowsMatchesGlobalSort(t *testing.T) {
	all := synthFlows(500)
	want := append([]FlowRecord(nil), all...)
	SortFlows(want)

	for _, k := range []int{1, 2, 3, 7} {
		runs := make([][]FlowRecord, k)
		for i, f := range all { // round-robin partition
			runs[i%k] = append(runs[i%k], f)
		}
		for i := range runs {
			SortFlows(runs[i])
		}
		got := MergeFlows(runs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge of %d runs differs from global sort", k)
		}
	}
}

func TestMergeFlowsEdgeCases(t *testing.T) {
	if got := MergeFlows(nil); len(got) != 0 {
		t.Fatalf("merge of no runs returned %d records", len(got))
	}
	if got := MergeFlows([][]FlowRecord{nil, {}, nil}); len(got) != 0 {
		t.Fatalf("merge of empty runs returned %d records", len(got))
	}
	one := synthFlows(10)
	SortFlows(one)
	if got := MergeFlows([][]FlowRecord{nil, one}); !reflect.DeepEqual(got, one) {
		t.Fatal("single non-empty run not passed through")
	}
}

func TestMergeDNSMatchesGlobalSort(t *testing.T) {
	mk := func(tq int, client byte, q string) DNSRecord {
		return DNSRecord{T: time.Duration(tq) * time.Second,
			Client: netip.AddrFrom4([4]byte{10, 0, 0, client}),
			Query:  q, Resolver: netip.AddrFrom4([4]byte{9, 9, 9, 9})}
	}
	all := []DNSRecord{
		mk(3, 1, "z.example"), mk(1, 2, "a.example"), mk(1, 1, "a.example"),
		mk(1, 1, "b.example"), mk(2, 9, "a.example"), mk(1, 1, "a.example"),
	}
	want := append([]DNSRecord(nil), all...)
	SortDNS(want)
	runs := [][]DNSRecord{append([]DNSRecord(nil), all[:3]...), append([]DNSRecord(nil), all[3:]...)}
	SortDNS(runs[0])
	SortDNS(runs[1])
	if got := MergeDNS(runs); !reflect.DeepEqual(got, want) {
		t.Fatal("DNS merge differs from global sort")
	}
}

// TestCompareFlowsIsTotalOrder spot-checks antisymmetry and that equal
// comparison implies deep equality (the property the simulator's
// partition-independence relies on).
func TestCompareFlowsIsTotalOrder(t *testing.T) {
	recs := synthFlows(200)
	for i := range recs {
		for j := range recs {
			c1, c2 := CompareFlows(&recs[i], &recs[j]), CompareFlows(&recs[j], &recs[i])
			if c1 != -c2 {
				t.Fatalf("antisymmetry violated at (%d,%d): %d vs %d", i, j, c1, c2)
			}
			if c1 == 0 && !reflect.DeepEqual(recs[i], recs[j]) {
				t.Fatalf("records %d and %d compare equal but differ", i, j)
			}
		}
	}
}
