package tstat

import (
	"time"

	"satwatch/internal/packet"
)

// tlsStage tracks the handshake progress used for the satellite-RTT
// estimate (§2.2: ServerHello → next ClientKeyExchange/ChangeCipherSpec,
// home RTT considered negligible).
type tlsStage uint8

const (
	tlsIdle tlsStage = iota
	tlsSawClientHello
	tlsSawServerHello
	tlsDone
)

// outstandingSeg is one unacknowledged client→server data segment awaiting
// its ACK for a ground-RTT sample.
type outstandingSeg struct {
	seqEnd uint32
	t      time.Duration
}

// flowState is the per-flow tracking state.
type flowState struct {
	client packet.Endpoint // initiator (customer side)
	server packet.Endpoint
	isTCP  bool

	start, last time.Duration
	bytesUp     int64
	bytesDown   int64
	pktsUp      int64
	pktsDown    int64
	first10     []time.Duration

	dpi dpiState

	// Ground RTT: client→server data awaiting server ACKs.
	outstanding []outstandingSeg
	maxSeqSent  uint32
	seqValid    bool
	ground      rttAccum

	// Satellite RTT via the TLS handshake.
	tls       tlsStage
	tSrvHello time.Duration
	satRTT    time.Duration

	// DNS transaction bookkeeping (UDP/53 flows).
	dnsPending map[uint16]dnsPending

	finSeen [2]bool
	rstSeen bool
}

type dnsPending struct {
	t    time.Duration
	name string
}

func newFlowState(client, server packet.Endpoint, isTCP bool, t time.Duration) *flowState {
	return &flowState{client: client, server: server, isTCP: isTCP, start: t, last: t}
}

// seqLE compares sequence numbers with wraparound.
func seqLE(a, b uint32) bool { return int32(b-a) >= 0 }

// observe folds one segment event into the flow.
func (f *flowState) observe(ev SegmentEvent, sink *Tracker) {
	if ev.Packets <= 0 {
		ev.Packets = 1
	}
	f.last = ev.T
	if len(f.first10) < 10 {
		f.first10 = append(f.first10, ev.T)
	}
	if ev.Dir == ClientToServer {
		f.bytesUp += int64(ev.Payload)
		f.pktsUp += int64(ev.Packets)
	} else {
		f.bytesDown += int64(ev.Payload)
		f.pktsDown += int64(ev.Packets)
	}

	if f.isTCP {
		f.observeTCP(ev)
	} else {
		f.observeUDP(ev, sink)
	}
}

func (f *flowState) observeTCP(ev SegmentEvent) {
	if ev.Flags.Has(packet.FlagRST) {
		f.rstSeen = true
	}
	if ev.Flags.Has(packet.FlagFIN) {
		f.finSeen[ev.Dir] = true
	}

	switch ev.Dir {
	case ClientToServer:
		if len(ev.AppData) > 0 {
			f.dpi.feedClientTCP(ev.AppData)
			f.feedTLSClient(ev)
		}
		if ev.Payload > 0 {
			end := ev.Seq + uint32(ev.Payload)
			if f.seqValid && !seqLE(f.maxSeqSent, ev.Seq) {
				// Retransmission (Karn's rule): outstanding samples are
				// ambiguous, drop them.
				f.outstanding = f.outstanding[:0]
			} else {
				f.maxSeqSent = end
				f.seqValid = true
				if len(f.outstanding) < 64 {
					f.outstanding = append(f.outstanding, outstandingSeg{seqEnd: end, t: ev.T})
				}
			}
		}
	case ServerToClient:
		if ev.Flags.Has(packet.FlagACK) {
			kept := f.outstanding[:0]
			for _, o := range f.outstanding {
				if seqLE(o.seqEnd, ev.Ack) {
					f.ground.add(ev.T - o.t)
				} else {
					kept = append(kept, o)
				}
			}
			f.outstanding = kept
		}
		if len(ev.AppData) > 0 {
			f.feedTLSServer(ev)
		}
	}
}

// feedTLSServer watches for the ServerHello.
func (f *flowState) feedTLSServer(ev SegmentEvent) {
	if f.tls == tlsDone || f.tls == tlsSawServerHello {
		return
	}
	recs, _, err := packet.DecodeTLSRecords(ev.AppData)
	if err != nil {
		return
	}
	for _, rec := range recs {
		if rec.Type != packet.TLSRecordHandshake {
			continue
		}
		msgs, err := packet.DecodeTLSHandshakes(rec.Payload)
		if err != nil {
			continue
		}
		for _, m := range msgs {
			if m.Type == packet.TLSHandshakeServerHello {
				f.tls = tlsSawServerHello
				f.tSrvHello = ev.T
				return
			}
		}
	}
}

// feedTLSClient advances the handshake machine on client records; the
// first client handshake bytes after the ServerHello (the
// ClientKeyExchange/ChangeCipherSpec flight) close the satellite-RTT
// sample.
func (f *flowState) feedTLSClient(ev SegmentEvent) {
	switch f.tls {
	case tlsIdle:
		if len(ev.AppData) > 0 && ev.AppData[0] == packet.TLSRecordHandshake {
			f.tls = tlsSawClientHello
		}
	case tlsSawServerHello:
		if len(ev.AppData) == 0 {
			return
		}
		t0 := ev.AppData[0]
		if t0 == packet.TLSRecordHandshake || t0 == packet.TLSRecordChangeCipherSpec {
			f.satRTT = ev.T - f.tSrvHello
			f.tls = tlsDone
		}
	}
}

func (f *flowState) observeUDP(ev SegmentEvent, sink *Tracker) {
	if f.server.Port == 53 {
		f.observeDNS(ev, sink)
		return
	}
	if ev.Dir == ClientToServer && len(ev.AppData) > 0 && !f.dpi.done {
		f.dpi.feedClientUDP(ev.AppData)
	}
}

// observeDNS parses queries and responses and emits transaction records.
func (f *flowState) observeDNS(ev SegmentEvent, sink *Tracker) {
	if len(ev.AppData) == 0 {
		return
	}
	msg, err := packet.DecodeDNS(ev.AppData)
	if err != nil {
		return
	}
	if f.dnsPending == nil {
		f.dnsPending = make(map[uint16]dnsPending)
	}
	if !msg.QR {
		name := ""
		if len(msg.Questions) > 0 {
			name = msg.Questions[0].Name
		}
		f.dnsPending[msg.ID] = dnsPending{t: ev.T, name: name}
		return
	}
	req, ok := f.dnsPending[msg.ID]
	if !ok {
		return // unsolicited response
	}
	delete(f.dnsPending, msg.ID)
	rec := DNSRecord{
		Client:       f.client.Addr,
		Resolver:     f.server.Addr,
		Query:        req.name,
		RCode:        msg.RCode,
		T:            req.t,
		ResponseTime: ev.T - req.t,
	}
	for _, a := range msg.Answers {
		if a.Type == packet.DNSTypeA {
			rec.Answer = a.Addr
			break
		}
	}
	sink.emitDNS(rec)
}

// closed reports whether TCP teardown completed.
func (f *flowState) closed() bool {
	return f.rstSeen || (f.finSeen[0] && f.finSeen[1])
}

// record materializes the final FlowRecord.
func (f *flowState) record() FlowRecord {
	rec := FlowRecord{
		Client:    f.client.Addr,
		Server:    f.server.Addr,
		CPort:     f.client.Port,
		SPort:     f.server.Port,
		Domain:    f.dpi.domain,
		Start:     f.start,
		End:       f.last,
		BytesUp:   f.bytesUp,
		BytesDown: f.bytesDown,
		PktsUp:    f.pktsUp,
		PktsDown:  f.pktsDown,
		First10:   f.first10,
		GroundRTT: f.ground.stats(),
		SatRTT:    f.satRTT,
	}
	if f.isTCP {
		rec.Proto = f.dpi.classifyTCP(f.server.Port)
	} else if f.server.Port == 53 {
		rec.Proto = ProtoDNS
	} else {
		rec.Proto = f.dpi.classifyUDP(f.server.Port)
	}
	return rec
}
