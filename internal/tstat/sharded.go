package tstat

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"satwatch/internal/obs"
	"satwatch/internal/packet"
	"satwatch/internal/prof"
)

// Exported metrics (see OBSERVABILITY.md).
var (
	mShards = obs.NewGauge("tstat_shards",
		"Worker count of the most recently built sharded tracker.", "")
	mMergeTime = obs.NewTimer("tstat_shard_merge_seconds",
		"Wall time of sharded-tracker flushes (drain + merge + canonical sort).")
)

// Sharded fans segment events out to N independent trackers keyed by the
// direction-symmetric FastHash of the 5-tuple — the same load-balancing
// scheme the paper's DPDK pipeline uses to keep up with line rate (§2.2):
// both directions of a flow always land on the same worker, so no state is
// shared between workers.
type Sharded struct {
	workers []*shardWorker
}

type shardWorker struct {
	ch   chan shardItem
	done chan struct{}
	tr   *Tracker
}

type shardItem struct {
	tuple packet.FiveTuple
	ev    SegmentEvent
}

// NewSharded builds a sharded tracker with n workers (n<=0 picks the CPU
// count). Each worker owns a Tracker built from cfg; per-worker callbacks
// (OnFlow/OnDNS) would run concurrently, so cfg must not set them —
// records are collected at Flush.
func NewSharded(n int, cfg Config) *Sharded {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	if cfg.OnFlow != nil || cfg.OnDNS != nil {
		panic("tstat: Sharded does not support streaming callbacks")
	}
	s := &Sharded{}
	for i := 0; i < n; i++ {
		w := &shardWorker{
			ch:   make(chan shardItem, 1024),
			done: make(chan struct{}),
			tr:   NewTracker(cfg),
		}
		go func(w *shardWorker) {
			defer close(w.done)
			for it := range w.ch {
				w.tr.Observe(it.tuple, it.ev)
			}
		}(w)
		s.workers = append(s.workers, w)
	}
	mShards.Set(float64(n))
	return s
}

// Observe routes one event to its flow's worker. Safe for concurrent use
// by multiple producers.
func (s *Sharded) Observe(tuple packet.FiveTuple, ev SegmentEvent) {
	idx := int(tuple.FastHash() % uint64(len(s.workers)))
	s.workers[idx].ch <- shardItem{tuple: tuple, ev: ev}
}

// Flush drains all workers and returns the merged records in the same
// deterministic order a single tracker would produce (sorted by start
// time, then endpoints). CPU samples taken during the flush carry the
// stage=tstat profile label (see internal/prof).
func (s *Sharded) Flush() ([]FlowRecord, []DNSRecord) {
	defer mMergeTime.Start()()
	var flows []FlowRecord
	var dns []DNSRecord
	prof.Do(context.Background(), prof.StageTstat, func() {
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, w := range s.workers {
			wg.Add(1)
			go func(w *shardWorker) {
				defer wg.Done()
				close(w.ch)
				<-w.done
				f, d := w.tr.Flush()
				mu.Lock()
				flows = append(flows, f...)
				dns = append(dns, d...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		SortFlows(flows)
		SortDNS(dns)
	})
	return flows, dns
}

// SortFlows orders flow records in the canonical total order (start time,
// then endpoints, then every remaining field — see CompareFlows), so logs
// sorted or merged from any partitioning compare byte-identically.
func SortFlows(flows []FlowRecord) {
	sort.Slice(flows, func(i, j int) bool {
		return CompareFlows(&flows[i], &flows[j]) < 0
	})
}

// SortDNS orders DNS records in the canonical total order (CompareDNS).
func SortDNS(dns []DNSRecord) {
	sort.Slice(dns, func(i, j int) bool {
		return CompareDNS(&dns[i], &dns[j]) < 0
	})
}

// Observed sums the per-worker event counters.
func (s *Sharded) Observed() int64 {
	var total int64
	for _, w := range s.workers {
		total += w.tr.Observed
	}
	return total
}
