package tstat

import "container/heap"

// This file defines the canonical total order over records and the k-way
// merge the simulator uses to combine per-worker logs. The comparators
// cover every serialized field, so any two records that compare equal are
// byte-identical in the TSV output — which is what makes the merged log
// independent of how records were partitioned across workers.

// CompareFlows is the canonical total order over flow records: start
// time, then endpoints (the order SortFlows always used), then every
// remaining serialized field as a tie-break.
func CompareFlows(a, b *FlowRecord) int {
	switch {
	case a.Start != b.Start:
		return cmpDur(a.Start, b.Start)
	}
	if c := a.Client.Compare(b.Client); c != 0 {
		return c
	}
	if a.CPort != b.CPort {
		return cmpInt(int64(a.CPort), int64(b.CPort))
	}
	if c := a.Server.Compare(b.Server); c != 0 {
		return c
	}
	if a.SPort != b.SPort {
		return cmpInt(int64(a.SPort), int64(b.SPort))
	}
	// Tie-breaks: distinct records sharing a 5-tuple and start time.
	if a.Proto != b.Proto {
		return cmpInt(int64(a.Proto), int64(b.Proto))
	}
	if a.Domain != b.Domain {
		return cmpStr(a.Domain, b.Domain)
	}
	if a.End != b.End {
		return cmpDur(a.End, b.End)
	}
	if a.BytesUp != b.BytesUp {
		return cmpInt(a.BytesUp, b.BytesUp)
	}
	if a.BytesDown != b.BytesDown {
		return cmpInt(a.BytesDown, b.BytesDown)
	}
	if a.PktsUp != b.PktsUp {
		return cmpInt(a.PktsUp, b.PktsUp)
	}
	if a.PktsDown != b.PktsDown {
		return cmpInt(a.PktsDown, b.PktsDown)
	}
	if a.GroundRTT.Samples != b.GroundRTT.Samples {
		return cmpInt(int64(a.GroundRTT.Samples), int64(b.GroundRTT.Samples))
	}
	if a.GroundRTT.Min != b.GroundRTT.Min {
		return cmpDur(a.GroundRTT.Min, b.GroundRTT.Min)
	}
	if a.GroundRTT.Avg != b.GroundRTT.Avg {
		return cmpDur(a.GroundRTT.Avg, b.GroundRTT.Avg)
	}
	if a.GroundRTT.Max != b.GroundRTT.Max {
		return cmpDur(a.GroundRTT.Max, b.GroundRTT.Max)
	}
	if a.GroundRTT.Std != b.GroundRTT.Std {
		return cmpDur(a.GroundRTT.Std, b.GroundRTT.Std)
	}
	if a.SatRTT != b.SatRTT {
		return cmpDur(a.SatRTT, b.SatRTT)
	}
	if len(a.First10) != len(b.First10) {
		return cmpInt(int64(len(a.First10)), int64(len(b.First10)))
	}
	for i := range a.First10 {
		if a.First10[i] != b.First10[i] {
			return cmpDur(a.First10[i], b.First10[i])
		}
	}
	return 0
}

// CompareDNS is the canonical total order over DNS records.
func CompareDNS(a, b *DNSRecord) int {
	if a.T != b.T {
		return cmpDur(a.T, b.T)
	}
	if c := a.Client.Compare(b.Client); c != 0 {
		return c
	}
	if a.Query != b.Query {
		return cmpStr(a.Query, b.Query)
	}
	if c := a.Resolver.Compare(b.Resolver); c != 0 {
		return c
	}
	if a.RCode != b.RCode {
		return cmpInt(int64(a.RCode), int64(b.RCode))
	}
	if c := a.Answer.Compare(b.Answer); c != 0 {
		return c
	}
	return cmpDur(a.ResponseTime, b.ResponseTime)
}

func cmpInt(a, b int64) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

func cmpDur[T ~int64](a, b T) int { return cmpInt(int64(a), int64(b)) }

func cmpStr(a, b string) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// mergeHeap is a min-heap over the heads of k sorted runs.
type mergeHeap[T any] struct {
	runs [][]T // remaining tail of each run
	idx  []int // heap of run indices
	cmp  func(a, b *T) int
}

func (h *mergeHeap[T]) Len() int { return len(h.idx) }
func (h *mergeHeap[T]) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	if c := h.cmp(&h.runs[a][0], &h.runs[b][0]); c != 0 {
		return c < 0
	}
	// Fully equal heads: order by run index for reproducibility (the
	// records are interchangeable, but keep the heap deterministic).
	return a < b
}
func (h *mergeHeap[T]) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *mergeHeap[T]) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *mergeHeap[T]) Pop() any {
	x := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return x
}

// mergeRuns k-way merges sorted runs under cmp, which must be the total
// order each run was sorted in.
func mergeRuns[T any](runs [][]T, cmp func(a, b *T) int) []T {
	total := 0
	nonEmpty := runs[:0:0]
	for _, r := range runs {
		if len(r) > 0 {
			nonEmpty = append(nonEmpty, r)
			total += len(r)
		}
	}
	if len(nonEmpty) == 1 {
		return nonEmpty[0]
	}
	out := make([]T, 0, total)
	h := &mergeHeap[T]{runs: nonEmpty, cmp: cmp}
	for i := range nonEmpty {
		h.idx = append(h.idx, i)
	}
	heap.Init(h)
	for h.Len() > 0 {
		i := h.idx[0]
		out = append(out, h.runs[i][0])
		h.runs[i] = h.runs[i][1:]
		if len(h.runs[i]) == 0 {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}

// MergeFlows k-way merges per-worker flow logs, each already sorted in
// CompareFlows order (see SortFlows), into one globally sorted log. The
// result is identical to concatenating and sorting, at O(N log k) with no
// re-sort of the whole record set.
func MergeFlows(runs [][]FlowRecord) []FlowRecord {
	return mergeRuns(runs, CompareFlows)
}

// MergeDNS k-way merges per-worker DNS logs sorted in CompareDNS order.
func MergeDNS(runs [][]DNSRecord) []DNSRecord {
	return mergeRuns(runs, CompareDNS)
}
