package tstat

import (
	"io"
	"net/netip"
	"satwatch/internal/trace"
	"testing"
	"time"

	"satwatch/internal/cryptopan"
	"satwatch/internal/packet"
)

var (
	cust = packet.Endpoint{Addr: netip.MustParseAddr("10.3.7.9"), Port: 41000}
	srv  = packet.Endpoint{Addr: netip.MustParseAddr("151.101.9.9"), Port: 443}
)

func tcpTuple(src, dst packet.Endpoint) packet.FiveTuple {
	return packet.FiveTuple{Proto: packet.ProtoTCP, Src: src, Dst: dst}
}

func udpTuple(src, dst packet.Endpoint) packet.FiveTuple {
	return packet.FiveTuple{Proto: packet.ProtoUDP, Src: src, Dst: dst}
}

// tlsClientHelloBytes builds a handshake record carrying a ClientHello.
func tlsClientHelloBytes(t *testing.T, sni string) []byte {
	t.Helper()
	hs, err := (&packet.ClientHello{Version: packet.TLSVersion12, ServerName: sni}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: hs}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func tlsServerHelloBytes(t *testing.T) []byte {
	t.Helper()
	hs, err := (&packet.ServerHello{Version: packet.TLSVersion12, CipherSuite: 0x1301}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	hs = append(hs, packet.OpaqueHandshake(packet.TLSHandshakeCertificate, 1800)...)
	rec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: hs}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func tlsClientKeyExchangeBytes(t *testing.T) []byte {
	t.Helper()
	hs := packet.OpaqueHandshake(packet.TLSHandshakeClientKeyExchange, 64)
	rec, err := (&packet.TLSRecord{Type: packet.TLSRecordHandshake, Version: packet.TLSVersion12, Payload: hs}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	ccs, err := (&packet.TLSRecord{Type: packet.TLSRecordChangeCipherSpec, Version: packet.TLSVersion12, Payload: []byte{1}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return append(rec, ccs...)
}

// playHTTPSFlow drives a full HTTPS exchange through the tracker and
// returns its single record. satGap is the ServerHello→CKE spacing;
// ackGap the data→ACK spacing.
func playHTTPSFlow(t *testing.T, tr *Tracker, satGap, ackGap time.Duration) FlowRecord {
	t.Helper()
	c2s := tcpTuple(cust, srv)
	s2c := tcpTuple(srv, cust)
	at := 10 * time.Second
	seq := uint32(1)

	// 3WHS.
	tr.Observe(c2s, SegmentEvent{T: at, Flags: packet.FlagSYN, Seq: 0, Packets: 1})
	tr.Observe(s2c, SegmentEvent{T: at + ackGap, Flags: packet.FlagSYN | packet.FlagACK, Ack: 1, Packets: 1})
	tr.Observe(c2s, SegmentEvent{T: at + ackGap + time.Millisecond, Flags: packet.FlagACK, Ack: 1, Packets: 1})

	// ClientHello.
	ch := tlsClientHelloBytes(t, "e1.whatsapp.net")
	tch := at + ackGap + 2*time.Millisecond
	tr.Observe(c2s, SegmentEvent{T: tch, Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Payload: len(ch), AppData: ch, Packets: 1})
	seq += uint32(len(ch))
	// Server ACKs the hello after the ground RTT.
	tr.Observe(s2c, SegmentEvent{T: tch + ackGap, Flags: packet.FlagACK, Ack: seq, Packets: 1})
	// ServerHello+Certificate.
	sh := tlsServerHelloBytes(t)
	tsh := tch + ackGap + time.Millisecond
	tr.Observe(s2c, SegmentEvent{T: tsh, Flags: packet.FlagACK | packet.FlagPSH, Seq: 1, Payload: len(sh), AppData: sh, Packets: 2})
	// ClientKeyExchange arrives a satellite RTT later.
	cke := tlsClientKeyExchangeBytes(t)
	tr.Observe(c2s, SegmentEvent{T: tsh + satGap, Flags: packet.FlagACK | packet.FlagPSH, Seq: seq, Payload: len(cke), AppData: cke, Packets: 1})
	seq += uint32(len(cke))
	tr.Observe(s2c, SegmentEvent{T: tsh + satGap + ackGap, Flags: packet.FlagACK, Ack: seq, Packets: 1})

	// Application data downstream.
	tr.Observe(s2c, SegmentEvent{T: tsh + satGap + ackGap + 5*time.Millisecond, Flags: packet.FlagACK, Seq: 2000, Payload: 50000, Packets: 35})
	// Teardown.
	tend := tsh + satGap + ackGap + 100*time.Millisecond
	tr.Observe(c2s, SegmentEvent{T: tend, Flags: packet.FlagFIN | packet.FlagACK, Seq: seq, Packets: 1})
	tr.Observe(s2c, SegmentEvent{T: tend + ackGap, Flags: packet.FlagFIN | packet.FlagACK, Ack: seq + 1, Packets: 1})

	flows, _ := tr.Flush()
	if len(flows) != 1 {
		t.Fatalf("%d flows, want 1", len(flows))
	}
	return flows[0]
}

func TestHTTPSFlowRecord(t *testing.T) {
	tr := NewTracker(Config{})
	rec := playHTTPSFlow(t, tr, 600*time.Millisecond, 20*time.Millisecond)

	if rec.Proto != ProtoHTTPS {
		t.Fatalf("proto %v", rec.Proto)
	}
	if rec.Domain != "e1.whatsapp.net" {
		t.Fatalf("domain %q", rec.Domain)
	}
	if rec.Client != cust.Addr || rec.Server != srv.Addr {
		t.Fatal("endpoints wrong")
	}
	// Satellite RTT from the TLS handshake gap.
	if rec.SatRTT < 590*time.Millisecond || rec.SatRTT > 610*time.Millisecond {
		t.Fatalf("satellite RTT %v, want ≈600ms", rec.SatRTT)
	}
	// Ground RTT from data→ACK samples.
	if rec.GroundRTT.Samples < 2 {
		t.Fatalf("%d ground RTT samples", rec.GroundRTT.Samples)
	}
	if rec.GroundRTT.Avg < 15*time.Millisecond || rec.GroundRTT.Avg > 25*time.Millisecond {
		t.Fatalf("ground RTT avg %v, want ≈20ms", rec.GroundRTT.Avg)
	}
	if rec.BytesDown < 50000 {
		t.Fatalf("bytes down %d", rec.BytesDown)
	}
	if rec.PktsDown < 35 {
		t.Fatalf("pkts down %d — burst aggregation lost packets", rec.PktsDown)
	}
	if len(rec.First10) != 10 {
		t.Fatalf("first10 has %d entries", len(rec.First10))
	}
	for i := 1; i < len(rec.First10); i++ {
		if rec.First10[i] < rec.First10[i-1] {
			t.Fatal("first10 not monotone")
		}
	}
}

func TestSatRTTOnlyForCompletedTLS(t *testing.T) {
	tr := NewTracker(Config{})
	c2s := tcpTuple(cust, srv)
	tr.Observe(c2s, SegmentEvent{T: time.Second, Flags: packet.FlagSYN})
	ch := tlsClientHelloBytes(t, "x.test")
	tr.Observe(c2s, SegmentEvent{T: time.Second + time.Millisecond, Seq: 1, Payload: len(ch), AppData: ch, Flags: packet.FlagACK})
	flows, _ := tr.Flush()
	if flows[0].SatRTT != 0 {
		t.Fatalf("satellite RTT %v for an incomplete handshake", flows[0].SatRTT)
	}
}

func TestHTTPFlow(t *testing.T) {
	tr := NewTracker(Config{})
	web := packet.Endpoint{Addr: netip.MustParseAddr("185.60.9.1"), Port: 80}
	c2s := tcpTuple(cust, web)
	req := (&packet.HTTPRequest{Method: "GET", Target: "/video.ts",
		Headers: []packet.HTTPHeader{{Name: "Host", Value: "video-cdn.sky.com"}}}).Encode()
	tr.Observe(c2s, SegmentEvent{T: 0, Flags: packet.FlagSYN})
	tr.Observe(c2s, SegmentEvent{T: time.Millisecond, Seq: 1, Payload: len(req), AppData: req, Flags: packet.FlagACK})
	flows, _ := tr.Flush()
	if flows[0].Proto != ProtoHTTP {
		t.Fatalf("proto %v", flows[0].Proto)
	}
	if flows[0].Domain != "video-cdn.sky.com" {
		t.Fatalf("domain %q", flows[0].Domain)
	}
}

func TestQUICFlow(t *testing.T) {
	tr := NewTracker(Config{})
	q443 := packet.Endpoint{Addr: netip.MustParseAddr("34.76.1.1"), Port: 443}
	hs, _ := (&packet.ClientHello{ServerName: "www.youtube.com"}).Encode()
	ini, err := (&packet.QUICInitial{Version: packet.QUICVersion1, DCID: []byte{1, 2, 3, 4}, CryptoPayload: hs}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(udpTuple(cust, q443), SegmentEvent{T: 0, Payload: len(ini), AppData: ini})
	tr.Observe(udpTuple(q443, cust), SegmentEvent{T: 50 * time.Millisecond, Payload: 1200})
	flows, _ := tr.Flush()
	if flows[0].Proto != ProtoQUIC {
		t.Fatalf("proto %v", flows[0].Proto)
	}
	if flows[0].Domain != "www.youtube.com" {
		t.Fatalf("QUIC SNI %q", flows[0].Domain)
	}
}

func TestRTPFlow(t *testing.T) {
	tr := NewTracker(Config{})
	media := packet.Endpoint{Addr: netip.MustParseAddr("52.20.3.3"), Port: 19302}
	rtp, _ := (&packet.RTP{PayloadType: 111, Sequence: 1, SSRC: 7}).Encode()
	payload := append(rtp, make([]byte, 160)...)
	for i := 0; i < 5; i++ {
		tr.Observe(udpTuple(cust, media), SegmentEvent{T: time.Duration(i) * 20 * time.Millisecond, Payload: len(payload), AppData: payload})
	}
	flows, _ := tr.Flush()
	if flows[0].Proto != ProtoRTP {
		t.Fatalf("proto %v", flows[0].Proto)
	}
}

func TestOtherProtocols(t *testing.T) {
	tr := NewTracker(Config{})
	vpn := packet.Endpoint{Addr: netip.MustParseAddr("3.3.3.3"), Port: 1194}
	tr.Observe(tcpTuple(cust, vpn), SegmentEvent{T: 0, Flags: packet.FlagSYN})
	tr.Observe(tcpTuple(cust, vpn), SegmentEvent{T: time.Millisecond, Seq: 1, Payload: 500, AppData: []byte{0x38, 0x01, 0x02}, Flags: packet.FlagACK})
	ntp := packet.Endpoint{Addr: netip.MustParseAddr("4.4.4.4"), Port: 123}
	tr.Observe(udpTuple(cust, ntp), SegmentEvent{T: 0, Payload: 48, AppData: make([]byte, 48)})
	flows, _ := tr.Flush()
	byPort := map[uint16]Protocol{}
	for _, f := range flows {
		byPort[f.SPort] = f.Proto
	}
	if byPort[1194] != ProtoTCPOther {
		t.Fatalf("vpn proto %v", byPort[1194])
	}
	if byPort[123] != ProtoUDPOther {
		t.Fatalf("ntp proto %v", byPort[123])
	}
}

func TestDNSTransactions(t *testing.T) {
	tr := NewTracker(Config{})
	resolver := packet.Endpoint{Addr: netip.MustParseAddr("8.8.8.8"), Port: 53}
	q := &packet.DNS{ID: 42, RD: true, Questions: []packet.DNSQuestion{{Name: "www.google.com", Type: packet.DNSTypeA, Class: packet.DNSClassIN}}}
	qb, _ := q.Encode()
	resp := &packet.DNS{ID: 42, QR: true, RA: true,
		Questions: q.Questions,
		Answers:   []packet.DNSRR{{Name: "www.google.com", Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: 60, Addr: netip.MustParseAddr("142.250.1.1")}}}
	rb, _ := resp.Encode()

	tr.Observe(udpTuple(cust, resolver), SegmentEvent{T: time.Second, Payload: len(qb), AppData: qb})
	tr.Observe(udpTuple(resolver, cust), SegmentEvent{T: time.Second + 22*time.Millisecond, Payload: len(rb), AppData: rb})

	flows, dns := tr.Flush()
	if len(dns) != 1 {
		t.Fatalf("%d DNS records", len(dns))
	}
	d := dns[0]
	if d.Query != "www.google.com" || d.Resolver != resolver.Addr {
		t.Fatalf("dns record %+v", d)
	}
	if d.ResponseTime != 22*time.Millisecond {
		t.Fatalf("response time %v", d.ResponseTime)
	}
	if d.Answer != netip.MustParseAddr("142.250.1.1") {
		t.Fatalf("answer %v", d.Answer)
	}
	if len(flows) != 1 || flows[0].Proto != ProtoDNS {
		t.Fatal("DNS flow record missing")
	}
}

func TestIdleEviction(t *testing.T) {
	tr := NewTracker(Config{UDPIdle: time.Minute, TCPIdle: 5 * time.Minute})
	web := packet.Endpoint{Addr: netip.MustParseAddr("5.5.5.5"), Port: 8000}
	tr.Observe(udpTuple(cust, web), SegmentEvent{T: 0, Payload: 100})
	if tr.Active() != 1 {
		t.Fatal("flow not tracked")
	}
	// Another flow two minutes later triggers the sweep.
	other := packet.Endpoint{Addr: netip.MustParseAddr("6.6.6.6"), Port: 8000}
	tr.Observe(udpTuple(cust, other), SegmentEvent{T: 2 * time.Minute, Payload: 100})
	if tr.Active() != 1 {
		t.Fatalf("idle flow not evicted (%d active)", tr.Active())
	}
	flows, _ := tr.Flush()
	if len(flows) != 2 {
		t.Fatalf("%d flows", len(flows))
	}
}

func TestAnonymizationAppliedToClientOnly(t *testing.T) {
	key := make([]byte, cryptopan.KeySize)
	for i := range key {
		key[i] = byte(i)
	}
	anon, err := cryptopan.New(key)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(Config{Anonymizer: anon})
	rec := playHTTPSFlow(t, tr, 600*time.Millisecond, 20*time.Millisecond)
	if rec.Client == cust.Addr {
		t.Fatal("client address not anonymized")
	}
	if rec.Server != srv.Addr {
		t.Fatal("server address must stay intact (the paper aggregates per service)")
	}
	if rec.Client != anon.MustAnonymize(cust.Addr) {
		t.Fatal("anonymization not Crypto-PAn keyed")
	}
}

func TestRetransmissionKarnsRule(t *testing.T) {
	tr := NewTracker(Config{})
	c2s := tcpTuple(cust, srv)
	s2c := tcpTuple(srv, cust)
	tr.Observe(c2s, SegmentEvent{T: 0, Flags: packet.FlagSYN})
	// Data, then the same data again (retransmit), then a late ACK.
	tr.Observe(c2s, SegmentEvent{T: 10 * time.Millisecond, Seq: 1, Payload: 100, Flags: packet.FlagACK})
	tr.Observe(c2s, SegmentEvent{T: 500 * time.Millisecond, Seq: 1, Payload: 100, Flags: packet.FlagACK})
	tr.Observe(s2c, SegmentEvent{T: 520 * time.Millisecond, Flags: packet.FlagACK, Ack: 101})
	flows, _ := tr.Flush()
	if flows[0].GroundRTT.Samples != 0 {
		t.Fatalf("ambiguous RTT sampled (%d samples) — Karn's rule violated", flows[0].GroundRTT.Samples)
	}
}

func TestStreamingCallbacks(t *testing.T) {
	var got []FlowRecord
	tr := NewTracker(Config{OnFlow: func(r FlowRecord) { got = append(got, r) }})
	playHTTPSFlowNoFlushCheck(t, tr)
	flows, _ := tr.Flush()
	if len(flows) != 0 {
		t.Fatal("accumulating despite callback")
	}
	if len(got) != 1 {
		t.Fatalf("callback saw %d flows", len(got))
	}
}

func playHTTPSFlowNoFlushCheck(t *testing.T, tr *Tracker) {
	c2s := tcpTuple(cust, srv)
	tr.Observe(c2s, SegmentEvent{T: 0, Flags: packet.FlagSYN})
	tr.Observe(c2s, SegmentEvent{T: time.Millisecond, Seq: 1, Payload: 10, Flags: packet.FlagACK})
}

func TestFeedPacketFrontend(t *testing.T) {
	tr := NewTracker(Config{})
	ch := tlsClientHelloBytes(t, "api.twitter.com")
	raw, err := packet.Serialize(ch,
		&packet.IPv4{TTL: 64, Protocol: packet.ProtoTCP, Src: cust.Addr, Dst: srv.Addr},
		&packet.TCP{SrcPort: cust.Port, DstPort: srv.Port, Seq: 1, Flags: packet.FlagACK | packet.FlagPSH},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.FeedPacket(time.Second, raw); err != nil {
		t.Fatal(err)
	}
	flows, _ := tr.Flush()
	if len(flows) != 1 || flows[0].Domain != "api.twitter.com" {
		t.Fatalf("packet frontend: %+v", flows)
	}
	if err := tr.FeedPacket(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("garbage packet accepted")
	}
	if tr.DecodeErrs != 1 {
		t.Fatalf("decode errors %d", tr.DecodeErrs)
	}
}

func TestTraceFlowFinishesAtEmission(t *testing.T) {
	tr := NewTracker(Config{})
	rec := trace.New(io.Discard, 1)
	fl := rec.Start(4, 0, 7)
	tr.TraceFlow(tcpTuple(cust, srv), fl)
	if rec.Len() != 0 {
		t.Fatal("trace finished before the flow was emitted")
	}
	flowRec := playHTTPSFlow(t, tr, 600*time.Millisecond, 20*time.Millisecond)
	if rec.Len() != 1 {
		t.Fatalf("trace not finished at flow emission: %d done", rec.Len())
	}
	if len(fl.Spans) != 1 || fl.Spans[0].Name != trace.SpanHandshakeRTT {
		t.Fatalf("expected one %s span, got %+v", trace.SpanHandshakeRTT, fl.Spans)
	}
	s := fl.Spans[0]
	if s.Seg != trace.SegProbe || s.DurMS != float64(flowRec.SatRTT)/float64(time.Millisecond) {
		t.Fatalf("span %+v does not match measured RTT %v", s, flowRec.SatRTT)
	}
	if s.Attrs["proto"] != flowRec.Proto.String() {
		t.Fatalf("span proto %v, want %v", s.Attrs["proto"], flowRec.Proto)
	}

	// Unmeasured flows (no handshake RTT) still finish, without the span.
	tr2 := NewTracker(Config{})
	fl2 := rec.Start(4, 0, 8)
	tr2.TraceFlow(tcpTuple(cust, srv), fl2)
	ch := tlsClientHelloBytes(t, "x.test")
	tr2.Observe(tcpTuple(cust, srv), SegmentEvent{T: time.Second, Flags: packet.FlagSYN})
	tr2.Observe(tcpTuple(cust, srv), SegmentEvent{T: time.Second + time.Millisecond, Seq: 1, Payload: len(ch), AppData: ch, Flags: packet.FlagACK})
	tr2.Flush()
	if rec.Len() != 2 {
		t.Fatal("unmeasured traced flow did not finish at emission")
	}
	if len(fl2.Spans) != 0 {
		t.Fatalf("unmeasured flow recorded spans: %+v", fl2.Spans)
	}

	// A nil handle is ignored.
	tr3 := NewTracker(Config{})
	tr3.TraceFlow(tcpTuple(cust, srv), nil)
	playHTTPSFlow(t, tr3, 600*time.Millisecond, 20*time.Millisecond)
}
