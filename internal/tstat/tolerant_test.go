package tstat

import (
	"bytes"
	"strings"
	"testing"
)

// corruptFlowTSV renders two good flow rows with garbage injected between
// them: a short row, a row with a broken integer field, and a truncated
// row (the tail of a log cut off by a kill).
func corruptFlowTSV(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFlows(&buf, []FlowRecord{sampleFlow(), sampleFlow()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	if len(lines) < 3 {
		t.Fatalf("unexpected TSV shape: %q", buf.String())
	}
	brokenInt := strings.Replace(lines[1], "\t1234\t", "\tNaN\t", 1)
	truncated := strings.TrimSuffix(lines[2], "\n")
	truncated = truncated[:len(truncated)/2] + "\n"
	return lines[0] + lines[1] + "junk\tfields\n" + brokenInt + lines[2] + truncated
}

func TestReadFlowsTolerantSkipsAndCounts(t *testing.T) {
	in := corruptFlowTSV(t)
	flows, st, err := ReadFlowsTolerant(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("salvaged %d flows, want 2", len(flows))
	}
	if st.Lines != 2 || st.Skipped != 3 {
		t.Fatalf("stats = %+v, want 2 lines / 3 skipped", st)
	}
	// Strict mode fails on the first corrupt line and names it.
	if _, err := ReadFlows(strings.NewReader(in)); err == nil {
		t.Fatal("strict read accepted corrupt input")
	} else if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict error %q does not name line 3", err)
	}
}

func TestReadFlowsTolerantStillRejectsWrongHeader(t *testing.T) {
	// A wrong header means a wrong file, not a damaged one: tolerant mode
	// must not silently skip an entire foreign TSV.
	if _, _, err := ReadFlowsTolerant(strings.NewReader("alpha\tbeta\n1\t2\n")); err == nil {
		t.Fatal("tolerant read accepted a foreign header")
	}
}

func TestReadDNSTolerantSkipsAndCounts(t *testing.T) {
	var buf bytes.Buffer
	recs := []DNSRecord{
		{Client: sampleFlow().Client, Resolver: sampleFlow().Server, Query: "a.example", T: 1e9},
		{Client: sampleFlow().Client, Resolver: sampleFlow().Server, Query: "b.example", T: 2e9},
	}
	if err := WriteDNS(&buf, recs); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	in := lines[0] + lines[1] + "garbage line\n" + lines[2]
	dns, st, err := ReadDNSTolerant(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(dns) != 2 || st.Skipped != 1 {
		t.Fatalf("salvaged %d DNS records with %d skipped, want 2 / 1", len(dns), st.Skipped)
	}
	if _, err := ReadDNS(strings.NewReader(in)); err == nil {
		t.Fatal("strict DNS read accepted corrupt input")
	}
}
