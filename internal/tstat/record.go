package tstat

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/netip"
	"strconv"
	"strings"
	"time"
)

// Protocol is the Table 1 protocol class of a flow.
type Protocol uint8

// Protocol classes, matching the paper's Table 1 rows.
const (
	ProtoUnknown Protocol = iota
	ProtoHTTPS
	ProtoHTTP
	ProtoTCPOther
	ProtoQUIC
	ProtoRTP
	ProtoDNS
	ProtoUDPOther
)

var protocolNames = map[Protocol]string{
	ProtoUnknown:  "Unknown",
	ProtoHTTPS:    "TCP/HTTPS",
	ProtoHTTP:     "TCP/HTTP",
	ProtoTCPOther: "Other TCP",
	ProtoQUIC:     "UDP/QUIC",
	ProtoRTP:      "UDP/RTP",
	ProtoDNS:      "UDP/DNS",
	ProtoUDPOther: "Other UDP",
}

func (p Protocol) String() string {
	if s, ok := protocolNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// parseProtocol is the inverse of Protocol.String.
func parseProtocol(s string) Protocol {
	for p, name := range protocolNames {
		if name == s {
			return p
		}
	}
	return ProtoUnknown
}

// IsTCP reports whether the class rides on TCP.
func (p Protocol) IsTCP() bool {
	return p == ProtoHTTPS || p == ProtoHTTP || p == ProtoTCPOther
}

// RTTStats summarizes the RTT samples of one flow (min/avg/max/std), the
// §2.2 statistics.
type RTTStats struct {
	Samples int
	Min     time.Duration
	Avg     time.Duration
	Max     time.Duration
	Std     time.Duration
}

// add folds one sample into the summary using streaming moments.
type rttAccum struct {
	n          int
	sum, sumSq float64
	min, max   time.Duration
}

func (a *rttAccum) add(d time.Duration) {
	if a.n == 0 || d < a.min {
		a.min = d
	}
	if d > a.max {
		a.max = d
	}
	a.n++
	f := float64(d)
	a.sum += f
	a.sumSq += f * f
}

func (a *rttAccum) stats() RTTStats {
	if a.n == 0 {
		return RTTStats{}
	}
	mean := a.sum / float64(a.n)
	varr := a.sumSq/float64(a.n) - mean*mean
	if varr < 0 {
		varr = 0
	}
	return RTTStats{
		Samples: a.n,
		Min:     a.min,
		Avg:     time.Duration(mean),
		Max:     a.max,
		Std:     time.Duration(math.Sqrt(varr)),
	}
}

// FlowRecord is the per-flow log line, the equivalent of a Tstat
// log_tcp_complete row restricted to the fields the paper uses.
type FlowRecord struct {
	// Client is the (anonymized) customer endpoint; Server the internet
	// endpoint.
	Client netip.Addr
	Server netip.Addr
	CPort  uint16
	SPort  uint16

	Proto  Protocol
	Domain string // from DPI: SNI, Host, or QUIC SNI; "" when opaque

	Start time.Duration // first segment, offset from trace epoch
	End   time.Duration // last segment

	BytesUp   int64 // client → server payload bytes
	BytesDown int64 // server → client payload bytes
	PktsUp    int64
	PktsDown  int64

	// First10 are the capture times of the first up-to-10 segments.
	First10 []time.Duration

	// GroundRTT summarizes data→ACK samples toward the server (§2.2
	// measurement iii).
	GroundRTT RTTStats

	// SatRTT is the satellite-segment RTT estimated from the TLS
	// handshake (ServerHello → ClientKeyExchange/CCS), zero when the
	// flow completed no TLS negotiation (§2.2 measurement ii).
	SatRTT time.Duration
}

// Duration returns the flow's first-to-last segment time.
func (f *FlowRecord) Duration() time.Duration { return f.End - f.Start }

// DNSRecord is one logged DNS transaction (§2.2: "logs each requested
// domain and obtained responses, including the DNS server IP address").
type DNSRecord struct {
	Client       netip.Addr // anonymized customer
	Resolver     netip.Addr
	Query        string
	RCode        uint8
	Answer       netip.Addr // first A answer, if any
	T            time.Duration
	ResponseTime time.Duration // request→response at the vantage point
}

// --- TSV serialization -------------------------------------------------

const flowHeader = "client\tcport\tserver\tsport\tproto\tdomain\tstart_us\tend_us\tbytes_up\tbytes_down\tpkts_up\tpkts_down\trtt_n\trtt_min_us\trtt_avg_us\trtt_max_us\trtt_std_us\tsat_rtt_us\tfirst10_us"

// WriteFlows writes records as a TSV log with a header line.
func WriteFlows(w io.Writer, recs []FlowRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, flowHeader); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		f10 := make([]string, len(r.First10))
		for j, t := range r.First10 {
			f10[j] = strconv.FormatInt(t.Microseconds(), 10)
		}
		_, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			r.Client, r.CPort, r.Server, r.SPort, r.Proto, r.Domain,
			r.Start.Microseconds(), r.End.Microseconds(),
			r.BytesUp, r.BytesDown, r.PktsUp, r.PktsDown,
			r.GroundRTT.Samples, r.GroundRTT.Min.Microseconds(), r.GroundRTT.Avg.Microseconds(),
			r.GroundRTT.Max.Microseconds(), r.GroundRTT.Std.Microseconds(),
			r.SatRTT.Microseconds(), strings.Join(f10, ","))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadStats reports what a tolerant read consumed: the data lines it
// parsed and the corrupt lines it dropped instead of aborting on.
type ReadStats struct {
	Lines   int
	Skipped int
}

// parseFlowLine parses one data line of a flow TSV log.
func parseFlowLine(text string) (FlowRecord, error) {
	var rec FlowRecord
	fields := strings.Split(text, "\t")
	if len(fields) != 19 {
		return rec, fmt.Errorf("%d fields, want 19", len(fields))
	}
	var err error
	if rec.Client, err = netip.ParseAddr(fields[0]); err != nil {
		return rec, fmt.Errorf("client: %w", err)
	}
	if rec.Server, err = netip.ParseAddr(fields[2]); err != nil {
		return rec, fmt.Errorf("server: %w", err)
	}
	ints := make([]int64, 0, 14)
	for _, idx := range []int{1, 3, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17} {
		v, err := strconv.ParseInt(fields[idx], 10, 64)
		if err != nil {
			return rec, fmt.Errorf("field %d: %w", idx, err)
		}
		ints = append(ints, v)
	}
	rec.CPort = uint16(ints[0])
	rec.SPort = uint16(ints[1])
	rec.Proto = parseProtocol(fields[4])
	rec.Domain = fields[5]
	rec.Start = time.Duration(ints[2]) * time.Microsecond
	rec.End = time.Duration(ints[3]) * time.Microsecond
	rec.BytesUp, rec.BytesDown = ints[4], ints[5]
	rec.PktsUp, rec.PktsDown = ints[6], ints[7]
	rec.GroundRTT = RTTStats{
		Samples: int(ints[8]),
		Min:     time.Duration(ints[9]) * time.Microsecond,
		Avg:     time.Duration(ints[10]) * time.Microsecond,
		Max:     time.Duration(ints[11]) * time.Microsecond,
		Std:     time.Duration(ints[12]) * time.Microsecond,
	}
	rec.SatRTT = time.Duration(ints[13]) * time.Microsecond
	if fields[18] != "" {
		for _, part := range strings.Split(fields[18], ",") {
			us, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return rec, fmt.Errorf("first10: %w", err)
			}
			rec.First10 = append(rec.First10, time.Duration(us)*time.Microsecond)
		}
	}
	return rec, nil
}

// readFlows is the shared scanner: strict mode fails on the first corrupt
// line; tolerant mode drops it and counts it in ReadStats.Skipped. The
// header is checked in both modes — a wrong header means a wrong file,
// not a damaged one.
func readFlows(r io.Reader, strict bool) ([]FlowRecord, ReadStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []FlowRecord
	var st ReadStats
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if first {
			first = false
			if text != flowHeader {
				return nil, st, fmt.Errorf("tstat: line 1: unexpected header")
			}
			continue
		}
		if text == "" {
			continue
		}
		rec, err := parseFlowLine(text)
		if err != nil {
			if strict {
				return nil, st, fmt.Errorf("tstat: line %d: %w", line, err)
			}
			st.Skipped++
			continue
		}
		st.Lines++
		out = append(out, rec)
	}
	return out, st, sc.Err()
}

// ReadFlows parses a TSV flow log written by WriteFlows, failing on the
// first corrupt line.
func ReadFlows(r io.Reader) ([]FlowRecord, error) {
	recs, _, err := readFlows(r, true)
	return recs, err
}

// ReadFlowsTolerant parses a TSV flow log, skipping corrupt lines and
// counting them: the salvage path for logs out of an interrupted run.
func ReadFlowsTolerant(r io.Reader) ([]FlowRecord, ReadStats, error) {
	return readFlows(r, false)
}

const dnsHeader = "client\tresolver\tquery\trcode\tanswer\tt_us\tresp_us"

// WriteDNS writes DNS transaction records as TSV.
func WriteDNS(w io.Writer, recs []DNSRecord) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, dnsHeader); err != nil {
		return err
	}
	for _, r := range recs {
		ans := ""
		if r.Answer.IsValid() {
			ans = r.Answer.String()
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%d\t%s\t%d\t%d\n",
			r.Client, r.Resolver, r.Query, r.RCode, ans,
			r.T.Microseconds(), r.ResponseTime.Microseconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// parseDNSLine parses one data line of a DNS TSV log.
func parseDNSLine(text string) (DNSRecord, error) {
	var rec DNSRecord
	fields := strings.Split(text, "\t")
	if len(fields) != 7 {
		return rec, fmt.Errorf("%d fields, want 7", len(fields))
	}
	var err error
	if rec.Client, err = netip.ParseAddr(fields[0]); err != nil {
		return rec, err
	}
	if rec.Resolver, err = netip.ParseAddr(fields[1]); err != nil {
		return rec, err
	}
	rec.Query = fields[2]
	rc, err := strconv.ParseUint(fields[3], 10, 8)
	if err != nil {
		return rec, err
	}
	rec.RCode = uint8(rc)
	if fields[4] != "" {
		if rec.Answer, err = netip.ParseAddr(fields[4]); err != nil {
			return rec, err
		}
	}
	tus, err := strconv.ParseInt(fields[5], 10, 64)
	if err != nil {
		return rec, err
	}
	rus, err := strconv.ParseInt(fields[6], 10, 64)
	if err != nil {
		return rec, err
	}
	rec.T = time.Duration(tus) * time.Microsecond
	rec.ResponseTime = time.Duration(rus) * time.Microsecond
	return rec, nil
}

// readDNS is the shared scanner behind ReadDNS/ReadDNSTolerant.
func readDNS(r io.Reader, strict bool) ([]DNSRecord, ReadStats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []DNSRecord
	var st ReadStats
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if first {
			first = false
			if text != dnsHeader {
				return nil, st, fmt.Errorf("tstat: dns line 1: unexpected header")
			}
			continue
		}
		if text == "" {
			continue
		}
		rec, err := parseDNSLine(text)
		if err != nil {
			if strict {
				return nil, st, fmt.Errorf("tstat: dns line %d: %w", line, err)
			}
			st.Skipped++
			continue
		}
		st.Lines++
		out = append(out, rec)
	}
	return out, st, sc.Err()
}

// ReadDNS parses a TSV DNS log written by WriteDNS, failing on the first
// corrupt line.
func ReadDNS(r io.Reader) ([]DNSRecord, error) {
	recs, _, err := readDNS(r, true)
	return recs, err
}

// ReadDNSTolerant parses a TSV DNS log, skipping and counting corrupt
// lines.
func ReadDNSTolerant(r io.Reader) ([]DNSRecord, ReadStats, error) {
	return readDNS(r, false)
}
