// Package tstat is the probe: a passive flow meter in the spirit of Tstat
// (§2.2 of the paper) that turns an observed packet stream into rich
// per-flow records. It tracks 5-tuple flows in both directions, measures
// the ground-segment RTT from TCP data→ACK pairs, estimates the
// satellite-segment RTT from the TLS ServerHello → ClientKeyExchange gap
// (the paper's trick for seeing through the PEP), runs DPI to name the
// server (HTTP Host, TLS SNI, QUIC SNI, DNS), logs DNS transactions, and
// anonymizes customer addresses with Crypto-PAn before anything is stored.
//
// The tracker consumes SegmentEvents. Two frontends produce them: the
// packet frontend decodes raw IPv4 packets (live capture or pcap replay),
// and the simulator fast path emits them directly, optionally aggregating
// long bulk transfers into burst events whose byte/packet counters stay
// exact.
package tstat

import (
	"time"

	"satwatch/internal/packet"
)

// Direction of a segment relative to the flow's initiator ("client",
// which at this vantage point is always the customer side).
type Direction uint8

// Flow directions.
const (
	ClientToServer Direction = iota
	ServerToClient
)

func (d Direction) String() string {
	if d == ServerToClient {
		return "s2c"
	}
	return "c2s"
}

// SegmentEvent is one observed wire event. An event normally corresponds
// to one packet; the simulator's fast path may aggregate a bulk burst into
// a single event with Packets > 1 — byte and packet accounting remain
// exact, only per-packet timestamps inside the burst are coalesced.
type SegmentEvent struct {
	// T is the capture timestamp as an offset from the trace epoch.
	T time.Duration
	// Dir is the segment's direction relative to the initiator.
	Dir Direction
	// Payload is the transport payload bytes carried by the event.
	Payload int
	// WireLen is the total on-the-wire bytes of the event (headers
	// included, summed over aggregated packets).
	WireLen int
	// Packets is how many wire packets the event represents (≥1).
	Packets int
	// Flags carries TCP flags (zero for UDP).
	Flags packet.TCPFlags
	// Seq is the TCP sequence number of the first payload byte; Ack the
	// cumulative acknowledgement carried by this segment. Zero for UDP.
	Seq, Ack uint32
	// AppData holds the payload bytes available for DPI. The frontends
	// populate it for the segments that can carry protocol fingerprints
	// (handshakes, first data); bulk events leave it nil.
	AppData []byte
}
