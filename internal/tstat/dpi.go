package tstat

import (
	"satwatch/internal/packet"
)

// dpiBudget caps how many reassembled client bytes the DPI inspects per
// flow before giving up on naming it.
const dpiBudget = 8 << 10

// dpiState incrementally classifies a flow and extracts the server name
// from the first client payload bytes (§2.2's DPI module: HTTP Host, TLS
// SNI, QUIC SNI).
type dpiState struct {
	buf     []byte
	done    bool
	domain  string
	isTLS   bool
	isHTTP  bool
	isQUIC  bool
	isRTP   bool
	sawData bool
}

// feedClientTCP accumulates client-side TCP payload and tries to classify.
func (d *dpiState) feedClientTCP(data []byte) {
	if d.done || len(data) == 0 {
		return
	}
	d.sawData = true
	d.buf = append(d.buf, data...)

	// TLS: reassemble records until a ClientHello parses.
	if len(d.buf) >= 3 && d.buf[0] == packet.TLSRecordHandshake {
		recs, _, err := packet.DecodeTLSRecords(d.buf)
		if err == nil {
			var hs []byte
			for _, rec := range recs {
				if rec.Type == packet.TLSRecordHandshake {
					hs = append(hs, rec.Payload...)
				}
			}
			if msgs, err := packet.DecodeTLSHandshakes(hs); err == nil {
				for _, m := range msgs {
					if m.Type == packet.TLSHandshakeClientHello {
						if ch, err := packet.ParseClientHello(m.Body); err == nil {
							d.isTLS = true
							d.domain = ch.ServerName
							d.finish()
							return
						}
					}
				}
			}
		}
		// Looks like TLS but the hello hasn't fully arrived yet.
		if len(d.buf) < dpiBudget {
			return
		}
	}

	// Plain HTTP: request line plus Host header.
	if packet.LooksLikeHTTPRequest(d.buf) {
		if req, err := packet.ParseHTTPRequest(d.buf); err == nil {
			if host := req.Host(); host != "" {
				d.isHTTP = true
				d.domain = host
				d.finish()
				return
			}
		}
		// Head incomplete; wait for more unless over budget.
		if len(d.buf) < dpiBudget {
			return
		}
	}

	if len(d.buf) >= dpiBudget {
		d.finish()
	}
}

// feedClientUDP classifies a client UDP datagram (QUIC or RTP; DNS is
// handled by the dedicated transaction path).
func (d *dpiState) feedClientUDP(data []byte) {
	if d.done || len(data) == 0 {
		return
	}
	d.sawData = true
	if packet.IsQUICLongHeader(data) {
		if q, err := packet.DecodeQUICInitial(data); err == nil {
			d.isQUIC = true
			if sni, err := q.SNI(); err == nil && sni != "" {
				d.domain = sni
			}
			d.finish()
			return
		}
	}
	if packet.LooksLikeRTP(data) {
		d.isRTP = true
		d.finish()
		return
	}
	// One datagram is enough to decide for UDP.
	d.finish()
}

func (d *dpiState) finish() {
	d.done = true
	d.buf = nil
}

// classifyTCP returns the Table 1 class of a TCP flow given the DPI
// verdict and the server port.
func (d *dpiState) classifyTCP(serverPort uint16) Protocol {
	switch {
	case d.isTLS:
		return ProtoHTTPS
	case d.isHTTP:
		return ProtoHTTP
	case serverPort == 443 && !d.sawData:
		// Handshake-only flow toward 443: count as HTTPS like Tstat does
		// (port heuristics back the DPI up).
		return ProtoHTTPS
	case serverPort == 80 && !d.sawData:
		return ProtoHTTP
	default:
		return ProtoTCPOther
	}
}

// classifyUDP returns the Table 1 class of a non-DNS UDP flow.
func (d *dpiState) classifyUDP(serverPort uint16) Protocol {
	switch {
	case d.isQUIC:
		return ProtoQUIC
	case d.isRTP:
		return ProtoRTP
	case serverPort == 443 && !d.sawData:
		return ProtoQUIC
	default:
		return ProtoUDPOther
	}
}
