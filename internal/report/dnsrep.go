package report

import (
	"fmt"
	"sort"
	"strings"

	"satwatch/internal/analytics"
	"satwatch/internal/dnssim"
	"satwatch/internal/geo"
)

// resolverOrder is Figure 10's row order.
var resolverOrder = []dnssim.ResolverID{
	dnssim.ResolverOperator, dnssim.ResolverGoogle, dnssim.ResolverCloudFl,
	dnssim.ResolverNigerian, dnssim.ResolverOpenDNS, dnssim.ResolverLevel3,
	dnssim.ResolverBaidu, dnssim.Resolver114DNS, dnssim.ResolverOther,
}

// Fig10 is the DNS resolver adoption and response-time figure.
type Fig10 struct {
	// SharePct[country][resolver] is the percentage of the country's DNS
	// transactions using the resolver.
	SharePct map[geo.CountryCode]map[dnssim.ResolverID]float64
	// MedianResponse[resolver] is the median response time in seconds.
	MedianResponse map[dnssim.ResolverID]float64
}

// BuildFig10 computes resolver adoption and latency.
func BuildFig10(ds *analytics.Dataset) Fig10 {
	usage := ds.ResolverUsage()
	out := Fig10{
		SharePct:       map[geo.CountryCode]map[dnssim.ResolverID]float64{},
		MedianResponse: map[dnssim.ResolverID]float64{},
	}
	for code, m := range usage {
		total := 0
		for _, n := range m {
			total += n
		}
		if total == 0 {
			continue
		}
		shares := map[dnssim.ResolverID]float64{}
		for id, n := range m {
			shares[id] = 100 * float64(n) / float64(total)
		}
		out.SharePct[code] = shares
	}
	for id, xs := range ds.ResolverResponseTimes() {
		out.MedianResponse[id] = analytics.NewSample(xs).Median()
	}
	return out
}

// Render prints the adoption matrix plus the response-time column.
func (f Fig10) Render() string {
	header := []string{"Resolver"}
	for _, code := range top6 {
		header = append(header, countryName(code))
	}
	header = append(header, "Median resp")
	tab := &table{header: header}
	for _, id := range resolverOrder {
		cells := []string{string(id)}
		for _, code := range top6 {
			cells = append(cells, fmtPct(f.SharePct[code][id]))
		}
		if med, ok := f.MedianResponse[id]; ok {
			cells = append(cells, fmtMs(med))
		} else {
			cells = append(cells, "-")
		}
		tab.add(cells...)
	}
	return "Figure 10: adoption and median response time of DNS resolvers\n" + tab.String()
}

// ResolverImpact is the Table 2 / Tables 4-5 family: average ground RTT per
// (country, resolver, second-level domain).
type ResolverImpact struct {
	Countries []geo.CountryCode
	// AvgRTT[key] is the mean ground RTT in seconds; Count the flows.
	AvgRTT map[analytics.DomainResolverKey]float64
	Count  map[analytics.DomainResolverKey]int
}

// BuildResolverImpact aggregates for the given countries (Table 2 uses
// U.K. and Nigeria; Tables 4-5 add Congo and South Africa).
func BuildResolverImpact(ds *analytics.Dataset, countries ...geo.CountryCode) ResolverImpact {
	wanted := map[geo.CountryCode]bool{}
	for _, c := range countries {
		wanted[c] = true
	}
	out := ResolverImpact{Countries: countries,
		AvgRTT: map[analytics.DomainResolverKey]float64{},
		Count:  map[analytics.DomainResolverKey]int{}}
	for key, xs := range ds.GroundRTTByDomainResolver() {
		if !wanted[key.Country] {
			continue
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		out.AvgRTT[key] = sum / float64(len(xs))
		out.Count[key] = len(xs)
	}
	return out
}

// Cell returns the average ground RTT in seconds for one cell, ok=false
// when the combination was never observed.
func (t ResolverImpact) Cell(country geo.CountryCode, resolver dnssim.ResolverID, sld string) (float64, bool) {
	v, ok := t.AvgRTT[analytics.DomainResolverKey{Country: country, Resolver: resolver, Domain: sld}]
	return v, ok
}

// Domains returns all second-level domains present, sorted.
func (t ResolverImpact) Domains() []string {
	seen := map[string]bool{}
	for key := range t.AvgRTT {
		seen[key.Domain] = true
	}
	var out []string
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Render prints one block per country with domains × resolvers.
func (t ResolverImpact) Render() string {
	var sb strings.Builder
	sb.WriteString("Ground-segment RTT per (domain, resolver) — Tables 2/4/5 family\n")
	domains := t.Domains()
	for _, country := range t.Countries {
		fmt.Fprintf(&sb, "\n%s:\n", countryName(country))
		header := []string{"domain"}
		for _, id := range resolverOrder {
			header = append(header, string(id))
		}
		tab := &table{header: header}
		for _, d := range domains {
			cells := []string{d}
			any := false
			for _, id := range resolverOrder {
				if v, ok := t.Cell(country, id, d); ok {
					cells = append(cells, fmtMs(v))
					any = true
				} else {
					cells = append(cells, "-")
				}
			}
			if any {
				tab.add(cells...)
			}
		}
		sb.WriteString(tab.String())
	}
	return sb.String()
}
