package report

import (
	"fmt"
	"sort"
	"strings"

	"satwatch/internal/analytics"
	"satwatch/internal/geo"
	"satwatch/internal/tstat"
)

// protoOrder is the Table 1 row order.
var protoOrder = []tstat.Protocol{
	tstat.ProtoHTTPS, tstat.ProtoHTTP, tstat.ProtoTCPOther,
	tstat.ProtoQUIC, tstat.ProtoRTP, tstat.ProtoDNS, tstat.ProtoUDPOther,
}

// Table1 is the TCP/UDP traffic breakdown by protocol (paper Table 1).
type Table1 struct {
	// SharePct is the percentage of total volume per protocol class.
	SharePct map[tstat.Protocol]float64
	Total    int64
}

// BuildTable1 computes the protocol volume breakdown.
func BuildTable1(ds *analytics.Dataset) Table1 {
	vols := ds.VolumeByProtocol()
	out := Table1{SharePct: map[tstat.Protocol]float64{}}
	for _, v := range vols {
		out.Total += v
	}
	if out.Total == 0 {
		return out
	}
	for p, v := range vols {
		out.SharePct[p] = 100 * float64(v) / float64(out.Total)
	}
	return out
}

// Render prints the paper-style table.
func (t Table1) Render() string {
	tab := &table{header: []string{"Protocol", "Volume share"}}
	for _, p := range protoOrder {
		share := t.SharePct[p]
		cell := fmtPct(share) + " %"
		if p == tstat.ProtoDNS && share < 0.1 {
			cell = "< 0.1 %"
		}
		tab.add(p.String(), cell)
	}
	return "Table 1: TCP/UDP traffic breakdown by protocol\n" + tab.String()
}

// Fig2Row is one country of Figure 2.
type Fig2Row struct {
	Country              geo.CountryCode
	VolumeSharePct       float64
	CustomerSharePct     float64
	VolumePerCustomerDay float64 // bytes
}

// Fig2 is the per-country breakdown of traffic volume and user base.
type Fig2 struct {
	Rows []Fig2Row // sorted by decreasing volume share
}

// BuildFig2 computes the country breakdown.
func BuildFig2(ds *analytics.Dataset) Fig2 {
	volByCountry := map[geo.CountryCode]int64{}
	var total int64
	for i := range ds.Flows {
		f := &ds.Flows[i]
		v := f.BytesUp + f.BytesDown
		volByCountry[f.Country] += v
		total += v
	}
	customers := ds.CustomersByCountry()
	nCust := 0
	for _, n := range customers {
		nCust += n
	}
	var rows []Fig2Row
	for code, v := range volByCountry {
		if code == "" {
			continue
		}
		row := Fig2Row{Country: code}
		if total > 0 {
			row.VolumeSharePct = 100 * float64(v) / float64(total)
		}
		if nCust > 0 {
			row.CustomerSharePct = 100 * float64(customers[code]) / float64(nCust)
		}
		if customers[code] > 0 && ds.Days > 0 {
			row.VolumePerCustomerDay = float64(v) / float64(customers[code]) / float64(ds.Days)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].VolumeSharePct > rows[j].VolumeSharePct })
	return Fig2{Rows: rows}
}

// Row returns a country's row.
func (f Fig2) Row(code geo.CountryCode) (Fig2Row, bool) {
	for _, r := range f.Rows {
		if r.Country == code {
			return r, true
		}
	}
	return Fig2Row{}, false
}

// Render prints the Figure 2 bars as a table.
func (f Fig2) Render() string {
	tab := &table{header: []string{"Country", "Volume %", "Customers %", "Vol/customer/day"}}
	for _, r := range f.Rows {
		tab.add(countryName(r.Country), fmtPct(r.VolumeSharePct), fmtPct(r.CustomerSharePct), fmtBytes(r.VolumePerCustomerDay))
	}
	return "Figure 2: per-country breakdown of traffic volume and user base\n" + tab.String()
}

// Fig3 is the protocol share per country.
type Fig3 struct {
	// SharePct[country][protocol] is the percentage of the country's
	// volume on that protocol.
	SharePct map[geo.CountryCode]map[tstat.Protocol]float64
	Order    []geo.CountryCode // top-10 by volume
}

// BuildFig3 computes per-country protocol shares for the top-10 countries.
func BuildFig3(ds *analytics.Dataset) Fig3 {
	byCountry := ds.VolumeByCountryProtocol()
	totals := map[geo.CountryCode]int64{}
	for code, m := range byCountry {
		for _, v := range m {
			totals[code] += v
		}
	}
	var order []geo.CountryCode
	for code := range byCountry {
		if code != "" {
			order = append(order, code)
		}
	}
	sort.Slice(order, func(i, j int) bool { return totals[order[i]] > totals[order[j]] })
	if len(order) > 10 {
		order = order[:10]
	}
	out := Fig3{SharePct: map[geo.CountryCode]map[tstat.Protocol]float64{}, Order: order}
	for _, code := range order {
		m := map[tstat.Protocol]float64{}
		for p, v := range byCountry[code] {
			if totals[code] > 0 {
				m[p] = 100 * float64(v) / float64(totals[code])
			}
		}
		out.SharePct[code] = m
	}
	return out
}

// Render prints the per-country protocol mix.
func (f Fig3) Render() string {
	header := []string{"Country"}
	for _, p := range protoOrder {
		header = append(header, p.String())
	}
	tab := &table{header: header}
	for _, code := range f.Order {
		cells := []string{countryName(code)}
		for _, p := range protoOrder {
			cells = append(cells, fmtPct(f.SharePct[code][p]))
		}
		tab.add(cells...)
	}
	return "Figure 3: protocol share per country (% of volume)\n" + tab.String()
}

// Fig4 is the normalized hourly traffic pattern per country.
type Fig4 struct {
	// Normalized[country][hourUTC] is the volume share normalized to the
	// country's peak hour (1.0 at the peak).
	Normalized map[geo.CountryCode][24]float64
}

// BuildFig4 computes the daily trends.
func BuildFig4(ds *analytics.Dataset) Fig4 {
	raw := ds.HourlyVolume()
	out := Fig4{Normalized: map[geo.CountryCode][24]float64{}}
	for code, hours := range raw {
		if code == "" {
			continue
		}
		peak := 0.0
		for _, v := range hours {
			if v > peak {
				peak = v
			}
		}
		var norm [24]float64
		if peak > 0 {
			for h, v := range hours {
				norm[h] = v / peak
			}
		}
		out.Normalized[code] = norm
	}
	return out
}

// PeakHourUTC returns the UTC hour with maximum traffic for a country.
func (f Fig4) PeakHourUTC(code geo.CountryCode) int {
	best, bv := 0, -1.0
	for h, v := range f.Normalized[code] {
		if v > bv {
			best, bv = h, v
		}
	}
	return best
}

// NightFloor returns the minimum normalized volume over 00-05 UTC.
func (f Fig4) NightFloor(code geo.CountryCode) float64 {
	minV := 1.0
	hours := f.Normalized[code]
	for h := 0; h < 6; h++ {
		if hours[h] < minV {
			minV = hours[h]
		}
	}
	return minV
}

// Render sketches each top-6 country's profile.
func (f Fig4) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4: daily traffic trends per country (normalized to peak, UTC)\n")
	glyphs := []rune(" .:-=+*#%@")
	for _, code := range top6 {
		hours, ok := f.Normalized[code]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "%-14s ", countryName(code))
		for _, v := range hours {
			idx := int(v * float64(len(glyphs)-1))
			sb.WriteRune(glyphs[idx])
		}
		fmt.Fprintf(&sb, "  peak %02d:00 UTC\n", f.PeakHourUTC(code))
	}
	sb.WriteString("               0     6     12    18   (hour)\n")
	return sb.String()
}

// Fig5 is the per-customer daily activity distributions.
type Fig5 struct {
	// Per-customer-day samples by country.
	Flows map[geo.CountryCode]*analytics.Sample // flow counts
	Down  map[geo.CountryCode]*analytics.Sample // download bytes (active customers)
	Up    map[geo.CountryCode]*analytics.Sample // upload bytes (active customers)
}

// BuildFig5 computes the Figure 5 CCDFs. Volumes consider only active
// customer-days (≥250 flows), as the paper does.
func BuildFig5(ds *analytics.Dataset) Fig5 {
	flows := map[geo.CountryCode][]float64{}
	down := map[geo.CountryCode][]float64{}
	up := map[geo.CountryCode][]float64{}
	for _, agg := range ds.GroupByCustomerDay() {
		if agg.Country == "" {
			continue
		}
		flows[agg.Country] = append(flows[agg.Country], float64(agg.Flows))
		if agg.Flows >= analytics.ActiveFlowThreshold {
			down[agg.Country] = append(down[agg.Country], float64(agg.BytesDown))
			up[agg.Country] = append(up[agg.Country], float64(agg.BytesUp))
		}
	}
	out := Fig5{
		Flows: map[geo.CountryCode]*analytics.Sample{},
		Down:  map[geo.CountryCode]*analytics.Sample{},
		Up:    map[geo.CountryCode]*analytics.Sample{},
	}
	for code, xs := range flows {
		out.Flows[code] = analytics.NewSample(xs)
	}
	for code, xs := range down {
		out.Down[code] = analytics.NewSample(xs)
	}
	for code, xs := range up {
		out.Up[code] = analytics.NewSample(xs)
	}
	return out
}

// Render summarizes the three CCDFs at the paper's reference points.
func (f Fig5) Render() string {
	tab := &table{header: []string{"Country", "P(flows<=250)", "median flows", "P(down>10GB)", "P(up>1GB)"}}
	for _, code := range top6 {
		fl, ok := f.Flows[code]
		if !ok {
			continue
		}
		cells := []string{countryName(code),
			fmtPct(100*fl.CDF(250)) + " %",
			fmt.Sprintf("%.0f", fl.Median())}
		if d, ok := f.Down[code]; ok {
			cells = append(cells, fmtPct(100*d.CCDF(10e9))+" %")
		} else {
			cells = append(cells, "-")
		}
		if u, ok := f.Up[code]; ok {
			cells = append(cells, fmtPct(100*u.CCDF(1e9))+" %")
		} else {
			cells = append(cells, "-")
		}
		tab.add(cells...)
	}
	return "Figure 5: per-customer daily flows and volume (CCDF reference points)\n" + tab.String()
}
